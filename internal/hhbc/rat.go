package hhbc

import "repro/internal/types"

// Repo-authoritative type (RAT) encoding: AssertRATL/AssertRAStk carry
// a types.Type packed into the B and C immediates.
//
//	B = kind bits (low 8) | array kind << 8 | exact-class flag << 10
//	C = string pool index of the class name + 1, or 0 for none
const (
	ratArrShift   = 8
	ratExactClass = 1 << 10
)

// EncodeRAT packs t into (B, C) immediates against u's string pool.
func (u *Unit) EncodeRAT(t types.Type) (int32, int32) {
	b := int32(t.Kind())
	b |= int32(t.ArrayKind()) << ratArrShift
	var c int32
	if cls, exact := t.Class(); cls != "" {
		c = u.InternString(cls) + 1
		if exact {
			b |= ratExactClass
		}
	}
	return b, c
}

// DecodeRAT unpacks (B, C) immediates into a Type.
func (u *Unit) DecodeRAT(b, c int32) types.Type {
	kind := types.Kind(b & 0xff)
	ak := types.ArrayKind((b >> ratArrShift) & 3)
	if c != 0 && kind == types.KObj {
		return types.ObjOfClass(u.Strings[c-1], b&ratExactClass != 0)
	}
	if kind == types.KArr && ak != types.ArrayAny {
		return types.ArrOfKind(ak)
	}
	return types.FromKind(kind)
}
