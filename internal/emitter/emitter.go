// Package emitter lowers the AST into HHBC, the stack bytecode
// executed by the interpreter and compiled by the JIT.
package emitter

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/hhbc"
	"repro/internal/types"
)

// Emit compiles a parsed program into a bytecode unit.
func Emit(prog *ast.Program) (*hhbc.Unit, error) {
	u := hhbc.NewUnit()
	em := &unitEmitter{unit: u, prog: prog, funcIDs: map[string]int{}}

	// Reserve IDs for all declared functions and methods first so
	// calls can be emitted as direct (FCallD) references.
	for _, f := range prog.Funcs {
		em.declare(f)
	}
	for _, c := range prog.Classes {
		if c.IsInterface {
			continue
		}
		for _, m := range c.Methods {
			em.declare(m)
		}
	}

	for _, f := range prog.Funcs {
		if err := em.emitFunc(f); err != nil {
			return nil, err
		}
	}
	for _, c := range prog.Classes {
		if err := em.emitClass(c); err != nil {
			return nil, err
		}
	}

	// Pseudo-main.
	mainDecl := &ast.FuncDecl{Name: "__pseudo_main", Body: prog.Main}
	em.declare(mainDecl)
	if err := em.emitFunc(mainDecl); err != nil {
		return nil, err
	}
	u.Main = em.funcIDs[strings.ToLower("__pseudo_main")]

	if err := hhbc.VerifyUnit(u); err != nil {
		return nil, fmt.Errorf("emitter produced invalid bytecode: %w", err)
	}
	return u, nil
}

type unitEmitter struct {
	unit    *hhbc.Unit
	prog    *ast.Program
	funcIDs map[string]int
}

func (em *unitEmitter) declare(f *ast.FuncDecl) {
	full := f.Name
	if f.Class != "" {
		full = f.Class + "::" + f.Name
	}
	fn := &hhbc.Func{Name: f.Name, Class: f.Class, IsMethod: f.Class != "" && !f.Static}
	id := em.unit.AddFunc(fn)
	em.funcIDs[strings.ToLower(full)] = id
}

// isUserFunc reports whether name is a declared function.
func (em *unitEmitter) isUserFunc(name string) bool {
	_, ok := em.funcIDs[strings.ToLower(name)]
	return ok
}

func (em *unitEmitter) emitClass(c *ast.ClassDecl) error {
	def := &hhbc.ClassDef{
		Name:    c.Name,
		Parent:  c.Parent,
		Ifaces:  c.Ifaces,
		Methods: map[string]int{},
	}
	if c.IsInterface {
		em.unit.Classes = append(em.unit.Classes, def)
		return nil
	}
	for _, p := range c.Props {
		pd := hhbc.PropDef{Name: p.Name}
		if p.Default != nil {
			k, i, d, s, ok := literalValue(p.Default)
			if !ok {
				return fmt.Errorf("class %s: property $%s default must be a literal", c.Name, p.Name)
			}
			pd.DefaultKind, pd.DefaultInt, pd.DefaultDbl, pd.DefaultStr = k, i, d, s
		}
		def.Props = append(def.Props, pd)
	}
	for _, m := range c.Methods {
		if strings.EqualFold(m.Name, "__destruct") {
			def.HasDtor = true
		}
		def.Methods[strings.ToLower(m.Name)] = em.funcIDs[strings.ToLower(c.Name+"::"+m.Name)]
		if err := em.emitFunc(m); err != nil {
			return err
		}
	}
	em.unit.Classes = append(em.unit.Classes, def)
	return nil
}

// funcEmitter emits one function body.
type funcEmitter struct {
	*unitEmitter
	fn     *hhbc.Func
	decl   *ast.FuncDecl
	locals map[string]int32
	// loop context stacks for break/continue patching.
	loops []*loopCtx
	// iterator slot allocation
	numIters int
	// temp local allocation
	tempBase int
}

type loopCtx struct {
	breaks    []int // pcs of Jmp instrs to patch to loop end
	continues []int // pcs of Jmp instrs to patch to continue point
	// iterToFree: iterator slot to free when breaking out (foreach), -1 none
	iterToFree int
}

func (em *unitEmitter) emitFunc(f *ast.FuncDecl) error {
	id := em.funcIDs[strings.ToLower(funcFullName(f))]
	fn := em.unit.Funcs[id]
	fe := &funcEmitter{unitEmitter: em, fn: fn, decl: f, locals: map[string]int32{}}

	for _, p := range f.Params {
		slot := int32(len(fe.locals))
		fe.locals[p.Name] = slot
		fn.LocalName = append(fn.LocalName, p.Name)
		prm := hhbc.Param{Name: p.Name, TypeHint: p.TypeHint, Nullable: p.Nullable}
		if p.Default != nil {
			k, i, d, s, ok := literalValue(p.Default)
			if !ok {
				return fmt.Errorf("%s: parameter $%s default must be a literal", funcFullName(f), p.Name)
			}
			prm.HasDefault = true
			prm.DefaultKind, prm.DefaultInt, prm.DefaultDbl, prm.DefaultStr = k, i, d, s
		}
		fn.Params = append(fn.Params, prm)
	}

	// Runtime-checked shallow type hints.
	for i, p := range f.Params {
		if p.TypeHint != "" {
			fe.emit(hhbc.OpVerifyParamType, int32(i), 0, 0)
		}
	}

	if err := fe.stmts(f.Body); err != nil {
		return fmt.Errorf("%s: %w", funcFullName(f), err)
	}
	// Implicit return null.
	fe.emit(hhbc.OpNull, 0, 0, 0)
	fe.emit(hhbc.OpRetC, 0, 0, 0)
	fn.NumLocals = len(fe.locals) + fe.tempBase
	// locals named map only covers named ones; temps live above.
	return nil
}

func funcFullName(f *ast.FuncDecl) string {
	if f.Class != "" {
		return f.Class + "::" + f.Name
	}
	return f.Name
}

func (fe *funcEmitter) emit(op hhbc.Op, a, b, c int32) int {
	fe.fn.Instrs = append(fe.fn.Instrs, hhbc.Instr{Op: op, A: a, B: b, C: c})
	return len(fe.fn.Instrs) - 1
}

func (fe *funcEmitter) pc() int { return len(fe.fn.Instrs) }

func (fe *funcEmitter) patch(pc int, target int) {
	fe.fn.Instrs[pc].A = int32(target)
}

func (fe *funcEmitter) local(name string) int32 {
	if slot, ok := fe.locals[name]; ok {
		return slot
	}
	slot := int32(len(fe.locals))
	fe.locals[name] = slot
	fe.fn.LocalName = append(fe.fn.LocalName, name)
	return slot
}

// temp allocates a hidden local (never reused across statements for
// simplicity; counts are tiny).
func (fe *funcEmitter) temp() int32 {
	fe.tempBase++
	return fe.local(fmt.Sprintf("__t%d", fe.tempBase))
}

func (fe *funcEmitter) iter() int32 {
	fe.numIters++
	return int32(fe.numIters - 1)
}

func literalValue(e ast.Expr) (k types.Kind, i int64, d float64, s string, ok bool) {
	switch v := e.(type) {
	case *ast.IntLit:
		return types.KInt, v.Value, 0, "", true
	case *ast.FloatLit:
		return types.KDbl, 0, v.Value, "", true
	case *ast.StringLit:
		return types.KStr, 0, 0, v.Value, true
	case *ast.BoolLit:
		b := int64(0)
		if v.Value {
			b = 1
		}
		return types.KBool, b, 0, "", true
	case *ast.NullLit:
		return types.KNull, 0, 0, "", true
	case *ast.Unop:
		if v.Op == "-" {
			if iv, ok2 := v.E.(*ast.IntLit); ok2 {
				return types.KInt, -iv.Value, 0, "", true
			}
			if fv, ok2 := v.E.(*ast.FloatLit); ok2 {
				return types.KDbl, 0, -fv.Value, "", true
			}
		}
	case *ast.ArrayLit:
		// Only the empty array is a legal literal default; instances
		// get a fresh array each (see runtime object linking).
		if len(v.Vals) == 0 {
			return types.KArr, 0, 0, "", true
		}
	}
	return 0, 0, 0, "", false
}
