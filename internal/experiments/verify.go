package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/mcode"
	"repro/internal/perflab"
	"repro/internal/sentry"
	"repro/internal/workload"
)

// VerifyResult reports the self-verification experiment (DESIGN.md
// §15): injected code-cache corruptions must be detected by the
// integrity auditor or the sampled shadow execution, divergences must
// bisect to a quarantined culprit, final outputs must be bit-identical
// to the JIT-disabled reference, and steady-state verification
// overhead at production sampling must stay small.
type VerifyResult struct {
	Seed int64

	// Code-byte corruption leg: silent tamper injections at machine
	// entry, detected by the checksum auditor.
	CorruptFired    uint64
	CorruptDetected uint64
	// CorruptRepaired latches when, after the audit pass and a remint
	// round, no tampered translation remains published and a fresh
	// audit is clean.
	CorruptRepaired bool

	// Torn-link leg: future-epoch link writes injected during
	// re-binding; the auditor (or the execution path's stale-link
	// bounce) must leave zero future-epoch links behind.
	TornFired    uint64
	TornDetected uint64
	TornResidual int

	// Stale-IC leg: inline-cache tables installed at a stale epoch;
	// the execution path's epoch guard must drop them.
	StaleICFired   uint64
	StaleICDropped uint64

	// Shadow-execution leg: with 100% sampling and a fresh silent
	// corruption, the comparator must observe a divergence, bisect
	// it, and quarantine the culprit translation.
	ShadowDivergences uint64
	ShadowQuarantined uint64
	BisectionReplays  uint64
	CulpritFunc       int
	CulpritPC         int

	// OutputsMatch reports that after every leg's repairs, each
	// endpoint's output was bit-identical to the JIT-disabled
	// reference.
	OutputsMatch bool

	// Overhead leg: wall-clock per request without a monitor vs with
	// one at SampleRate sampling plus per-chunk audits (best of
	// OverheadTrials trials each).
	SampleRate       float64
	BaselineNsPerReq float64
	VerifiedNsPerReq float64
	OverheadPct      float64

	// Monitor is the verification monitor's final counter snapshot
	// over the fault legs.
	Monitor sentry.Stats
}

// overheadRounds / overheadSlice size the wall-clock leg: per round,
// each engine serves one slice back-to-back and contributes one
// paired timing ratio.
const (
	overheadRounds = 18
	overheadSlice  = 100
)

// Verify runs the self-verification experiment.
func Verify(pc perflab.Config, seed int64) (*VerifyResult, error) {
	res := &VerifyResult{Seed: seed, SampleRate: 0.01, CulpritFunc: -1, CulpritPC: -1}
	rounds := pc.WarmupRequests + pc.MeasureRequests
	if rounds == 0 {
		rounds = 20
	}

	// JIT-disabled reference outputs: the fidelity oracle every leg's
	// post-repair traffic is compared against.
	interpCfg := defaultCfg()
	interpCfg.Mode = jit.ModeInterp
	ref, err := perflab.Measure(interpCfg, pc)
	if err != nil {
		return nil, fmt.Errorf("verify interp reference: %w", err)
	}
	refOut := map[string]string{}
	for _, ep := range ref.Endpoints {
		refOut[ep.Name] = ep.Output
	}

	// One fault-injected engine carries the corruption legs. Rates
	// stay zero: every injection is forced, so each leg controls
	// exactly when its corruption lands.
	cfg := defaultCfg()
	inj := faultinject.New(faultinject.Config{Seed: seed})
	cfg.Faults = inj
	eng, eps, err := perflab.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("verify engine: %w", err)
	}
	j := eng.VM.JIT
	runRound := func(check bool) error {
		for _, ep := range eps {
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				return fmt.Errorf("verify %s: %w", ep.Name, err)
			}
			if check && out != refOut[ep.Name] {
				return fmt.Errorf("verify %s: output diverged from interp reference", ep.Name)
			}
		}
		return nil
	}
	// Warm to steady state (optimized code published) before
	// attaching the monitor.
	for r := 0; r < 200 && eng.Stats().OptimizeRuns == 0; r++ {
		if err := runRound(true); err != nil {
			return nil, err
		}
	}
	mon, err := sentry.New(sentry.Config{SampleRate: 1, Seed: seed}, j)
	if err != nil {
		return nil, err
	}
	defer mon.Close()
	if mon.Audit() != 0 {
		return nil, fmt.Errorf("verify: audit of a clean warm cache found corruptions")
	}

	// --- Leg 1: silent code-byte corruption, caught by checksums ---
	inj.ForceNext(faultinject.CodeCorrupt, 3)
	if err := runRound(false); err != nil { // plants tampers; outputs may be wrong here
		return nil, err
	}
	res.CorruptFired = inj.Fired(faultinject.CodeCorrupt)
	before := mon.Stats()
	mon.Audit()
	res.CorruptDetected = mon.Stats().Corruptions - before.Corruptions
	// Remint and verify fidelity is restored bit-for-bit.
	for r := 0; r < rounds; r++ {
		if err := runRound(true); err != nil {
			return nil, err
		}
	}
	clean := true
	j.ForEachTranslation(func(tr *jit.Translation) {
		if tr.Code.Tampered() != 0 {
			clean = false
		}
	})
	res.CorruptRepaired = clean && mon.Audit() == 0

	// invalidateOne unpublishes the smallest currently-published
	// (FuncID, PC) key. Picking a live key matters: invalidating an
	// already-unpublished key removes nothing and therefore does NOT
	// bump the epoch or sweep links.
	invalidateOne := func() bool {
		var victim *jit.Translation
		j.ForEachTranslation(func(tr *jit.Translation) {
			if victim == nil || tr.FuncID < victim.FuncID ||
				(tr.FuncID == victim.FuncID && tr.PC < victim.PC) {
				victim = tr
			}
		})
		return victim != nil && j.Invalidate(victim.FuncID, victim.PC, false) > 0
	}

	// --- Leg 2: torn link writes during re-binding ---
	// An invalidation sweeps every link, so the following traffic
	// re-binds sites through Smash — and the forced injections tear
	// those writes (future-epoch stamps). The execution path's epoch
	// guard usually bounces a torn link before the auditor's turn, so
	// a future-epoch link is also planted directly to prove the
	// auditor detects and clears one that persists.
	inj.ForceNext(faultinject.TornLink, 2)
	invalidateOne()
	tornBase := mon.Stats().TornLinks
	for r := 0; r < rounds && inj.Fired(faultinject.TornLink) < 2; r++ {
		if err := runRound(true); err != nil {
			return nil, err
		}
		mon.Audit()
	}
	var planted *jit.Translation
	j.ForEachTranslation(func(tr *jit.Translation) {
		if planted != nil {
			return
		}
		tr.Code.StoreLink(0, &mcode.Link{Epoch: j.Epoch() + 1, Target: tr})
		if tr.Code.LoadLink(0) != nil {
			planted = tr
		}
	})
	mon.Audit()
	res.TornFired = inj.Fired(faultinject.TornLink)
	res.TornDetected = mon.Stats().TornLinks - tornBase
	res.TornResidual = countFutureLinks(j, j.Epoch())
	if planted != nil && res.TornDetected == 0 {
		return nil, fmt.Errorf("verify: auditor missed a planted torn link")
	}

	// --- Leg 3: stale-epoch inline-cache tables ---
	// The epoch bump sweeps IC links too, so traffic rebuilds the
	// tables — and the forced injections install them one epoch
	// behind, where the next probe's guard must drop them.
	inj.ForceNext(faultinject.StaleIC, 2)
	invalidateOne()
	staleBase := eng.Stats().PropICStale
	for r := 0; r < rounds; r++ {
		if err := runRound(true); err != nil {
			return nil, err
		}
	}
	res.StaleICFired = inj.Fired(faultinject.StaleIC)
	res.StaleICDropped = eng.Stats().PropICStale - staleBase

	// --- Leg 4: shadow execution catches silent corruption and
	// bisects it to a quarantined culprit ---
	// Tamper every published translation (the CodeCorrupt mechanism,
	// applied cache-wide): the replay leg of each sampled comparison
	// executes the tampered code, so the divergence surfaces even
	// where the primary output happens to survive.
	j.ForEachTranslation(func(tr *jit.Translation) { tr.Code.InjectTamper(0x11) })
	for _, ep := range eps {
		_, out, err := perflab.RunEndpoint(eng, ep.Name)
		if err != nil {
			return nil, fmt.Errorf("verify shadow %s: %w", ep.Name, err)
		}
		mon.Observe(ep.Name, out)
	}
	mon.Drain()
	after := mon.Stats()
	res.ShadowDivergences = after.Divergences
	res.ShadowQuarantined = after.Quarantined
	res.BisectionReplays = after.Replays
	for _, r := range mon.Reports() {
		if r.Quarantined {
			res.CulpritFunc, res.CulpritPC = r.CulpritFunc, r.CulpritPC
			break
		}
	}
	// Repair whatever the bisection left latched and verify final
	// fidelity against the interpreter.
	mon.Audit()
	res.OutputsMatch = true
	for r := 0; r < rounds; r++ {
		for _, ep := range eps {
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				return nil, fmt.Errorf("verify recovery %s: %w", ep.Name, err)
			}
			if out != refOut[ep.Name] {
				res.OutputsMatch = false
			}
		}
	}
	res.Monitor = mon.Stats()

	// --- Leg 5: steady-state overhead at production sampling ---
	if err := measureOverhead(res, seed); err != nil {
		return nil, err
	}
	return res, nil
}

// countFutureLinks scans every published link slab for future-epoch
// (torn) links.
func countFutureLinks(j *jit.JIT, epoch uint64) int {
	n := 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		tr.Code.ForEachLink(func(_ int, l *mcode.Link) {
			if l.Epoch > epoch {
				n++
			}
		})
	})
	return n
}

// measureOverhead compares wall-clock per request on two warmed
// fault-free engines — one bare, one with a monitor at res.SampleRate
// sampling plus one audit chunk every 100 requests (mirroring the
// server's cadence). The engines alternate short slices and the
// overhead is the median of the per-round paired ratios: on a shared
// host, ambient noise runs several percent with multi-second dwell —
// larger and longer-lived than the true overhead — so adjacent slices
// see the same ambient conditions and the ratio cancels them, while
// the median discards rounds a scheduling spike lands in. A
// whole-run or min-of-N comparison measures the scheduler, not the
// monitor.
func measureOverhead(res *VerifyResult, seed int64) error {
	warm := func() (*core.Engine, []workload.Endpoint, error) {
		eng, eps, err := perflab.NewEngine(defaultCfg())
		if err != nil {
			return nil, nil, err
		}
		for r := 0; r < 200 && eng.Stats().OptimizeRuns == 0; r++ {
			for _, ep := range eps {
				if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
					return nil, nil, err
				}
			}
		}
		return eng, eps, nil
	}
	engA, epsA, err := warm()
	if err != nil {
		return err
	}
	engB, epsB, err := warm()
	if err != nil {
		return err
	}
	mon, err := sentry.New(sentry.Config{SampleRate: res.SampleRate, Seed: seed}, engB.VM.JIT)
	if err != nil {
		return err
	}
	defer mon.Close()

	var seqA, seqB int
	slice := func(eng *core.Engine, eps []workload.Endpoint, m *sentry.Monitor, seq *int) (float64, error) {
		start := time.Now()
		for i := 0; i < overheadSlice; i++ {
			ep := eps[*seq%len(eps)]
			*seq++
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				return 0, err
			}
			if m != nil {
				// The timed region covers what the serving loop pays:
				// the sampling decision, queue handoff, audit chunks,
				// and any CPU the comparator steals concurrently.
				m.Observe(ep.Name, out)
				if *seq%100 == 99 {
					m.AuditStep(0)
				}
			}
		}
		return float64(time.Since(start).Nanoseconds()) / overheadSlice, nil
	}
	ratios := make([]float64, 0, overheadRounds)
	var baseSum, verSum float64
	for t := 0; t < overheadRounds; t++ {
		a, err := slice(engA, epsA, nil, &seqA)
		if err != nil {
			return err
		}
		b, err := slice(engB, epsB, mon, &seqB)
		if err != nil {
			return err
		}
		baseSum += a
		verSum += b
		ratios = append(ratios, b/a)
	}
	mon.Drain()
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	res.BaselineNsPerReq = baseSum / overheadRounds
	res.VerifiedNsPerReq = res.BaselineNsPerReq * med
	res.OverheadPct = (med - 1) * 100
	return nil
}

// GateErr reports which acceptance gate the result violates, nil when
// all hold: every injected corruption class detected (checksum audit,
// link audit, or epoch guard), the shadow sampler caught and
// quarantined a culprit, outputs ended bit-identical to the
// interpreter, and 1% sampling cost at most 5% wall-clock.
func (r *VerifyResult) GateErr() error {
	if r.CorruptFired == 0 || r.CorruptDetected == 0 || !r.CorruptRepaired {
		return fmt.Errorf("verify gate: code corruption not detected/repaired (fired %d, detected %d, repaired %v)",
			r.CorruptFired, r.CorruptDetected, r.CorruptRepaired)
	}
	if r.TornFired == 0 || r.TornResidual != 0 {
		return fmt.Errorf("verify gate: torn links not neutralized (fired %d, detected %d, residual %d)",
			r.TornFired, r.TornDetected, r.TornResidual)
	}
	if r.StaleICFired == 0 || r.StaleICDropped == 0 {
		return fmt.Errorf("verify gate: stale ICs not dropped (fired %d, dropped %d)",
			r.StaleICFired, r.StaleICDropped)
	}
	if r.ShadowDivergences == 0 || r.ShadowQuarantined == 0 {
		return fmt.Errorf("verify gate: shadow sampler missed the divergence (divergences %d, quarantined %d)",
			r.ShadowDivergences, r.ShadowQuarantined)
	}
	if !r.OutputsMatch {
		return fmt.Errorf("verify gate: final outputs differ from the interpreter reference")
	}
	if r.OverheadPct > 5 {
		return fmt.Errorf("verify gate: %.2f%% overhead at %.0f%% sampling (limit 5%%)",
			r.OverheadPct, r.SampleRate*100)
	}
	return nil
}

// ReportVerify renders the experiment.
func ReportVerify(w io.Writer, r *VerifyResult) {
	fmt.Fprintf(w, "Self-verification — sentinels, shadow execution, bisection (seed %d)\n", r.Seed)
	fmt.Fprintf(w, "code corruption: %d injected, %d caught by checksum audit, repaired=%v\n",
		r.CorruptFired, r.CorruptDetected, r.CorruptRepaired)
	fmt.Fprintf(w, "torn links:      %d injected, %d caught by link audit, %d residual\n",
		r.TornFired, r.TornDetected, r.TornResidual)
	fmt.Fprintf(w, "stale ICs:       %d injected, %d dropped by the epoch guard\n",
		r.StaleICFired, r.StaleICDropped)
	fmt.Fprintf(w, "shadow sampling: %d divergences, %d culprits quarantined, %d bisection replays",
		r.ShadowDivergences, r.ShadowQuarantined, r.BisectionReplays)
	if r.CulpritFunc >= 0 {
		fmt.Fprintf(w, " (culprit fn %d pc %d)", r.CulpritFunc, r.CulpritPC)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "outputs bit-identical to JIT-disabled reference: %v\n", r.OutputsMatch)
	fmt.Fprintf(w, "overhead at %.0f%% sampling: %.0f -> %.0f ns/req (%+.2f%%)\n",
		r.SampleRate*100, r.BaselineNsPerReq, r.VerifiedNsPerReq, r.OverheadPct)
	m := r.Monitor
	fmt.Fprintf(w, "monitor: %d checksums, %d audited (%d sweeps), %d shadow runs, %d invalidated\n",
		m.ChecksumsRecorded, m.Audited, m.AuditSweeps, m.ShadowRuns, m.Invalidated)
}
