// Package hhbc defines the HipHop-style stack bytecode that is the
// interface between the ahead-of-time pipeline (parser → emitter →
// hhbbc) and the runtime engines (interpreter and JIT). Like HHBC it
// is untyped, stack-based, and carries type information only through
// AssertRATL/AssertRAStk assertion instructions.
package hhbc

// Op is a bytecode opcode.
type Op uint8

const (
	OpNop Op = iota

	// Constants: push a literal.
	OpInt    // A = immediate int64 (via unit int pool index)
	OpDouble // A = double pool index
	OpString // A = string pool index
	OpTrue
	OpFalse
	OpNull

	// Stack manipulation.
	OpPopC // pop and decref
	OpDup  // duplicate top (increfs)

	// Locals. A = local slot.
	OpCGetL   // push local value (incref)
	OpCGetL2  // push local value under the top of stack (incref)
	OpPopL    // pop into local (decref old)
	OpSetL    // store top into local without popping (incref value, decref old)
	OpPushL   // move local onto stack, leaving local Uninit (no refcount ops)
	OpIncDecL // A = local, B = IncDecOp; pushes pre/post value
	OpIsTypeL // A = local, B = type kind bits; pushes bool
	OpUnsetL  // A = local; decref, set Uninit

	// Type assertions (from hhbbc static analysis). A = local or stack
	// depth, B = encoded type. No runtime effect; consumed by the JIT.
	OpAssertRATL
	OpAssertRAStk

	// Arithmetic / string.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	OpNeg

	// Comparison / logic.
	OpGt
	OpGte
	OpLt
	OpLte
	OpEq
	OpNeq
	OpSame
	OpNSame
	OpNot
	OpCastBool
	OpCastInt
	OpCastDouble
	OpCastString

	// Control flow. A = target pc.
	OpJmp
	OpJmpZ
	OpJmpNZ
	OpSwitch // A = switch-table index (dense int switch); pops int
	OpRetC   // return top of stack
	OpThrow  // throw top of stack (must be object)
	OpCatch  // at handler entry: pushes the caught exception
	OpFatal  // A = string pool index: raise runtime fatal

	// Arrays.
	OpNewArray       // push empty mixed array
	OpNewPackedArray // A = n: pop n elems, push packed array
	OpAddElemC       // pop val, key, arr; push arr with arr[key]=val
	OpAddNewElemC    // pop val, arr; push arr with arr[]=val
	OpArrIdx         // pop key, arr(value); push elem (incref); decrefs arr+key
	OpArrGetL        // A = local holding array; pop key; push elem (incref)
	OpArrSetL        // A = local; pop key (top) then val; local[key]=val with COW
	OpArrAppendL     // A = local; pop val; local[] = val with COW
	OpArrUnsetL      // A = local; pop key; unset(local[key]) with COW
	OpAKExistsL      // A = local; pop key; push bool

	// Iterators. A = iterator slot, B = jump target.
	OpIterInitL // iterate local array (A=iter, B=exit target, C=local)
	OpIterNext  // advance; jump to B (loop body head) if more
	OpIterKey   // push current key (A = iter)
	OpIterValue // push current value (A = iter, increfs)
	OpIterFree  // release iterator (A = iter)

	// Functions and methods.
	OpFCallD          // A = nargs, B = func-name pool index: pop args, push result
	OpFCallBuiltin    // A = nargs, B = name pool index
	OpFCallObjMethodD // A = nargs, B = method-name pool index: pop args then obj
	OpNewObjD         // A = class-name pool index: push new object (ctor called by emitter sequence)
	OpThis            // push $this (incref)
	OpCGetPropD       // A = prop-name pool index: pop obj, push prop (incref)
	OpSetPropD        // A = prop-name pool index: pop val, obj; set prop; push val (incref)
	OpInstanceOfD     // A = class-name pool index: pop cell, push bool
	OpVerifyParamType // A = param index: shallow runtime type-hint check

	// Output.
	OpPrint // pop, write to request output, push Int(1)

	// Profiling support (inserted by the JIT, never by the emitter).
	OpIncProfCounter // A = counter id

	opCount
)

var opNames = [...]string{
	OpNop: "Nop", OpInt: "Int", OpDouble: "Double", OpString: "String",
	OpTrue: "True", OpFalse: "False", OpNull: "Null",
	OpPopC: "PopC", OpDup: "Dup",
	OpCGetL: "CGetL", OpCGetL2: "CGetL2", OpPopL: "PopL", OpSetL: "SetL",
	OpPushL: "PushL", OpIncDecL: "IncDecL", OpIsTypeL: "IsTypeL", OpUnsetL: "UnsetL",
	OpAssertRATL: "AssertRATL", OpAssertRAStk: "AssertRAStk",
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div", OpMod: "Mod",
	OpConcat: "Concat", OpNeg: "Neg",
	OpGt: "Gt", OpGte: "Gte", OpLt: "Lt", OpLte: "Lte",
	OpEq: "Eq", OpNeq: "Neq", OpSame: "Same", OpNSame: "NSame",
	OpNot: "Not", OpCastBool: "CastBool", OpCastInt: "CastInt",
	OpCastDouble: "CastDouble", OpCastString: "CastString",
	OpJmp: "Jmp", OpJmpZ: "JmpZ", OpJmpNZ: "JmpNZ", OpSwitch: "Switch",
	OpRetC: "RetC", OpThrow: "Throw", OpCatch: "Catch", OpFatal: "Fatal",
	OpNewArray: "NewArray", OpNewPackedArray: "NewPackedArray",
	OpAddElemC: "AddElemC", OpAddNewElemC: "AddNewElemC",
	OpArrIdx: "ArrIdx", OpArrGetL: "ArrGetL", OpArrSetL: "ArrSetL",
	OpArrAppendL: "ArrAppendL", OpArrUnsetL: "ArrUnsetL", OpAKExistsL: "AKExistsL",
	OpIterInitL: "IterInitL", OpIterNext: "IterNext", OpIterKey: "IterKey",
	OpIterValue: "IterValue", OpIterFree: "IterFree",
	OpFCallD: "FCallD", OpFCallBuiltin: "FCallBuiltin",
	OpFCallObjMethodD: "FCallObjMethodD", OpNewObjD: "NewObjD",
	OpThis: "This", OpCGetPropD: "CGetPropD", OpSetPropD: "SetPropD",
	OpInstanceOfD: "InstanceOfD", OpVerifyParamType: "VerifyParamType",
	OpPrint: "Print", OpIncProfCounter: "IncProfCounter",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "Op?"
}

// IncDecOp values for OpIncDecL's B immediate.
const (
	PreInc = iota
	PostInc
	PreDec
	PostDec
)

// IsBranch reports whether the op can transfer control non-linearly
// (used by tracelet/region selection to break blocks).
func (o Op) IsBranch() bool {
	switch o {
	case OpJmp, OpJmpZ, OpJmpNZ, OpSwitch, OpRetC, OpThrow, OpFatal,
		OpIterInitL, OpIterNext:
		return true
	}
	return false
}

// IsUnconditionalExit reports ops after which control never falls
// through.
func (o Op) IsUnconditionalExit() bool {
	switch o {
	case OpJmp, OpRetC, OpThrow, OpFatal, OpSwitch:
		return true
	}
	return false
}

// CanThrow reports whether the op may raise a guest error (and so may
// side-exit in JITed code).
func (o Op) CanThrow() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod,
		OpThrow, OpFatal, OpArrIdx, OpArrGetL, OpArrSetL, OpArrAppendL,
		OpFCallD, OpFCallBuiltin, OpFCallObjMethodD, OpNewObjD,
		OpCGetPropD, OpSetPropD, OpVerifyParamType, OpThis:
		return true
	}
	return false
}

// NumPop returns how many cells the op pops for stack-depth tracking;
// -1 means it depends on immediates.
func (o Op) NumPop() int {
	switch o {
	case OpPopC, OpPopL, OpJmpZ, OpJmpNZ, OpSwitch, OpRetC, OpThrow, OpPrint,
		OpNot, OpNeg, OpCastBool, OpCastInt, OpCastDouble, OpCastString,
		OpArrGetL, OpArrAppendL, OpArrUnsetL, OpAKExistsL, OpInstanceOfD,
		OpCGetPropD:
		return 1
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat,
		OpGt, OpGte, OpLt, OpLte, OpEq, OpNeq, OpSame, OpNSame,
		OpArrSetL, OpAddNewElemC, OpSetPropD:
		return 2
	case OpArrIdx:
		return 2
	case OpAddElemC:
		return 3
	case OpFCallD, OpFCallBuiltin, OpFCallObjMethodD, OpNewPackedArray:
		return -1
	}
	return 0
}

// NumPush returns how many cells the op pushes.
func (o Op) NumPush() int {
	switch o {
	case OpInt, OpDouble, OpString, OpTrue, OpFalse, OpNull,
		OpDup, OpCGetL, OpCGetL2, OpPushL, OpIncDecL, OpIsTypeL,
		OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat, OpNeg,
		OpGt, OpGte, OpLt, OpLte, OpEq, OpNeq, OpSame, OpNSame,
		OpNot, OpCastBool, OpCastInt, OpCastDouble, OpCastString,
		OpCatch, OpNewArray, OpNewPackedArray, OpAddElemC, OpAddNewElemC,
		OpArrIdx, OpArrGetL, OpAKExistsL,
		OpIterKey, OpIterValue,
		OpFCallD, OpFCallBuiltin, OpFCallObjMethodD, OpNewObjD,
		OpThis, OpCGetPropD, OpSetPropD, OpInstanceOfD, OpPrint:
		return 1
	}
	return 0
}
