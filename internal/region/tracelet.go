package region

import (
	"repro/internal/hhbc"
	"repro/internal/types"
)

// TypeSource supplies entry types for VM locations. In live and
// profiling modes it inspects the live frame; the profile-guided
// selector replays recorded preconditions.
type TypeSource interface {
	// LocalType returns the entry type of a local (TCell if unknown).
	LocalType(slot int) types.Type
	// StackType returns the entry type of an eval-stack slot indexed
	// from the bottom.
	StackType(depth int) types.Type
}

// ShapeFactSource optionally extends TypeSource with typed-object-
// shape facts (DESIGN.md §14): PropReadType returns the result type
// of the property read at (fn, pc) when the site's shape profile is
// monomorphic and the shape records a stable slot kind, TInitCell
// otherwise. The selector uses it to keep tracing through property
// reads whose types would otherwise be unknown.
type ShapeFactSource interface {
	PropReadType(fnID, pc int, name string) types.Type
}

// SelectMode controls tracelet termination rules.
type SelectMode int

const (
	// ModeLive: gen-1 tracelets — maximal single-entry blocks ended
	// at branches or when an unknown type is consumed.
	ModeLive SelectMode = iota
	// ModeProfiling additionally breaks at all jumps and after
	// instructions that may side-exit (calls), so profile counters
	// give exact basic-block frequencies (Section 4.1).
	ModeProfiling
)

// DefaultMaxInstrs bounds tracelet length.
const DefaultMaxInstrs = 120

// builtinRet gives known result types for hot builtins; anything else
// returns InitCell.
var builtinRet = map[string]types.Type{
	"count": types.TInt, "strlen": types.TInt, "abs": types.TNum,
	"intval": types.TInt, "floatval": types.TDbl, "strval": types.TStr,
	"is_int": types.TBool, "is_float": types.TBool, "is_string": types.TBool,
	"is_array": types.TBool, "is_bool": types.TBool, "is_null": types.TBool,
	"is_numeric": types.TBool, "implode": types.TStr, "substr": types.TStr,
	"strtoupper": types.TStr, "strtolower": types.TStr, "strrev": types.TStr,
	"str_repeat": types.TStr, "sqrt": types.TDbl, "floor": types.TDbl,
	"ceil": types.TDbl, "round": types.TDbl, "ord": types.TInt, "chr": types.TStr,
	"array_sum": types.TNum, "in_array": types.TBool, "array_key_exists": types.TBool,
	"array_keys":   types.ArrOfKind(types.ArrayPacked),
	"array_values": types.ArrOfKind(types.ArrayPacked),
}

// sval is a symbolic stack value.
type sval struct {
	t types.Type
	// origin, when non-nil, names the pristine entry location this
	// value came from, so stronger constraints can upgrade its guard.
	origin *Loc
}

// selector walks bytecode computing type flow and guard needs.
type selector struct {
	unit *hhbc.Unit
	fn   *hhbc.Func
	src  TypeSource
	mode SelectMode
	max  int

	locals   map[int]types.Type
	pristine map[int]bool
	stack    []sval
	iters    map[int32]types.ArrayKind

	guards map[Loc]*Guard
	block  *Block
}

// Select forms a tracelet starting at pc with the given entry stack
// depth. It returns the block (never nil; a block always contains at
// least one instruction).
func Select(u *hhbc.Unit, fn *hhbc.Func, pc int, entryDepth int, src TypeSource, mode SelectMode, maxInstrs int) *Block {
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxInstrs
	}
	s := &selector{
		unit: u, fn: fn, src: src, mode: mode, max: maxInstrs,
		locals:   map[int]types.Type{},
		pristine: map[int]bool{},
		iters:    map[int32]types.ArrayKind{},
		guards:   map[Loc]*Guard{},
	}
	for i := 0; i < fn.NumLocals; i++ {
		s.pristine[i] = true
	}
	b := &Block{
		Func: fn, Start: pc, EntryStackDepth: entryDepth,
		ProfCounter: -1,
	}
	s.block = b
	for d := 0; d < entryDepth; d++ {
		t := src.StackType(d)
		b.EntryStackTypes = append(b.EntryStackTypes, t)
		loc := Loc{LocStack, d}
		s.stack = append(s.stack, sval{t: types.TInitCell, origin: &loc})
	}

	cur := pc
	for cur-pc < s.max {
		in := fn.Instrs[cur]
		include, endAfter, succs := s.step(in, cur)
		if !include {
			// The instruction needs information this tracelet cannot
			// provide: end before it; it starts the next translation.
			b.Succs = []int{cur}
			break
		}
		cur++
		b.NumInstrs = cur - pc
		if endAfter {
			b.Succs = succs
			break
		}
		if s.mode == ModeProfiling && breaksProfilingBlock(in.Op) {
			b.Succs = []int{cur}
			break
		}
	}
	if b.NumInstrs == 0 {
		// Force progress: include one instruction generically.
		b.NumInstrs = 1
		in := fn.Instrs[pc]
		if !in.Op.IsUnconditionalExit() {
			b.Succs = []int{pc + 1}
		}
	}
	if b.NumInstrs > 0 && b.Succs == nil && cur-pc >= s.max {
		b.Succs = []int{cur}
	}

	for _, g := range s.guards {
		b.Preconds = append(b.Preconds, *g)
	}
	sortGuards(b.Preconds)
	b.PostLocals = s.locals
	return b
}

func sortGuards(gs []Guard) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && guardLess(gs[j], gs[j-1]); j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

func guardLess(a, b Guard) bool {
	if a.Loc.Kind != b.Loc.Kind {
		return a.Loc.Kind < b.Loc.Kind
	}
	return a.Loc.Slot < b.Loc.Slot
}

// breaksProfilingBlock reports ops after which profiling translations
// end (rules 1-2 in Section 4.1).
func breaksProfilingBlock(op hhbc.Op) bool {
	switch op {
	case hhbc.OpFCallD, hhbc.OpFCallObjMethodD, hhbc.OpFCallBuiltin,
		hhbc.OpNewObjD, hhbc.OpThrow, hhbc.OpVerifyParamType:
		return true
	}
	return false
}

// localType returns the current known type of a local.
func (s *selector) localType(slot int) types.Type {
	if t, ok := s.locals[slot]; ok {
		return t
	}
	return types.TCell
}

// guardLocal tries to establish constraint con on a local's entry
// type. Returns the resulting type and whether the constraint is now
// satisfied.
func (s *selector) guardLocal(slot int, con TypeConstraint) (types.Type, bool) {
	cur := s.localType(slot)
	if con.Satisfied(cur) {
		s.upgradeGuard(Loc{LocLocal, slot}, con)
		return cur, true
	}
	if !s.pristine[slot] {
		return cur, false
	}
	t := s.src.LocalType(slot)
	if !con.Satisfied(t) {
		return cur, false
	}
	loc := Loc{LocLocal, slot}
	s.setGuard(loc, t, con)
	s.locals[slot] = t
	return t, true
}

// needVal tries to establish con on a stack value, upgrading its
// origin guard when possible.
func (s *selector) needVal(v *sval, con TypeConstraint) bool {
	if con.Satisfied(v.t) {
		if v.origin != nil {
			s.upgradeGuard(*v.origin, con)
		}
		return true
	}
	if v.origin == nil {
		return false
	}
	var t types.Type
	if v.origin.Kind == LocLocal {
		if !s.pristine[v.origin.Slot] {
			return false
		}
		t = s.src.LocalType(v.origin.Slot)
	} else {
		t = s.src.StackType(v.origin.Slot)
	}
	if !con.Satisfied(t) {
		return false
	}
	s.setGuard(*v.origin, t, con)
	v.t = t
	if v.origin.Kind == LocLocal {
		s.locals[v.origin.Slot] = t
	}
	return true
}

func (s *selector) setGuard(loc Loc, t types.Type, con TypeConstraint) {
	if g, ok := s.guards[loc]; ok {
		g.Type = g.Type.Intersect(t)
		if g.Type.IsBottom() {
			g.Type = t
		}
		g.Constraint = g.Constraint.Stronger(con)
		return
	}
	s.guards[loc] = &Guard{Loc: loc, Type: t, Constraint: con}
}

func (s *selector) upgradeGuard(loc Loc, con TypeConstraint) {
	if g, ok := s.guards[loc]; ok {
		g.Constraint = g.Constraint.Stronger(con)
	}
}

// widenObjGuard widens a property-access object's entry guard to the
// bare Obj kind (DESIGN.md §14): the shape guard or inline cache in
// the translation body subsumes the class, so pinning the class here
// would split identical-layout receivers across chained translations
// for nothing. Guards already strengthened to ConSpecialized by
// another consumer (method dispatch) are left alone.
func (s *selector) widenObjGuard(v *sval) {
	if v.origin == nil {
		return
	}
	g, ok := s.guards[*v.origin]
	if !ok || g.Constraint > ConSpecific || !g.Type.SubtypeOf(types.TObj) {
		return
	}
	g.Type = g.Type.Unspecialize()
	v.t = v.t.Unspecialize()
	if v.origin.Kind == LocLocal {
		s.locals[v.origin.Slot] = v.t
	}
}

// wantVal is like needVal but tolerates failure (the consumer falls
// back to a generic path).
func (s *selector) wantVal(v *sval, con TypeConstraint) {
	s.needVal(v, con)
}

func (s *selector) push(t types.Type) { s.stack = append(s.stack, sval{t: t}) }

func (s *selector) pushFrom(v sval) { s.stack = append(s.stack, v) }

func (s *selector) pop() sval {
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v
}

func (s *selector) writeLocal(slot int, t types.Type) {
	s.locals[slot] = t
	s.pristine[slot] = false
}
