package interp_test

import (
	"strings"
	"testing"

	"repro/internal/emitter"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/runtime"
)

// prelude defines the Exception hierarchy every program gets.
const prelude = `
class Exception {
  public $message = "";
  function __construct($m = "") { $this->message = $m; }
  function getMessage() { return $this->message; }
}
class RuntimeException extends Exception {}
`

// run compiles and interprets src, returning printed output.
func run(t *testing.T, src string) string {
	t.Helper()
	out, err := tryRun(src)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return out
}

func tryRun(src string) (string, error) {
	prog, err := parser.Parse(prelude + src)
	if err != nil {
		return "", err
	}
	unit, err := emitter.Emit(prog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	env, err := interp.NewEnv(unit, runtime.NewHeap(), &sb)
	if err != nil {
		return "", err
	}
	main := unit.Funcs[unit.Main]
	_, err = env.Call(main, nil, nil)
	return sb.String(), err
}

func TestArithmeticAndEcho(t *testing.T) {
	got := run(t, `echo 1 + 2 * 3, "\n", 10 / 4, "\n", 7 % 3;`)
	want := "7\n2.5\n1"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestVariablesAndStrings(t *testing.T) {
	got := run(t, `
$x = 5;
$y = $x + 2.5;
$name = "world";
echo "hello $name: $y";
`)
	if got != "hello world: 7.5" {
		t.Errorf("got %q", got)
	}
}

func TestControlFlow(t *testing.T) {
	got := run(t, `
$sum = 0;
for ($i = 0; $i < 10; $i++) {
  if ($i % 2 == 0) { $sum += $i; }
}
$j = 0;
while ($j < 3) { $j++; }
echo $sum, " ", $j;
`)
	if got != "20 3" {
		t.Errorf("got %q", got)
	}
}

func TestAvgPositive(t *testing.T) {
	// The paper's running example (Figure 2).
	got := run(t, `
function avgPositive($arr) {
  $sum = 0;
  $n = 0;
  $size = count($arr);
  for ($i = 0; $i < $size; $i++) {
    $elem = $arr[$i];
    if ($elem > 0) {
      $sum = $sum + $elem;
      $n++;
    }
  }
  if ($n == 0) {
    throw new Exception("no positive numbers");
  }
  return $sum / $n;
}
echo avgPositive([1, -2, 3, 4.5, -0.5]), "\n";
try {
  avgPositive([-1, -2]);
} catch (Exception $e) {
  echo "caught: ", $e->getMessage();
}
`)
	want := "2.8333333333333\ncaught: no positive numbers"
	if !strings.HasPrefix(got, "2.83") || !strings.HasSuffix(got, "caught: no positive numbers") {
		t.Errorf("got %q, want like %q", got, want)
	}
}

func TestArraysPackedAndMixed(t *testing.T) {
	got := run(t, `
$a = [1, 2, 3];
$a[] = 4;
$a[0] = 10;
$m = ["x" => 1, "y" => 2];
$m["z"] = $m["x"] + $m["y"];
unset($m["x"]);
echo count($a), " ", $a[0], " ", $m["z"], " ", count($m);
`)
	if got != "4 10 3 2" {
		t.Errorf("got %q", got)
	}
}

func TestForeach(t *testing.T) {
	got := run(t, `
$total = 0;
$keys = "";
foreach ([10, 20, 30] as $v) { $total += $v; }
foreach (["a" => 1, "b" => 2] as $k => $v) { $keys .= $k; $total += $v; }
echo $total, " ", $keys;
`)
	if got != "63 ab" {
		t.Errorf("got %q", got)
	}
}

func TestClassesAndMethods(t *testing.T) {
	got := run(t, `
class Point {
  public $x = 0;
  public $y = 0;
  function __construct($x, $y) { $this->x = $x; $this->y = $y; }
  function norm2() { return $this->x * $this->x + $this->y * $this->y; }
}
class Point3 extends Point {
  public $z = 0;
  function __construct($x, $y, $z) { $this->x = $x; $this->y = $y; $this->z = $z; }
  function norm2() { return $this->x*$this->x + $this->y*$this->y + $this->z*$this->z; }
}
$p = new Point(3, 4);
$q = new Point3(1, 2, 2);
echo $p->norm2(), " ", $q->norm2(), " ";
echo $q instanceof Point ? "yes" : "no";
`)
	if got != "25 9 yes" {
		t.Errorf("got %q", got)
	}
}

func TestDestructorTiming(t *testing.T) {
	// Destructors must run at the exact point the last reference
	// dies — the observable refcounting behaviour the paper calls out.
	got := run(t, `
class D {
  public $name = "";
  function __construct($n) { $this->name = $n; }
  function __destruct() { echo "~", $this->name, ";"; }
}
$a = new D("a");
$b = $a;       // refcount 2
$a = null;     // still alive
echo "mid;";
$b = null;     // dies here
echo "end;";
`)
	if got != "mid;~a;end;" {
		t.Errorf("destructor timing wrong: got %q", got)
	}
}

func TestCopyOnWrite(t *testing.T) {
	got := run(t, `
$a = [1, 2, 3];
$b = $a;        // shared, refcount 2
$b[0] = 99;     // COW copy: $a unchanged
echo $a[0], " ", $b[0];
`)
	if got != "1 99" {
		t.Errorf("got %q", got)
	}
}

func TestSwitchDense(t *testing.T) {
	got := run(t, `
function f($n) {
  switch ($n) {
    case 1: return "one";
    case 2: return "two";
    case 3: return "three";
    default: return "many";
  }
}
echo f(1), f(2), f(3), f(9);
`)
	if got != "onetwothreemany" {
		t.Errorf("got %q", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	got := run(t, `
$n = 1;
$s = "";
switch ($n) {
  case 1: $s .= "a";
  case 2: $s .= "b"; break;
  case 3: $s .= "c";
}
echo $s;
`)
	if got != "ab" {
		t.Errorf("got %q", got)
	}
}

func TestRecursion(t *testing.T) {
	got := run(t, `
function fib($n) { return $n < 2 ? $n : fib($n-1) + fib($n-2); }
echo fib(15);
`)
	if got != "610" {
		t.Errorf("got %q", got)
	}
}

func TestBuiltins(t *testing.T) {
	got := run(t, `
echo strlen("hello"), " ", strtoupper("abc"), " ", implode(",", [1,2,3]),
     " ", max(3, 7, 5), " ", abs(-4);
`)
	if got != "5 ABC 1,2,3 7 4" {
		t.Errorf("got %q", got)
	}
}

func TestTypeHints(t *testing.T) {
	if _, err := tryRun(`function f(int $x) { return $x; } f("nope");`); err == nil {
		t.Error("expected type-hint violation")
	}
	got := run(t, `function g(float $x) { return $x + 0.5; } echo g(2);`)
	if got != "2.5" {
		t.Errorf("int-to-float widening failed: got %q", got)
	}
}

func TestUncaughtError(t *testing.T) {
	_, err := tryRun(`throw new Exception("boom");`)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected uncaught exception, got %v", err)
	}
}

func TestNestedTryAndRethrow(t *testing.T) {
	got := run(t, `
class AErr extends Exception {}
class BErr extends Exception {}
try {
  try {
    throw new BErr("inner");
  } catch (AErr $e) {
    echo "wrong;";
  }
} catch (BErr $e) {
  echo "right:", $e->getMessage();
}
`)
	if got != "right:inner" {
		t.Errorf("got %q", got)
	}
}

func TestStaticMethodCall(t *testing.T) {
	got := run(t, `
class M { static function twice($x) { return $x * 2; } }
echo M::twice(21);
`)
	if got != "42" {
		t.Errorf("got %q", got)
	}
}

func TestBreakContinueInLoops(t *testing.T) {
	got := run(t, `
$s = "";
foreach ([1,2,3,4,5] as $v) {
  if ($v == 2) { continue; }
  if ($v == 4) { break; }
  $s .= $v;
}
echo $s;
`)
	if got != "13" {
		t.Errorf("got %q", got)
	}
}

func TestCompoundAssignAndIncDecOnIndex(t *testing.T) {
	got := run(t, `
$a = [1, 2];
$a[0] += 10;
$a[1]++;
$o = new Exception("x");
$o->message .= "y";
echo $a[0], $a[1], $o->getMessage();
`)
	if got != "113xy" {
		t.Errorf("got %q", got)
	}
}

func TestSpaceship(t *testing.T) {
	got := run(t, `echo 1 <=> 2, 2 <=> 2, 3 <=> 2, "a" <=> "b";`)
	if got != "-101-1" {
		t.Errorf("spaceship results: %q", got)
	}
}
