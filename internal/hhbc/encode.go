package hhbc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
)

// Binary serialization of units: the "bytecode repository" deployed to
// servers in HHVM's architecture (Figure 1 of the paper). The format
// is a simple tagged stream with varint-encoded integers.

const unitMagic = "HHBC\x02"

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) i64(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) b(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

// EncodeUnit serializes u.
func EncodeUnit(u *Unit) []byte {
	var e encoder
	e.buf.WriteString(unitMagic)
	e.u64(uint64(len(u.Strings)))
	for _, s := range u.Strings {
		e.str(s)
	}
	e.u64(uint64(len(u.Ints)))
	for _, v := range u.Ints {
		e.i64(v)
	}
	e.u64(uint64(len(u.Doubles)))
	for _, v := range u.Doubles {
		e.u64(math.Float64bits(v))
	}
	e.u64(uint64(len(u.Funcs)))
	for _, f := range u.Funcs {
		encodeFunc(&e, f)
	}
	e.u64(uint64(len(u.Classes)))
	for _, c := range u.Classes {
		encodeClass(&e, c)
	}
	e.i64(int64(u.Main))
	return e.buf.Bytes()
}

func encodeFunc(e *encoder, f *Func) {
	e.str(f.Name)
	e.str(f.Class)
	e.b(f.IsMethod)
	e.u64(uint64(len(f.Params)))
	for _, p := range f.Params {
		e.str(p.Name)
		e.str(p.TypeHint)
		e.b(p.Nullable)
		e.b(p.HasDefault)
		if p.HasDefault {
			e.u64(uint64(p.DefaultKind))
			e.i64(p.DefaultInt)
			e.u64(math.Float64bits(p.DefaultDbl))
			e.str(p.DefaultStr)
		}
	}
	e.u64(uint64(f.NumLocals))
	e.u64(uint64(len(f.LocalName)))
	for _, n := range f.LocalName {
		e.str(n)
	}
	e.u64(uint64(len(f.Instrs)))
	for _, in := range f.Instrs {
		e.buf.WriteByte(byte(in.Op))
		e.i64(int64(in.A))
		e.i64(int64(in.B))
		e.i64(int64(in.C))
	}
	e.u64(uint64(len(f.EHTable)))
	for _, eh := range f.EHTable {
		e.u64(uint64(eh.Start))
		e.u64(uint64(eh.End))
		e.u64(uint64(eh.Handler))
	}
	e.u64(uint64(len(f.Switches)))
	for _, sw := range f.Switches {
		e.i64(sw.Base)
		e.u64(uint64(len(sw.Targets)))
		for _, t := range sw.Targets {
			e.u64(uint64(t))
		}
		e.u64(uint64(sw.Default))
	}
}

func encodeClass(e *encoder, c *ClassDef) {
	e.str(c.Name)
	e.str(c.Parent)
	e.u64(uint64(len(c.Ifaces)))
	for _, i := range c.Ifaces {
		e.str(i)
	}
	e.u64(uint64(len(c.Props)))
	for _, p := range c.Props {
		e.str(p.Name)
		e.u64(uint64(p.DefaultKind))
		e.i64(p.DefaultInt)
		e.u64(math.Float64bits(p.DefaultDbl))
		e.str(p.DefaultStr)
	}
	e.u64(uint64(len(c.Methods)))
	for _, m := range sortedMethodList(c.Methods) {
		e.str(m.name)
		e.u64(uint64(m.id))
	}
	e.b(c.HasDtor)
}

type methodEnt struct {
	name string
	id   int
}

func sortedMethodList(m map[string]int) []methodEnt {
	out := make([]methodEnt, 0, len(m))
	for n, id := range m {
		out = append(out, methodEnt{n, id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func decodeKind(v uint64) types.Kind { return types.Kind(v) }

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = errors.New("hhbc: truncated varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.err = errors.New("hhbc: truncated varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := int(d.u64())
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.err = errors.New("hhbc: truncated string")
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) b() bool {
	if d.err != nil || d.pos >= len(d.data) {
		d.err = errors.New("hhbc: truncated bool")
		return false
	}
	v := d.data[d.pos] != 0
	d.pos++
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.data) {
		d.err = errors.New("hhbc: truncated byte")
		return 0
	}
	v := d.data[d.pos]
	d.pos++
	return v
}

// DecodeUnit parses a serialized unit.
func DecodeUnit(data []byte) (*Unit, error) {
	if len(data) < len(unitMagic) || string(data[:len(unitMagic)]) != unitMagic {
		return nil, errors.New("hhbc: bad magic")
	}
	d := &decoder{data: data, pos: len(unitMagic)}
	u := NewUnit()
	for n := d.u64(); n > 0; n-- {
		u.Strings = append(u.Strings, d.str())
	}
	for n := d.u64(); n > 0; n-- {
		u.Ints = append(u.Ints, d.i64())
	}
	for n := d.u64(); n > 0; n-- {
		u.Doubles = append(u.Doubles, math.Float64frombits(d.u64()))
	}
	nf := d.u64()
	for i := uint64(0); i < nf && d.err == nil; i++ {
		f := decodeFunc(d)
		f.ID = int(i)
		u.Funcs = append(u.Funcs, f)
	}
	nc := d.u64()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		u.Classes = append(u.Classes, decodeClass(d))
	}
	u.Main = int(d.i64())
	if d.err != nil {
		return nil, fmt.Errorf("hhbc: decode failed: %w", d.err)
	}
	u.ReindexNames()
	return u, nil
}

func decodeFunc(d *decoder) *Func {
	f := &Func{}
	f.Name = d.str()
	f.Class = d.str()
	f.IsMethod = d.b()
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		p := Param{Name: d.str(), TypeHint: d.str(), Nullable: d.b(), HasDefault: d.b()}
		if p.HasDefault {
			p.DefaultKind = decodeKind(d.u64())
			p.DefaultInt = d.i64()
			p.DefaultDbl = math.Float64frombits(d.u64())
			p.DefaultStr = d.str()
		}
		f.Params = append(f.Params, p)
	}
	f.NumLocals = int(d.u64())
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		f.LocalName = append(f.LocalName, d.str())
	}
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		in := Instr{Op: Op(d.byte())}
		in.A = int32(d.i64())
		in.B = int32(d.i64())
		in.C = int32(d.i64())
		f.Instrs = append(f.Instrs, in)
	}
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		f.EHTable = append(f.EHTable, EHEnt{int(d.u64()), int(d.u64()), int(d.u64())})
	}
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		sw := SwitchTable{Base: d.i64()}
		for m := d.u64(); m > 0 && d.err == nil; m-- {
			sw.Targets = append(sw.Targets, int(d.u64()))
		}
		sw.Default = int(d.u64())
		f.Switches = append(f.Switches, sw)
	}
	return f
}

func decodeClass(d *decoder) *ClassDef {
	c := &ClassDef{Methods: map[string]int{}}
	c.Name = d.str()
	c.Parent = d.str()
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		c.Ifaces = append(c.Ifaces, d.str())
	}
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		p := PropDef{Name: d.str()}
		p.DefaultKind = decodeKind(d.u64())
		p.DefaultInt = d.i64()
		p.DefaultDbl = math.Float64frombits(d.u64())
		p.DefaultStr = d.str()
		c.Props = append(c.Props, p)
	}
	for n := d.u64(); n > 0 && d.err == nil; n-- {
		name := d.str()
		c.Methods[name] = int(d.u64())
	}
	c.HasDtor = d.b()
	return c
}
