package hhbc

import "testing"

// buildHashUnit makes a unit whose function references the string and
// int pools, with pool layout controlled by prefill strings/ints added
// before the function's own literals.
func buildHashUnit(prefillStrs []string, prefillInts []int64) (*Unit, *Func) {
	u := NewUnit()
	for _, s := range prefillStrs {
		u.InternString(s)
	}
	for _, v := range prefillInts {
		u.InternInt(v)
	}
	f := &Func{Name: "f", NumLocals: 2}
	f.Instrs = []Instr{
		{Op: OpInt, A: u.InternInt(42)},
		{Op: OpString, A: u.InternString("hello")},
		{Op: OpFCallD, A: 1, B: u.InternString("callee")},
		{Op: OpSetL, A: 0},
		{Op: OpRetC},
	}
	u.AddFunc(f)
	return u, f
}

// TestBytecodeHashPoolStable: the hash must not change when pool
// indices shift because other code in the unit interned values first.
func TestBytecodeHashPoolStable(t *testing.T) {
	u1, f1 := buildHashUnit(nil, nil)
	u2, f2 := buildHashUnit([]string{"zzz", "aaa", "unrelated"}, []int64{7, 9, 11})
	if f1.Instrs[0].A == f2.Instrs[0].A {
		t.Fatal("test setup failed to shift pool indices")
	}
	if h1, h2 := f1.BytecodeHash(u1), f2.BytecodeHash(u2); h1 != h2 {
		t.Errorf("hash changed with pool reordering: %x vs %x", h1, h2)
	}
}

func TestBytecodeHashSensitive(t *testing.T) {
	u1, f1 := buildHashUnit(nil, nil)
	base := f1.BytecodeHash(u1)

	// Different literal value -> different hash.
	u2, f2 := buildHashUnit(nil, nil)
	f2.Instrs[0].A = u2.InternInt(43)
	if f2.BytecodeHash(u2) == base {
		t.Error("hash ignored a changed int literal")
	}

	// Different instruction -> different hash.
	u3, f3 := buildHashUnit(nil, nil)
	f3.Instrs[3].Op = OpPopL
	if f3.BytecodeHash(u3) == base {
		t.Error("hash ignored a changed opcode")
	}

	// Changed signature -> different hash.
	u4, f4 := buildHashUnit(nil, nil)
	f4.Params = append(f4.Params, Param{Name: "x"})
	if f4.BytecodeHash(u4) == base {
		t.Error("hash ignored an added parameter")
	}
}

func TestBytecodeHashSwitchTables(t *testing.T) {
	mk := func(def int) (*Unit, *Func) {
		u := NewUnit()
		f := &Func{Name: "s"}
		f.Switches = []SwitchTable{{Base: 0, Targets: []int{2, 3}, Default: def}}
		f.Instrs = []Instr{{Op: OpSwitch, A: 0}, {Op: OpRetC}}
		u.AddFunc(f)
		return u, f
	}
	u1, f1 := mk(4)
	u2, f2 := mk(5)
	if f1.BytecodeHash(u1) == f2.BytecodeHash(u2) {
		t.Error("hash ignored switch-table contents")
	}
}
