package hhbc

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Instr is one decoded bytecode instruction. PC values are indices
// into Func.Instrs. A/B/C are immediates whose meaning depends on Op
// (see opcodes.go).
type Instr struct {
	Op      Op
	A, B, C int32
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpTrue, OpFalse, OpNull, OpPopC, OpDup, OpAdd, OpSub, OpMul,
		OpDiv, OpMod, OpConcat, OpNeg, OpGt, OpGte, OpLt, OpLte, OpEq, OpNeq,
		OpSame, OpNSame, OpNot, OpRetC, OpThrow, OpCatch, OpNewArray,
		OpAddElemC, OpAddNewElemC, OpArrIdx, OpThis, OpPrint,
		OpCastBool, OpCastInt, OpCastDouble, OpCastString:
		return in.Op.String()
	case OpIterInitL, OpIterNext:
		return fmt.Sprintf("%s %d %d %d", in.Op, in.A, in.B, in.C)
	case OpFCallD, OpFCallBuiltin, OpFCallObjMethodD, OpIncDecL, OpIsTypeL,
		OpAssertRATL, OpAssertRAStk:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}

// Param describes a function parameter.
type Param struct {
	Name string
	// TypeHint is the shallow runtime-checked hint ("" = none). Like
	// HHVM, only shallow hints are enforced; deeper Hack hints are
	// discarded by the runtime.
	TypeHint string
	Nullable bool
	// HasDefault + Default: optional parameter default (uncounted
	// literal kinds only).
	HasDefault  bool
	DefaultKind types.Kind
	DefaultInt  int64
	DefaultDbl  float64
	DefaultStr  string
}

// EHEnt is an exception-handler table entry: bytecode range
// [Start,End) is protected by the handler at Handler.
type EHEnt struct {
	Start, End, Handler int
}

// SwitchTable is the jump table for OpSwitch: Base + i indexes into
// Targets, with Default for out-of-range.
type SwitchTable struct {
	Base    int64
	Targets []int
	Default int
}

// Func is a compiled guest function or method.
type Func struct {
	ID   int // dense unit-wide ID
	Name string
	// Class is "" for free functions; methods are named Class::name.
	Class     string
	IsMethod  bool
	Params    []Param
	NumLocals int // params first, then locals
	LocalName []string
	Instrs    []Instr
	EHTable   []EHEnt
	Switches  []SwitchTable

	// ParamTypes, inferred by hhbbc, give entry types for each
	// parameter used by region selectors; nil = unknown (TCell).
	ParamTypes []types.Type
}

// HandlerFor returns the innermost handler covering pc, or -1.
func (f *Func) HandlerFor(pc int) int {
	best := -1
	bestSize := 1 << 30
	for _, eh := range f.EHTable {
		if pc >= eh.Start && pc < eh.End && eh.End-eh.Start < bestSize {
			best = eh.Handler
			bestSize = eh.End - eh.Start
		}
	}
	return best
}

// FullName returns Class::Name for methods, Name otherwise.
func (f *Func) FullName() string {
	if f.Class != "" {
		return f.Class + "::" + f.Name
	}
	return f.Name
}

// PropDef is a class property definition.
type PropDef struct {
	Name        string
	DefaultKind types.Kind
	DefaultInt  int64
	DefaultDbl  float64
	DefaultStr  string
}

// ClassDef is the bytecode-level class. The VM links it into a
// runtime.Class at load time.
type ClassDef struct {
	Name    string
	Parent  string
	Ifaces  []string
	Props   []PropDef
	Methods map[string]int // lowercase method name -> Func.ID
	HasDtor bool
}

// Unit is a compiled compilation unit (one source file / program):
// the deployment artifact produced ahead of time.
type Unit struct {
	Funcs   []*Func
	Classes []*ClassDef
	// Pools referenced by instruction immediates.
	Strings []string
	Ints    []int64
	Doubles []float64

	// Main is the ID of the pseudo-main function.
	Main int

	funcByName map[string]int
	strIndex   map[string]int
}

// NewUnit returns an empty unit.
func NewUnit() *Unit {
	return &Unit{Main: -1, funcByName: map[string]int{}, strIndex: map[string]int{}}
}

// AddFunc appends f, assigns its ID, and indexes its name.
func (u *Unit) AddFunc(f *Func) int {
	f.ID = len(u.Funcs)
	u.Funcs = append(u.Funcs, f)
	u.funcByName[strings.ToLower(f.FullName())] = f.ID
	return f.ID
}

// FuncByName resolves a (case-insensitive) function name.
func (u *Unit) FuncByName(name string) (*Func, bool) {
	id, ok := u.funcByName[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return u.Funcs[id], true
}

// InternString adds s to the string pool, deduplicated.
func (u *Unit) InternString(s string) int32 {
	if i, ok := u.strIndex[s]; ok {
		return int32(i)
	}
	u.strIndex[s] = len(u.Strings)
	u.Strings = append(u.Strings, s)
	return int32(len(u.Strings) - 1)
}

// InternInt and InternDouble add literals to the pools.
func (u *Unit) InternInt(v int64) int32 {
	for i, x := range u.Ints {
		if x == v {
			return int32(i)
		}
	}
	u.Ints = append(u.Ints, v)
	return int32(len(u.Ints) - 1)
}

func (u *Unit) InternDouble(v float64) int32 {
	for i, x := range u.Doubles {
		if x == v {
			return int32(i)
		}
	}
	u.Doubles = append(u.Doubles, v)
	return int32(len(u.Doubles) - 1)
}

// ReindexNames rebuilds the name index (after decoding).
func (u *Unit) ReindexNames() {
	u.funcByName = make(map[string]int, len(u.Funcs))
	for _, f := range u.Funcs {
		u.funcByName[strings.ToLower(f.FullName())] = f.ID
	}
	u.strIndex = make(map[string]int, len(u.Strings))
	for i, s := range u.Strings {
		u.strIndex[s] = i
	}
}
