package hhbc_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hhbc"
	"repro/internal/types"
)

func compile(t *testing.T, src string) *hhbc.Unit {
	t.Helper()
	u, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	u := compile(t, `
class P { public $x = 1; function get() { return $this->x; } }
function f(int $a, $b = "d") {
  $m = ["k" => 1];
  foreach ($m as $k => $v) { $a += $v; }
  switch ($a) { case 1: return 1; case 2: return 2; case 3: return 3; default: return 0; }
}
try { echo f(1); } catch (Exception $e) { echo "x"; }
`)
	blob := hhbc.EncodeUnit(u)
	u2, err := hhbc.DecodeUnit(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Funcs) != len(u.Funcs) || len(u2.Classes) != len(u.Classes) {
		t.Fatalf("structure changed: %d/%d funcs, %d/%d classes",
			len(u2.Funcs), len(u.Funcs), len(u2.Classes), len(u.Classes))
	}
	for i, f := range u.Funcs {
		g := u2.Funcs[i]
		if f.FullName() != g.FullName() || !reflect.DeepEqual(f.Instrs, g.Instrs) ||
			!reflect.DeepEqual(f.EHTable, g.EHTable) ||
			!reflect.DeepEqual(f.Switches, g.Switches) {
			t.Errorf("func %s changed across roundtrip", f.FullName())
		}
	}
	if err := hhbc.VerifyUnit(u2); err != nil {
		t.Errorf("decoded unit fails verification: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := hhbc.DecodeUnit([]byte("not a unit")); err == nil {
		t.Error("garbage decoded without error")
	}
	u := compile(t, `echo 1;`)
	blob := hhbc.EncodeUnit(u)
	// Truncations must error, not panic.
	for _, n := range []int{6, len(blob) / 2, len(blob) - 1} {
		if n >= len(blob) {
			continue
		}
		if _, err := hhbc.DecodeUnit(blob[:n]); err == nil {
			t.Errorf("truncated blob (%d bytes) decoded without error", n)
		}
	}
}

// Property: encode(decode(encode(u))) == encode(u).
func TestEncodeDeterministic(t *testing.T) {
	u := compile(t, `function g($x) { return $x * 2; } echo g(21);`)
	b1 := hhbc.EncodeUnit(u)
	u2, err := hhbc.DecodeUnit(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := hhbc.EncodeUnit(u2)
	if !reflect.DeepEqual(b1, b2) {
		t.Error("encoding is not a fixpoint across decode")
	}
}

func TestVerifierCatchesBadBytecode(t *testing.T) {
	u := hhbc.NewUnit()
	f := &hhbc.Func{Name: "bad", NumLocals: 1}
	// Jump out of range.
	f.Instrs = []hhbc.Instr{{Op: hhbc.OpJmp, A: 99}}
	u.AddFunc(f)
	if err := hhbc.VerifyFunc(u, f); err == nil {
		t.Error("out-of-range jump not caught")
	}
	// Stack underflow.
	f2 := &hhbc.Func{Name: "bad2"}
	f2.Instrs = []hhbc.Instr{{Op: hhbc.OpPopC}, {Op: hhbc.OpRetC}}
	u.AddFunc(f2)
	if err := hhbc.VerifyFunc(u, f2); err == nil {
		t.Error("stack underflow not caught")
	}
	// Falling off the end.
	f3 := &hhbc.Func{Name: "bad3"}
	f3.Instrs = []hhbc.Instr{{Op: hhbc.OpNull}}
	u.AddFunc(f3)
	if err := hhbc.VerifyFunc(u, f3); err == nil {
		t.Error("fallthrough off end not caught")
	}
}

// Property: RAT encoding roundtrips for every representable type.
func TestRATRoundtrip(t *testing.T) {
	u := hhbc.NewUnit()
	samples := []types.Type{
		types.TInt, types.TDbl, types.TStr, types.TArr, types.TObj,
		types.TNull, types.TUninit, types.TCell, types.TUncounted,
		types.ArrOfKind(types.ArrayPacked), types.ArrOfKind(types.ArrayMixed),
		types.ObjOfClass("Foo", true), types.ObjOfClass("Bar", false),
		types.TNum, types.TInitCell,
	}
	for _, ty := range samples {
		b, c := u.EncodeRAT(ty)
		got := u.DecodeRAT(b, c)
		if !(got.SubtypeOf(ty) && ty.SubtypeOf(got)) {
			t.Errorf("RAT roundtrip changed %v -> %v", ty, got)
		}
	}
	// Fuzz kind bitsets.
	f := func(bits uint8) bool {
		ty := types.FromKind(types.Kind(bits))
		b, c := u.EncodeRAT(ty)
		got := u.DecodeRAT(b, c)
		return got.SubtypeOf(ty) && ty.SubtypeOf(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembleMentionsNames(t *testing.T) {
	u := compile(t, `function f($arr) { return count($arr); } echo f([1]);`)
	f, _ := u.FuncByName("f")
	dis := hhbc.Disassemble(u, f)
	if dis == "" || len(dis) < 40 {
		t.Errorf("disassembly too short: %q", dis)
	}
}
