// Package parser builds an AST from PHP-subset source text using
// recursive descent with precedence climbing for expressions.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// Error is a parse error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &ast.Program{}
	for !p.atEOF() {
		switch {
		case p.isIdent("function"):
			f, err := p.funcDecl("")
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		case p.isIdent("class"), p.isIdent("interface"):
			c, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, c)
		default:
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			prog.Main = append(prog.Main, s)
		}
	}
	return prog, nil
}

func (p *Parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool       { return p.cur().Kind == lexer.TEOF }
func (p *Parser) next() lexer.Token { t := p.cur(); p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isOp(op string) bool {
	return p.cur().Kind == lexer.TOp && p.cur().Text == op
}

func (p *Parser) isIdent(kw string) bool {
	return p.cur().Kind == lexer.TIdent && strings.EqualFold(p.cur().Text, kw)
}

func (p *Parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptIdent(kw string) bool {
	if p.isIdent(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	if p.cur().Kind != lexer.TIdent {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().Text, nil
}

func (p *Parser) posOf() (int, int) {
	t := p.cur()
	return t.Line, t.Col
}

// ---------- declarations ----------

func (p *Parser) funcDecl(class string) (*ast.FuncDecl, error) {
	line, col := p.posOf()
	p.next() // function
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	// Optional return type hint ": type" — parsed and discarded, like
	// HHVM discards deep Hack hints at runtime.
	if p.acceptOp(":") {
		p.acceptOp("?")
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f := &ast.FuncDecl{Name: name, Params: params, Body: body, Class: class}
	f.SetPos(line, col)
	return f, nil
}

func (p *Parser) paramList() ([]ast.Param, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []ast.Param
	for !p.isOp(")") {
		var prm ast.Param
		if p.acceptOp("?") {
			prm.Nullable = true
		}
		if p.cur().Kind == lexer.TIdent {
			prm.TypeHint = strings.ToLower(p.next().Text)
			if prm.TypeHint != "int" && prm.TypeHint != "float" &&
				prm.TypeHint != "string" && prm.TypeHint != "bool" &&
				prm.TypeHint != "array" {
				// class hint: keep original case
				prm.TypeHint = p.toks[p.pos-1].Text
			}
		}
		if p.cur().Kind != lexer.TVar {
			return nil, p.errf("expected parameter variable, found %s", p.cur())
		}
		prm.Name = p.next().Text
		if p.acceptOp("=") {
			def, err := p.expr()
			if err != nil {
				return nil, err
			}
			prm.Default = def
		}
		params = append(params, prm)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) classDecl() (*ast.ClassDecl, error) {
	isIface := p.isIdent("interface")
	p.next() // class | interface
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c := &ast.ClassDecl{Name: name, IsInterface: isIface}
	if p.acceptIdent("extends") {
		c.Parent, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptIdent("implements") {
		for {
			iface, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			c.Ifaces = append(c.Ifaces, iface)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	for !p.isOp("}") {
		// visibility modifiers are accepted and ignored
		for p.isIdent("public") || p.isIdent("private") || p.isIdent("protected") {
			p.next()
		}
		static := p.acceptIdent("static")
		switch {
		case p.isIdent("function"):
			m, err := p.funcDecl(name)
			if err != nil {
				return nil, err
			}
			m.Static = static
			c.Methods = append(c.Methods, m)
		case p.cur().Kind == lexer.TVar:
			prop := ast.PropDecl{Name: p.next().Text}
			if p.acceptOp("=") {
				def, err := p.expr()
				if err != nil {
					return nil, err
				}
				prop.Default = def
			}
			if err := p.expectOp(";"); err != nil {
				return nil, err
			}
			c.Props = append(c.Props, prop)
		default:
			return nil, p.errf("expected class member, found %s", p.cur())
		}
	}
	return c, p.expectOp("}")
}

// ---------- statements ----------

func (p *Parser) block() ([]ast.Stmt, error) {
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	for !p.isOp("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

// blockOrStmt parses { ... } or a single statement.
func (p *Parser) blockOrStmt() ([]ast.Stmt, error) {
	if p.isOp("{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []ast.Stmt{s}, nil
}

func (p *Parser) stmt() (ast.Stmt, error) {
	switch {
	case p.isIdent("echo"):
		p.next()
		var args []ast.Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.acceptOp(",") {
				break
			}
		}
		return &ast.Echo{Args: args}, p.expectOp(";")
	case p.isIdent("return"):
		p.next()
		r := &ast.Return{}
		if !p.isOp(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.E = e
		}
		return r, p.expectOp(";")
	case p.isIdent("if"):
		return p.ifStmt()
	case p.isIdent("while"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		return &ast.While{Cond: cond, Body: body}, nil
	case p.isIdent("for"):
		return p.forStmt()
	case p.isIdent("foreach"):
		return p.foreachStmt()
	case p.isIdent("break"):
		p.next()
		return &ast.Break{}, p.expectOp(";")
	case p.isIdent("continue"):
		p.next()
		return &ast.Continue{}, p.expectOp(";")
	case p.isIdent("throw"):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.Throw{E: e}, p.expectOp(";")
	case p.isIdent("try"):
		return p.tryStmt()
	case p.isIdent("switch"):
		return p.switchStmt()
	case p.isIdent("unset"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.Unset{E: e}, p.expectOp(";")
	case p.isOp("{"):
		// bare block: flatten into an if(true) — rare; simplest is to
		// parse and wrap.
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.If{Cond: &ast.BoolLit{Value: true}, Then: body}, nil
	case p.isOp(";"):
		p.next()
		return &ast.ExprStmt{E: &ast.NullLit{}}, nil
	default:
		line, col := p.posOf()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s := &ast.ExprStmt{E: e}
		s.SetPos(line, col)
		return s, p.expectOp(";")
	}
}

func (p *Parser) ifStmt() (ast.Stmt, error) {
	p.next() // if | elseif
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	node := &ast.If{Cond: cond, Then: then}
	switch {
	case p.isIdent("elseif"):
		els, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.Else = []ast.Stmt{els}
	case p.isIdent("else"):
		p.next()
		if p.isIdent("if") {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = []ast.Stmt{els}
		} else {
			els, err := p.blockOrStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *Parser) forStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	node := &ast.For{}
	for !p.isOp(";") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Init = append(node.Init, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	if !p.isOp(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	for !p.isOp(")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Step = append(node.Step, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

func (p *Parser) foreachStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	arr, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.acceptIdent("as") {
		return nil, p.errf("expected 'as' in foreach")
	}
	if p.cur().Kind != lexer.TVar {
		return nil, p.errf("expected variable in foreach")
	}
	first := p.next().Text
	node := &ast.Foreach{Arr: arr, ValVar: first}
	if p.acceptOp("=>") {
		if p.cur().Kind != lexer.TVar {
			return nil, p.errf("expected value variable in foreach")
		}
		node.KeyVar = first
		node.ValVar = p.next().Text
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

func (p *Parser) tryStmt() (ast.Stmt, error) {
	p.next()
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &ast.Try{Body: body}
	for p.isIdent("catch") {
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cls, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.cur().Kind != lexer.TVar {
			return nil, p.errf("expected catch variable")
		}
		v := p.next().Text
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		cbody, err := p.block()
		if err != nil {
			return nil, err
		}
		node.Catches = append(node.Catches, ast.Catch{Class: cls, Var: v, Body: cbody})
	}
	if len(node.Catches) == 0 {
		return nil, p.errf("try without catch")
	}
	return node, nil
}

func (p *Parser) switchStmt() (ast.Stmt, error) {
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	subj, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	node := &ast.Switch{Subject: subj}
	for !p.isOp("}") {
		switch {
		case p.acceptIdent("case"):
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			node.Cases = append(node.Cases, ast.SwitchCase{Value: val, Body: body})
		case p.acceptIdent("default"):
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			node.Default = body
		default:
			return nil, p.errf("expected case/default, found %s", p.cur())
		}
	}
	return node, p.expectOp("}")
}

func (p *Parser) caseBody() ([]ast.Stmt, error) {
	var body []ast.Stmt
	for !p.isIdent("case") && !p.isIdent("default") && !p.isOp("}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}
