package region

import (
	"sort"

	"repro/internal/profile"
)

// TransCFG is the control-flow graph over a function's profiling
// translations (Section 5.2.1). Nodes are profiling blocks; a single
// bytecode address can have several nodes for different input-type
// combinations.
type TransCFG struct {
	Nodes   []*Block
	IDs     []profile.TransID
	Weights []uint64
	// Succ[i] lists node indices reachable from node i, with arc
	// weights (observed during profiling, estimated when missing).
	Succ map[int][]WeightedArc
}

// WeightedArc is one TransCFG edge.
type WeightedArc struct {
	To     int
	Weight uint64
}

// BuildTransCFG assembles the CFG for one function from its profiling
// blocks and the counter store.
func BuildTransCFG(blocks []*Block, ids []profile.TransID, counters *profile.Counters) *TransCFG {
	g := &TransCFG{Nodes: blocks, IDs: ids, Succ: map[int][]WeightedArc{}}
	idx := map[profile.TransID]int{}
	for i, id := range ids {
		idx[id] = i
		g.Weights = append(g.Weights, counters.Count(id))
	}
	inSet := map[profile.TransID]bool{}
	for _, id := range ids {
		inSet[id] = true
	}
	// Observed arcs first.
	haveArc := map[[2]int]bool{}
	for arc, w := range counters.Arcs(inSet) {
		fi, okF := idx[arc.From]
		ti, okT := idx[arc.To]
		if !okF || !okT {
			continue
		}
		g.Succ[fi] = append(g.Succ[fi], WeightedArc{To: ti, Weight: w})
		haveArc[[2]int{fi, ti}] = true
	}
	// Static successors not observed get estimated (zero) weights so
	// the region former can still walk cold-but-possible paths.
	byStart := map[int][]int{}
	for i, b := range blocks {
		byStart[b.Start] = append(byStart[b.Start], i)
	}
	for i, b := range blocks {
		for _, spc := range b.Succs {
			for _, ti := range byStart[spc] {
				if !haveArc[[2]int{i, ti}] {
					g.Succ[i] = append(g.Succ[i], WeightedArc{To: ti, Weight: 0})
				}
			}
		}
	}
	// Total order (weight desc, then target index): observed arcs come
	// off a map, and a weight-only comparison would leave equal-weight
	// arcs in random relative order — the region former's DFS follows
	// this order, so ties must break deterministically or region shape
	// (and emitted code) varies run to run.
	for i := range g.Succ {
		sort.Slice(g.Succ[i], func(a, b int) bool {
			if g.Succ[i][a].Weight != g.Succ[i][b].Weight {
				return g.Succ[i][a].Weight > g.Succ[i][b].Weight
			}
			return g.Succ[i][a].To < g.Succ[i][b].To
		})
	}
	return g
}

// FormRegionsConfig tunes the profile-guided region former.
type FormRegionsConfig struct {
	// MaxBCInstrs caps the bytecode size of one region (large
	// functions split into multiple regions; Section 5.2.1).
	MaxBCInstrs int
	// MinBlockWeight prunes blocks colder than this fraction of the
	// region entry's weight. The paper found pruning unprofitable, so
	// the default is 0 (keep everything reachable).
	MinBlockWeight uint64
}

// DefaultFormConfig mirrors the paper's choices.
var DefaultFormConfig = FormRegionsConfig{MaxBCInstrs: 600}

// FormRegions builds optimized-mode regions for one function from its
// TransCFG: DFS growth from the lowest uncovered bytecode address,
// retranslation chains sorted by profile counts (Section 5.2.1).
func FormRegions(g *TransCFG, cfg FormRegionsConfig) []*Desc {
	if cfg.MaxBCInstrs == 0 {
		cfg.MaxBCInstrs = DefaultFormConfig.MaxBCInstrs
	}
	covered := make([]bool, len(g.Nodes))
	var regions []*Desc
	for {
		start := -1
		// Start at the uncovered block with the lowest bytecode
		// address; for the first region this is the function entry.
		for i, b := range g.Nodes {
			if covered[i] {
				continue
			}
			if start == -1 || b.Start < g.Nodes[start].Start ||
				(b.Start == g.Nodes[start].Start && g.Weights[i] > g.Weights[start]) {
				start = i
			}
		}
		if start == -1 {
			return regions
		}
		regions = append(regions, formOne(g, start, covered, cfg))
	}
}

func formOne(g *TransCFG, start int, covered []bool, cfg FormRegionsConfig) *Desc {
	desc := &Desc{Arcs: map[int][]int{}, Weight: map[int]uint64{}}
	nodeToRegion := map[int]int{}

	size := 0
	var dfs func(n int)
	dfs = func(n int) {
		if covered[n] || size+g.Nodes[n].NumInstrs > cfg.MaxBCInstrs {
			return
		}
		if g.Weights[n] < cfg.MinBlockWeight {
			return
		}
		covered[n] = true
		ri := len(desc.Blocks)
		nodeToRegion[n] = ri
		desc.Blocks = append(desc.Blocks, g.Nodes[n])
		desc.Weight[ri] = g.Weights[n]
		size += g.Nodes[n].NumInstrs
		for _, arc := range g.Succ[n] {
			dfs(arc.To)
		}
	}
	dfs(start)

	// Region-internal arcs.
	for n, ri := range nodeToRegion {
		for _, arc := range g.Succ[n] {
			if ti, ok := nodeToRegion[arc.To]; ok {
				desc.Arcs[ri] = append(desc.Arcs[ri], ti)
			}
		}
		sort.Ints(desc.Arcs[ri])
	}

	chainRetranslations(desc)
	return desc
}

// chainRetranslations groups region blocks that start at the same
// bytecode address and orders each chain by decreasing profile count,
// so the hottest type combination is guard-checked first (the
// B7,B6,B5,B4 example in Section 5.2.1).
func chainRetranslations(d *Desc) {
	byStart := map[int][]int{}
	for i, b := range d.Blocks {
		byStart[b.Start] = append(byStart[b.Start], i)
	}
	d.Chains = nil
	starts := make([]int, 0, len(byStart))
	for s := range byStart {
		starts = append(starts, s)
	}
	sort.Ints(starts)
	for _, s := range starts {
		chain := byStart[s]
		sort.Slice(chain, func(a, b int) bool {
			if d.Weight[chain[a]] != d.Weight[chain[b]] {
				return d.Weight[chain[a]] > d.Weight[chain[b]]
			}
			return chain[a] < chain[b]
		})
		d.Chains = append(d.Chains, chain)
	}
}
