package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Fleet traffic model: requests arrive from a large simulated user
// population (millions of users, a Zipfian few of them responsible
// for most traffic) against endpoints whose popularity is itself
// skewed (the head endpoints dominate, the long tail is lukewarm),
// modulated by a diurnal demand curve. This is the workload shape the
// paper's fleet serves: Facebook-scale traffic is neither uniform
// across users nor across endpoints nor across the day.

// Traffic describes the fleet-level request source.
type Traffic struct {
	// eps is the endpoint suite in popularity-rank order (rank 0 is
	// the hottest endpoint): the Zipf draw indexes into it.
	eps []Endpoint
	// Users is the simulated user-population size.
	Users int
	// UserS / EndpointS are the Zipf skew exponents (> 1; larger =
	// more skewed).
	UserS     float64
	EndpointS float64
}

// NewTraffic ranks the endpoint suite by traffic weight and wraps it
// in a Zipfian user/endpoint source. users is the simulated
// population size; userS and endpointS are the Zipf exponents
// (values <= 1 fall back to defaults 1.4 and 1.2).
func NewTraffic(eps []Endpoint, users int, userS, endpointS float64) *Traffic {
	ranked := append([]Endpoint(nil), eps...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Weight > ranked[j].Weight })
	if users < 1 {
		users = 1
	}
	if userS <= 1 {
		userS = 1.4
	}
	if endpointS <= 1 {
		endpointS = 1.2
	}
	return &Traffic{eps: ranked, Users: users, UserS: userS, EndpointS: endpointS}
}

// Endpoints returns the suite in popularity-rank order.
func (t *Traffic) Endpoints() []Endpoint { return t.eps }

// Stream is one deterministic request stream drawn from the traffic
// model — a host's (or a load generator's) view of arriving users and
// the endpoints they hit. Streams with the same seed replay the same
// request sequence.
type Stream struct {
	rng    *rand.Rand
	userZ  *rand.Zipf
	epZ    *rand.Zipf
	parent *Traffic
}

// NewStream derives a seeded request stream.
func (t *Traffic) NewStream(seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	return &Stream{
		rng:    rng,
		userZ:  rand.NewZipf(rng, t.UserS, 8, uint64(t.Users-1)),
		epZ:    rand.NewZipf(rng, t.EndpointS, 4, uint64(len(t.eps)-1)),
		parent: t,
	}
}

// Next draws the next request: the active user's ID and the endpoint
// they hit.
func (s *Stream) Next() (user uint64, ep Endpoint) {
	return s.userZ.Uint64(), s.parent.eps[s.epZ.Uint64()]
}

// Diurnal returns the demand multiplier at a simulated minute: a
// sinusoid with one cycle per period, mean 1, swinging between 1-amp
// (trough) and 1+amp (peak). period <= 0 or amp <= 0 disables the
// curve (multiplier 1).
func Diurnal(minute, period int, amp float64) float64 {
	if period <= 0 || amp <= 0 {
		return 1
	}
	return 1 + amp*math.Sin(2*math.Pi*float64(minute)/float64(period))
}
