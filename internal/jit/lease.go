package jit

import "sync"

// leaseTable implements per-function translation leases (PR 8),
// replacing the single global compile mutex when Config.CompileWorkers
// > 1. HHVM's write lease serializes code emission globally; keying
// the lease by FuncID lets worker-minted tracelets of different
// functions — and the background optimizer's per-function batches —
// run their backends in parallel on real cores, while compiles of the
// same function still serialize (they share profiling state and
// retranslation chains).
//
// The optimizer acquires with writer preference: a writer announces
// itself before waiting, and readers arriving at an announced function
// queue behind it. That keeps the single global republish from being
// starved by a stream of minting workers hammering a hot function.
//
// Lock order: lease -> j.mu (compiles take j.mu inside the lease, for
// install and recycling; nothing acquires a lease while holding j.mu).
type leaseTable struct {
	mu   sync.Mutex
	cond *sync.Cond
	// held marks functions whose lease is currently taken.
	held map[int]bool
	// writers counts optimizer acquisitions announced or holding per
	// function; readers defer to them.
	writers map[int]int
	// readersWaiting counts blocked reader acquisitions per function
	// (to detect writer-preference takeovers).
	readersWaiting map[int]int

	// Stats, guarded by mu.
	acquires uint64 // total lease acquisitions
	waits    uint64 // acquisitions that blocked at least once
	steals   uint64 // writer acquisitions that jumped a waiting reader
}

func newLeaseTable() *leaseTable {
	t := &leaseTable{
		held:           map[int]bool{},
		writers:        map[int]int{},
		readersWaiting: map[int]int{},
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// acquire takes the lease of function fn, blocking while it is held.
// Writer acquisitions (the optimizer) take priority over queued
// readers (minting workers).
func (t *leaseTable) acquire(fn int, writer bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.acquires++
	blocked := false
	if writer {
		t.writers[fn]++
		if t.readersWaiting[fn] > 0 {
			t.steals++
		}
		for t.held[fn] {
			blocked = true
			t.cond.Wait()
		}
	} else {
		for t.held[fn] || t.writers[fn] > 0 {
			blocked = true
			t.readersWaiting[fn]++
			t.cond.Wait()
			t.readersWaiting[fn]--
		}
	}
	if blocked {
		t.waits++
	}
	t.held[fn] = true
}

// release drops the lease of fn and wakes every waiter (the table
// shares one condition variable; spurious wakeups re-check and sleep).
func (t *leaseTable) release(fn int, writer bool) {
	t.mu.Lock()
	delete(t.held, fn)
	if writer {
		if t.writers[fn]--; t.writers[fn] <= 0 {
			delete(t.writers, fn)
		}
	}
	if t.readersWaiting[fn] == 0 {
		delete(t.readersWaiting, fn)
	}
	t.mu.Unlock()
	t.cond.Broadcast()
}

// statsSnapshot returns (acquires, waits, steals).
func (t *leaseTable) statsSnapshot() (uint64, uint64, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.acquires, t.waits, t.steals
}
