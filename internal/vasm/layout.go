package vasm

import "sort"

// LayoutConfig controls code layout.
type LayoutConfig struct {
	// ProfileGuided uses block weights (Pettis-Hansen chain merging
	// and weight-ordered placement). When false, layout follows the
	// static block order with hint-based splitting only — the
	// fallback the paper's Figure 10 "PGO layout" ablation measures.
	ProfileGuided bool
	// SplitCold moves cold blocks after hot ones and stubs to the
	// frozen tail.
	SplitCold bool
}

// DefaultLayout matches production behaviour.
var DefaultLayout = LayoutConfig{ProfileGuided: true, SplitCold: true}

// Layout orders u.Blocks (filling u.Layout) using Pettis-Hansen
// bottom-up chain merging on the weighted CFG, then applies hot/cold
// splitting and jump optimization (fallthrough conversion).
func Layout(u *Unit, cfg LayoutConfig) {
	n := len(u.Blocks)
	if n == 0 {
		return
	}

	type edge struct {
		from, to int
		w        uint64
	}
	var edges []edge
	succ := func(b *Block) []int {
		var out []int
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case Jmp:
				out = append(out, in.Target1)
			case Jcc:
				out = append(out, in.Target1, in.Target2)
			case JmpTable:
				tbl := u.Tables[in.I64]
				out = append(out, tbl.Targets...)
				out = append(out, tbl.Default)
			case GuardKind, GuardCls, GuardShape:
				if in.Target1 >= 0 {
					out = append(out, in.Target1)
				}
			}
		}
		return out
	}
	for i, b := range u.Blocks {
		for _, s := range succ(b) {
			if s < 0 || s >= n {
				continue
			}
			w := b.Weight
			if u.Blocks[s].Weight < w {
				w = u.Blocks[s].Weight
			}
			edges = append(edges, edge{i, s, w})
		}
	}

	// Pettis-Hansen bottom-up: merge chains over edges by descending
	// weight.
	chainOf := make([]int, n)
	chains := make([][]int, n)
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []int{i}
	}
	if cfg.ProfileGuided {
		sort.SliceStable(edges, func(a, b int) bool { return edges[a].w > edges[b].w })
		for _, e := range edges {
			if e.to == 0 {
				continue // the entry block must stay a chain head
			}
			cf, ct := chainOf[e.from], chainOf[e.to]
			if cf == ct {
				continue
			}
			// Merge only when from is a chain tail and to is a head.
			if chains[cf][len(chains[cf])-1] != e.from || chains[ct][0] != e.to {
				continue
			}
			chains[cf] = append(chains[cf], chains[ct]...)
			for _, b := range chains[ct] {
				chainOf[b] = cf
			}
			chains[ct] = nil
		}
	}

	// Order chains: entry's chain first, then by descending weight.
	type chainInfo struct {
		id     int
		weight uint64
		blocks []int
	}
	var infos []chainInfo
	for id, blocks := range chains {
		if len(blocks) == 0 {
			continue
		}
		var w uint64
		for _, b := range blocks {
			if u.Blocks[b].Weight > w {
				w = u.Blocks[b].Weight
			}
		}
		infos = append(infos, chainInfo{id, w, blocks})
	}
	entryChain := chainOf[0]
	sort.SliceStable(infos, func(a, b int) bool {
		if (infos[a].id == entryChain) != (infos[b].id == entryChain) {
			return infos[a].id == entryChain
		}
		if cfg.ProfileGuided && infos[a].weight != infos[b].weight {
			return infos[a].weight > infos[b].weight
		}
		return infos[a].id < infos[b].id
	})

	var hot, cold, frozen []int
	for _, ci := range infos {
		for _, b := range ci.blocks {
			switch {
			case u.Blocks[b].Hint == HintStub:
				frozen = append(frozen, b)
			case cfg.SplitCold && u.Blocks[b].Hint == HintCold:
				cold = append(cold, b)
			default:
				hot = append(hot, b)
			}
		}
	}
	u.Layout = append(append(hot, cold...), frozen...)

	optimizeJumps(u)
}

// optimizeJumps marks Jmp instructions whose target immediately
// follows in the layout as fallthroughs (Nop'd), and flips Jcc
// targets so the fallthrough successor is adjacent when possible.
func optimizeJumps(u *Unit) {
	posOf := make(map[int]int, len(u.Layout))
	for pos, b := range u.Layout {
		posOf[b] = pos
	}
	for pos, bi := range u.Layout {
		b := u.Blocks[bi]
		if len(b.Instrs) == 0 {
			continue
		}
		last := &b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case Jmp:
			if p, ok := posOf[last.Target1]; ok && p == pos+1 {
				// Fallthrough: the jump disappears from the encoding.
				last.I64 = 1 // marker: zero-size fallthrough
			}
		case Jcc:
			if p, ok := posOf[last.Target2]; ok && p == pos+1 {
				break // already falls through on the likely path
			}
			if p, ok := posOf[last.Target1]; ok && p == pos+1 {
				// Invert the condition so Target2 becomes the jump.
				last.Target1, last.Target2 = last.Target2, last.Target1
				last.I64 ^= jccInverted
			}
		}
	}
}

// jccInverted flags a Jcc whose condition sense is flipped.
const jccInverted = int64(1) << 8
