package core_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestLeaseStressConcurrentMinting exercises the per-function
// translation leases (PR 8) under -race: with CompileWorkers > 1 the
// global compile mutex is gone, so four worker VMs race to mint
// tracelets of different functions in parallel while the background
// optimizer acquires writer leases for its batch — stealing them from
// queued minting workers — and republishes the index mid-traffic.
// Every request's output must still match the interpreter's.
func TestLeaseStressConcurrentMinting(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference outputs from a pure interpreter.
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, ep := range eps {
		var sb strings.Builder
		refEng.VM.SetOut(&sb)
		val, err := refEng.Call(workload.EndpointFunc(ep.Name))
		if err != nil {
			t.Fatalf("reference %s: %v", ep.Name, err)
		}
		refEng.Heap().DecRef(val)
		ref[ep.Name] = sb.String()
	}

	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 300 // fire the global trigger mid-run
	cfg.BackgroundCompile = true
	cfg.CompileWorkers = 4
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const rounds = 40
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(v *vm.VM) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, ep := range eps {
					fn, ok := unit.FuncByName(workload.EndpointFunc(ep.Name))
					if !ok {
						errCh <- fmt.Errorf("endpoint %s: missing function", ep.Name)
						return
					}
					var sb strings.Builder
					v.SetOut(&sb)
					val, err := v.CallFunc(fn, nil, nil)
					if err != nil {
						errCh <- fmt.Errorf("endpoint %s: %v", ep.Name, err)
						return
					}
					v.Heap.DecRef(val)
					if sb.String() != ref[ep.Name] {
						errCh <- fmt.Errorf("endpoint %s: output diverged under lease contention:\n got %q\nwant %q",
							ep.Name, sb.String(), ref[ep.Name])
						return
					}
				}
			}
		}(ws[i])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Wait for the republish the trigger started.
	deadline := time.Now().Add(10 * time.Second)
	for !eng.VM.JIT.Optimized() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !eng.VM.JIT.Optimized() {
		t.Fatal("optimized index never published")
	}
	st := eng.Stats()
	if st.OptimizeRuns != 1 {
		t.Errorf("global retranslation ran %d times, want exactly 1", st.OptimizeRuns)
	}
	if st.LeaseAcquires == 0 {
		t.Error("no lease acquisitions recorded; lease table not in use")
	}
	t.Logf("lease acquires=%d waits=%d steals=%d peak-parallel=%d",
		st.LeaseAcquires, st.LeaseWaits, st.LeaseSteals, st.PeakCompileParallelism)
}

// TestParallelOptimizePublishesIdenticalCode checks the determinism
// contract of the parallel optimizer: fanning backend compiles over N
// workers must publish exactly the same translations — same code
// bytes, same addresses — as the serial path, because placement stays
// sequential in function-sorted order.
func TestParallelOptimizePublishesIdenticalCode(t *testing.T) {
	run := func(compileWorkers int) (jit.Stats, uint64) {
		src, eps := workload.Combined()
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := jit.DefaultConfig()
		cfg.ProfileTrigger = 300
		cfg.CompileWorkers = compileWorkers
		eng, err := core.NewEngine(unit, cfg, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			for _, ep := range eps {
				val, err := eng.Call(workload.EndpointFunc(ep.Name))
				if err != nil {
					t.Fatalf("endpoint %s: %v", ep.Name, err)
				}
				eng.Heap().DecRef(val)
			}
		}
		if !eng.VM.JIT.Optimized() {
			t.Fatal("optimized index never published")
		}
		return eng.Stats(), eng.Cycles()
	}

	serial, serialCycles := run(1)
	parallel, parallelCycles := run(4)
	if serial.OptimizedTranslations != parallel.OptimizedTranslations {
		t.Errorf("optimized translations differ: serial=%d parallel=%d",
			serial.OptimizedTranslations, parallel.OptimizedTranslations)
	}
	if serial.BytesOptimized != parallel.BytesOptimized {
		t.Errorf("optimized code bytes differ: serial=%d parallel=%d",
			serial.BytesOptimized, parallel.BytesOptimized)
	}
	if serialCycles != parallelCycles {
		t.Errorf("guest cycle totals differ: serial=%d parallel=%d",
			serialCycles, parallelCycles)
	}
}
