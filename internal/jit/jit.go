// Package jit orchestrates the three compilation modes of the HHVM
// JIT (Section 4.1): live tracelet translations, instrumented
// profiling translations, and profile-guided optimized region
// translations published at a global retranslation trigger with
// function sorting and huge-page mapping (Section 5.1).
package jit

import (
	"os"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
)

// Mode selects the execution strategy (the Figure 8 comparison).
type Mode int

const (
	// ModeInterp never JITs.
	ModeInterp Mode = iota
	// ModeTracelet is the first-generation design: live tracelets
	// only.
	ModeTracelet
	// ModeProfiling runs profiling translations forever (the JIT-
	// Profile bar in Figure 8).
	ModeProfiling
	// ModeRegion is the full second-generation design.
	ModeRegion
)

func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "interp"
	case ModeTracelet:
		return "tracelet"
	case ModeProfiling:
		return "profiling"
	default:
		return "region"
	}
}

// Config toggles the optimizations evaluated in Figure 10.
type Config struct {
	Mode Mode

	EnableInlining       bool
	EnableRCE            bool
	EnableGuardRelax     bool
	EnableMethodDispatch bool
	// PGOLayout uses profile counts for block layout / hot-cold
	// splitting; FunctionSort orders translations by the C3
	// heuristic; HugePages maps the hot area onto 2 MiB pages.
	PGOLayout    bool
	FunctionSort bool
	HugePages    bool

	// CodeCacheLimit bounds total JITed bytes (0 = default 64 MiB).
	CodeCacheLimit uint64
	// ProfileTrigger fires global retranslation after this many
	// function-entry events (0 = default).
	ProfileTrigger uint64
	// MaxLiveChain bounds live retranslation chains per address.
	MaxLiveChain int
	// LiveThreshold: entries before a live translation is made.
	LiveThreshold uint64
}

// DefaultConfig is the full region JIT with everything on.
func DefaultConfig() Config {
	return Config{
		Mode:                 ModeRegion,
		EnableInlining:       true,
		EnableRCE:            true,
		EnableGuardRelax:     true,
		EnableMethodDispatch: true,
		PGOLayout:            true,
		FunctionSort:         true,
		HugePages:            true,
		CodeCacheLimit:       64 << 20,
		ProfileTrigger:       1500,
		MaxLiveChain:         12,
		LiveThreshold:        2,
	}
}

// Translation is one compiled region resident in the code cache.
type Translation struct {
	FuncID int
	PC     int
	Kind   Mode // which pipeline produced it
	// Preconds are the dispatcher-checked entry conditions.
	Preconds []region.Guard
	// EntryDepth is the required eval-stack depth at entry.
	EntryDepth int
	Code       *mcode.Code
	// ProfID is the profiling counter (profiling translations).
	ProfID profile.TransID
	// Desc is kept for region reuse (inlining) and diagnostics.
	Desc *region.Desc
}

type transKey struct {
	fn int
	pc int
}

// Stats tracks JIT activity for the evaluation harness.
type Stats struct {
	LiveTranslations      int
	ProfilingTranslations int
	OptimizedTranslations int
	BytesLive             uint64
	BytesProfiling        uint64
	BytesOptimized        uint64
	GuardFails            uint64
	Entries               uint64
	OptimizeRuns          int
	CacheFullEvents       uint64

	// Execution breakdown (simulated cycles and event counts).
	MachineCycles uint64
	// MachineCycles split by the kind of translation entered: live
	// tracelets, profiling translations, optimized regions. The
	// live/optimized split is the paper's "time in live translations"
	// steady-state metric.
	MachineCyclesLive      uint64
	MachineCyclesProfiling uint64
	MachineCyclesOptimized uint64
	InterpCycles           uint64
	MachineEnters          uint64
	SideExits              uint64
	BindRequests           uint64
	InterpRuns             uint64
}

// JIT owns the translation cache and compilation pipelines.
type JIT struct {
	Cfg      Config
	Env      *interp.Env
	Unit     *hhbc.Unit
	Counters *profile.Counters
	Cache    *mcode.Cache
	Machine  *machine.Machine
	Meter    *machine.Meter

	trans map[transKey][]*Translation
	// profBlocks collects profiling region blocks per function.
	profBlocks map[int][]*region.Block
	profIDs    map[int][]profile.TransID
	// translationByProfID resolves arcs.
	byProfID map[profile.TransID]*Translation

	entryCount map[transKey]uint64
	// blacklist marks addresses whose translation failed; they stay
	// interpreted.
	blacklist map[transKey]bool
	entries   uint64
	optimized bool
	cacheFull bool

	Stats Stats
}

// New wires a JIT to an environment.
func New(cfg Config, env *interp.Env, meter *machine.Meter) *JIT {
	if cfg.CodeCacheLimit == 0 {
		cfg.CodeCacheLimit = 64 << 20
	}
	if cfg.ProfileTrigger == 0 {
		cfg.ProfileTrigger = 400
	}
	if cfg.MaxLiveChain == 0 {
		cfg.MaxLiveChain = 4
	}
	if cfg.LiveThreshold == 0 {
		cfg.LiveThreshold = 2
	}
	j := &JIT{
		Cfg:        cfg,
		Env:        env,
		Unit:       env.Unit,
		Counters:   profile.NewCounters(),
		Cache:      mcode.NewCache(cfg.CodeCacheLimit),
		Meter:      meter,
		trans:      map[transKey][]*Translation{},
		profBlocks: map[int][]*region.Block{},
		profIDs:    map[int][]profile.TransID{},
		byProfID:   map[profile.TransID]*Translation{},
		entryCount: map[transKey]uint64{},
		blacklist:  map[transKey]bool{},
	}
	j.Machine = machine.New(env, meter, j.Counters, j.Cache)
	return j
}

// frameTypeSource adapts a live frame to the region selector.
type frameTypeSource struct{ fr *interp.Frame }

func (s frameTypeSource) LocalType(slot int) types.Type {
	if slot < len(s.fr.Locals) {
		return s.fr.Locals[slot].Type()
	}
	return types.TUninit
}

func (s frameTypeSource) StackType(depth int) types.Type {
	if depth < len(s.fr.Stack) {
		return s.fr.Stack[depth].Type()
	}
	return types.TCell
}

// guardsMatch checks a translation's preconditions against live frame
// state, charging the per-candidate dispatch fee.
func (j *JIT) guardsMatch(tr *Translation, fr *interp.Frame) bool {
	if tr.EntryDepth != len(fr.Stack) {
		return false
	}
	src := frameTypeSource{fr}
	for _, g := range tr.Preconds {
		var t types.Type
		if g.Loc.Kind == region.LocLocal {
			t = src.LocalType(g.Loc.Slot)
		} else {
			t = src.StackType(g.Loc.Slot)
		}
		if !t.SubtypeOf(g.Type) {
			return false
		}
	}
	return true
}

// Lookup finds (or creates, subject to thresholds) a translation for
// (fn, fr.PC) matching the live frame types. Returns nil to stay in
// the interpreter.
func (j *JIT) Lookup(fn *hhbc.Func, fr *interp.Frame) *Translation {
	if j.Cfg.Mode == ModeInterp {
		return nil
	}
	key := transKey{fn.ID, fr.PC}
	chain := j.trans[key]
	for _, tr := range chain {
		j.Meter.Charge(uint64(3 + 2*len(tr.Preconds))) // chain guard checks
		if j.guardsMatch(tr, fr) {
			return tr
		}
	}
	// Nothing matches: consider translating.
	if j.cacheFull || j.blacklist[key] {
		return nil
	}
	j.entryCount[key]++
	switch j.Cfg.Mode {
	case ModeTracelet:
		if j.entryCount[key] < j.Cfg.LiveThreshold || len(chain) >= j.Cfg.MaxLiveChain {
			return nil
		}
		return j.translateLive(fn, fr)
	case ModeProfiling:
		if len(chain) >= j.Cfg.MaxLiveChain {
			return nil
		}
		return j.translateProfiling(fn, fr)
	case ModeRegion:
		if !j.optimized {
			if len(chain) >= j.Cfg.MaxLiveChain {
				return nil
			}
			return j.translateProfiling(fn, fr)
		}
		// Post-optimization: new code gets live translations.
		if j.entryCount[key] < j.Cfg.LiveThreshold || len(chain) >= j.Cfg.MaxLiveChain {
			return nil
		}
		return j.translateLive(fn, fr)
	}
	return nil
}

// HasMatch reports whether a matching translation exists (OSR check;
// no translation creation, no fee).
func (j *JIT) HasMatch(fn *hhbc.Func, fr *interp.Frame) bool {
	for _, tr := range j.trans[transKey{fn.ID, fr.PC}] {
		if j.guardsMatch(tr, fr) {
			return true
		}
	}
	return false
}

// WantsTranslation reports whether the OSR point should bounce to the
// dispatcher to create a translation. Each query counts as a hotness
// observation so loops that stay in the interpreter eventually cross
// the live-translation threshold.
func (j *JIT) WantsTranslation(fn *hhbc.Func, fr *interp.Frame) bool {
	if j.cacheFull || j.Cfg.Mode == ModeInterp {
		return false
	}
	key := transKey{fn.ID, fr.PC}
	if j.blacklist[key] || len(j.trans[key]) >= j.Cfg.MaxLiveChain {
		return false
	}
	switch j.Cfg.Mode {
	case ModeRegion:
		if !j.optimized {
			return true // profiling translations are made eagerly
		}
	case ModeProfiling:
		return true
	}
	j.entryCount[key]++
	return j.entryCount[key]+1 >= j.Cfg.LiveThreshold
}

// OnEntry counts function entries and fires the global retranslation
// trigger (Section 5.1).
func (j *JIT) OnEntry() {
	j.entries++
	j.Stats.Entries++
	if j.Cfg.Mode == ModeRegion && !j.optimized && j.entries >= j.Cfg.ProfileTrigger {
		j.OptimizeAll()
	}
}

// Optimized reports whether the global trigger has fired.
func (j *JIT) Optimized() bool { return j.optimized }

// RecordArc notes a control transfer between two profiling
// translations (TransCFG edges).
func (j *JIT) RecordArc(from, to *Translation) {
	if from != nil && to != nil && from.Kind == ModeProfiling && to.Kind == ModeProfiling {
		j.Counters.RecordArc(from.ProfID, to.ProfID)
	}
}

// DebugVM enables dispatcher tracing.
var DebugVM = os.Getenv("REPRO_VM_DEBUG") != ""
