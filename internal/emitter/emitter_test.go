package emitter_test

import (
	"testing"

	"repro/internal/emitter"
	"repro/internal/hhbc"
	"repro/internal/parser"
)

func emit(t *testing.T, src string) *hhbc.Unit {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := emitter.Emit(prog)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestEmitterOutputVerifies: every construct the emitter supports must
// produce verifier-clean bytecode.
func TestEmitterOutputVerifies(t *testing.T) {
	srcs := []string{
		`$x = 1 + 2; echo $x;`,
		`function f($a, $b = 3) { return $a + $b; } echo f(1);`,
		`for ($i = 0; $i < 5; $i++) { if ($i == 2) { continue; } if ($i == 4) { break; } }`,
		`foreach ([1,2] as $k => $v) { echo $k, $v; }`,
		`$a = []; $a[] = 1; $a["k"] = 2; $a[0] += 5; unset($a["k"]); echo count($a);`,
		`class C { public $p = 0; function m() { return $this->p; } } $c = new C(); echo $c->m();`,
		`switch (2) { case 1: echo "a"; case 2: echo "b"; break; case 3: echo "c"; default: echo "d"; }`,
		`echo 1 && 0, 1 || 0, !1;`,
		`$s = "x"; $s .= "y"; echo "$s!", '$s';`,
		`echo isset($u), isset($u2[3]);`,
		`echo 5 <=> 3 === 1 ? "" : "", (int)"12", (float)3, (bool)"", (string)7;`,
	}
	for _, src := range srcs {
		u := emit(t, src)
		if err := hhbc.VerifyUnit(u); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

// TestStatementAssignUsesPopL: the emitter must produce the paper's
// Figure 3 pattern — statement-level assignment stores with PopL, not
// SetL+PopC.
func TestStatementAssignUsesPopL(t *testing.T) {
	u := emit(t, `function f($a, $b) { $c = $a + $b; return $c; } echo f(1, 2);`)
	f, _ := u.FuncByName("f")
	sawPopL, sawSetL := false, false
	for _, in := range f.Instrs {
		switch in.Op {
		case hhbc.OpPopL:
			sawPopL = true
		case hhbc.OpSetL:
			sawSetL = true
		}
	}
	if !sawPopL {
		t.Error("statement assignment did not use PopL")
	}
	if sawSetL {
		t.Error("statement assignment wastefully used SetL")
	}
}

// TestDenseSwitchGetsTable: 3+ dense int cases become a Switch table.
func TestDenseSwitchGetsTable(t *testing.T) {
	u := emit(t, `
function f($n) { switch ($n) { case 1: return 1; case 2: return 2; case 3: return 3; } return 0; }
echo f(2);`)
	f, _ := u.FuncByName("f")
	found := false
	for _, in := range f.Instrs {
		if in.Op == hhbc.OpSwitch {
			found = true
		}
	}
	if !found || len(f.Switches) != 1 {
		t.Error("dense switch not lowered to a jump table")
	}
	// Sparse/string switches fall back to a compare chain.
	u2 := emit(t, `switch ($n) { case "a": echo 1; break; case "b": echo 2; break; case "c": echo 3; }`)
	m := u2.Funcs[u2.Main]
	for _, in := range m.Instrs {
		if in.Op == hhbc.OpSwitch {
			t.Error("string switch wrongly used a jump table")
		}
	}
}

// TestEHTableCoversTry: the try body's range maps to the handler.
func TestEHTableCoversTry(t *testing.T) {
	u := emit(t, `try { echo 1; } catch (Exception $e) { echo 2; }`)
	m := u.Funcs[u.Main]
	if len(m.EHTable) != 1 {
		t.Fatalf("EH entries = %d", len(m.EHTable))
	}
	eh := m.EHTable[0]
	if eh.Start >= eh.End || eh.Handler < eh.End {
		t.Errorf("odd EH layout: %+v", eh)
	}
	if m.HandlerFor(eh.Start) != eh.Handler {
		t.Error("HandlerFor misses the protected range")
	}
	if m.HandlerFor(eh.Handler) == eh.Handler {
		t.Error("handler protects itself")
	}
}

func TestErrorsSurface(t *testing.T) {
	bad := []string{
		`break;`,
		`continue;`,
		`class C { public $p = f(); }`, // non-literal default
	}
	for _, src := range bad {
		prog, err := parser.Parse(src)
		if err != nil {
			continue // parser may reject too; fine
		}
		if _, err := emitter.Emit(prog); err == nil {
			t.Errorf("no emit error for %q", src)
		}
	}
}
