package fleet

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/jumpstart"
	"repro/internal/perflab"
	"repro/internal/server"
)

// tinyConfig keeps unit-test fleets fast: few hosts, short horizon,
// small budgets.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	cfg.Minutes = 8
	cfg.CyclesPerMinute = 1_200_000
	cfg.Users = 50_000
	cfg.JIT.ProfileTrigger = 4000
	return cfg
}

// donorSnapshot warms one engine enough to carry a real profile and
// returns snapshots of it (fresh copy each call).
func donorSnapshot(t *testing.T) func() *jumpstart.Snapshot {
	t.Helper()
	cfg := jit.DefaultConfig()
	eng, eps, err := perflab.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, ep := range eps {
			if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	return eng.ProfileSnapshot
}

// TestAggregatorConcurrentPublishPull is the fleet's race test: many
// hosts publish snapshots and the service merges rounds while a
// restarting host pulls the warm aggregate mid-merge and jumpstarts
// from it. Run with -race.
func TestAggregatorConcurrentPublishPull(t *testing.T) {
	snap := donorSnapshot(t)
	agg := NewAggregator(0.9)

	const hosts = 4
	const rounds = 8
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				agg.Publish(h, snap())
			}
		}(h)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			agg.MergeRound(float64(i))
		}
	}()
	// The restarting host: pull whatever aggregate is published and
	// jumpstart a fresh engine from it, repeatedly, mid-merge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			warm := agg.Warm()
			if warm == nil {
				continue
			}
			eng, _, err := perflab.NewEngine(jit.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			if res := eng.LoadProfile(warm); res.LoadedTrans == 0 {
				t.Error("warm aggregate loaded zero translations")
				return
			}
		}
	}()
	wg.Wait()

	// Flush any snapshots still pending, then the aggregate must load.
	agg.MergeRound(float64(rounds))
	warm := agg.Warm()
	if warm == nil {
		t.Fatal("no aggregate after merge rounds")
	}
	eng, _, err := perflab.NewEngine(jit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res := eng.LoadProfile(warm); res.LoadedTrans == 0 {
		t.Fatal("final aggregate loaded zero translations")
	}
	st := agg.Stats()
	if st.Publishes != hosts*rounds || st.MergeRounds == 0 || st.Trans == 0 {
		t.Fatalf("unexpected aggregator stats: %+v", st)
	}
}

// TestAggregatorMergeMatchesDirectMerge replays a publish round by
// hand: one MergeRound over fresh pending snapshots (no prior
// aggregate) must equal the canonical N-way jumpstart.Merge of the
// same snapshots at unit weights.
func TestAggregatorMergeMatchesDirectMerge(t *testing.T) {
	snap := donorSnapshot(t)
	s0, s1, s2 := snap(), snap(), snap()

	agg := NewAggregator(0.9)
	agg.Publish(2, s2)
	agg.Publish(0, s0)
	agg.Publish(1, s1)
	if n := agg.MergeRound(1); n != 3 {
		t.Fatalf("merged %d snapshots, want 3", n)
	}
	want := jumpstart.Merge([]*jumpstart.Snapshot{s0, s1, s2}, nil)
	if !reflect.DeepEqual(agg.Warm(), want) {
		t.Fatal("aggregator round differs from direct N-way merge")
	}
	if agg.StalenessAt(4) != 3 {
		t.Fatalf("staleness = %v, want 3", agg.StalenessAt(4))
	}
}

// TestFleetDeterministic: same seed, same config -> bit-identical
// timelines, even though hosts serve concurrently.
func TestFleetDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("fleet timelines diverged across identical runs")
	}
	if !reflect.DeepEqual(a.HostTimelines, b.HostTimelines) {
		t.Fatal("host timelines diverged across identical runs")
	}
	if a.Requests != b.Requests || a.UniqueUsers != b.UniqueUsers {
		t.Fatalf("traffic diverged: %d/%d reqs, %d/%d users",
			a.Requests, b.Requests, a.UniqueUsers, b.UniqueUsers)
	}
	if a.OutputMismatches != 0 {
		t.Fatalf("%d outputs diverged from single-host serving", a.OutputMismatches)
	}
}

// TestFleetWarmRestartFaster: a host restarting with the aggregator's
// warm aggregate must return to 90% steady RPS faster than one
// restarting cold, and the fleet-level sentinel paths must hold.
func TestFleetWarmRestartFaster(t *testing.T) {
	cfg := tinyConfig()
	cfg.Minutes = 14
	cfg.RestartAt = 7
	cfg.RestartCount = 1

	cold, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmRestart = true
	warm, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Restarts) != 1 || len(warm.Restarts) != 1 {
		t.Fatalf("restarts: cold %d, warm %d, want 1 each", len(cold.Restarts), len(warm.Restarts))
	}
	wr := warm.Restarts[0]
	if !wr.Warm || wr.LoadedTrans == 0 {
		t.Fatalf("warm restart did not load the aggregate: %+v", wr)
	}
	if wr.MinutesTo90 == server.MinutesTo90Never {
		t.Fatal("warm restart never reached 90% steady RPS")
	}
	if c := cold.Restarts[0].MinutesTo90; c != server.MinutesTo90Never && wr.MinutesTo90 >= c {
		t.Fatalf("warm restart (%v min) not faster than cold (%v min)", wr.MinutesTo90, c)
	}
	if !warm.Reached90() {
		t.Fatal("fleet never reached 90% steady RPS")
	}
}

// TestFleetOverloadShedVsDie: under heavy overload, shedding walks
// hosts down the degradation ladder (reaching interp-only) and every
// host survives and recovers; with shedding disabled hosts die.
func TestFleetOverloadShedVsDie(t *testing.T) {
	cfg := tinyConfig()
	cfg.Minutes = 14
	cfg.DiurnalAmp = 0
	cfg.OverloadAt = 6
	cfg.OverloadMinutes = 5
	cfg.OverloadFactor = 2.5
	cfg.ShedRatio = 1.2

	shed, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shed.HostsDied != 0 {
		t.Fatalf("%d hosts died despite shedding", shed.HostsDied)
	}
	interpOnly := 0
	for _, d := range shed.MaxDegradePerHost {
		if d >= jit.DegradeInterpOnly {
			interpOnly++
		}
	}
	if interpOnly == 0 {
		t.Fatal("no host degraded to interp-only under overload")
	}
	if last := shed.Samples[len(shed.Samples)-1]; last.MaxDegrade != jit.DegradeNone {
		t.Fatalf("fleet still degraded (level %d) after overload ended", last.MaxDegrade)
	}

	cfg.DisableShed = true
	cfg.DeathBacklog = 1.2
	died, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if died.HostsDied == 0 {
		t.Fatal("no hosts died with shedding disabled under the same overload")
	}
}

// TestFleetNeverReached90Sentinel: a horizon too short to warm up
// must report the explicit sentinel, not a bogus minute.
func TestFleetNeverReached90Sentinel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Minutes = 2
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reached90() || r.MinutesTo90 != server.MinutesTo90Never {
		t.Fatalf("MinutesTo90 = %v, want sentinel %v", r.MinutesTo90, server.MinutesTo90Never)
	}
}

// TestAssignRouting covers the balancer: shares sum to offered,
// unhealthy hosts get nothing, backlogged hosts get less than clean
// peers of equal capacity.
func TestAssignRouting(t *testing.T) {
	mk := func(backlog float64, up bool) *host {
		h := &host{capFactor: 1, capacityRPS: 100, backlog: backlog}
		if up {
			h.eng = &core.Engine{}
		}
		return h
	}
	hosts := []*host{mk(0, true), mk(150, true), mk(0, false), mk(0, true)}
	shares := assign(300, hosts, 0.25)

	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 299.999 || sum > 300.001 {
		t.Fatalf("shares sum to %v, want 300", sum)
	}
	if shares[2] != 0 {
		t.Fatalf("down host received %v requests", shares[2])
	}
	if shares[1] >= shares[0] {
		t.Fatalf("backlogged host got %v, clean peer %v — least-loaded inverted", shares[1], shares[0])
	}
	if shares[0] != shares[3] {
		t.Fatalf("equal hosts got unequal shares: %v vs %v", shares[0], shares[3])
	}

	// No routable host: everything is lost, nothing assigned.
	for _, s := range assign(300, []*host{mk(0, false)}, 0.25) {
		if s != 0 {
			t.Fatal("assigned traffic with no routable host")
		}
	}
}
