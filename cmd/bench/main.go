// Command bench runs the paper's evaluation experiments and prints
// the corresponding figure's rows or series.
//
// Usage:
//
//	bench -exp fig8|fig9|fig10|fig11|jumpstart|scale|all [-quick] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/perflab"
	"repro/internal/server"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, fig11, jumpstart, scale, all")
	quick := flag.Bool("quick", false, "reduced warmup/measurement volume")
	workers := flag.Int("workers", 4, "worker count for the scale experiment (compared against 1)")
	flag.Parse()

	pc := experiments.Full
	if *quick {
		pc = experiments.Quick
	}

	run := func(name string, f func(perflab.Config) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := f(pc); err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig8", func(pc perflab.Config) error {
		rows, err := experiments.Fig8(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig8(os.Stdout, rows)
		return nil
	})
	run("fig9", func(perflab.Config) error {
		res, err := experiments.Fig9()
		if err != nil {
			return err
		}
		server.Report(os.Stdout, res)
		return nil
	})
	run("jumpstart", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 20
			cfg.CyclesPerMinute = 1_200_000
		}
		c, err := experiments.Jumpstart(cfg)
		if err != nil {
			return err
		}
		experiments.ReportJumpstart(os.Stdout, c)
		return nil
	})
	run("scale", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 12
			cfg.CyclesPerMinute = 1_200_000
		}
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		rows, err := experiments.Scaling(cfg, counts)
		if err != nil {
			return err
		}
		experiments.ReportScaling(os.Stdout, rows)
		return nil
	})
	run("fig10", func(pc perflab.Config) error {
		rows, err := experiments.Fig10(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig10(os.Stdout, rows)
		return nil
	})
	run("fig11", func(pc perflab.Config) error {
		rows, err := experiments.Fig11(pc, nil)
		if err != nil {
			return err
		}
		experiments.ReportFig11(os.Stdout, rows)
		return nil
	})
}
