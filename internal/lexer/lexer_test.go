package lexer_test

import (
	"testing"

	"repro/internal/lexer"
)

func kinds(t *testing.T, src string) []lexer.Token {
	t.Helper()
	toks, err := lexer.Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := kinds(t, `<?php $x = 42 + 3.5; // comment`)
	want := []struct {
		kind lexer.TokKind
		text string
	}{
		{lexer.TVar, "x"}, {lexer.TOp, "="}, {lexer.TInt, "42"},
		{lexer.TOp, "+"}, {lexer.TFloat, "3.5"}, {lexer.TOp, ";"},
		{lexer.TEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind {
			t.Errorf("token %d kind = %v", i, toks[i].Kind)
		}
	}
	if toks[2].Int != 42 || toks[4].Dbl != 3.5 {
		t.Error("literal values wrong")
	}
}

func TestStringEscapes(t *testing.T) {
	toks := kinds(t, `"a\nb" 'c\nd'`)
	if toks[0].Str != "a\nb" {
		t.Errorf("double-quoted escape: %q", toks[0].Str)
	}
	if toks[1].Str != `c\nd` {
		t.Errorf("single-quoted should not unescape \\n: %q", toks[1].Str)
	}
}

func TestMultiCharOperators(t *testing.T) {
	toks := kinds(t, `=== !== <= >= && || -> => :: ++ .= <=>`)
	want := []string{"===", "!==", "<=", ">=", "&&", "||", "->", "=>", "::", "++", ".=", "<=>"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "1 // line\n2 # hash\n3 /* block\nstill */ 4")
	if len(toks) != 5 { // 4 ints + EOF
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "$a\n  $b")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("positions wrong: %+v %+v", toks[0], toks[1])
	}
}

func TestErrors(t *testing.T) {
	if _, err := lexer.Tokenize(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexer.Tokenize("`"); err == nil {
		t.Error("unknown character accepted")
	}
	if _, err := lexer.Tokenize("$ x"); err == nil {
		t.Error("bare $ accepted")
	}
}
