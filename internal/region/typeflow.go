package region

import (
	"repro/internal/hhbc"
	"repro/internal/types"
)

// step symbolically executes one instruction. It returns whether the
// instruction can be included in the current tracelet, whether the
// tracelet ends after it, and the successor pcs when it ends.
func (s *selector) step(in hhbc.Instr, pc int) (include, endAfter bool, succs []int) {
	u, fn := s.unit, s.fn
	switch in.Op {
	case hhbc.OpNop, hhbc.OpIncProfCounter, hhbc.OpIterFree:
		// IterFree drops the iterator's array reference; generic.

	case hhbc.OpAssertRATL:
		t := u.DecodeRAT(in.B, in.C)
		cur := s.localType(int(in.A))
		nt := cur.Intersect(t)
		if nt.IsBottom() {
			nt = t
		}
		s.locals[int(in.A)] = nt
	case hhbc.OpAssertRAStk:
		d := len(s.stack) - 1 - int(in.A)
		if d >= 0 {
			t := u.DecodeRAT(in.B, in.C)
			nt := s.stack[d].t.Intersect(t)
			if !nt.IsBottom() {
				s.stack[d].t = nt
			}
		}

	case hhbc.OpInt:
		s.push(types.TInt)
	case hhbc.OpDouble:
		s.push(types.TDbl)
	case hhbc.OpString:
		s.push(types.TStr)
	case hhbc.OpTrue, hhbc.OpFalse:
		s.push(types.TBool)
	case hhbc.OpNull:
		s.push(types.TNull)

	case hhbc.OpPopC:
		v := s.pop()
		s.wantVal(&v, ConCountness)
	case hhbc.OpDup:
		v := s.stack[len(s.stack)-1]
		s.wantVal(&s.stack[len(s.stack)-1], ConCountness)
		s.pushFrom(v)

	case hhbc.OpCGetL, hhbc.OpCGetL2:
		slot := int(in.A)
		t, ok := s.guardLocal(slot, ConCountness)
		if !ok {
			return false, false, nil
		}
		rt := cgetType(t)
		v := sval{t: rt}
		if s.pristine[slot] && !t.Maybe(types.TUninit) {
			loc := Loc{LocLocal, slot}
			v.origin = &loc
		}
		if in.Op == hhbc.OpCGetL {
			s.pushFrom(v)
		} else {
			top := s.pop()
			s.pushFrom(v)
			s.pushFrom(top)
		}
	case hhbc.OpPopL:
		v := s.pop()
		s.wantVal(&v, ConCountness)
		if _, ok := s.guardLocal(int(in.A), ConCountness); !ok {
			return false, false, nil
		}
		s.writeLocal(int(in.A), v.t)
	case hhbc.OpSetL:
		s.wantVal(&s.stack[len(s.stack)-1], ConCountness)
		if _, ok := s.guardLocal(int(in.A), ConCountness); !ok {
			return false, false, nil
		}
		s.writeLocal(int(in.A), s.stack[len(s.stack)-1].t)
	case hhbc.OpPushL:
		slot := int(in.A)
		t, ok := s.guardLocal(slot, ConCountness)
		if !ok {
			return false, false, nil
		}
		v := sval{t: t}
		if s.pristine[slot] {
			loc := Loc{LocLocal, slot}
			v.origin = &loc
		}
		s.pushFrom(v)
		s.writeLocal(slot, types.TUninit)
	case hhbc.OpUnsetL:
		if _, ok := s.guardLocal(int(in.A), ConCountness); !ok {
			return false, false, nil
		}
		s.writeLocal(int(in.A), types.TUninit)
	case hhbc.OpIsTypeL:
		s.push(types.TBool)
	case hhbc.OpIncDecL:
		t, ok := s.guardLocal(int(in.A), ConSpecific)
		if !ok {
			return false, false, nil
		}
		var nt types.Type
		switch {
		case t.SubtypeOf(types.TInt):
			nt = types.TInt
		case t.SubtypeOf(types.TDbl):
			nt = types.TDbl
		case t.SubtypeOf(types.TNull), t.SubtypeOf(types.TUninit):
			if in.B == hhbc.PreInc || in.B == hhbc.PostInc {
				nt = types.TInt
			} else {
				nt = types.TNull
			}
		default:
			return false, false, nil // non-numeric inc/dec: leave to interp
		}
		old := t
		s.writeLocal(int(in.A), nt)
		if in.B == hhbc.PostInc || in.B == hhbc.PostDec {
			s.push(cgetType(old))
		} else {
			s.push(nt)
		}

	case hhbc.OpAdd, hhbc.OpSub, hhbc.OpMul:
		b, a := s.pop(), s.pop()
		if !s.needVal(&a, ConSpecific) || !s.needVal(&b, ConSpecific) {
			s.stack = append(s.stack, a, b)
			return false, false, nil
		}
		t, ok := arithType(a.t, b.t)
		if !ok {
			s.stack = append(s.stack, a, b)
			return false, false, nil
		}
		s.push(t)
	case hhbc.OpDiv:
		b, a := s.pop(), s.pop()
		if !s.needVal(&a, ConSpecific) || !s.needVal(&b, ConSpecific) {
			s.stack = append(s.stack, a, b)
			return false, false, nil
		}
		if !a.t.SubtypeOf(types.TNum) || !b.t.SubtypeOf(types.TNum) {
			s.stack = append(s.stack, a, b)
			return false, false, nil
		}
		if a.t.SubtypeOf(types.TDbl) || b.t.SubtypeOf(types.TDbl) {
			s.push(types.TDbl)
		} else {
			s.push(types.TNum) // Int/Int division may produce Dbl
		}
	case hhbc.OpMod:
		b, a := s.pop(), s.pop()
		s.wantVal(&a, ConSpecific)
		s.wantVal(&b, ConSpecific)
		s.push(types.TInt)
	case hhbc.OpConcat:
		b, a := s.pop(), s.pop()
		s.wantVal(&a, ConSpecific)
		s.wantVal(&b, ConSpecific)
		s.push(types.TStr)
	case hhbc.OpNeg:
		a := s.pop()
		if !s.needVal(&a, ConSpecific) {
			s.stack = append(s.stack, a)
			return false, false, nil
		}
		if a.t.SubtypeOf(types.TDbl) {
			s.push(types.TDbl)
		} else {
			s.push(types.TInt)
		}

	case hhbc.OpGt, hhbc.OpGte, hhbc.OpLt, hhbc.OpLte,
		hhbc.OpEq, hhbc.OpNeq, hhbc.OpSame, hhbc.OpNSame:
		b, a := s.pop(), s.pop()
		s.wantVal(&a, ConSpecific)
		s.wantVal(&b, ConSpecific)
		s.push(types.TBool)
	case hhbc.OpNot, hhbc.OpCastBool:
		a := s.pop()
		s.wantVal(&a, ConSpecific)
		s.push(types.TBool)
	case hhbc.OpCastInt:
		a := s.pop()
		s.wantVal(&a, ConSpecific)
		s.push(types.TInt)
	case hhbc.OpCastDouble:
		a := s.pop()
		s.wantVal(&a, ConSpecific)
		s.push(types.TDbl)
	case hhbc.OpCastString:
		a := s.pop()
		s.wantVal(&a, ConSpecific)
		s.push(types.TStr)

	case hhbc.OpJmp:
		return true, true, []int{int(in.A)}
	case hhbc.OpJmpZ, hhbc.OpJmpNZ:
		v := s.pop()
		s.wantVal(&v, ConSpecific)
		return true, true, []int{int(in.A), pc + 1}
	case hhbc.OpSwitch:
		v := s.pop()
		s.wantVal(&v, ConSpecific)
		sw := fn.Switches[in.A]
		seen := map[int]bool{}
		var out []int
		for _, t := range sw.Targets {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		if !seen[sw.Default] {
			out = append(out, sw.Default)
		}
		return true, true, out
	case hhbc.OpRetC:
		v := s.pop()
		s.wantVal(&v, ConCountness)
		return true, true, nil
	case hhbc.OpThrow, hhbc.OpFatal:
		return true, true, nil
	case hhbc.OpCatch:
		s.push(types.TObj)

	case hhbc.OpNewArray:
		s.push(types.ArrOfKind(types.ArrayMixed))
	case hhbc.OpNewPackedArray:
		for i := 0; i < int(in.A); i++ {
			v := s.pop()
			s.wantVal(&v, ConCountness)
		}
		s.push(types.ArrOfKind(types.ArrayPacked))
	case hhbc.OpAddElemC:
		val, key, arr := s.pop(), s.pop(), s.pop()
		s.wantVal(&val, ConCountness)
		s.wantVal(&key, ConSpecific)
		s.wantVal(&arr, ConSpecialized)
		s.push(types.TArr)
	case hhbc.OpAddNewElemC:
		val, arr := s.pop(), s.pop()
		s.wantVal(&val, ConCountness)
		s.wantVal(&arr, ConSpecialized)
		if arr.t.SubtypeOf(types.TArr) {
			s.push(arr.t)
		} else {
			s.push(types.TArr)
		}

	case hhbc.OpArrIdx:
		key, arr := s.pop(), s.pop()
		if !s.needVal(&key, ConSpecific) || !s.needVal(&arr, ConSpecialized) {
			s.stack = append(s.stack, arr, key)
			return false, false, nil
		}
		s.push(types.TInitCell)
	case hhbc.OpArrGetL:
		key := s.pop()
		if !s.needVal(&key, ConSpecific) {
			s.stack = append(s.stack, key)
			return false, false, nil
		}
		if _, ok := s.guardLocal(int(in.A), ConSpecialized); !ok {
			s.stack = append(s.stack, key)
			return false, false, nil
		}
		s.push(types.TInitCell)
	case hhbc.OpArrSetL:
		key, val := s.pop(), s.pop()
		if !s.needVal(&key, ConSpecific) {
			s.stack = append(s.stack, val, key)
			return false, false, nil
		}
		s.wantVal(&val, ConCountness)
		if _, ok := s.guardLocal(int(in.A), ConSpecialized); !ok {
			s.stack = append(s.stack, val, key)
			return false, false, nil
		}
		s.writeLocal(int(in.A), types.TArr)
	case hhbc.OpArrAppendL:
		val := s.pop()
		s.wantVal(&val, ConCountness)
		t, ok := s.guardLocal(int(in.A), ConSpecialized)
		if !ok {
			s.stack = append(s.stack, val)
			return false, false, nil
		}
		if t.SubtypeOf(types.TArr) {
			s.writeLocal(int(in.A), t)
		} else {
			s.writeLocal(int(in.A), types.TArr)
		}
	case hhbc.OpArrUnsetL:
		key := s.pop()
		s.wantVal(&key, ConSpecific)
		if _, ok := s.guardLocal(int(in.A), ConSpecialized); !ok {
			s.stack = append(s.stack, key)
			return false, false, nil
		}
		s.writeLocal(int(in.A), types.TArr)
	case hhbc.OpAKExistsL:
		key := s.pop()
		s.wantVal(&key, ConSpecific)
		s.push(types.TBool)

	case hhbc.OpIterInitL:
		t, ok := s.guardLocal(int(in.C), ConSpecialized)
		if ok && t.SubtypeOf(types.TArr) {
			s.iters[in.A] = t.ArrayKind()
		}
		return true, true, []int{int(in.B), pc + 1}
	case hhbc.OpIterNext:
		return true, true, []int{int(in.B), pc + 1}
	case hhbc.OpIterKey:
		if s.iters[in.A] == types.ArrayPacked {
			s.push(types.TInt)
		} else {
			s.push(types.FromKind(types.KInt | types.KStr))
		}
	case hhbc.OpIterValue:
		s.push(types.TInitCell)

	case hhbc.OpFCallD:
		for i := 0; i < int(in.A); i++ {
			v := s.pop()
			s.wantVal(&v, ConCountness)
		}
		s.push(types.TInitCell)
	case hhbc.OpFCallBuiltin:
		for i := 0; i < int(in.A); i++ {
			v := s.pop()
			s.wantVal(&v, ConCountness)
		}
		if t, ok := builtinRet[u.Strings[in.B]]; ok {
			s.push(t)
		} else {
			s.push(types.TInitCell)
		}
	case hhbc.OpFCallObjMethodD:
		for i := 0; i < int(in.A); i++ {
			v := s.pop()
			s.wantVal(&v, ConCountness)
		}
		obj := s.pop()
		s.wantVal(&obj, ConSpecialized)
		s.push(types.TInitCell)

	case hhbc.OpNewObjD:
		s.push(types.ObjOfClass(u.Strings[in.A], true))
	case hhbc.OpThis:
		if fn.Class != "" {
			s.push(types.ObjOfClass(fn.Class, false))
		} else {
			s.push(types.TObj)
		}
	case hhbc.OpCGetPropD:
		obj := s.pop()
		if sf, ok := s.src.(ShapeFactSource); ok {
			// Shapes on (DESIGN.md §14): property access needs only
			// object-ness — the optimized body carries a shape guard
			// or inline cache for the layout, so the entry guard is
			// widened to bare Obj and identical-layout classes share
			// one translation instead of splitting the chain.
			if !s.needVal(&obj, ConSpecific) || !obj.t.SubtypeOf(types.TObj) {
				s.stack = append(s.stack, obj)
				return false, false, nil
			}
			s.widenObjGuard(&obj)
			s.push(sf.PropReadType(s.fn.ID, pc, u.Strings[in.A]))
			return true, false, nil
		}
		if !s.needVal(&obj, ConSpecialized) {
			s.stack = append(s.stack, obj)
			return false, false, nil
		}
		s.push(types.TInitCell)
	case hhbc.OpSetPropD:
		val, obj := s.pop(), s.pop()
		s.wantVal(&val, ConCountness)
		if _, ok := s.src.(ShapeFactSource); ok {
			if !s.needVal(&obj, ConSpecific) || !obj.t.SubtypeOf(types.TObj) {
				s.stack = append(s.stack, obj, val)
				return false, false, nil
			}
			s.widenObjGuard(&obj)
			s.push(val.t)
			return true, false, nil
		}
		if !s.needVal(&obj, ConSpecialized) {
			s.stack = append(s.stack, obj, val)
			return false, false, nil
		}
		s.push(val.t)
	case hhbc.OpInstanceOfD:
		v := s.pop()
		s.wantVal(&v, ConSpecific)
		s.push(types.TBool)

	case hhbc.OpVerifyParamType:
		idx := int(in.A)
		p := fn.Params[idx]
		s.locals[idx] = s.localType(idx).Intersect(hintType(p))
		if s.locals[idx].IsBottom() {
			s.locals[idx] = hintType(p)
		}

	case hhbc.OpPrint:
		v := s.pop()
		s.wantVal(&v, ConSpecific)
		s.push(types.TInt)

	default:
		return false, false, nil
	}
	if in.Op.IsUnconditionalExit() {
		return true, true, nil
	}
	return true, false, nil
}

// cgetType is the result type of reading a local: Uninit reads as
// Null.
func cgetType(t types.Type) types.Type {
	if t.Maybe(types.TUninit) {
		return types.FromKind(t.Kind()&^types.KUninit | types.KNull)
	}
	return t
}

// arithType computes the result of +,-,* on specific operand types.
func arithType(a, b types.Type) (types.Type, bool) {
	switch {
	case a.SubtypeOf(types.TInt) && b.SubtypeOf(types.TInt):
		return types.TInt, true
	case a.SubtypeOf(types.TNum) && b.SubtypeOf(types.TNum):
		return types.TDbl, true
	case a.SubtypeOf(types.TArr) && b.SubtypeOf(types.TArr):
		return types.TArr, true
	default:
		// Null/Bool/Str coerce numerically; the result kind depends on
		// runtime values, so it stays TNum and goes to a generic path.
		return types.TNum, a.Kind()&types.KObj == 0 && b.Kind()&types.KObj == 0
	}
}

// hintType maps a parameter type hint to the lattice.
func hintType(p hhbc.Param) types.Type {
	var t types.Type
	switch p.TypeHint {
	case "int":
		t = types.TInt
	case "float":
		t = types.TDbl
	case "string":
		t = types.TStr
	case "bool":
		t = types.TBool
	case "array":
		t = types.TArr
	case "":
		return types.TCell
	default:
		t = types.ObjOfClass(p.TypeHint, false)
	}
	if p.Nullable {
		t = t.Union(types.TNull)
	}
	return t
}
