package server_test

import (
	"os"
	"testing"

	"repro/internal/server"
)

// TestStartupTimeline reproduces Figure 9's qualitative shape: code
// grows during profiling, the optimize event fires, and RPS climbs
// from a depressed warmup level to (and past) steady state.
func TestStartupTimeline(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 20
	cfg.CyclesPerMinute = 1_200_000
	res, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server.Report(os.Stderr, res)
	if len(res.Samples) != cfg.Minutes {
		t.Fatalf("expected %d samples, got %d", cfg.Minutes, len(res.Samples))
	}
	// Code grows monotonically-ish and an optimize event appears.
	sawOpt := false
	for _, s := range res.Samples {
		if s.Event == "C" {
			sawOpt = true
		}
	}
	if !sawOpt {
		t.Error("the global retranslation trigger never fired")
	}
	// RPS at the start is below steady; by the end it reaches ~steady.
	first := res.Samples[0].RPSPct
	last := res.Samples[len(res.Samples)-1].RPSPct
	if first >= 95 {
		t.Errorf("first-minute RPS %.1f%% should be well below steady state", first)
	}
	if last < 90 {
		t.Errorf("final RPS %.1f%% should have recovered to steady state", last)
	}
	// The fleet-wave window pushes RPS above steady state.
	over := false
	for _, s := range res.Samples {
		if s.RPSPct > 110 {
			over = true
		}
	}
	if !over {
		t.Error("no above-steady-state stretch (fleet redirect) observed")
	}
}
