// Fault containment and self-healing (DESIGN.md §11): translation
// quarantine with capped-backoff retry, fault-driven demotion that
// unpublishes bad translations from the RCU index, and code-cache
// recycling that evicts cold translations under pressure instead of
// latching the JIT off forever. The degradation ladder (Degrade*)
// sheds work in stages when recycling cannot keep up.
package jit

import (
	"sort"
	"sync/atomic"

	"repro/internal/mcode"
)

// quarantineEntry tracks one (func, PC) address that failed to
// compile or whose translation faulted at runtime.
type quarantineEntry struct {
	// attempts counts consecutive failed compile attempts; it drives
	// the exponential retry backoff and the demotion budget.
	attempts int
	// faults counts contained execution faults (machine.TransFault)
	// within the current fault window; isolated faults far apart on
	// the entries clock do not accumulate (transient noise must not
	// slowly demote every hot translation).
	faults int
	// lastFault is the entries-clock reading of the latest fault.
	lastFault uint64
	// episodes counts demotion episodes (fault bursts that got the
	// address's translations unpublished); repeated episodes escalate
	// to a permanent interp-only demotion.
	episodes int
	// lastEpisode is the entries-clock reading of the latest episode;
	// episodes spaced far beyond their own backoff window reset the
	// escalation (see RecordFault).
	lastEpisode uint64
	// until is the j.entries value before which minting at this
	// address is suppressed (the backoff clock is function entries, so
	// idle servers do not burn their retry budget).
	until uint64
	// permanent marks the address demoted to interp-only for good.
	permanent bool
}

// quarantinedLocked reports whether minting at key is currently
// suppressed. Callers hold j.mu.
func (j *JIT) quarantinedLocked(key transKey) bool {
	q := j.quarantine[key]
	if q == nil {
		return false
	}
	return q.permanent || j.entries.Load() < q.until
}

// quarantinedCount is the Stats.Quarantined gauge.
func (j *JIT) quarantinedCount() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return uint64(len(j.quarantine))
}

// QuarantineState exposes one address's quarantine record for tests
// and diagnostics: consecutive failed attempts, contained faults, and
// whether the address is permanently demoted.
func (j *JIT) QuarantineState(fnID, pc int) (attempts, faults int, permanent bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if q := j.quarantine[transKey{fnID, pc}]; q != nil {
		return q.attempts, q.faults, q.permanent
	}
	return 0, 0, false
}

// ForEachQuarantined visits every quarantine record (iteration order
// unspecified) — the full-ledger companion to QuarantineState, used
// to compare quarantine outcomes across runs.
func (j *JIT) ForEachQuarantined(fn func(fnID, pc, attempts int, permanent bool)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for key, q := range j.quarantine {
		fn(key.fn, key.pc, q.attempts, q.permanent)
	}
}

// backoffLocked computes the retry window for a quarantine entry:
// QuarantineBase entries, doubling per consecutive failure, capped so
// the shift cannot overflow.
func (j *JIT) backoffLocked(attempts int) uint64 {
	shift := attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return j.Cfg.QuarantineBase << uint(shift)
}

// noteCompileFailure quarantines key after a failed mint. Transient
// failures (injected compile errors, injected allocation failures,
// malformed streams) earn exponential backoff; exhausting the retry
// budget demotes the address permanently and unpublishes whatever is
// already installed there.
func (j *JIT) noteCompileFailure(key transKey, err error) {
	atomic.AddUint64(&j.stats.CompileFailures, 1)
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.quarantine[key]
	if q == nil {
		q = &quarantineEntry{}
		j.quarantine[key] = q
	}
	if q.permanent {
		return
	}
	q.attempts++
	if q.attempts >= j.Cfg.QuarantineMaxAttempts {
		j.demoteLocked(key, q)
		return
	}
	q.until = j.entries.Load() + j.backoffLocked(q.attempts)
}

// noteMintSuccess clears key's quarantine after a successful compile:
// the address healed, so its failure history is forgotten.
func (j *JIT) noteMintSuccess(key transKey) {
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.quarantine[key]
	if q == nil || q.permanent {
		return
	}
	atomic.AddUint64(&j.stats.QuarantineRecoveries, 1)
	if q.episodes == 0 {
		// Pure compile-failure history: the address healed, forget it.
		delete(j.quarantine, key)
		return
	}
	// Keep the fault-episode history — an address that faults again
	// after reminting must keep escalating toward permanent demotion —
	// but clear the compile backoff.
	q.attempts = 0
	q.until = 0
}

// RecordFault notes one contained translation fault at (fnID, pc):
// the VM caught a machine.TransFault, re-executed the region in the
// interpreter, and the request completed. Repeated faults at one
// address demote it — its translations are unpublished from the index
// and it stays interp-only.
func (j *JIT) RecordFault(fnID, pc int) {
	atomic.AddUint64(&j.stats.TransFaults, 1)
	key := transKey{fnID, pc}
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.quarantine[key]
	if q == nil {
		q = &quarantineEntry{}
		j.quarantine[key] = q
	}
	if q.permanent {
		return
	}
	// Fault counting is windowed on the entries clock: only a burst of
	// faults close together (a deterministic bug firing on every entry)
	// demotes. Sparse faults — transient noise on a hot translation
	// entered thousands of times — decay instead of accumulating
	// toward an inevitable demotion.
	now := j.entries.Load()
	window := j.Cfg.QuarantineBase
	if q.lastFault > 0 && now-q.lastFault > window {
		q.faults = 0
	}
	q.lastFault = now
	q.faults++
	if q.faults < j.Cfg.FaultDemote {
		// Below the demotion threshold the translation stays published
		// (the fault may be transient), and minting is not blocked.
		return
	}
	// A fault burst: unpublish the address's translations and back off
	// before reminting. Only repeated episodes demote for good — a
	// remint after a transient burst deserves a clean slate.
	//
	// Episode escalation decays too: a deterministic bug re-faults as
	// soon as its backoff expires and it is reminted, so the gap
	// between its episodes tracks the backoff itself; episodes spaced
	// far beyond that (sparse random bursts on a long-running hot
	// address) reset the ladder instead of creeping toward an
	// inevitable permanent demotion.
	q.faults = 0
	if q.episodes > 0 && now-q.lastEpisode > 4*j.backoffLocked(q.episodes) {
		q.episodes = 0
	}
	q.lastEpisode = now
	q.episodes++
	atomic.AddUint64(&j.stats.Demotions, 1)
	if q.episodes >= j.Cfg.QuarantineMaxAttempts {
		q.permanent = true
		j.unpublishKeysLocked(map[transKey]bool{key: true})
		return
	}
	j.unpublishKeysLocked(map[transKey]bool{key: true})
	q.until = now + j.backoffLocked(q.episodes)
}

// demoteLocked permanently quarantines key and unpublishes its chain.
// Callers hold j.mu.
func (j *JIT) demoteLocked(key transKey, q *quarantineEntry) {
	q.permanent = true
	atomic.AddUint64(&j.stats.Demotions, 1)
	j.unpublishKeysLocked(map[transKey]bool{key: true})
}

// unpublishKeysLocked removes every translation at the given keys
// from the RCU index, advances the link epoch, treadmill-sweeps the
// survivors so no stale chain link can reach the removed code, and
// returns the removed translations' code to the cache. Callers hold
// j.mu; lock-free readers iterating the old index keep working and
// pick up the new one on their next load.
func (j *JIT) unpublishKeysLocked(keys map[transKey]bool) (removed []*Translation) {
	old := *j.trans.Load()
	idx := make(transIndex, len(old))
	for k, chain := range old {
		if keys[k] {
			removed = append(removed, chain...)
			continue
		}
		idx[k] = chain
	}
	if len(removed) == 0 {
		return nil
	}
	j.trans.Store(&idx)
	epoch := j.epoch.Add(1)
	swept := 0
	for _, chain := range idx {
		for _, tr := range chain {
			swept += tr.Code.SweepLinks(epoch)
		}
	}
	if swept > 0 {
		j.Chain.LinksSwept.Add(uint64(swept))
	}
	for _, tr := range removed {
		if j.onUnpublish != nil {
			j.onUnpublish(tr)
		}
		j.retireCode(tr)
	}
	atomic.AddUint64(&j.stats.Unpublished, uint64(len(removed)))
	return removed
}

// Invalidate forcibly unpublishes every translation at (fnID, pc) —
// the sentry's repair path for detected code-cache corruption
// (DESIGN.md §15). With backoff the address is also quarantined for
// one backoff window before reminting (a bisected culprit should not
// be immediately re-minted from the same profile state); without it
// the address remints on its next dispatch, which is the auditor's
// checksum-mismatch repair: the code bytes rotted, not the compiler.
// Returns the number of translations removed.
func (j *JIT) Invalidate(fnID, pc int, backoff bool) int {
	key := transKey{fnID, pc}
	j.mu.Lock()
	defer j.mu.Unlock()
	removed := j.unpublishKeysLocked(map[transKey]bool{key: true})
	if backoff && len(removed) > 0 {
		q := j.quarantine[key]
		if q == nil {
			q = &quarantineEntry{}
			j.quarantine[key] = q
		}
		if !q.permanent {
			q.attempts++
			if q.attempts >= j.Cfg.QuarantineMaxAttempts {
				q.permanent = true
				atomic.AddUint64(&j.stats.Demotions, 1)
			} else {
				q.until = j.entries.Load() + j.backoffLocked(q.attempts)
			}
		}
	}
	// The address starts cold again: thresholds apply afresh on remint.
	delete(j.entryCount, key)
	return len(removed)
}

// retireCode returns one translation's extent to its cache area and
// rolls the resident-byte stat back. Safe under j.mu (the cache has
// its own lock, taken after).
func (j *JIT) retireCode(tr *Translation) {
	size := tr.Code.Size
	sub := func(p *uint64) {
		if size > 0 {
			atomic.AddUint64(p, ^(size - 1))
		}
	}
	switch tr.Kind {
	case ModeTracelet:
		j.Cache.Free(mcode.AreaLive, size)
		sub(&j.stats.BytesLive)
	case ModeProfiling:
		j.Cache.Free(mcode.AreaProfile, size)
		sub(&j.stats.BytesProfiling)
	default:
		j.Cache.Free(mcode.AreaHot, size)
		sub(&j.stats.BytesOptimized)
	}
}

// recycle frees code-cache space after genuine exhaustion by evicting
// the coldest translations (lowest use count) until `need` bytes plus
// a slack of limit/16 are reclaimed. On success the sticky cacheFull
// latch is cleared and minting resumes; on failure the degradation
// ladder escalates one level. Returns whether enough space was freed.
// Called from the compile path (compileMu held; j.mu is taken here —
// nothing takes them in the other order).
func (j *JIT) recycle(need uint64) bool {
	j.mu.Lock()
	atomic.AddUint64(&j.stats.RecycleRuns, 1)

	type cand struct {
		key transKey
		tr  *Translation
	}
	var cands []cand
	for k, chain := range *j.trans.Load() {
		for _, tr := range chain {
			cands = append(cands, cand{k, tr})
		}
	}
	// Coldest first; deterministic tie-break so concurrent runs and
	// reruns evict the same victims.
	sort.Slice(cands, func(a, b int) bool {
		ua, ub := cands[a].tr.Uses(), cands[b].tr.Uses()
		if ua != ub {
			return ua < ub
		}
		if cands[a].key.fn != cands[b].key.fn {
			return cands[a].key.fn < cands[b].key.fn
		}
		if cands[a].key.pc != cands[b].key.pc {
			return cands[a].key.pc < cands[b].key.pc
		}
		return cands[a].tr.Kind < cands[b].tr.Kind
	})

	target := need + j.Cache.Limit()/16
	var planned uint64
	evictKeys := map[transKey]bool{}
	victims := 0
	for _, c := range cands {
		if planned >= target {
			break
		}
		// Whole chains go: evicting one link of a retranslation chain
		// and keeping its siblings buys little and complicates the
		// index rewrite.
		if evictKeys[c.key] {
			continue
		}
		evictKeys[c.key] = true
		for _, tr := range (*j.trans.Load())[c.key] {
			planned += tr.Code.Size
			victims++
		}
	}
	// Freed bytes are measured against the cache, not summed from
	// translation sizes: an extent can already have been bulk-freed
	// (profiling code is discarded wholesale at the optimized publish),
	// and claiming its bytes again would declare phantom progress.
	before := j.Cache.TotalUsed()
	if victims > 0 {
		j.unpublishKeysLocked(evictKeys)
		atomic.AddUint64(&j.stats.Evictions, uint64(victims))
		// Evicted addresses may remint later (they start cold again);
		// reset their entry counts so thresholds apply afresh.
		for k := range evictKeys {
			delete(j.entryCount, k)
		}
	}
	freed := before - j.Cache.TotalUsed()
	atomic.AddUint64(&j.stats.EvictedBytes, freed)
	ok := freed >= need
	j.mu.Unlock()

	if ok {
		// Pressure relieved: reopen minting and walk the ladder back.
		j.cacheFull.Store(false)
		j.degrade.Store(DegradeNone)
	} else {
		j.escalateDegrade()
	}
	return ok
}

// escalateDegrade moves the degradation ladder one level down (toward
// interp-only), never past the bottom.
func (j *JIT) escalateDegrade() {
	for {
		cur := j.degrade.Load()
		if cur >= DegradeInterpOnly {
			return
		}
		if j.degrade.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// DegradeLevel returns the current degradation-ladder level.
func (j *JIT) DegradeLevel() int32 { return j.degrade.Load() }

// Shed forces the degradation ladder down to at least level — the
// overload hook fleet serving uses: a host drowning in traffic sheds
// JIT work (first live minting, then all minting, finally JITed
// execution itself) and keeps answering requests at reduced capacity
// instead of dying. Levels beyond DegradeInterpOnly clamp; Shed never
// raises a host back up (see RecoverShed).
func (j *JIT) Shed(level int32) {
	if level > DegradeInterpOnly {
		level = DegradeInterpOnly
	}
	for {
		cur := j.degrade.Load()
		if cur >= level {
			return
		}
		if j.degrade.CompareAndSwap(cur, level) {
			return
		}
	}
}

// RecoverShed walks the degradation ladder fully back to normal
// operation once overload passes. Published translations were never
// discarded, so the next dispatch resumes optimized execution
// immediately; the cache-full latch is left alone (it belongs to the
// recycler, not the overload ladder).
func (j *JIT) RecoverShed() { j.degrade.Store(DegradeNone) }

// CacheFull reports whether the cache-full latch is currently set.
func (j *JIT) CacheFull() bool { return j.cacheFull.Load() }
