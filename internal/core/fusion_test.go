package core_test

import (
	"testing"

	"repro/internal/jit"
	"repro/internal/perflab"
)

// TestFusedDispatchBitIdentical is the exactness contract of dispatch
// fusion (PR 8): superinstructions, per-run static-cycle settlement,
// and handler-table dispatch change only host-side speed. Running the
// whole endpoint suite with FuseDispatch on and off must produce
// byte-identical guest outputs AND identical guest cycle counts —
// per-endpoint and in the weighted mean — in both tracelet and region
// modes.
func TestFusedDispatchBitIdentical(t *testing.T) {
	pc := perflab.Config{WarmupRequests: 30, MeasureRequests: 8}
	for _, mode := range []jit.Mode{jit.ModeTracelet, jit.ModeRegion} {
		base := jit.DefaultConfig()
		base.Mode = mode
		base.ProfileTrigger = 400

		unfused := base
		unfused.FuseDispatch = false
		fused := base
		fused.FuseDispatch = true

		ru, err := perflab.Measure(unfused, pc)
		if err != nil {
			t.Fatalf("mode %v unfused: %v", mode, err)
		}
		rf, err := perflab.Measure(fused, pc)
		if err != nil {
			t.Fatalf("mode %v fused: %v", mode, err)
		}
		if rf.JITStats.FusedInstrs == 0 {
			t.Errorf("mode %v: fusion pass eliminated no instructions", mode)
		}
		if len(ru.Endpoints) != len(rf.Endpoints) {
			t.Fatalf("mode %v: endpoint counts differ", mode)
		}
		for i := range ru.Endpoints {
			eu, ef := ru.Endpoints[i], rf.Endpoints[i]
			if eu.Output != ef.Output {
				t.Errorf("mode %v endpoint %s: outputs differ with fusion:\n unfused %q\n fused   %q",
					mode, eu.Name, eu.Output, ef.Output)
			}
			if len(eu.Samples) != len(ef.Samples) {
				t.Fatalf("mode %v endpoint %s: sample counts differ", mode, eu.Name)
			}
			for j := range eu.Samples {
				if eu.Samples[j] != ef.Samples[j] {
					t.Errorf("mode %v endpoint %s request %d: cycle counts differ: unfused=%v fused=%v",
						mode, eu.Name, j, eu.Samples[j], ef.Samples[j])
					break
				}
			}
		}
		if ru.WeightedMean != rf.WeightedMean {
			t.Errorf("mode %v: weighted mean cycles differ: unfused=%v fused=%v",
				mode, ru.WeightedMean, rf.WeightedMean)
		}
	}
}
