package region_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hhbc"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
)

// fixedSource supplies constant entry types.
type fixedSource struct {
	locals map[int]types.Type
	stack  map[int]types.Type
}

func (s fixedSource) LocalType(slot int) types.Type {
	if t, ok := s.locals[slot]; ok {
		return t
	}
	return types.TUninit // like a fresh frame
}

func (s fixedSource) StackType(d int) types.Type {
	if t, ok := s.stack[d]; ok {
		return t
	}
	return types.TCell
}

func avgPositiveUnit(t *testing.T) *hhbc.Unit {
	t.Helper()
	u, err := core.Compile(`
function avgPositive($arr) {
  $sum = 0;
  $n = 0;
  $size = count($arr);
  for ($i = 0; $i < $size; $i++) {
    $elem = $arr[$i];
    if ($elem > 0) { $sum = $sum + $elem; $n++; }
  }
  if ($n == 0) { throw new Exception("none"); }
  return $sum / $n;
}
echo avgPositive([1,2,3]);`, core.CompileOptions{SkipHHBBC: true})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestTraceletGuardsArrayArg(t *testing.T) {
	u := avgPositiveUnit(t)
	f, _ := u.FuncByName("avgPositive")
	src := fixedSource{locals: map[int]types.Type{0: types.ArrOfKind(types.ArrayPacked)}}
	blk := region.Select(u, f, 0, 0, src, region.ModeLive, 0)
	if blk.NumInstrs == 0 {
		t.Fatal("empty tracelet")
	}
	// The tracelet must guard $arr once count()'s argument needs it.
	found := false
	for _, g := range blk.Preconds {
		if g.Loc.Kind == region.LocLocal && g.Loc.Slot == 0 {
			found = true
			if !g.Type.SubtypeOf(types.TArr) {
				t.Errorf("guard type on $arr = %v", g.Type)
			}
		}
	}
	if !found {
		t.Errorf("no guard on $arr; preconds: %v", blk.Preconds)
	}
}

func TestProfilingModeBreaksAtCalls(t *testing.T) {
	u := avgPositiveUnit(t)
	f, _ := u.FuncByName("avgPositive")
	src := fixedSource{locals: map[int]types.Type{0: types.ArrOfKind(types.ArrayPacked)}}
	blk := region.Select(u, f, 0, 0, src, region.ModeProfiling, 0)
	// The entry block must stop at or before the count() builtin call.
	for pc := blk.Start; pc < blk.End()-1; pc++ {
		if f.Instrs[pc].Op == hhbc.OpFCallBuiltin {
			t.Errorf("profiling block crossed a call at pc %d", pc)
		}
	}
}

func TestTraceletEndsAtUnknownConsumption(t *testing.T) {
	u := avgPositiveUnit(t)
	f, _ := u.FuncByName("avgPositive")
	// Unknown $arr: the selector cannot type count()'s fast path but
	// the block must still terminate with successors.
	src := fixedSource{locals: map[int]types.Type{0: types.TCell}}
	blk := region.Select(u, f, 0, 0, src, region.ModeLive, 0)
	if blk.NumInstrs == 0 {
		t.Fatal("selector made no progress")
	}
	if blk.End() < len(f.Instrs) && len(blk.Succs) == 0 {
		t.Error("non-terminal tracelet has no successors")
	}
}

func TestChainsSortedByWeight(t *testing.T) {
	u := avgPositiveUnit(t)
	f, _ := u.FuncByName("avgPositive")
	counters := profile.NewCounters()
	// Two retranslations of the same pc with different types/weights.
	mk := func(ty types.Type, count uint64) (*region.Block, profile.TransID) {
		src := fixedSource{locals: map[int]types.Type{0: ty}}
		blk := region.Select(u, f, 0, 0, src, region.ModeProfiling, 0)
		blk.ProfCounter = counters.NewCounter()
		for i := uint64(0); i < count; i++ {
			counters.Inc(blk.ProfCounter)
		}
		return blk, blk.ProfCounter
	}
	b1, id1 := mk(types.ArrOfKind(types.ArrayPacked), 10)
	b2, id2 := mk(types.ArrOfKind(types.ArrayMixed), 40)
	g := region.BuildTransCFG([]*region.Block{b1, b2}, []profile.TransID{id1, id2}, counters)
	regions := region.FormRegions(g, region.DefaultFormConfig)
	if len(regions) == 0 {
		t.Fatal("no regions formed")
	}
	d := regions[0]
	// The chain for pc 0 must put the hotter (mixed, 40) first.
	for _, chain := range d.Chains {
		if d.Blocks[chain[0]].Start == 0 && len(chain) == 2 {
			if d.Weight[chain[0]] < d.Weight[chain[1]] {
				t.Errorf("chain not sorted by weight: %v", chain)
			}
			return
		}
	}
	// If both blocks landed in different regions, chains are trivial;
	// that's acceptable only when the second region exists.
	if len(regions) < 2 {
		t.Error("expected a 2-element chain or 2 regions")
	}
}

func TestGuardRelaxationWidens(t *testing.T) {
	u := avgPositiveUnit(t)
	f, _ := u.FuncByName("avgPositive")
	counters := profile.NewCounters()
	// Countness-constrained guard with straddling profile: relaxes.
	blk := region.Select(u, f, 0, 0,
		fixedSource{locals: map[int]types.Type{0: types.ArrOfKind(types.ArrayPacked)}},
		region.ModeProfiling, 0)
	blk.ProfCounter = counters.NewCounter()
	d := region.NewDesc(blk)
	g := region.BuildTransCFG([]*region.Block{blk}, []profile.TransID{blk.ProfCounter}, counters)

	var before []region.Guard
	before = append(before, blk.Preconds...)
	region.Relax(d, g, counters, region.DefaultRelaxConfig)
	for i, gd := range blk.Preconds {
		if gd.Constraint >= region.ConSpecific {
			// Specific+ guards must be untouched.
			if gd.Type != before[i].Type {
				t.Errorf("relaxation changed a %v guard: %v -> %v",
					gd.Constraint, before[i].Type, gd.Type)
			}
		} else if !before[i].Type.SubtypeOf(gd.Type) {
			t.Errorf("relaxation narrowed a guard: %v -> %v", before[i].Type, gd.Type)
		}
	}
}

func TestConstraintLattice(t *testing.T) {
	// Table 1 ordering and satisfaction.
	if !region.ConGeneric.Satisfied(types.TCell) {
		t.Error("Generic should accept anything")
	}
	if region.ConSpecific.Satisfied(types.TNum) {
		t.Error("Specific should reject Num")
	}
	if !region.ConSpecific.Satisfied(types.TInt) {
		t.Error("Specific should accept Int")
	}
	if !region.ConCountness.Satisfied(types.TUncounted) {
		t.Error("Countness should accept Uncounted")
	}
	if region.ConSpecialized.Satisfied(types.TArr) {
		t.Error("Specialized should reject unspecialized Arr")
	}
	if !region.ConSpecialized.Satisfied(types.ArrOfKind(types.ArrayPacked)) {
		t.Error("Specialized should accept Arr=Packed")
	}
	if region.ConCountness.Stronger(region.ConSpecific) != region.ConSpecific {
		t.Error("Stronger picks the wrong side")
	}
}

func TestRelaxedType(t *testing.T) {
	if got := region.ConGeneric.RelaxedType(types.TInt); got != types.TCell {
		t.Errorf("Generic relaxes to %v", got)
	}
	if got := region.ConCountness.RelaxedType(types.TInt); got != types.TUncounted {
		t.Errorf("Countness(Int) relaxes to %v", got)
	}
	got := region.ConCountness.RelaxedType(types.TStr)
	if got != types.TStr {
		t.Errorf("Countness(Str) relaxes to %v (counted kinds keep their kind)", got)
	}
}
