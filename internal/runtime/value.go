// Package runtime implements the guest-language runtime: typed values,
// the explicit reference-counted heap (observable destructors,
// copy-on-write arrays — the two PHP features the paper calls out),
// classes and objects, and the builtin function table.
//
// The host Go garbage collector manages host memory; guest reference
// counts are explicit fields so that the JIT's IncRef/DecRef
// instructions and the RCE optimization have real, observable
// semantics.
package runtime

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/types"
)

// Value is the guest TypedValue: a kind tag plus payload. Exactly one
// payload field is meaningful for a given kind.
type Value struct {
	Kind types.Kind
	I    int64 // Int; Bool stores 0/1
	D    float64
	S    *Str
	A    *Array
	O    *Object
}

// Constructors.
func Uninit() Value { return Value{Kind: types.KUninit} }
func Null() Value   { return Value{Kind: types.KNull} }
func Bool(b bool) Value {
	v := Value{Kind: types.KBool}
	if b {
		v.I = 1
	}
	return v
}
func Int(i int64) Value    { return Value{Kind: types.KInt, I: i} }
func Dbl(d float64) Value  { return Value{Kind: types.KDbl, D: d} }
func StrV(s *Str) Value    { return Value{Kind: types.KStr, S: s} }
func ArrV(a *Array) Value  { return Value{Kind: types.KArr, A: a} }
func ObjV(o *Object) Value { return Value{Kind: types.KObj, O: o} }

// NewStr allocates a fresh counted guest string.
func NewStr(s string) Value { return StrV(&Str{Data: s, refs: 1}) }

// Bool reports the PHP truthiness of v.
func (v Value) Bool() bool {
	switch v.Kind {
	case types.KBool, types.KInt:
		return v.I != 0
	case types.KDbl:
		return v.D != 0
	case types.KStr:
		return v.S.Data != "" && v.S.Data != "0"
	case types.KArr:
		return v.A.Len() > 0
	case types.KObj:
		return true
	default:
		return false
	}
}

// IsNull reports Null or Uninit.
func (v Value) IsNull() bool { return v.Kind == types.KNull || v.Kind == types.KUninit }

// Counted reports whether v participates in reference counting.
func (v Value) Counted() bool { return v.Kind&types.KCounted != 0 }

// Type returns the most specific static type describing v, including
// array-kind and exact-class specializations.
func (v Value) Type() types.Type {
	switch v.Kind {
	case types.KArr:
		if v.A.IsPacked() {
			return types.ArrOfKind(types.ArrayPacked)
		}
		return types.ArrOfKind(types.ArrayMixed)
	case types.KObj:
		return types.ObjOfClass(v.O.Class.Name, true)
	default:
		return types.FromKind(v.Kind)
	}
}

// ToDbl converts numerics (and numeric strings) to float64.
func (v Value) ToDbl() float64 {
	switch v.Kind {
	case types.KInt, types.KBool:
		return float64(v.I)
	case types.KDbl:
		return v.D
	case types.KStr:
		f, _ := strconv.ParseFloat(v.S.Data, 64)
		return f
	default:
		return 0
	}
}

// ToInt converts to int64 following PHP's (simplified) rules.
func (v Value) ToInt() int64 {
	switch v.Kind {
	case types.KInt, types.KBool:
		return v.I
	case types.KDbl:
		if math.IsNaN(v.D) || math.IsInf(v.D, 0) {
			return 0
		}
		return int64(v.D)
	case types.KStr:
		n, _ := strconv.ParseInt(v.S.Data, 10, 64)
		return n
	default:
		return 0
	}
}

// ToString renders v the way echo would.
func (v Value) ToString() string {
	switch v.Kind {
	case types.KUninit, types.KNull:
		return ""
	case types.KBool:
		if v.I != 0 {
			return "1"
		}
		return ""
	case types.KInt:
		return strconv.FormatInt(v.I, 10)
	case types.KDbl:
		return formatDouble(v.D)
	case types.KStr:
		return v.S.Data
	case types.KArr:
		return "Array"
	case types.KObj:
		return "Object(" + v.O.Class.Name + ")"
	default:
		return ""
	}
}

func formatDouble(d float64) string {
	if d == math.Trunc(d) && math.Abs(d) < 1e15 {
		return strconv.FormatFloat(d, 'f', -1, 64)
	}
	return strconv.FormatFloat(d, 'G', 14, 64)
}

// DebugString renders a value for diagnostics (not guest-visible).
func (v Value) DebugString() string {
	switch v.Kind {
	case types.KUninit:
		return "Uninit"
	case types.KNull:
		return "null"
	case types.KBool:
		return strconv.FormatBool(v.I != 0)
	case types.KStr:
		return fmt.Sprintf("%q", v.S.Data)
	case types.KArr:
		return fmt.Sprintf("Array(len=%d,refs=%d)", v.A.Len(), v.A.refs)
	case types.KObj:
		return fmt.Sprintf("Object(%s,refs=%d)", v.O.Class.Name, v.O.refs)
	default:
		return v.ToString()
	}
}

// Str is a counted guest string.
type Str struct {
	Data string
	refs int32
	// static strings (unit literals) are never freed and skip
	// refcounting, mirroring HHVM's static string table.
	static bool
}

// Refs returns the current reference count (for tests and RCE
// verification).
func (s *Str) Refs() int32 { return s.refs }

// Static marks and reports interned unit literals.
func (s *Str) Static() bool { return s.static }

// internTable is the static string table shared by all loaded units.
// Interning happens at runtime too (array string keys, LdStr), and
// worker VMs execute concurrently, so the table is a sync.Map:
// lock-free reads once a string is warm, append-only writes.
var internTable sync.Map // string -> *Str

// InternStr returns the shared static string for s.
func InternStr(s string) *Str {
	if v, ok := internTable.Load(s); ok {
		return v.(*Str)
	}
	v := &Str{Data: s, refs: 1, static: true}
	if prior, loaded := internTable.LoadOrStore(s, v); loaded {
		return prior.(*Str)
	}
	return v
}
