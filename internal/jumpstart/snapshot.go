// Package jumpstart implements profile persistence: a versioned,
// checksummed binary snapshot of everything the profiling JIT learns
// (block counters, arcs, call-target histograms, the dynamic call
// graph), keyed by stable function identity (full name + bytecode
// hash). A restarted server loads a snapshot, re-mints profiling
// translations from the recorded guard sets, remaps the saved counts
// onto them, and fires global retranslation immediately — skipping
// the minutes-long live profiling phase of the paper's Figure 9.
// Functions whose bytecode hash no longer matches are rejected
// per-function and fall back to normal profiling.
package jumpstart

import (
	"fmt"

	"repro/internal/types"
)

// Snapshot is the persisted profile of one VM (or a fleet merge).
type Snapshot struct {
	// Funcs holds per-function profiles, sorted by (Name, Hash) in
	// canonical snapshots (Encode and Merge both canonicalize).
	Funcs []FuncProfile
	// CallGraph is the dynamic caller->callee graph; indices refer to
	// Funcs.
	CallGraph []CallEdge
}

// FuncProfile is the profile of one function, identified by name and
// bytecode hash rather than by the unit-local function ID, so it
// survives recompilation of changed source.
type FuncProfile struct {
	Name string
	// Hash is hhbc.Func.BytecodeHash at snapshot time. Loaders must
	// reject the function when the hash of the current bytecode
	// differs.
	Hash uint64
	// Trans are the function's profiling translations.
	Trans []TransProfile
	// Arcs are control transfers between this function's profiling
	// translations; From/To index Trans.
	Arcs []ArcWeight
	// CallTargets are receiver-class histograms at this function's
	// method-call sites.
	CallTargets []CallTarget
}

// TransProfile describes one profiling translation precisely enough
// to re-mint it on a fresh VM: where it starts, the entry stack
// shape, and the guarded entry types its code specialized on.
type TransProfile struct {
	PC         int
	EntryDepth int
	// EntryStackTypes are the observed entry types of the eval-stack
	// slots (len == EntryDepth).
	EntryStackTypes []TypeRepr
	// Guards are the translation's type preconditions.
	Guards []GuardRepr
	// Count is the block's execution count.
	Count uint64
}

// GuardRepr is a serialized region guard location + type.
type GuardRepr struct {
	// Stack selects an eval-stack slot; otherwise Slot is a local.
	Stack bool
	Slot  int
	Type  TypeRepr
}

// TypeRepr is the serialized form of a types.Type.
type TypeRepr struct {
	Kind    uint16
	ArrKind uint8
	Class   string
	Exact   bool
}

// ReprOf converts a lattice type to its serialized form.
func ReprOf(t types.Type) TypeRepr {
	cls, exact := t.Class()
	return TypeRepr{
		Kind:    uint16(t.Kind()),
		ArrKind: uint8(t.ArrayKind()),
		Class:   cls,
		Exact:   exact,
	}
}

// Type reconstructs the lattice type.
func (r TypeRepr) Type() types.Type {
	k := types.Kind(r.Kind)
	if k == types.KObj && r.Class != "" {
		return types.ObjOfClass(r.Class, r.Exact)
	}
	if k == types.KArr && types.ArrayKind(r.ArrKind) != types.ArrayAny {
		return types.ArrOfKind(types.ArrayKind(r.ArrKind))
	}
	return types.FromKind(k)
}

// ArcWeight is a weighted intra-function translation arc.
type ArcWeight struct {
	From, To int
	Weight   uint64
}

// CallTarget is one receiver-class histogram entry at a call site.
type CallTarget struct {
	PC    int
	Class string
	Count uint64
}

// CallEdge is a weighted call-graph edge between snapshot functions.
type CallEdge struct {
	Caller, Callee int
	Weight         uint64
}

// NumTrans totals the profiling translations across all functions.
func (s *Snapshot) NumTrans() int {
	n := 0
	for i := range s.Funcs {
		n += len(s.Funcs[i].Trans)
	}
	return n
}

// TotalCount sums all block counters.
func (s *Snapshot) TotalCount() uint64 {
	var n uint64
	for i := range s.Funcs {
		n += s.Funcs[i].TotalCount()
	}
	return n
}

// TotalCount sums the function's block counters — its profiled
// hotness.
func (f *FuncProfile) TotalCount() uint64 {
	var n uint64
	for _, tr := range f.Trans {
		n += tr.Count
	}
	return n
}

// FuncByIdentity finds a function profile by (name, hash).
func (s *Snapshot) FuncByIdentity(name string, hash uint64) *FuncProfile {
	for i := range s.Funcs {
		if s.Funcs[i].Name == name && s.Funcs[i].Hash == hash {
			return &s.Funcs[i]
		}
	}
	return nil
}

// identity is the merge key of a function profile.
type identity struct {
	name string
	hash uint64
}

func (id identity) String() string { return fmt.Sprintf("%s#%016x", id.name, id.hash) }
