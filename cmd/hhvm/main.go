// Command hhvm compiles and runs a PHP-subset source file through the
// full pipeline (parser → hphpc → emitter → hhbbc → VM) with a
// selectable execution mode, mirroring the modes compared in the
// paper's Figure 8.
//
// Usage:
//
//	hhvm [-mode interp|tracelet|profiling|region] [-requests N]
//	     [-stats] [-disas] [-prof-dump file] [-prof-load file]
//	     [-fault-rate P] [-fault-seed N] [-compile-workers N]
//	     [-no-fuse] [-no-shapes] [-verify-sample P] file.php
//
// -prof-load jumpstarts the engine from a profile snapshot before the
// first request; -prof-dump persists the profile after the last one
// (inspect the result with the profdump tool). -fault-rate > 0 arms
// the deterministic fault injector (DESIGN.md §11) at probability P
// per draw for every fault kind, exercising the self-healing paths.
// -verify-sample > 0 attaches the self-verification monitor
// (DESIGN.md §15): a code-cache integrity auditor plus a shadow
// interpreter that re-executes the given fraction of requests and
// cross-checks outputs and return values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hhbc"
	"repro/internal/jit"
	"repro/internal/jumpstart"
	"repro/internal/sentry"
)

func main() {
	mode := flag.String("mode", "region", "execution mode: interp, tracelet, profiling, region")
	requests := flag.Int("requests", 1, "number of times to run the program (same engine; warms the JIT)")
	stats := flag.Bool("stats", false, "print JIT and heap statistics after the run")
	disas := flag.Bool("disas", false, "print the compiled bytecode instead of running")
	trigger := flag.Uint64("trigger", 0, "override the global retranslation trigger")
	profDump := flag.String("prof-dump", "", "write a profile snapshot to this file after the last request")
	profLoad := flag.String("prof-load", "", "jumpstart from a profile snapshot before the first request")
	faultRate := flag.Float64("fault-rate", 0, "arm the fault injector at this probability per draw (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the fault injector")
	compileWorkers := flag.Int("compile-workers", 0, "fan the optimizing backend over this many goroutines (0/1 = serial)")
	noFuse := flag.Bool("no-fuse", false, "disable dispatch fusion (superinstructions + per-run cycle settlement)")
	noShapes := flag.Bool("no-shapes", false, "disable typed object shapes (shape guards + property inline caches)")
	verifySample := flag.Float64("verify-sample", 0, "re-execute this fraction of requests on a shadow interpreter and cross-check (0 disables; also arms the code-cache integrity auditor)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hhvm [flags] file.php")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	unit, err := core.Compile(string(src), core.CompileOptions{})
	if err != nil {
		fatal(err)
	}

	if *disas {
		for _, f := range unit.Funcs {
			fmt.Print(hhbc.Disassemble(unit, f))
		}
		return
	}

	cfg := jit.DefaultConfig()
	switch *mode {
	case "interp":
		cfg.Mode = jit.ModeInterp
	case "tracelet":
		cfg.Mode = jit.ModeTracelet
	case "profiling":
		cfg.Mode = jit.ModeProfiling
	case "region":
		cfg.Mode = jit.ModeRegion
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *trigger != 0 {
		cfg.ProfileTrigger = *trigger
	}
	cfg.CompileWorkers = *compileWorkers
	cfg.FuseDispatch = !*noFuse
	cfg.EnableShapes = !*noShapes
	if *faultRate > 0 {
		cfg.Faults = faultinject.New(faultinject.EnableAll(*faultSeed, *faultRate))
	}

	eng, err := core.NewEngine(unit, cfg, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if *profLoad != "" {
		snap, err := jumpstart.Load(*profLoad)
		if err != nil {
			fatal(fmt.Errorf("prof-load: %w", err))
		}
		jr := eng.LoadProfile(snap)
		if *stats {
			fmt.Fprintf(os.Stderr, "jumpstart: loaded %d funcs (%d translations); %d stale, %d unknown; optimized=%v\n",
				jr.LoadedFuncs, jr.LoadedTrans, len(jr.StaleFuncs), len(jr.UnknownFuncs), jr.Optimized)
			for _, name := range jr.StaleFuncs {
				fmt.Fprintf(os.Stderr, "jumpstart: stale (bytecode changed): %s\n", name)
			}
		}
	}
	var mon *sentry.Monitor
	if *verifySample > 0 {
		mon, err = sentry.New(sentry.Config{SampleRate: *verifySample, Seed: *faultSeed}, eng.VM.JIT)
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
	}
	var total uint64
	var reqBuf strings.Builder
	for i := 0; i < *requests; i++ {
		var out io.Writer = os.Stdout
		if mon != nil {
			reqBuf.Reset()
			out = io.MultiWriter(os.Stdout, &reqBuf)
		}
		c, err := eng.RunRequest(out)
		if err != nil {
			fatal(err)
		}
		if mon != nil {
			mon.Observe(sentry.MainEndpoint, reqBuf.String())
		}
		total = c // last request's cost (steady state)
	}
	if mon != nil {
		mon.Audit()
		mon.Drain()
	}
	if *profDump != "" {
		if err := jumpstart.Save(*profDump, eng.ProfileSnapshot()); err != nil {
			fatal(fmt.Errorf("prof-dump: %w", err))
		}
	}
	if *stats {
		st := eng.Stats()
		hs := eng.Heap().Snapshot()
		fmt.Fprintf(os.Stderr, "\n--- stats (mode=%s) ---\n", *mode)
		fmt.Fprintf(os.Stderr, "last request: %d simulated cycles\n", total)
		fmt.Fprintf(os.Stderr, "translations: %d live, %d profiling, %d optimized\n",
			st.LiveTranslations, st.ProfilingTranslations, st.OptimizedTranslations)
		fmt.Fprintf(os.Stderr, "code bytes:   %d live, %d profiling, %d optimized\n",
			st.BytesLive, st.BytesProfiling, st.BytesOptimized)
		fmt.Fprintf(os.Stderr, "guard fails:  %d; side exits: %d; binds: %d\n",
			st.GuardFails, st.SideExits, st.BindRequests)
		fmt.Fprintf(os.Stderr, "shapes:       %d guards (%d failed), IC %d hits / %d misses / %d megamorphic, %d generic calls\n",
			st.ShapeGuards, st.ShapeGuardFails, st.PropICHits, st.PropICMisses, st.PropICMega, st.GenericPropCalls)
		fmt.Fprintf(os.Stderr, "heap:         %d increfs, %d decrefs, %d destructors, %d COW copies\n",
			hs.IncRefs, hs.DecRefs, hs.Destructs, hs.CowCopies)
		if *compileWorkers > 1 {
			fmt.Fprintf(os.Stderr, "leases:       %d acquires, %d waits, %d steals; peak compile parallelism %d\n",
				st.LeaseAcquires, st.LeaseWaits, st.LeaseSteals, st.PeakCompileParallelism)
		}
		if *faultRate > 0 {
			fmt.Fprintf(os.Stderr, "self-healing: %d injections fired, %d faults contained, %d quarantined, %d demoted, %d recycle runs, degrade level %d\n",
				cfg.Faults.TotalFired(), st.TransFaults, st.Quarantined, st.Demotions, st.RecycleRuns, st.DegradeLevel)
		}
		if mon != nil {
			vs := mon.Stats()
			fmt.Fprintf(os.Stderr, "verify:       %d audited (%d corruptions, %d torn links, %d dangling), %d sampled, %d shadow runs, %d divergences, %d quarantined\n",
				vs.Audited, vs.Corruptions, vs.TornLinks, vs.DanglingLinks, vs.Sampled, vs.ShadowRuns, vs.Divergences, vs.Quarantined)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hhvm:", err)
	os.Exit(1)
}
