package hhbc

import "fmt"

// VerifyFunc checks structural invariants of a function's bytecode:
// jump targets in range, stack depth consistent along all paths, pool
// indices valid. The emitter output and decoded repo units are both
// verified before execution.
func VerifyFunc(u *Unit, f *Func) error {
	n := len(f.Instrs)
	if n == 0 {
		return fmt.Errorf("%s: empty function", f.FullName())
	}
	last := f.Instrs[n-1].Op
	if !last.IsUnconditionalExit() {
		return fmt.Errorf("%s: control can fall off the end (%s)", f.FullName(), last)
	}

	checkTarget := func(pc int, t int32) error {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("%s: pc %d: jump target %d out of range", f.FullName(), pc, t)
		}
		return nil
	}

	// depth[pc] = stack depth at entry, -1 unknown. Worklist walk.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type workItem struct{ pc, d int }
	work := []workItem{{0, 0}}
	for _, eh := range f.EHTable {
		if eh.Handler < 0 || eh.Handler >= n {
			return fmt.Errorf("%s: bad EH handler %d", f.FullName(), eh.Handler)
		}
		// Handlers start with Catch, which pushes the exception onto
		// an empty stack.
		work = append(work, workItem{eh.Handler, 0})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		for {
			if depth[pc] >= 0 {
				if depth[pc] != d {
					return fmt.Errorf("%s: pc %d: inconsistent stack depth %d vs %d",
						f.FullName(), pc, depth[pc], d)
				}
				break
			}
			depth[pc] = d
			in := f.Instrs[pc]
			pops := in.Op.NumPop()
			if pops < 0 {
				switch in.Op {
				case OpFCallD, OpFCallBuiltin:
					pops = int(in.A)
				case OpFCallObjMethodD:
					pops = int(in.A) + 1
				case OpNewPackedArray:
					pops = int(in.A)
				}
			}
			if d < pops {
				return fmt.Errorf("%s: pc %d (%s): stack underflow (depth %d, pops %d)",
					f.FullName(), pc, in.Op, d, pops)
			}
			d = d - pops + in.Op.NumPush()
			if err := checkPools(u, f, pc, in); err != nil {
				return err
			}
			switch in.Op {
			case OpJmp:
				if err := checkTarget(pc, in.A); err != nil {
					return err
				}
				work = append(work, workItem{int(in.A), d})
			case OpJmpZ, OpJmpNZ:
				if err := checkTarget(pc, in.A); err != nil {
					return err
				}
				work = append(work, workItem{int(in.A), d})
			case OpIterInitL:
				if err := checkTarget(pc, in.B); err != nil {
					return err
				}
				work = append(work, workItem{int(in.B), d})
			case OpIterNext:
				if err := checkTarget(pc, in.B); err != nil {
					return err
				}
				work = append(work, workItem{int(in.B), d})
			case OpSwitch:
				if int(in.A) >= len(f.Switches) {
					return fmt.Errorf("%s: pc %d: bad switch table", f.FullName(), pc)
				}
				sw := f.Switches[in.A]
				for _, t := range sw.Targets {
					if err := checkTarget(pc, int32(t)); err != nil {
						return err
					}
					work = append(work, workItem{t, d})
				}
				if err := checkTarget(pc, int32(sw.Default)); err != nil {
					return err
				}
				work = append(work, workItem{sw.Default, d})
			}
			if in.Op.IsUnconditionalExit() {
				break
			}
			pc++
			if pc >= n {
				return fmt.Errorf("%s: fell off end at pc %d", f.FullName(), pc)
			}
		}
	}
	return nil
}

func checkPools(u *Unit, f *Func, pc int, in Instr) error {
	bad := func(what string) error {
		return fmt.Errorf("%s: pc %d (%s): bad %s index %d", f.FullName(), pc, in.Op, what, in.A)
	}
	switch in.Op {
	case OpInt:
		if int(in.A) >= len(u.Ints) {
			return bad("int pool")
		}
	case OpDouble:
		if int(in.A) >= len(u.Doubles) {
			return bad("double pool")
		}
	case OpString, OpFatal, OpNewObjD, OpInstanceOfD, OpCGetPropD, OpSetPropD:
		if int(in.A) >= len(u.Strings) {
			return bad("string pool")
		}
	case OpFCallD, OpFCallBuiltin, OpFCallObjMethodD:
		if int(in.B) >= len(u.Strings) {
			return fmt.Errorf("%s: pc %d: bad name index %d", f.FullName(), pc, in.B)
		}
	case OpCGetL, OpCGetL2, OpPopL, OpSetL, OpPushL, OpUnsetL, OpIncDecL,
		OpArrGetL, OpArrSetL, OpArrAppendL, OpArrUnsetL, OpAKExistsL, OpAssertRATL:
		if int(in.A) >= f.NumLocals {
			return bad("local")
		}
	}
	return nil
}

// VerifyUnit verifies every function.
func VerifyUnit(u *Unit) error {
	for _, f := range u.Funcs {
		if err := VerifyFunc(u, f); err != nil {
			return err
		}
	}
	if u.Main < 0 || u.Main >= len(u.Funcs) {
		return fmt.Errorf("unit has no main (%d)", u.Main)
	}
	return nil
}
