package machine

// Instruction-fetch hierarchy model: a set-associative L1 i-cache and
// an instruction TLB with separate 4 KiB and 2 MiB (huge page)
// entries, mirroring the dedicated huge-page I-TLB entries on Intel
// hardware that HHVM's huge-page optimization exploits (Section
// 5.1.2).

const (
	iCacheLineBits = 6  // 64-byte lines
	iCacheSets     = 64 // 64 sets x 8 ways x 64B = 32 KiB
	iCacheWays     = 8

	page4KBits = 12
	page2MBits = 21

	itlb4KEntries   = 8 // effective capacity left after the (huge) VM binary's own pages
	itlbHugeEntries = 8

	iCacheMissCost = 20
	itlbMissCost   = 30
)

// lruSet is a tiny fully-associative LRU array.
type lruSet struct {
	keys []uint64
	cap  int
}

func newLRU(capacity int) *lruSet { return &lruSet{cap: capacity} }

// touch returns true on hit.
func (s *lruSet) touch(key uint64) bool {
	for i, k := range s.keys {
		if k == key {
			copy(s.keys[1:i+1], s.keys[:i])
			s.keys[0] = key
			return true
		}
	}
	if len(s.keys) < s.cap {
		s.keys = append(s.keys, 0)
	}
	copy(s.keys[1:], s.keys)
	s.keys[0] = key
	return false
}

// FetchModel tracks i-cache and I-TLB state across requests (they
// warm up like real hardware structures).
type FetchModel struct {
	sets     [iCacheSets]*lruSet
	itlb4K   *lruSet
	itlbHuge *lruSet

	lastLine uint64
	lastPage uint64

	// Stats.
	ICacheMisses uint64
	ITLBMisses   uint64
	Fetches      uint64

	// HugeCovers reports whether an address is huge-page mapped.
	HugeCovers func(addr uint64) bool
}

// NewFetchModel returns a cold fetch model.
func NewFetchModel() *FetchModel {
	f := &FetchModel{
		itlb4K:   newLRU(itlb4KEntries),
		itlbHuge: newLRU(itlbHugeEntries),
	}
	for i := range f.sets {
		f.sets[i] = newLRU(iCacheWays)
	}
	return f
}

// Fetch charges the fetch cost for executing the instruction at addr,
// returning extra cycles beyond the instruction's own cost.
func (f *FetchModel) Fetch(addr uint64) uint64 {
	line := addr >> iCacheLineBits
	if line == f.lastLine {
		return 0 // same line as previous instruction: free
	}
	f.lastLine = line
	f.Fetches++
	var extra uint64

	set := f.sets[line%iCacheSets]
	if !set.touch(line) {
		f.ICacheMisses++
		extra += iCacheMissCost
	}

	huge := f.HugeCovers != nil && f.HugeCovers(addr)
	var page uint64
	if huge {
		page = addr>>page2MBits | 1<<63
	} else {
		page = addr >> page4KBits
	}
	if page != f.lastPage {
		f.lastPage = page
		var hit bool
		if huge {
			hit = f.itlbHuge.touch(page)
		} else {
			hit = f.itlb4K.touch(page)
		}
		if !hit {
			f.ITLBMisses++
			extra += itlbMissCost
		}
	}
	return extra
}
