package emitter

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/hhbc"
)

func (fe *funcEmitter) stmts(list []ast.Stmt) error {
	for _, s := range list {
		if err := fe.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fe *funcEmitter) stmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return fe.exprStmt(st.E)
	case *ast.Echo:
		for _, a := range st.Args {
			if err := fe.expr(a); err != nil {
				return err
			}
			fe.emit(hhbc.OpPrint, 0, 0, 0)
			fe.emit(hhbc.OpPopC, 0, 0, 0)
		}
		return nil
	case *ast.Return:
		if st.E != nil {
			if err := fe.expr(st.E); err != nil {
				return err
			}
		} else {
			fe.emit(hhbc.OpNull, 0, 0, 0)
		}
		fe.emit(hhbc.OpRetC, 0, 0, 0)
		return nil
	case *ast.If:
		return fe.ifStmt(st)
	case *ast.While:
		return fe.whileStmt(st)
	case *ast.For:
		return fe.forStmt(st)
	case *ast.Foreach:
		return fe.foreachStmt(st)
	case *ast.Break:
		if len(fe.loops) == 0 {
			return fmt.Errorf("break outside loop")
		}
		lc := fe.loops[len(fe.loops)-1]
		if lc.iterToFree >= 0 {
			fe.emit(hhbc.OpIterFree, int32(lc.iterToFree), 0, 0)
		}
		lc.breaks = append(lc.breaks, fe.emit(hhbc.OpJmp, 0, 0, 0))
		return nil
	case *ast.Continue:
		if len(fe.loops) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		lc := fe.loops[len(fe.loops)-1]
		lc.continues = append(lc.continues, fe.emit(hhbc.OpJmp, 0, 0, 0))
		return nil
	case *ast.Throw:
		if err := fe.expr(st.E); err != nil {
			return err
		}
		fe.emit(hhbc.OpThrow, 0, 0, 0)
		return nil
	case *ast.Try:
		return fe.tryStmt(st)
	case *ast.Switch:
		return fe.switchStmt(st)
	case *ast.Unset:
		return fe.unsetStmt(st)
	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
}

// exprStmt emits e for effect only, avoiding a push+pop where the
// statement form has a dedicated bytecode (the PopL pattern from the
// paper's Figure 3).
func (fe *funcEmitter) exprStmt(e ast.Expr) error {
	switch v := e.(type) {
	case *ast.Assign:
		if tgt, ok := v.Target.(*ast.Var); ok && v.Op == "" {
			if err := fe.expr(v.Value); err != nil {
				return err
			}
			fe.emit(hhbc.OpPopL, fe.local(tgt.Name), 0, 0)
			return nil
		}
		return fe.assign(v, false)
	case *ast.IncDec:
		if tgt, ok := v.Target.(*ast.Var); ok {
			op := int32(hhbc.PostInc)
			if !v.Inc {
				op = hhbc.PostDec
			}
			fe.emit(hhbc.OpIncDecL, fe.local(tgt.Name), op, 0)
			fe.emit(hhbc.OpPopC, 0, 0, 0)
			return nil
		}
		if err := fe.expr(e); err != nil {
			return err
		}
		fe.emit(hhbc.OpPopC, 0, 0, 0)
		return nil
	case *ast.NullLit:
		return nil // empty statement
	default:
		if err := fe.expr(e); err != nil {
			return err
		}
		fe.emit(hhbc.OpPopC, 0, 0, 0)
		return nil
	}
}

func (fe *funcEmitter) ifStmt(st *ast.If) error {
	if err := fe.expr(st.Cond); err != nil {
		return err
	}
	jz := fe.emit(hhbc.OpJmpZ, 0, 0, 0)
	if err := fe.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) == 0 {
		fe.patch(jz, fe.pc())
		return nil
	}
	jend := fe.emit(hhbc.OpJmp, 0, 0, 0)
	fe.patch(jz, fe.pc())
	if err := fe.stmts(st.Else); err != nil {
		return err
	}
	fe.patch(jend, fe.pc())
	return nil
}

func (fe *funcEmitter) pushLoop(iterToFree int) *loopCtx {
	lc := &loopCtx{iterToFree: iterToFree}
	fe.loops = append(fe.loops, lc)
	return lc
}

func (fe *funcEmitter) popLoop(lc *loopCtx, continueTarget, breakTarget int) {
	for _, pc := range lc.breaks {
		fe.patch(pc, breakTarget)
	}
	for _, pc := range lc.continues {
		fe.patch(pc, continueTarget)
	}
	fe.loops = fe.loops[:len(fe.loops)-1]
}

func (fe *funcEmitter) whileStmt(st *ast.While) error {
	head := fe.pc()
	if err := fe.expr(st.Cond); err != nil {
		return err
	}
	exit := fe.emit(hhbc.OpJmpZ, 0, 0, 0)
	lc := fe.pushLoop(-1)
	if err := fe.stmts(st.Body); err != nil {
		return err
	}
	fe.emit(hhbc.OpJmp, int32(head), 0, 0)
	end := fe.pc()
	fe.patch(exit, end)
	fe.popLoop(lc, head, end)
	return nil
}

func (fe *funcEmitter) forStmt(st *ast.For) error {
	for _, e := range st.Init {
		if err := fe.exprStmt(e); err != nil {
			return err
		}
	}
	head := fe.pc()
	var exit int = -1
	if st.Cond != nil {
		if err := fe.expr(st.Cond); err != nil {
			return err
		}
		exit = fe.emit(hhbc.OpJmpZ, 0, 0, 0)
	}
	lc := fe.pushLoop(-1)
	if err := fe.stmts(st.Body); err != nil {
		return err
	}
	cont := fe.pc()
	for _, e := range st.Step {
		if err := fe.exprStmt(e); err != nil {
			return err
		}
	}
	fe.emit(hhbc.OpJmp, int32(head), 0, 0)
	end := fe.pc()
	if exit >= 0 {
		fe.patch(exit, end)
	}
	fe.popLoop(lc, cont, end)
	return nil
}

func (fe *funcEmitter) foreachStmt(st *ast.Foreach) error {
	// Evaluate the array into a temp local so the iterator has a
	// stable base.
	var arrLocal int32
	if v, ok := st.Arr.(*ast.Var); ok {
		arrLocal = fe.local(v.Name)
	} else {
		if err := fe.expr(st.Arr); err != nil {
			return err
		}
		arrLocal = fe.temp()
		fe.emit(hhbc.OpPopL, arrLocal, 0, 0)
	}
	it := fe.iter()
	initPC := fe.emit(hhbc.OpIterInitL, it, 0, arrLocal)
	body := fe.pc()
	if st.KeyVar != "" {
		fe.emit(hhbc.OpIterKey, it, 0, 0)
		fe.emit(hhbc.OpPopL, fe.local(st.KeyVar), 0, 0)
	}
	fe.emit(hhbc.OpIterValue, it, 0, 0)
	fe.emit(hhbc.OpPopL, fe.local(st.ValVar), 0, 0)
	lc := fe.pushLoop(int(it))
	if err := fe.stmts(st.Body); err != nil {
		return err
	}
	cont := fe.pc()
	fe.emit(hhbc.OpIterNext, it, int32(body), 0)
	fe.emit(hhbc.OpIterFree, it, 0, 0)
	end := fe.pc()
	fe.fn.Instrs[initPC].B = int32(end)
	fe.popLoop(lc, cont, end)
	return nil
}

func (fe *funcEmitter) tryStmt(st *ast.Try) error {
	start := fe.pc()
	if err := fe.stmts(st.Body); err != nil {
		return err
	}
	jend := fe.emit(hhbc.OpJmp, 0, 0, 0)
	tryEnd := fe.pc()

	handler := fe.pc()
	fe.emit(hhbc.OpCatch, 0, 0, 0)
	var ends []int
	for _, c := range st.Catches {
		fe.emit(hhbc.OpDup, 0, 0, 0)
		fe.emit(hhbc.OpInstanceOfD, fe.unit.InternString(c.Class), 0, 0)
		skip := fe.emit(hhbc.OpJmpZ, 0, 0, 0)
		fe.emit(hhbc.OpPopL, fe.local(c.Var), 0, 0)
		if err := fe.stmts(c.Body); err != nil {
			return err
		}
		ends = append(ends, fe.emit(hhbc.OpJmp, 0, 0, 0))
		fe.patch(skip, fe.pc())
	}
	// No clause matched: rethrow.
	fe.emit(hhbc.OpThrow, 0, 0, 0)
	end := fe.pc()
	fe.patch(jend, end)
	for _, pc := range ends {
		fe.patch(pc, end)
	}
	fe.fn.EHTable = append(fe.fn.EHTable, hhbc.EHEnt{Start: start, End: tryEnd, Handler: handler})
	return nil
}

func (fe *funcEmitter) switchStmt(st *ast.Switch) error {
	if err := fe.expr(st.Subject); err != nil {
		return err
	}
	// Dense integer cases use a real jump table.
	if tbl, ok := denseIntCases(st); ok {
		return fe.emitTableSwitch(st, tbl)
	}
	// General form: compare subject (kept in a temp) against each
	// case value.
	tmp := fe.temp()
	fe.emit(hhbc.OpPopL, tmp, 0, 0)
	var bodyJmps []int
	for _, c := range st.Cases {
		if err := fe.expr(c.Value); err != nil {
			return err
		}
		fe.emit(hhbc.OpCGetL2, tmp, 0, 0)
		fe.emit(hhbc.OpEq, 0, 0, 0)
		bodyJmps = append(bodyJmps, fe.emit(hhbc.OpJmpNZ, 0, 0, 0))
	}
	defaultJmp := fe.emit(hhbc.OpJmp, 0, 0, 0)

	lc := fe.pushLoop(-1) // switch participates in break
	bodyStarts := make([]int, len(st.Cases))
	for i, c := range st.Cases {
		bodyStarts[i] = fe.pc()
		if err := fe.stmts(c.Body); err != nil {
			return err
		}
	}
	defaultStart := fe.pc()
	if st.Default != nil {
		if err := fe.stmts(st.Default); err != nil {
			return err
		}
	}
	end := fe.pc()
	for i, pc := range bodyJmps {
		fe.patch(pc, bodyStarts[i])
	}
	fe.patch(defaultJmp, defaultStart)
	fe.popLoop(lc, end, end)
	return nil
}

// denseIntCases returns the int case values if all cases are int
// literals spanning a dense range.
func denseIntCases(st *ast.Switch) ([]int64, bool) {
	if len(st.Cases) < 3 {
		return nil, false
	}
	vals := make([]int64, len(st.Cases))
	lo, hi := int64(1<<62), int64(-1<<62)
	for i, c := range st.Cases {
		il, ok := c.Value.(*ast.IntLit)
		if !ok {
			return nil, false
		}
		vals[i] = il.Value
		if il.Value < lo {
			lo = il.Value
		}
		if il.Value > hi {
			hi = il.Value
		}
	}
	if hi-lo+1 > 3*int64(len(vals)) {
		return nil, false
	}
	return vals, true
}

func (fe *funcEmitter) emitTableSwitch(st *ast.Switch, vals []int64) error {
	lo := vals[0]
	hi := vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	sw := hhbc.SwitchTable{Base: lo, Targets: make([]int, hi-lo+1)}
	tblIdx := len(fe.fn.Switches)
	fe.fn.Switches = append(fe.fn.Switches, sw)
	fe.emit(hhbc.OpSwitch, int32(tblIdx), 0, 0)

	lc := fe.pushLoop(-1)
	starts := make([]int, len(st.Cases))
	for i, c := range st.Cases {
		starts[i] = fe.pc()
		if err := fe.stmts(c.Body); err != nil {
			return err
		}
	}
	defaultStart := fe.pc()
	if st.Default != nil {
		if err := fe.stmts(st.Default); err != nil {
			return err
		}
	}
	end := fe.pc()
	// Fill the table: unmatched slots go to default.
	tbl := &fe.fn.Switches[tblIdx]
	for i := range tbl.Targets {
		tbl.Targets[i] = defaultStart
	}
	for i, v := range vals {
		tbl.Targets[v-lo] = starts[i]
	}
	tbl.Default = defaultStart
	fe.popLoop(lc, end, end)
	return nil
}

func (fe *funcEmitter) unsetStmt(st *ast.Unset) error {
	switch t := st.E.(type) {
	case *ast.Var:
		fe.emit(hhbc.OpUnsetL, fe.local(t.Name), 0, 0)
		return nil
	case *ast.Index:
		v, ok := t.Arr.(*ast.Var)
		if !ok {
			return fmt.Errorf("unset of computed array expression not supported")
		}
		if err := fe.expr(t.Key); err != nil {
			return err
		}
		fe.emit(hhbc.OpArrUnsetL, fe.local(v.Name), 0, 0)
		return nil
	default:
		return fmt.Errorf("unsupported unset target %T", st.E)
	}
}
