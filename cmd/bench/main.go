// Command bench runs the paper's evaluation experiments and prints
// the corresponding figure's rows or series.
//
// Usage:
//
//	bench -exp fig8|fig9|fig10|fig11|jumpstart|scale|chain|faults|fleet|all [-quick] [-workers N] [-json path]
//
// With -json, the rows of the machine-readable experiments (fig8,
// chain, faults, and fleet) are also written to the given path as a
// JSON document, so CI can archive guest-cycles/req plus wall-clock
// host timings, smashed-vs-dispatched bind counts, fault-containment
// counters, and the fleet scenarios' warmup/capacity/shedding metrics
// across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/perflab"
	"repro/internal/server"
)

// jsonReport is the -json output document. Only the experiments that
// actually ran appear; the rest stay null.
type jsonReport struct {
	Fig8   []experiments.Fig8Row     `json:"fig8,omitempty"`
	Chain  []experiments.ChainRow    `json:"chain,omitempty"`
	Faults *experiments.FaultsResult `json:"faults,omitempty"`
	Fleet  *experiments.FleetResult  `json:"fleet,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, fig11, jumpstart, scale, chain, faults, fleet, all")
	quick := flag.Bool("quick", false, "reduced warmup/measurement volume")
	workers := flag.Int("workers", 4, "worker count for the scale experiment (compared against 1)")
	jsonPath := flag.String("json", "", "also write machine-readable results (fig8, chain, faults) to this path")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the faults experiment")
	faultRate := flag.Float64("fault-rate", 0.01, "per-draw injection probability for the faults experiment")
	flag.Parse()

	pc := experiments.Full
	if *quick {
		pc = experiments.Quick
	}

	var report jsonReport

	run := func(name string, f func(perflab.Config) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := f(pc); err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig8", func(pc perflab.Config) error {
		rows, err := experiments.Fig8(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig8(os.Stdout, rows)
		report.Fig8 = rows
		return nil
	})
	run("fig9", func(perflab.Config) error {
		res, err := experiments.Fig9()
		if err != nil {
			return err
		}
		server.Report(os.Stdout, res)
		return nil
	})
	run("jumpstart", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 20
			cfg.CyclesPerMinute = 1_200_000
		}
		c, err := experiments.Jumpstart(cfg)
		if err != nil {
			return err
		}
		experiments.ReportJumpstart(os.Stdout, c)
		return nil
	})
	run("scale", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 12
			cfg.CyclesPerMinute = 1_200_000
		}
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		rows, err := experiments.Scaling(cfg, counts)
		if err != nil {
			return err
		}
		experiments.ReportScaling(os.Stdout, rows)
		return nil
	})
	run("chain", func(pc perflab.Config) error {
		rows, err := experiments.Chain(pc)
		if err != nil {
			return err
		}
		experiments.ReportChain(os.Stdout, rows)
		report.Chain = rows
		return nil
	})
	run("faults", func(pc perflab.Config) error {
		res, err := experiments.Faults(pc, *faultSeed, *faultRate)
		if err != nil {
			return err
		}
		experiments.ReportFaults(os.Stdout, res)
		report.Faults = res
		if !res.OutputsMatch {
			return fmt.Errorf("faulty outputs diverged from JIT-disabled reference")
		}
		if res.SlowdownPct > 25 {
			return fmt.Errorf("faulty run %.1f%% slower than baseline (budget 25%%)", res.SlowdownPct)
		}
		return nil
	})
	run("fleet", func(perflab.Config) error {
		res, err := experiments.Fleet(*quick)
		if err != nil {
			return err
		}
		experiments.ReportFleet(os.Stdout, res)
		report.Fleet = res
		return res.Check()
	})
	run("fig10", func(pc perflab.Config) error {
		rows, err := experiments.Fig10(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig10(os.Stdout, rows)
		return nil
	})
	run("fig11", func(pc perflab.Config) error {
		rows, err := experiments.Fig11(pc, nil)
		if err != nil {
			return err
		}
		experiments.ReportFig11(os.Stdout, rows)
		return nil
	})

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: marshal json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}
