package types

import "sync"

// ClassHierarchy records the guest class hierarchy so that object
// types can answer subtype questions. The compiler registers classes
// when a unit is loaded; types only needs names and edges.
type ClassHierarchy struct {
	mu     sync.RWMutex
	parent map[string]string
	ifaces map[string][]string
}

var classTable = &ClassHierarchy{
	parent: make(map[string]string),
	ifaces: make(map[string][]string),
}

// RegisterClass records cls extending parent ("" for none) and
// implementing ifaces. Safe to call repeatedly.
func RegisterClass(cls, parent string, ifaces []string) {
	classTable.mu.Lock()
	defer classTable.mu.Unlock()
	classTable.parent[cls] = parent
	classTable.ifaces[cls] = append([]string(nil), ifaces...)
}

// ResetClasses clears the hierarchy (used between test units).
func ResetClasses() {
	classTable.mu.Lock()
	defer classTable.mu.Unlock()
	classTable.parent = make(map[string]string)
	classTable.ifaces = make(map[string][]string)
}

// IsSubclassOf reports whether sub is cls or a descendant, or
// implements cls as an interface.
func IsSubclassOf(sub, cls string) bool {
	return sub == cls || classTable.isSubclass(sub, cls)
}

func (h *ClassHierarchy) isSubclass(sub, cls string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.isSubclassLocked(sub, cls)
}

func (h *ClassHierarchy) isSubclassLocked(sub, cls string) bool {
	for c := sub; c != ""; c = h.parent[c] {
		if c == cls {
			return true
		}
		for _, iface := range h.ifaces[c] {
			if iface == cls || h.isSubclassLocked(iface, cls) {
				return true
			}
		}
	}
	return false
}

// commonAncestor returns the closest class that is an ancestor of
// both, or "".
func (h *ClassHierarchy) commonAncestor(a, b string) string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	seen := make(map[string]bool)
	for c := a; c != ""; c = h.parent[c] {
		seen[c] = true
	}
	for c := b; c != ""; c = h.parent[c] {
		if seen[c] {
			return c
		}
	}
	return ""
}
