package core_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestPropICAcrossOptimizePublish drives concurrent workers over the
// shape-polymorphism endpoints while the global retranslation swaps
// the index, then force-backdates every published inline-cache entry
// to a stale epoch. The protocol under test (DESIGN.md §14):
//
//  1. IC fills and hits race benignly across workers (copy-on-write
//     tables, last-writer-wins installs) with outputs bit-identical
//     to the interpreter reference;
//  2. a stale-epoch IC link is ignored wholesale — the probe treats
//     the site as cold, refills against the current epoch, and no
//     stale table is ever trusted;
//  3. after the refill traffic, the planted stale entries have been
//     rebuilt to the current epoch.
//
// Run under -race this exercises concurrent StoreLink/LoadLink on the
// IC slots against the lock-free probe path.
func TestPropICAcrossOptimizePublish(t *testing.T) {
	src, all := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var eps []workload.Endpoint
	for _, ep := range all {
		if strings.HasPrefix(ep.Name, "shape_") {
			eps = append(eps, ep)
		}
	}
	if len(eps) == 0 {
		t.Fatal("no shape_ endpoints in the suite")
	}

	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, ep := range eps {
		var sb strings.Builder
		refEng.VM.SetOut(&sb)
		val, err := refEng.Call(workload.EndpointFunc(ep.Name))
		if err != nil {
			t.Fatalf("reference %s: %v", ep.Name, err)
		}
		refEng.Heap().DecRef(val)
		ref[ep.Name] = sb.String()
	}

	cfg := jit.DefaultConfig()
	cfg.EnableShapes = true
	cfg.ProfileTrigger = 300
	cfg.BackgroundCompile = true
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
	}

	serve := func(rounds int) error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(v *vm.VM) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for _, ep := range eps {
						fn, ok := unit.FuncByName(workload.EndpointFunc(ep.Name))
						if !ok {
							errCh <- fmt.Errorf("endpoint %s: missing function", ep.Name)
							return
						}
						var sb strings.Builder
						v.SetOut(&sb)
						val, err := v.CallFunc(fn, nil, nil)
						if err != nil {
							errCh <- fmt.Errorf("endpoint %s: %v", ep.Name, err)
							return
						}
						v.Heap.DecRef(val)
						if sb.String() != ref[ep.Name] {
							errCh <- fmt.Errorf("endpoint %s: output diverged:\n got %q\nwant %q",
								ep.Name, sb.String(), ref[ep.Name])
							return
						}
					}
				}
			}(ws[i])
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		return nil
	}

	// Straddle the optimized publish with concurrent IC traffic.
	if err := serve(30); err != nil {
		t.Fatal(err)
	}
	j := eng.VM.JIT
	deadline := time.Now().Add(10 * time.Second)
	for !j.Optimized() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !j.Optimized() {
		t.Fatal("optimized index never published")
	}
	if err := serve(5); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.PropICHits == 0 {
		t.Fatal("inline caches never hit; the shape IC path never engaged")
	}

	// Back-date every filled IC to a stale epoch.
	epoch := j.Epoch()
	planted := 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		code := tr.Code
		code.ForEachLink(func(i int, l *mcode.Link) {
			if _, ok := l.Target.(*machine.PropIC); !ok {
				return
			}
			code.StoreLink(i, &mcode.Link{Epoch: epoch - 1, Target: l.Target})
			planted++
		})
	})
	if planted == 0 {
		t.Fatal("no IC tables were bound in the published code")
	}

	// The probe must ignore every planted table (counted as misses)
	// and refill against the current epoch, without output divergence.
	missBefore := eng.Stats().PropICMisses
	if err := serve(10); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().PropICMisses == missBefore {
		t.Error("backdated IC tables were never treated as cold")
	}
	current, rebuilt, stale := j.Epoch(), 0, 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		tr.Code.ForEachLink(func(i int, l *mcode.Link) {
			if _, ok := l.Target.(*machine.PropIC); !ok {
				return
			}
			if l.Epoch == current {
				rebuilt++
			} else {
				stale++
			}
		})
	})
	if rebuilt == 0 {
		t.Error("no IC site was rebuilt to the current epoch after the stale plant")
	}
	// Sites off the refill traffic's path may legitimately stay stale;
	// the protocol only promises they are never TRUSTED. But with 10
	// rounds over every endpoint, the hot sites must dominate.
	if stale > rebuilt {
		t.Errorf("more stale IC sites (%d) than rebuilt ones (%d) after refill traffic", stale, rebuilt)
	}
}
