// Shapes: run a class-polymorphic but shape-monomorphic property
// workload (two classes with identical layouts) and show the typed
// object shapes machinery at work — shape guards on the monomorphic
// sites, inline-cache hits on the polymorphic ones, and how few
// accesses fall back to the generic by-name helper. Re-run with
// -no-shapes to see every access go generic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jit"
)

const src = `
class PointA {
  public $x = 0;
  public $y = 0;
  function __construct($x, $y) { $this->x = $x; $this->y = $y; }
}
class PointB {
  public $x = 0;
  public $y = 0;
  function __construct($x, $y) { $this->x = $x; $this->y = $y; }
}

function dot($p, $q) {
  return $p->x * $q->x + $p->y * $q->y;
}

$sum = 0;
for ($i = 0; $i < 40; $i++) {
  $p = $i % 2 == 0 ? new PointA($i, $i + 1) : new PointB($i, $i + 1);
  $q = $i % 2 == 0 ? new PointB(2, 3) : new PointA(2, 3);
  $sum += dot($p, $q);
}
echo $sum, "\n";
`

func main() {
	noShapes := flag.Bool("no-shapes", false, "disable shape-guarded property access in compiled code")
	flag.Parse()

	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 20 // small program: optimize early
	cfg.EnableShapes = !*noShapes
	eng, err := core.NewEngine(unit, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var last uint64
	for i := 0; i < 60; i++ {
		out := io.Discard
		if i == 0 {
			out = os.Stdout // show the program's answer once
		}
		c, err := eng.RunRequest(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		last = c
	}
	st := eng.Stats()
	fmt.Printf("\nshapes enabled: %v\n", cfg.EnableShapes)
	fmt.Printf("optimized regions: %d, steady cost %d cycles\n",
		st.OptimizedTranslations, last)
	fmt.Printf("shape guards: %d (fails %d)\n", st.ShapeGuards, st.ShapeGuardFails)
	fmt.Printf("prop IC: %d hits, %d misses, %d megamorphic probes\n",
		st.PropICHits, st.PropICMisses, st.PropICMega)
	fmt.Printf("generic property helper calls: %d\n", st.GenericPropCalls)
}
