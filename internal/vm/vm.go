// Package vm couples the interpreter and the JIT: it dispatches guest
// calls to the best available translation, falls back to
// interpretation, and handles OSR in both directions — side exits out
// of JITed code (including materializing inlined callee frames) and
// re-entry into JITed code at loop back-edges.
package vm

import (
	"io"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/runtime"
)

// VM is one virtual machine instance executing a loaded unit. Worker
// VMs created with NewWorker share a single JIT (translation index,
// profile counters, code cache) but own their interpreter env, heap,
// meter, and machine — the mutable per-request state.
type VM struct {
	Env     *interp.Env
	JIT     *jit.JIT
	Meter   *machine.Meter
	Heap    *runtime.Heap
	Machine *machine.Machine

	// DenyTrans, when set, puts the VM in the sentry's replay mode
	// (DESIGN.md §15): dispatch consults only published translations
	// (FindPublished — no minting, no quarantine churn) and any
	// translation the predicate rejects runs in the interpreter
	// instead. The bisector replays a diverged request with successive
	// disable masks to pin the culprit translation. Replay VMs must
	// also be decoupled from shared link state (private Machine.Epoch,
	// nil Fallback, nil Machine.FI) — see sentry.Monitor.
	DenyTrans func(*jit.Translation) bool

	depth int
}

// New loads a unit with the given JIT configuration.
func New(unit *hhbc.Unit, cfg jit.Config, out io.Writer) (*VM, error) {
	heap := runtime.NewHeap()
	env, err := interp.NewEnv(unit, heap, out)
	if err != nil {
		return nil, err
	}
	meter := &machine.Meter{}
	env.Meter = meter
	v := &VM{Env: env, Heap: heap, Meter: meter}
	v.JIT = jit.New(cfg, env, meter)
	v.wire()
	return v, nil
}

// NewWorker creates an additional VM over an existing JIT: a request
// worker with its own env/heap/meter/machine executing translations
// from the shared index. The worker env shares the primary env's
// linked class table (compiled code embeds *runtime.Class pointers,
// so class identity must be global).
func NewWorker(j *jit.JIT, out io.Writer) *VM {
	heap := runtime.NewHeap()
	env := interp.NewEnvFrom(j.Env, heap, out)
	meter := &machine.Meter{}
	env.Meter = meter
	v := &VM{Env: env, Heap: heap, Meter: meter, JIT: j}
	v.wire()
	return v
}

// wire builds the per-VM machine and hooks the dispatcher into the
// interpreter.
func (v *VM) wire() {
	v.Machine = machine.New(v.Env, v.Meter, v.JIT.Counters, v.JIT.Cache)
	v.Machine.CallGuest = v.callFromJIT
	v.Machine.Epoch = v.JIT.EpochVar()
	v.Machine.Chain = &v.JIT.Chain
	v.Machine.Shapes = &v.JIT.Shapes
	v.Machine.FI = v.JIT.Cfg.Faults
	v.Machine.Fallback = func(fnID, pc int, fr *interp.Frame) machine.ChainTarget {
		if tr := v.JIT.ChainFallback(fnID, pc, fr, v.Meter); tr != nil {
			return tr
		}
		return nil
	}
	v.Env.Call = v.CallFunc
	v.Env.OSRCheck = func(fr *interp.Frame) bool {
		if v.DenyTrans != nil {
			// Replay mode: OSR only into an already-published, non-denied
			// translation — never bounce out to mint one, and never
			// livelock on a match the mask forbids running.
			tr := v.JIT.FindPublished(fr.Fn, fr, v.Meter)
			return tr != nil && !v.DenyTrans(tr)
		}
		return v.JIT.HasMatch(fr.Fn, fr) || v.JIT.WantsTranslation(fr.Fn, fr)
	}
}

// SetOut redirects guest output (per request).
func (v *VM) SetOut(w io.Writer) { v.Env.Out = w }

// Main returns the pseudo-main function.
func (v *VM) Main() *hhbc.Func { return v.Env.Unit.Funcs[v.Env.Unit.Main] }

// RunMain executes the unit's pseudo-main (one "request").
func (v *VM) RunMain() (runtime.Value, error) {
	return v.CallFunc(v.Main(), nil, nil)
}

// CallFunc is the dispatcher: every guest call (from the interpreter,
// from JITed code, and from the host) lands here.
func (v *VM) CallFunc(f *hhbc.Func, this *runtime.Object, args []runtime.Value) (runtime.Value, error) {
	val, _, err := v.call(f, this, args, nil)
	return val, err
}

// callFromJIT implements machine.CallGuestFn: guest calls issued by
// JITed code carry the call site's smashed callee link as a hint and
// learn which translation the callee entered first (the machine
// smashes the site with it).
func (v *VM) callFromJIT(f *hhbc.Func, this *runtime.Object, args []runtime.Value,
	hint machine.ChainTarget) (runtime.Value, machine.ChainTarget, error) {
	val, first, err := v.call(f, this, args, hint)
	if first == nil {
		return val, nil, err
	}
	return val, first, err
}

func (v *VM) call(f *hhbc.Func, this *runtime.Object, args []runtime.Value,
	hint machine.ChainTarget) (runtime.Value, *jit.Translation, error) {
	if v.depth >= v.Env.MaxDepth {
		for _, a := range args {
			v.Heap.DecRef(a)
		}
		return runtime.Null(), nil, runtime.NewError("maximum call depth exceeded")
	}
	v.depth++
	defer func() { v.depth-- }()

	// Replay VMs never feed the retranslation trigger: a sentry
	// replay must observe the published code, not advance the entry
	// count or fire OptimizeAll from the comparator goroutine.
	if v.DenyTrans == nil {
		v.JIT.OnEntry()
	}
	fr := interp.NewFrame(v.Env, f, this, args)
	// A bound call site skips the dispatcher Lookup entirely when the
	// callee prologue translation still matches the fresh frame. On a
	// guard miss the in-cache retranslation cluster is cascaded before
	// falling back to the dispatcher.
	var tr0 *jit.Translation
	if t, ok := hint.(*jit.Translation); ok {
		if t.FuncID == f.ID && t.PC == fr.PC && t.Matches(fr) {
			tr0 = t
		} else {
			v.Machine.Chain.ChainMismatches.Add(1)
			tr0 = v.JIT.ChainFallback(f.ID, fr.PC, fr, v.Meter)
		}
		if tr0 != nil {
			v.Machine.Chain.ChainedCalls.Add(1)
		}
	}
	if v.DenyTrans != nil && tr0 != nil && v.DenyTrans(tr0) {
		tr0 = nil
	}
	return v.runFrame(fr, nil, tr0)
}

// runFrame drives one activation to completion, alternating between
// JITed code and the interpreter. tr0, when non-nil, is a pre-matched
// translation entered without a Lookup (a smashed call link). The
// second return value is the translation the frame entered first, nil
// if the first stretch ran in the interpreter — callers use it to bind
// call sites.
func (v *VM) runFrame(fr *interp.Frame, lastProf, tr0 *jit.Translation) (runtime.Value, *jit.Translation, error) {
	// skipJIT forces one interpreter stretch after a translation
	// exits without making progress (e.g. its first instruction side
	// exits), preventing a dispatch livelock.
	skipJIT := false
	var first *jit.Translation
	firstIter := true
	// Pending smash site: the BindJmp the previous translation exited
	// through. Whatever translation the dispatcher picks next for this
	// pc gets smashed into it.
	var bindCode *mcode.Code
	var bindInstr int
	for {
		var tr *jit.Translation
		if tr0 != nil {
			tr, tr0 = tr0, nil
		} else if !skipJIT {
			if v.DenyTrans != nil {
				// Replay mode: published translations only, minus the
				// disable mask. A denied match interprets — the
				// interpreter is the semantic anchor the mask is being
				// bisected against.
				if tr = v.JIT.FindPublished(fr.Fn, fr, v.Meter); tr != nil && v.DenyTrans(tr) {
					tr = nil
				}
			} else {
				tr = v.JIT.Lookup(fr.Fn, fr, v.Meter)
			}
		}
		skipJIT = false
		if tr == nil {
			bindCode = nil
			// Interpret until return, uncaught error, or an OSR point
			// with a usable translation.
			firstIter = false
			before := v.Meter.Cycles
			val, err := v.Env.Run(fr)
			v.JIT.NoteInterpRun(v.Meter.Cycles - before)
			if err == interp.ErrOSR {
				lastProf = nil
				continue
			}
			return val, first, err
		}
		if firstIter {
			first = tr
			firstIter = false
		}
		if bindCode != nil {
			// Smash the exit site of the previous translation with the
			// dispatcher's pick: the next transfer chains directly.
			// Replay VMs never smash — a replay must observe shared code
			// state, not perturb it.
			if v.DenyTrans == nil {
				v.JIT.Smash(bindCode, bindInstr, tr)
			}
			bindCode = nil
		}
		if lastProf != nil && v.DenyTrans == nil {
			v.JIT.RecordArc(lastProf, tr)
		}
		if tr.Kind == jit.ModeProfiling {
			lastProf = tr
		} else {
			lastProf = nil
		}

		before := v.Meter.Cycles
		if tr.Kind == jit.ModeProfiling {
			// Profiling translations are unchained: every entry goes
			// through the translation-service path.
			v.Meter.Charge(profilingReentryCost)
		}
		out := v.Machine.Exec(tr.Code, fr)
		v.JIT.NoteMachineExec(tr.Kind, v.Meter.Cycles-before, out.GuardFails)
		switch out.Kind {
		case machine.SideExit:
			v.JIT.NoteSideExit()
			bindCode, bindInstr = out.BindCode, out.BindInstr
		case machine.BindRequest:
			v.JIT.NoteBindRequest()
			v.Meter.Charge(bindDispatchCost)
			bindCode, bindInstr = out.BindCode, out.BindInstr
		}
		switch out.Kind {
		case machine.Returned:
			return out.Value, first, nil
		case machine.SideExit, machine.BindRequest:
			// With chaining one Exec traverses many translations;
			// EntryPC is the entry pc of the last one entered, so the
			// no-progress check still catches a translation that exits
			// where it started.
			if out.Inline == nil && out.BCOff == out.EntryPC {
				skipJIT = true
			}
			if out.Inline != nil {
				val, err := v.resumeInlineChain(out.Inline, 0)
				root := out.Inline[len(out.Inline)-1]
				if err != nil {
					if herr := v.unwind(fr, root.RetBCOff-1, err); herr != nil {
						return runtime.Null(), first, herr
					}
					continue
				}
				fr.Stack = append(fr.Stack, val)
				fr.PC = root.RetBCOff
				continue
			}
			fr.PC = out.BCOff
			continue
		case machine.Threw:
			if out.Inline != nil {
				// Inlined callees have no handlers (inlining policy);
				// release the materialized frames and unwind in the
				// root caller at the outermost call site.
				for _, ir := range out.Inline {
					releaseFrame(v.Env, ir.Frame)
				}
				root := out.Inline[len(out.Inline)-1]
				if herr := v.unwind(fr, root.RetBCOff-1, out.Err); herr != nil {
					return runtime.Null(), first, herr
				}
				continue
			}
			if herr := v.unwind(fr, out.BCOff, out.Err); herr != nil {
				return runtime.Null(), first, herr
			}
			continue
		case machine.Faulted:
			// Contained translation fault (DESIGN.md §11): the machine
			// caught a panic or internal error and rewound the frame to
			// the translation's entry. Record it (repeat offenders are
			// demoted and unpublished), then re-execute the region in the
			// interpreter so the request completes with identical
			// semantics. One forced interpreter stretch avoids bouncing
			// straight back into the same translation. Replays observe,
			// never adjudicate: a fault during a sentry replay is not
			// charged against the address.
			if v.DenyTrans == nil {
				v.JIT.RecordFault(fr.Fn.ID, out.BCOff)
			}
			fr.PC = out.BCOff
			skipJIT = true
			lastProf = nil
			bindCode = nil
			continue
		}
	}
}

// resumeInlineChain finishes a chain of partially-inlined callees in
// the interpreter after a side exit materialized their frames
// (Section 5.3.1). Frames run innermost-out; each return value is
// pushed onto the enclosing frame, which then resumes.
func (v *VM) resumeInlineChain(chain []machine.InlineResume, from int) (runtime.Value, error) {
	val, err := v.runInterp(chain[from].Frame)
	for i := from + 1; i < len(chain); i++ {
		if err != nil {
			// No handlers inside inlined code (inlining policy):
			// release the remaining frames and propagate.
			releaseFrame(v.Env, chain[i].Frame)
			continue
		}
		cf := chain[i].Frame
		cf.Stack = append(cf.Stack, val)
		cf.PC = chain[i-1].RetBCOff
		val, err = v.runInterp(cf)
	}
	return val, err
}

// runInterp drives one frame in the interpreter, swallowing OSR
// bounces (inline-resume frames never re-enter JITed code).
func (v *VM) runInterp(fr *interp.Frame) (runtime.Value, error) {
	val, err := v.Env.Run(fr)
	for err == interp.ErrOSR {
		val, err = v.Env.Run(fr)
	}
	return val, err
}

// unwind performs exception handling for a frame whose execution
// threw at bytecode pc. Returns nil when a handler was entered (fr is
// positioned to continue), or the error to propagate.
func (v *VM) unwind(fr *interp.Frame, pc int, err error) error {
	handler := fr.Fn.HandlerFor(pc)
	if handler < 0 {
		releaseFrame(v.Env, fr)
		return err
	}
	obj := v.toThrown(err)
	for _, val := range fr.Stack {
		v.Heap.DecRef(val)
	}
	fr.Stack = fr.Stack[:0]
	fr.SetPendingExc(obj)
	fr.PC = handler
	return nil
}

func (v *VM) toThrown(err error) *runtime.Object {
	if ge, ok := err.(*runtime.Error); ok && ge.Obj != nil {
		return ge.Obj
	}
	return v.Env.NewException("Exception", err.Error())
}

func releaseFrame(env *interp.Env, fr *interp.Frame) {
	for _, val := range fr.Stack {
		env.Heap.DecRef(val)
	}
	fr.Stack = fr.Stack[:0]
	for i, val := range fr.Locals {
		env.Heap.DecRef(val)
		fr.Locals[i] = runtime.Uninit()
	}
	for _, it := range fr.Iters {
		if it != nil {
			env.Heap.DecRef(runtime.ArrV(it.Arr()))
		}
	}
	fr.Iters = nil
}

// profilingReentryCost models the unchained dispatch of profiling
// translations (they always bounce through the service request path).
const profilingReentryCost = 30

// bindDispatchCost models the translation-to-translation transfer
// through a (smashed) service request when a translation ends in a
// bind rather than an intra-region jump.
const bindDispatchCost = 7
