package hhbc

// Bytecode hashing gives functions a stable identity across builds:
// (FullName, BytecodeHash) keys persisted profile data, so a snapshot
// taken against changed source is rejected per-function instead of
// trusted blindly. Instruction immediates that index unit-level pools
// (strings, ints, doubles, switch tables) are resolved to their
// values before hashing, so the hash survives pool reordering caused
// by edits elsewhere in the unit. A hash mismatch is always safe: the
// function just falls back to live profiling.

import "math"

// FNV-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func newFNV() fnv64 { return fnvOffset }

func (h *fnv64) byte(b byte) {
	*h = (*h ^ fnv64(b)) * fnvPrime
}

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv64) i64(v int64) { h.u64(uint64(v)) }

func (h *fnv64) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *fnv64) b(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// poolStr hashes a string-pool immediate by value when the index is
// valid, by raw index otherwise (a malformed unit still hashes
// deterministically).
func (h *fnv64) poolStr(u *Unit, idx int32) {
	if int(idx) >= 0 && int(idx) < len(u.Strings) {
		h.str(u.Strings[idx])
	} else {
		h.i64(int64(idx))
	}
}

// BytecodeHash returns the stable identity hash of f's code within u.
// It covers the signature (params with hints and defaults, local
// count), the instruction stream with pool immediates resolved, the
// exception-handler table, and switch tables. It does not cover the
// function name — identity is the (name, hash) pair.
func (f *Func) BytecodeHash(u *Unit) uint64 {
	h := newFNV()
	h.b(f.IsMethod)
	h.u64(uint64(len(f.Params)))
	for _, p := range f.Params {
		h.str(p.TypeHint)
		h.b(p.Nullable)
		h.b(p.HasDefault)
		if p.HasDefault {
			h.u64(uint64(p.DefaultKind))
			h.i64(p.DefaultInt)
			h.u64(math.Float64bits(p.DefaultDbl))
			h.str(p.DefaultStr)
		}
	}
	h.u64(uint64(f.NumLocals))

	h.u64(uint64(len(f.Instrs)))
	for _, in := range f.Instrs {
		h.byte(byte(in.Op))
		switch in.Op {
		case OpInt:
			if int(in.A) >= 0 && int(in.A) < len(u.Ints) {
				h.i64(u.Ints[in.A])
			} else {
				h.i64(int64(in.A))
			}
		case OpDouble:
			if int(in.A) >= 0 && int(in.A) < len(u.Doubles) {
				h.u64(math.Float64bits(u.Doubles[in.A]))
			} else {
				h.i64(int64(in.A))
			}
		case OpString, OpFatal, OpNewObjD, OpInstanceOfD, OpCGetPropD, OpSetPropD:
			h.poolStr(u, in.A)
			h.i64(int64(in.B))
		case OpFCallD, OpFCallBuiltin, OpFCallObjMethodD:
			h.i64(int64(in.A)) // arg count
			h.poolStr(u, in.B)
		case OpSwitch:
			if int(in.A) >= 0 && int(in.A) < len(f.Switches) {
				sw := f.Switches[in.A]
				h.i64(sw.Base)
				h.u64(uint64(len(sw.Targets)))
				for _, t := range sw.Targets {
					h.i64(int64(t))
				}
				h.i64(int64(sw.Default))
			} else {
				h.i64(int64(in.A))
			}
		default:
			h.i64(int64(in.A))
			h.i64(int64(in.B))
			h.i64(int64(in.C))
		}
	}

	h.u64(uint64(len(f.EHTable)))
	for _, eh := range f.EHTable {
		h.i64(int64(eh.Start))
		h.i64(int64(eh.End))
		h.i64(int64(eh.Handler))
	}
	return uint64(h)
}
