package hphpc_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/hphpc"
	"repro/internal/parser"
)

func fold(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hphpc.Optimize(p)
	return p
}

func TestConstantFolding(t *testing.T) {
	p := fold(t, `$x = 2 * 3 + 4;`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	lit, ok := v.(*ast.IntLit)
	if !ok || lit.Value != 10 {
		t.Fatalf("2*3+4 folded to %#v", v)
	}
}

func TestStringFolding(t *testing.T) {
	p := fold(t, `$x = "a" . "b" . "c";`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	lit, ok := v.(*ast.StringLit)
	if !ok || lit.Value != "abc" {
		t.Fatalf("concat folded to %#v", v)
	}
}

func TestDeadBranchElimination(t *testing.T) {
	p := fold(t, `if (1 > 2) { echo "dead"; } else { echo "live"; }`)
	echo, ok := p.Main[0].(*ast.Echo)
	if !ok {
		t.Fatalf("dead branch not eliminated: %#v", p.Main[0])
	}
	if echo.Args[0].(*ast.StringLit).Value != "live" {
		t.Error("wrong branch survived")
	}
}

func TestWhileFalseRemoved(t *testing.T) {
	p := fold(t, `while (false) { echo "x"; } echo "y";`)
	if len(p.Main) != 1 {
		t.Fatalf("while(false) survived: %d stmts", len(p.Main))
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	p := fold(t, `$y = $x + 0;`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	if _, ok := v.(*ast.Var); !ok {
		t.Errorf("$x + 0 not simplified: %#v", v)
	}
	p = fold(t, `$y = 1 * $x;`)
	v = p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	if _, ok := v.(*ast.Var); !ok {
		t.Errorf("1 * $x not simplified: %#v", v)
	}
}

func TestDivByZeroPreserved(t *testing.T) {
	p := fold(t, `$x = 1 / 0;`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	if _, ok := v.(*ast.Binop); !ok {
		t.Errorf("1/0 must keep the runtime error: %#v", v)
	}
}

func TestTernaryFolding(t *testing.T) {
	p := fold(t, `$x = true ? 1 : 2;`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	lit, ok := v.(*ast.IntLit)
	if !ok || lit.Value != 1 {
		t.Errorf("ternary not folded: %#v", v)
	}
}

func TestCastFolding(t *testing.T) {
	p := fold(t, `$x = (int)3.7;`)
	v := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign).Value
	lit, ok := v.(*ast.IntLit)
	if !ok || lit.Value != 3 {
		t.Errorf("(int)3.7 folded to %#v", v)
	}
}
