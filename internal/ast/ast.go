// Package ast defines the abstract syntax tree for the PHP-subset
// source language. The parser builds it; hphpc optimizes it; the
// emitter lowers it to HHBC.
package ast

// Node is the common interface of all AST nodes.
type Node interface {
	Pos() (line, col int)
}

type position struct{ Line, Col int }

func (p position) Pos() (int, int) { return p.Line, p.Col }

// SetPos records the source position; it is promoted to every node.
func (p *position) SetPos(line, col int) { p.Line, p.Col = line, col }

// ---------- Expressions ----------

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	position
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	position
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	position
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	position
	Value bool
}

// NullLit is null.
type NullLit struct{ position }

// Var is a variable reference $name.
type Var struct {
	position
	Name string
}

// ThisExpr is $this.
type ThisExpr struct{ position }

// ArrayLit is [a, b] or ['k' => v, ...].
type ArrayLit struct {
	position
	Keys  []Expr // nil entry = append-style element
	Vals  []Expr
	IsMap bool // any explicit key present
}

// Index is $e[k].
type Index struct {
	position
	Arr Expr
	Key Expr
}

// Binop is a binary operator expression.
type Binop struct {
	position
	Op   string // "+", "-", ..., "==", "===", "&&", "."
	L, R Expr
}

// Unop is a unary operator expression.
type Unop struct {
	position
	Op string // "-", "!", "~"
	E  Expr
}

// IncDec is ++$x / $x++ / --$x / $x--.
type IncDec struct {
	position
	Target Expr // Var, Index, or Prop
	Inc    bool
	Pre    bool
}

// Assign is target = value (Op == "") or compound (Op == "+", ".", ...).
type Assign struct {
	position
	Target Expr // Var, Index, Prop
	Op     string
	Value  Expr
}

// Ternary is c ? t : f (t may be nil for the ?: form).
type Ternary struct {
	position
	Cond, Then, Else Expr
}

// Call is a free function call name(args).
type Call struct {
	position
	Name string
	Args []Expr
}

// MethodCall is $obj->name(args).
type MethodCall struct {
	position
	Recv Expr
	Name string
	Args []Expr
}

// StaticCall is Cls::name(args) — resolved to a direct function call.
type StaticCall struct {
	position
	Class string
	Name  string
	Args  []Expr
}

// New is new Cls(args).
type New struct {
	position
	Class string
	Args  []Expr
}

// Prop is $obj->name.
type Prop struct {
	position
	Recv Expr
	Name string
}

// InstanceOf is $e instanceof Cls.
type InstanceOf struct {
	position
	E     Expr
	Class string
}

// Isset is isset($x) / isset($a[k]).
type Isset struct {
	position
	E Expr
}

// Cast is (int)$e etc.
type Cast struct {
	position
	To string // "int", "float", "string", "bool"
	E  Expr
}

// Interp is a double-quoted string with embedded variables, lowered
// to concatenation by the emitter.
type Interp struct {
	position
	Parts []Expr // StringLit or Var parts
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*Var) exprNode()        {}
func (*ThisExpr) exprNode()   {}
func (*ArrayLit) exprNode()   {}
func (*Index) exprNode()      {}
func (*Binop) exprNode()      {}
func (*Unop) exprNode()       {}
func (*IncDec) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Ternary) exprNode()    {}
func (*Call) exprNode()       {}
func (*MethodCall) exprNode() {}
func (*StaticCall) exprNode() {}
func (*New) exprNode()        {}
func (*Prop) exprNode()       {}
func (*InstanceOf) exprNode() {}
func (*Isset) exprNode()      {}
func (*Cast) exprNode()       {}
func (*Interp) exprNode()     {}

// ---------- Statements ----------

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	position
	E Expr
}

// Echo prints each argument.
type Echo struct {
	position
	Args []Expr
}

// Return returns an optional value.
type Return struct {
	position
	E Expr // may be nil
}

// If with optional else (ElseIf chains are nested Ifs).
type If struct {
	position
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
}

// While loop.
type While struct {
	position
	Cond Expr
	Body []Stmt
}

// For loop: for (init; cond; step) body.
type For struct {
	position
	Init []Expr
	Cond Expr // may be nil (true)
	Step []Expr
	Body []Stmt
}

// Foreach over an array: foreach ($arr as [$k =>] $v) body.
type Foreach struct {
	position
	Arr    Expr
	KeyVar string // "" if absent
	ValVar string
	Body   []Stmt
}

// Break / Continue with level 1.
type Break struct{ position }
type Continue struct{ position }

// Throw statement.
type Throw struct {
	position
	E Expr
}

// Try with catch clauses.
type Try struct {
	position
	Body    []Stmt
	Catches []Catch
}

// Catch clause: catch (Cls $v) { ... }.
type Catch struct {
	Class string
	Var   string
	Body  []Stmt
}

// Switch over an expression with constant-int cases.
type Switch struct {
	position
	Subject Expr
	Cases   []SwitchCase
	Default []Stmt // nil if absent
}

// SwitchCase is one case arm.
type SwitchCase struct {
	Value Expr
	Body  []Stmt
}

// Unset statement: unset($x) or unset($a[k]).
type Unset struct {
	position
	E Expr
}

func (*ExprStmt) stmtNode() {}
func (*Echo) stmtNode()     {}
func (*Return) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Foreach) stmtNode()  {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Throw) stmtNode()    {}
func (*Try) stmtNode()      {}
func (*Switch) stmtNode()   {}
func (*Unset) stmtNode()    {}

// ---------- Declarations ----------

// Param is a function parameter with optional shallow type hint and
// default.
type Param struct {
	Name     string
	TypeHint string // "", "int", "float", "string", "bool", "array", or class
	Nullable bool
	Default  Expr // literal only; nil if required
}

// FuncDecl is a function or method declaration.
type FuncDecl struct {
	position
	Name   string
	Params []Param
	Body   []Stmt
	// Method metadata (set when inside a ClassDecl).
	Class  string
	Static bool
}

// PropDecl is a class property with optional default literal.
type PropDecl struct {
	Name    string
	Default Expr
}

// ClassDecl declares a class or interface.
type ClassDecl struct {
	position
	Name        string
	Parent      string
	Ifaces      []string
	IsInterface bool
	Props       []PropDecl
	Methods     []*FuncDecl
}

// Program is a parsed source file: declarations plus top-level
// statements (the pseudo-main).
type Program struct {
	Funcs   []*FuncDecl
	Classes []*ClassDecl
	Main    []Stmt
}
