package server_test

import (
	"testing"

	"repro/internal/server"
)

// TestMinutesTo90Sentinel exercises both MinutesTo90 paths: a run
// long enough to warm up reports a real (positive) minute and
// Reached90() == true; a run cut off before warmup reports the
// explicit MinutesTo90Never sentinel, never a fake minute.
func TestMinutesTo90Sentinel(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 20
	cfg.CyclesPerMinute = 1_200_000
	reached, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reached.Reached90() {
		t.Fatal("20-minute run never reached 90% steady RPS")
	}
	if reached.MinutesTo90 <= 0 {
		t.Fatalf("MinutesTo90 = %v, want a positive minute", reached.MinutesTo90)
	}

	cfg.Minutes = 2
	cut, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Reached90() {
		t.Fatalf("2-minute run claims 90%% steady RPS at minute %v", cut.MinutesTo90)
	}
	if cut.MinutesTo90 != server.MinutesTo90Never {
		t.Fatalf("MinutesTo90 = %v, want sentinel %v", cut.MinutesTo90, server.MinutesTo90Never)
	}
}
