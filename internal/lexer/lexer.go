// Package lexer tokenizes the PHP-subset source language.
package lexer

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

const (
	TEOF TokKind = iota
	TInt
	TFloat
	TString // single- or double-quoted literal, already unescaped
	TVar    // $name
	TIdent  // bare identifier or keyword
	TOp     // operator / punctuation
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier/operator text or literal spelling
	Int  int64
	Dbl  float64
	Str  string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "<eof>"
	case TVar:
		return "$" + t.Text
	case TString:
		return fmt.Sprintf("%q", t.Str)
	default:
		return t.Text
	}
}

// Keywords of the subset.
var keywords = map[string]bool{
	"function": true, "return": true, "if": true, "else": true, "elseif": true,
	"while": true, "for": true, "foreach": true, "as": true, "break": true,
	"continue": true, "class": true, "extends": true, "implements": true,
	"interface": true, "new": true, "public": true, "private": true,
	"protected": true, "static": true, "echo": true, "true": true,
	"false": true, "null": true, "throw": true, "try": true, "catch": true,
	"instanceof": true, "switch": true, "case": true, "default": true,
	"unset": true, "isset": true, "and": true, "or": true, "xor": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[strings.ToLower(s)] }

// Lexer scans source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src. A leading "<?php" marker is skipped.
func New(src string) *Lexer {
	l := &Lexer{src: src, line: 1, col: 1}
	l.skipSpace()
	if strings.HasPrefix(l.src[l.pos:], "<?php") {
		l.advance(5)
	}
	if strings.HasPrefix(l.src[l.pos:], "<?hh") {
		l.advance(4)
	}
	return l
}

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg) }

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *Lexer) peek2() byte {
	if l.pos+1 < len(l.src) {
		return l.src[l.pos+1]
	}
	return 0
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peek2() == '*':
			l.advance(2)
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek2() == '/') {
				l.advance(1)
			}
			l.advance(2)
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdent(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case c == '$':
		l.advance(1)
		if !isIdentStart(l.peek()) {
			return tok, l.errf("expected variable name after $")
		}
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.advance(1)
		}
		tok.Kind = TVar
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.advance(1)
		}
		tok.Kind = TIdent
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case isDigit(c) || c == '.' && isDigit(l.peek2()):
		return l.number()
	case c == '"' || c == '\'':
		return l.stringLit(c)
	default:
		return l.operator()
	}
}

func (l *Lexer) number() (Token, error) {
	tok := Token{Line: l.line, Col: l.col}
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.advance(1)
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance(1)
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance(1)
		if l.peek() == '+' || l.peek() == '-' {
			l.advance(1)
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.advance(1)
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		var d float64
		if _, err := fmt.Sscanf(text, "%g", &d); err != nil {
			return tok, l.errf("bad float literal %q", text)
		}
		tok.Kind = TFloat
		tok.Dbl = d
	} else {
		var n int64
		if _, err := fmt.Sscanf(text, "%d", &n); err != nil {
			return tok, l.errf("bad int literal %q", text)
		}
		tok.Kind = TInt
		tok.Int = n
	}
	tok.Text = text
	return tok, nil
}

func (l *Lexer) stringLit(quote byte) (Token, error) {
	tok := Token{Line: l.line, Col: l.col, Kind: TString}
	l.advance(1)
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return tok, l.errf("unterminated string")
		}
		c := l.src[l.pos]
		if c == quote {
			l.advance(1)
			break
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			n := l.src[l.pos+1]
			if quote == '"' {
				switch n {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '\\', '"', '$':
					sb.WriteByte(n)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(n)
				}
			} else {
				switch n {
				case '\\', '\'':
					sb.WriteByte(n)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(n)
				}
			}
			l.advance(2)
			continue
		}
		sb.WriteByte(c)
		l.advance(1)
	}
	tok.Str = sb.String()
	tok.Text = string(quote) // quote kind, for interpolation decisions
	return tok, nil
}

// multi-char operators, longest first.
var operators = []string{
	"===", "!==", "<=>", "**=", "...", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "++", "--",
	"+=", "-=", "*=", "/=", ".=", "%=", "<<", ">>", "**", "??",
	"+", "-", "*", "/", "%", ".", "=", "<", ">", "!", "(", ")", "{", "}",
	"[", "]", ";", ",", "?", ":", "&", "|", "^", "~", "@",
}

func (l *Lexer) operator() (Token, error) {
	tok := Token{Line: l.line, Col: l.col, Kind: TOp}
	rest := l.src[l.pos:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			tok.Text = op
			l.advance(len(op))
			return tok, nil
		}
	}
	return tok, l.errf("unexpected character %q", l.peek())
}

// Tokenize scans the whole input.
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TEOF {
			return toks, nil
		}
	}
}
