// Webserver: the Figure 9 experiment as a demo — a simulated server
// restart, showing JITed code growth and RPS recovery through the
// profiling → global trigger → optimized-publish lifecycle.
package main

import (
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	cfg := server.DefaultConfig()
	cfg.Minutes = 24
	cfg.CyclesPerMinute = 1_500_000
	fmt.Println("simulating a server restart (events: A=profiling done, C=optimized code published, D=code cache full)")
	res, err := server.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	server.Report(os.Stdout, res)

	// A tiny ASCII plot of the RPS curve.
	fmt.Println("\nRPS relative to steady state:")
	for _, s := range res.Samples {
		n := int(s.RPSPct / 4)
		if n > 50 {
			n = 50
		}
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("%3.0fmin |%-50s| %5.1f%% %s\n", s.Minute, bar, s.RPSPct, s.Event)
	}
}
