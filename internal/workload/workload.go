// Package workload provides the synthetic endpoint suite substituting
// for the Facebook website in the paper's evaluation (see DESIGN.md).
// Each endpoint is a PHP-subset program whose pseudo-main handles one
// "HTTP request"; the suite mixes OO dispatch, packed/mixed arrays,
// strings, polymorphic numeric loops, and error paths, with weights
// standing in for production traffic shares.
package workload

// Endpoint is one synthetic production endpoint.
type Endpoint struct {
	Name string
	// Weight is the endpoint's share of production traffic (the
	// Perflab weighted average uses it).
	Src    string
	Weight float64
}

// Suite returns the endpoint corpus.
func Suite() []Endpoint {
	return []Endpoint{
		{Name: "feed_ranking", Weight: 0.20, Src: feedRanking},
		{Name: "profile_render", Weight: 0.16, Src: profileRender},
		{Name: "search_filter", Weight: 0.12, Src: searchFilter},
		{Name: "notifications", Weight: 0.12, Src: notifications},
		{Name: "messages_format", Weight: 0.10, Src: messagesFormat},
		{Name: "ads_scoring", Weight: 0.09, Src: adsScoring},
		{Name: "privacy_checks", Weight: 0.07, Src: privacyChecks},
		{Name: "api_serialize", Weight: 0.05, Src: apiSerialize},
		{Name: "batch_stats", Weight: 0.03, Src: batchStats},
		{Name: "shape_mono", Weight: 0.02, Src: shapeMono},
		{Name: "shape_poly", Weight: 0.02, Src: shapePoly},
		{Name: "shape_mega", Weight: 0.01, Src: shapeMega},
		{Name: "shape_dynamic", Weight: 0.01, Src: shapeDynamic},
		longTail(150),
	}
}

// feedRanking: OO-heavy scoring over a list of polymorphic story
// objects — exercises method dispatch, partial inlining (getters),
// and packed arrays.
const feedRanking = `
class Story {
  public $author = "";
  public $age = 0;
  public $likes = 0;
  function __construct($a, $age, $likes) {
    $this->author = $a; $this->age = $age; $this->likes = $likes;
  }
  function baseScore() { return $this->likes * 3; }
  function decay() { return $this->age > 10 ? 2 : 1; }
  function score() { return $this->baseScore() / $this->decay(); }
}
class PhotoStory extends Story {
  function baseScore() { return $this->likes * 5; }
}
class VideoStory extends Story {
  public $watch = 0;
  function __construct($a, $age, $likes, $watch) {
    $this->author = $a; $this->age = $age; $this->likes = $likes;
    $this->watch = $watch;
  }
  function baseScore() { return $this->likes * 4 + $this->watch; }
}

function buildFeed($n) {
  $feed = [];
  for ($i = 0; $i < $n; $i++) {
    $kind = $i % 4;
    if ($kind == 0) {
      $feed[] = new PhotoStory("u" . $i, $i % 20, $i * 7 % 50);
    } elseif ($kind == 1) {
      $feed[] = new VideoStory("u" . $i, $i % 15, $i * 3 % 40, $i % 30);
    } else {
      $feed[] = new Story("u" . $i, $i % 25, $i * 11 % 60);
    }
  }
  return $feed;
}

function rankFeed($feed) {
  $total = 0;
  $best = 0;
  foreach ($feed as $story) {
    $s = $story->score();
    $total += $s;
    if ($s > $best) { $best = $s; }
  }
  return $total + $best;
}

$feed = buildFeed(60);
echo rankFeed($feed), "\n";
`

// profileRender: string building and property access — exercises
// Concat, interpolation, and prop fast paths.
const profileRender = `
class User {
  public $name = "";
  public $city = "";
  public $friends = 0;
  function __construct($n, $c, $f) { $this->name = $n; $this->city = $c; $this->friends = $f; }
  function displayName() { return strtoupper(substr($this->name, 0, 1)) . substr($this->name, 1); }
}

function renderCard($u) {
  $html = "<div class='card'>";
  $html .= "<h1>" . $u->displayName() . "</h1>";
  $html .= "<p>" . $u->city . " - " . $u->friends . " friends</p>";
  $html .= "</div>";
  return $html;
}

$out = "";
for ($i = 0; $i < 40; $i++) {
  $u = new User("user" . $i, "city" . ($i % 7), $i * 13 % 500);
  $out .= renderCard($u);
}
echo strlen($out), "\n";
`

// searchFilter: mixed-array lookups and loops with int/string keys.
const searchFilter = `
function tokenize($q) {
  $tokens = [];
  $word = "";
  $n = strlen($q);
  for ($i = 0; $i < $n; $i++) {
    $c = substr($q, $i, 1);
    if ($c == " ") {
      if ($word != "") { $tokens[] = $word; $word = ""; }
    } else {
      $word = $word . $c;
    }
  }
  if ($word != "") { $tokens[] = $word; }
  return $tokens;
}

function scoreDoc($doc, $tokens) {
  $score = 0;
  foreach ($tokens as $t) {
    if (array_key_exists($t, $doc)) {
      $score += $doc[$t];
    }
  }
  return $score;
}

$docs = [];
for ($i = 0; $i < 25; $i++) {
  $docs[] = ["alpha" => $i % 5, "beta" => $i % 3, "gamma" => $i % 7, "delta" => 1];
}
$tokens = tokenize("alpha gamma delta omega");
$total = 0;
foreach ($docs as $d) {
  $total += scoreDoc($d, $tokens);
}
echo $total, "\n";
`

// notifications: branchy business logic with exceptions on rare
// paths.
const notifications = `
class NotifyError extends Exception {}

function channelFor($kind) {
  switch ($kind) {
    case 1: return "push";
    case 2: return "email";
    case 3: return "sms";
    case 4: return "inapp";
    default: throw new NotifyError("unknown kind " . $kind);
  }
}

function dispatchAll($n) {
  $sent = ["push" => 0, "email" => 0, "sms" => 0, "inapp" => 0];
  $errors = 0;
  for ($i = 0; $i < $n; $i++) {
    $kind = $i % 6 + 1;
    try {
      $ch = channelFor($kind);
      $sent[$ch] = $sent[$ch] + 1;
    } catch (NotifyError $e) {
      $errors++;
    }
  }
  return $sent["push"] * 1000 + $sent["email"] * 100 + $errors;
}

echo dispatchAll(90), "\n";
`

// messagesFormat: recursion + string work.
const messagesFormat = `
function indent($depth) {
  return $depth <= 0 ? "" : "  " . indent($depth - 1);
}

function renderThread($depth, $width) {
  if ($depth == 0) { return ""; }
  $out = "";
  for ($i = 0; $i < $width; $i++) {
    $out .= indent($depth) . "msg\n";
    $out .= renderThread($depth - 1, $width - 1);
  }
  return $out;
}

echo strlen(renderThread(4, 3)), "\n";
`

// adsScoring: double-precision numeric kernel with polymorphic
// int/double inputs — the guard-relaxation showcase.
const adsScoring = `
function logistic($x) {
  $e = 2.718281828;
  $p = 1.0;
  $xa = $x < 0 ? -$x : $x;
  $n = (int)$xa;
  for ($i = 0; $i < $n && $i < 8; $i++) { $p = $p * $e; }
  if ($x < 0) { $p = 1.0 / $p; }
  return $p / (1.0 + $p);
}

function scoreAd($features, $weights) {
  $z = 0.0;
  $n = count($features);
  for ($i = 0; $i < $n; $i++) {
    $z = $z + $features[$i] * $weights[$i];
  }
  return logistic($z);
}

$weights = [0.5, -1.25, 2.0, 0.75, -0.5];
$sum = 0.0;
for ($ad = 0; $ad < 30; $ad++) {
  $features = [$ad % 3, $ad * 0.1, ($ad % 7) * 0.5, $ad % 2, 1];
  $sum = $sum + scoreAd($features, $weights);
}
echo (int)($sum * 1000), "\n";
`

// privacyChecks: instanceof-heavy visitor over a class hierarchy.
const privacyChecks = `
interface Visible {}
class Entity { public $owner = 0; function __construct($o) { $this->owner = $o; } }
class PublicPost extends Entity implements Visible {}
class FriendPost extends Entity {}
class PrivatePost extends Entity {}

function canSee($viewer, $post) {
  if ($post instanceof PublicPost) { return true; }
  if ($post instanceof FriendPost) { return $post->owner % 5 == $viewer % 5; }
  return $post->owner == $viewer;
}

$posts = [];
for ($i = 0; $i < 45; $i++) {
  $k = $i % 3;
  if ($k == 0) { $posts[] = new PublicPost($i); }
  elseif ($k == 1) { $posts[] = new FriendPost($i); }
  else { $posts[] = new PrivatePost($i); }
}
$visible = 0;
foreach ($posts as $p) {
  if (canSee(7, $p)) { $visible++; }
}
echo $visible, "\n";
`

// apiSerialize: array flattening into a wire string.
const apiSerialize = `
function serialize_value($v) {
  if (is_array($v)) {
    $parts = "";
    foreach ($v as $k => $x) {
      if ($parts != "") { $parts .= ","; }
      $parts .= $k . ":" . serialize_value($x);
    }
    return "{" . $parts . "}";
  }
  if (is_string($v)) { return "'" . $v . "'"; }
  if (is_bool($v)) { return $v ? "true" : "false"; }
  return strval($v);
}

$payload = [
  "id" => 42,
  "tags" => ["a", "b", "c"],
  "meta" => ["views" => 100, "flags" => [true, false]],
  "score" => 9.5,
];
$out = "";
for ($i = 0; $i < 12; $i++) {
  $payload["id"] = $i;
  $out .= serialize_value($payload);
}
echo strlen($out), "\n";
`

// batchStats: the paper's running example at scale — avgPositive
// over int and double arrays (Figure 2).
const batchStats = `
function avgPositive($arr) {
  $sum = 0;
  $n = 0;
  $size = count($arr);
  for ($i = 0; $i < $size; $i++) {
    $elem = $arr[$i];
    if ($elem > 0) {
      $sum = $sum + $elem;
      $n++;
    }
  }
  if ($n == 0) {
    throw new Exception("no positive numbers");
  }
  return $sum / $n;
}

$ints = [];
$dbls = [];
for ($i = 0; $i < 50; $i++) {
  $ints[] = $i % 7 - 2;
  $dbls[] = ($i % 9) * 0.5 - 1.0;
}
$acc = 0;
$acc += avgPositive($ints);
$acc += avgPositive($dbls);
try {
  avgPositive([-1, -2, -3]);
} catch (Exception $e) {
  $acc += 1;
}
echo (int)($acc * 100), "\n";
`
