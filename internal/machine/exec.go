package machine

import (
	"fmt"
	"runtime/debug"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/mcode"
	"repro/internal/profile"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vasm"
)

// OutcomeKind classifies how a translation finished.
type OutcomeKind int

const (
	// Returned: the guest function returned Value.
	Returned OutcomeKind = iota
	// SideExit: resume interpretation at BCOff (frame stack synced).
	SideExit
	// BindRequest: control wants to continue at bytecode BCOff —
	// the dispatcher may enter another translation or bind a new one.
	BindRequest
	// Threw: a guest error escaped; frame state synced at BCOff.
	Threw
)

// Outcome reports the result of executing one translation.
type Outcome struct {
	Kind  OutcomeKind
	Value runtime.Value
	BCOff int
	Err   error
	// Inline is non-nil when the exit happened inside inlined code:
	// the chain of materialized callee frames, innermost first. The
	// outermost entry's RetBCOff is a pc in the root function.
	Inline []InlineResume
	// GuardTrace counts failed in-code guards (diagnostics).
	GuardFails int
}

// InlineResume is one materialized inline frame: run Frame; its
// return value is pushed in the enclosing frame, which resumes at
// RetBCOff.
type InlineResume struct {
	Frame    *interp.Frame
	RetBCOff int
}

// CallGuestFn dispatches a guest call from JITed code back through
// the VM (which may pick another translation or the interpreter).
type CallGuestFn func(f *hhbc.Func, this *runtime.Object, args []runtime.Value) (runtime.Value, error)

// Machine executes assembled translations.
type Machine struct {
	Env      *interp.Env
	Meter    *Meter
	Counters *profile.Counters
	Cache    *mcode.Cache
	Fetch    *FetchModel

	// CallGuest is installed by the VM.
	CallGuest CallGuestFn

	// methodCache: per-site monomorphic inline caches.
	methodCache map[int64]methodCacheEnt
}

type methodCacheEnt struct {
	cls    *runtime.Class
	funcID int
}

// New creates a machine bound to an environment.
func New(env *interp.Env, meter *Meter, counters *profile.Counters, cache *mcode.Cache) *Machine {
	m := &Machine{
		Env: env, Meter: meter, Counters: counters, Cache: cache,
		Fetch:       NewFetchModel(),
		methodCache: map[int64]methodCacheEnt{},
	}
	m.Fetch.HugeCovers = cache.HugeCovers
	return m
}

// activation is the per-execution machine state.
type activation struct {
	regs   [vasm.TotalMachineRegs]runtime.Value
	spills []runtime.Value
	fr     *interp.Frame
}

func (a *activation) get(r vasm.Reg) runtime.Value {
	if r >= vasm.SpillRegBase {
		return a.spills[r-vasm.SpillRegBase]
	}
	return a.regs[r]
}

func (a *activation) set(r vasm.Reg, v runtime.Value) {
	if r >= vasm.SpillRegBase {
		a.spills[r-vasm.SpillRegBase] = v
		return
	}
	a.regs[r] = v
}

// Exec runs code against fr until it returns, exits, or throws.
func (m *Machine) Exec(code *mcode.Code, fr *interp.Frame) Outcome {
	act := &activation{fr: fr}
	if code.NumSpills > 0 {
		act.spills = make([]runtime.Value, code.NumSpills)
	}
	// Extend the frame for inline-callee locals.
	for len(fr.Locals) < code.ExtSlots {
		fr.Locals = append(fr.Locals, runtime.Uninit())
	}

	h := m.Env.Heap
	guardFails := 0
	// Block 0 is the translation entry; layout may have placed hotter
	// loop blocks ahead of it.
	ip := code.BlockIndex[0]
	defer func() {
		if r := recover(); r != nil {
			in := &code.Instrs[ip]
			panic(fmt.Sprintf("machine panic at ip=%d op=%s instr=%s spills=%d imms=%d locals=%d: %v\n%s",
				ip, in.Op, in.String(), len(act.spills), len(code.Imms), len(fr.Locals), r,
				debug.Stack()))
		}
	}()
	for {
		if ip >= len(code.Instrs) {
			return Outcome{Kind: Threw, BCOff: fr.PC, GuardFails: guardFails,
				Err: runtime.NewError("machine: fell off code end")}
		}
		in := &code.Instrs[ip]
		m.Meter.ChargeOp(in.Op, opCost(in.Op)+m.Fetch.Fetch(code.AddrOf(ip)))

		switch in.Op {
		case vasm.Nop:
		case vasm.LdImm:
			m.setImm(act, in.D, code.Imms[in.I64])
		case vasm.Copy:
			act.set(in.D, act.get(in.A))
		case vasm.LdLoc:
			v := fr.Locals[in.I64]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			act.set(in.D, v)
		case vasm.StLoc:
			fr.Locals[in.I64] = act.get(in.A)
		case vasm.LdStk:
			if int(in.I64) < len(fr.Stack) {
				act.set(in.D, fr.Stack[in.I64])
			} else {
				act.set(in.D, runtime.Null())
			}
		case vasm.Spill:
			act.spills[in.I64] = act.get(in.A)
		case vasm.Reload:
			act.set(in.D, act.spills[in.I64])

		case vasm.GuardKind:
			v := act.get(in.A)
			if !v.Type().SubtypeOf(in.TypeParam) {
				guardFails++
				m.Meter.Charge(guardFailPenalty)
				if out, done := m.jumpOrExit(code, act, in.Target1, guardFails); done {
					return out
				} else {
					ip = out.BCOff // reused as instr index
					continue
				}
			}
		case vasm.GuardCls:
			v := act.get(in.A)
			if v.Kind != types.KObj || int64(v.O.Class.ClassID) != in.I64 {
				guardFails++
				m.Meter.Charge(guardFailPenalty)
				if out, done := m.jumpOrExit(code, act, in.Target1, guardFails); done {
					return out
				} else {
					ip = out.BCOff
					continue
				}
			}

		case vasm.AddI:
			act.set(in.D, runtime.Int(act.get(in.A).I+act.get(in.B).I))
		case vasm.SubI:
			act.set(in.D, runtime.Int(act.get(in.A).I-act.get(in.B).I))
		case vasm.MulI:
			act.set(in.D, runtime.Int(act.get(in.A).I*act.get(in.B).I))
		case vasm.NegI:
			act.set(in.D, runtime.Int(-act.get(in.A).I))
		case vasm.AddD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D+act.get(in.B).D))
		case vasm.SubD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D-act.get(in.B).D))
		case vasm.MulD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D*act.get(in.B).D))
		case vasm.DivD:
			b := act.get(in.B).D
			if b == 0 {
				out := m.throwTo(code, act, in.Target1,
					runtime.NewError("division by zero"), guardFails)
				if out != nil {
					return *out
				}
			}
			act.set(in.D, runtime.Dbl(act.get(in.A).D/b))
		case vasm.NegD:
			act.set(in.D, runtime.Dbl(-act.get(in.A).D))
		case vasm.CmpI:
			act.set(in.D, runtime.Bool(cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)))
		case vasm.CmpD:
			act.set(in.D, runtime.Bool(cmpD(in.I64&0xff, act.get(in.A).D, act.get(in.B).D)))

		case vasm.ToBool:
			act.set(in.D, runtime.Bool(act.get(in.A).Bool()))
		case vasm.ToInt:
			act.set(in.D, runtime.Int(act.get(in.A).ToInt()))
		case vasm.ToDbl:
			act.set(in.D, runtime.Dbl(act.get(in.A).ToDbl()))

		case vasm.IncRef:
			h.IncRef(act.get(in.A))
		case vasm.DecRef:
			h.DecRef(act.get(in.A))

		case vasm.ArrCount:
			act.set(in.D, runtime.Int(int64(act.get(in.A).A.Len())))
		case vasm.ArrGetPkI:
			arr := act.get(in.A)
			el, ok := arr.A.GetIntKey(act.get(in.B).I)
			if !ok || el.Kind == types.KUninit {
				el = runtime.Null()
				m.Meter.Charge(helperCost[vasm.HArrGetPackedMiss])
			}
			h.IncRef(el)
			act.set(in.D, el)

		case vasm.LdProp:
			act.set(in.D, act.get(in.A).O.GetPropSlot(int(in.I64)))
		case vasm.StProp:
			act.get(in.A).O.SetPropSlot(h, int(in.I64), act.get(in.B))
		case vasm.LdThis:
			if fr.This == nil {
				out := m.throwTo(code, act, -1,
					runtime.NewError("using $this outside object context"), guardFails)
				return *out
			}
			act.set(in.D, runtime.ObjV(fr.This))

		case vasm.Helper:
			hid, extra := vasm.UnpackHelper(in.I64)
			m.Meter.Charge(helperCost[hid])
			res, err := m.runHelper(act, hid, extra, in)
			if err != nil {
				out := m.throwTo(code, act, in.Target1, err, guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			if in.D != vasm.InvalidReg {
				act.set(in.D, res)
			}

		case vasm.CallFunc, vasm.CallBuiltin, vasm.CallMethodD, vasm.CallMethodC:
			res, err := m.runCall(act, in)
			if err != nil {
				out := m.throwTo(code, act, in.Target1, err, guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			m.Meter.Charge(callReturnCost)
			if in.D != vasm.InvalidReg {
				act.set(in.D, res)
			}

		case vasm.CountInc:
			if m.Counters != nil {
				m.Counters.Inc(profile.TransID(in.I64))
			}
		case vasm.ProfCallSite:
			if m.Counters != nil {
				v := act.get(in.A)
				if v.Kind == types.KObj {
					m.Counters.RecordCallTarget(
						profile.CallSite{FuncID: fr.Fn.ID, PC: int(in.I64)},
						v.O.Class.Name)
				}
			}

		case vasm.Jmp:
			ip = code.BlockIndex[in.Target1]
			continue
		case vasm.Jcc:
			cond := act.get(in.A).Bool()
			if in.I64&0x100 != 0 { // inverted by jump optimization
				cond = !cond
			}
			if cond {
				ip = code.BlockIndex[in.Target1]
				continue
			}
			ip = code.BlockIndex[in.Target2]
			continue
		case vasm.JmpTable:
			tbl := code.Tables[in.I64]
			idx := act.get(in.A).ToInt() - tbl.Base
			if idx >= 0 && idx < int64(len(tbl.Targets)) {
				ip = code.BlockIndex[tbl.Targets[idx]]
			} else {
				ip = code.BlockIndex[tbl.Default]
			}
			continue

		case vasm.Ret:
			v := act.get(in.A)
			m.Meter.Charge(uint64(2 * len(fr.Locals))) // frame teardown
			fr.Stack = fr.Stack[:0]
			frameRelease(m.Env, fr)
			return Outcome{Kind: Returned, Value: v, GuardFails: guardFails}

		case vasm.Exit:
			return m.takeExit(act, in.Ex, SideExit, nil, guardFails)
		case vasm.BindJmp:
			out := m.takeExit(act, in.Ex, BindRequest, nil, guardFails)
			out.BCOff = int(in.I64)
			return out

		default:
			return Outcome{Kind: Threw, BCOff: fr.PC, GuardFails: guardFails,
				Err: runtime.NewError("machine: bad opcode %s", in.Op)}
		}
		ip++
	}
}

func (m *Machine) setImm(act *activation, d vasm.Reg, iv vasm.ImmValue) {
	switch iv.Kind {
	case types.KInt:
		act.set(d, runtime.Int(iv.I))
	case types.KDbl:
		act.set(d, runtime.Dbl(iv.D))
	case types.KBool:
		act.set(d, runtime.Bool(iv.I != 0))
	case types.KStr:
		act.set(d, runtime.StrV(runtime.InternStr(iv.S)))
	case types.KUninit:
		act.set(d, runtime.Uninit())
	default:
		act.set(d, runtime.Null())
	}
}

// jumpOrExit handles a guard-fail target: a chained block (returns
// its instruction index via Outcome.BCOff with done=false) or an exit
// stub block (executes it; done=true).
func (m *Machine) jumpOrExit(code *mcode.Code, act *activation, target int, guardFails int) (Outcome, bool) {
	idx, ok := code.BlockIndex[target]
	if !ok {
		return Outcome{Kind: Threw, Err: runtime.NewError("machine: bad guard target"),
			GuardFails: guardFails}, true
	}
	// Exit stubs consist of a single Exit instruction.
	if idx < len(code.Instrs) && code.Instrs[idx].Op == vasm.Exit {
		m.Meter.Charge(opCost(vasm.Exit))
		return m.takeExit(act, code.Instrs[idx].Ex, SideExit, nil, guardFails), true
	}
	return Outcome{BCOff: idx}, false
}

// throwTo routes a guest error through the instruction's catch stub,
// materializing frame state; returns the final outcome (nil never —
// kept pointer-shaped for call-site brevity).
func (m *Machine) throwTo(code *mcode.Code, act *activation, stub int, err error, guardFails int) *Outcome {
	var ex *vasm.ExitInfo
	if stub >= 0 {
		if idx, ok := code.BlockIndex[stub]; ok && idx < len(code.Instrs) &&
			code.Instrs[idx].Op == vasm.Exit {
			ex = code.Instrs[idx].Ex
		}
	}
	out := m.takeExit(act, ex, Threw, err, guardFails)
	return &out
}

// takeExit materializes VM state per the exit descriptor.
func (m *Machine) takeExit(act *activation, ex *vasm.ExitInfo, kind OutcomeKind, err error, guardFails int) Outcome {
	fr := act.fr
	out := Outcome{Kind: kind, Err: err, GuardFails: guardFails}
	if ex == nil {
		out.BCOff = fr.PC
		fr.Stack = fr.Stack[:0]
		return out
	}
	out.BCOff = ex.BCOff
	if ex.Inline != nil {
		// Materialize the whole chain of inlined callee frames from
		// the extended local slots (Section 5.3.1: side exits can
		// materialize an arbitrary number of callee frames),
		// innermost first. The eval stack of frame i comes from the
		// CallerStackRegs of the context one level in; the innermost
		// frame's stack is the exit's own StackRegs.
		stackFor := func(regs []vasm.Reg) []runtime.Value {
			var s []runtime.Value
			for _, r := range regs {
				s = append(s, act.get(r))
			}
			return s
		}
		innerStack := stackFor(ex.StackRegs)
		innerPC := ex.BCOff
		for ii := ex.Inline; ii != nil; ii = ii.Parent {
			callee := m.Env.Unit.Funcs[ii.FuncID]
			cf := &interp.Frame{Fn: callee, PC: innerPC, Stack: innerStack}
			cf.Locals = make([]runtime.Value, callee.NumLocals)
			for i := 0; i < callee.NumLocals; i++ {
				cf.Locals[i] = fr.Locals[ii.LocalsBase+i]
				fr.Locals[ii.LocalsBase+i] = runtime.Uninit()
			}
			if ii.ThisReg != vasm.InvalidReg {
				if tv := act.get(ii.ThisReg); tv.Kind == types.KObj {
					cf.This = tv.O
				}
			}
			out.Inline = append(out.Inline, InlineResume{Frame: cf, RetBCOff: ii.RetBCOff})
			// The enclosing frame resumes after this context's call.
			innerStack = stackFor(ii.CallerStackRegs)
			innerPC = ii.RetBCOff
		}
		// The root frame's stack is the outermost caller stack.
		fr.Stack = innerStack
		return out
	}
	fr.Stack = fr.Stack[:0]
	for _, r := range ex.StackRegs {
		fr.Stack = append(fr.Stack, act.get(r))
	}
	fr.PC = ex.BCOff
	return out
}

// frameRelease mirrors interp's frame teardown.
func frameRelease(env *interp.Env, fr *interp.Frame) {
	for i, v := range fr.Locals {
		env.Heap.DecRef(v)
		fr.Locals[i] = runtime.Uninit()
	}
	for _, it := range fr.Iters {
		if it != nil {
			env.Heap.DecRef(runtime.ArrV(it.Arr()))
		}
	}
	fr.Iters = nil
}

func cmpI(cond, a, b int64) bool {
	switch cond {
	case 0:
		return a < b
	case 1:
		return a <= b
	case 2:
		return a > b
	case 3:
		return a >= b
	case 4:
		return a == b
	default:
		return a != b
	}
}

func cmpD(cond int64, a, b float64) bool {
	switch cond {
	case 0:
		return a < b
	case 1:
		return a <= b
	case 2:
		return a > b
	case 3:
		return a >= b
	case 4:
		return a == b
	default:
		return a != b
	}
}
