package jumpstart

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/types"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Funcs: []FuncProfile{
			{
				Name: "main", Hash: 0xdeadbeefcafe,
				Trans: []TransProfile{
					{
						PC: 0, EntryDepth: 0,
						Guards: []GuardRepr{
							{Stack: false, Slot: 0, Type: ReprOf(types.TInt)},
							{Stack: false, Slot: 1, Type: ReprOf(types.ObjOfClass("Foo", true))},
						},
						Count: 1200,
					},
					{
						PC: 9, EntryDepth: 1,
						EntryStackTypes: []TypeRepr{ReprOf(types.ArrOfKind(types.ArrayPacked))},
						Count:           880,
					},
				},
				Arcs:        []ArcWeight{{From: 0, To: 1, Weight: 870}},
				CallTargets: []CallTarget{{PC: 4, Class: "Foo", Count: 990}},
			},
			{
				Name: "helper", Hash: 0x1234,
				Trans: []TransProfile{{PC: 0, Count: 42}},
			},
		},
		CallGraph: []CallEdge{{Caller: 0, Callee: 1, Weight: 990}},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Canonicalize(s)) {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, Canonicalize(s))
	}
	// Encoding is deterministic.
	if string(Encode(got)) != string(data) {
		t.Error("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestTypeReprRoundTrip(t *testing.T) {
	for _, ty := range []types.Type{
		types.TInt, types.TCell, types.TUninit, types.TBottom,
		types.ArrOfKind(types.ArrayMixed), types.ObjOfClass("C", false),
		types.ObjOfClass("D", true), types.TNum, types.TUncounted,
	} {
		back := ReprOf(ty).Type()
		if back.String() != ty.String() {
			t.Errorf("type %s round-tripped to %s", ty, back)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(sampleSnapshot())

	// Truncation at every proper prefix must error, never panic or
	// succeed — n reaches len(data)-1 so dropping only the final byte
	// (the easiest truncation for a length-prefixed codec to miss) is
	// covered too.
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}

	// Every single-byte payload flip must fail the checksum,
	// including the last byte (a stride would skip it).
	for i := 9; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}

	// Wrong magic, wrong version.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[4] = FormatVersion + 1
	if _, err := Decode(bad); err == nil {
		t.Error("future version accepted")
	}
}

// TestLoadRejectsTruncatedFile covers the file path end-to-end: a
// snapshot file cut short at any point — including by a single byte —
// or flipped in its final byte must make Load return an error, not a
// partial snapshot and not a panic. This is the shape of real-world
// damage (a crashed writer, a full disk, a torn copy), and the
// server's jumpstart path trusts Load to reject it.
func TestLoadRejectsTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.hhjs")
	s := sampleSnapshot()
	if err := Save(whole, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.hhjs")
	for _, n := range []int{0, 1, 4, len(data) / 2, len(data) - 2, len(data) - 1} {
		if err := os.WriteFile(bad, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := Load(bad); err == nil {
			t.Fatalf("Load accepted a file truncated to %d of %d bytes (got %d trans)",
				n, len(data), snap.NumTrans())
		}
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x01
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("Load accepted a file with its final byte flipped")
	}

	// The intact file still loads after all that.
	if _, err := Load(whole); err != nil {
		t.Fatalf("intact file failed to load: %v", err)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.hhjs")
	s := sampleSnapshot()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrans() != s.NumTrans() || got.TotalCount() != s.TotalCount() {
		t.Errorf("loaded %d trans / %d count, want %d / %d",
			got.NumTrans(), got.TotalCount(), s.NumTrans(), s.TotalCount())
	}
}

// randomSnapshot generates a snapshot drawing function identities and
// translation shapes from small pools so merges actually collide.
func randomSnapshot(r *rand.Rand) *Snapshot {
	names := []string{"a", "b", "c", "d"}
	s := &Snapshot{}
	nf := 1 + r.Intn(len(names))
	perm := r.Perm(len(names))[:nf]
	for _, ni := range perm {
		fp := FuncProfile{Name: names[ni], Hash: uint64(1 + r.Intn(2))}
		nt := 1 + r.Intn(3)
		for j := 0; j < nt; j++ {
			tr := TransProfile{PC: r.Intn(4) * 3, EntryDepth: 0, Count: uint64(r.Intn(1000))}
			if r.Intn(2) == 0 {
				tr.Guards = append(tr.Guards, GuardRepr{Slot: r.Intn(2), Type: ReprOf(types.TInt)})
			}
			fp.Trans = append(fp.Trans, tr)
		}
		for j := 0; j < r.Intn(3); j++ {
			fp.Arcs = append(fp.Arcs, ArcWeight{
				From: r.Intn(len(fp.Trans)), To: r.Intn(len(fp.Trans)),
				Weight: uint64(1 + r.Intn(100)),
			})
		}
		if r.Intn(2) == 0 {
			fp.CallTargets = append(fp.CallTargets, CallTarget{
				PC: r.Intn(5), Class: names[r.Intn(len(names))], Count: uint64(1 + r.Intn(50)),
			})
		}
		s.Funcs = append(s.Funcs, fp)
	}
	for j := 0; j < r.Intn(3); j++ {
		s.CallGraph = append(s.CallGraph, CallEdge{
			Caller: r.Intn(len(s.Funcs)), Callee: r.Intn(len(s.Funcs)),
			Weight: uint64(1 + r.Intn(100)),
		})
	}
	return s
}

// TestMergeCommutative is the merge-commutativity property test:
// Merge(a, b) must deeply equal Merge(b, a) at equal weights, across
// many random snapshot pairs.
func TestMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := randomSnapshot(r), randomSnapshot(r)
		ab := Merge([]*Snapshot{a, b}, nil)
		ba := Merge([]*Snapshot{b, a}, nil)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\n a+b %+v\n b+a %+v", trial, ab, ba)
		}
		// And associative with a third.
		c := randomSnapshot(r)
		abc1 := Merge([]*Snapshot{ab, c}, nil)
		abc2 := Merge([]*Snapshot{a, Merge([]*Snapshot{b, c}, nil)}, nil)
		if !reflect.DeepEqual(abc1, abc2) {
			t.Fatalf("trial %d: merge not associative", trial)
		}
	}
}

func TestMergeWeightsAndScale(t *testing.T) {
	s := sampleSnapshot()
	half := Scale(s, 0.5)
	if got, want := half.TotalCount(), (uint64(600) + 440 + 21); got != want {
		t.Errorf("scaled total = %d, want %d", got, want)
	}
	// Merging a snapshot with itself at weight 1 doubles every count.
	double := Merge([]*Snapshot{s, s}, nil)
	if got, want := double.TotalCount(), 2*s.TotalCount(); got != want {
		t.Errorf("self-merge total = %d, want %d", got, want)
	}
	// Identity survives: a function with a different hash is distinct.
	changed := Canonicalize(s)
	changed.Funcs[0].Hash++
	m := Merge([]*Snapshot{s, changed}, nil)
	if len(m.Funcs) != len(s.Funcs)+1 {
		t.Errorf("hash-changed function merged into its old identity: %d funcs", len(m.Funcs))
	}
}
