package runtime

import (
	"fmt"

	"repro/internal/shapes"
	"repro/internal/types"
)

// Class is the runtime class descriptor. Method bodies live in the
// bytecode unit; the class refers to them by dense function IDs so
// that the runtime stays independent of the bytecode representation.
type Class struct {
	Name    string
	Parent  *Class
	Ifaces  []string
	HasDtor bool

	// PropNames maps property name -> slot index; PropInit holds the
	// default values (uncounted only).
	PropNames map[string]int
	PropInit  []Value

	// Methods maps lowercase method name -> function ID. It includes
	// inherited methods (flattened at link time).
	Methods map[string]int

	// ClassID is a dense ID used by JITed class-equality guards.
	ClassID int

	// RootShape is the interned shape of a freshly constructed
	// instance (declared properties in slot order with their
	// default-value kinds), set at link time. Classes with identical
	// flattened layouts share a root, which is what lets one shape
	// guard cover a class-polymorphic site. Nil for classes
	// synthesized outside linking; their instances run shapeless and
	// take only generic property paths.
	RootShape *shapes.Shape

	// AncestorBits is a bitset over dense class IDs covering this
	// class, every ancestor, and every implemented interface — the
	// "bitwise instanceof checks" optimization the paper lists among
	// the Vasm-level optimizations (Figure 7): `$x instanceof C`
	// compiles to a single bit test instead of a hierarchy walk.
	AncestorBits []uint64
}

// HasAncestorID reports whether id is in the ancestor bitset.
func (c *Class) HasAncestorID(id int) bool {
	w, b := id/64, uint(id%64)
	return w < len(c.AncestorBits) && c.AncestorBits[w]&(1<<b) != 0
}

// SetAncestorID adds id to the bitset.
func (c *Class) SetAncestorID(id int) {
	w, b := id/64, uint(id%64)
	for len(c.AncestorBits) <= w {
		c.AncestorBits = append(c.AncestorBits, 0)
	}
	c.AncestorBits[w] |= 1 << b
}

// LookupMethod resolves name to a function ID.
func (c *Class) LookupMethod(name string) (int, bool) {
	id, ok := c.Methods[name]
	return id, ok
}

// IsSubclassOf walks the extends chain and interface lists.
func (c *Class) IsSubclassOf(name string) bool {
	for k := c; k != nil; k = k.Parent {
		if k.Name == name {
			return true
		}
		for _, i := range k.Ifaces {
			if i == name || types.IsSubclassOf(i, name) {
				return true
			}
		}
	}
	return false
}

// Object is a guest object instance: a class pointer, its current
// shape, and property slots. The invariant len(Props) ==
// Shape.NumSlots() holds whenever Shape is non-nil: dynamic
// properties append a slot to both in the same write. Objects are
// confined to one worker's requests, so Shape needs no
// synchronization — only the shape *nodes* are shared.
type Object struct {
	Class      *Class
	Shape      *shapes.Shape
	Props      []Value
	refs       int32
	destructed bool
}

// NewObject allocates an instance of c with default-initialized
// properties, the class's root shape, and refcount 1.
func (h *Heap) NewObject(c *Class) *Object {
	props := make([]Value, len(c.PropInit))
	copy(props, c.PropInit)
	h.LiveObjs++
	return &Object{Class: c, Shape: c.RootShape, Props: props, refs: 1}
}

// Refs returns the current reference count.
func (o *Object) Refs() int32 { return o.refs }

// ShapeID returns the object's shape ID, 0 when shapeless — compiled
// shape guards compare against it (0 never matches a minted guard).
func (o *Object) ShapeID() uint32 {
	if o.Shape == nil {
		return 0
	}
	return o.Shape.ID
}

// slotOf resolves a property name against the object's current layout
// (shape when present — which includes dynamic properties — else the
// class's declared slots).
func (o *Object) slotOf(name string) (int, bool) {
	if o.Shape != nil {
		return o.Shape.Lookup(name)
	}
	slot, ok := o.Class.PropNames[name]
	return slot, ok
}

// GetProp returns a borrowed reference to the named property.
func (o *Object) GetProp(name string) (Value, bool) {
	slot, ok := o.slotOf(name)
	if !ok {
		return Uninit(), false
	}
	return o.Props[slot], true
}

// SetProp stores val (consuming the caller's reference) and releases
// the previous value, maintaining the object's shape: a write whose
// kind differs from the slot's recorded kind retypes the slot, and a
// write to an undeclared name appends a dynamic property (shapeless
// objects keep the historical undefined-property error instead).
func (o *Object) SetProp(h *Heap, name string, val Value) error {
	if slot, ok := o.slotOf(name); ok {
		o.SetPropSlot(h, slot, val)
		return nil
	}
	if o.Shape == nil {
		return fmt.Errorf("undefined property %s::$%s", o.Class.Name, name)
	}
	o.Shape = o.Shape.Transition(name, val.Kind)
	o.Props = append(o.Props, val)
	return nil
}

// GetPropSlot / SetPropSlot are the JIT fast paths once the slot index
// has been resolved (by a compile-time class layout or a shape guard).
func (o *Object) GetPropSlot(slot int) Value { return o.Props[slot] }

// SetPropSlot stores into a known slot, maintaining the typed shape.
// The kind check is one lock-free comparison on the hot path; the
// transition itself follows the shape tree's cached edges.
func (o *Object) SetPropSlot(h *Heap, slot int, val Value) {
	if o.Shape != nil && o.Shape.SlotKind(slot) != val.Kind {
		o.Shape = o.Shape.Transition(o.Shape.Slots[slot].Name, val.Kind)
	}
	old := o.Props[slot]
	o.Props[slot] = val
	h.DecRef(old)
}

// GetPropNamed is the single generic property-read entry point shared
// by the interpreter and the machine's generic helper / megamorphic
// IC fallback (they previously duplicated this logic and could
// drift). It returns an owned reference: missing and uninitialized
// properties read as null, as in PHP.
func GetPropNamed(h *Heap, o *Object, name string) Value {
	p, _ := o.GetProp(name)
	if p.Kind == types.KUninit {
		p = Null()
	}
	h.IncRef(p)
	return p
}

// SetPropNamed is the matching generic property-write entry point:
// it consumes the caller's reference to val (also on error).
func SetPropNamed(h *Heap, o *Object, name string, val Value) error {
	if err := o.SetProp(h, name, val); err != nil {
		h.DecRef(val)
		return err
	}
	return nil
}
