package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
)

// modes returns one config per execution mode (Figure 8's bars).
func modes() map[string]jit.Config {
	mk := func(m jit.Mode) jit.Config {
		c := jit.DefaultConfig()
		c.Mode = m
		c.ProfileTrigger = 20 // small programs: trigger early
		return c
	}
	return map[string]jit.Config{
		"interp":    mk(jit.ModeInterp),
		"tracelet":  mk(jit.ModeTracelet),
		"profiling": mk(jit.ModeProfiling),
		"region":    mk(jit.ModeRegion),
	}
}

// runAllModes executes src repeatedly in every mode and checks all
// runs agree with the interpreter.
func runAllModes(t *testing.T, src string, iterations int) {
	t.Helper()
	var want string
	unitSrc := src
	order := []string{"interp", "tracelet", "profiling", "region"}
	allCfg := modes()
	for _, name := range order {
		cfg := allCfg[name]
		unit, err := core.Compile(unitSrc, core.CompileOptions{})
		if err != nil {
			t.Fatalf("[%s] compile: %v", name, err)
		}
		var all strings.Builder
		eng, err := core.NewEngine(unit, cfg, &all)
		if err != nil {
			t.Fatalf("[%s] engine: %v", name, err)
		}
		for i := 0; i < iterations; i++ {
			if _, err := eng.RunRequest(&all); err != nil {
				t.Fatalf("[%s] iteration %d: %v", name, i, err)
			}
			all.WriteString("|")
		}
		got := all.String()
		if name == "interp" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("[%s] output diverges from interpreter:\n got: %.300q\nwant: %.300q",
				name, got, want)
		}
	}
}

func TestModesAgreeArithLoop(t *testing.T) {
	runAllModes(t, `
function work($n) {
  $sum = 0;
  for ($i = 0; $i < $n; $i++) {
    $sum = $sum + $i * 2 - 1;
  }
  return $sum;
}
echo work(50), "\n";
`, 12)
}

func TestModesAgreeAvgPositive(t *testing.T) {
	// The paper's running example, with mixed int/double arrays to
	// force the retranslation chains of Figure 4.
	runAllModes(t, `
function avgPositive($arr) {
  $sum = 0;
  $n = 0;
  $size = count($arr);
  for ($i = 0; $i < $size; $i++) {
    $elem = $arr[$i];
    if ($elem > 0) {
      $sum = $sum + $elem;
      $n++;
    }
  }
  if ($n == 0) {
    throw new Exception("no positive numbers");
  }
  return $sum / $n;
}
echo avgPositive([1, 2, 3, -4]), " ";
echo avgPositive([1.5, -2.0, 3.25]), " ";
echo avgPositive([1, 2.5, -3]), "\n";
`, 12)
}

func TestModesAgreeStrings(t *testing.T) {
	runAllModes(t, `
function shout($s, $times) {
  $out = "";
  for ($i = 0; $i < $times; $i++) {
    $out = $out . strtoupper($s) . "!";
  }
  return $out;
}
echo shout("hey", 3), "\n", strlen(shout("abc", 5)), "\n";
`, 10)
}

func TestModesAgreeObjects(t *testing.T) {
	runAllModes(t, `
class Shape {
  public $name = "shape";
  function area() { return 0; }
  function describe() { return $this->name . ":" . $this->area(); }
}
class Rect extends Shape {
  public $w = 0;
  public $h = 0;
  function __construct($w, $h) { $this->w = $w; $this->h = $h; $this->name = "rect"; }
  function area() { return $this->w * $this->h; }
}
class Circle extends Shape {
  public $r = 0;
  function __construct($r) { $this->r = $r; $this->name = "circle"; }
  function area() { return 3 * $this->r * $this->r; }
}
$shapes = [new Rect(2, 3), new Circle(4), new Rect(1, 5)];
$total = 0;
foreach ($shapes as $s) {
  $total += $s->area();
}
echo $total, " ", $shapes[0]->describe(), "\n";
`, 12)
}

func TestModesAgreeExceptions(t *testing.T) {
	runAllModes(t, `
function risky($x) {
  if ($x % 3 == 0) { throw new RuntimeException("bad " . $x); }
  return $x * 2;
}
$log = "";
for ($i = 1; $i <= 9; $i++) {
  try {
    $log .= risky($i);
  } catch (RuntimeException $e) {
    $log .= "[" . $e->getMessage() . "]";
  }
}
echo $log, "\n";
`, 10)
}

func TestModesAgreeArraysCOW(t *testing.T) {
	runAllModes(t, `
function stamp($arr, $v) {
  $arr[] = $v;      // COW: caller's array unchanged
  return count($arr);
}
$base = [1, 2, 3];
$n1 = stamp($base, 10);
$n2 = stamp($base, 20);
echo $n1, $n2, count($base), "\n";
$m = ["a" => 1];
$m["b"] = 2;
foreach ($m as $k => $v) { echo $k, $v; }
echo "\n";
`, 10)
}

func TestModesAgreeDestructors(t *testing.T) {
	runAllModes(t, `
class Tracker {
  public $id = 0;
  function __construct($id) { $this->id = $id; }
  function __destruct() { echo "~", $this->id, ";"; }
}
function spin($n) {
  $t = new Tracker($n);
  return $n * 2;   // $t dies here
}
for ($i = 0; $i < 4; $i++) { echo spin($i), ";"; }
echo "\n";
`, 8)
}

func TestModesAgreeRecursion(t *testing.T) {
	runAllModes(t, `
function fib($n) { return $n < 2 ? $n : fib($n-1) + fib($n-2); }
echo fib(12), "\n";
`, 8)
}

func TestModesAgreePolymorphicLoop(t *testing.T) {
	// Forces guard relaxation decisions: $x flips between int and
	// double across iterations.
	runAllModes(t, `
function mix($data) {
  $acc = 0.0;
  foreach ($data as $x) {
    $acc = $acc + $x;
  }
  return $acc;
}
$data = [1, 2.5, 3, 4.5, 5, 6.5];
echo mix($data), "\n";
`, 12)
}

func TestModesAgreeTypeHints(t *testing.T) {
	runAllModes(t, `
function dist(float $x, float $y) { return sqrt($x*$x + $y*$y); }
echo dist(3.0, 4.0), " ", dist(3, 4), "\n";
`, 8)
}

func TestRegionJITIsFasterThanInterp(t *testing.T) {
	src := `
function hot($n) {
  $sum = 0;
  for ($i = 0; $i < $n; $i++) { $sum += $i; }
  return $sum;
}
echo hot(300), "\n";
`
	cycles := map[string]uint64{}
	for name, cfg := range modes() {
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(unit, cfg, &strings.Builder{})
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		for i := 0; i < 30; i++ {
			c, err := eng.RunRequest(&strings.Builder{})
			if err != nil {
				t.Fatalf("[%s]: %v", name, err)
			}
			last = c
		}
		cycles[name] = last
	}
	if cycles["region"] >= cycles["interp"] {
		t.Errorf("region JIT (%d cycles) not faster than interpreter (%d)",
			cycles["region"], cycles["interp"])
	}
	if cycles["tracelet"] >= cycles["interp"] {
		t.Errorf("tracelet JIT (%d) not faster than interpreter (%d)",
			cycles["tracelet"], cycles["interp"])
	}
	t.Logf("steady-state cycles: %v", cycles)
}

func TestOptimizedCodeIsPublished(t *testing.T) {
	src := `
function tick($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s += $i; } return $s; }
echo tick(100);
`
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 10
	eng, err := core.NewEngine(unit, cfg, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.RunRequest(&strings.Builder{}); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.ProfilingTranslations == 0 {
		t.Error("no profiling translations were made")
	}
	if st.OptimizedTranslations == 0 {
		t.Error("global trigger never published optimized translations")
	}
	if st.OptimizeRuns != 1 {
		t.Errorf("expected exactly one global retranslation, got %d", st.OptimizeRuns)
	}
	t.Logf("stats: %+v", st)
}

func ExampleRun() {
	out, _ := core.Run(`echo "hello from the region JIT";`, jit.DefaultConfig())
	fmt.Println(out)
	// Output: hello from the region JIT
}
