// Package hhir implements the HipHop Intermediate Representation: a
// typed, SSA-form IR lowered from bytecode regions. Most of the JIT's
// optimizations run here (Section 5.3): simplification, constant
// folding, DCE, GVN, load elimination, reference-counting elimination,
// partial inlining, and method-dispatch optimization.
package hhir

import (
	"fmt"
	"strings"

	"repro/internal/hhbc"
	"repro/internal/types"
)

// SSATmp is an SSA value.
type SSATmp struct {
	ID   int
	Type types.Type
	Def  *Instr // defining instruction (nil for block params)
	// DefBlock is set for block parameters.
	DefBlock *Block
}

func (t *SSATmp) String() string {
	if t == nil {
		return "t?"
	}
	return fmt.Sprintf("t%d:%s", t.ID, t.Type)
}

// ExitDesc describes a side exit: where interpretation resumes and
// how to rebuild the evaluation stack (bottom-up) at that point. It
// also carries the inline-frame context when the exit happens inside
// partially-inlined code (Section 5.3.1: side exits can materialize
// callee frames).
type ExitDesc struct {
	// BCOff is the bytecode pc to resume at.
	BCOff int
	// Stack are the values forming the eval stack at BCOff,
	// bottom-up.
	Stack []*SSATmp
	// IsCatch marks exits taken on thrown guest errors (resume =
	// unwind) rather than failed guards.
	IsCatch bool
	// Inline is non-nil when the exit occurs inside inlined code.
	Inline *InlineCtx
}

// InlineCtx records enough to materialize the callee frame at a side
// exit from partially-inlined code. Nested inlining chains contexts
// through Parent (side exits can materialize an arbitrary number of
// callee frames, Section 5.3.1).
type InlineCtx struct {
	Callee *hhbc.Func
	// LocalsBase is the first extended-frame slot holding the
	// callee's locals.
	LocalsBase int
	// This holds the receiver for inlined methods (nil otherwise).
	This *SSATmp
	// RetBCOff is the caller pc of the instruction after the call
	// (a pc in Parent's callee, or in the root function when Parent
	// is nil).
	RetBCOff int
	// CallerStack is the caller's eval stack below the call's result
	// (bottom-up) to restore after the callee returns.
	CallerStack []*SSATmp
	// Parent is the enclosing inline context (nil at depth 1).
	Parent *InlineCtx
}

// Instr is one HHIR instruction.
type Instr struct {
	Op   Opcode
	Dst  *SSATmp
	Args []*SSATmp
	// TypeParam refines checks and asserts.
	TypeParam types.Type
	// I64 / Str carry immediates: local slots, class ids, function
	// ids, comparison conditions, counters — per opcode.
	I64 int64
	Str string
	// Exit is the side exit taken when a check fails or a helper
	// throws.
	Exit *ExitDesc
	// Next and Taken are control-flow successors for terminators.
	Next, Taken *Block
	// TakenArgs/NextArgs feed the successor's block params.
	NextArgs, TakenArgs []*SSATmp
	// Table holds the dense jump-table targets of SwitchInt (Taken is
	// its default).
	Table []*Block

	Block *Block
	// dead marks instructions removed by DCE (filtered on commit).
	dead bool
}

func (in *Instr) String() string {
	var sb strings.Builder
	if in.Dst != nil {
		fmt.Fprintf(&sb, "%s = ", in.Dst)
	}
	sb.WriteString(in.Op.String())
	if !in.TypeParam.IsBottom() {
		fmt.Fprintf(&sb, "<%s>", in.TypeParam)
	}
	if in.I64 != 0 || opUsesI64(in.Op) {
		fmt.Fprintf(&sb, " #%d", in.I64)
	}
	if in.Str != "" {
		fmt.Fprintf(&sb, " %q", in.Str)
	}
	for _, a := range in.Args {
		fmt.Fprintf(&sb, " %s", a)
	}
	if in.Taken != nil {
		fmt.Fprintf(&sb, " taken=B%d", in.Taken.ID)
	}
	if in.Next != nil && in.Op != Jmp {
		fmt.Fprintf(&sb, " next=B%d", in.Next.ID)
	}
	if in.Op == Jmp && in.Next != nil {
		fmt.Fprintf(&sb, " B%d", in.Next.ID)
	}
	if in.Exit != nil {
		fmt.Fprintf(&sb, " exit@%d", in.Exit.BCOff)
	}
	return sb.String()
}

// Block is an HHIR basic block.
type Block struct {
	ID     int
	Params []*SSATmp // block parameters (SSA phi replacement)
	Instrs []*Instr
	Preds  []*Block
	// Hint marks profile-based placement (hot path vs cold path).
	Hint BlockHint
	// Weight is the profiled execution count.
	Weight uint64
	// BCStart is the bytecode pc this block begins at (diagnostics).
	BCStart int
}

// BlockHint drives hot/cold splitting.
type BlockHint uint8

const (
	HintNeutral BlockHint = iota
	HintHot
	HintCold
)

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return b.Instrs[len(b.Instrs)-1]
}

// Succs lists successor blocks, including mid-block guard targets
// (guards may branch to the next retranslation in a chain without
// ending the block).
func (b *Block) Succs() []*Block {
	var out []*Block
	for _, in := range b.Instrs {
		if in.dead {
			continue
		}
		if in.Taken != nil {
			out = append(out, in.Taken)
		}
		if in.Next != nil {
			out = append(out, in.Next)
		}
		out = append(out, in.Table...)
	}
	return out
}

// Unit is one HHIR compilation unit (a lowered region).
type Unit struct {
	Func   *hhbc.Func
	Blocks []*Block
	Entry  *Block

	// ExtFrameSlots is the total frame-local slot count including
	// inline-callee frames (>= Func.NumLocals).
	ExtFrameSlots int

	nextTmp   int
	nextBlock int
}

// NewUnit creates an empty unit for f.
func NewUnit(f *hhbc.Func) *Unit {
	return &Unit{Func: f}
}

// NewTmp allocates an SSA value.
func (u *Unit) NewTmp(t types.Type) *SSATmp {
	u.nextTmp++
	return &SSATmp{ID: u.nextTmp - 1, Type: t}
}

// NewBlock allocates a block.
func (u *Unit) NewBlock(bcStart int) *Block {
	b := &Block{ID: u.nextBlock, BCStart: bcStart}
	u.nextBlock++
	u.Blocks = append(u.Blocks, b)
	return b
}

// NumTmps returns the SSA value count (for pass-local tables).
func (u *Unit) NumTmps() int { return u.nextTmp }

func (u *Unit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HHIR unit for %s\n", u.Func.FullName())
	for _, b := range u.Blocks {
		fmt.Fprintf(&sb, "B%d", b.ID)
		if len(b.Params) > 0 {
			sb.WriteString("(")
			for i, p := range b.Params {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(p.String())
			}
			sb.WriteString(")")
		}
		hint := ""
		if b.Hint == HintCold {
			hint = " [cold]"
		}
		fmt.Fprintf(&sb, ": preds=%v w=%d%s\n", blockIDs(b.Preds), b.Weight, hint)
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			fmt.Fprintf(&sb, "  (%02d) %s\n", in.Block.ID, in)
		}
	}
	return sb.String()
}

func blockIDs(bs []*Block) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.ID
	}
	return out
}

// RPO returns blocks in reverse postorder from the entry.
func (u *Unit) RPO() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
		post = append(post, b)
	}
	walk(u.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RecomputePreds rebuilds predecessor lists after CFG edits.
func (u *Unit) RecomputePreds() {
	for _, b := range u.Blocks {
		b.Preds = nil
	}
	for _, b := range u.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}
