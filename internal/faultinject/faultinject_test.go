package faultinject

import (
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	for _, k := range Kinds() {
		if inj.Should(k) {
			t.Fatalf("nil injector fired %s", k)
		}
		if inj.Fired(k) != 0 || inj.Draws(k) != 0 {
			t.Fatalf("nil injector has counters for %s", k)
		}
	}
	inj.ForceNext(TransPanic, 3)
	inj.CorruptBytes(nil)
	if inj.TotalFired() != 0 {
		t.Fatal("nil injector TotalFired != 0")
	}
}

func TestDeterministicFiringPattern(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := New(EnableAll(seed, 0.05))
		var p []bool
		for i := 0; i < 2000; i++ {
			p = append(p, inj.Should(CompileError))
		}
		return p
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := pattern(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestRateIsApproximatelyHonored(t *testing.T) {
	inj := New(EnableAll(7, 0.02))
	const draws = 50000
	for i := 0; i < draws; i++ {
		inj.Should(AllocFail)
	}
	fired := inj.Fired(AllocFail)
	// 2% of 50k = 1000; allow a generous ±40% band.
	if fired < 600 || fired > 1400 {
		t.Fatalf("rate 0.02 fired %d/%d times", fired, draws)
	}
	if inj.Draws(AllocFail) != draws {
		t.Fatalf("draws = %d, want %d", inj.Draws(AllocFail), draws)
	}
}

func TestZeroAndFullRates(t *testing.T) {
	cfg := Config{Seed: 1}
	cfg.Rates[TransPanic] = 1.0
	inj := New(cfg)
	for i := 0; i < 100; i++ {
		if !inj.Should(TransPanic) {
			t.Fatal("rate 1.0 failed to fire")
		}
		if inj.Should(CompileError) {
			t.Fatal("rate 0 fired")
		}
	}
}

func TestForceNext(t *testing.T) {
	inj := New(Config{Seed: 9}) // all rates zero
	inj.ForceNext(CompileError, 2)
	got := []bool{inj.Should(CompileError), inj.Should(CompileError), inj.Should(CompileError)}
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForceNext draw %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestForceNextConcurrent(t *testing.T) {
	inj := New(Config{Seed: 3})
	inj.ForceNext(AllocFail, 100)
	var wg sync.WaitGroup
	fired := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if inj.Should(AllocFail) {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 100 {
		t.Fatalf("forced fires = %d, want exactly 100", total)
	}
}

func TestCorruptBytesAndInjectedError(t *testing.T) {
	inj := New(Config{})
	data := []byte{1, 2, 3}
	inj.CorruptBytes(data)
	if data[2] == 3 {
		t.Fatal("CorruptBytes left data intact")
	}
	err := Errf(SnapshotCorrupt)
	if !IsInjected(err) {
		t.Fatal("IsInjected(Errf) = false")
	}
	if IsInjected(nil) {
		t.Fatal("IsInjected(nil) = true")
	}
}
