package hhir

import "repro/internal/types"

// RCE is the reference-counting elimination pass (Section 5.3.2): it
// sinks IncRef instructions down the instruction stream as long as
// the (temporarily) smaller reference count cannot affect any
// intervening instruction, and eliminates IncRef/DecRef pairs that
// become adjacent. Only IncRefs move — DecRefs stay put because they
// can run destructors.
//
// Lower bounds on count(t) are computed per block from local facts:
// a value loaded from a frame local has count >= 1 while the local
// still holds it; helper results arrive owned (>= 1); IncRef/DecRef
// adjust the bound; calls invalidate bounds for values they consume.
func RCE(u *Unit) {
	for _, b := range u.Blocks {
		rceBlock(b)
	}
	commitDead(u)
}

type pendingInc struct {
	in  *Instr
	val *SSATmp
}

func rceBlock(b *Block) {
	// lower bound of count per value (excluding any pending IncRef).
	lb := map[*SSATmp]int{}
	// localHolds maps frame slot -> value it holds (for LdLoc facts).
	localHolds := map[int64]*SSATmp{}
	// stored marks values written into a local (their count is
	// frame-visible; side exits then observe it).
	stored := map[*SSATmp]bool{}

	var pending []pendingInc

	materializeBefore := func(idx int, p pendingInc) {
		// The IncRef stays where it originally was; sinking is
		// modeled by leaving the instruction alive (we only mark the
		// pair dead when fully sunk to its DecRef). Nothing to do.
		_ = idx
	}

	for idx := 0; idx < len(b.Instrs); idx++ {
		in := b.Instrs[idx]
		if in.dead {
			continue
		}

		// Try to eliminate: DecRef t with a pending IncRef t.
		if in.Op == DecRef {
			t := in.Args[0]
			for pi := len(pending) - 1; pi >= 0; pi-- {
				if pending[pi].val == t {
					pending[pi].in.dead = true
					in.dead = true
					pending = append(pending[:pi], pending[pi+1:]...)
					break
				}
			}
			if in.dead {
				continue
			}
		}

		// New IncRef: becomes pending (candidate for sinking). Its
		// count contribution is NOT added to the lower bound — lb
		// tracks the sunk-world count, where the IncRef has not yet
		// executed.
		if in.Op == IncRef {
			t := in.Args[0]
			if t.Type.MaybeCounted() {
				pending = append(pending, pendingInc{in: in, val: t})
			} else {
				lb[t]++
			}
			continue
		}

		// Can every pending IncRef cross this instruction? Blocked
		// ones stay at their original position, so their count
		// contribution becomes real again.
		if len(pending) > 0 {
			keep := pending[:0]
			for _, p := range pending {
				if crossBlocks(in, p.val, lb, stored) {
					materializeBefore(idx, p)
					lb[p.val]++
				} else {
					keep = append(keep, p)
				}
			}
			pending = keep
		}

		// Update facts.
		switch in.Op {
		case LdLoc:
			if in.Dst != nil {
				if lb[in.Dst] < 1 {
					lb[in.Dst] = 1
				}
				localHolds[in.I64] = in.Dst
			}
		case StLoc:
			stored[in.Args[0]] = true
			if old, ok := localHolds[in.I64]; ok && lb[old] > 0 {
				lb[old]--
			}
			localHolds[in.I64] = in.Args[0]
		case DecRef:
			if lb[in.Args[0]] > 0 {
				lb[in.Args[0]]--
			}
		case CallFunc, CallBuiltin, CallMethodD, CallMethodC, BinopGeneric,
			ArrGetGeneric, NewObj, NewArr, NewPackedArr, AddElem, AddNewElem,
			IterKey, IterValue, LdPropGeneric, ConcatStr, ConvToStr:
			// Helper results arrive owned.
			if in.Dst != nil && in.Dst.Type.MaybeCounted() {
				if lb[in.Dst] < 1 {
					lb[in.Dst] = 1
				}
			}
			// Consumed arguments lose their bound.
			for _, a := range in.Args {
				lb[a] = 0
			}
		}
	}
	// Pending IncRefs that never met a DecRef simply stay in place.
}

// crossBlocks reports whether sinking an IncRef of t past in is
// UNSAFE (true = blocked).
func crossBlocks(in *Instr, t *SSATmp, lb map[*SSATmp]int, stored map[*SSATmp]bool) bool {
	// Side exits and chained guards materialize VM state; if t's
	// count is frame-visible there, the pending IncRef must not cross.
	if in.Exit != nil || in.Taken != nil {
		if stored[t] || inExitStack(in.Exit, t) {
			return true
		}
	}
	switch in.Op {
	case DecRef:
		u := in.Args[0]
		if u == t {
			return true // handled by pair elimination before this
		}
		if mayAliasRC(u, t) && lb[t] < 2 {
			// The aliasing DecRef could reach zero and run a
			// destructor that the program (with the IncRef done)
			// would not run.
			return true
		}
		return false
	case ArrSetLocal, ArrAppendLocal, ArrUnsetLocal:
		// COW observability: mutating an array that may alias t with
		// count 1 would skip the copy the program expects.
		if t.Type.Maybe(types.TArr) && lb[t] < 2 {
			return true
		}
		return false
	case AddElem, AddNewElem:
		if t.Type.Maybe(types.TArr) && lb[t] < 2 {
			return true
		}
		return false
	case CallFunc, CallBuiltin, CallMethodD, CallMethodC, Ret, ThrowC,
		SideExit, ReqBind, PrintC, StPropSlot, StPropGeneric, EndInline,
		IterInitLocal, VerifyParam:
		// The value (or the whole frame) escapes.
		return true
	case StLoc:
		// Storing t itself makes its count frame-visible.
		return in.Args[0] == t
	default:
		return false
	}
}

func inExitStack(ex *ExitDesc, t *SSATmp) bool {
	if ex == nil {
		return false
	}
	for _, v := range ex.Stack {
		if v == t {
			return true
		}
	}
	for ic := ex.Inline; ic != nil; ic = ic.Parent {
		for _, v := range ic.CallerStack {
			if v == t {
				return true
			}
		}
		if ic.This == t {
			return true
		}
	}
	return false
}

// mayAliasRC reports whether two values could be the same counted
// heap entity.
func mayAliasRC(a, b *SSATmp) bool {
	if a == b {
		return true
	}
	ak := a.Type.Kind() & types.KCounted
	bk := b.Type.Kind() & types.KCounted
	if ak&bk == 0 {
		return false
	}
	// Fresh allocations are distinct from everything else defined
	// before them.
	if isFreshAlloc(a) || isFreshAlloc(b) {
		return false
	}
	return true
}

func isFreshAlloc(t *SSATmp) bool {
	if t.Def == nil {
		return false
	}
	switch t.Def.Op {
	case NewObj, NewArr, NewPackedArr, ConcatStr, ConvToStr:
		return true
	}
	return false
}
