// Package machine executes assembled Vasm translations against a
// deterministic cost model. It substitutes for native x86-64
// execution (see DESIGN.md): every compiler stage up to register
// allocation and code placement is real; the machine charges cycles
// per instruction, models an instruction cache and an instruction TLB
// with 4 KiB and 2 MiB pages, and calls runtime helpers natively the
// way HHVM's JITed code calls its C++ helpers.
package machine

import "repro/internal/vasm"

// Meter accumulates simulated cycles; it is shared with the
// interpreter so execution-mode comparisons are apples to apples.
type Meter struct {
	Cycles uint64
	// ByOp attributes machine cycles per vasm opcode (diagnostics).
	ByOp [64]uint64
}

// Charge adds cycles.
func (m *Meter) Charge(n uint64) { m.Cycles += n }

// ChargeOp attributes cycles to an opcode bucket.
func (m *Meter) ChargeOp(op vasm.Op, n uint64) {
	m.Cycles += n
	if int(op) < len(m.ByOp) {
		m.ByOp[op] += n
	}
}

// Instruction base costs (cycles).
func opCost(op vasm.Op) uint64 {
	switch op {
	case vasm.Nop:
		return 0
	case vasm.LdImm, vasm.Copy:
		return 1
	case vasm.LdLoc, vasm.LdStk, vasm.Reload:
		return 3 // L1 load
	case vasm.StLoc, vasm.Spill:
		return 2
	case vasm.GuardKind, vasm.GuardCls, vasm.GuardShape:
		return 2 // cmp+branch, predicted
	case vasm.AddI, vasm.SubI, vasm.NegI, vasm.CmpI:
		return 1
	case vasm.MulI:
		return 3
	case vasm.AddD, vasm.SubD, vasm.NegD, vasm.CmpD:
		return 3
	case vasm.MulD:
		return 4
	case vasm.DivD:
		return 12
	case vasm.ToBool, vasm.ToInt, vasm.ToDbl:
		return 2
	case vasm.IncRef, vasm.DecRef:
		return 3 // check + locked-ish add
	case vasm.ArrCount:
		return 3
	case vasm.ArrGetPkI:
		return 6 // bounds check + load
	case vasm.LdProp, vasm.StProp:
		return 4
	case vasm.LdThis:
		return 2
	case vasm.Helper:
		return 5 // call overhead; helper body charged separately
	case vasm.CallFunc, vasm.CallMethodD:
		return 26 // ActRec setup + frame push + call
	case vasm.CallBuiltin:
		return 14
	case vasm.CallMethodC:
		return 28
	case vasm.CountInc, vasm.ProfCallSite, vasm.ProfPropShape:
		return 12 // shared-counter increment
	case vasm.LdPropIC, vasm.StPropIC:
		return 6 // shape load + cache probe + slot access (hit cost)
	case vasm.Jmp:
		return 1
	case vasm.Jcc:
		return 1
	case vasm.JmpTable:
		return 4 // bounds check + table load + indirect branch
	case vasm.Ret:
		return 10 // epilogue + frame release entry
	case vasm.Exit, vasm.BindJmp:
		return 8
	default:
		return 1
	}
}

// instrCost is opCost extended to superinstructions, whose static
// cost is by definition the sum of their components' — fusion saves
// host dispatch work, never guest cycles.
func instrCost(in *vasm.Instr) uint64 {
	switch in.Op {
	case vasm.LdLocGK:
		return opCost(vasm.LdLoc) + opCost(vasm.GuardKind)
	case vasm.LdImmAddI:
		return opCost(vasm.LdImm) + opCost(vasm.AddI)
	case vasm.LdImmCmpI:
		return opCost(vasm.LdImm) + opCost(vasm.CmpI)
	case vasm.CmpIJcc:
		return opCost(vasm.CmpI) + opCost(vasm.Jcc)
	case vasm.CmpDJcc:
		return opCost(vasm.CmpD) + opCost(vasm.Jcc)
	case vasm.IncRefN:
		return uint64(len(in.Args)) * opCost(vasm.IncRef)
	case vasm.DecRefN:
		return uint64(len(in.Args)) * opCost(vasm.DecRef)
	default:
		return opCost(in.Op)
	}
}

// Extra penalty charged when a guard actually fails (pipeline flush +
// exit stub).
const guardFailPenalty = 14

// Helper body costs, matching the work the interpreter charges for
// the same operations (minus its dispatch overhead). A dense array —
// Helper ops run hundreds of times per request, so the lookup sits on
// the dispatch hot path where a map probe would cost more than the
// helper accounting itself.
var helperCost = [vasm.HelperCount]uint64{
	vasm.HConcat: 24, vasm.HBinop: 14, vasm.HEqAny: 8, vasm.HSameAny: 8,
	vasm.HDivNum: 10, vasm.HModInt: 8, vasm.HToStr: 18, vasm.HCmpStr: 8,
	vasm.HNewArr: 18, vasm.HNewPacked: 18, vasm.HAddElem: 12,
	vasm.HAddNewElem: 10, vasm.HArrGetGeneric: 10, vasm.HArrGetPackedMiss: 12,
	vasm.HArrSetLocal: 14, vasm.HArrAppendLocal: 10, vasm.HArrUnsetLocal: 12,
	vasm.HAKExistsLocal: 8, vasm.HIterInit: 12, vasm.HIterNext: 5,
	vasm.HIterKey: 4, vasm.HIterValue: 4, vasm.HIterFree: 3,
	vasm.HNewObj: 22, vasm.HLdPropGeneric: 10, vasm.HStPropGeneric: 10,
	vasm.HInstanceOf: 2, vasm.HVerifyParam: 5, vasm.HPrint: 14,
	vasm.HThrow: 30, vasm.HConvToBoolGeneric: 4, vasm.HConvToIntGeneric: 4,
	vasm.HConvToDblGeneric: 4,
}

// Method-dispatch costs: inline-cache hit vs full method lookup.
// instanceOfWalkCost is the extra cost of a by-name hierarchy walk
// when the bitwise instanceof fast path is unavailable.
const instanceOfWalkCost = 9

const (
	methodCacheHitCost = 4
	methodLookupCost   = 16
	callReturnCost     = 8
)

// Direct-chaining costs: a smashed bind jump is a single direct
// branch into the successor (vs the service-request round-trip
// charged as bindDispatchCost by the VM), plus a per-precondition
// recheck charge for the target's entry guards.
const (
	smashedJumpCost = 2
	chainGuardCost  = 1
)

// Shape-IC dynamic costs, charged on top of the static hit cost: a
// miss walks the shape's slot table and rewrites the cache line; a
// megamorphic probe falls through to the generic helper (call
// overhead + helper body, matching Helper + HLdPropGeneric).
const (
	icMissCost = 12
	icMegaCost = 15
)
