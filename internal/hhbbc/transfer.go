package hhbbc

import (
	"repro/internal/hhbc"
	"repro/internal/types"
)

// transfer abstractly executes one instruction over st. It returns
// explicit successor pcs (branch targets) and whether control can
// fall through to pc+1.
func transfer(u *hhbc.Unit, f *hhbc.Func, st *state, pc int) (succs []int, fall bool) {
	in := f.Instrs[pc]
	push := func(t types.Type) { st.stack = append(st.stack, t) }
	pop := func() types.Type {
		if len(st.stack) == 0 {
			return types.TCell
		}
		t := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return t
	}
	local := func(i int32) types.Type {
		if int(i) < len(st.locals) {
			return st.locals[i]
		}
		return types.TCell
	}
	setLocal := func(i int32, t types.Type) {
		if int(i) < len(st.locals) {
			st.locals[i] = t
		}
	}
	cget := func(t types.Type) types.Type {
		if t.Maybe(types.TUninit) {
			return types.FromKind(t.Kind()&^types.KUninit | types.KNull)
		}
		return t
	}

	switch in.Op {
	case hhbc.OpNop, hhbc.OpAssertRATL, hhbc.OpAssertRAStk, hhbc.OpIncProfCounter,
		hhbc.OpIterFree:

	case hhbc.OpInt:
		push(types.TInt)
	case hhbc.OpDouble:
		push(types.TDbl)
	case hhbc.OpString:
		push(types.TStr)
	case hhbc.OpTrue, hhbc.OpFalse:
		push(types.TBool)
	case hhbc.OpNull:
		push(types.TNull)

	case hhbc.OpPopC:
		pop()
	case hhbc.OpDup:
		t := pop()
		push(t)
		push(t)

	case hhbc.OpCGetL:
		push(cget(local(in.A)))
	case hhbc.OpCGetL2:
		top := pop()
		push(cget(local(in.A)))
		push(top)
	case hhbc.OpPopL:
		setLocal(in.A, pop())
	case hhbc.OpSetL:
		setLocal(in.A, st.stack[len(st.stack)-1])
	case hhbc.OpPushL:
		push(local(in.A))
		setLocal(in.A, types.TUninit)
	case hhbc.OpUnsetL:
		setLocal(in.A, types.TUninit)
	case hhbc.OpIsTypeL:
		push(types.TBool)
	case hhbc.OpIncDecL:
		t := local(in.A)
		var nt types.Type
		switch {
		case t.SubtypeOf(types.TInt):
			nt = types.TInt
		case t.SubtypeOf(types.TDbl):
			nt = types.TDbl
		case t.SubtypeOf(types.TNull.Union(types.TUninit)):
			nt = types.TInt.Union(types.TNull)
		default:
			nt = types.TNum.Union(types.TNull)
		}
		setLocal(in.A, nt)
		if in.B == hhbc.PostInc || in.B == hhbc.PostDec {
			push(cget(t))
		} else {
			push(nt)
		}

	case hhbc.OpAdd, hhbc.OpSub, hhbc.OpMul:
		b, a := pop(), pop()
		switch {
		case a.SubtypeOf(types.TInt) && b.SubtypeOf(types.TInt):
			push(types.TInt)
		case a.SubtypeOf(types.TNum) && b.SubtypeOf(types.TNum):
			if a.Maybe(types.TDbl) || b.Maybe(types.TDbl) {
				push(types.TNum)
			} else {
				push(types.TInt)
			}
		case a.SubtypeOf(types.TArr) && b.SubtypeOf(types.TArr):
			push(types.TArr)
		default:
			push(types.TInitCell)
		}
	case hhbc.OpDiv:
		pop()
		pop()
		push(types.TNum)
	case hhbc.OpMod:
		pop()
		pop()
		push(types.TInt)
	case hhbc.OpConcat:
		pop()
		pop()
		push(types.TStr)
	case hhbc.OpNeg:
		a := pop()
		if a.SubtypeOf(types.TDbl) {
			push(types.TDbl)
		} else if a.SubtypeOf(types.TInt) {
			push(types.TInt)
		} else {
			push(types.TNum)
		}

	case hhbc.OpGt, hhbc.OpGte, hhbc.OpLt, hhbc.OpLte, hhbc.OpEq, hhbc.OpNeq,
		hhbc.OpSame, hhbc.OpNSame, hhbc.OpNot, hhbc.OpCastBool:
		for i := 0; i < in.Op.NumPop(); i++ {
			pop()
		}
		push(types.TBool)
	case hhbc.OpCastInt:
		pop()
		push(types.TInt)
	case hhbc.OpCastDouble:
		pop()
		push(types.TDbl)
	case hhbc.OpCastString:
		pop()
		push(types.TStr)

	case hhbc.OpJmp:
		return []int{int(in.A)}, false
	case hhbc.OpJmpZ, hhbc.OpJmpNZ:
		pop()
		return []int{int(in.A)}, true
	case hhbc.OpSwitch:
		pop()
		sw := f.Switches[in.A]
		out := append([]int(nil), sw.Targets...)
		out = append(out, sw.Default)
		return out, false
	case hhbc.OpRetC:
		pop()
		return nil, false
	case hhbc.OpThrow:
		pop()
		return nil, false
	case hhbc.OpCatch:
		push(types.TObj)
	case hhbc.OpFatal:
		return nil, false

	case hhbc.OpNewArray:
		push(types.ArrOfKind(types.ArrayMixed))
	case hhbc.OpNewPackedArray:
		for i := 0; i < int(in.A); i++ {
			pop()
		}
		push(types.ArrOfKind(types.ArrayPacked))
	case hhbc.OpAddElemC:
		pop()
		pop()
		pop()
		push(types.TArr)
	case hhbc.OpAddNewElemC:
		pop()
		a := pop()
		if a.SubtypeOf(types.TArr) {
			push(a)
		} else {
			push(types.TArr)
		}
	case hhbc.OpArrIdx:
		pop()
		pop()
		push(types.TInitCell)
	case hhbc.OpArrGetL:
		pop()
		push(types.TInitCell)
	case hhbc.OpArrSetL:
		pop()
		pop()
		setLocal(in.A, types.TArr)
	case hhbc.OpArrAppendL:
		pop()
		t := local(in.A)
		if t.SubtypeOf(types.TArr) && t.IsSpecialized() {
			setLocal(in.A, t)
		} else {
			setLocal(in.A, types.TArr)
		}
	case hhbc.OpArrUnsetL:
		pop()
		setLocal(in.A, types.TArr)
	case hhbc.OpAKExistsL:
		pop()
		push(types.TBool)

	case hhbc.OpIterInitL:
		return []int{int(in.B)}, true
	case hhbc.OpIterNext:
		return []int{int(in.B)}, true
	case hhbc.OpIterKey:
		push(types.FromKind(types.KInt | types.KStr))
	case hhbc.OpIterValue:
		push(types.TInitCell)

	case hhbc.OpFCallD, hhbc.OpFCallObjMethodD:
		n := int(in.A)
		if in.Op == hhbc.OpFCallObjMethodD {
			n++
		}
		for i := 0; i < n; i++ {
			pop()
		}
		push(types.TInitCell)
	case hhbc.OpFCallBuiltin:
		for i := 0; i < int(in.A); i++ {
			pop()
		}
		push(builtinResult(u.Strings[in.B]))

	case hhbc.OpNewObjD:
		push(types.ObjOfClass(u.Strings[in.A], true))
	case hhbc.OpThis:
		if f.Class != "" {
			push(types.ObjOfClass(f.Class, false))
		} else {
			push(types.TObj)
		}
	case hhbc.OpCGetPropD:
		pop()
		push(types.TInitCell)
	case hhbc.OpSetPropD:
		v := pop()
		pop()
		push(v)
	case hhbc.OpInstanceOfD:
		pop()
		push(types.TBool)
	case hhbc.OpVerifyParamType:
		idx := int(in.A)
		ht := hintType(f.Params[idx])
		nt := local(in.A).Intersect(ht)
		if nt.IsBottom() {
			nt = ht
		}
		setLocal(in.A, nt)
		if idx < len(f.ParamTypes) {
			f.ParamTypes[idx] = ht
		}
	case hhbc.OpPrint:
		pop()
		push(types.TInt)
	}
	return nil, true
}

func hintType(p hhbc.Param) types.Type {
	var t types.Type
	switch p.TypeHint {
	case "int":
		t = types.TInt
	case "float":
		t = types.TDbl
	case "string":
		t = types.TStr
	case "bool":
		t = types.TBool
	case "array":
		t = types.TArr
	case "":
		return types.TCell
	default:
		t = types.ObjOfClass(p.TypeHint, false)
	}
	if p.Nullable {
		t = t.Union(types.TNull)
	}
	return t
}

func builtinResult(name string) types.Type {
	switch name {
	case "count", "strlen", "intval", "ord":
		return types.TInt
	case "floatval", "sqrt", "floor", "ceil", "round":
		return types.TDbl
	case "strval", "implode", "substr", "strtoupper", "strtolower",
		"strrev", "str_repeat", "chr":
		return types.TStr
	case "is_int", "is_float", "is_string", "is_array", "is_bool",
		"is_null", "is_numeric", "in_array", "array_key_exists":
		return types.TBool
	case "array_keys", "array_values":
		return types.ArrOfKind(types.ArrayPacked)
	default:
		return types.TInitCell
	}
}
