package vasm_test

import (
	"testing"

	"repro/internal/types"
	"repro/internal/vasm"
)

func block(instrs ...vasm.Instr) *vasm.Unit {
	return &vasm.Unit{Blocks: []*vasm.Block{{ID: 0, Instrs: instrs}}}
}

func ops(u *vasm.Unit) []vasm.Op {
	var out []vasm.Op
	for _, b := range u.Blocks {
		for i := range b.Instrs {
			out = append(out, b.Instrs[i].Op)
		}
	}
	return out
}

func eqOps(got, want []vasm.Op) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFusePatterns: each fusion pattern collapses to its
// superinstruction with the component payloads preserved.
func TestFusePatterns(t *testing.T) {
	inv := vasm.InvalidReg
	u := block(
		vasm.Instr{Op: vasm.LdLoc, D: 1, A: inv, B: inv, I64: 3},
		vasm.Instr{Op: vasm.GuardKind, D: inv, A: 1, B: inv, TypeParam: types.TInt, Target1: 7},
		vasm.Instr{Op: vasm.LdImm, D: 2, A: inv, B: inv, I64: 5},
		vasm.Instr{Op: vasm.AddI, D: 3, A: 1, B: 2},
		vasm.Instr{Op: vasm.CmpI, D: 4, A: 3, B: 1, I64: 2},
		vasm.Instr{Op: vasm.Jcc, D: inv, A: 4, B: inv, I64: 0x100, Target1: 1, Target2: 2},
	)
	if n := vasm.Fuse(u); n != 3 {
		t.Fatalf("eliminated %d instructions, want 3", n)
	}
	want := []vasm.Op{vasm.LdLocGK, vasm.LdImmAddI, vasm.CmpIJcc}
	if got := ops(u); !eqOps(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	ins := u.Blocks[0].Instrs
	if ins[0].I64 != 3 || ins[0].TypeParam != types.TInt || ins[0].Target1 != 7 {
		t.Errorf("LdLocGK lost payload: %+v", ins[0])
	}
	// LdImmAddI packs the immediate pool index above bit 16 and the
	// materialized register in Target2.
	if ins[1].I64>>16 != 5 || ins[1].Target2 != 2 || ins[1].D != 3 {
		t.Errorf("LdImmAddI lost payload: %+v", ins[1])
	}
	// CmpIJcc keeps the compare condition and Jcc's inversion bit.
	if ins[2].I64&0xff != 2 || ins[2].I64&0x100 == 0 || ins[2].Target1 != 1 || ins[2].Target2 != 2 {
		t.Errorf("CmpIJcc lost payload: %+v", ins[2])
	}
}

// TestFuseRefcountRuns: adjacent IncRef/DecRef runs collapse to one
// N-ary op per run; single ops stay unfused.
func TestFuseRefcountRuns(t *testing.T) {
	inv := vasm.InvalidReg
	u := block(
		vasm.Instr{Op: vasm.IncRef, D: inv, A: 1, B: inv},
		vasm.Instr{Op: vasm.IncRef, D: inv, A: 2, B: inv},
		vasm.Instr{Op: vasm.IncRef, D: inv, A: 3, B: inv},
		vasm.Instr{Op: vasm.DecRef, D: inv, A: 4, B: inv},
		vasm.Instr{Op: vasm.Nop, D: inv, A: inv, B: inv},
		vasm.Instr{Op: vasm.DecRef, D: inv, A: 5, B: inv},
		vasm.Instr{Op: vasm.DecRef, D: inv, A: 6, B: inv},
	)
	if n := vasm.Fuse(u); n != 3 {
		t.Fatalf("eliminated %d instructions, want 3", n)
	}
	want := []vasm.Op{vasm.IncRefN, vasm.DecRef, vasm.Nop, vasm.DecRefN}
	if got := ops(u); !eqOps(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	ins := u.Blocks[0].Instrs
	if len(ins[0].Args) != 3 || ins[0].Args[0] != 1 || ins[0].Args[2] != 3 {
		t.Errorf("IncRefN args: %+v", ins[0].Args)
	}
	if len(ins[3].Args) != 2 || ins[3].Args[0] != 5 {
		t.Errorf("DecRefN args: %+v", ins[3].Args)
	}
}

// TestFuseRequiresDataflowAdjacency: pairs that are stream-adjacent
// but not dataflow-connected must not fuse, and fusion never crosses
// block boundaries.
func TestFuseRequiresDataflowAdjacency(t *testing.T) {
	inv := vasm.InvalidReg
	u := &vasm.Unit{Blocks: []*vasm.Block{
		{ID: 0, Instrs: []vasm.Instr{
			// GuardKind checks a different register than LdLoc wrote.
			{Op: vasm.LdLoc, D: 1, A: inv, B: inv, I64: 0},
			{Op: vasm.GuardKind, D: inv, A: 2, B: inv, TypeParam: types.TInt},
			// CmpI's result is not what Jcc branches on.
			{Op: vasm.CmpI, D: 3, A: 1, B: 2, I64: 1},
			{Op: vasm.Jcc, D: inv, A: 4, B: inv, Target1: 1, Target2: 0},
		}},
		// Block boundary between LdImm and AddI: no fusion window.
		{ID: 1, Instrs: []vasm.Instr{{Op: vasm.LdImm, D: 5, A: inv, B: inv, I64: 0}}},
		{ID: 2, Instrs: []vasm.Instr{{Op: vasm.AddI, D: 6, A: 5, B: 5}}},
	}}
	if n := vasm.Fuse(u); n != 0 {
		t.Fatalf("eliminated %d instructions, want 0", n)
	}
}

// TestFusedOpsNeverSmashable: chaining smashes link slots in place,
// so no superinstruction may be a smash target.
func TestFusedOpsNeverSmashable(t *testing.T) {
	for _, op := range []vasm.Op{vasm.LdLocGK, vasm.LdImmAddI, vasm.LdImmCmpI,
		vasm.CmpIJcc, vasm.CmpDJcc, vasm.IncRefN, vasm.DecRefN} {
		if op.Smashable() {
			t.Errorf("%s is smashable", op)
		}
	}
}
