package vasm

// Dispatch fusion (PR 8). Fuse is a post-regalloc peephole pass that
// rewrites hot adjacent instruction pairs (and IncRef/DecRef runs)
// into single superinstructions, in the spirit of OCamlJIT-style
// opcode fusion: the machine dispatches once where it used to
// dispatch twice. Fusion never changes observable behavior — a
// superinstruction performs every component's effect in component
// order, including all destination writes, and its encoded size and
// static cost are defined as the sums of its components' (see
// mcode.ComponentSizes and the machine cost model), so code-cache
// addresses, icache/iTLB behavior, and guest cycle totals are
// bit-identical to unfused code.
//
// The pass runs after Layout and Allocate: operands are physical (or
// spill) registers and blocks are final, so fusion windows are exact
// adjacency in the encoded stream. Pairs never cross block
// boundaries (all control transfers land on block starts), and no
// fused opcode is smashable.

// Fuse rewrites fusable adjacent pairs in every block of u into
// superinstructions and returns the number of instructions
// eliminated. Greedy left-to-right, non-overlapping.
func Fuse(u *Unit) int {
	fused := 0
	for _, b := range u.Blocks {
		ins := b.Instrs
		out := ins[:0]
		for i := 0; i < len(ins); i++ {
			cur := ins[i]
			// IncRef/DecRef runs of >= 2 collapse to one N-ary op.
			if cur.Op == IncRef || cur.Op == DecRef {
				j := i + 1
				for j < len(ins) && ins[j].Op == cur.Op {
					j++
				}
				if n := j - i; n >= 2 {
					regs := make([]Reg, 0, n)
					for _, c := range ins[i:j] {
						regs = append(regs, c.A)
					}
					op := IncRefN
					if cur.Op == DecRef {
						op = DecRefN
					}
					out = append(out, Instr{Op: op, D: InvalidReg, A: InvalidReg, B: InvalidReg, Args: regs})
					fused += n - 1
					i = j - 1
					continue
				}
				out = append(out, cur)
				continue
			}
			if i+1 < len(ins) {
				if f, ok := fusePair(&cur, &ins[i+1]); ok {
					out = append(out, f)
					fused++
					i++
					continue
				}
			}
			out = append(out, cur)
		}
		b.Instrs = out
	}
	return fused
}

// fusePair returns the superinstruction for the adjacent pair (a, b)
// if they match a fusion pattern.
func fusePair(a, b *Instr) (Instr, bool) {
	switch {
	case a.Op == LdLoc && b.Op == GuardKind && b.A == a.D:
		// Load a local and guard the loaded value's kind.
		return Instr{
			Op: LdLocGK, D: a.D, A: InvalidReg, B: InvalidReg,
			I64: a.I64, TypeParam: b.TypeParam, Target1: b.Target1,
		}, true
	case a.Op == LdImm && b.Op == AddI && (b.A == a.D || b.B == a.D):
		// Materialize a constant consumed immediately by integer add.
		return Instr{
			Op: LdImmAddI, D: b.D, A: b.A, B: b.B,
			I64: a.I64 << 16, Target2: int(a.D),
		}, true
	case a.Op == LdImm && b.Op == CmpI && (b.A == a.D || b.B == a.D):
		return Instr{
			Op: LdImmCmpI, D: b.D, A: b.A, B: b.B,
			I64: (b.I64 & 0xff) | (a.I64 << 16), Target2: int(a.D),
		}, true
	case (a.Op == CmpI || a.Op == CmpD) && b.Op == Jcc && b.A == a.D:
		// Compare-and-branch; keep Jcc's inversion bit (0x100) set by
		// jump optimization alongside the compare condition.
		op := CmpIJcc
		if a.Op == CmpD {
			op = CmpDJcc
		}
		return Instr{
			Op: op, D: a.D, A: a.A, B: a.B,
			I64:     (a.I64 & 0xff) | (b.I64 & 0x100),
			Target1: b.Target1, Target2: b.Target2,
		}, true
	}
	return Instr{}, false
}
