package fleet

import (
	"testing"

	"repro/internal/faultinject"
)

// TestFleetVerifyCleanRun: with verification sampling on and no
// faults injected, the shadow comparisons all agree, nothing is
// quarantined, and the verify counters are deterministic.
func TestFleetVerifyCleanRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Minutes = 6
	cfg.VerifySample = 0.2

	run := func() *Result {
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Verify.Sampled == 0 || a.Verify.ShadowRuns == 0 {
		t.Fatalf("verification sampled nothing: %+v", a.Verify)
	}
	if a.Verify.Audited == 0 {
		t.Fatalf("auditor did no work: %+v", a.Verify)
	}
	if a.Verify.Divergences != 0 || a.Verify.Quarantined != 0 {
		t.Fatalf("clean fleet produced divergences: %+v", a.Verify)
	}
	if a.OutputMismatches != 0 {
		t.Fatalf("clean fleet had %d output mismatches", a.OutputMismatches)
	}
	if a.Verify != b.Verify {
		t.Fatalf("verify counters differ across identical runs:\n a=%+v\n b=%+v", a.Verify, b.Verify)
	}
}

// TestFleetVerifyDivergenceDemotesHost: inject silent code-byte
// corruption fleet-wide with full shadow sampling — the monitors must
// catch it (audit checksum or shadow divergence), quarantine culprit
// translations, and any host with a verified divergence must be
// pushed down the degradation ladder.
func TestFleetVerifyDivergenceDemotesHost(t *testing.T) {
	cfg := tinyConfig()
	cfg.Hosts = 2
	cfg.Minutes = 6
	cfg.VerifySample = 1
	var fi faultinject.Config
	fi.Seed = 11
	fi.Rates[faultinject.CodeCorrupt] = 0.002
	cfg.JIT.Faults = faultinject.New(fi)

	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fired := cfg.JIT.Faults.Fired(faultinject.CodeCorrupt)
	if fired == 0 {
		t.Skip("corruption injection never fired at this rate/traffic")
	}
	v := res.Verify
	if v.Corruptions+v.Divergences == 0 {
		t.Fatalf("injected %d corruptions, verification detected none: %+v", fired, v)
	}
	if v.Divergences > 0 {
		if v.Replays == 0 {
			t.Fatalf("divergences were never bisected: %+v", v)
		}
		demoted := false
		for _, lvl := range res.MaxDegradePerHost {
			if lvl > 0 {
				demoted = true
			}
		}
		if !demoted {
			t.Fatalf("verified divergence but no host was demoted: %+v", res.MaxDegradePerHost)
		}
	}
}
