package machine

import (
	"strings"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/mcode"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vasm"
)

// runHelper implements the out-of-line runtime helpers. Reference
// conventions match the HHIR lowering: results are owned; helpers do
// not consume argument references unless documented.
func (m *Machine) runHelper(act *activation, hid vasm.HelperID, extra int64, in *vasm.Instr) (runtime.Value, error) {
	h := m.Env.Heap
	fr := act.fr
	arg := func(i int) runtime.Value { return act.get(in.Args[i]) }

	switch hid {
	case vasm.HConcat:
		return runtime.Concat(arg(0), arg(1)), nil
	case vasm.HBinop:
		return m.binop(hhbc.Op(extra), arg(0), arg(1))
	case vasm.HEqAny:
		r := runtime.LooseEq(arg(0), arg(1))
		return runtime.Bool(r == (extra == 0)), nil
	case vasm.HSameAny:
		r := runtime.StrictEq(arg(0), arg(1))
		return runtime.Bool(r == (extra == 0)), nil
	case vasm.HDivNum:
		return runtime.Div(arg(0), arg(1))
	case vasm.HModInt:
		return runtime.Mod(arg(0), arg(1))
	case vasm.HToStr:
		v := arg(0)
		if v.Kind == types.KStr {
			h.IncRef(v)
			return v, nil
		}
		return runtime.NewStr(v.ToString()), nil
	case vasm.HCmpStr:
		c := runtime.Cmp(arg(0), arg(1))
		return runtime.Bool(cmpI(extra&0xff, int64(c), 0)), nil
	case vasm.HNewArr:
		return runtime.ArrV(runtime.NewMixed()), nil
	case vasm.HNewPacked:
		elems := make([]runtime.Value, len(in.Args))
		for i := range in.Args {
			elems[i] = arg(i)
		}
		return runtime.ArrV(runtime.NewPacked(elems)), nil
	case vasm.HAddElem:
		arrv, key, val := arg(0), arg(1), arg(2)
		if arrv.Kind != types.KArr {
			return runtime.Null(), runtime.NewError("AddElem on non-array")
		}
		return runtime.ArrV(arrv.A.Set(h, key, val)), nil
	case vasm.HAddNewElem:
		arrv, val := arg(0), arg(1)
		if arrv.Kind != types.KArr {
			return runtime.Null(), runtime.NewError("AddNewElem on non-array")
		}
		return runtime.ArrV(arrv.A.Append(h, val)), nil
	case vasm.HArrGetGeneric:
		arrv, key := arg(0), arg(1)
		if arrv.Kind != types.KArr {
			return runtime.Null(), runtime.NewError("cannot index non-array")
		}
		el, _ := arrv.A.Get(key)
		if el.Kind == types.KUninit {
			el = runtime.Null()
		}
		h.IncRef(el)
		return el, nil
	case vasm.HArrSetLocal:
		key, val := arg(0), arg(1)
		lv := fr.Locals[extra]
		if lv.Kind == types.KUninit || lv.Kind == types.KNull {
			lv = runtime.ArrV(runtime.NewMixed())
			fr.Locals[extra] = lv
		}
		if lv.Kind != types.KArr {
			h.DecRef(val)
			return runtime.Null(), runtime.NewError("cannot write index of non-array")
		}
		fr.Locals[extra] = runtime.ArrV(lv.A.Set(h, key, val))
		return runtime.Null(), nil
	case vasm.HArrAppendLocal:
		val := arg(0)
		lv := fr.Locals[extra]
		if lv.Kind == types.KUninit || lv.Kind == types.KNull {
			lv = runtime.ArrV(runtime.NewPacked(nil))
			fr.Locals[extra] = lv
		}
		if lv.Kind != types.KArr {
			h.DecRef(val)
			return runtime.Null(), runtime.NewError("cannot append to non-array")
		}
		fr.Locals[extra] = runtime.ArrV(lv.A.Append(h, val))
		return runtime.Null(), nil
	case vasm.HArrUnsetLocal:
		key := arg(0)
		lv := fr.Locals[extra]
		if lv.Kind == types.KArr {
			fr.Locals[extra] = runtime.ArrV(lv.A.Remove(h, key))
		}
		return runtime.Null(), nil
	case vasm.HAKExistsLocal:
		key := arg(0)
		lv := fr.Locals[extra]
		ok := false
		if lv.Kind == types.KArr {
			_, ok = lv.A.Get(key)
		}
		return runtime.Bool(ok), nil

	case vasm.HIterInit:
		iter, slot := vasm.UnpackIterSlot(extra)
		lv := fr.Locals[slot]
		if lv.Kind != types.KArr || lv.A.Len() == 0 {
			return runtime.Bool(false), nil
		}
		h.IncRef(lv)
		setFrameIter(fr, iter, runtime.NewIter(lv.A))
		return runtime.Bool(true), nil
	case vasm.HIterNext:
		it := frameIter(fr, int32(extra))
		if it != nil && it.Next() {
			return runtime.Bool(true), nil
		}
		if it != nil {
			h.DecRef(runtime.ArrV(it.Arr()))
			setFrameIter(fr, int32(extra), nil)
		}
		return runtime.Bool(false), nil
	case vasm.HIterKey:
		it := frameIter(fr, int32(extra))
		k := it.Key()
		h.IncRef(k)
		return k, nil
	case vasm.HIterValue:
		it := frameIter(fr, int32(extra))
		v := it.Val()
		if v.Kind == types.KUninit {
			v = runtime.Null()
		}
		h.IncRef(v)
		return v, nil
	case vasm.HIterFree:
		it := frameIter(fr, int32(extra))
		if it != nil {
			h.DecRef(runtime.ArrV(it.Arr()))
			setFrameIter(fr, int32(extra), nil)
		}
		return runtime.Null(), nil

	case vasm.HNewObj:
		cls, ok := m.Env.Classes[in.Str]
		if !ok {
			return runtime.Null(), runtime.NewError("class %s not found", in.Str)
		}
		return runtime.ObjV(m.Env.NewInstance(cls)), nil
	case vasm.HLdPropGeneric:
		ov := arg(0)
		if ov.Kind != types.KObj {
			return runtime.Null(), runtime.NewError("property access on non-object")
		}
		m.Shapes.GenericPropCalls.Add(1)
		return runtime.GetPropNamed(h, ov.O, in.Str), nil
	case vasm.HStPropGeneric:
		ov, val := arg(0), arg(1)
		if ov.Kind != types.KObj {
			h.DecRef(val)
			return runtime.Null(), runtime.NewError("property write on non-object")
		}
		m.Shapes.GenericPropCalls.Add(1)
		if err := runtime.SetPropNamed(h, ov.O, in.Str, val); err != nil {
			return runtime.Null(), runtime.NewError("%s", err.Error())
		}
		return runtime.Null(), nil
	case vasm.HInstanceOf:
		v := arg(0)
		if extra > 0 {
			// Bitwise instanceof: one bit test against the receiver's
			// ancestor bitset (base helper cost only).
			r := v.Kind == types.KObj && v.O.Class.HasAncestorID(int(extra-1))
			return runtime.Bool(r), nil
		}
		// Slow path: hierarchy walk by name.
		m.Meter.Charge(instanceOfWalkCost)
		r := v.Kind == types.KObj && v.O.Class.IsSubclassOf(in.Str)
		return runtime.Bool(r), nil
	case vasm.HVerifyParam:
		return runtime.Null(), m.verifyParam(fr, int(extra), in.Str)
	case vasm.HPrint:
		if m.Env.Out != nil {
			_, _ = m.Env.Out.Write([]byte(arg(0).ToString()))
		}
		return runtime.Int(1), nil
	case vasm.HThrow:
		v := arg(0)
		if v.Kind != types.KObj {
			h.DecRef(v)
			return runtime.Null(), runtime.NewError("can only throw objects")
		}
		return runtime.Null(), runtime.Thrown(v.O)
	case vasm.HConvToBoolGeneric:
		return runtime.Bool(arg(0).Bool()), nil
	case vasm.HConvToIntGeneric:
		return runtime.Int(arg(0).ToInt()), nil
	case vasm.HConvToDblGeneric:
		return runtime.Dbl(arg(0).ToDbl()), nil
	default:
		return runtime.Null(), runtime.NewError("machine: unknown helper %d", hid)
	}
}

// binop implements BinopGeneric.
func (m *Machine) binop(op hhbc.Op, a, b runtime.Value) (runtime.Value, error) {
	switch op {
	case hhbc.OpAdd:
		return runtime.Add(m.Env.Heap, a, b)
	case hhbc.OpSub:
		return runtime.Sub(a, b)
	case hhbc.OpMul:
		return runtime.Mul(a, b)
	case hhbc.OpDiv:
		return runtime.Div(a, b)
	case hhbc.OpMod:
		return runtime.Mod(a, b)
	case hhbc.OpNeg:
		if a.Kind == types.KDbl {
			return runtime.Dbl(-a.D), nil
		}
		return runtime.Int(-a.ToInt()), nil
	case hhbc.OpGt:
		return runtime.Bool(runtime.Cmp(a, b) > 0), nil
	case hhbc.OpGte:
		return runtime.Bool(runtime.Cmp(a, b) >= 0), nil
	case hhbc.OpLt:
		return runtime.Bool(runtime.Cmp(a, b) < 0), nil
	case hhbc.OpLte:
		return runtime.Bool(runtime.Cmp(a, b) <= 0), nil
	case hhbc.OpEq:
		return runtime.Bool(runtime.LooseEq(a, b)), nil
	case hhbc.OpNeq:
		return runtime.Bool(!runtime.LooseEq(a, b)), nil
	default:
		return runtime.Null(), runtime.NewError("machine: bad generic binop %s", op)
	}
}

// verifyParam re-checks a shallow type hint against a frame slot. It
// must not consult fr.Fn (the slot may belong to an inlined callee).
func (m *Machine) verifyParam(fr *interp.Frame, slot int, hint string) error {
	nullable := strings.HasPrefix(hint, "?")
	hint = strings.TrimPrefix(hint, "?")
	v := fr.Locals[slot]
	if nullable && v.IsNull() {
		return nil
	}
	ok := false
	switch hint {
	case "int":
		ok = v.Kind == types.KInt
	case "float":
		ok = v.Kind == types.KDbl || v.Kind == types.KInt
		if v.Kind == types.KInt {
			fr.Locals[slot] = runtime.Dbl(float64(v.I))
		}
	case "string":
		ok = v.Kind == types.KStr
	case "bool":
		ok = v.Kind == types.KBool
	case "array":
		ok = v.Kind == types.KArr
	case "":
		ok = true
	default:
		ok = v.Kind == types.KObj && v.O.Class.IsSubclassOf(hint)
	}
	if !ok {
		return runtime.NewError("argument at slot %d must be of type %s, %s given",
			slot, hint, v.Type())
	}
	return nil
}

// frameIter / setFrameIter manipulate the frame's iterator slots.
func frameIter(fr *interp.Frame, id int32) *runtime.Iter {
	if int(id) < len(fr.Iters) {
		return fr.Iters[id]
	}
	return nil
}

func setFrameIter(fr *interp.Frame, id int32, it *runtime.Iter) {
	for int(id) >= len(fr.Iters) {
		fr.Iters = append(fr.Iters, nil)
	}
	fr.Iters[id] = it
}

// takeArgs copies the call's argument registers into a pooled scratch
// slice (returned to the free list with putArgs once the callee has
// consumed it). The list is a stack because guest calls nest.
func (m *Machine) takeArgs(act *activation, regs []vasm.Reg, skip int) []runtime.Value {
	var buf []runtime.Value
	if k := len(m.argBufs); k > 0 {
		buf = m.argBufs[k-1][:0]
		m.argBufs = m.argBufs[:k-1]
	}
	for _, r := range regs[skip:] {
		buf = append(buf, act.get(r))
	}
	return buf
}

func (m *Machine) putArgs(buf []runtime.Value) {
	m.argBufs = append(m.argBufs, buf[:0])
}

// callHint reads the call site's smashed callee link, if fresh.
func (m *Machine) callHint(code *mcode.Code, ip int) ChainTarget {
	if !code.Chainable || m.Epoch == nil {
		return nil
	}
	l := code.LoadLink(ip)
	if l == nil {
		return nil
	}
	if l.Epoch != m.Epoch.Load() {
		m.Chain.StaleLinks.Add(1)
		return nil
	}
	t, _ := l.Target.(ChainTarget)
	return t
}

// smashCall binds a direct call site to the callee prologue
// translation the dispatcher just entered, so the next call transfers
// into it without a Lookup.
func (m *Machine) smashCall(code *mcode.Code, ip int, entered ChainTarget) {
	if entered == nil || !code.Chainable || m.Epoch == nil {
		return
	}
	if cc := entered.ChainCode(); cc == nil || !cc.Chainable {
		return
	}
	epoch := m.Epoch.Load()
	if l := code.LoadLink(ip); l != nil && l.Target == entered && l.Epoch == epoch {
		return // already bound to this target
	}
	code.StoreLink(ip, &mcode.Link{Epoch: epoch, Target: entered})
	m.Chain.BindsSmashed.Add(1)
}

// runCall dispatches guest calls from JITed code. Calls consume the
// argument references (and for methods, NOT the receiver's — the
// caller releases it, matching the interpreter). Direct call sites
// (CallFunc / CallMethodD) are smash sites: the first dispatch binds
// them to the callee's prologue translation.
func (m *Machine) runCall(code *mcode.Code, ip int, act *activation, in *vasm.Instr) (runtime.Value, error) {
	env := m.Env
	switch in.Op {
	case vasm.CallFunc:
		args := m.takeArgs(act, in.Args, 0)
		f := env.Unit.Funcs[in.I64]
		if m.Counters != nil {
			m.Counters.RecordCall(act.fr.Fn.ID, f.ID)
		}
		ret, entered, err := m.CallGuest(f, nil, args, m.callHint(code, ip))
		m.smashCall(code, ip, entered)
		m.putArgs(args)
		return ret, err
	case vasm.CallBuiltin:
		args := m.takeArgs(act, in.Args, 0)
		if b, ok := runtime.LookupBuiltin(in.Str); ok {
			m.Meter.Charge(b.Cost)
			ctx := &runtime.BuiltinCtx{Heap: env.Heap, Out: env.Out}
			ret, err := b.Fn(ctx, args)
			for _, a := range args {
				env.Heap.DecRef(a)
			}
			m.putArgs(args)
			return ret, err
		}
		// A user function shadowing an unresolved direct call.
		if f, ok := env.Unit.FuncByName(in.Str); ok {
			ret, _, err := m.CallGuest(f, nil, args, nil)
			m.putArgs(args)
			return ret, err
		}
		for _, a := range args {
			env.Heap.DecRef(a)
		}
		m.putArgs(args)
		return runtime.Null(), runtime.NewError("call to undefined function %s()", in.Str)
	case vasm.CallMethodD:
		obj := act.get(in.Args[0])
		args := m.takeArgs(act, in.Args, 1)
		f := env.Unit.Funcs[in.I64]
		if m.Counters != nil {
			m.Counters.RecordCall(act.fr.Fn.ID, f.ID)
		}
		ret, entered, err := m.CallGuest(f, obj.O, args, m.callHint(code, ip))
		m.smashCall(code, ip, entered)
		m.putArgs(args)
		return ret, err
	case vasm.CallMethodC:
		obj := act.get(in.Args[0])
		args := m.takeArgs(act, in.Args, 1)
		if obj.Kind != types.KObj {
			for _, a := range args {
				env.Heap.DecRef(a)
			}
			m.putArgs(args)
			return runtime.Null(), runtime.NewError("method call on non-object")
		}
		// Inline cache: monomorphic per call site (site -1 = caching
		// disabled, full lookup every call).
		var funcID int
		if ent, ok := m.methodCache[in.I64]; in.I64 >= 0 && ok && ent.cls == obj.O.Class {
			m.Meter.Charge(methodCacheHitCost)
			funcID = ent.funcID
		} else {
			m.Meter.Charge(methodLookupCost)
			id, ok := obj.O.Class.LookupMethod(in.Str)
			if !ok {
				for _, a := range args {
					env.Heap.DecRef(a)
				}
				m.putArgs(args)
				if in.Str == "__construct" {
					return runtime.Null(), nil
				}
				return runtime.Null(), runtime.NewError("call to undefined method %s::%s()",
					obj.O.Class.Name, in.Str)
			}
			if in.I64 >= 0 {
				m.methodCache[in.I64] = methodCacheEnt{cls: obj.O.Class, funcID: id}
			}
			funcID = id
		}
		f := env.Unit.Funcs[funcID]
		if m.Counters != nil {
			m.Counters.RecordCall(act.fr.Fn.ID, f.ID)
		}
		ret, _, err := m.CallGuest(f, obj.O, args, nil)
		m.putArgs(args)
		return ret, err
	}
	return runtime.Null(), runtime.NewError("machine: bad call op")
}
