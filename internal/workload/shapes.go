package workload

// Shape-polymorphism workload family (DESIGN.md §14): property-access
// sites spanning the shape-speculation ladder. shape_mono is the
// tentpole case — two classes with identical flattened layouts, so the
// hot access sites are class-polymorphic but shape-monomorphic and
// compile to a single shape guard plus fixed-slot accesses. shape_poly
// spreads accesses over three distinct layouts with skewed popularity
// (the polymorphic inline cache's bread and butter), shape_mega over
// eight (past IC capacity, exercising the megamorphic generic
// fallback), and shape_dynamic grows and retypes shapes at runtime
// with undeclared properties and int/double slot ping-pong.

// shapeMono: PointA and PointB flatten to the same (x, y, tag) layout,
// so reads and writes in manhattan/shift see one shape even though the
// receiver class alternates every iteration.
const shapeMono = `
class PointA {
  public $x = 0;
  public $y = 0;
  public $tag = "";
  function __construct($x, $y, $t) { $this->x = $x; $this->y = $y; $this->tag = $t; }
}
class PointB {
  public $x = 0;
  public $y = 0;
  public $tag = "";
  function __construct($x, $y, $t) { $this->x = $x; $this->y = $y; $this->tag = $t; }
}

function manhattan($p) {
  $ax = $p->x < 0 ? -$p->x : $p->x;
  $ay = $p->y < 0 ? -$p->y : $p->y;
  return $ax + $ay;
}

function shiftPoint($p, $d) {
  $p->x = $p->x + $d;
  $p->y = $p->y - $d;
}

$pts = [];
for ($i = 0; $i < 48; $i++) {
  if ($i % 2 == 0) { $pts[] = new PointA($i, -$i, "a"); }
  else { $pts[] = new PointB(-$i, $i, "b"); }
}
$sum = 0;
foreach ($pts as $p) {
  shiftPoint($p, 3);
  $sum += manhattan($p);
}
echo $sum, "\n";
`

// shapePoly: three distinct layouts sharing a $weight property, with
// skewed popularity (roughly 60/30/10) — a 3-entry shape IC where the
// first entry takes most hits.
const shapePoly = `
class Parcel {
  public $weight = 0;
  public $zone = 0;
  function __construct($w, $z) { $this->weight = $w; $this->zone = $z; }
}
class Crate {
  public $pallet = 0;
  public $weight = 0;
  public $sealed = true;
  function __construct($p, $w) { $this->pallet = $p; $this->weight = $w; }
}
class Envelope {
  public $stamp = "";
  public $express = false;
  public $weight = 0;
  function __construct($s, $w) { $this->stamp = $s; $this->weight = $w; }
}

function freight($item, $rate) {
  return $item->weight * $rate;
}

$items = [];
for ($i = 0; $i < 50; $i++) {
  $k = $i % 10;
  if ($k < 6) { $items[] = new Parcel($i % 9 + 1, $i % 4); }
  elseif ($k < 9) { $items[] = new Crate($i % 5, $i % 11 + 2); }
  else { $items[] = new Envelope("s", 1); }
}
$total = 0;
foreach ($items as $it) {
  $total += freight($it, 3);
}
echo $total, "\n";
`

// shapeMega: eight distinct layouts through one access site — more
// shapes than the 4-entry IC holds, so the site goes megamorphic and
// falls back to the generic by-name helper.
const shapeMega = `
class Rec0 { public $val = 0; function __construct($v) { $this->val = $v; } }
class Rec1 { public $p1 = 0; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec2 { public $p1 = 0; public $p2 = 0; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec3 { public $a = ""; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec4 { public $a = ""; public $b = ""; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec5 { public $flag = false; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec6 { public $flag = false; public $extra = 0; public $val = 0;
  function __construct($v) { $this->val = $v; } }
class Rec7 { public $x = 0; public $y = 0; public $z = 0; public $val = 0;
  function __construct($v) { $this->val = $v; } }

function pick($i) {
  $k = $i % 8;
  if ($k == 0) { return new Rec0($i); }
  if ($k == 1) { return new Rec1($i); }
  if ($k == 2) { return new Rec2($i); }
  if ($k == 3) { return new Rec3($i); }
  if ($k == 4) { return new Rec4($i); }
  if ($k == 5) { return new Rec5($i); }
  if ($k == 6) { return new Rec6($i); }
  return new Rec7($i);
}

$sum = 0;
for ($i = 0; $i < 64; $i++) {
  $r = pick($i);
  $sum += $r->val;
}
echo $sum, "\n";
`

// shapeDynamic: undeclared-property appends walk the transition tree
// at runtime, and an int/double slot alternates kinds (bouncing
// between two interned retype siblings instead of growing the tree).
// The read loop is the hidden-class payoff: $count and $size are
// undeclared, so a class-keyed slot table can never serve them — with
// shapes off every read is a generic by-name lookup, with shapes on
// they resolve through the 4-entry IC (count x note x size-kind makes
// exactly four layouts).
const shapeDynamic = `
class Bag {
  public $id = 0;
  function __construct($i) { $this->id = $i; }
}

function fill($b, $i) {
  $b->count = $i % 7;
  if ($i % 3 == 0) {
    $b->note = "n" . $i;
  }
  return $b;
}

function measure($b, $i) {
  if ($i % 2 == 0) { $b->size = $i; }
  else { $b->size = $i * 0.5; }
  return $b->size;
}

$bags = [];
$total = 0;
for ($i = 0; $i < 32; $i++) {
  $b = fill(new Bag($i), $i);
  $total += (int)measure($b, $i);
  $bags[] = $b;
}
for ($r = 0; $r < 12; $r++) {
  foreach ($bags as $b) {
    $total += $b->id + $b->count + (int)$b->size;
  }
}
echo $total, "\n";
`
