package hhir

import (
	"math"

	"repro/internal/types"
)

// PassConfig toggles individual optimizations (the Figure 10
// ablations flip these).
type PassConfig struct {
	Simplify bool
	DCE      bool
	GVN      bool
	LoadElim bool
	RCE      bool
}

// AllPasses enables everything.
var AllPasses = PassConfig{Simplify: true, DCE: true, GVN: true, LoadElim: true, RCE: true}

// ProfilingPasses is the reduced pipeline for short-lived profiling
// code (Section 4.1 rule 5: skip the most expensive optimizations).
var ProfilingPasses = PassConfig{Simplify: true, DCE: true}

// Optimize runs the configured pipeline.
func Optimize(u *Unit, cfg PassConfig) {
	if cfg.Simplify {
		Simplify(u)
	}
	if cfg.LoadElim {
		LoadElim(u)
	}
	if cfg.GVN {
		GVN(u)
	}
	ShapeGuardElim(u)
	if cfg.Simplify {
		Simplify(u)
	}
	if cfg.RCE {
		RCE(u)
	}
	if cfg.DCE {
		DCE(u)
	}
	PruneUnreachable(u)
}

// ---------- Simplification & constant folding ----------

// Simplify folds constants, applies algebraic identities, and fuses
// branches on constants.
func Simplify(u *Unit) {
	for _, b := range u.Blocks {
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			simplifyInstr(u, in)
		}
	}
}

func constOf(t *SSATmp) (*Instr, bool) {
	if t == nil || t.Def == nil {
		return nil, false
	}
	switch t.Def.Op {
	case DefConstInt, DefConstDbl, DefConstBool, DefConstNull, DefConstStr:
		return t.Def, true
	}
	return nil, false
}

// rewriteConstInt turns in into a DefConstInt in place.
func rewriteConst(in *Instr, op Opcode, v int64, s string, t types.Type) {
	in.Op = op
	in.I64 = v
	in.Str = s
	in.Args = nil
	in.Exit = nil
	in.TypeParam = types.TBottom
	in.Dst.Type = t
}

func simplifyInstr(u *Unit, in *Instr) {
	switch in.Op {
	case AddInt, SubInt, MulInt:
		a, aok := constOf(in.Args[0])
		c, cok := constOf(in.Args[1])
		if aok && cok {
			var v int64
			switch in.Op {
			case AddInt:
				v = a.I64 + c.I64
			case SubInt:
				v = a.I64 - c.I64
			case MulInt:
				v = a.I64 * c.I64
			}
			rewriteConst(in, DefConstInt, v, "", types.TInt)
			return
		}
		// Algebraic identities: x+0, x-0, x*1 -> copy; x*0 -> 0.
		if cok {
			switch {
			case c.I64 == 0 && (in.Op == AddInt || in.Op == SubInt),
				c.I64 == 1 && in.Op == MulInt:
				in.Op = AssertType
				in.TypeParam = in.Args[0].Type
				in.Dst.Type = in.Args[0].Type
				in.Args = in.Args[:1]
				return
			case c.I64 == 0 && in.Op == MulInt:
				rewriteConst(in, DefConstInt, 0, "", types.TInt)
				return
			}
		}
	case AddDbl, SubDbl, MulDbl, DivDbl:
		a, aok := constOf(in.Args[0])
		c, cok := constOf(in.Args[1])
		if aok && cok {
			x := math.Float64frombits(uint64(a.I64))
			y := math.Float64frombits(uint64(c.I64))
			var v float64
			switch in.Op {
			case AddDbl:
				v = x + y
			case SubDbl:
				v = x - y
			case MulDbl:
				v = x * y
			case DivDbl:
				if y == 0 {
					return // keep the runtime error path
				}
				v = x / y
			}
			rewriteConst(in, DefConstDbl, int64(math.Float64bits(v)), "", types.TDbl)
		}
	case NegInt:
		if a, ok := constOf(in.Args[0]); ok {
			rewriteConst(in, DefConstInt, -a.I64, "", types.TInt)
		}
	case CmpInt:
		a, aok := constOf(in.Args[0])
		c, cok := constOf(in.Args[1])
		if aok && cok {
			rewriteConst(in, DefConstBool, boolI64(cmpHolds(in.I64, a.I64, c.I64)), "", types.TBool)
		}
	case ConvToBool:
		arg := in.Args[0]
		if c, ok := constOf(arg); ok {
			var v bool
			switch c.Op {
			case DefConstInt:
				v = c.I64 != 0
			case DefConstBool:
				v = c.I64 != 0
			case DefConstDbl:
				v = math.Float64frombits(uint64(c.I64)) != 0
			case DefConstNull:
				v = false
			case DefConstStr:
				v = c.Str != "" && c.Str != "0"
			}
			rewriteConst(in, DefConstBool, boolI64(v), "", types.TBool)
			return
		}
		if arg.Type.SubtypeOf(types.TBool) {
			in.Op = AssertType
			in.TypeParam = types.TBool
			in.Dst.Type = types.TBool
		}
	case ConvToInt:
		if c, ok := constOf(in.Args[0]); ok && c.Op == DefConstInt {
			rewriteConst(in, DefConstInt, c.I64, "", types.TInt)
		}
	case ConvToDbl:
		if c, ok := constOf(in.Args[0]); ok {
			switch c.Op {
			case DefConstInt:
				rewriteConst(in, DefConstDbl, int64(math.Float64bits(float64(c.I64))), "", types.TDbl)
			case DefConstDbl:
				rewriteConst(in, DefConstDbl, c.I64, "", types.TDbl)
			}
		}
	case ConcatStr:
		a, aok := constOf(in.Args[0])
		c, cok := constOf(in.Args[1])
		if aok && cok && a.Op == DefConstStr && c.Op == DefConstStr {
			rewriteConst(in, DefConstStr, 0, a.Str+c.Str, types.TStr)
		}
	case Branch:
		// Branch fusion: constant condition becomes a Jmp.
		if c, ok := constOf(in.Args[0]); ok {
			if c.I64 != 0 {
				in.Next, in.NextArgs = in.Taken, in.TakenArgs
			}
			in.Op = Jmp
			in.Args = nil
			in.Taken, in.TakenArgs = nil, nil
		}
	case CheckType:
		// A value already of the checked type needs no check.
		if in.Args[0].Type.SubtypeOf(in.TypeParam) {
			in.Op = AssertType
			in.Taken, in.TakenArgs, in.Exit = nil, nil, nil
		}
	}
}

func boolI64(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func cmpHolds(cond, a, b int64) bool {
	switch cond {
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondEQ:
		return a == b
	default:
		return a != b
	}
}

// resolveCopies follows AssertType chains so uses point at the
// original value (copy propagation).
func resolveCopies(u *Unit) {
	resolve := func(t *SSATmp) *SSATmp {
		for t != nil && t.Def != nil && t.Def.Op == AssertType && !t.Def.dead {
			src := t.Def.Args[0]
			// Keep the refinement only if it genuinely narrows.
			if !src.Type.SubtypeOf(t.Type) {
				break
			}
			t = src
		}
		return t
	}
	for _, b := range u.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			for i, a := range in.NextArgs {
				in.NextArgs[i] = resolve(a)
			}
			for i, a := range in.TakenArgs {
				in.TakenArgs[i] = resolve(a)
			}
			if in.Exit != nil {
				for i, a := range in.Exit.Stack {
					in.Exit.Stack[i] = resolve(a)
				}
				for ic := in.Exit.Inline; ic != nil; ic = ic.Parent {
					if ic.This != nil {
						ic.This = resolve(ic.This)
					}
					for i, a := range ic.CallerStack {
						ic.CallerStack[i] = resolve(a)
					}
				}
			}
		}
	}
}

// ---------- Dead code elimination ----------

// DCE removes pure instructions whose results are unused and strips
// vacuous AssertTypes.
func DCE(u *Unit) {
	resolveCopies(u)
	used := map[*SSATmp]bool{}
	mark := func(t *SSATmp) {
		if t != nil {
			used[t] = true
		}
	}
	for _, b := range u.Blocks {
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			if in.Op.IsPure() || in.Op == LdLoc {
				continue // uses counted only if they survive
			}
			for _, a := range in.Args {
				mark(a)
			}
			for _, a := range in.NextArgs {
				mark(a)
			}
			for _, a := range in.TakenArgs {
				mark(a)
			}
			if in.Exit != nil {
				for _, a := range in.Exit.Stack {
					mark(a)
				}
				for ic := in.Exit.Inline; ic != nil; ic = ic.Parent {
					mark(ic.This)
					for _, a := range ic.CallerStack {
						mark(a)
					}
				}
			}
		}
	}
	// Iterate to a fixpoint: pure instrs keep their args alive only
	// while live themselves.
	changed := true
	for changed {
		changed = false
		for _, b := range u.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.dead || !(in.Op.IsPure() || in.Op == LdLoc) {
					continue
				}
				if in.Dst != nil && used[in.Dst] {
					for _, a := range in.Args {
						if !used[a] {
							used[a] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for _, b := range u.Blocks {
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			if (in.Op.IsPure() || in.Op == LdLoc) && in.Dst != nil && !used[in.Dst] {
				in.dead = true
			}
		}
	}
	commitDead(u)
}

func commitDead(u *Unit) {
	for _, b := range u.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !in.dead {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
}

// PruneUnreachable drops blocks not reachable from the entry.
func PruneUnreachable(u *Unit) {
	if u.Entry == nil {
		return
	}
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(u.Entry)
	out := u.Blocks[:0]
	for _, b := range u.Blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	u.Blocks = out
	u.RecomputePreds()
}

// ---------- Global value numbering ----------

// GVN value-numbers pure instructions within dominator scopes; the
// region shape (a DAG plus loop back-edges only to chain heads) makes
// a simple RPO single-pass with per-block scoping sufficient and
// sound: values are reused only when the defining block dominates the
// user, approximated by "definition appears in an RPO predecessor
// that reaches all paths" — we restrict reuse to the same block or
// the entry block, which is trivially dominating.
func GVN(u *Unit) {
	resolveCopies(u)
	type key struct {
		op     Opcode
		a0, a1 *SSATmp
		i64    int64
		str    string
	}
	// resolve follows AssertType copies created earlier in this same
	// pass so later instructions key on canonical values.
	var resolve func(t *SSATmp) *SSATmp
	resolve = func(t *SSATmp) *SSATmp {
		for t != nil && t.Def != nil && t.Def.Op == AssertType && !t.Def.dead &&
			len(t.Def.Args) == 1 && t.Def.Args[0].Type.SubtypeOf(t.Type) {
			t = t.Def.Args[0]
		}
		return t
	}
	mk := func(in *Instr) (key, bool) {
		if !in.Op.IsPure() || in.Dst == nil {
			return key{}, false
		}
		k := key{op: in.Op, i64: in.I64, str: in.Str}
		if len(in.Args) > 0 {
			k.a0 = resolve(in.Args[0])
		}
		if len(in.Args) > 1 {
			k.a1 = resolve(in.Args[1])
		}
		if len(in.Args) > 2 {
			return key{}, false
		}
		return k, true
	}

	// Entry-block values are visible everywhere.
	global := map[key]*SSATmp{}
	apply := func(b *Block, scope map[key]*SSATmp) {
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			k, ok := mk(in)
			if !ok {
				continue
			}
			if prev, hit := scope[k]; hit {
				// Replace in with a copy.
				in.Op = AssertType
				in.TypeParam = prev.Type
				in.Args = []*SSATmp{prev}
				in.I64, in.Str = 0, ""
				continue
			}
			if prev, hit := global[k]; hit && b != u.Entry {
				in.Op = AssertType
				in.TypeParam = prev.Type
				in.Args = []*SSATmp{prev}
				in.I64, in.Str = 0, ""
				continue
			}
			scope[k] = in.Dst
			if b == u.Entry {
				global[k] = in.Dst
			}
		}
	}
	if u.Entry != nil {
		apply(u.Entry, map[key]*SSATmp{})
	}
	for _, b := range u.Blocks {
		if b == u.Entry {
			continue
		}
		apply(b, map[key]*SSATmp{})
	}
	resolveCopies(u)
}

// ---------- Redundant shape-guard elimination ----------

// ShapeGuardElim removes GuardShape instructions whose fact was
// already established by an identical guard on the same SSA value
// earlier in the block (or along a single-predecessor chain, the same
// propagation LoadElim uses). Runs after GVN/LoadElim so repeated
// loads of the same local share one SSA value. Facts die at any
// instruction that can mutate an object's layout; StPropSlot is
// deliberately exempt, since the shape-guarded store path only fires
// when the stored kind matches the slot (DESIGN.md §14).
func ShapeGuardElim(u *Unit) {
	resolveCopies(u)
	type state map[*SSATmp]int64
	inState := map[*Block]state{}
	for _, b := range u.RPO() {
		var st state
		if len(b.Preds) == 1 {
			if s, ok := inState[b]; ok {
				st = s
			}
		}
		if st == nil {
			st = state{}
		}
		copyState := func() state {
			ns := make(state, len(st))
			for k, v := range st {
				ns[k] = v
			}
			return ns
		}
		snapshot := func(target *Block) {
			if target != nil && len(target.Preds) == 1 {
				inState[target] = copyState()
			}
		}
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			if in.Taken != nil && !in.Op.IsTerminator() {
				snapshot(in.Taken)
			}
			switch {
			case in.Op == GuardShape:
				obj := in.Args[0]
				if id, ok := st[obj]; ok && id == in.I64 {
					in.dead = true
				} else {
					st[obj] = in.I64
				}
			case mayMutateShape(in.Op):
				st = state{}
			}
		}
		if t := b.Terminator(); t != nil {
			snapshot(t.Taken)
			snapshot(t.Next)
		}
	}
	commitDead(u)
}

// mayMutateShape reports ops that can change some object's property
// layout: dynamic-property stores and anything that runs arbitrary
// guest code (which may write properties through another reference).
func mayMutateShape(op Opcode) bool {
	switch op {
	case StPropIC, StPropGeneric, CallFunc, CallBuiltin, CallMethodD,
		CallMethodC, BinopGeneric:
		return true
	}
	return false
}

// ---------- Load elimination ----------

// LoadElim forwards stored/loaded local values to later loads within
// a block (and across single-predecessor edges), eliminating
// redundant LdLocs. Calls do not clobber locals in this language
// (no references), so only stores invalidate.
func LoadElim(u *Unit) {
	type state map[int64]*SSATmp
	// inState per block for single-pred propagation.
	inState := map[*Block]state{}
	order := u.RPO()
	for _, b := range order {
		var st state
		if len(b.Preds) == 1 {
			if s, ok := inState[b]; ok {
				st = s
			}
		}
		if st == nil {
			st = state{}
		}
		copyState := func() state {
			ns := make(state, len(st))
			for k, v := range st {
				ns[k] = v
			}
			return ns
		}
		// Edges must carry the state at the point they leave the
		// block: a mid-block guard jumps to the next retranslation in
		// its chain BEFORE later stores execute, so its target gets a
		// snapshot taken at the guard, not the block-end state.
		snapshot := func(target *Block) {
			if target != nil && len(target.Preds) == 1 {
				inState[target] = copyState()
			}
		}
		for _, in := range b.Instrs {
			if in.dead {
				continue
			}
			if in.Taken != nil && !in.Op.IsTerminator() {
				snapshot(in.Taken)
			}
			switch in.Op {
			case LdLoc:
				if v, ok := st[in.I64]; ok && v.Type.SubtypeOf(in.Dst.Type) {
					in.Op = AssertType
					in.TypeParam = v.Type
					in.Args = []*SSATmp{v}
					in.I64 = 0
					in.Dst.Type = v.Type
				} else {
					st[in.I64] = in.Dst
				}
			case StLoc:
				st[in.I64] = in.Args[0]
			case ArrSetLocal, ArrAppendLocal, ArrUnsetLocal:
				delete(st, in.I64)
			case SideExit, ReqBind:
				// Exits read the frame; state stays valid.
			}
		}
		if t := b.Terminator(); t != nil {
			snapshot(t.Taken)
			snapshot(t.Next)
		}
	}
	resolveCopies(u)
}
