package vasm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hhir"
	"repro/internal/interp"
	"repro/internal/region"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vasm"
)

type srcTypes map[int]types.Type

func (s srcTypes) LocalType(slot int) types.Type {
	if t, ok := s[slot]; ok {
		return t
	}
	return types.TUninit
}
func (srcTypes) StackType(int) types.Type { return types.TCell }

func lowerFor(t *testing.T, src, fn string, locals srcTypes) *vasm.Unit {
	t.Helper()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := interp.NewEnv(unit, runtime.NewHeap(), nil)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := unit.FuncByName(fn)
	if !ok {
		t.Fatalf("no %s", fn)
	}
	blk := region.Select(unit, f, 0, 0, locals, region.ModeLive, 0)
	hu, err := hhir.Build(unit, env, region.NewDesc(blk), hhir.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hhir.Optimize(hu, hhir.AllPasses)
	vu, err := vasm.Lower(hu)
	if err != nil {
		t.Fatal(err)
	}
	return vu
}

const loopSrc = `
function hot($n) {
  $a = 0; $b = 1; $c = 2; $d = 3; $e = 4; $f = 5; $g = 6;
  for ($i = 0; $i < $n; $i++) {
    $a = $a + $b; $b = $b + $c; $c = $c + $d;
    $d = $d + $e; $e = $e + $f; $f = $f + $g; $g = $g + $i;
  }
  return $a + $b + $c + $d + $e + $f + $g;
}
echo hot(10);
`

// TestAllocateAssignsPhysicalRegisters: after allocation every
// register operand is physical or a spill reference.
func TestAllocateAssignsPhysicalRegisters(t *testing.T) {
	vu := lowerFor(t, loopSrc, "hot", srcTypes{0: types.TInt})
	vasm.Layout(vu, vasm.DefaultLayout)
	vasm.Allocate(vu)
	check := func(r vasm.Reg) {
		if r == vasm.InvalidReg {
			return
		}
		if r >= vasm.SpillRegBase {
			if int(r-vasm.SpillRegBase) >= vu.NumSpills {
				t.Fatalf("spill ref %d out of range (%d spills)", r-vasm.SpillRegBase, vu.NumSpills)
			}
			return
		}
		if int(r) >= vasm.TotalMachineRegs {
			t.Fatalf("virtual register r%d survived allocation", r)
		}
	}
	for _, b := range vu.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			check(in.D)
			check(in.A)
			check(in.B)
			for _, a := range in.Args {
				check(a)
			}
		}
	}
}

// TestLayoutKeepsEntryFirst: the entry block must lead the layout (the
// machine begins execution there) or at minimum stay a chain head.
func TestLayoutKeepsEntryFirst(t *testing.T) {
	vu := lowerFor(t, loopSrc, "hot", srcTypes{0: types.TInt})
	vasm.Layout(vu, vasm.DefaultLayout)
	if len(vu.Layout) == 0 {
		t.Fatal("no layout")
	}
	pos := -1
	for i, b := range vu.Layout {
		if b == 0 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("entry block missing from layout")
	}
}

// TestHotColdSplitting: stub blocks land at the layout tail.
func TestHotColdSplitting(t *testing.T) {
	vu := lowerFor(t, loopSrc, "hot", srcTypes{0: types.TInt})
	vasm.Layout(vu, vasm.DefaultLayout)
	seenStub := false
	for _, bi := range vu.Layout {
		isStub := vu.Blocks[bi].Hint == vasm.HintStub
		if seenStub && !isStub {
			t.Fatal("non-stub block after the frozen area began")
		}
		if isStub {
			seenStub = true
		}
	}
}

// TestJumpOptimizationMarksFallthroughs: at least one Jmp to the next
// block should be converted to a zero-size fallthrough in a multi-
// block unit.
func TestJumpOptimizationMarksFallthroughs(t *testing.T) {
	vu := lowerFor(t, loopSrc, "hot", srcTypes{0: types.TInt})
	vasm.Layout(vu, vasm.DefaultLayout)
	posOf := map[int]int{}
	for pos, b := range vu.Layout {
		posOf[b] = pos
	}
	for pos, bi := range vu.Layout {
		b := vu.Blocks[bi]
		if len(b.Instrs) == 0 {
			continue
		}
		last := b.Instrs[len(b.Instrs)-1]
		if last.Op == vasm.Jmp && posOf[last.Target1] == pos+1 && last.I64&1 == 0 {
			t.Errorf("B%d: jump to adjacent B%d not marked fallthrough", bi, last.Target1)
		}
	}
}

func TestHelperPacking(t *testing.T) {
	v := vasm.PackHelper(vasm.HArrSetLocal, 1234)
	h, extra := vasm.UnpackHelper(v)
	if h != vasm.HArrSetLocal || extra != 1234 {
		t.Errorf("helper roundtrip: %v %d", h, extra)
	}
	iv := vasm.PackIterSlot(3, 17)
	it, slot := vasm.UnpackIterSlot(iv)
	if it != 3 || slot != 17 {
		t.Errorf("iter roundtrip: %d %d", it, slot)
	}
}

// TestDenseSwitchLowersToJumpTable: the dense-int Switch becomes a
// JmpTable at the Vasm level, not a compare cascade.
func TestDenseSwitchLowersToJumpTable(t *testing.T) {
	vu := lowerFor(t, `
function pick($n) {
  switch ($n) { case 1: return 10; case 2: return 20; case 3: return 30; default: return 0; }
}
echo pick(2);`, "pick", srcTypes{0: types.TInt})
	found := false
	for _, b := range vu.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == vasm.JmpTable {
				found = true
			}
		}
	}
	if !found {
		t.Error("dense switch did not lower to a jump table")
	}
	if len(vu.Tables) != 1 || len(vu.Tables[0].Targets) != 3 {
		t.Errorf("jump table shape wrong: %+v", vu.Tables)
	}
}
