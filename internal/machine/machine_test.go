package machine_test

import (
	"testing"

	"repro/internal/machine"
)

// TestFetchModelICache: re-executing the same line is free; distinct
// lines beyond capacity miss.
func TestFetchModelICache(t *testing.T) {
	f := machine.NewFetchModel()
	if extra := f.Fetch(0x1000); extra == 0 {
		t.Error("first fetch of a line should miss")
	}
	if extra := f.Fetch(0x1004); extra != 0 {
		t.Error("same-line fetch should be free")
	}
	if extra := f.Fetch(0x1000); extra != 0 {
		t.Error("warm line should hit")
	}
}

// TestFetchModelITLB4K: touching more 4K pages than the TLB holds
// causes misses on re-walk; huge-page-covered code does not.
func TestFetchModelITLB4K(t *testing.T) {
	f := machine.NewFetchModel()
	f.HugeCovers = func(uint64) bool { return false }
	// Touch 64 distinct pages, then re-touch the first: must miss.
	for i := uint64(0); i < 64; i++ {
		f.Fetch(0x100000 + i*4096)
	}
	m0 := f.ITLBMisses
	f.Fetch(0x100000)
	if f.ITLBMisses == m0 {
		t.Error("expected an I-TLB miss after thrashing 64 pages")
	}
}

// TestFetchModelHugePages: the same sweep under a 2MiB mapping stays
// within the dedicated huge entries — the Section 5.1.2 mechanism.
func TestFetchModelHugePages(t *testing.T) {
	f := machine.NewFetchModel()
	f.HugeCovers = func(uint64) bool { return true }
	for i := uint64(0); i < 64; i++ {
		f.Fetch(0x100000 + i*4096)
	}
	m0 := f.ITLBMisses
	for i := uint64(0); i < 64; i++ {
		f.Fetch(0x100000 + i*4096)
	}
	if f.ITLBMisses != m0 {
		t.Errorf("huge-page sweep missed %d times on re-walk", f.ITLBMisses-m0)
	}
	if m0 != 1 {
		t.Errorf("one cold huge-page walk expected, got %d", m0)
	}
}

func TestMeterAttribution(t *testing.T) {
	var m machine.Meter
	m.Charge(10)
	if m.Cycles != 10 {
		t.Errorf("cycles = %d", m.Cycles)
	}
}
