package hhir

import (
	"strings"

	"repro/internal/hhbc"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/runtime"
	"repro/internal/types"
)

// popArgs pops n call arguments (stack order preserved).
func (b *builder) popArgs(n int) []*SSATmp {
	args := make([]*SSATmp, n)
	for i := n - 1; i >= 0; i-- {
		args[i] = b.pop()
	}
	return args
}

// lowerCallD lowers FCallD: direct function call, possibly inlined.
func (b *builder) lowerCallD(in hhbc.Instr, pc int) error {
	name := b.unit.Strings[in.B]
	nargs := int(in.A)
	callee, isUser := b.unit.FuncByName(name)
	if !isUser {
		// Resolved to a builtin (or a runtime error) at execution.
		args := b.popArgs(nargs)
		dst := b.out.NewTmp(types.TInitCell)
		call := &Instr{Op: CallBuiltin, Dst: dst, Str: strings.ToLower(name),
			Args: args, Exit: b.catchExit()}
		dst.Def = call
		b.emit(call)
		b.push(dst)
		return nil
	}

	if b.tryInline(callee, nil, nargs, pc) {
		return nil
	}

	args := b.popArgs(nargs)
	dst := b.out.NewTmp(types.TInitCell)
	call := &Instr{Op: CallFunc, Dst: dst, Str: name, I64: int64(callee.ID),
		Args: args, Exit: b.catchExit()}
	dst.Def = call
	b.emit(call)
	b.push(dst)
	return nil
}

// lowerCallBuiltin lowers FCallBuiltin, open-coding hot builtins.
func (b *builder) lowerCallBuiltin(in hhbc.Instr) error {
	name := b.unit.Strings[in.B]
	nargs := int(in.A)

	// count() on a known array lowers to a length load — the paper's
	// CountArray example (Figure 6).
	if name == "count" && nargs == 1 && b.top().Type.SubtypeOf(types.TArr) {
		arr := b.pop()
		r := b.def(CountArray, types.TInt, arr)
		b.decRef(arr)
		b.push(r)
		return nil
	}

	args := b.popArgs(nargs)
	t := types.TInitCell
	if bi, ok := runtime.LookupBuiltin(name); ok && bi.Arity >= 0 && bi.Arity == nargs {
		if rt, ok2 := builtinRetHHIR[name]; ok2 {
			t = rt
		}
	}
	dst := b.out.NewTmp(t)
	call := &Instr{Op: CallBuiltin, Dst: dst, Str: name, Args: args, Exit: b.catchExit()}
	dst.Def = call
	b.emit(call)
	b.push(dst)
	return nil
}

// builtinRetHHIR mirrors the region selector's result-type table.
var builtinRetHHIR = map[string]types.Type{
	"count": types.TInt, "strlen": types.TInt,
	"intval": types.TInt, "floatval": types.TDbl, "strval": types.TStr,
	"is_int": types.TBool, "is_float": types.TBool, "is_string": types.TBool,
	"is_array": types.TBool, "is_bool": types.TBool, "is_null": types.TBool,
	"is_numeric": types.TBool, "implode": types.TStr, "substr": types.TStr,
	"strtoupper": types.TStr, "strtolower": types.TStr, "strrev": types.TStr,
	"str_repeat": types.TStr, "sqrt": types.TDbl, "floor": types.TDbl,
	"ceil": types.TDbl, "round": types.TDbl, "ord": types.TInt, "chr": types.TStr,
	"in_array": types.TBool, "array_key_exists": types.TBool,
}

// lowerCallMethod lowers FCallObjMethodD with the method-dispatch
// optimization (Section 5.3.3): (a) devirtualize monomorphic calls,
// (b) common-base-class calls, (c) common-interface calls, falling
// back to (d) inline caching.
func (b *builder) lowerCallMethod(in hhbc.Instr, pc int) error {
	name := b.unit.Strings[in.B]
	nargs := int(in.A)

	// Snapshot the exit state while obj+args are still on the stack,
	// so a failed speculation re-executes the call in the interpreter.
	specExit := b.exitDesc(pc, false)

	args := b.popArgs(nargs)
	obj := b.pop()

	if b.cfg.Profiling {
		b.emit(&Instr{Op: ProfCallSite, I64: int64(pc), Args: []*SSATmp{obj}})
		b.emitMethodCacheCall(name, pc, obj, args)
		return nil
	}

	// Statically known exact class: direct call, no guard. (Counted
	// as part of the method-dispatch optimization: the exactness
	// comes from the same specialization machinery.)
	if cls, exact := obj.Type.Class(); exact && b.cfg.EnableMethodDispatch {
		if rc, ok := b.env.ClassByName(cls); ok {
			if id, ok := rc.LookupMethod(strings.ToLower(name)); ok {
				b.emitDirectMethodCall(id, obj, args, pc)
				return nil
			}
		}
	}

	if b.cfg.EnableMethodDispatch && b.cfg.Counters != nil {
		site := profile.CallSite{FuncID: b.curFn().ID, PC: pc}
		if tp := b.cfg.Counters.CallTargets(site); tp != nil && tp.Total >= 8 {
			// (a) monomorphic: guard the exact class, call directly.
			dom := tp.Classes[0]
			if float64(dom.Count)/float64(tp.Total) >= 0.95 {
				if rc, ok := b.env.ClassByName(dom.Class); ok {
					if id, ok := rc.LookupMethod(strings.ToLower(name)); ok {
						chk := b.out.NewTmp(types.ObjOfClass(dom.Class, true))
						ci := &Instr{Op: CheckCls, Dst: chk, I64: int64(rc.ClassID),
							Args: []*SSATmp{obj}, Exit: specExit}
						chk.Def = ci
						b.emit(ci)
						b.emitDirectMethodCall(id, chk, args, pc)
						return nil
					}
				}
			}
			// (b)/(c): every observed receiver resolves to one target
			// and no other loaded class overrides it differently:
			// devirtualize without a guard.
			if id, ok := b.commonTarget(tp, name); ok {
				b.emitDirectMethodCall(id, obj, args, pc)
				return nil
			}
		}
	}

	// (d) inline caching.
	b.emitMethodCacheCall(name, pc, obj, args)
	return nil
}

// commonTarget checks whether all observed receivers (and all their
// loaded subclasses) resolve the method to the same function.
func (b *builder) commonTarget(tp *profile.TargetProfile, name string) (int, bool) {
	lname := strings.ToLower(name)
	target := -1
	for _, cc := range tp.Classes {
		rc, ok := b.env.ClassByName(cc.Class)
		if !ok {
			return 0, false
		}
		id, ok := rc.LookupMethod(lname)
		if !ok {
			return 0, false
		}
		if target == -1 {
			target = id
		} else if target != id {
			return 0, false
		}
	}
	if target == -1 {
		return 0, false
	}
	// Any loaded class resolving this method differently makes the
	// speculation unsound without a guard.
	for _, rc := range b.env.Classes {
		if id, ok := rc.LookupMethod(lname); ok && id != target {
			return 0, false
		}
	}
	return target, true
}

func (b *builder) emitDirectMethodCall(funcID int, obj *SSATmp, args []*SSATmp, pc int) {
	callee := b.unit.Funcs[funcID]
	if b.tryInlineMethod(callee, obj, args, pc) {
		return
	}
	dst := b.out.NewTmp(types.TInitCell)
	all := append([]*SSATmp{obj}, args...)
	call := &Instr{Op: CallMethodD, Dst: dst, I64: int64(funcID), Str: callee.FullName(),
		Args: all, Exit: b.catchExit()}
	dst.Def = call
	b.emit(call)
	b.decRef(obj)
	b.push(dst)
}

func (b *builder) emitMethodCacheCall(name string, pc int, obj *SSATmp, args []*SSATmp) {
	dst := b.out.NewTmp(types.TInitCell)
	all := append([]*SSATmp{obj}, args...)
	site := int64(b.curFn().ID)<<20 | int64(pc)
	if b.cfg.DisableInlineCache {
		site = -1 // full method lookup on every call
	}
	call := &Instr{Op: CallMethodC, Dst: dst, Str: strings.ToLower(name),
		I64: site, Args: all, Exit: b.catchExit()}
	dst.Def = call
	b.emit(call)
	b.decRef(obj)
	b.push(dst)
}

// tryInline attempts partial inlining of a direct call; args are
// still on the virtual stack (nargs of them).
func (b *builder) tryInline(callee *hhbc.Func, this *SSATmp, nargs, pc int) bool {
	if !b.inlinable(callee) {
		return false
	}
	args := b.stack[len(b.stack)-nargs:]
	argTypes := make([]types.Type, len(args))
	for i, a := range args {
		argTypes[i] = a.Type
	}
	desc := b.cfg.RegionOf(callee, argTypes)
	if desc == nil || !b.suitableForInline(callee, desc, argTypes) {
		return false
	}
	popped := b.popArgs(nargs)
	b.inlineCall(callee, desc, this, popped, pc)
	return true
}

func (b *builder) tryInlineMethod(callee *hhbc.Func, obj *SSATmp, args []*SSATmp, pc int) bool {
	if !b.inlinable(callee) {
		return false
	}
	argTypes := make([]types.Type, len(args))
	for i, a := range args {
		argTypes[i] = a.Type
	}
	desc := b.cfg.RegionOf(callee, argTypes)
	if desc == nil || !b.suitableForInline(callee, desc, argTypes) {
		return false
	}
	b.inlineCall(callee, desc, obj, args, pc)
	return true
}

func (b *builder) inlinable(callee *hhbc.Func) bool {
	if !b.cfg.EnableInlining || b.cfg.Profiling || b.cfg.RegionOf == nil {
		return false
	}
	if len(b.inlines) >= b.cfg.MaxInlineDepth {
		return false
	}
	if len(callee.EHTable) > 0 {
		return false
	}
	if len(callee.Instrs) > 4*b.cfg.MaxInlineInstrs {
		return false
	}
	// Iterator slots are per-frame; inlined frames do not have them.
	for _, in := range callee.Instrs {
		if in.Op == hhbc.OpIterInitL {
			return false
		}
	}
	return true
}

// suitableForInline verifies the callee region can be spliced in:
// bounded size, entry at pc 0 with an empty eval stack, and entry
// preconditions provable from the argument types.
func (b *builder) suitableForInline(callee *hhbc.Func, desc *region.Desc, argTypes []types.Type) bool {
	if desc.NumInstrs() > b.cfg.MaxInlineInstrs || len(desc.Blocks) > 8 {
		return false
	}
	entry := desc.Entry()
	if entry.Func != callee || entry.Start != 0 || entry.EntryStackDepth != 0 {
		return false
	}
	for _, g := range entry.Preconds {
		if g.Loc.Kind != region.LocLocal {
			return false
		}
		slot := g.Loc.Slot
		var t types.Type
		switch {
		case slot < len(argTypes):
			t = argTypes[slot]
		case slot < len(callee.Params):
			p := callee.Params[slot]
			if p.HasDefault {
				t = types.FromKind(p.DefaultKind)
			} else {
				t = types.TNull
			}
		default:
			t = types.TUninit
		}
		if !t.SubtypeOf(g.Type) {
			return false
		}
	}
	return true
}

// inlineCall splices the callee's region into the current block.
// args are owned; ownership transfers into the inline frame's locals.
func (b *builder) inlineCall(callee *hhbc.Func, desc *region.Desc, this *SSATmp, args []*SSATmp, pc int) {
	slotBase := b.extraSlots
	b.extraSlots += callee.NumLocals

	// Bind arguments into the extended frame.
	for i := 0; i < callee.NumLocals; i++ {
		var v *SSATmp
		switch {
		case i < len(args) && i < len(callee.Params):
			v = args[i]
		case i < len(callee.Params):
			p := callee.Params[i]
			v = b.paramDefaultConst(p)
		default:
			continue // non-param locals start zeroed (Uninit)
		}
		b.emit(&Instr{Op: StLoc, I64: int64(slotBase + i), Args: []*SSATmp{v}})
	}
	for i := len(callee.Params); i < len(args); i++ {
		b.decRef(args[i])
	}

	ictx := &InlineCtx{
		Callee: callee, LocalsBase: slotBase, This: this, RetBCOff: pc + 1,
		CallerStack: append([]*SSATmp(nil), b.stack...),
	}
	if n := len(b.inlines); n > 0 {
		ictx.Parent = b.inlines[n-1].ctx
	}
	retBlock := b.out.NewBlock(pc + 1)
	retBlock.Weight = b.cur.Weight
	retParam := b.out.NewTmp(types.TInitCell)
	retParam.DefBlock = retBlock
	retBlock.Params = []*SSATmp{retParam}

	ist := &inlineState{ctx: ictx, callee: callee, slotBase: slotBase, retBlock: retBlock}
	b.inlines = append(b.inlines, ist)

	// Swap region contexts and lower the callee.
	savedRC, savedStack := b.rc, b.stack
	savedLocals, savedIters, savedPC := b.localTypes, b.iterKinds, b.bcPC
	b.rc = newRegionCtx(b.out, desc)

	// Jump into the callee entry.
	b.emit(&Instr{Op: Jmp, Next: b.rc.hblocks[0]})

	for ri := range desc.Blocks {
		b.cur = b.rc.hblocks[ri]
		b.stack = append([]*SSATmp(nil), b.cur.Params...)
		b.localTypes = map[int]types.Type{}
		b.iterKinds = map[int64]types.ArrayKind{}
		if err := b.lowerBlockBody(ri); err != nil {
			// Lowering trouble inside an inline body: bail to the
			// interpreter at the callee entry.
			b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(0, false)})
		}
	}

	// Restore caller context and continue after the call.
	b.rc, b.stack = savedRC, savedStack
	b.localTypes, b.iterKinds, b.bcPC = savedLocals, savedIters, savedPC
	b.inlines = b.inlines[:len(b.inlines)-1]
	b.cur = retBlock
	if this != nil {
		b.decRef(this)
	}
	b.push(retParam)
}

// paramDefaultConst materializes a parameter default.
func (b *builder) paramDefaultConst(p hhbc.Param) *SSATmp {
	if !p.HasDefault {
		return b.constNull()
	}
	switch p.DefaultKind {
	case types.KInt:
		return b.constInt(p.DefaultInt)
	case types.KDbl:
		return b.constDbl(p.DefaultDbl)
	case types.KBool:
		return b.constBool(p.DefaultInt != 0)
	case types.KStr:
		return b.constStr(p.DefaultStr)
	default:
		return b.constNull()
	}
}

// endInline routes an inlined RetC to the merge block, releasing the
// inline frame's locals first (the InlineReturn teardown).
func (b *builder) endInline(v *SSATmp) {
	ist := b.inlines[len(b.inlines)-1]
	for i := 0; i < ist.callee.NumLocals; i++ {
		slot := ist.slotBase + i
		t := b.localType(slot)
		if !t.MaybeCounted() && t != types.TCell {
			continue
		}
		old := b.ldLoc(slot)
		b.decRef(old)
	}
	b.emit(&Instr{Op: EndInline, Args: []*SSATmp{v}})
	b.emit(&Instr{Op: Jmp, Next: ist.retBlock, NextArgs: []*SSATmp{v}})
}
