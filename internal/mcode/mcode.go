// Package mcode implements the simulated code cache: assembly of
// laid-out Vasm into addressed code, allocation of hot/cold/frozen
// areas, relocation (used when optimized translations are published
// in function-sorted order), and huge-page mapping of the hot area.
package mcode

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/vasm"
)

// ErrCacheFull reports genuine code-cache exhaustion (the byte budget
// would be exceeded). The JIT distinguishes it from transient injected
// allocation failures: only real exhaustion triggers cache recycling.
var ErrCacheFull = errors.New("code cache full")

// Code is one assembled translation: the flattened instruction
// stream in layout order with per-instruction addresses.
type Code struct {
	Instrs []vasm.Instr
	// Addr[i] is the simulated address of Instrs[i].
	Addr []uint64
	// BlockIndex maps vasm block id -> index into Instrs of its first
	// instruction.
	BlockIndex map[int]int
	// Imms is the constant pool.
	Imms []vasm.ImmValue
	// Tables holds JmpTable jump tables.
	Tables []vasm.JumpTable
	// NumSpills / ExtSlots size the activation's spill area and
	// extended frame.
	NumSpills int
	ExtSlots  int

	// Base and Size give the translation's placement.
	Base uint64
	Size uint64

	// FastDispatch marks translations prepared for the machine's fused
	// fast-dispatch path: CostPrefix/DispatchFlags/FetchTails are
	// populated (by machine.PrepareDispatch, after Place) and the
	// machine charges static cycles per straight-line run instead of
	// per instruction. Unprepared code always takes the classic
	// per-instruction path.
	FastDispatch bool
	// CostPrefix[i] is the summed static cost of Instrs[:i] (length
	// len(Instrs)+1): the cost of the stream stretch [a, b] is
	// CostPrefix[b+1]-CostPrefix[a].
	CostPrefix []uint64
	// DispatchFlags[i] packs the per-instruction fetch metadata into
	// one byte so the fast path pays a single load per instruction:
	// FlagFetchHead means Instrs[i] starts on a different icache line
	// than the last component of its stream predecessor (a
	// straight-line fall-into needs a fetch probe; control transfers
	// always probe), FlagFetchTails that FetchTails[i] is non-empty.
	DispatchFlags []uint8
	// FetchTails[i] lists the addresses of second-and-later components
	// of a fused Instrs[i] that begin a new icache line relative to
	// the component before them (nil for nearly every instruction;
	// consulted only when DispatchFlags[i]&FlagFetchTails is set).
	FetchTails [][]uint64

	// Chainable marks translations that participate in direct
	// chaining: their smash sites may be bound and they may be chained
	// into. Profiling translations are never chainable (every entry
	// must go through the dispatcher so counters and arcs are
	// recorded), and the JIT clears it globally when chaining is
	// disabled.
	Chainable bool
	// links is the smash-site slab: links[i] is the published direct
	// target of the smashable instruction at Instrs[i] (BindJmp and
	// direct-call sites), nil until the first transfer resolves it.
	// Slots are read lock-free by every worker on the hot path and
	// overwritten wholesale by smashing/sweeping, never mutated.
	links []atomic.Pointer[Link]

	// tamper is the injected-corruption latch (faultinject.CodeCorrupt):
	// a non-zero value models flipped bytes in the published code. The
	// Instrs stream itself is shared immutably across workers, so the
	// corruption is carried out of line — the machine perturbs the
	// translation's observable result while the latch is set, and the
	// sentry checksum covers the latch so the auditor sees the mismatch
	// (DESIGN.md §15). Atomic: read on the execution path.
	tamper atomic.Uint64
}

// Tampered returns the injected-corruption word (0 = intact code).
func (c *Code) Tampered() uint64 { return c.tamper.Load() }

// InjectTamper latches an injected corruption onto intact code. It
// refuses to stack (CAS 0 -> v) so one latch maps to exactly one
// detected corruption; the return value reports whether v took.
func (c *Code) InjectTamper(v uint64) bool {
	if v == 0 {
		return false
	}
	return c.tamper.CompareAndSwap(0, v)
}

// ClearTamper repairs the injected corruption (tests restoring a
// translation they deliberately damaged).
func (c *Code) ClearTamper() { c.tamper.Store(0) }

// DispatchFlags bits (see Code.DispatchFlags).
const (
	FlagFetchHead  uint8 = 1 << 0
	FlagFetchTails uint8 = 1 << 1
)

// Link is one smashed jump or call site's published target: a direct
// transfer into a successor translation that bypasses the dispatcher.
// Epoch stamps the translation-index version the link was resolved
// against; followers must revalidate it and fall back to the dispatch
// path when stale. Target is opaque at this layer (the machine layer
// type-asserts it to its ChainTarget interface).
type Link struct {
	Epoch  uint64
	Target any
}

// LoadLink returns the published link of smash site i (nil if the
// site is unbound or i has no slot). Lock-free.
func (c *Code) LoadLink(i int) *Link {
	if i >= len(c.links) {
		return nil
	}
	return c.links[i].Load()
}

// StoreLink smashes site i to l. Storing nil unbinds the site.
func (c *Code) StoreLink(i int, l *Link) {
	if i < len(c.links) {
		c.links[i].Store(l)
	}
}

// SweepLinks clears every link whose epoch differs from epoch (the
// treadmill pass run after an index republish) and returns the number
// of links cleared.
func (c *Code) SweepLinks(epoch uint64) int {
	cleared := 0
	for i := range c.links {
		if l := c.links[i].Load(); l != nil && l.Epoch != epoch {
			c.links[i].Store(nil)
			cleared++
		}
	}
	return cleared
}

// ForEachLink visits every bound smash site (diagnostics and the
// invalidation tests).
func (c *Code) ForEachLink(fn func(instr int, l *Link)) {
	for i := range c.links {
		if l := c.links[i].Load(); l != nil {
			fn(i, l)
		}
	}
}

// instrSize models encoded instruction sizes (bytes) for address
// assignment; the values approximate x86-64 encodings.
func instrSize(in *vasm.Instr) uint64 {
	switch in.Op {
	case vasm.Nop:
		return 0
	case vasm.Jmp:
		if in.I64&1 != 0 {
			return 0 // fallthrough after jump optimization
		}
		return 5
	case vasm.Jcc:
		return 6
	case vasm.JmpTable:
		return 14 // bounds check + indexed load + indirect jump
	case vasm.LdImm:
		return 10
	case vasm.Copy:
		return 3
	case vasm.LdLoc, vasm.StLoc, vasm.LdStk, vasm.Spill, vasm.Reload:
		return 8 // 16-byte cell moves
	case vasm.GuardKind, vasm.GuardCls, vasm.GuardShape:
		return 10 // cmp + jcc
	case vasm.IncRef, vasm.DecRef:
		return 12 // check + inc/dec + branch
	case vasm.Helper:
		return 14 // arg moves + call
	case vasm.CallFunc, vasm.CallMethodD, vasm.CallMethodC, vasm.CallBuiltin:
		return 20
	case vasm.Ret:
		return 8
	case vasm.Exit, vasm.BindJmp:
		return 16
	case vasm.CountInc, vasm.ProfCallSite, vasm.ProfPropShape:
		return 7
	case vasm.LdPropIC, vasm.StPropIC:
		return 20 // shape load + cache probe + slot access

	case vasm.ArrCount, vasm.LdProp, vasm.StProp, vasm.LdThis:
		return 8
	case vasm.ArrGetPkI:
		return 14
	case vasm.LdLocGK, vasm.LdImmAddI, vasm.LdImmCmpI, vasm.CmpIJcc, vasm.CmpDJcc,
		vasm.IncRefN, vasm.DecRefN:
		// Superinstructions keep their components' encodings
		// back-to-back, so addresses are unchanged by fusion.
		var sz uint64
		for _, s := range ComponentSizes(in) {
			sz += s
		}
		return sz
	default:
		return 5 // ALU ops
	}
}

// ComponentSizes returns the encoded byte size of each component of
// in: one element for ordinary instructions, one per fused component
// for superinstructions. The fetch model consumes these so a fused
// stream touches exactly the icache lines the unfused stream did.
func ComponentSizes(in *vasm.Instr) []uint64 {
	switch in.Op {
	case vasm.LdLocGK:
		return []uint64{8, 10} // LdLoc + GuardKind
	case vasm.LdImmAddI, vasm.LdImmCmpI:
		return []uint64{10, 5} // LdImm + ALU
	case vasm.CmpIJcc, vasm.CmpDJcc:
		return []uint64{5, 6} // Cmp + Jcc
	case vasm.IncRefN, vasm.DecRefN:
		sizes := make([]uint64, len(in.Args))
		for i := range sizes {
			sizes[i] = 12 // IncRef/DecRef
		}
		return sizes
	default:
		return []uint64{instrSize(in)}
	}
}

// Assemble flattens a laid-out, register-allocated unit. Addresses
// are relative to 0 until Place assigns a base. A malformed stream
// (e.g. an immediate index past the constant pool) is a typed error,
// not a panic: the compile fails, the address is quarantined, and the
// process keeps serving from the interpreter (DESIGN.md §11).
func Assemble(u *vasm.Unit) (*Code, error) {
	order := u.Layout
	if order == nil {
		order = make([]int, len(u.Blocks))
		for i := range order {
			order[i] = i
		}
	}
	c := &Code{BlockIndex: map[int]int{}, Imms: u.Imms, Tables: u.Tables,
		NumSpills: u.NumSpills, ExtSlots: u.ExtFrameSlots}
	var off uint64
	for _, bi := range order {
		b := u.Blocks[bi]
		c.BlockIndex[bi] = len(c.Instrs)
		for i := range b.Instrs {
			in := b.Instrs[i]
			c.Instrs = append(c.Instrs, in)
			c.Addr = append(c.Addr, off)
			off += instrSize(&b.Instrs[i])
		}
	}
	// Jump tables live in the translation's rodata: count them into
	// the footprint (8 bytes per entry).
	for _, tbl := range u.Tables {
		off += uint64(8 * (len(tbl.Targets) + 1))
	}
	c.Size = off
	// Empty blocks at the end of the layout need an index too.
	for _, bi := range order {
		if _, ok := c.BlockIndex[bi]; !ok {
			c.BlockIndex[bi] = len(c.Instrs)
		}
	}
	for i := range c.Instrs {
		immIdx := int64(-1)
		switch c.Instrs[i].Op {
		case vasm.LdImm:
			immIdx = c.Instrs[i].I64
		case vasm.LdImmAddI, vasm.LdImmCmpI:
			immIdx = c.Instrs[i].I64 >> 16
		}
		if immIdx >= 0 && int(immIdx) >= len(c.Imms) {
			return nil, fmt.Errorf("mcode: %s imm #%d out of range (%d imms)",
				c.Instrs[i].Op, immIdx, len(c.Imms))
		}
	}
	// Smash-site identity: any smashable instruction (bind jumps and
	// direct call sites) gets a stable link slot addressed by its
	// index in the flattened stream.
	for i := range c.Instrs {
		if c.Instrs[i].Op.Smashable() {
			c.links = make([]atomic.Pointer[Link], len(c.Instrs))
			break
		}
	}
	return c, nil
}

// Place rebases the code at base.
func (c *Code) Place(base uint64) {
	c.Base = base
}

// AddrOf returns the absolute address of instruction i.
func (c *Code) AddrOf(i int) uint64 {
	if i < len(c.Addr) {
		return c.Base + c.Addr[i]
	}
	return c.Base + c.Size
}

// Area identifies code-cache regions.
type Area int

const (
	AreaHot Area = iota
	AreaCold
	AreaProfile
	AreaLive
	AreaCount
)

// Cache is the simulated code cache. Each area is a bump allocator;
// the total byte budget models the JITed-code limit swept in the
// paper's Figure 11 experiment.
type Cache struct {
	// Faults, when non-nil, injects transient allocation failures
	// (faultinject.AllocFail) ahead of the budget check. Set once at
	// engine construction, before any allocation.
	Faults *faultinject.Injector

	mu    sync.Mutex
	limit uint64
	used  [AreaCount]uint64
	next  [AreaCount]uint64

	// hugeBytes of the hot area are mapped with 2 MiB pages when
	// huge-page mapping is enabled. Atomic: HugeCovers sits on the
	// instruction-fetch fast path of every worker.
	hugeBytes atomic.Uint64

	// freeUnderflows counts Free calls that tried to return more
	// bytes than the area held (a bookkeeping bug upstream; the free
	// is clamped rather than ignored).
	freeUnderflows uint64
}

// Area base addresses, spaced far apart so areas never collide.
var areaBase = [AreaCount]uint64{
	AreaHot:     0x0800_0000,
	AreaCold:    0x4000_0000,
	AreaProfile: 0x8000_0000,
	AreaLive:    0xC000_0000,
}

// NewCache creates a cache with a byte limit (0 = unlimited).
func NewCache(limit uint64) *Cache {
	return &Cache{limit: limit}
}

// SetHugePages maps the first bytes of the hot area onto 2 MiB pages.
func (c *Cache) SetHugePages(bytes uint64) {
	c.hugeBytes.Store(bytes)
}

// HugeCovers reports whether addr falls in the huge-page-mapped
// region. Lock-free: concurrent fetch models consult it constantly.
func (c *Cache) HugeCovers(addr uint64) bool {
	hb := c.hugeBytes.Load()
	return hb > 0 && addr >= areaBase[AreaHot] && addr < areaBase[AreaHot]+hb
}

// Alloc reserves size bytes in an area, returning the base address.
// It fails when the total limit would be exceeded (the VM then stops
// JITing, falling back to the interpreter — point D in Figure 9).
func (c *Cache) Alloc(area Area, size uint64) (uint64, error) {
	if c.Faults.Should(faultinject.AllocFail) {
		return 0, faultinject.Errf(faultinject.AllocFail)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit > 0 && c.TotalUsedLocked()+size > c.limit {
		return 0, fmt.Errorf("mcode: %w (limit %d)", ErrCacheFull, c.limit)
	}
	base := areaBase[area] + c.next[area]
	c.next[area] += size
	c.used[area] += size
	return base, nil
}

// Free returns bytes to the budget (profiling code is discarded after
// the optimized translations are published). Oversized frees clamp to
// the area's remaining bytes (counted in FreeUnderflows) instead of
// being silently ignored, and fully retiring an area resets its bump
// pointer so the address space is actually recycled.
func (c *Cache) Free(area Area, size uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.used[area] {
		c.freeUnderflows++
		size = c.used[area]
	}
	c.used[area] -= size
	if c.used[area] == 0 {
		c.next[area] = 0
	}
}

// FreeUnderflows reports how many Free calls exceeded an area's
// allocated bytes and were clamped.
func (c *Cache) FreeUnderflows() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeUnderflows
}

// ResetArea clears an area's allocation point (relocation pass).
func (c *Cache) ResetArea(area Area) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.used[area] = 0
	c.next[area] = 0
}

// TotalUsed returns bytes allocated across areas.
func (c *Cache) TotalUsed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.TotalUsedLocked()
}

// TotalUsedLocked is TotalUsed without locking (internal).
func (c *Cache) TotalUsedLocked() uint64 {
	var t uint64
	for _, u := range c.used {
		t += u
	}
	return t
}

// AreaUsed returns bytes allocated in one area.
func (c *Cache) AreaUsed(a Area) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used[a]
}

// Limit returns the configured byte budget.
func (c *Cache) Limit() uint64 { return c.limit }
