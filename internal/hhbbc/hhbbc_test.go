package hhbbc_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hhbc"
	"repro/internal/jit"
)

func compile(t *testing.T, src string, skip bool) *hhbc.Unit {
	t.Helper()
	u, err := core.Compile(src, core.CompileOptions{SkipHHBBC: skip})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestInsertsAssertions: hhbbc must communicate inferred local types
// through AssertRATL instructions (the paper's Figure 3 pattern).
func TestInsertsAssertions(t *testing.T) {
	src := `
function f($n) {
  $sum = 0;
  for ($i = 0; $i < $n; $i++) { $sum = $sum + 1; }
  return $sum;
}
echo f(5);`
	with := compile(t, src, false)
	without := compile(t, src, true)
	count := func(u *hhbc.Unit) int {
		f, _ := u.FuncByName("f")
		n := 0
		for _, in := range f.Instrs {
			if in.Op == hhbc.OpAssertRATL {
				n++
			}
		}
		return n
	}
	if count(without) != 0 {
		t.Fatal("unoptimized unit already has assertions")
	}
	if count(with) == 0 {
		t.Error("hhbbc inserted no AssertRATL")
	}
	// $sum and $i are provably Int through the loop.
	f, _ := with.FuncByName("f")
	dis := hhbc.Disassemble(with, f)
	if !strings.Contains(dis, "AssertRATL") || !strings.Contains(dis, "Int") {
		t.Errorf("expected Int assertions in:\n%s", dis)
	}
}

// TestAssertionsPreserveSemantics: optimized and unoptimized bytecode
// produce identical output across varied programs.
func TestAssertionsPreserveSemantics(t *testing.T) {
	programs := []string{
		`function f($n){$s=0;for($i=0;$i<$n;$i++){$s+=$i;}return $s;} echo f(10);`,
		`function g($a){$t="";foreach($a as $k=>$v){$t.=$k.":".$v.";";}return $t;} echo g(["x"=>1,"y"=>2]);`,
		`function h($x){try{ if($x>2){throw new Exception("big");} return $x;}catch(Exception $e){return -1;}} echo h(1),h(5);`,
		`function r($n){ return $n<2?$n:r($n-1)+r($n-2);} echo r(10);`,
		`$m=["a"=>1]; $m["b"]=2; unset($m["a"]); echo count($m);`,
	}
	for _, src := range programs {
		a, err := core.Run(src, defaultJIT())
		if err != nil {
			t.Fatalf("%q: %v", src[:20], err)
		}
		unit := compile(t, src, true)
		var sb strings.Builder
		eng, err := core.NewEngine(unit, defaultJIT(), &sb)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunRequest(&sb); err != nil {
			t.Fatalf("%q (no hhbbc): %v", src[:20], err)
		}
		if sb.String() != a {
			t.Errorf("hhbbc changed semantics: %q vs %q", a, sb.String())
		}
	}
}

// TestJumpRemapping: insertion must keep all jump targets valid (the
// verifier re-runs after optimization and catches bad remaps).
func TestJumpRemapping(t *testing.T) {
	src := `
function z($n) {
  switch ($n) { case 1: return 10; case 2: return 20; case 3: return 30; default: break; }
  $x = 0;
  while ($x < $n) { $x++; if ($x == 3) { continue; } if ($x > 8) { break; } }
  foreach ([1,2,3] as $v) { $x += $v; }
  try { throw new Exception("e"); } catch (Exception $e) { $x++; }
  return $x;
}
echo z(5);`
	u := compile(t, src, false)
	if err := hhbc.VerifyUnit(u); err != nil {
		t.Fatalf("remapped unit fails verification: %v", err)
	}
	out, err := core.Run(src, defaultJIT())
	if err != nil || out == "" {
		t.Fatalf("run after remap: %q %v", out, err)
	}
}

func TestParamTypesFromHints(t *testing.T) {
	u := compile(t, `function f(int $a, string $b) { return $a; } echo f(1, "x");`, false)
	f, _ := u.FuncByName("f")
	if len(f.ParamTypes) != 2 {
		t.Fatalf("ParamTypes len = %d", len(f.ParamTypes))
	}
}

func defaultJIT() jit.Config { return jit.Config{Mode: jit.ModeInterp} }
