package runtime

import (
	"strings"

	"repro/internal/types"
)

// This file implements the semantics of the arithmetic, comparison,
// and string operators. These are shared by the interpreter and by
// the JIT's out-of-line helpers (the JIT open-codes only the
// type-specialized fast paths).

// Add implements the guest + operator. Int+Int stays Int (this subset
// wraps rather than promoting on overflow); any Dbl operand promotes;
// Arr+Arr is PHP array union.
func Add(h *Heap, a, b Value) (Value, error) {
	switch {
	case a.Kind == types.KInt && b.Kind == types.KInt:
		return Int(a.I + b.I), nil
	case a.Kind == types.KArr && b.Kind == types.KArr:
		return arrayUnion(h, a.A, b.A), nil
	case a.Kind&types.KNum != 0 || b.Kind&types.KNum != 0,
		a.Kind&(types.KNull|types.KBool|types.KStr) != 0 &&
			b.Kind&(types.KNull|types.KBool|types.KStr|types.KNum|types.KUninit) != 0:
		if a.Kind == types.KDbl || b.Kind == types.KDbl {
			return Dbl(a.ToDbl() + b.ToDbl()), nil
		}
		return Int(a.ToInt() + b.ToInt()), nil
	default:
		return Null(), NewError("unsupported operand types for +")
	}
}

func arrayUnion(h *Heap, a, b *Array) Value {
	res := a.clone()
	b.Each(func(k, v Value) bool {
		if _, ok := res.Get(k); !ok {
			h.IncRef(v)
			res = res.Set(h, k, v)
		}
		return true
	})
	return ArrV(res)
}

// Sub, Mul implement - and *.
func Sub(a, b Value) (Value, error) {
	return arith(a, b, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
}
func Mul(a, b Value) (Value, error) {
	return arith(a, b, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
}

func arith(a, b Value, fi func(int64, int64) int64, fd func(float64, float64) float64) (Value, error) {
	if a.Kind == types.KInt && b.Kind == types.KInt {
		return Int(fi(a.I, b.I)), nil
	}
	if a.Kind&(types.KArr|types.KObj) != 0 || b.Kind&(types.KArr|types.KObj) != 0 {
		return Null(), NewError("unsupported operand types")
	}
	if a.Kind == types.KDbl || b.Kind == types.KDbl {
		return Dbl(fd(a.ToDbl(), b.ToDbl())), nil
	}
	return Int(fi(a.ToInt(), b.ToInt())), nil
}

// Div implements /. Integer division producing a remainder yields a
// double, as in PHP.
func Div(a, b Value) (Value, error) {
	if a.Kind&(types.KArr|types.KObj) != 0 || b.Kind&(types.KArr|types.KObj) != 0 {
		return Null(), NewError("unsupported operand types for /")
	}
	if a.Kind == types.KInt && b.Kind == types.KInt {
		if b.I == 0 {
			return Null(), NewError("division by zero")
		}
		if a.I%b.I == 0 {
			return Int(a.I / b.I), nil
		}
		return Dbl(float64(a.I) / float64(b.I)), nil
	}
	bd := b.ToDbl()
	if bd == 0 {
		return Null(), NewError("division by zero")
	}
	return Dbl(a.ToDbl() / bd), nil
}

// Mod implements %.
func Mod(a, b Value) (Value, error) {
	bi := b.ToInt()
	if bi == 0 {
		return Null(), NewError("modulo by zero")
	}
	return Int(a.ToInt() % bi), nil
}

// Concat implements the . operator, producing a fresh counted string.
func Concat(a, b Value) Value {
	return NewStr(a.ToString() + b.ToString())
}

// ConcatMany concatenates n values (used by interpolation lowering).
func ConcatMany(vals []Value) Value {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.ToString())
	}
	return NewStr(sb.String())
}

// Cmp returns -1, 0, or 1 with PHP's loose comparison semantics
// (numeric strings compare numerically, etc. — simplified).
func Cmp(a, b Value) int {
	switch {
	case a.Kind == types.KStr && b.Kind == types.KStr:
		return strings.Compare(a.S.Data, b.S.Data)
	case a.Kind == types.KBool || b.Kind == types.KBool:
		return boolCmp(a.Bool(), b.Bool())
	case a.IsNull() && b.IsNull():
		return 0
	default:
		x, y := a.ToDbl(), b.ToDbl()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case a:
		return 1
	default:
		return -1
	}
}

// LooseEq implements ==.
func LooseEq(a, b Value) bool {
	if a.Kind == types.KArr && b.Kind == types.KArr {
		return arrayEq(a.A, b.A)
	}
	if a.Kind == types.KObj || b.Kind == types.KObj {
		return a.Kind == b.Kind && a.O == b.O
	}
	return Cmp(a, b) == 0
}

func arrayEq(a, b *Array) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Each(func(k, v Value) bool {
		bv, ok := b.Get(k)
		if !ok || !LooseEq(v, bv) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// StrictEq implements === (same type and value; same identity for
// objects; same order and strict-equal elements for arrays).
func StrictEq(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case types.KUninit, types.KNull:
		return true
	case types.KBool, types.KInt:
		return a.I == b.I
	case types.KDbl:
		return a.D == b.D
	case types.KStr:
		return a.S.Data == b.S.Data
	case types.KObj:
		return a.O == b.O
	case types.KArr:
		return arraySame(a.A, b.A)
	}
	return false
}

func arraySame(a, b *Array) bool {
	if a.Len() != b.Len() {
		return false
	}
	type kv struct{ k, v Value }
	var as, bs []kv
	a.Each(func(k, v Value) bool { as = append(as, kv{k, v}); return true })
	b.Each(func(k, v Value) bool { bs = append(bs, kv{k, v}); return true })
	for i := range as {
		if !StrictEq(as[i].k, bs[i].k) || !StrictEq(as[i].v, bs[i].v) {
			return false
		}
	}
	return true
}
