package vasm

import "sort"

// Allocate performs linear-scan register allocation in the style of
// Wimmer & Franz (SSA-based linear scan): live intervals over a
// linearized block order, NumPhysRegs physical cell registers, and
// spill slots for the overflow. Spilled virtual registers get a
// Reload before each use and a Spill after each definition.
func Allocate(u *Unit) {
	lin := linearize(u)

	// Live intervals [start, end] per vreg over linear positions.
	type interval struct {
		vreg       Reg
		start, end int
	}
	starts, ends := liveIntervals(u, lin)

	var ivs []interval
	for r, s := range starts {
		ivs = append(ivs, interval{vreg: r, start: s, end: ends[r]})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].vreg < ivs[j].vreg
	})

	phys := map[Reg]Reg{}  // vreg -> physical
	spill := map[Reg]int{} // vreg -> spill slot
	type active struct {
		vreg Reg
		end  int
		p    Reg
	}
	var act []active
	freeRegs := make([]Reg, 0, NumPhysRegs)
	for i := NumPhysRegs - 1; i >= 0; i-- {
		freeRegs = append(freeRegs, Reg(i))
	}
	nextSpill := 0

	for _, iv := range ivs {
		// Expire old intervals.
		na := act[:0]
		for _, a := range act {
			if a.end < iv.start {
				freeRegs = append(freeRegs, a.p)
			} else {
				na = append(na, a)
			}
		}
		act = na
		if len(freeRegs) > 0 {
			p := freeRegs[len(freeRegs)-1]
			freeRegs = freeRegs[:len(freeRegs)-1]
			phys[iv.vreg] = p
			act = append(act, active{iv.vreg, iv.end, p})
			continue
		}
		// Spill the interval ending furthest away.
		furthest := -1
		for i, a := range act {
			if furthest < 0 || a.end > act[furthest].end {
				furthest = i
			}
		}
		if act[furthest].end > iv.end {
			victim := act[furthest]
			spill[victim.vreg] = nextSpill
			nextSpill++
			delete(phys, victim.vreg)
			phys[iv.vreg] = victim.p
			act[furthest] = active{iv.vreg, iv.end, victim.p}
		} else {
			spill[iv.vreg] = nextSpill
			nextSpill++
		}
	}

	// Rewrite instructions: spilled registers borrow a reserved
	// scratch physical register via Reload/Spill around each
	// use/definition. Two scratch registers cover binary ops.
	rewrite(u, lin, phys, spill)
	u.NumSpills = nextSpill
}

type instrRef struct{ block, idx int }

// linearize returns instruction references in layout (or natural)
// block order.
func linearize(u *Unit) []instrRef {
	order := u.Layout
	if order == nil {
		order = make([]int, len(u.Blocks))
		for i := range order {
			order[i] = i
		}
	}
	var out []instrRef
	for _, bi := range order {
		for i := range u.Blocks[bi].Instrs {
			out = append(out, instrRef{bi, i})
		}
	}
	return out
}

// liveIntervals computes [start, end] per virtual register using a
// backward liveness dataflow over the block graph, then widening each
// register's interval to cover every linear position where it is
// live — the interval construction of Wimmer-Franz linear scan.
func liveIntervals(u *Unit, lin []instrRef) (map[Reg]int, map[Reg]int) {
	// Per-instruction uses/defs.
	uses := func(in *Instr, f func(Reg)) {
		if in.A != InvalidReg {
			f(in.A)
		}
		if in.B != InvalidReg {
			f(in.B)
		}
		for _, r := range in.Args {
			f(r)
		}
		if in.Ex != nil {
			for _, r := range in.Ex.StackRegs {
				f(r)
			}
			for ii := in.Ex.Inline; ii != nil; ii = ii.Parent {
				if ii.ThisReg != InvalidReg {
					f(ii.ThisReg)
				}
				for _, r := range ii.CallerStackRegs {
					f(r)
				}
			}
		}
	}

	// Successor map (all jump targets, including guard edges).
	succs := make([][]int, len(u.Blocks))
	for bi, b := range u.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case Jmp, GuardKind, GuardCls, GuardShape:
				if in.Target1 >= 0 {
					succs[bi] = append(succs[bi], in.Target1)
				}
			case Jcc:
				succs[bi] = append(succs[bi], in.Target1, in.Target2)
			case JmpTable:
				tbl := u.Tables[in.I64]
				succs[bi] = append(succs[bi], tbl.Targets...)
				succs[bi] = append(succs[bi], tbl.Default)
			case ArrGetPkI, Helper, CallFunc, CallMethodD, CallMethodC, CallBuiltin,
				LdPropIC, StPropIC:
				if in.Target1 >= 0 {
					succs[bi] = append(succs[bi], in.Target1)
				}
			}
		}
	}

	// gen/kill per block (backward within the block).
	gen := make([]map[Reg]bool, len(u.Blocks))
	kill := make([]map[Reg]bool, len(u.Blocks))
	for bi, b := range u.Blocks {
		g, k := map[Reg]bool{}, map[Reg]bool{}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if in.D != InvalidReg {
				k[in.D] = true
				delete(g, in.D)
			}
			uses(in, func(r Reg) { g[r] = true })
		}
		gen[bi], kill[bi] = g, k
	}

	// Backward dataflow to a fixpoint.
	liveIn := make([]map[Reg]bool, len(u.Blocks))
	liveOut := make([]map[Reg]bool, len(u.Blocks))
	for i := range liveIn {
		liveIn[i] = map[Reg]bool{}
		liveOut[i] = map[Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for bi := len(u.Blocks) - 1; bi >= 0; bi-- {
			out := liveOut[bi]
			for _, s := range succs[bi] {
				if s < 0 || s >= len(u.Blocks) {
					continue
				}
				for r := range liveIn[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := liveIn[bi]
			for r := range out {
				if !kill[bi][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range gen[bi] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}

	// Build intervals over linear positions.
	starts := map[Reg]int{}
	ends := map[Reg]int{}
	touch := func(r Reg, pos int) {
		if r == InvalidReg {
			return
		}
		if s, ok := starts[r]; !ok || pos < s {
			starts[r] = pos
		}
		if pos > ends[r] {
			ends[r] = pos
		}
	}
	blockFirst := map[int]int{}
	blockLast := map[int]int{}
	for pos, ref := range lin {
		if _, ok := blockFirst[ref.block]; !ok {
			blockFirst[ref.block] = pos
		}
		blockLast[ref.block] = pos
	}
	for pos, ref := range lin {
		in := &u.Blocks[ref.block].Instrs[ref.idx]
		uses(in, func(r Reg) { touch(r, pos) })
		touch(in.D, pos)
	}
	for bi := range u.Blocks {
		bf, ok := blockFirst[bi]
		if !ok {
			continue
		}
		bl := blockLast[bi]
		for r := range liveIn[bi] {
			touch(r, bf)
		}
		for r := range liveOut[bi] {
			touch(r, bl)
		}
	}
	return starts, ends
}

// Reserved scratch physical registers for spilled operands.
const (
	scratch0 = Reg(NumPhysRegs)
	scratch1 = Reg(NumPhysRegs + 1)
	scratch2 = Reg(NumPhysRegs + 2)
)

// TotalMachineRegs is the machine register file size (allocatable +
// scratch).
const TotalMachineRegs = NumPhysRegs + 3

func rewrite(u *Unit, lin []instrRef, phys map[Reg]Reg, spill map[Reg]int) {
	mapUse := func(r Reg, scratch Reg, pre *[]Instr) Reg {
		if r == InvalidReg {
			return r
		}
		if p, ok := phys[r]; ok {
			return p
		}
		slot, ok := spill[r]
		if !ok {
			return 0 // defined but never allocated (unused): park in r0
		}
		in := nzInstr(Reload)
		in.D = scratch
		in.I64 = int64(slot)
		*pre = append(*pre, in)
		return scratch
	}
	mapDef := func(r Reg, scratch Reg, post *[]Instr) Reg {
		if r == InvalidReg {
			return r
		}
		if p, ok := phys[r]; ok {
			return p
		}
		slot, ok := spill[r]
		if !ok {
			return 0
		}
		in := nzInstr(Spill)
		in.A = scratch
		in.I64 = int64(slot)
		*post = append(*post, in)
		return scratch
	}

	for _, b := range u.Blocks {
		var out []Instr
		for i := range b.Instrs {
			in := b.Instrs[i]
			var pre, post []Instr
			in.A = mapUse(in.A, scratch0, &pre)
			in.B = mapUse(in.B, scratch1, &pre)
			for ai := range in.Args {
				// Args beyond two scratches spill through scratch2
				// sequentially; the machine consumes args before any
				// further reloads, so sequential reuse is safe only
				// for the materialization order. Use dedicated moves:
				// args are copied into an argument area by the
				// machine, so reload directly into scratch2 and copy.
				r := in.Args[ai]
				if r == InvalidReg {
					continue
				}
				if p, ok := phys[r]; ok {
					in.Args[ai] = p
					continue
				}
				slot, ok := spill[r]
				if !ok {
					in.Args[ai] = 0
					continue
				}
				// Reload into scratch2 then stash via a Copy into a
				// fresh spill-backed "argument pseudo register": to
				// keep the model simple the machine reads call args
				// AFTER all reloads, so multiple spilled args would
				// collide on scratch2. Instead, pass the spill slot
				// through the high bits: the machine decodes arg regs
				// >= spillRegBase as spill-slot reads.
				in.Args[ai] = SpillRegBase + Reg(slot)
				_ = scratch2
			}
			if in.Ex != nil {
				ex := *in.Ex
				ex.StackRegs = append([]Reg(nil), in.Ex.StackRegs...)
				for si, r := range ex.StackRegs {
					if p, ok := phys[r]; ok {
						ex.StackRegs[si] = p
					} else if slot, ok := spill[r]; ok {
						ex.StackRegs[si] = SpillRegBase + Reg(slot)
					} else {
						ex.StackRegs[si] = 0
					}
				}
				remap := func(r Reg) Reg {
					if r == InvalidReg {
						return r
					}
					if p, ok := phys[r]; ok {
						return p
					}
					if slot, ok := spill[r]; ok {
						return SpillRegBase + Reg(slot)
					}
					return 0
				}
				var remapInline func(ii *InlineInfo) *InlineInfo
				remapInline = func(ii *InlineInfo) *InlineInfo {
					if ii == nil {
						return nil
					}
					ni := *ii
					ni.CallerStackRegs = append([]Reg(nil), ii.CallerStackRegs...)
					ni.ThisReg = remap(ni.ThisReg)
					for si, r := range ni.CallerStackRegs {
						ni.CallerStackRegs[si] = remap(r)
					}
					ni.Parent = remapInline(ii.Parent)
					return &ni
				}
				ex.Inline = remapInline(in.Ex.Inline)
				in.Ex = &ex
			}
			in.D = mapDef(in.D, scratch0, &post)
			out = append(out, pre...)
			out = append(out, in)
			out = append(out, post...)
		}
		b.Instrs = out
	}
	_ = lin
}

// SpillRegBase: register numbers at or above this value denote spill
// slots in call-argument and exit-stack lists (the machine reads them
// from the spill area).
const SpillRegBase = Reg(1 << 16)
