// Package server simulates a web server resuming production traffic
// after a restart — the Figure 9 experiment: JITed code grows as
// profiling translations are minted (point A), the global trigger
// recompiles everything and publishes optimized code (points B–C),
// and requests-per-second climbs to (and transiently beyond) the
// steady-state level as redirected fleet traffic lands on the warmed
// server. Point D (code cache full) appears when the cache limit is
// small enough to be hit.
package server

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"repro/internal/jit"
	"repro/internal/jumpstart"
	"repro/internal/perflab"
	"repro/internal/sentry"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Sample is one timeline point.
type Sample struct {
	Minute float64
	// CodeBytes is total JITed code resident.
	CodeBytes uint64
	// RPSPct is throughput relative to steady state (100 = steady).
	RPSPct float64
	// Event holds the lifecycle points reached this minute, in a fixed
	// "J", "A", "C", "D", "F", "R", "V" order ("J" jumpstarted from a
	// snapshot, "A" profiling done, "C" optimized published, "D" cache
	// full, "F" first contained translation fault, "R" first code-cache
	// recycle, "V" first verification finding — corruption, torn link,
	// or divergence). Coincident events all appear: a minute where
	// profiling finishes and the optimized code is published reads
	// "AC".
	Event string
}

// Config tunes the simulation.
type Config struct {
	// Minutes of simulated time.
	Minutes int
	// CyclesPerMinute is the server's compute budget per simulated
	// minute.
	CyclesPerMinute uint64
	// JIT is the engine configuration.
	JIT jit.Config
	// Utilization is the steady-state demand as a fraction of server
	// capacity (production servers keep headroom; the headroom is
	// what lets a warmed server absorb redirected fleet traffic and
	// exceed 100% of steady-state RPS).
	Utilization float64
	// FleetWaveAt/FleetWaveMinutes: when other restart waves shift
	// extra traffic here (the >100% RPS stretch in Figure 9).
	FleetWaveAt      int
	FleetWaveMinutes int
	// Seed for request-mix sampling.
	Seed int64
	// Workers is the number of concurrent request workers (simulated
	// cores). 0 or 1 serves single-threaded — the exact legacy
	// timeline. With N > 1, N worker VMs share one JIT: each worker
	// gets a full per-minute cycle budget and its own request stream,
	// the global retranslation runs on a background compiler
	// goroutine, and RPSPct is reported against N× the single-core
	// steady-state throughput.
	Workers int
	// CompileWorkers, when > 1, fans JIT backend compiles over that
	// many goroutines under per-function translation leases (plumbed
	// into JIT.CompileWorkers). 0 keeps whatever the JIT config says.
	CompileWorkers int
	// Jumpstart, when set, warm-starts the restarted server from a
	// persisted profile snapshot before it serves its first request:
	// profiling is skipped and optimized code is published
	// immediately. The time the optimizing compiler spends is charged
	// against minute 0's cycle budget — warm starts are not free, just
	// much cheaper than minutes of profiling.
	Jumpstart *jumpstart.Snapshot
	// VerifySample, when > 0, attaches a sentry monitor to the
	// restarted server: that fraction of requests is re-executed on a
	// shadow interpreter and compared, the code cache is audited one
	// chunk per simulated minute, and divergences are bisected and
	// quarantined. Shadow work runs on the monitor's own VMs, so it
	// never consumes the serving cycle budget.
	VerifySample float64
}

// DefaultConfig approximates the paper's 30-minute window.
func DefaultConfig() Config {
	c := Config{
		Minutes:          30,
		CyclesPerMinute:  2_500_000,
		JIT:              jit.DefaultConfig(),
		Utilization:      0.62,
		FleetWaveAt:      10,
		FleetWaveMinutes: 6,
		Seed:             1,
	}
	c.JIT.ProfileTrigger = 15000
	return c
}

// Result is the full timeline plus steady-state calibration.
type Result struct {
	Samples []Sample
	// SteadyRPS is the calibrated steady-state requests/minute.
	SteadyRPS float64
	// SteadyCodeBytes is the steady-state code footprint.
	SteadyCodeBytes uint64
	// PctTimeInLiveCode approximates the paper's "8% of JITed-code
	// time in live translations" steady-state metric. It is computed
	// from simulated cycle time — machine cycles spent in live
	// tracelets as a share of machine cycles in live + optimized code
	// — not from code bytes.
	PctTimeInLiveCode float64
	// MinutesTo90 is the first simulated minute at which throughput
	// reached 90% of steady state (time-to-90%-steady-RPS, the warmup
	// metric jumpstart attacks); MinutesTo90Never if the run ended
	// before getting there. Check Reached90 before treating it as a
	// time.
	MinutesTo90 float64
	// JumpstartLoad reports snapshot acceptance when Config.Jumpstart
	// was set.
	JumpstartLoad jit.JumpstartResult
	// Direct-chaining activity over the run: smash sites bound,
	// transfers that stayed inside the code cache (jumps + calls),
	// and links invalidated by the optimized-index publish.
	BindsSmashed     uint64
	ChainedTransfers uint64
	LinksSwept       uint64
	// Self-healing activity over the run (zero in fault-free runs):
	// contained translation faults, translations evicted by cache
	// recycling, and recycle episodes (DESIGN.md §11).
	TransFaults uint64
	Evictions   uint64
	RecycleRuns uint64
	// Verify holds the sentry monitor's counters when
	// Config.VerifySample was set (audits, shadow comparisons,
	// divergences, quarantined culprits — DESIGN.md §15).
	Verify sentry.Stats
}

// MinutesTo90Never is the sentinel MinutesTo90 value (shared by the
// fleet-level warmup metrics) reporting that throughput never reached
// 90% of steady state within the simulated window. It is negative so
// arithmetic misuse is loud; consumers must check Reached90 (or
// compare against this constant) instead of reading the value as a
// minute.
const MinutesTo90Never = -1

// Reached90 reports whether the run ever reached 90% of steady-state
// RPS — whether MinutesTo90 holds a real minute rather than the
// MinutesTo90Never sentinel.
func (r *Result) Reached90() bool { return r.MinutesTo90 != MinutesTo90Never }

// Simulate runs the restart timeline.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Minutes == 0 {
		cfg = DefaultConfig()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		// Request workers must keep serving while the optimizing
		// compiler runs: hand the global retranslation to a background
		// goroutine instead of stalling the triggering worker.
		cfg.JIT.BackgroundCompile = true
	}
	if cfg.CompileWorkers != 0 {
		cfg.JIT.CompileWorkers = cfg.CompileWorkers
	}
	// Calibrate steady state with a fully warmed engine.
	steadyEng, eps, err := perflab.NewEngine(cfg.JIT)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func(r *rand.Rand) workload.Endpoint {
		x := r.Float64()
		acc := 0.0
		for _, ep := range eps {
			acc += ep.Weight
			if x <= acc {
				return ep
			}
		}
		return eps[len(eps)-1]
	}
	for i := 0; i < 60; i++ {
		for _, ep := range eps {
			if _, _, err := perflab.RunEndpoint(steadyEng, ep.Name); err != nil {
				return nil, err
			}
		}
	}
	var steadyCycles uint64
	steadyN := 0
	for i := 0; i < 40; i++ {
		ep := pick(rng)
		c, _, err := perflab.RunEndpoint(steadyEng, ep.Name)
		if err != nil {
			return nil, err
		}
		steadyCycles += c
		steadyN++
	}
	steadyPerReq := float64(steadyCycles) / float64(steadyN)
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.62
	}
	capacityRPS := float64(cfg.CyclesPerMinute) / steadyPerReq
	steadyRPS := cfg.Utilization * capacityRPS

	// Fresh server: replay the restart.
	eng, _, err := perflab.NewEngine(cfg.JIT)
	if err != nil {
		return nil, err
	}
	res := &Result{
		SteadyRPS: steadyRPS,
		SteadyCodeBytes: steadyEng.Stats().BytesOptimized +
			steadyEng.Stats().BytesLive + steadyEng.Stats().BytesProfiling,
	}
	// Jumpstart: load the snapshot before the first request lands. The
	// optimizing compiler's cycles are charged against minute 0.
	var jumpstartCycles uint64
	if cfg.Jumpstart != nil {
		before := eng.Cycles()
		res.JumpstartLoad = eng.LoadProfile(cfg.Jumpstart)
		jumpstartCycles = eng.Cycles() - before
	}
	// Self-verification: checksum every publish, audit one chunk per
	// minute, shadow-sample the configured request fraction.
	var mon *sentry.Monitor
	if cfg.VerifySample > 0 {
		mon, err = sentry.New(sentry.Config{SampleRate: cfg.VerifySample, Seed: cfg.Seed}, eng.VM.JIT)
		if err != nil {
			return nil, err
		}
		defer mon.Close()
	}

	// Worker pool: worker 0 is the engine's primary VM; extra workers
	// share its JIT (translation index, counters, code cache) with
	// private interpreter state. Each worker draws from its own seeded
	// request stream so multi-worker runs are reproducible.
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	rngs := make([]*rand.Rand, workers)
	rngs[0] = rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
		rngs[i] = rand.New(rand.NewSource(cfg.Seed + 1 + int64(i)))
	}

	sawOptimize := cfg.Jumpstart != nil && res.JumpstartLoad.Optimized
	sawProfilingDone := sawOptimize
	sawFull := false
	sawFault := false
	sawRecycle := false
	sawVerify := false
	jumpEvent := sawOptimize
	for minute := 0; minute < cfg.Minutes; minute++ {
		// Fleet-wave overload window: load balancers shift traffic of
		// restarting peers onto this (now warm) server.
		demand := steadyRPS
		if minute >= cfg.FleetWaveAt && minute < cfg.FleetWaveAt+cfg.FleetWaveMinutes {
			demand = steadyRPS * 1.6
		}
		budgetFor := func(worker int) uint64 {
			budget := cfg.CyclesPerMinute
			// The jumpstart load ran on the primary before serving
			// started; its cycles come out of worker 0's first minute.
			if worker == 0 && minute == 0 && jumpstartCycles > 0 {
				if jumpstartCycles >= budget {
					return 0
				}
				return budget - jumpstartCycles
			}
			return budget
		}
		served := 0
		if workers == 1 {
			budget := budgetFor(0)
			start := eng.Cycles()
			for float64(served) < demand && eng.Cycles()-start < budget {
				ep := pick(rngs[0])
				_, out, err := perflab.RunEndpoint(eng, ep.Name)
				if err != nil {
					return nil, err
				}
				mon.Observe(ep.Name, out)
				served++
			}
		} else {
			perWorker := make([]int, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					v, budget := ws[i], budgetFor(i)
					start := v.Meter.Cycles
					for float64(perWorker[i]) < demand && v.Meter.Cycles-start < budget {
						ep := pick(rngs[i])
						_, out, err := perflab.RunEndpointVM(v, ep.Name)
						if err != nil {
							errs[i] = err
							return
						}
						mon.Observe(ep.Name, out)
						perWorker[i]++
					}
				}(i)
			}
			wg.Wait()
			for i := range errs {
				if errs[i] != nil {
					return nil, errs[i]
				}
				served += perWorker[i]
			}
		}
		// End-of-minute verification pass: audit one low-priority chunk
		// of the code cache, then drain pending shadow comparisons so
		// the per-minute counters (and the "V" event latch) are
		// deterministic rather than dependent on comparator timing.
		if mon != nil {
			mon.AuditStep(0)
			mon.Drain()
		}
		st := eng.Stats()
		code := st.BytesProfiling + st.BytesOptimized + st.BytesLive
		// Coincident lifecycle events are concatenated (fixed J, A, C,
		// D order), never overwritten. "A" (profiling done) latches
		// even when the optimize trigger fires the same minute.
		ev := ""
		if jumpEvent {
			ev += "J"
			jumpEvent = false
		}
		if !sawProfilingDone && st.ProfilingTranslations > 0 &&
			(minute >= 1 || st.OptimizeRuns > 0) {
			ev += "A"
			sawProfilingDone = true
		}
		if !sawOptimize && st.OptimizeRuns > 0 {
			ev += "C"
			sawOptimize = true
		}
		if !sawFull && st.CacheFullEvents > 0 {
			ev += "D"
			sawFull = true
		}
		if !sawFault && st.TransFaults > 0 {
			ev += "F"
			sawFault = true
		}
		if !sawRecycle && st.RecycleRuns > 0 {
			ev += "R"
			sawRecycle = true
		}
		if !sawVerify && mon != nil {
			if vs := mon.Stats(); vs.Corruptions+vs.TornLinks+vs.DanglingLinks+vs.Divergences > 0 {
				ev += "V"
				sawVerify = true
			}
		}
		res.Samples = append(res.Samples, Sample{
			Minute:    float64(minute + 1),
			CodeBytes: code,
			RPSPct:    100 * float64(served) / (steadyRPS * float64(workers)),
			Event:     ev,
		})
	}
	st := eng.Stats()
	// Share of JITed-code *cycle time* spent in live translations
	// (live vs optimized; profiling-translation time is warmup, not
	// steady state, and is excluded).
	if denom := st.MachineCyclesLive + st.MachineCyclesOptimized; denom > 0 {
		res.PctTimeInLiveCode = 100 * float64(st.MachineCyclesLive) / float64(denom)
	}
	res.BindsSmashed = st.BindsSmashed
	res.ChainedTransfers = st.ChainedJumps + st.ChainedCalls
	res.LinksSwept = st.LinksSwept
	res.TransFaults = st.TransFaults
	res.Evictions = st.Evictions
	res.RecycleRuns = st.RecycleRuns
	if mon != nil {
		mon.Drain()
		res.Verify = mon.Stats()
	}
	res.MinutesTo90 = MinutesTo90Never
	for _, s := range res.Samples {
		if s.RPSPct >= 90 {
			res.MinutesTo90 = s.Minute
			break
		}
	}
	return res, nil
}

// WarmSnapshot runs a donor server to steady state under cfg and
// returns its profile snapshot — the artifact a production fleet
// persists periodically and ships to restarting peers. The donor is
// driven with the endpoint suite until the global retranslation
// trigger fires (bounded), so the snapshot holds a full profile.
func WarmSnapshot(cfg Config) (*jumpstart.Snapshot, error) {
	if cfg.Minutes == 0 {
		cfg = DefaultConfig()
	}
	eng, eps, err := perflab.NewEngine(cfg.JIT)
	if err != nil {
		return nil, err
	}
	for round := 0; round < 300 && eng.Stats().OptimizeRuns == 0; round++ {
		for _, ep := range eps {
			if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
				return nil, err
			}
		}
	}
	return eng.ProfileSnapshot(), nil
}

// Report renders the timeline.
func Report(w io.Writer, r *Result) {
	fmt.Fprintf(w, "%6s %12s %8s %s\n", "minute", "code(bytes)", "RPS%", "event")
	for _, s := range r.Samples {
		fmt.Fprintf(w, "%6.0f %12d %8.1f %s\n", s.Minute, s.CodeBytes, s.RPSPct, s.Event)
	}
	fmt.Fprintf(w, "steady RPS=%.1f/min, steady code=%d bytes, live-code time share=%.1f%%\n",
		r.SteadyRPS, r.SteadyCodeBytes, r.PctTimeInLiveCode)
	if r.Reached90() {
		fmt.Fprintf(w, "time to 90%% steady RPS: minute %.0f\n", r.MinutesTo90)
	} else {
		fmt.Fprintf(w, "time to 90%% steady RPS: not reached\n")
	}
	if jl := r.JumpstartLoad; jl.LoadedTrans > 0 || len(jl.StaleFuncs) > 0 {
		fmt.Fprintf(w, "jumpstart: %d funcs, %d translations loaded; %d stale, %d unknown\n",
			jl.LoadedFuncs, jl.LoadedTrans, len(jl.StaleFuncs), len(jl.UnknownFuncs))
	}
	if r.BindsSmashed > 0 {
		fmt.Fprintf(w, "chaining: %d sites smashed, %d direct transfers, %d links swept at publish\n",
			r.BindsSmashed, r.ChainedTransfers, r.LinksSwept)
	}
	if r.TransFaults > 0 || r.RecycleRuns > 0 {
		fmt.Fprintf(w, "self-healing: %d faults contained, %d recycle runs, %d translations evicted\n",
			r.TransFaults, r.RecycleRuns, r.Evictions)
	}
	if v := r.Verify; v.Audited > 0 || v.Sampled > 0 {
		fmt.Fprintf(w, "verify: %d audited (%d corruptions, %d torn links), %d shadow runs, %d divergences, %d quarantined\n",
			v.Audited, v.Corruptions, v.TornLinks, v.ShadowRuns, v.Divergences, v.Quarantined)
	}
}
