package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
)

// TestHeapBalancedAcrossModes checks the reference-counting
// invariants the RCE pass must preserve: after every request, no
// guest objects are left alive, and the number of destructor runs and
// COW copies matches the interpreter exactly in every JIT mode.
func TestHeapBalancedAcrossModes(t *testing.T) {
	src := `
class Res {
  public $id = 0;
  function __construct($id) { $this->id = $id; }
  function __destruct() { echo ""; }
}
function churn($n) {
  $acc = 0;
  $arr = [];
  for ($i = 0; $i < $n; $i++) {
    $r = new Res($i);
    $arr[] = $r->id;
    $copy = $arr;        // shared
    $copy[] = -1;        // COW
    $acc += count($copy) + strlen("s" . $i);
  }
  return $acc;
}
echo churn(15), "\n";
`
	type obs struct {
		destructs, cows uint64
		live            int64
	}
	results := map[string]obs{}
	for _, mode := range []jit.Mode{jit.ModeInterp, jit.ModeTracelet, jit.ModeRegion} {
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := jit.DefaultConfig()
		cfg.Mode = mode
		cfg.ProfileTrigger = 15
		eng, err := core.NewEngine(unit, cfg, &strings.Builder{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := eng.RunRequest(&strings.Builder{}); err != nil {
				t.Fatalf("[%v] %v", mode, err)
			}
			if live := eng.Heap().Snapshot().LiveObjs; live != 0 {
				t.Fatalf("[%v] request %d leaked %d objects", mode, i, live)
			}
		}
		h0 := eng.Heap().Snapshot()
		if _, err := eng.RunRequest(&strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		h1 := eng.Heap().Snapshot()
		results[mode.String()] = obs{
			destructs: h1.Destructs - h0.Destructs,
			cows:      h1.CowCopies - h0.CowCopies,
			live:      h1.LiveObjs,
		}
	}
	ref := results["interp"]
	if ref.destructs == 0 || ref.cows == 0 {
		t.Fatalf("reference run observed nothing: %+v", ref)
	}
	for mode, o := range results {
		if o.destructs != ref.destructs {
			t.Errorf("[%s] destructor runs %d != interpreter's %d (refcounting semantics broken)",
				mode, o.destructs, ref.destructs)
		}
		if o.cows != ref.cows {
			t.Errorf("[%s] COW copies %d != interpreter's %d",
				mode, o.cows, ref.cows)
		}
	}
}

// TestRCEReducesRefcountTraffic: with RCE on, strictly fewer refcount
// operations execute in steady state, with identical observable
// behaviour.
func TestRCEReducesRefcountTraffic(t *testing.T) {
	src := `
function scan($arr) {
  $n = count($arr);
  $sum = 0;
  for ($i = 0; $i < $n; $i++) { $sum += $arr[$i]; }
  return $sum;
}
$data = [];
for ($i = 0; $i < 40; $i++) { $data[] = $i; }
echo scan($data), "\n";
`
	measure := func(rce bool) uint64 {
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := jit.DefaultConfig()
		cfg.EnableRCE = rce
		cfg.ProfileTrigger = 15
		eng, err := core.NewEngine(unit, cfg, &strings.Builder{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if _, err := eng.RunRequest(&strings.Builder{}); err != nil {
				t.Fatal(err)
			}
		}
		h0 := eng.Heap().Snapshot()
		if _, err := eng.RunRequest(&strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		h1 := eng.Heap().Snapshot()
		return (h1.IncRefs - h0.IncRefs) + (h1.DecRefs - h0.DecRefs)
	}
	with, without := measure(true), measure(false)
	if with >= without {
		t.Errorf("RCE did not reduce refcount ops: %d with vs %d without", with, without)
	}
}
