package workload

import (
	"fmt"
	"strings"
)

// Combined builds one source unit containing every endpoint, with each
// endpoint's request code wrapped in an endpoint_<name>() function —
// the "monolithic code base" shape of the paper's evaluation: one
// server process, one JIT, one code cache for the whole site.
func Combined() (src string, endpoints []Endpoint) {
	eps := Suite()
	var sb strings.Builder
	for _, ep := range eps {
		funcs, mainBody := splitTopLevel(ep.Src)
		sb.WriteString(funcs)
		fmt.Fprintf(&sb, "\nfunction endpoint_%s() {\n%s\n return 0;\n}\n", ep.Name, mainBody)
	}
	return sb.String(), eps
}

// EndpointFunc returns the wrapper function name for an endpoint.
func EndpointFunc(name string) string { return "endpoint_" + name }

// splitTopLevel separates function/class/interface declarations from
// top-level statements in an endpoint source. Declarations are
// brace-balanced blocks introduced by their keywords at nesting depth
// zero.
func splitTopLevel(src string) (decls string, mainBody string) {
	var d, m strings.Builder
	i := 0
	n := len(src)
	for i < n {
		j := skipSpace(src, i)
		if j >= n {
			break
		}
		if word, ok := keywordAt(src, j); ok &&
			(word == "function" || word == "class" || word == "interface") {
			end := declEnd(src, j)
			d.WriteString(src[j:end])
			d.WriteString("\n")
			i = end
			continue
		}
		// Statement: copy through the terminating ';' at depth 0 (or
		// a balanced block for control structures).
		end := stmtEnd(src, j)
		m.WriteString(src[j:end])
		m.WriteString("\n")
		i = end
	}
	return d.String(), m.String()
}

func skipSpace(s string, i int) int {
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r':
			i++
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		default:
			return i
		}
	}
	return i
}

func keywordAt(s string, i int) (string, bool) {
	j := i
	for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z') {
		j++
	}
	if j == i {
		return "", false
	}
	return strings.ToLower(s[i:j]), true
}

// declEnd finds the end of a brace-delimited declaration.
func declEnd(s string, i int) int {
	depth := 0
	started := false
	for ; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
			started = true
		case '}':
			depth--
			if started && depth == 0 {
				return i + 1
			}
		case '"', '\'':
			i = skipString(s, i)
		}
	}
	return len(s)
}

// stmtEnd finds the end of one top-level statement (through `;` at
// depth 0, or through a balanced brace block for for/if/foreach...).
func stmtEnd(s string, i int) int {
	depth := 0
	sawBrace := false
	for ; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
			sawBrace = true
		case '}':
			depth--
			if sawBrace && depth == 0 {
				// Control-structure body closed; the statement ends
				// unless an else/elseif/catch clause follows.
				k := skipSpace(s, i+1)
				if word, ok := keywordAt(s, k); ok &&
					(word == "else" || word == "elseif" || word == "catch") {
					continue
				}
				return i + 1
			}
		case ';':
			if depth == 0 {
				return i + 1
			}
		case '"', '\'':
			i = skipString(s, i)
		}
	}
	return len(s)
}

func skipString(s string, i int) int {
	q := s[i]
	i++
	for i < len(s) {
		if s[i] == '\\' {
			i += 2
			continue
		}
		if s[i] == q {
			return i
		}
		i++
	}
	return i
}
