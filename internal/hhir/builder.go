package hhir

import (
	"math"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
)

// BuildConfig selects the lowering mode and optimizations.
type BuildConfig struct {
	// Profiling inserts ProfCount/ProfCallSite instrumentation and,
	// per Section 4.1, skips the most expensive optimizations.
	Profiling bool
	// Counter is the profile counter for profiling translations.
	Counter profile.TransID

	// EnableInlining turns partial inlining on (optimized mode).
	EnableInlining bool
	// EnableMethodDispatch turns profile-guided devirtualization on.
	EnableMethodDispatch bool
	// DisableInlineCache additionally removes inline caching (the
	// paper's Figure 10 "method dispatch" ablation disables both).
	DisableInlineCache bool
	// EnableShapes turns shape-guarded property access on: profiled
	// monomorphic sites compile to GuardShape + fixed-slot access,
	// polymorphic/unprofiled sites to a self-filling shape IC, and
	// megamorphic sites (>4 shapes) stay on the generic helper
	// (DESIGN.md §14). Profiling translations instead record the
	// receiver shape per site and keep the generic paths.
	EnableShapes bool
	// Counters supplies call-target profiles in optimized mode.
	Counters *profile.Counters
	// RegionOf returns a callee's region for inlining (nil to decline).
	RegionOf func(f *hhbc.Func, argTypes []types.Type) *region.Desc

	// MaxInlineInstrs caps inlinable callee size.
	MaxInlineInstrs int
	// MaxInlineDepth caps nesting.
	MaxInlineDepth int
}

// builder lowers one region into HHIR.
type builder struct {
	cfg  BuildConfig
	unit *hhbc.Unit
	env  *interp.Env
	fn   *hhbc.Func
	out  *Unit

	// rc is the region being lowered; partial inlining swaps in the
	// callee's region context and restores afterwards.
	rc regionCtx

	// per-block lowering state
	cur        *Block
	stack      []*SSATmp
	localTypes map[int]types.Type
	iterKinds  map[int64]types.ArrayKind

	// inline context stack (innermost last; nil entries impossible).
	inlines []*inlineState
	// extraSlots allocates extended-frame local slots for inlined
	// callees, starting at fn.NumLocals.
	extraSlots int

	// current bytecode pc (for exits)
	bcPC int
}

// regionCtx is the lowering context for one region (caller's or an
// inlined callee's).
type regionCtx struct {
	desc *region.Desc
	// hblocks maps region-block index -> HHIR block.
	hblocks []*Block
	// chainNext maps region-block index -> next chain member (-1 none).
	chainNext []int
	// entryOf maps bytecode pc -> head region-block index.
	entryOf map[int]int
}

func newRegionCtx(out *Unit, desc *region.Desc) regionCtx {
	rc := regionCtx{desc: desc, entryOf: map[int]int{}}
	rc.hblocks = make([]*Block, len(desc.Blocks))
	rc.chainNext = make([]int, len(desc.Blocks))
	for i := range rc.chainNext {
		rc.chainNext[i] = -1
	}
	for _, chain := range desc.Chains {
		rc.entryOf[desc.Blocks[chain[0]].Start] = chain[0]
		for k := 0; k+1 < len(chain); k++ {
			rc.chainNext[chain[k]] = chain[k+1]
		}
	}
	for i, rb := range desc.Blocks {
		hb := out.NewBlock(rb.Start)
		hb.Weight = desc.Weight[i]
		for d := 0; d < rb.EntryStackDepth; d++ {
			p := out.NewTmp(types.TInitCell)
			p.DefBlock = hb
			hb.Params = append(hb.Params, p)
		}
		rc.hblocks[i] = hb
	}
	return rc
}

type inlineState struct {
	ctx      *InlineCtx
	callee   *hhbc.Func
	slotBase int
	retBlock *Block // merge block; param 0 = return value
}

// Build lowers desc to HHIR.
func Build(u *hhbc.Unit, env *interp.Env, desc *region.Desc, cfg BuildConfig) (*Unit, error) {
	if cfg.MaxInlineInstrs == 0 {
		cfg.MaxInlineInstrs = 60
	}
	if cfg.MaxInlineDepth == 0 {
		cfg.MaxInlineDepth = 2
	}
	fn := desc.Entry().Func
	b := &builder{
		cfg: cfg, unit: u, env: env, fn: fn,
		out: NewUnit(fn),
	}
	b.extraSlots = fn.NumLocals
	b.rc = newRegionCtx(b.out, desc)
	if len(b.rc.hblocks) > 0 {
		b.out.Entry = b.rc.hblocks[0]
	}

	for i := range desc.Blocks {
		if err := b.lowerRegionBlock(i); err != nil {
			return nil, err
		}
	}
	b.out.ExtFrameSlots = b.extraSlots
	b.out.RecomputePreds()
	markColdBlocks(b.out)
	return b.out, nil
}

// markColdBlocks hints blocks by weight for hot/cold splitting.
func markColdBlocks(u *Unit) {
	var max uint64
	for _, b := range u.Blocks {
		if b.Weight > max {
			max = b.Weight
		}
	}
	for _, b := range u.Blocks {
		switch {
		case max > 0 && b.Weight*10 < max:
			b.Hint = HintCold
		case b.Weight == max && max > 0:
			b.Hint = HintHot
		}
	}
}

// emit appends an instruction to the current block.
func (b *builder) emit(in *Instr) *Instr {
	in.Block = b.cur
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *builder) def(op Opcode, t types.Type, args ...*SSATmp) *SSATmp {
	dst := b.out.NewTmp(t)
	in := &Instr{Op: op, Dst: dst, Args: args}
	dst.Def = in
	b.emit(in)
	return dst
}

// exitDesc snapshots the current frame state for a side exit.
func (b *builder) exitDesc(bcOff int, isCatch bool) *ExitDesc {
	ex := &ExitDesc{BCOff: bcOff, IsCatch: isCatch,
		Stack: append([]*SSATmp(nil), b.stack...)}
	if n := len(b.inlines); n > 0 {
		ex.Inline = b.inlines[n-1].ctx
	}
	return ex
}

// catchExit is attached to throwing ops.
func (b *builder) catchExit() *ExitDesc { return b.exitDesc(b.bcPC, true) }

func (b *builder) push(t *SSATmp) { b.stack = append(b.stack, t) }
func (b *builder) pop() *SSATmp {
	t := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	return t
}
func (b *builder) top() *SSATmp { return b.stack[len(b.stack)-1] }

func (b *builder) localType(slot int) types.Type {
	if t, ok := b.localTypes[slot]; ok {
		return t
	}
	return types.TCell
}

func (b *builder) setLocalType(slot int, t types.Type) { b.localTypes[slot] = t }

// ldLoc loads a local with its known type.
func (b *builder) ldLoc(slot int) *SSATmp {
	t := b.localType(slot)
	dst := b.out.NewTmp(cgetTypeB(t))
	in := &Instr{Op: LdLoc, Dst: dst, I64: int64(slot)}
	dst.Def = in
	b.emit(in)
	return dst
}

func cgetTypeB(t types.Type) types.Type {
	if t.Maybe(types.TUninit) {
		return types.FromKind(t.Kind()&^types.KUninit | types.KNull)
	}
	return t
}

// stLoc stores a value into a local and updates the tracked type.
func (b *builder) stLoc(slot int, v *SSATmp) {
	b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{v}})
	b.setLocalType(slot, v.Type)
}

// lowerRegionBlock lowers region block ri at the top level.
func (b *builder) lowerRegionBlock(ri int) error {
	b.cur = b.rc.hblocks[ri]
	b.stack = append([]*SSATmp(nil), b.rc.hblocks[ri].Params...)
	b.localTypes = map[int]types.Type{}
	b.iterKinds = map[int64]types.ArrayKind{}
	b.inlines = nil
	return b.lowerBlockBody(ri)
}

// lowerBlockBody emits guards and instructions for region block ri of
// the current region context (caller or inlined callee).
func (b *builder) lowerBlockBody(ri int) error {
	rb := b.rc.desc.Blocks[ri]

	// Emit guards. Interior chain members branch to the next chain
	// member on failure; the last falls back to a side exit. The
	// region entry's preconditions are enforced by the dispatcher (or
	// proven from argument types when inlined), so they lower to
	// asserts.
	isEntry := ri == 0
	b.bcPC = rb.Start
	for _, g := range rb.Preconds {
		b.lowerGuard(ri, rb, g, isEntry)
	}
	if b.cfg.Profiling && rb.ProfCounter >= 0 {
		b.emit(&Instr{Op: ProfCount, I64: int64(rb.ProfCounter)})
	}

	// Lower the body.
	fn := b.curFn()
	for pc := rb.Start; pc < rb.End(); pc++ {
		b.bcPC = pc
		done, err := b.lowerInstr(fn.Instrs[pc], pc, ri)
		if err != nil {
			return err
		}
		if done {
			return nil // terminator emitted
		}
	}
	// Fell off the end of the block: continue at End().
	b.jumpToPC(rb.End(), ri)
	return nil
}

// lowerGuard emits one precondition check.
func (b *builder) lowerGuard(ri int, rb *region.Block, g region.Guard, isEntry bool) {
	failTo := b.rc.chainNext[ri]
	switch g.Loc.Kind {
	case region.LocLocal:
		slot := b.slot(int32(g.Loc.Slot))
		if isEntry || types.TCell.SubtypeOf(g.Type) {
			// Dispatcher-checked, inline-proven, or vacuous: assert.
			// Intersect rather than overwrite — an inlined callee's
			// widened precondition (e.g. bare Obj at a shape site) must
			// not erase an exact class the inliner proved from the
			// argument types.
			nt := b.localType(slot).Intersect(g.Type)
			if nt.IsBottom() {
				nt = g.Type
			}
			b.setLocalType(slot, nt)
			return
		}
		in := &Instr{Op: GuardLoc, I64: int64(slot), TypeParam: g.Type}
		if failTo >= 0 {
			in.Taken = b.rc.hblocks[failTo]
			in.TakenArgs = append([]*SSATmp(nil), b.stack...)
		} else {
			in.Exit = b.exitDesc(rb.Start, false)
		}
		b.emit(in)
		b.setLocalType(slot, g.Type)
	case region.LocStack:
		d := g.Loc.Slot
		if d >= len(b.stack) {
			return
		}
		v := b.stack[d]
		if v.Type.SubtypeOf(g.Type) {
			return
		}
		if isEntry {
			// Entry stack slots come from the frame: load + assert.
			b.stack[d] = b.def(AssertType, g.Type, v)
			return
		}
		dst := b.out.NewTmp(g.Type)
		in := &Instr{Op: CheckType, Dst: dst, Args: []*SSATmp{v}, TypeParam: g.Type}
		dst.Def = in
		if failTo >= 0 {
			in.Taken = b.rc.hblocks[failTo]
			in.TakenArgs = append([]*SSATmp(nil), b.stack...)
		} else {
			in.Exit = b.exitDesc(rb.Start, false)
		}
		b.emit(in)
		b.stack[d] = dst
	}
}

// jumpToPC wires control to the region block (chain) covering pc in
// the current region context, or leaves the region: a ReqBind for the
// outer region, a side exit (with frame materialization) from inlined
// code.
func (b *builder) jumpToPC(pc int, fromRI int) {
	if hi, ok := b.rc.entryOf[pc]; ok {
		target := b.pickChainTarget(hi)
		if b.rc.desc.Blocks[target].EntryStackDepth == len(b.stack) {
			b.emit(&Instr{Op: Jmp, Next: b.rc.hblocks[target],
				NextArgs: append([]*SSATmp(nil), b.stack...)})
			return
		}
	}
	if len(b.inlines) > 0 {
		// The callee region does not cover pc: materialize the callee
		// frame and continue in the interpreter.
		b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(pc, false)})
		return
	}
	b.emit(&Instr{Op: ReqBind, I64: int64(pc), Exit: b.exitDesc(pc, false)})
}

// pickChainTarget returns the first chain member at the target pc
// whose preconditions are satisfied by the current known types; if
// none provably match, the chain head (runtime checks cascade).
func (b *builder) pickChainTarget(head int) int {
	start := b.rc.desc.Blocks[head].Start
	for _, chain := range b.rc.desc.Chains {
		if b.rc.desc.Blocks[chain[0]].Start != start {
			continue
		}
		for _, ci := range chain {
			if b.precondsSatisfied(b.rc.desc.Blocks[ci]) {
				return ci
			}
		}
		return chain[0]
	}
	return head
}

func (b *builder) precondsSatisfied(rb *region.Block) bool {
	for _, g := range rb.Preconds {
		switch g.Loc.Kind {
		case region.LocLocal:
			if !b.localType(g.Loc.Slot).SubtypeOf(g.Type) {
				return false
			}
		case region.LocStack:
			if g.Loc.Slot >= len(b.stack) || !b.stack[g.Loc.Slot].Type.SubtypeOf(g.Type) {
				return false
			}
		}
	}
	return true
}

// constInt etc. emit constants.
func (b *builder) constInt(v int64) *SSATmp {
	dst := b.out.NewTmp(types.TInt)
	in := &Instr{Op: DefConstInt, Dst: dst, I64: v}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) constDbl(v float64) *SSATmp {
	dst := b.out.NewTmp(types.TDbl)
	in := &Instr{Op: DefConstDbl, Dst: dst, I64: int64(math.Float64bits(v))}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) constBool(v bool) *SSATmp {
	dst := b.out.NewTmp(types.TBool)
	n := int64(0)
	if v {
		n = 1
	}
	in := &Instr{Op: DefConstBool, Dst: dst, I64: n}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) constNull() *SSATmp {
	dst := b.out.NewTmp(types.TNull)
	in := &Instr{Op: DefConstNull, Dst: dst}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) constStr(s string) *SSATmp {
	dst := b.out.NewTmp(types.TStr)
	in := &Instr{Op: DefConstStr, Dst: dst, Str: s}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) incRef(v *SSATmp) {
	if v.Type.MaybeCounted() {
		b.emit(&Instr{Op: IncRef, Args: []*SSATmp{v}})
	}
}

func (b *builder) decRef(v *SSATmp) {
	if v.Type.MaybeCounted() {
		b.emit(&Instr{Op: DecRef, Args: []*SSATmp{v}})
	}
}
