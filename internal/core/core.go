// Package core is the public API of the library: compile PHP-subset
// source through the ahead-of-time pipeline (parse → hphpc AST
// optimizer → bytecode emitter → hhbbc bytecode optimizer) and execute
// it on a VM with a configurable JIT (interpreter, tracelet JIT,
// profiling JIT, or the profile-guided region JIT the paper
// describes).
package core

import (
	"io"
	"strings"

	"repro/internal/emitter"
	"repro/internal/hhbbc"
	"repro/internal/hhbc"
	"repro/internal/hphpc"
	"repro/internal/jit"
	"repro/internal/jumpstart"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/runtime"
	"repro/internal/vm"
)

// TransFault is the typed error a contained translation fault is
// reported as: the JITed code panicked or hit an internal error, the
// fault was contained, and the region re-executed in the interpreter
// (DESIGN.md §11). Aliased from the machine layer, which cannot
// import core.
type TransFault = machine.TransFault

// Prelude defines the exception hierarchy available to every program,
// mirroring PHP's built-in classes.
const Prelude = `
class Exception {
  public $message = "";
  function __construct($m = "") { $this->message = $m; }
  function getMessage() { return $this->message; }
}
class RuntimeException extends Exception {}
class InvalidArgumentException extends Exception {}
class LogicException extends Exception {}
`

// CompileOptions tune the ahead-of-time pipeline.
type CompileOptions struct {
	// SkipPrelude omits the built-in exception classes (only for
	// programs that define their own).
	SkipPrelude bool
	// SkipHHBBC disables the bytecode-to-bytecode optimizer.
	SkipHHBBC bool
	// SkipASTOpt disables the hphpc-level AST optimizations.
	SkipASTOpt bool
}

// Compile runs source through the full ahead-of-time pipeline and
// returns the deployable bytecode unit.
func Compile(src string, opts CompileOptions) (*hhbc.Unit, error) {
	full := src
	if !opts.SkipPrelude && !strings.Contains(src, "class Exception") {
		full = Prelude + src
	}
	prog, err := parser.Parse(full)
	if err != nil {
		return nil, err
	}
	if !opts.SkipASTOpt {
		hphpc.Optimize(prog)
	}
	unit, err := emitter.Emit(prog)
	if err != nil {
		return nil, err
	}
	if !opts.SkipHHBBC {
		if err := hhbbc.Optimize(unit); err != nil {
			return nil, err
		}
	}
	return unit, nil
}

// Engine wraps a VM running one unit.
type Engine struct {
	VM   *vm.VM
	Unit *hhbc.Unit
}

// NewEngine loads a compiled unit with the given JIT configuration.
func NewEngine(unit *hhbc.Unit, cfg jit.Config, out io.Writer) (*Engine, error) {
	machine, err := vm.New(unit, cfg, out)
	if err != nil {
		return nil, err
	}
	return &Engine{VM: machine, Unit: unit}, nil
}

// Run compiles and executes source in one step, returning its output.
func Run(src string, cfg jit.Config) (string, error) {
	unit, err := Compile(src, CompileOptions{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	eng, err := NewEngine(unit, cfg, &sb)
	if err != nil {
		return "", err
	}
	_, err = eng.VM.RunMain()
	return sb.String(), err
}

// RunRequest executes the unit's pseudo-main once ("one HTTP
// request"), writing guest output to w, and returns the simulated
// cycles consumed.
func (e *Engine) RunRequest(w io.Writer) (cycles uint64, err error) {
	e.VM.SetOut(w)
	before := e.VM.Meter.Cycles
	_, err = e.VM.RunMain()
	return e.VM.Meter.Cycles - before, err
}

// Call invokes a named guest function with host-supplied arguments.
func (e *Engine) Call(name string, args ...runtime.Value) (runtime.Value, error) {
	f, ok := e.Unit.FuncByName(name)
	if !ok {
		return runtime.Null(), runtime.NewError("undefined function %s", name)
	}
	return e.VM.CallFunc(f, nil, args)
}

// Cycles returns total simulated cycles so far.
func (e *Engine) Cycles() uint64 { return e.VM.Meter.Cycles }

// ProfileSnapshot captures the engine's profile state for
// persistence, fleet aggregation, or jumpstarting another engine.
func (e *Engine) ProfileSnapshot() *jumpstart.Snapshot {
	return e.VM.JIT.SnapshotProfile()
}

// LoadProfile jumpstarts the engine from a persisted profile: in
// region mode it mints profiling translations from the snapshot and
// fires global retranslation immediately, skipping the live profiling
// phase. Functions whose bytecode hash no longer matches the snapshot
// fall back to normal profiling (see the returned result).
func (e *Engine) LoadProfile(s *jumpstart.Snapshot) jit.JumpstartResult {
	return e.VM.JIT.Jumpstart(s)
}

// Stats returns a consistent snapshot of the JIT statistics.
func (e *Engine) Stats() jit.Stats { return e.VM.JIT.Stats() }

// NewWorker creates an additional worker VM sharing this engine's JIT
// (translation cache, profile data, code cache). Workers execute
// requests concurrently; each owns its interpreter state, heap, and
// cycle meter.
func (e *Engine) NewWorker(out io.Writer) *vm.VM {
	return vm.NewWorker(e.VM.JIT, out)
}

// Heap exposes the guest heap counters (refcount activity, COW
// copies, destructor runs) for tests and experiments.
func (e *Engine) Heap() *runtime.Heap { return e.VM.Heap }
