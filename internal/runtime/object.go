package runtime

import (
	"fmt"

	"repro/internal/types"
)

// Class is the runtime class descriptor. Method bodies live in the
// bytecode unit; the class refers to them by dense function IDs so
// that the runtime stays independent of the bytecode representation.
type Class struct {
	Name    string
	Parent  *Class
	Ifaces  []string
	HasDtor bool

	// PropNames maps property name -> slot index; PropInit holds the
	// default values (uncounted only).
	PropNames map[string]int
	PropInit  []Value

	// Methods maps lowercase method name -> function ID. It includes
	// inherited methods (flattened at link time).
	Methods map[string]int

	// ClassID is a dense ID used by JITed class-equality guards.
	ClassID int

	// AncestorBits is a bitset over dense class IDs covering this
	// class, every ancestor, and every implemented interface — the
	// "bitwise instanceof checks" optimization the paper lists among
	// the Vasm-level optimizations (Figure 7): `$x instanceof C`
	// compiles to a single bit test instead of a hierarchy walk.
	AncestorBits []uint64
}

// HasAncestorID reports whether id is in the ancestor bitset.
func (c *Class) HasAncestorID(id int) bool {
	w, b := id/64, uint(id%64)
	return w < len(c.AncestorBits) && c.AncestorBits[w]&(1<<b) != 0
}

// SetAncestorID adds id to the bitset.
func (c *Class) SetAncestorID(id int) {
	w, b := id/64, uint(id%64)
	for len(c.AncestorBits) <= w {
		c.AncestorBits = append(c.AncestorBits, 0)
	}
	c.AncestorBits[w] |= 1 << b
}

// LookupMethod resolves name to a function ID.
func (c *Class) LookupMethod(name string) (int, bool) {
	id, ok := c.Methods[name]
	return id, ok
}

// IsSubclassOf walks the extends chain and interface lists.
func (c *Class) IsSubclassOf(name string) bool {
	for k := c; k != nil; k = k.Parent {
		if k.Name == name {
			return true
		}
		for _, i := range k.Ifaces {
			if i == name || types.IsSubclassOf(i, name) {
				return true
			}
		}
	}
	return false
}

// Object is a guest object instance: a class pointer plus property
// slots.
type Object struct {
	Class      *Class
	Props      []Value
	refs       int32
	destructed bool
}

// NewObject allocates an instance of c with default-initialized
// properties and refcount 1.
func (h *Heap) NewObject(c *Class) *Object {
	props := make([]Value, len(c.PropInit))
	copy(props, c.PropInit)
	h.LiveObjs++
	return &Object{Class: c, Props: props, refs: 1}
}

// Refs returns the current reference count.
func (o *Object) Refs() int32 { return o.refs }

// GetProp returns a borrowed reference to the named property.
func (o *Object) GetProp(name string) (Value, bool) {
	slot, ok := o.Class.PropNames[name]
	if !ok {
		return Uninit(), false
	}
	return o.Props[slot], true
}

// SetProp stores val (consuming the caller's reference) and releases
// the previous value.
func (o *Object) SetProp(h *Heap, name string, val Value) error {
	slot, ok := o.Class.PropNames[name]
	if !ok {
		return fmt.Errorf("undefined property %s::$%s", o.Class.Name, name)
	}
	old := o.Props[slot]
	o.Props[slot] = val
	h.DecRef(old)
	return nil
}

// GetPropSlot / SetPropSlot are the JIT fast paths once the slot index
// has been resolved against a known class.
func (o *Object) GetPropSlot(slot int) Value { return o.Props[slot] }

func (o *Object) SetPropSlot(h *Heap, slot int, val Value) {
	old := o.Props[slot]
	o.Props[slot] = val
	h.DecRef(old)
}
