package runtime

import "repro/internal/types"

// Heap tracks guest allocation and reference-counting activity. PHP's
// refcounting is observable (destructors fire at the exact point the
// last reference dies; COW copies happen at refcount>1), so the heap
// exposes counters that the tests and the RCE-correctness checks use.
type Heap struct {
	// IncRefs and DecRefs count executed refcount operations — the
	// quantity the RCE pass exists to reduce.
	IncRefs uint64
	DecRefs uint64
	// Destructs counts destructor invocations; CowCopies counts
	// copy-on-write array clones; Frees counts deallocations.
	Destructs uint64
	CowCopies uint64
	Frees     uint64
	LiveObjs  int64

	// OnDestruct runs a guest destructor for obj. Set by the VM
	// (destructors are guest code and need the execution engine).
	OnDestruct func(obj *Object)
}

// NewHeap returns a fresh heap.
func NewHeap() *Heap { return &Heap{} }

// incRefVal bumps a refcount without heap accounting (used by clone,
// which is itself accounted as a COW copy).
func incRefVal(v Value) {
	switch v.Kind {
	case types.KStr:
		if !v.S.static {
			v.S.refs++
		}
	case types.KArr:
		v.A.refs++
	case types.KObj:
		v.O.refs++
	}
}

// IncRef increments the reference count of v if counted.
func (h *Heap) IncRef(v Value) {
	switch v.Kind {
	case types.KStr:
		if v.S.static {
			return
		}
		h.IncRefs++
		v.S.refs++
	case types.KArr:
		h.IncRefs++
		v.A.refs++
	case types.KObj:
		h.IncRefs++
		v.O.refs++
	}
}

// DecRef decrements the reference count of v, freeing (and running
// destructors) when it reaches zero.
func (h *Heap) DecRef(v Value) {
	switch v.Kind {
	case types.KStr:
		if v.S.static {
			return
		}
		h.DecRefs++
		v.S.refs--
		if v.S.refs == 0 {
			h.Frees++
		}
	case types.KArr:
		h.DecRefs++
		h.decArrayRef(v.A)
	case types.KObj:
		h.DecRefs++
		v.O.refs--
		if v.O.refs == 0 {
			h.destroyObject(v.O)
		}
	}
}

// decArrayRef releases one reference to a without counting a DecRef
// op (callers that model a guest DecRef instruction count it).
func (h *Heap) decArrayRef(a *Array) {
	a.refs--
	if a.refs > 0 {
		return
	}
	h.Frees++
	if a.IsPacked() {
		for _, e := range a.elems {
			h.DecRef(e)
		}
		a.elems = nil
		return
	}
	for _, e := range a.entries {
		if !e.dead {
			h.DecRef(e.val)
		}
	}
	a.entries = nil
	a.mixed = nil
}

func (h *Heap) destroyObject(o *Object) {
	h.LiveObjs--
	h.Frees++
	if o.Class.HasDtor && h.OnDestruct != nil && !o.destructed {
		o.destructed = true
		// Keep the object alive during its destructor, as PHP does.
		o.refs = 1
		h.Destructs++
		h.OnDestruct(o)
		o.refs = 0
	}
	for _, p := range o.Props {
		h.DecRef(p)
	}
	o.Props = nil
}

// Stats is a snapshot of heap counters.
type Stats struct {
	IncRefs, DecRefs, Destructs, CowCopies, Frees uint64
	LiveObjs                                      int64
}

// Snapshot returns the current counters.
func (h *Heap) Snapshot() Stats {
	return Stats{
		IncRefs: h.IncRefs, DecRefs: h.DecRefs, Destructs: h.Destructs,
		CowCopies: h.CowCopies, Frees: h.Frees, LiveObjs: h.LiveObjs,
	}
}
