package emitter

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/hhbc"
	"repro/internal/runtime"
	"repro/internal/types"
)

// isSetBits are the kinds for which isset($x) is true.
var isSetBits = int32(types.KInitCell &^ types.KNull)

// binOps maps AST binary operators to bytecodes.
var binOps = map[string]hhbc.Op{
	"+": hhbc.OpAdd, "-": hhbc.OpSub, "*": hhbc.OpMul, "/": hhbc.OpDiv,
	"%": hhbc.OpMod, ".": hhbc.OpConcat,
	">": hhbc.OpGt, ">=": hhbc.OpGte, "<": hhbc.OpLt, "<=": hhbc.OpLte,
	"==": hhbc.OpEq, "!=": hhbc.OpNeq, "===": hhbc.OpSame, "!==": hhbc.OpNSame,
}

// expr emits e, leaving exactly one value on the stack.
func (fe *funcEmitter) expr(e ast.Expr) error {
	switch v := e.(type) {
	case *ast.IntLit:
		fe.emit(hhbc.OpInt, fe.unit.InternInt(v.Value), 0, 0)
	case *ast.FloatLit:
		fe.emit(hhbc.OpDouble, fe.unit.InternDouble(v.Value), 0, 0)
	case *ast.StringLit:
		fe.emit(hhbc.OpString, fe.unit.InternString(v.Value), 0, 0)
	case *ast.BoolLit:
		if v.Value {
			fe.emit(hhbc.OpTrue, 0, 0, 0)
		} else {
			fe.emit(hhbc.OpFalse, 0, 0, 0)
		}
	case *ast.NullLit:
		fe.emit(hhbc.OpNull, 0, 0, 0)
	case *ast.Var:
		fe.emit(hhbc.OpCGetL, fe.local(v.Name), 0, 0)
	case *ast.ThisExpr:
		fe.emit(hhbc.OpThis, 0, 0, 0)
	case *ast.Interp:
		return fe.interp(v)
	case *ast.ArrayLit:
		return fe.arrayLit(v)
	case *ast.Index:
		return fe.index(v)
	case *ast.Binop:
		return fe.binop(v)
	case *ast.Unop:
		return fe.unop(v)
	case *ast.IncDec:
		return fe.incDec(v)
	case *ast.Assign:
		return fe.assign(v, true)
	case *ast.Ternary:
		return fe.ternary(v)
	case *ast.Call:
		return fe.call(v)
	case *ast.MethodCall:
		return fe.methodCall(v)
	case *ast.StaticCall:
		return fe.staticCall(v)
	case *ast.New:
		return fe.newObj(v)
	case *ast.Prop:
		if err := fe.expr(v.Recv); err != nil {
			return err
		}
		fe.emit(hhbc.OpCGetPropD, fe.unit.InternString(v.Name), 0, 0)
	case *ast.InstanceOf:
		if err := fe.expr(v.E); err != nil {
			return err
		}
		fe.emit(hhbc.OpInstanceOfD, fe.unit.InternString(v.Class), 0, 0)
	case *ast.Isset:
		return fe.isset(v)
	case *ast.Cast:
		if err := fe.expr(v.E); err != nil {
			return err
		}
		switch v.To {
		case "int":
			fe.emit(hhbc.OpCastInt, 0, 0, 0)
		case "float":
			fe.emit(hhbc.OpCastDouble, 0, 0, 0)
		case "string":
			fe.emit(hhbc.OpCastString, 0, 0, 0)
		case "bool":
			fe.emit(hhbc.OpCastBool, 0, 0, 0)
		default:
			return fmt.Errorf("unsupported cast to %s", v.To)
		}
	default:
		return fmt.Errorf("unsupported expression %T", e)
	}
	return nil
}

func (fe *funcEmitter) interp(v *ast.Interp) error {
	for i, p := range v.Parts {
		if err := fe.expr(p); err != nil {
			return err
		}
		if i > 0 {
			fe.emit(hhbc.OpConcat, 0, 0, 0)
		}
	}
	return nil
}

func (fe *funcEmitter) arrayLit(v *ast.ArrayLit) error {
	if !v.IsMap {
		for _, el := range v.Vals {
			if err := fe.expr(el); err != nil {
				return err
			}
		}
		fe.emit(hhbc.OpNewPackedArray, int32(len(v.Vals)), 0, 0)
		return nil
	}
	fe.emit(hhbc.OpNewArray, 0, 0, 0)
	for i := range v.Vals {
		if v.Keys[i] == nil {
			if err := fe.expr(v.Vals[i]); err != nil {
				return err
			}
			fe.emit(hhbc.OpAddNewElemC, 0, 0, 0)
		} else {
			if err := fe.expr(v.Keys[i]); err != nil {
				return err
			}
			if err := fe.expr(v.Vals[i]); err != nil {
				return err
			}
			fe.emit(hhbc.OpAddElemC, 0, 0, 0)
		}
	}
	return nil
}

func (fe *funcEmitter) index(v *ast.Index) error {
	// Fast path: base is a local — matches the paper's BaseL/QueryM.
	if base, ok := v.Arr.(*ast.Var); ok {
		if err := fe.expr(v.Key); err != nil {
			return err
		}
		fe.emit(hhbc.OpArrGetL, fe.local(base.Name), 0, 0)
		return nil
	}
	if err := fe.expr(v.Arr); err != nil {
		return err
	}
	if err := fe.expr(v.Key); err != nil {
		return err
	}
	fe.emit(hhbc.OpArrIdx, 0, 0, 0)
	return nil
}

func (fe *funcEmitter) binop(v *ast.Binop) error {
	switch v.Op {
	case "&&", "||":
		return fe.shortCircuit(v)
	case "<=>":
		return fe.spaceship(v)
	}
	op, ok := binOps[v.Op]
	if !ok {
		return fmt.Errorf("unsupported binary operator %q", v.Op)
	}
	if err := fe.expr(v.L); err != nil {
		return err
	}
	if err := fe.expr(v.R); err != nil {
		return err
	}
	fe.emit(op, 0, 0, 0)
	return nil
}

func (fe *funcEmitter) shortCircuit(v *ast.Binop) error {
	if err := fe.expr(v.L); err != nil {
		return err
	}
	fe.emit(hhbc.OpCastBool, 0, 0, 0)
	fe.emit(hhbc.OpDup, 0, 0, 0)
	var j int
	if v.Op == "&&" {
		j = fe.emit(hhbc.OpJmpZ, 0, 0, 0)
	} else {
		j = fe.emit(hhbc.OpJmpNZ, 0, 0, 0)
	}
	fe.emit(hhbc.OpPopC, 0, 0, 0)
	if err := fe.expr(v.R); err != nil {
		return err
	}
	fe.emit(hhbc.OpCastBool, 0, 0, 0)
	fe.patch(j, fe.pc())
	return nil
}

// spaceship lowers $a <=> $b to a -1/0/1 comparison, evaluating each
// operand exactly once via hidden temps.
func (fe *funcEmitter) spaceship(v *ast.Binop) error {
	t1, t2 := fe.temp(), fe.temp()
	if err := fe.expr(v.L); err != nil {
		return err
	}
	fe.emit(hhbc.OpPopL, t1, 0, 0)
	if err := fe.expr(v.R); err != nil {
		return err
	}
	fe.emit(hhbc.OpPopL, t2, 0, 0)
	fe.emit(hhbc.OpCGetL, t1, 0, 0)
	fe.emit(hhbc.OpCGetL, t2, 0, 0)
	fe.emit(hhbc.OpLt, 0, 0, 0)
	jlt := fe.emit(hhbc.OpJmpNZ, 0, 0, 0)
	fe.emit(hhbc.OpCGetL, t1, 0, 0)
	fe.emit(hhbc.OpCGetL, t2, 0, 0)
	fe.emit(hhbc.OpGt, 0, 0, 0)
	jgt := fe.emit(hhbc.OpJmpNZ, 0, 0, 0)
	fe.emit(hhbc.OpInt, fe.unit.InternInt(0), 0, 0)
	jend1 := fe.emit(hhbc.OpJmp, 0, 0, 0)
	fe.patch(jlt, fe.pc())
	fe.emit(hhbc.OpInt, fe.unit.InternInt(-1), 0, 0)
	jend2 := fe.emit(hhbc.OpJmp, 0, 0, 0)
	fe.patch(jgt, fe.pc())
	fe.emit(hhbc.OpInt, fe.unit.InternInt(1), 0, 0)
	end := fe.pc()
	fe.patch(jend1, end)
	fe.patch(jend2, end)
	return nil
}

func (fe *funcEmitter) unop(v *ast.Unop) error {
	if err := fe.expr(v.E); err != nil {
		return err
	}
	switch v.Op {
	case "-":
		fe.emit(hhbc.OpNeg, 0, 0, 0)
	case "!":
		fe.emit(hhbc.OpNot, 0, 0, 0)
	default:
		return fmt.Errorf("unsupported unary operator %q", v.Op)
	}
	return nil
}

func (fe *funcEmitter) incDec(v *ast.IncDec) error {
	tgt, ok := v.Target.(*ast.Var)
	if !ok {
		// Lower $a[k]++ etc. to a compound assignment; the pushed
		// value is the post value (acceptable deviation for pre/post
		// on complex lvalues).
		op := "+"
		if !v.Inc {
			op = "-"
		}
		return fe.assign(&ast.Assign{Target: v.Target, Op: op,
			Value: &ast.IntLit{Value: 1}}, true)
	}
	var idop int32
	switch {
	case v.Inc && v.Pre:
		idop = hhbc.PreInc
	case v.Inc:
		idop = hhbc.PostInc
	case v.Pre:
		idop = hhbc.PreDec
	default:
		idop = hhbc.PostDec
	}
	fe.emit(hhbc.OpIncDecL, fe.local(tgt.Name), idop, 0)
	return nil
}

// assign emits tgt op= value. If wantValue, one value is left on the
// stack; otherwise the stack is left unchanged.
func (fe *funcEmitter) assign(v *ast.Assign, wantValue bool) error {
	switch tgt := v.Target.(type) {
	case *ast.Var:
		slot := fe.local(tgt.Name)
		if v.Op != "" {
			fe.emit(hhbc.OpCGetL, slot, 0, 0)
			if err := fe.expr(v.Value); err != nil {
				return err
			}
			op, ok := binOps[v.Op]
			if !ok {
				return fmt.Errorf("unsupported compound assignment %q", v.Op)
			}
			fe.emit(op, 0, 0, 0)
		} else {
			if err := fe.expr(v.Value); err != nil {
				return err
			}
		}
		if wantValue {
			fe.emit(hhbc.OpSetL, slot, 0, 0)
		} else {
			fe.emit(hhbc.OpPopL, slot, 0, 0)
		}
		return nil

	case *ast.Index:
		base, ok := tgt.Arr.(*ast.Var)
		if !ok {
			return fmt.Errorf("assignment into computed array expression not supported")
		}
		slot := fe.local(base.Name)
		if tgt.Key == nil {
			// $a[] = v append form.
			if v.Op != "" {
				return fmt.Errorf("compound assignment to $a[] not supported")
			}
			if err := fe.expr(v.Value); err != nil {
				return err
			}
			if wantValue {
				fe.emit(hhbc.OpDup, 0, 0, 0)
			}
			fe.emit(hhbc.OpArrAppendL, slot, 0, 0)
			return nil
		}
		// Evaluate the key once into a temp.
		keyTmp := fe.temp()
		if err := fe.expr(tgt.Key); err != nil {
			return err
		}
		fe.emit(hhbc.OpPopL, keyTmp, 0, 0)
		if v.Op != "" {
			fe.emit(hhbc.OpCGetL, keyTmp, 0, 0)
			fe.emit(hhbc.OpArrGetL, slot, 0, 0)
			if err := fe.expr(v.Value); err != nil {
				return err
			}
			op, ok := binOps[v.Op]
			if !ok {
				return fmt.Errorf("unsupported compound assignment %q", v.Op)
			}
			fe.emit(op, 0, 0, 0)
		} else {
			if err := fe.expr(v.Value); err != nil {
				return err
			}
		}
		if wantValue {
			fe.emit(hhbc.OpDup, 0, 0, 0)
		}
		fe.emit(hhbc.OpCGetL, keyTmp, 0, 0)
		fe.emit(hhbc.OpArrSetL, slot, 0, 0)
		return nil

	case *ast.Prop:
		if err := fe.expr(tgt.Recv); err != nil {
			return err
		}
		nameIdx := fe.unit.InternString(tgt.Name)
		if v.Op != "" {
			fe.emit(hhbc.OpDup, 0, 0, 0)
			fe.emit(hhbc.OpCGetPropD, nameIdx, 0, 0)
			if err := fe.expr(v.Value); err != nil {
				return err
			}
			op, ok := binOps[v.Op]
			if !ok {
				return fmt.Errorf("unsupported compound assignment %q", v.Op)
			}
			fe.emit(op, 0, 0, 0)
		} else {
			if err := fe.expr(v.Value); err != nil {
				return err
			}
		}
		fe.emit(hhbc.OpSetPropD, nameIdx, 0, 0)
		if !wantValue {
			fe.emit(hhbc.OpPopC, 0, 0, 0)
		}
		return nil

	default:
		return fmt.Errorf("unsupported assignment target %T", v.Target)
	}
}

// Special PHP `$a[] = v` append form arrives as Index with nil key —
// the parser never produces it; appends are written via ArrayLit or
// the append helper below used by assign when Key is nil.

func (fe *funcEmitter) ternary(v *ast.Ternary) error {
	if v.Then == nil {
		// c ?: f — keep c's value when truthy.
		if err := fe.expr(v.Cond); err != nil {
			return err
		}
		fe.emit(hhbc.OpDup, 0, 0, 0)
		j := fe.emit(hhbc.OpJmpNZ, 0, 0, 0)
		fe.emit(hhbc.OpPopC, 0, 0, 0)
		if err := fe.expr(v.Else); err != nil {
			return err
		}
		fe.patch(j, fe.pc())
		return nil
	}
	if err := fe.expr(v.Cond); err != nil {
		return err
	}
	jz := fe.emit(hhbc.OpJmpZ, 0, 0, 0)
	if err := fe.expr(v.Then); err != nil {
		return err
	}
	jend := fe.emit(hhbc.OpJmp, 0, 0, 0)
	fe.patch(jz, fe.pc())
	if err := fe.expr(v.Else); err != nil {
		return err
	}
	fe.patch(jend, fe.pc())
	return nil
}

func (fe *funcEmitter) call(v *ast.Call) error {
	// array_push($a, $v) has reference semantics on $a; lower the
	// common single-value form to the append bytecode.
	if strings.EqualFold(v.Name, "array_push") && len(v.Args) == 2 {
		if base, ok := v.Args[0].(*ast.Var); ok {
			if err := fe.expr(v.Args[1]); err != nil {
				return err
			}
			fe.emit(hhbc.OpArrAppendL, fe.local(base.Name), 0, 0)
			fe.emit(hhbc.OpNull, 0, 0, 0) // call result placeholder
			return nil
		}
	}
	for _, a := range v.Args {
		if err := fe.expr(a); err != nil {
			return err
		}
	}
	nameIdx := fe.unit.InternString(v.Name)
	if fe.isUserFunc(v.Name) {
		fe.emit(hhbc.OpFCallD, int32(len(v.Args)), nameIdx, 0)
		return nil
	}
	if _, ok := runtime.LookupBuiltin(strings.ToLower(v.Name)); ok {
		fe.emit(hhbc.OpFCallBuiltin, int32(len(v.Args)), fe.unit.InternString(strings.ToLower(v.Name)), 0)
		return nil
	}
	// Unknown at emit time: direct call resolved (or fataled) at run
	// time.
	fe.emit(hhbc.OpFCallD, int32(len(v.Args)), nameIdx, 0)
	return nil
}

func (fe *funcEmitter) methodCall(v *ast.MethodCall) error {
	if err := fe.expr(v.Recv); err != nil {
		return err
	}
	for _, a := range v.Args {
		if err := fe.expr(a); err != nil {
			return err
		}
	}
	fe.emit(hhbc.OpFCallObjMethodD, int32(len(v.Args)), fe.unit.InternString(strings.ToLower(v.Name)), 0)
	return nil
}

func (fe *funcEmitter) staticCall(v *ast.StaticCall) error {
	for _, a := range v.Args {
		if err := fe.expr(a); err != nil {
			return err
		}
	}
	full := v.Class + "::" + v.Name
	fe.emit(hhbc.OpFCallD, int32(len(v.Args)), fe.unit.InternString(full), 0)
	return nil
}

func (fe *funcEmitter) newObj(v *ast.New) error {
	fe.emit(hhbc.OpNewObjD, fe.unit.InternString(v.Class), 0, 0)
	fe.emit(hhbc.OpDup, 0, 0, 0)
	for _, a := range v.Args {
		if err := fe.expr(a); err != nil {
			return err
		}
	}
	fe.emit(hhbc.OpFCallObjMethodD, int32(len(v.Args)), fe.unit.InternString("__construct"), 0)
	fe.emit(hhbc.OpPopC, 0, 0, 0)
	return nil
}

func (fe *funcEmitter) isset(v *ast.Isset) error {
	switch t := v.E.(type) {
	case *ast.Var:
		// defined and not null
		fe.emit(hhbc.OpIsTypeL, fe.local(t.Name), isSetBits, 0)
		return nil
	case *ast.Index:
		if base, ok := t.Arr.(*ast.Var); ok {
			if err := fe.expr(t.Key); err != nil {
				return err
			}
			fe.emit(hhbc.OpAKExistsL, fe.local(base.Name), 0, 0)
			return nil
		}
		return fmt.Errorf("isset of computed array expression not supported")
	case *ast.Prop:
		if err := fe.expr(t); err != nil {
			return err
		}
		fe.emit(hhbc.OpFCallBuiltin, 1, fe.unit.InternString("is_null"), 0)
		fe.emit(hhbc.OpNot, 0, 0, 0)
		return nil
	default:
		return fmt.Errorf("unsupported isset target %T", v.E)
	}
}
