// Engine-level tests for the self-healing layer (DESIGN.md §11):
// concurrent fault containment under injection, code-cache recycling
// reopening the mint path after exhaustion, and jumpstart snapshot
// corruption degrading to a clean cold start. Run with -race these
// also exercise the unpublish path against lock-free index readers.
package core_test

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/jumpstart"
	"repro/internal/vm"
	"repro/internal/workload"
)

// interpRefs runs every endpoint through a pure interpreter and
// returns the reference outputs.
func interpRefs(t *testing.T, unit *core.Engine, eps []workload.Endpoint) map[string]string {
	t.Helper()
	ref := map[string]string{}
	for _, ep := range eps {
		var sb strings.Builder
		unit.VM.SetOut(&sb)
		val, err := unit.Call(workload.EndpointFunc(ep.Name))
		if err != nil {
			t.Fatalf("reference %s: %v", ep.Name, err)
		}
		unit.Heap().DecRef(val)
		ref[ep.Name] = sb.String()
	}
	return ref
}

// TestFaultContainmentConcurrent hammers a shared JIT with four
// workers while every fault kind fires at 2% per draw: translations
// panic mid-request, compiles fail, allocations fail, chain links go
// stale. Every request must still complete with output identical to
// the interpreter's — the process must not panic, and faulting
// regions must be re-executed in the interpreter transparently.
func TestFaultContainmentConcurrent(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := interpRefs(t, refEng, eps)

	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 300
	cfg.BackgroundCompile = true
	cfg.Faults = faultinject.New(faultinject.EnableAll(11, 0.02))
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const rounds = 25
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(v *vm.VM) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, ep := range eps {
					fn, ok := unit.FuncByName(workload.EndpointFunc(ep.Name))
					if !ok {
						errCh <- fmt.Errorf("endpoint %s: missing function", ep.Name)
						return
					}
					var sb strings.Builder
					v.SetOut(&sb)
					val, err := v.CallFunc(fn, nil, nil)
					if err != nil {
						errCh <- fmt.Errorf("endpoint %s: %v", ep.Name, err)
						return
					}
					v.Heap.DecRef(val)
					if sb.String() != ref[ep.Name] {
						errCh <- fmt.Errorf("endpoint %s: output diverged under fault injection:\n got %q\nwant %q",
							ep.Name, sb.String(), ref[ep.Name])
						return
					}
				}
			}
		}(ws[i])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.TransFaults == 0 {
		t.Error("no translation faults were contained (injector never fired?)")
	}
	if fired := cfg.Faults.TotalFired(); fired == 0 {
		t.Error("injector reports zero firings over the whole run")
	}
}

// TestRecycleReopensMinting forces genuine code-cache exhaustion by
// shrinking the cache to a third of the workload's tracelet
// footprint. Recycling must evict cold translations, clear the sticky
// cache-full latch, and let minting resume — the JIT must not stay
// latched off or ride the degradation ladder down to interp-only.
func TestRecycleReopensMinting(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := interpRefs(t, refEng, eps)

	runAll := func(eng *core.Engine, rounds int) {
		t.Helper()
		for r := 0; r < rounds; r++ {
			for _, ep := range eps {
				var sb strings.Builder
				eng.VM.SetOut(&sb)
				val, err := eng.Call(workload.EndpointFunc(ep.Name))
				if err != nil {
					t.Fatalf("endpoint %s: %v", ep.Name, err)
				}
				eng.Heap().DecRef(val)
				if sb.String() != ref[ep.Name] {
					t.Fatalf("endpoint %s: output diverged under cache pressure:\n got %q\nwant %q",
						ep.Name, sb.String(), ref[ep.Name])
				}
			}
		}
	}

	// Probe: measure the workload's full tracelet footprint.
	probeCfg := jit.DefaultConfig()
	probeCfg.Mode = jit.ModeTracelet
	probe, err := core.NewEngine(unit, probeCfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	runAll(probe, 6)
	footprint := probe.Stats().BytesLive
	if footprint == 0 {
		t.Fatal("probe minted no tracelet code")
	}

	// Constrained run: a third of the footprint guarantees exhaustion.
	cfg := jit.DefaultConfig()
	cfg.Mode = jit.ModeTracelet
	cfg.CodeCacheLimit = footprint / 3
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	runAll(eng, 6)

	st := eng.Stats()
	if st.CacheFullEvents == 0 {
		t.Fatal("cache never filled — the episode did not happen")
	}
	if st.RecycleRuns == 0 {
		t.Error("cache filled but recycling never ran")
	}
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Errorf("recycling evicted nothing: %d evictions, %d bytes",
			st.Evictions, st.EvictedBytes)
	}
	if eng.VM.JIT.CacheFull() {
		t.Error("cache-full latch still set after recycling")
	}
	if lvl := eng.VM.JIT.DegradeLevel(); lvl != 0 {
		t.Errorf("degradation ladder stuck at level %d after successful recycling", lvl)
	}
	if st.LiveTranslations == 0 {
		t.Error("no live translations resident — minting did not resume")
	}
}

// TestJumpstartCorruptInjectionColdStart injects a snapshot
// corruption into the load path: the CRC-validated decode must reject
// the snapshot whole and the engine must cold-start with no partial
// profile state, then warm up the normal way.
func TestJumpstartCorruptInjectionColdStart(t *testing.T) {
	donor := warmEngine(t, donorSrc)
	snap := donor.ProfileSnapshot()
	if len(snap.Funcs) == 0 {
		t.Fatal("empty snapshot from warmed donor")
	}

	unit, err := core.Compile(donorSrc, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 100
	cfg.Faults = faultinject.New(faultinject.Config{Seed: 3})
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults.ForceNext(faultinject.SnapshotCorrupt, 1)
	res := eng.LoadProfile(snap)
	if !res.Corrupt {
		t.Fatal("corrupted snapshot was not flagged Corrupt")
	}
	if res.LoadedFuncs != 0 || res.LoadedTrans != 0 || res.Optimized {
		t.Fatalf("partial state applied from a corrupt snapshot: %+v", res)
	}
	st := eng.Stats()
	if st.ProfilingTranslations != 0 || st.OptimizedTranslations != 0 {
		t.Fatalf("translations resident after rejected load: %d profiling, %d optimized",
			st.ProfilingTranslations, st.OptimizedTranslations)
	}

	// Cold start proceeds normally: correct output, then a standard
	// profile → optimize warmup as if the snapshot never existed.
	var out strings.Builder
	if _, err := eng.RunRequest(&out); err != nil {
		t.Fatal(err)
	}
	if want := "v=1560\n"; out.String() != want {
		t.Errorf("cold-start output %q, want %q", out.String(), want)
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.RunRequest(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().OptimizeRuns == 0 {
		t.Error("engine never warmed up after the rejected snapshot")
	}
}

// TestJumpstartVersionMismatchColdStart writes a snapshot file,
// advances its version byte (a future-format file), and verifies the
// load path rejects it cleanly so callers fall back to a cold start.
func TestJumpstartVersionMismatchColdStart(t *testing.T) {
	donor := warmEngine(t, donorSrc)
	path := filepath.Join(t.TempDir(), "prof.hhjs")
	if err := jumpstart.Save(path, donor.ProfileSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4]++ // the version byte follows the 4-byte magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := jumpstart.Load(path); !errors.Is(err, jumpstart.ErrVersion) {
		t.Fatalf("future-version snapshot load error = %v, want ErrVersion", err)
	}
}

// TestCompileFaultsDeterministicAcrossCompileWorkers: injected
// compile errors draw per site (keyed by function and entry PC), not
// from a global counter, so fanning the optimizing backend over a
// worker pool must fail exactly the translations a serial run fails.
// Identical seeds and traffic with CompileWorkers 1 vs 4 must produce
// the same failure count and the same quarantine ledger.
func TestCompileFaultsDeterministicAcrossCompileWorkers(t *testing.T) {
	run := func(workers int) (uint64, []string) {
		src, eps := workload.Combined()
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var fi faultinject.Config
		fi.Seed = 23
		fi.Rates[faultinject.CompileError] = 0.25
		cfg := jit.DefaultConfig()
		cfg.ProfileTrigger = 250
		cfg.CompileWorkers = workers
		cfg.Faults = faultinject.New(fi)
		eng, err := core.NewEngine(unit, cfg, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 30; r++ {
			for _, ep := range eps {
				var sb strings.Builder
				eng.VM.SetOut(&sb)
				val, err := eng.Call(workload.EndpointFunc(ep.Name))
				if err != nil {
					t.Fatalf("workers=%d endpoint %s: %v", workers, ep.Name, err)
				}
				eng.Heap().DecRef(val)
			}
		}
		var ledger []string
		eng.VM.JIT.ForEachQuarantined(func(fnID, pc, attempts int, permanent bool) {
			ledger = append(ledger, fmt.Sprintf("%d:%d:%d:%v", fnID, pc, attempts, permanent))
		})
		sort.Strings(ledger)
		return eng.Stats().CompileFailures, ledger
	}

	serialFails, serialLedger := run(1)
	parallelFails, parallelLedger := run(4)
	if serialFails == 0 {
		t.Fatal("injected compile errors never fired (rate/traffic too low for the test to mean anything)")
	}
	if serialFails != parallelFails {
		t.Errorf("CompileFailures: serial %d, 4 workers %d", serialFails, parallelFails)
	}
	if !reflect.DeepEqual(serialLedger, parallelLedger) {
		t.Errorf("quarantine ledgers differ:\n serial   %v\n parallel %v", serialLedger, parallelLedger)
	}
}

// TestQuarantineBackoffExpiryRepromotes drives the full recovery arc
// end-to-end: a hot address whose compile is made to fail lands in
// quarantine with a backoff window; once traffic moves the entries
// clock past the window, the retry compiles cleanly, the address is
// re-promoted, and QuarantineRecoveries records the heal. Outputs
// must match the interpreter throughout — quarantine means interp
// service, never wrong answers.
func TestQuarantineBackoffExpiryRepromotes(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := interpRefs(t, refEng, eps)

	inj := faultinject.New(faultinject.Config{Seed: 9})
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 250
	cfg.Faults = inj
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	round := func() {
		t.Helper()
		for _, ep := range eps {
			var sb strings.Builder
			eng.VM.SetOut(&sb)
			val, err := eng.Call(workload.EndpointFunc(ep.Name))
			if err != nil {
				t.Fatalf("endpoint %s: %v", ep.Name, err)
			}
			eng.Heap().DecRef(val)
			if sb.String() != ref[ep.Name] {
				t.Fatalf("endpoint %s: output diverged from interpreter", ep.Name)
			}
		}
	}
	for r := 0; r < 30; r++ {
		round()
	}
	if eng.Stats().OptimizedTranslations == 0 {
		t.Fatal("warmup published no optimized translations")
	}
	base := eng.Stats()

	// Knock out one hot published address and make its re-mint fail.
	j := eng.VM.JIT
	var fnID, pc = -1, -1
	j.ForEachTranslation(func(tr *jit.Translation) {
		if fnID < 0 {
			fnID, pc = tr.FuncID, tr.PC
		}
	})
	inj.ForceNext(faultinject.CompileError, 2)
	if j.Invalidate(fnID, pc, false) == 0 {
		t.Fatalf("victim (fn %d pc %d) was not published", fnID, pc)
	}
	for r := 0; r < 40; r++ {
		round()
	}

	st := eng.Stats()
	if fired := inj.Fired(faultinject.CompileError); fired == 0 {
		t.Fatal("forced compile errors never fired (no re-mint attempted?)")
	}
	if st.CompileFailures <= base.CompileFailures {
		t.Errorf("no compile failures recorded: %d -> %d", base.CompileFailures, st.CompileFailures)
	}
	if st.QuarantineRetries <= base.QuarantineRetries {
		t.Errorf("no quarantine retries: %d -> %d", base.QuarantineRetries, st.QuarantineRetries)
	}
	if st.QuarantineRecoveries <= base.QuarantineRecoveries {
		t.Errorf("backoff expiry never re-promoted the address: recoveries %d -> %d",
			base.QuarantineRecoveries, st.QuarantineRecoveries)
	}
	// The healed ledger: nothing left quarantined, nothing demoted.
	left := 0
	j.ForEachQuarantined(func(_, _, _ int, _ bool) { left++ })
	if left != 0 {
		t.Errorf("%d addresses still in the quarantine ledger after recovery", left)
	}
	if st.Demotions != base.Demotions {
		t.Errorf("transient compile failures escalated to demotion: %d -> %d", base.Demotions, st.Demotions)
	}
}
