// Package profile holds the data gathered by profiling translations:
// per-block execution counters, observed control-flow arcs, and
// call-target histograms. The profile-guided region selector and the
// optimizing JIT consume it; the jumpstart subsystem persists it
// across server restarts.
package profile

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TransID identifies one profiling translation (a type-specialized
// basic block).
type TransID int

// The counter slab is a list of fixed-size chunks. Chunks never move
// once allocated, so Inc can run lock-free: it loads the chunk list
// pointer atomically and does an atomic add into the chunk. Only slab
// growth (NewCounter) takes the mutex; the chunk list is copied and
// republished there, never mutated in place.
const (
	chunkShift = 10
	chunkSize  = 1 << chunkShift
)

type chunk [chunkSize]uint64

// Counters is the instrumentation store. The profiling JIT increments
// a unique counter after each translation's type guards, so counter
// values double as both basic-block frequencies and input-type
// distributions (Section 4.1 of the paper). Inc is the hottest
// instrumentation path and is a single atomic add; everything else
// (arcs, histograms, call graph) is recorded at block boundaries and
// stays under the mutex.
type Counters struct {
	mu   sync.Mutex
	slab atomic.Pointer[[]*chunk]
	n    int // counters allocated (guarded by mu)

	// arcs records observed transfers between profiling translations.
	arcs map[Arc]uint64
	// callTargets histograms callee classes at method-call sites:
	// (funcID, bcPC) -> class name -> count.
	callTargets map[CallSite]map[string]uint64
	// funcCalls counts direct calls per callee funcID (for the
	// whole-program call graph used by function sorting).
	funcCalls map[CallArc]uint64
	// propShapes histograms the receiver's object shape at property
	// access sites: (funcID, bcPC) -> shape ID -> count. Shape IDs
	// are process-local (minted in first-touch order by this VM's
	// shape tree), so this table is deliberately excluded from
	// Data/Snapshot/Merge: it never rides jumpstart snapshots or
	// fleet aggregation. Warm-started hosts rebuild shape knowledge
	// through the self-filling inline caches instead.
	propShapes map[CallSite]map[uint32]uint64
}

// Arc is an observed control transfer between translations.
type Arc struct{ From, To TransID }

// CallSite locates a method-call bytecode.
type CallSite struct {
	FuncID int
	PC     int
}

// CallArc is a caller->callee edge in the dynamic call graph.
type CallArc struct{ Caller, Callee int }

// NewCounters returns an empty store.
func NewCounters() *Counters {
	c := &Counters{
		arcs:        map[Arc]uint64{},
		callTargets: map[CallSite]map[string]uint64{},
		funcCalls:   map[CallArc]uint64{},
		propShapes:  map[CallSite]map[uint32]uint64{},
	}
	empty := []*chunk{}
	c.slab.Store(&empty)
	return c
}

// NewCounter allocates a fresh counter and returns its ID.
func (c *Counters) NewCounter() TransID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := TransID(c.n)
	need := (c.n >> chunkShift) + 1
	if cur := *c.slab.Load(); len(cur) < need {
		grown := make([]*chunk, need)
		copy(grown, cur)
		for i := len(cur); i < need; i++ {
			grown[i] = new(chunk)
		}
		c.slab.Store(&grown)
	}
	c.n++
	return id
}

// NumCounters returns how many counters have been allocated.
func (c *Counters) NumCounters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Inc bumps a counter. Called from JITed profiling code on every
// translation entry, concurrently across warmup threads, so it must
// not contend on the mutex: one atomic add into the pre-sized slab.
func (c *Counters) Inc(id TransID) {
	slab := *c.slab.Load()
	atomic.AddUint64(&slab[id>>chunkShift][id&(chunkSize-1)], 1)
}

// Add bumps a counter by n (bulk restore path: jumpstart, merging).
// Counters beyond the allocated slab are allocated rather than
// silently dropped, so a bulk load whose ordering diverges from
// counter allocation cannot lose profile data.
func (c *Counters) Add(id TransID, n uint64) {
	if n == 0 || id < 0 {
		return
	}
	slab := *c.slab.Load()
	if int(id>>chunkShift) >= len(slab) {
		c.growTo(id)
		slab = *c.slab.Load()
	}
	atomic.AddUint64(&slab[id>>chunkShift][id&(chunkSize-1)], n)
}

// growTo extends the slab (and the allocated-counter count) to cover
// id, so Count/Snapshot see bulk-loaded counters too.
func (c *Counters) growTo(id TransID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(id) >= c.n {
		c.n = int(id) + 1
	}
	need := (int(id) >> chunkShift) + 1
	if cur := *c.slab.Load(); len(cur) < need {
		grown := make([]*chunk, need)
		copy(grown, cur)
		for i := len(cur); i < need; i++ {
			grown[i] = new(chunk)
		}
		c.slab.Store(&grown)
	}
}

// Count reads a counter.
func (c *Counters) Count(id TransID) uint64 {
	slab := *c.slab.Load()
	if id < 0 || int(id>>chunkShift) >= len(slab) {
		return 0
	}
	return atomic.LoadUint64(&slab[id>>chunkShift][id&(chunkSize-1)])
}

// RecordArc notes a from->to transfer between profiling translations.
func (c *Counters) RecordArc(from, to TransID) { c.AddArc(from, to, 1) }

// AddArc bumps an arc weight by n.
func (c *Counters) AddArc(from, to TransID, n uint64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.arcs[Arc{from, to}] += n
	c.mu.Unlock()
}

// ArcCount reads an arc weight.
func (c *Counters) ArcCount(from, to TransID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arcs[Arc{from, to}]
}

// Arcs returns all arcs involving the given translations.
func (c *Counters) Arcs(in map[TransID]bool) map[Arc]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Arc]uint64)
	for a, n := range c.arcs {
		if in[a.From] || in[a.To] {
			out[a] = n
		}
	}
	return out
}

// RecordCallTarget histograms the receiver class at a method call.
func (c *Counters) RecordCallTarget(site CallSite, class string) {
	c.AddCallTarget(site, class, 1)
}

// AddCallTarget bumps a call-site histogram entry by n.
func (c *Counters) AddCallTarget(site CallSite, class string, n uint64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	m := c.callTargets[site]
	if m == nil {
		m = map[string]uint64{}
		c.callTargets[site] = m
	}
	m[class] += n
	c.mu.Unlock()
}

// TargetProfile summarizes a call site's receiver distribution.
type TargetProfile struct {
	Total uint64
	// Classes sorted by descending count.
	Classes []ClassCount
}

// ClassCount is one histogram entry.
type ClassCount struct {
	Class string
	Count uint64
}

// CallTargets returns the profile for a site (nil if never observed).
func (c *Counters) CallTargets(site CallSite) *TargetProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.callTargets[site]
	if len(m) == 0 {
		return nil
	}
	tp := &TargetProfile{}
	for cls, n := range m {
		tp.Total += n
		tp.Classes = append(tp.Classes, ClassCount{cls, n})
	}
	sort.Slice(tp.Classes, func(i, j int) bool {
		if tp.Classes[i].Count != tp.Classes[j].Count {
			return tp.Classes[i].Count > tp.Classes[j].Count
		}
		return tp.Classes[i].Class < tp.Classes[j].Class
	})
	return tp
}

// RecordPropShape histograms the receiver shape at a property-access
// site (profiling translations call it; shape 0 = shapeless receiver
// and is recorded too, so the optimizer sees generic-only sites).
func (c *Counters) RecordPropShape(site CallSite, shapeID uint32) {
	c.mu.Lock()
	m := c.propShapes[site]
	if m == nil {
		m = map[uint32]uint64{}
		c.propShapes[site] = m
	}
	m[shapeID]++
	c.mu.Unlock()
}

// ShapeWarmMin is the minimum observation count before a shape
// profile supports monomorphic speculation. Profiling translations
// run only briefly before republish, so the bar is low: a handful of
// observations all agreeing on one shape is strong evidence.
const ShapeWarmMin = 4

// ShapeCount is one shape-histogram entry.
type ShapeCount struct {
	Shape uint32
	Count uint64
}

// ShapeProfile summarizes a property site's receiver-shape
// distribution.
type ShapeProfile struct {
	Total uint64
	// Shapes sorted by descending count (shape ID tiebreak).
	Shapes []ShapeCount
}

// PropShapes returns the shape profile for a site (nil if never
// observed).
func (c *Counters) PropShapes(site CallSite) *ShapeProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.propShapes[site]
	if len(m) == 0 {
		return nil
	}
	sp := &ShapeProfile{}
	for id, n := range m {
		sp.Total += n
		sp.Shapes = append(sp.Shapes, ShapeCount{id, n})
	}
	sort.Slice(sp.Shapes, func(i, j int) bool {
		if sp.Shapes[i].Count != sp.Shapes[j].Count {
			return sp.Shapes[i].Count > sp.Shapes[j].Count
		}
		return sp.Shapes[i].Shape < sp.Shapes[j].Shape
	})
	return sp
}

// RecordCall notes a dynamic caller->callee call.
func (c *Counters) RecordCall(caller, callee int) { c.AddCall(caller, callee, 1) }

// AddCall bumps a call-graph edge by n.
func (c *Counters) AddCall(caller, callee int, n uint64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.funcCalls[CallArc{caller, callee}] += n
	c.mu.Unlock()
}

// CallGraph returns the weighted dynamic call graph.
func (c *Counters) CallGraph() map[CallArc]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[CallArc]uint64, len(c.funcCalls))
	for k, v := range c.funcCalls {
		out[k] = v
	}
	return out
}

// Data is a plain-value copy of a Counters store: the unit of profile
// persistence and fleet aggregation. TransIDs in Data refer to the
// translation space of the VM the snapshot was taken from; merging
// Data from different VMs by raw TransID is only meaningful when they
// minted translations identically (the jumpstart package merges by
// stable function identity instead).
type Data struct {
	Counts      []uint64
	Arcs        map[Arc]uint64
	CallTargets map[CallSite]map[string]uint64
	FuncCalls   map[CallArc]uint64
}

// Snapshot copies the full store. Counter reads are atomic, so a
// snapshot taken while profiling threads run is internally consistent
// per counter (no torn values), though counters keep moving.
func (c *Counters) Snapshot() *Data {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &Data{
		Counts:      make([]uint64, c.n),
		Arcs:        make(map[Arc]uint64, len(c.arcs)),
		CallTargets: make(map[CallSite]map[string]uint64, len(c.callTargets)),
		FuncCalls:   make(map[CallArc]uint64, len(c.funcCalls)),
	}
	slab := *c.slab.Load()
	for i := 0; i < c.n; i++ {
		d.Counts[i] = atomic.LoadUint64(&slab[i>>chunkShift][i&(chunkSize-1)])
	}
	for a, n := range c.arcs {
		d.Arcs[a] = n
	}
	for site, m := range c.callTargets {
		cp := make(map[string]uint64, len(m))
		for cls, n := range m {
			cp[cls] = n
		}
		d.CallTargets[site] = cp
	}
	for a, n := range c.funcCalls {
		d.FuncCalls[a] = n
	}
	return d
}

// scaleCount applies a merge weight, rounding to nearest.
func scaleCount(v uint64, w float64) uint64 {
	if w == 1 {
		return v
	}
	if w <= 0 {
		return 0
	}
	return uint64(float64(v)*w + 0.5)
}

// Merge folds d into c with the given weight (1.0 = plain sum; <1
// decays the incoming profile, the aggregation rule for combining
// fleet snapshots of different ages). d's TransIDs must refer to c's
// translation space; counters beyond c's slab are allocated.
func (c *Counters) Merge(d *Data, weight float64) {
	for c.NumCounters() < len(d.Counts) {
		c.NewCounter()
	}
	for i, v := range d.Counts {
		c.Add(TransID(i), scaleCount(v, weight))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for a, n := range d.Arcs {
		if s := scaleCount(n, weight); s > 0 {
			c.arcs[a] += s
		}
	}
	for site, m := range d.CallTargets {
		for cls, n := range m {
			s := scaleCount(n, weight)
			if s == 0 {
				continue
			}
			dst := c.callTargets[site]
			if dst == nil {
				dst = map[string]uint64{}
				c.callTargets[site] = dst
			}
			dst[cls] += s
		}
	}
	for a, n := range d.FuncCalls {
		if s := scaleCount(n, weight); s > 0 {
			c.funcCalls[a] += s
		}
	}
}
