package region

import (
	"repro/internal/profile"
	"repro/internal/types"
)

// RelaxConfig tunes guard relaxation (Section 5.2.2).
type RelaxConfig struct {
	// Enabled turns the pass on (the Figure 10 ablation disables it).
	Enabled bool
	// GenericThreshold: when the dominant observed type covers less
	// than this fraction of executions, relax all the way to Generic
	// rather than keeping per-type translations ("if the input type
	// was reference counted 80% of the time, relax to generic").
	GenericThreshold float64
}

// DefaultRelaxConfig matches the paper's behaviour.
var DefaultRelaxConfig = RelaxConfig{Enabled: true, GenericThreshold: 0.85}

// Relax applies guard relaxation to an optimized region: for every
// precondition, the guard is widened as far as its type constraint
// allows given the profiled type distribution at that bytecode
// address; retranslation chains are then re-sorted and blocks
// subsumed by relaxed predecessors dropped.
func Relax(d *Desc, g *TransCFG, counters *profile.Counters, cfg RelaxConfig) {
	if !cfg.Enabled {
		return
	}
	// Type distributions: for each (start pc, loc), the observed
	// (type, weight) pairs across all profiling translations of the
	// function.
	type distKey struct {
		pc  int
		loc Loc
	}
	dist := map[distKey]map[types.Type]uint64{}
	for i, b := range g.Nodes {
		w := g.Weights[i]
		for _, gd := range b.Preconds {
			k := distKey{b.Start, gd.Loc}
			if dist[k] == nil {
				dist[k] = map[types.Type]uint64{}
			}
			dist[k][gd.Type] += w
		}
	}

	for _, b := range d.Blocks {
		for gi := range b.Preconds {
			gd := &b.Preconds[gi]
			if gd.Constraint >= ConSpecific {
				// The code needs the full type; relaxing would force
				// generic paths. Check profile dominance instead: if
				// no single type dominates, keep specific guards (the
				// chain handles polymorphism).
				continue
			}
			relaxed := gd.Constraint.RelaxedType(gd.Type)
			k := distKey{b.Start, gd.Loc}
			if m := dist[k]; m != nil {
				var total, under uint64
				for t, w := range m {
					total += w
					if t.SubtypeOf(relaxed) {
						under += w
					}
				}
				if total > 0 && float64(under)/float64(total) < cfg.GenericThreshold {
					// Observed types straddle the relaxed check most
					// of the time: drop the guard entirely (Generic).
					relaxed = types.TCell
				}
			}
			gd.Type = relaxed
		}
	}

	dedupeChains(d)
}

// dedupeChains removes region blocks whose (relaxed) preconditions
// are subsumed by an earlier block in the same retranslation chain —
// those translations can never be reached.
func dedupeChains(d *Desc) {
	dead := map[int]bool{}
	for _, chain := range d.Chains {
		for i := 0; i < len(chain); i++ {
			if dead[chain[i]] {
				continue
			}
			for j := i + 1; j < len(chain); j++ {
				if dead[chain[j]] {
					continue
				}
				if subsumes(d.Blocks[chain[i]], d.Blocks[chain[j]]) {
					dead[chain[j]] = true
				}
			}
		}
	}
	if len(dead) == 0 {
		return
	}
	// Rebuild the region without dead blocks.
	remap := map[int]int{}
	var blocks []*Block
	for i, b := range d.Blocks {
		if dead[i] {
			continue
		}
		remap[i] = len(blocks)
		blocks = append(blocks, b)
	}
	arcs := map[int][]int{}
	weight := map[int]uint64{}
	for i, succs := range d.Arcs {
		ni, ok := remap[i]
		if !ok {
			continue
		}
		for _, sj := range succs {
			if nj, ok := remap[sj]; ok {
				arcs[ni] = append(arcs[ni], nj)
			}
		}
	}
	for i, w := range d.Weight {
		if ni, ok := remap[i]; ok {
			weight[ni] = w
		}
	}
	d.Blocks, d.Arcs, d.Weight = blocks, arcs, weight
	chainRetranslations(d)
}

// subsumes reports whether every input accepted by b's guards is also
// accepted by a's (same bytecode address assumed).
func subsumes(a, b *Block) bool {
	for _, gb := range b.Preconds {
		ga, ok := a.GuardFor(gb.Loc)
		if !ok {
			continue // a doesn't check this loc: accepts everything
		}
		if !gb.Type.SubtypeOf(ga.Type) {
			return false
		}
	}
	// a must not check locations b leaves unchecked with a narrower
	// type than TCell.
	for _, ga := range a.Preconds {
		if _, ok := b.GuardFor(ga.Loc); !ok {
			if !types.TCell.SubtypeOf(ga.Type) {
				return false
			}
		}
	}
	return true
}
