// Package repro's benchmark harness regenerates every table and
// figure in the paper's evaluation (Section 6). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figure's rows/series through b.Log and
// custom metrics (simulated guest cycles per request), so the output
// can be compared against the numbers recorded in EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/jit"
	"repro/internal/machine"
	"repro/internal/perflab"
	"repro/internal/server"
)

var benchCfg = perflab.Config{WarmupRequests: 30, MeasureRequests: 6}

// BenchmarkFig8ExecutionModes regenerates Figure 8: the relative
// performance of the interpreter, the gen-1 tracelet JIT, the
// profiling JIT, and the profile-guided region JIT.
func BenchmarkFig8ExecutionModes(b *testing.B) {
	for _, mode := range []jit.Mode{jit.ModeInterp, jit.ModeTracelet,
		jit.ModeProfiling, jit.ModeRegion} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := jit.DefaultConfig()
			cfg.Mode = mode
			var mean float64
			for i := 0; i < b.N; i++ {
				r, err := perflab.Measure(cfg, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				mean = r.WeightedMean
			}
			b.ReportMetric(mean, "guest-cycles/req")
		})
	}
}

// BenchmarkFig9Startup regenerates Figure 9: the restart timeline
// (JITed code growth + RPS recovery).
func BenchmarkFig9Startup(b *testing.B) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 20
	cfg.CyclesPerMinute = 1_200_000
	var res *server.Result
	for i := 0; i < b.N; i++ {
		r, err := server.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if res != nil {
		server.Report(os.Stderr, res)
		b.ReportMetric(res.SteadyRPS, "steady-RPS/min")
		b.ReportMetric(float64(res.Samples[len(res.Samples)-1].CodeBytes), "code-bytes")
	}
}

// BenchmarkFig10Optimizations regenerates Figure 10: slowdown from
// disabling each JIT optimization individually.
func BenchmarkFig10Optimizations(b *testing.B) {
	base := jit.DefaultConfig()
	baseline, err := perflab.Measure(base, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		mod  func(*jit.Config)
	}{
		{"Inlining", func(c *jit.Config) { c.EnableInlining = false }},
		{"RCE", func(c *jit.Config) { c.EnableRCE = false }},
		{"GuardRelax", func(c *jit.Config) { c.EnableGuardRelax = false }},
		{"MethodDispatch", func(c *jit.Config) { c.EnableMethodDispatch = false }},
		{"PGOLayout", func(c *jit.Config) { c.PGOLayout = false; c.FunctionSort = false }},
		{"HugePages", func(c *jit.Config) { c.HugePages = false }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := jit.DefaultConfig()
			v.mod(&cfg)
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := perflab.Measure(cfg, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				slow = (r.WeightedMean/baseline.WeightedMean - 1) * 100
			}
			b.ReportMetric(slow, "slowdown-%")
		})
	}
}

// BenchmarkFig11CodeSize regenerates Figure 11: performance versus
// the JITed-code byte budget.
func BenchmarkFig11CodeSize(b *testing.B) {
	baseline, err := perflab.Measure(jit.DefaultConfig(), benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.2, 0.4, 0.7, 1.0, 1.2} {
		b.Run(fmt.Sprintf("budget_%.0f%%", frac*100), func(b *testing.B) {
			cfg := jit.DefaultConfig()
			cfg.CodeCacheLimit = uint64(frac * float64(baseline.CodeBytes))
			var rel float64
			for i := 0; i < b.N; i++ {
				r, err := perflab.Measure(cfg, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				rel = 100 * baseline.WeightedMean / r.WeightedMean
			}
			b.ReportMetric(rel, "rel-perf-%")
		})
	}
}

// BenchmarkAblationFunctionSort isolates the C3 function-sorting
// component of PGO layout (DESIGN.md §5 ablations).
func BenchmarkAblationFunctionSort(b *testing.B) {
	base := jit.DefaultConfig()
	baseline, err := perflab.Measure(base, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg := jit.DefaultConfig()
	cfg.FunctionSort = false
	var slow float64
	for i := 0; i < b.N; i++ {
		r, err := perflab.Measure(cfg, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		slow = (r.WeightedMean/baseline.WeightedMean - 1) * 100
	}
	b.ReportMetric(slow, "slowdown-%")
}

// BenchmarkAblationRCESinking compares full RCE against no RCE,
// reporting the refcount-operation reduction alongside the cycle
// delta (the mechanism behind Section 5.3.2).
func BenchmarkAblationRCESinking(b *testing.B) {
	measure := func(rce bool) (float64, uint64) {
		cfg := jit.DefaultConfig()
		cfg.EnableRCE = rce
		eng, eps, err := perflab.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			for _, ep := range eps {
				if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
					b.Fatal(err)
				}
			}
		}
		h0 := eng.Heap().Snapshot()
		c0 := eng.Cycles()
		for _, ep := range eps {
			if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
				b.Fatal(err)
			}
		}
		h1 := eng.Heap().Snapshot()
		return float64(eng.Cycles() - c0), (h1.IncRefs - h0.IncRefs) + (h1.DecRefs - h0.DecRefs)
	}
	var withCycles, withoutCycles float64
	var withRC, withoutRC uint64
	for i := 0; i < b.N; i++ {
		withCycles, withRC = measure(true)
		withoutCycles, withoutRC = measure(false)
	}
	b.ReportMetric(100*(withoutCycles/withCycles-1), "slowdown-%")
	b.ReportMetric(float64(withoutRC-withRC), "rc-ops-eliminated")
}

// BenchmarkMachineExec measures raw host dispatch throughput (PR 8):
// wall-clock time per request through a fully warmed region JIT, with
// dispatch fusion off (classic per-instruction accounting + switch),
// on (superinstructions + per-run cycle settlement), and on with the
// indirect handler table instead of the switch. Guest cycles are
// identical in all three; ns/op is the host-side difference.
func BenchmarkMachineExec(b *testing.B) {
	variants := []struct {
		name     string
		fused    bool
		handlers bool
	}{
		{"unfused", false, false},
		{"fused", true, false},
		{"fused-handler-table", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := jit.DefaultConfig()
			cfg.FuseDispatch = v.fused
			machine.SetHandlerTable(v.handlers)
			defer machine.SetHandlerTable(false)
			eng, eps, err := perflab.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Warm through the full lifecycle so the measured loop runs
			// steady-state optimized code.
			for i := 0; i < 40; i++ {
				for _, ep := range eps {
					if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
						b.Fatal(err)
					}
				}
			}
			runtime.GC() // keep warmup garbage out of the timed loop
			reqs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ep := range eps {
					if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
						b.Fatal(err)
					}
					reqs++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(reqs), "host-ns/req")
		})
	}
}

// BenchmarkParallelCompile measures wall-clock time of the global
// retranslation with the backend fanned over 1 vs N compile workers.
// Each iteration builds a fresh engine (OptimizeAll runs once per JIT),
// warms it far below the trigger to mint profiling translations, then
// times the explicit OptimizeAll call.
func BenchmarkParallelCompile(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := jit.DefaultConfig()
				cfg.ProfileTrigger = 1 << 40 // never fires on its own
				cfg.CompileWorkers = workers
				eng, eps, err := perflab.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 30; r++ {
					for _, ep := range eps {
						if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StartTimer()
				eng.VM.JIT.OptimizeAll()
			}
		})
	}
}
