package fleet

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/server"
)

// Report prints the fleet timeline and summary, Figure 9-style but
// fleet-wide: per-minute fleet RPS, capacity during deploys, worst
// degradation level, and aggregator staleness, followed by per-host
// warmup curves and restart records.
func Report(w io.Writer, r *Result) {
	fmt.Fprintf(w, "fleet: %d hosts, steady %.0f req/min (host shares ", r.Hosts, r.FleetSteadyRPS)
	for i, s := range r.HostSteadyRPS {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "%.0f", s)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "traffic: %d requests from %d unique users (population %d)\n",
		r.Requests, r.UniqueUsers, r.Users)

	fmt.Fprintln(w, "\n min | offered |  served |  fleet%% |  cap%% | up | deg | stale | bklog | shed | lost")
	fmt.Fprintln(w, "-----+---------+---------+---------+-------+----+-----+-------+-------+------+-----")
	for _, s := range r.Samples {
		fmt.Fprintf(w, " %3.0f | %7.0f | %7.0f | %6.1f%% | %4.0f%% | %2d |  %d  | %5.0f | %5.0f | %4.0f | %4.0f\n",
			s.Minute, s.OfferedRPS, s.ServedRPS, s.FleetRPSPct, s.CapacityPct,
			s.HostsUp, s.MaxDegrade, s.AggStalenessMin, s.Backlog, s.ShedRPS, s.LostRPS)
	}

	fmt.Fprintln(w, "\nper-host warmup curves (% of host steady RPS; . = down, X = dead):")
	fmt.Fprint(w, " min |")
	for i := range r.HostTimelines {
		fmt.Fprintf(w, " h%-3d|", i)
	}
	fmt.Fprintln(w)
	for m := 0; m < len(r.Samples); m++ {
		fmt.Fprintf(w, " %3d |", m+1)
		for _, tl := range r.HostTimelines {
			cell := "  . "
			if m < len(tl) {
				hs := tl[m]
				if hs.Up {
					cell = fmt.Sprintf("%4.0f", hs.RPSPct)
				} else if strings.Contains(hs.Event, "X") {
					cell = "  X "
				}
				if ev := hs.Event; ev != "" {
					cell += ev
				}
			}
			fmt.Fprintf(w, "%-5s|", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "events: J=warm jumpstart C=optimized R=restarting U=rejoined S=shed V=recovered X=died D=divergence demotion")

	if len(r.Restarts) > 0 {
		fmt.Fprintln(w, "\nrestarts:")
		for _, rec := range r.Restarts {
			mode := "cold"
			detail := ""
			if rec.Warm {
				mode = "warm"
				detail = fmt.Sprintf(" (%d trans, staleness %.0f min)", rec.LoadedTrans, rec.StalenessMin)
			}
			fmt.Fprintf(w, "  host %d down @%d up @%d %s%s: to-90%% %s\n",
				rec.Host, rec.DownMinute, rec.UpMinute, mode, detail, fmtTo90(rec.MinutesTo90))
		}
	}

	a := r.Aggregator
	fmt.Fprintf(w, "\naggregator: %d publishes, %d merge rounds (%d snapshots folded), %d pulls, aggregate %d funcs / %d trans\n",
		a.Publishes, a.MergeRounds, a.MergedSnapshots, a.Pulls, a.Funcs, a.Trans)
	fmt.Fprintf(w, "fleet to-90%%: %s   output mismatches vs single-host: %d   hosts died: %d   shed %.0f / lost %.0f reqs\n",
		fmtTo90(r.MinutesTo90), r.OutputMismatches, r.HostsDied, r.ShedRequests, r.LostRequests)
	fmt.Fprintf(w, "wall clock: %v\n", r.WallClock.Round(1e6))
}

func fmtTo90(m float64) string {
	if m == server.MinutesTo90Never {
		return "never"
	}
	return fmt.Sprintf("%.0f min", m)
}
