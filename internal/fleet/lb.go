package fleet

// Load-balancer model: weighted least-loaded routing with per-host
// health. Each minute the balancer splits the offered request volume
// across healthy hosts. A host's routing weight is its capacity
// factor (fleets mix hardware generations) discounted by its current
// backlog relative to capacity — the "least loaded" feedback that
// steers traffic away from hosts that are warming up, shedding, or
// digging out of a queue. A configurable fraction of traffic is
// sprayed uniformly instead (health-checked round-robin components in
// front of the weighted tier), which is what makes the weaker hosts
// run proportionally hotter under fleet-wide overload.

// assign splits offered requests across hosts for one minute.
// Unhealthy hosts (down, dead) receive nothing. Returns per-host
// request shares summing to offered (0 everywhere when no host is
// routable — that traffic is lost, counted by the caller).
func assign(offered float64, hosts []*host, uniformFrac float64) []float64 {
	shares := make([]float64, len(hosts))
	if offered <= 0 {
		return shares
	}
	weights := make([]float64, len(hosts))
	var wsum float64
	up := 0
	for i, h := range hosts {
		if !h.routable() {
			continue
		}
		up++
		// Least-loaded: discount capacity by the backlog already
		// queued, measured in minutes of work at full speed.
		w := h.capFactor / (1 + h.backlog/h.capacityRPS)
		weights[i] = w
		wsum += w
	}
	if up == 0 {
		return shares
	}
	if uniformFrac < 0 {
		uniformFrac = 0
	}
	if uniformFrac > 1 {
		uniformFrac = 1
	}
	uniform := offered * uniformFrac / float64(up)
	weighted := offered * (1 - uniformFrac)
	for i, h := range hosts {
		if !h.routable() {
			continue
		}
		shares[i] = uniform
		if wsum > 0 {
			shares[i] += weighted * weights[i] / wsum
		}
	}
	return shares
}
