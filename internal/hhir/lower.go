package hhir

import (
	"repro/internal/hhbc"
	"repro/internal/profile"
	"repro/internal/shapes"
	"repro/internal/types"
)

// Reference-count conventions: virtual-stack values are owned (one
// reference each); LdLoc borrows (CGetL adds an explicit IncRef, the
// raw material of RCE); helpers return owned results and consume
// their argument references when documented (calls, array stores).

// lowerInstr lowers one bytecode instruction. Returns done=true when
// a terminator was emitted (the region block is finished).
func (b *builder) lowerInstr(in hhbc.Instr, pc int, ri int) (bool, error) {
	u := b.unit
	switch in.Op {
	case hhbc.OpNop, hhbc.OpIncProfCounter:

	case hhbc.OpAssertRATL:
		t := u.DecodeRAT(in.B, in.C)
		slot := b.slot(in.A)
		nt := b.localType(slot).Intersect(t)
		if !nt.IsBottom() {
			b.setLocalType(slot, nt)
		}
	case hhbc.OpAssertRAStk:
		d := len(b.stack) - 1 - int(in.A)
		if d >= 0 {
			t := u.DecodeRAT(in.B, in.C)
			nt := b.stack[d].Type.Intersect(t)
			if !nt.IsBottom() {
				b.stack[d] = b.def(AssertType, nt, b.stack[d])
			}
		}

	case hhbc.OpInt:
		b.push(b.constInt(u.Ints[in.A]))
	case hhbc.OpDouble:
		b.push(b.constDbl(u.Doubles[in.A]))
	case hhbc.OpString:
		b.push(b.constStr(u.Strings[in.A]))
	case hhbc.OpTrue:
		b.push(b.constBool(true))
	case hhbc.OpFalse:
		b.push(b.constBool(false))
	case hhbc.OpNull:
		b.push(b.constNull())

	case hhbc.OpPopC:
		b.decRef(b.pop())
	case hhbc.OpDup:
		v := b.top()
		b.incRef(v)
		b.push(v)

	case hhbc.OpCGetL:
		v := b.ldLoc(b.slot(in.A))
		b.incRef(v)
		b.push(v)
	case hhbc.OpCGetL2:
		v := b.ldLoc(b.slot(in.A))
		b.incRef(v)
		top := b.pop()
		b.push(v)
		b.push(top)
	case hhbc.OpPopL:
		v := b.pop()
		b.storeToLocal(b.slot(in.A), v)
	case hhbc.OpSetL:
		v := b.top()
		b.incRef(v)
		b.storeToLocal(b.slot(in.A), v)
	case hhbc.OpPushL:
		slot := b.slot(in.A)
		v := b.ldLoc(slot)
		b.push(v)
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{b.constNullOfUninit()}})
		b.setLocalType(slot, types.TUninit)
	case hhbc.OpUnsetL:
		slot := b.slot(in.A)
		old := b.ldLoc(slot)
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{b.constNullOfUninit()}})
		b.decRef(old)
		b.setLocalType(slot, types.TUninit)
	case hhbc.OpIsTypeL:
		v := b.ldLoc(b.slot(in.A))
		k := types.Kind(in.B)
		switch {
		case v.Type.Kind()&k == v.Type.Kind():
			b.push(b.constBool(true))
		case v.Type.Kind()&k == 0:
			b.push(b.constBool(false))
		default:
			b.push(b.def(ConvToBool, types.TBool, v)) // dynamic kind test
		}
	case hhbc.OpIncDecL:
		if done := b.lowerIncDec(in); done {
			return true, nil
		}

	case hhbc.OpAdd, hhbc.OpSub, hhbc.OpMul:
		y, x := b.pop(), b.pop()
		b.push(b.lowerArith(in.Op, x, y))
	case hhbc.OpDiv:
		y, x := b.pop(), b.pop()
		switch {
		case x.Type.SubtypeOf(types.TDbl) || y.Type.SubtypeOf(types.TDbl):
			xd, yd := b.toDbl(x), b.toDbl(y)
			b.push(b.def(DivDbl, types.TDbl, xd, yd))
		case x.Type.SubtypeOf(types.TInt) && y.Type.SubtypeOf(types.TInt):
			dst := b.out.NewTmp(types.TNum)
			inn := &Instr{Op: DivNum, Dst: dst, Args: []*SSATmp{x, y}, Exit: b.catchExit()}
			dst.Def = inn
			b.emit(inn)
			b.push(dst)
		default:
			b.push(b.generic(hhbc.OpDiv, x, y))
		}
	case hhbc.OpMod:
		y, x := b.pop(), b.pop()
		if x.Type.SubtypeOf(types.TInt) && y.Type.SubtypeOf(types.TInt) {
			dst := b.out.NewTmp(types.TInt)
			inn := &Instr{Op: ModInt, Dst: dst, Args: []*SSATmp{x, y}, Exit: b.catchExit()}
			dst.Def = inn
			b.emit(inn)
			b.push(dst)
		} else {
			b.push(b.generic(hhbc.OpMod, x, y))
		}
	case hhbc.OpConcat:
		y, x := b.pop(), b.pop()
		r := b.def(ConcatStr, types.TStr, x, y)
		b.decRef(x)
		b.decRef(y)
		b.push(r)
	case hhbc.OpNeg:
		x := b.pop()
		switch {
		case x.Type.SubtypeOf(types.TInt):
			b.push(b.def(NegInt, types.TInt, x))
		case x.Type.SubtypeOf(types.TDbl):
			b.push(b.def(NegDbl, types.TDbl, x))
		default:
			b.push(b.generic(hhbc.OpNeg, x, b.constInt(0)))
		}

	case hhbc.OpGt, hhbc.OpGte, hhbc.OpLt, hhbc.OpLte:
		y, x := b.pop(), b.pop()
		b.push(b.lowerCmp(in.Op, x, y))
	case hhbc.OpEq, hhbc.OpNeq:
		y, x := b.pop(), b.pop()
		neg := int64(0)
		if in.Op == hhbc.OpNeq {
			neg = 1
		}
		switch {
		case x.Type.SubtypeOf(types.TInt) && y.Type.SubtypeOf(types.TInt):
			cond := int64(CondEQ)
			if neg == 1 {
				cond = CondNE
			}
			b.push(b.cmpI(cond, x, y))
		case x.Type.SubtypeOf(types.TStr) && y.Type.SubtypeOf(types.TStr):
			cond := int64(CondEQ)
			if neg == 1 {
				cond = CondNE
			}
			r := b.out.NewTmp(types.TBool)
			inn := &Instr{Op: CmpStr, Dst: r, I64: cond, Args: []*SSATmp{x, y}}
			r.Def = inn
			b.emit(inn)
			b.decRef(x)
			b.decRef(y)
			b.push(r)
		default:
			r := b.out.NewTmp(types.TBool)
			inn := &Instr{Op: EqAny, Dst: r, I64: neg, Args: []*SSATmp{x, y}, Exit: b.catchExit()}
			r.Def = inn
			b.emit(inn)
			b.decRef(x)
			b.decRef(y)
			b.push(r)
		}
	case hhbc.OpSame, hhbc.OpNSame:
		y, x := b.pop(), b.pop()
		neg := int64(0)
		if in.Op == hhbc.OpNSame {
			neg = 1
		}
		r := b.out.NewTmp(types.TBool)
		inn := &Instr{Op: SameAny, Dst: r, I64: neg, Args: []*SSATmp{x, y}, Exit: b.catchExit()}
		r.Def = inn
		b.emit(inn)
		b.decRef(x)
		b.decRef(y)
		b.push(r)
	case hhbc.OpNot:
		x := b.pop()
		bl := b.toBool(x)
		b.decRef(x)
		r := b.out.NewTmp(types.TBool)
		inn := &Instr{Op: CmpInt, Dst: r, I64: CondEQ, Args: []*SSATmp{bl, b.constBool(false)}}
		r.Def = inn
		b.emit(inn)
		b.push(r)

	case hhbc.OpCastBool:
		x := b.pop()
		r := b.toBool(x)
		b.decRef(x)
		b.push(r)
	case hhbc.OpCastInt:
		x := b.pop()
		r := b.def(ConvToInt, types.TInt, x)
		b.decRef(x)
		b.push(r)
	case hhbc.OpCastDouble:
		x := b.pop()
		r := b.toDbl(x)
		b.decRef(x)
		b.push(r)
	case hhbc.OpCastString:
		x := b.pop()
		if x.Type.SubtypeOf(types.TStr) {
			b.push(x)
		} else {
			r := b.def(ConvToStr, types.TStr, x)
			b.decRef(x)
			b.push(r)
		}

	case hhbc.OpJmp:
		b.jumpToPC(int(in.A), ri)
		return true, nil
	case hhbc.OpJmpZ, hhbc.OpJmpNZ:
		v := b.pop()
		cond := b.toBool(v)
		b.decRef(v)
		takenPC, fallPC := int(in.A), pc+1
		if in.Op == hhbc.OpJmpZ {
			// Branch takes when cond is true; JmpZ jumps when false.
			takenPC, fallPC = fallPC, takenPC
		}
		taken := b.trampoline(takenPC, ri)
		fall := b.trampoline(fallPC, ri)
		b.emit(&Instr{Op: Branch, Args: []*SSATmp{cond}, Taken: taken, Next: fall})
		return true, nil
	case hhbc.OpSwitch:
		// Dense int switch: a real jump table (bounds check + indexed
		// indirect jump), like HHVM's Switch lowering.
		v := b.pop()
		iv := b.toInt(v)
		sw := b.curFn().Switches[in.A]
		table := make([]*Block, len(sw.Targets))
		for ti, tpc := range sw.Targets {
			table[ti] = b.trampoline(tpc, ri)
		}
		def := b.trampoline(sw.Default, ri)
		b.emit(&Instr{Op: SwitchInt, Args: []*SSATmp{iv}, I64: sw.Base,
			Table: table, Taken: def})
		return true, nil

	case hhbc.OpRetC:
		v := b.pop()
		if len(b.inlines) > 0 {
			b.endInline(v)
			return true, nil
		}
		b.emit(&Instr{Op: Ret, Args: []*SSATmp{v}})
		return true, nil
	case hhbc.OpThrow:
		v := b.pop()
		b.emit(&Instr{Op: ThrowC, Args: []*SSATmp{v}, Exit: b.catchExit()})
		return true, nil
	case hhbc.OpCatch, hhbc.OpFatal:
		// Catch handlers and fatals stay in the interpreter.
		b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(pc, false)})
		return true, nil

	case hhbc.OpNewArray:
		b.push(b.def(NewArr, types.ArrOfKind(types.ArrayMixed)))
	case hhbc.OpNewPackedArray:
		n := int(in.A)
		args := make([]*SSATmp, n)
		for i := n - 1; i >= 0; i-- {
			args[i] = b.pop()
		}
		b.push(b.def(NewPackedArr, types.ArrOfKind(types.ArrayPacked), args...))
	case hhbc.OpAddElemC:
		val, key, arr := b.pop(), b.pop(), b.pop()
		dst := b.out.NewTmp(types.TArr)
		inn := &Instr{Op: AddElem, Dst: dst, Args: []*SSATmp{arr, key, val}, Exit: b.catchExit()}
		dst.Def = inn
		b.emit(inn)
		b.decRef(key)
		b.push(dst)
	case hhbc.OpAddNewElemC:
		val, arr := b.pop(), b.pop()
		t := types.TArr
		if arr.Type.SubtypeOf(types.TArr) && arr.Type.IsSpecialized() {
			t = arr.Type
		}
		dst := b.out.NewTmp(t)
		inn := &Instr{Op: AddNewElem, Dst: dst, Args: []*SSATmp{arr, val}, Exit: b.catchExit()}
		dst.Def = inn
		b.emit(inn)
		b.push(dst)

	case hhbc.OpArrIdx:
		key, arr := b.pop(), b.pop()
		r := b.arrGet(arr, key)
		b.decRef(key)
		b.decRef(arr)
		b.push(r)
	case hhbc.OpArrGetL:
		key := b.pop()
		arr := b.ldLoc(b.slot(in.A))
		r := b.arrGet(arr, key)
		b.decRef(key)
		b.push(r)
	case hhbc.OpArrSetL:
		key, val := b.pop(), b.pop()
		b.emit(&Instr{Op: ArrSetLocal, I64: int64(b.slot(in.A)),
			Args: []*SSATmp{key, val}, Exit: b.catchExit()})
		b.decRef(key)
		b.setLocalType(b.slot(in.A), types.TArr)
	case hhbc.OpArrAppendL:
		val := b.pop()
		slot := b.slot(in.A)
		b.emit(&Instr{Op: ArrAppendLocal, I64: int64(slot),
			Args: []*SSATmp{val}, Exit: b.catchExit()})
		if t := b.localType(slot); !t.SubtypeOf(types.TArr) {
			b.setLocalType(slot, types.TArr)
		}
	case hhbc.OpArrUnsetL:
		key := b.pop()
		b.emit(&Instr{Op: ArrUnsetLocal, I64: int64(b.slot(in.A)), Args: []*SSATmp{key}})
		b.decRef(key)
	case hhbc.OpAKExistsL:
		key := b.pop()
		dst := b.out.NewTmp(types.TBool)
		inn := &Instr{Op: AKExistsLocal, Dst: dst, I64: int64(b.slot(in.A)), Args: []*SSATmp{key}}
		dst.Def = inn
		b.emit(inn)
		b.decRef(key)
		b.push(dst)

	case hhbc.OpIterInitL:
		slot := b.slot(in.C)
		if t := b.localType(slot); t.SubtypeOf(types.TArr) {
			b.iterKinds[int64(in.A)] = t.ArrayKind()
		}
		body := b.trampoline(pc+1, ri)
		exit := b.trampoline(int(in.B), ri)
		b.emit(&Instr{Op: IterInitLocal, I64: packIter(in.A, int32(slot)),
			Taken: body, Next: exit})
		return true, nil
	case hhbc.OpIterNext:
		body := b.trampoline(int(in.B), ri)
		exit := b.trampoline(pc+1, ri)
		b.emit(&Instr{Op: IterNextK, I64: int64(in.A), Taken: body, Next: exit})
		return true, nil
	case hhbc.OpIterKey:
		t := types.FromKind(types.KInt | types.KStr)
		if b.iterKinds[int64(in.A)] == types.ArrayPacked {
			t = types.TInt
		}
		dst := b.out.NewTmp(t)
		inn := &Instr{Op: IterKey, Dst: dst, I64: int64(in.A)}
		dst.Def = inn
		b.emit(inn)
		b.push(dst)
	case hhbc.OpIterValue:
		dst := b.out.NewTmp(types.TInitCell)
		inn := &Instr{Op: IterValue, Dst: dst, I64: int64(in.A)}
		dst.Def = inn
		b.emit(inn)
		b.push(dst)
	case hhbc.OpIterFree:
		b.emit(&Instr{Op: IterFree, I64: int64(in.A)})

	case hhbc.OpFCallD:
		return false, b.lowerCallD(in, pc)
	case hhbc.OpFCallBuiltin:
		return false, b.lowerCallBuiltin(in)
	case hhbc.OpFCallObjMethodD:
		return false, b.lowerCallMethod(in, pc)

	case hhbc.OpNewObjD:
		dst := b.out.NewTmp(types.ObjOfClass(u.Strings[in.A], true))
		inn := &Instr{Op: NewObj, Dst: dst, Str: u.Strings[in.A], Exit: b.catchExit()}
		dst.Def = inn
		b.emit(inn)
		b.push(dst)
	case hhbc.OpThis:
		// Inside an inlined method the receiver is a known SSA value;
		// otherwise load it from the frame.
		if n := len(b.inlines); n > 0 {
			this := b.inlines[n-1].ctx.This
			if this == nil {
				b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(pc, false)})
				return true, nil
			}
			b.incRef(this)
			b.push(this)
			break
		}
		t := types.TObj
		if b.curFn().Class != "" {
			t = types.ObjOfClass(b.curFn().Class, false)
		}
		v := b.def(LdThis, t)
		b.incRef(v)
		b.push(v)
	case hhbc.OpCGetPropD:
		// Snapshot the exit while obj is still on the stack, so a
		// failed shape speculation re-executes the access in the
		// interpreter (same idiom as method devirtualization).
		specExit := b.exitDesc(pc, false)
		obj := b.pop()
		b.push(b.propGet(obj, u.Strings[in.A], pc, specExit))
	case hhbc.OpSetPropD:
		specExit := b.exitDesc(pc, false)
		val, obj := b.pop(), b.pop()
		b.propSet(obj, u.Strings[in.A], val, pc, specExit)
		b.push(val)
	case hhbc.OpInstanceOfD:
		v := b.pop()
		cls := u.Strings[in.A]
		var r *SSATmp
		if c, exact := v.Type.Class(); c != "" && exact {
			// Statically decidable: fold the instanceof check.
			r = b.constBool(types.IsSubclassOf(c, cls))
		} else {
			dst := b.out.NewTmp(types.TBool)
			inn := &Instr{Op: InstanceOf, Dst: dst, Str: cls, Args: []*SSATmp{v}}
			// Bitwise instanceof: a loaded class resolves to a dense
			// ID checked with a single bit test (Figure 7).
			if rc, ok := b.env.ClassByName(cls); ok {
				inn.I64 = int64(rc.ClassID) + 1
			}
			dst.Def = inn
			b.emit(inn)
			r = dst
		}
		b.decRef(v)
		b.push(r)
	case hhbc.OpVerifyParamType:
		idx := int(in.A)
		p := b.curFn().Params[idx]
		ht := hintTypeB(p)
		slot := b.slot(in.A)
		if !b.localType(slot).SubtypeOf(ht) {
			hint := p.TypeHint
			if p.Nullable {
				hint = "?" + hint
			}
			b.emit(&Instr{Op: VerifyParam, I64: int64(slot), Str: hint,
				Exit: b.catchExit()})
		}
		nt := b.localType(slot).Intersect(ht)
		if nt.IsBottom() {
			nt = ht
		}
		b.setLocalType(slot, nt)

	case hhbc.OpPrint:
		v := b.pop()
		b.emit(&Instr{Op: PrintC, Args: []*SSATmp{v}})
		b.decRef(v)
		b.push(b.constInt(1))

	default:
		// Anything unexpected: hand the pc to the interpreter.
		b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(pc, false)})
		return true, nil
	}
	return false, nil
}

func packIter(iter, slot int32) int64 { return int64(iter)<<32 | int64(uint32(slot)) }

// UnpackIter decodes IterInitLocal's immediate.
func UnpackIter(v int64) (iter, slot int32) { return int32(v >> 32), int32(uint32(v)) }

// slot translates a bytecode local index into a frame slot, applying
// the inline-frame offset when inside inlined code.
func (b *builder) slot(a int32) int {
	if n := len(b.inlines); n > 0 {
		return b.inlines[n-1].slotBase + int(a)
	}
	return int(a)
}

// curFn is the function whose bytecode is being lowered (the callee
// inside inlined code).
func (b *builder) curFn() *hhbc.Func {
	if n := len(b.inlines); n > 0 {
		return b.inlines[n-1].callee
	}
	return b.fn
}

// storeToLocal stores v (ownership transferred) and releases the old
// value.
func (b *builder) storeToLocal(slot int, v *SSATmp) {
	oldT := b.localType(slot)
	if oldT.MaybeCounted() {
		old := b.ldLoc(slot)
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{v}})
		b.decRef(old)
	} else {
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{v}})
	}
	b.setLocalType(slot, v.Type)
}

func (b *builder) constNullOfUninit() *SSATmp {
	dst := b.out.NewTmp(types.TUninit)
	in := &Instr{Op: DefConstNull, Dst: dst, I64: 1}
	dst.Def = in
	b.emit(in)
	return dst
}

// lowerArith handles +,-,* with type specialization.
func (b *builder) lowerArith(op hhbc.Op, x, y *SSATmp) *SSATmp {
	intOp := map[hhbc.Op]Opcode{hhbc.OpAdd: AddInt, hhbc.OpSub: SubInt, hhbc.OpMul: MulInt}[op]
	dblOp := map[hhbc.Op]Opcode{hhbc.OpAdd: AddDbl, hhbc.OpSub: SubDbl, hhbc.OpMul: MulDbl}[op]
	switch {
	case x.Type.SubtypeOf(types.TInt) && y.Type.SubtypeOf(types.TInt):
		return b.def(intOp, types.TInt, x, y)
	case x.Type.SubtypeOf(types.TNum) && y.Type.SubtypeOf(types.TNum):
		return b.def(dblOp, types.TDbl, b.toDbl(x), b.toDbl(y))
	default:
		return b.generic(op, x, y)
	}
}

func (b *builder) lowerCmp(op hhbc.Op, x, y *SSATmp) *SSATmp {
	cond := map[hhbc.Op]int64{
		hhbc.OpGt: CondGT, hhbc.OpGte: CondGE, hhbc.OpLt: CondLT, hhbc.OpLte: CondLE,
	}[op]
	switch {
	case x.Type.SubtypeOf(types.TInt) && y.Type.SubtypeOf(types.TInt):
		return b.cmpI(cond, x, y)
	case x.Type.SubtypeOf(types.TNum) && y.Type.SubtypeOf(types.TNum):
		r := b.out.NewTmp(types.TBool)
		in := &Instr{Op: CmpDbl, Dst: r, I64: cond, Args: []*SSATmp{b.toDbl(x), b.toDbl(y)}}
		r.Def = in
		b.emit(in)
		return r
	case x.Type.SubtypeOf(types.TStr) && y.Type.SubtypeOf(types.TStr):
		r := b.out.NewTmp(types.TBool)
		in := &Instr{Op: CmpStr, Dst: r, I64: cond, Args: []*SSATmp{x, y}}
		r.Def = in
		b.emit(in)
		b.decRef(x)
		b.decRef(y)
		return r
	default:
		return b.generic(op, x, y)
	}
}

func (b *builder) cmpI(cond int64, x, y *SSATmp) *SSATmp {
	r := b.out.NewTmp(types.TBool)
	in := &Instr{Op: CmpInt, Dst: r, I64: cond, Args: []*SSATmp{x, y}}
	r.Def = in
	b.emit(in)
	return r
}

// generic emits the BinopGeneric helper (consumes both refs, returns
// owned result).
func (b *builder) generic(op hhbc.Op, x, y *SSATmp) *SSATmp {
	dst := b.out.NewTmp(types.TInitCell)
	in := &Instr{Op: BinopGeneric, Dst: dst, I64: int64(op),
		Args: []*SSATmp{x, y}, Exit: b.catchExit()}
	dst.Def = in
	b.emit(in)
	return dst
}

func (b *builder) toBool(v *SSATmp) *SSATmp {
	if v.Type.SubtypeOf(types.TBool) {
		return v
	}
	return b.def(ConvToBool, types.TBool, v)
}

func (b *builder) toInt(v *SSATmp) *SSATmp {
	if v.Type.SubtypeOf(types.TInt) {
		return v
	}
	return b.def(ConvToInt, types.TInt, v)
}

func (b *builder) toDbl(v *SSATmp) *SSATmp {
	if v.Type.SubtypeOf(types.TDbl) {
		return v
	}
	return b.def(ConvToDbl, types.TDbl, v)
}

// arrGet emits a specialized or generic array read; result is owned.
func (b *builder) arrGet(arr, key *SSATmp) *SSATmp {
	if arr.Type.ArrayKind() == types.ArrayPacked && key.Type.SubtypeOf(types.TInt) {
		dst := b.out.NewTmp(types.TInitCell)
		in := &Instr{Op: ArrGetPackedI, Dst: dst, Args: []*SSATmp{arr, key},
			Exit: b.catchExit()}
		dst.Def = in
		b.emit(in)
		return dst
	}
	dst := b.out.NewTmp(types.TInitCell)
	in := &Instr{Op: ArrGetGeneric, Dst: dst, Args: []*SSATmp{arr, key},
		Exit: b.catchExit()}
	dst.Def = in
	b.emit(in)
	return dst
}

// propGet lowers property reads, best speculation first: slot-direct
// when the class is statically exact; shape-guarded typed slot access
// when the site's profile is monomorphic in shape (one guard covers
// class-polymorphic receivers with identical layouts); a self-filling
// shape IC for polymorphic or unprofiled sites; the generic helper
// for megamorphic sites or with shapes disabled. Profiling
// translations record the receiver shape and keep the generic paths.
// Consumes obj's ref; result owned. specExit was snapshotted before
// the pop, so a shape-guard failure re-executes the bytecode.
func (b *builder) propGet(obj *SSATmp, name string, pc int, specExit *ExitDesc) *SSATmp {
	if b.cfg.Profiling && b.cfg.EnableShapes {
		b.emit(&Instr{Op: ProfPropShape, I64: int64(pc), Args: []*SSATmp{obj}})
	}
	if cls, exact := obj.Type.Class(); exact {
		if rc, ok := b.env.ClassByName(cls); ok {
			if slot, ok := rc.PropNames[name]; ok {
				v := b.out.NewTmp(types.TInitCell)
				in := &Instr{Op: LdPropSlot, Dst: v, I64: int64(slot), Args: []*SSATmp{obj}}
				v.Def = in
				b.emit(in)
				b.incRef(v)
				b.decRef(obj)
				return v
			}
		}
	}
	if b.shapeSpecOK(obj) {
		sp := b.sitePropShapes(pc)
		if sh := monoShape(b.env.Shapes, sp); sh != nil {
			if slot, ok := sh.Lookup(name); ok {
				b.guardShape(obj, sh, specExit)
				v := b.out.NewTmp(types.FromKind(sh.SlotKind(slot)))
				in := &Instr{Op: LdPropSlot, Dst: v, I64: int64(slot), Args: []*SSATmp{obj}}
				v.Def = in
				b.emit(in)
				b.incRef(v)
				b.decRef(obj)
				return v
			}
		}
		if !megamorphic(sp) {
			dst := b.out.NewTmp(types.TInitCell)
			in := &Instr{Op: LdPropIC, Dst: dst, Str: name, Args: []*SSATmp{obj},
				Exit: b.catchExit()}
			dst.Def = in
			b.emit(in)
			b.decRef(obj)
			return dst
		}
	}
	dst := b.out.NewTmp(types.TInitCell)
	in := &Instr{Op: LdPropGeneric, Dst: dst, Str: name, Args: []*SSATmp{obj},
		Exit: b.catchExit()}
	dst.Def = in
	b.emit(in)
	b.decRef(obj)
	return dst
}

// propSet stores a property; the stack keeps one reference to val, so
// an extra IncRef feeds the property slot. Speculation ladder mirrors
// propGet, with one extra constraint on the guarded path: the store
// must not change the shape (slot exists with the same kind), since
// StPropSlot after GuardShape assumes the layout is stable.
func (b *builder) propSet(obj *SSATmp, name string, val *SSATmp, pc int, specExit *ExitDesc) {
	if b.cfg.Profiling && b.cfg.EnableShapes {
		b.emit(&Instr{Op: ProfPropShape, I64: int64(pc), Args: []*SSATmp{obj}})
	}
	b.incRef(val)
	if cls, exact := obj.Type.Class(); exact {
		if rc, ok := b.env.ClassByName(cls); ok {
			if slot, ok := rc.PropNames[name]; ok {
				b.emit(&Instr{Op: StPropSlot, I64: int64(slot), Args: []*SSATmp{obj, val}})
				b.decRef(obj)
				return
			}
		}
	}
	if b.shapeSpecOK(obj) {
		sp := b.sitePropShapes(pc)
		if sh := monoShape(b.env.Shapes, sp); sh != nil {
			if slot, ok := sh.Lookup(name); ok && val.Type.SubtypeOf(types.FromKind(sh.SlotKind(slot))) {
				b.guardShape(obj, sh, specExit)
				b.emit(&Instr{Op: StPropSlot, I64: int64(slot), Args: []*SSATmp{obj, val}})
				b.decRef(obj)
				return
			}
		}
		if !megamorphic(sp) {
			b.emit(&Instr{Op: StPropIC, Str: name, Args: []*SSATmp{obj, val},
				Exit: b.catchExit()})
			b.decRef(obj)
			return
		}
	}
	b.emit(&Instr{Op: StPropGeneric, Str: name, Args: []*SSATmp{obj, val},
		Exit: b.catchExit()})
	b.decRef(obj)
}

// shapeSpecOK gates shape-based speculation: shapes enabled, not a
// profiling translation, and the receiver statically known to be an
// object (non-objects must reach the generic helper's error path).
func (b *builder) shapeSpecOK(obj *SSATmp) bool {
	return b.cfg.EnableShapes && !b.cfg.Profiling && obj.Type.SubtypeOf(types.TObj)
}

// sitePropShapes returns the profiled shape histogram for a bytecode
// site, nil when unprofiled.
func (b *builder) sitePropShapes(pc int) *profile.ShapeProfile {
	if b.cfg.Counters == nil {
		return nil
	}
	return b.cfg.Counters.PropShapes(profile.CallSite{FuncID: b.curFn().ID, PC: pc})
}

// monoShape returns the site's single observed shape when the profile
// is warm and strictly monomorphic, nil otherwise.
func monoShape(tree *shapes.Tree, sp *profile.ShapeProfile) *shapes.Shape {
	if tree == nil || sp == nil || sp.Total < profile.ShapeWarmMin || len(sp.Shapes) != 1 {
		return nil
	}
	return tree.ByID(sp.Shapes[0].Shape)
}

// megamorphic reports a site profiled with more shapes than a
// polymorphic inline cache holds.
func megamorphic(sp *profile.ShapeProfile) bool {
	return sp != nil && len(sp.Shapes) > icCapacity
}

// icCapacity is the polymorphic inline cache size: sites observed
// with more shapes go straight to the generic helper instead of
// thrashing the cache.
const icCapacity = 4

func (b *builder) guardShape(obj *SSATmp, sh *shapes.Shape, specExit *ExitDesc) {
	b.emit(&Instr{Op: GuardShape, I64: int64(sh.ID), Args: []*SSATmp{obj},
		Exit: specExit})
}

// trampoline makes a block that transfers control to pc (chain jump
// or region exit), capturing the current stack.
func (b *builder) trampoline(pc int, ri int) *Block {
	saveCur, saveStack := b.cur, b.stack
	tb := b.out.NewBlock(pc)
	tb.Weight = saveCur.Weight
	b.cur = tb
	b.stack = append([]*SSATmp(nil), saveStack...)
	b.jumpToPC(pc, ri)
	b.cur, b.stack = saveCur, saveStack
	return tb
}

// lowerIncDec handles IncDecL with specialization; returns done=true
// when it had to bail to the interpreter.
func (b *builder) lowerIncDec(in hhbc.Instr) bool {
	slot := b.slot(in.A)
	t := b.localType(slot)
	inc := in.B == hhbc.PreInc || in.B == hhbc.PostInc
	post := in.B == hhbc.PostInc || in.B == hhbc.PostDec
	switch {
	case t.SubtypeOf(types.TInt):
		old := b.ldLoc(slot)
		one := b.constInt(1)
		op := AddInt
		if !inc {
			op = SubInt
		}
		nv := b.def(op, types.TInt, old, one)
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{nv}})
		if post {
			b.push(old)
		} else {
			b.push(nv)
		}
		b.setLocalType(slot, types.TInt)
	case t.SubtypeOf(types.TDbl):
		old := b.ldLoc(slot)
		one := b.constDbl(1)
		op := AddDbl
		if !inc {
			op = SubDbl
		}
		nv := b.def(op, types.TDbl, old, one)
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{nv}})
		if post {
			b.push(old)
		} else {
			b.push(nv)
		}
		b.setLocalType(slot, types.TDbl)
	case t.SubtypeOf(types.TNull) || t.SubtypeOf(types.TUninit):
		var nv *SSATmp
		if inc {
			nv = b.constInt(1)
		} else {
			nv = b.constNull()
		}
		b.emit(&Instr{Op: StLoc, I64: int64(slot), Args: []*SSATmp{nv}})
		if post {
			b.push(b.constNull())
		} else {
			b.push(nv)
		}
		b.setLocalType(slot, nv.Type)
	default:
		b.emit(&Instr{Op: SideExit, Exit: b.exitDesc(b.bcPC, false)})
		return true
	}
	return false
}

func hintTypeB(p hhbc.Param) types.Type {
	var t types.Type
	switch p.TypeHint {
	case "int":
		t = types.TInt
	case "float":
		t = types.TDbl
	case "string":
		t = types.TStr
	case "bool":
		t = types.TBool
	case "array":
		t = types.TArr
	case "":
		return types.TCell
	default:
		t = types.ObjOfClass(p.TypeHint, false)
	}
	if p.Nullable {
		t = t.Union(types.TNull)
	}
	return t
}
