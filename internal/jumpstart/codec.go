package jumpstart

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Wire layout:
//
//	"HHJS"            4-byte magic
//	version           1 byte (FormatVersion)
//	crc32(payload)    4 bytes little-endian, IEEE polynomial
//	payload           varint-encoded snapshot body
//
// The version byte is part of the header, not the payload, so an
// incompatible future format is rejected before any payload parsing.
// The checksum covers the whole payload; truncated or corrupted files
// fail loudly instead of seeding a server with garbage counts.

const snapMagic = "HHJS"

// FormatVersion is the current snapshot wire version. Bump it on any
// incompatible change to the payload layout; decoders reject other
// versions (snapshot files are cheap to regenerate — there is no
// cross-version migration).
const FormatVersion = 1

// ErrChecksum reports payload corruption.
var ErrChecksum = errors.New("jumpstart: snapshot checksum mismatch")

// ErrVersion reports an unsupported format version.
var ErrVersion = errors.New("jumpstart: unsupported snapshot version")

// ErrMagic reports a file that is not a snapshot at all.
var ErrMagic = errors.New("jumpstart: bad snapshot magic")

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) i64(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) b(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

func (e *encoder) typeRepr(t TypeRepr) {
	e.u64(uint64(t.Kind))
	e.u64(uint64(t.ArrKind))
	e.str(t.Class)
	e.b(t.Exact)
}

// Encode serializes s (canonicalized first, so structurally equal
// snapshots produce byte-identical files).
func Encode(s *Snapshot) []byte {
	s = Canonicalize(s)
	var e encoder
	e.u64(uint64(len(s.Funcs)))
	for i := range s.Funcs {
		fp := &s.Funcs[i]
		e.str(fp.Name)
		e.u64(fp.Hash)
		e.u64(uint64(len(fp.Trans)))
		for _, tr := range fp.Trans {
			e.u64(uint64(tr.PC))
			e.u64(uint64(tr.EntryDepth))
			e.u64(uint64(len(tr.EntryStackTypes)))
			for _, t := range tr.EntryStackTypes {
				e.typeRepr(t)
			}
			e.u64(uint64(len(tr.Guards)))
			for _, g := range tr.Guards {
				e.b(g.Stack)
				e.u64(uint64(g.Slot))
				e.typeRepr(g.Type)
			}
			e.u64(tr.Count)
		}
		e.u64(uint64(len(fp.Arcs)))
		for _, a := range fp.Arcs {
			e.u64(uint64(a.From))
			e.u64(uint64(a.To))
			e.u64(a.Weight)
		}
		e.u64(uint64(len(fp.CallTargets)))
		for _, ct := range fp.CallTargets {
			e.u64(uint64(ct.PC))
			e.str(ct.Class)
			e.u64(ct.Count)
		}
	}
	e.u64(uint64(len(s.CallGraph)))
	for _, ce := range s.CallGraph {
		e.u64(uint64(ce.Caller))
		e.u64(uint64(ce.Callee))
		e.u64(ce.Weight)
	}

	payload := e.buf.Bytes()
	out := make([]byte, 0, len(snapMagic)+5+len(payload))
	out = append(out, snapMagic...)
	out = append(out, FormatVersion)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out = append(out, crc[:]...)
	out = append(out, payload...)
	return out
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New("jumpstart: " + msg)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.pos += n
	return v
}

// count reads a length prefix, rejecting values that could not
// possibly fit in the remaining payload (defends against decoding
// garbage into a huge allocation).
func (d *decoder) count() int {
	v := d.u64()
	if d.err == nil && v > uint64(len(d.data)-d.pos)+1 {
		d.fail("implausible length prefix")
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := int(d.u64())
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) || n < 0 {
		d.fail("truncated string")
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) b() bool {
	if d.err != nil || d.pos >= len(d.data) {
		d.fail("truncated bool")
		return false
	}
	v := d.data[d.pos] != 0
	d.pos++
	return v
}

func (d *decoder) typeRepr() TypeRepr {
	return TypeRepr{
		Kind:    uint16(d.u64()),
		ArrKind: uint8(d.u64()),
		Class:   d.str(),
		Exact:   d.b(),
	}
}

// Decode parses and validates a serialized snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+5 {
		return nil, fmt.Errorf("%w: file too short (%d bytes)", ErrMagic, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, ErrMagic
	}
	if v := data[len(snapMagic)]; v != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, FormatVersion)
	}
	want := binary.LittleEndian.Uint32(data[len(snapMagic)+1:])
	payload := data[len(snapMagic)+5:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrChecksum
	}

	d := &decoder{data: payload}
	s := &Snapshot{}
	nf := d.count()
	for i := 0; i < nf && d.err == nil; i++ {
		fp := FuncProfile{Name: d.str(), Hash: d.u64()}
		nt := d.count()
		for j := 0; j < nt && d.err == nil; j++ {
			tr := TransProfile{PC: int(d.u64()), EntryDepth: int(d.u64())}
			for n := d.count(); n > 0 && d.err == nil; n-- {
				tr.EntryStackTypes = append(tr.EntryStackTypes, d.typeRepr())
			}
			for n := d.count(); n > 0 && d.err == nil; n-- {
				tr.Guards = append(tr.Guards, GuardRepr{
					Stack: d.b(), Slot: int(d.u64()), Type: d.typeRepr(),
				})
			}
			tr.Count = d.u64()
			fp.Trans = append(fp.Trans, tr)
		}
		for n := d.count(); n > 0 && d.err == nil; n-- {
			a := ArcWeight{From: int(d.u64()), To: int(d.u64()), Weight: d.u64()}
			fp.Arcs = append(fp.Arcs, a)
		}
		for n := d.count(); n > 0 && d.err == nil; n-- {
			ct := CallTarget{PC: int(d.u64()), Class: d.str(), Count: d.u64()}
			fp.CallTargets = append(fp.CallTargets, ct)
		}
		s.Funcs = append(s.Funcs, fp)
	}
	for n := d.count(); n > 0 && d.err == nil; n-- {
		ce := CallEdge{Caller: int(d.u64()), Callee: int(d.u64()), Weight: d.u64()}
		s.CallGraph = append(s.CallGraph, ce)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(payload) {
		return nil, errors.New("jumpstart: trailing bytes after snapshot payload")
	}
	// Arc and call-graph indices must be in range; a checksum-valid
	// but index-invalid snapshot is still rejected.
	for i := range s.Funcs {
		for _, a := range s.Funcs[i].Arcs {
			if a.From < 0 || a.From >= len(s.Funcs[i].Trans) ||
				a.To < 0 || a.To >= len(s.Funcs[i].Trans) {
				return nil, fmt.Errorf("jumpstart: arc index out of range in %s", s.Funcs[i].Name)
			}
		}
	}
	for _, ce := range s.CallGraph {
		if ce.Caller < 0 || ce.Caller >= len(s.Funcs) || ce.Callee < 0 || ce.Callee >= len(s.Funcs) {
			return nil, errors.New("jumpstart: call-graph index out of range")
		}
	}
	return s, nil
}

// Save writes a snapshot file atomically (write temp, rename).
func Save(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, Encode(s), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
