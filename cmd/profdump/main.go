// Command profdump inspects, diffs, and merges jumpstart profile
// snapshots (the files written by hhvm -prof-dump and consumed by
// hhvm -prof-load).
//
// Usage:
//
//	profdump inspect file
//	profdump diff a b
//	profdump merge -o out [-decay d] [-verify] file...
//
// merge aggregates fleet snapshots with exponential decay: with files
// oldest first, file i of n gets weight d^(n-1-i), so the newest
// snapshot has weight 1 and history fades at rate d (default 1 = an
// unweighted sum).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/jumpstart"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		if len(os.Args) != 3 {
			usage()
		}
		inspect(os.Args[2])
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		diff(os.Args[2], os.Args[3])
	case "merge":
		merge(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  profdump inspect file
  profdump diff a b
  profdump merge -o out [-decay d] [-verify] file...`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profdump:", err)
	os.Exit(1)
}

func load(path string) *jumpstart.Snapshot {
	s, err := jumpstart.Load(path)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return s
}

func inspect(path string) {
	s := load(path)
	var trans, arcs, targets int
	var total uint64
	for _, f := range s.Funcs {
		trans += len(f.Trans)
		arcs += len(f.Arcs)
		targets += len(f.CallTargets)
		total += f.TotalCount()
	}
	fmt.Printf("format version: %d\n", jumpstart.FormatVersion)
	fmt.Printf("functions:      %d\n", len(s.Funcs))
	fmt.Printf("translations:   %d\n", trans)
	fmt.Printf("arcs:           %d\n", arcs)
	fmt.Printf("call targets:   %d\n", targets)
	fmt.Printf("call edges:     %d\n", len(s.CallGraph))
	fmt.Printf("total count:    %d\n", total)

	type hot struct {
		name  string
		count uint64
	}
	hots := make([]hot, 0, len(s.Funcs))
	for _, f := range s.Funcs {
		hots = append(hots, hot{f.Name, f.TotalCount()})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].name < hots[j].name
	})
	if len(hots) > 10 {
		hots = hots[:10]
	}
	fmt.Printf("\nhottest functions:\n")
	for _, h := range hots {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(h.count) / float64(total)
		}
		fmt.Printf("  %12d (%5.1f%%)  %s\n", h.count, pct, h.name)
	}
}

func diff(pathA, pathB string) {
	a, b := load(pathA), load(pathB)
	type fn struct {
		hash  uint64
		count uint64
	}
	index := func(s *jumpstart.Snapshot) map[string]fn {
		m := make(map[string]fn, len(s.Funcs))
		for _, f := range s.Funcs {
			m[f.Name] = fn{f.Hash, f.TotalCount()}
		}
		return m
	}
	am, bm := index(a), index(b)
	names := make([]string, 0, len(am)+len(bm))
	for n := range am {
		names = append(names, n)
	}
	for n := range bm {
		if _, ok := am[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var onlyA, onlyB, changed, same int
	for _, n := range names {
		fa, inA := am[n]
		fb, inB := bm[n]
		switch {
		case !inB:
			onlyA++
			fmt.Printf("- %s (only in %s, count=%d)\n", n, pathA, fa.count)
		case !inA:
			onlyB++
			fmt.Printf("+ %s (only in %s, count=%d)\n", n, pathB, fb.count)
		case fa.hash != fb.hash:
			changed++
			fmt.Printf("! %s (bytecode changed, count %d -> %d)\n", n, fa.count, fb.count)
		default:
			same++
			if fa.count != fb.count {
				fmt.Printf("  %s count %d -> %d (%+d)\n", n, fa.count, fb.count,
					int64(fb.count)-int64(fa.count))
			}
		}
	}
	fmt.Printf("\n%d only in %s, %d only in %s, %d bytecode-changed, %d shared\n",
		onlyA, pathA, onlyB, pathB, changed, same)
}

func merge(argv []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "output snapshot file (required)")
	decay := fs.Float64("decay", 1.0, "per-generation weight decay, newest file last")
	verify := fs.Bool("verify", false, "re-merge the inputs in reverse order and fail unless the aggregates are bit-identical")
	if err := fs.Parse(argv); err != nil {
		usage()
	}
	files := fs.Args()
	if *out == "" || len(files) == 0 {
		usage()
	}
	if *decay <= 0 || *decay > 1 {
		fatal(fmt.Errorf("decay must be in (0, 1], got %g", *decay))
	}
	snaps := make([]*jumpstart.Snapshot, len(files))
	weights := make([]float64, len(files))
	for i, f := range files {
		snaps[i] = load(f)
		weights[i] = math.Pow(*decay, float64(len(files)-1-i))
	}
	merged := jumpstart.Merge(snaps, weights)
	if *verify {
		// The aggregator contract: merge order must not matter. Replay
		// the same merge with the file list (and weights) reversed and
		// require the canonical encodings to match bit for bit.
		rs := make([]*jumpstart.Snapshot, len(snaps))
		rw := make([]float64, len(weights))
		for i := range snaps {
			rs[i] = snaps[len(snaps)-1-i]
			rw[i] = weights[len(weights)-1-i]
		}
		if !bytes.Equal(jumpstart.Encode(merged), jumpstart.Encode(jumpstart.Merge(rs, rw))) {
			fatal(fmt.Errorf("merge is order-dependent: reversed input order produced a different aggregate"))
		}
		fmt.Println("verify: merge order-independent")
	}
	if err := jumpstart.Save(*out, merged); err != nil {
		fatal(err)
	}
	var trans int
	for _, f := range merged.Funcs {
		trans += len(f.Trans)
	}
	fmt.Printf("merged %d snapshots -> %s (%d funcs, %d translations)\n",
		len(files), *out, len(merged.Funcs), trans)
}
