package machine

// Fast dispatch (PR 8). The classic exec loop pays, per vasm
// instruction, a fetch-model probe, an opCost call, a ChargeOp, and a
// giant switch. The fast path prepared here charges static cycles
// once per straight-line run via prefix sums, probes the fetch model
// only at icache-line boundaries and control transfers, and executes
// the superinstructions minted by vasm.Fuse. A precomputed handler
// table (Deegen-style) for the hottest opcodes is available behind
// SetHandlerTable as an alternative to the switch. Guest-visible
// behavior — every output and every meter cycle — is bit-identical to
// the classic path:
//
//   - Same-line fetches return 0 without touching FetchModel state,
//     so skipping them is invisible. A straight-line successor is on
//     the same line as its stream predecessor exactly when
//     FetchHead is false — computed from the same addresses the
//     classic path fetches. Control transfers always probe, and
//     Fetch itself short-circuits on lastLine, so over-probing at a
//     transfer that lands on the current line is also invisible.
//   - Static costs are charged when the run settles (at transfers,
//     exits, throws, faults, and returns) instead of before each
//     instruction. Nothing observes Meter.Cycles between those
//     points: guest calls and helpers nest their own attribution
//     windows strictly inside the pending run's window, so totals
//     and per-window attributions are unchanged.

import (
	"repro/internal/mcode"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vasm"
)

// PrepareDispatch computes the dispatch metadata of placed code and
// marks it for the fast path. Must run after Code.Place (addresses
// are line-relative to the base).
func PrepareDispatch(code *mcode.Code) {
	n := len(code.Instrs)
	prefix := make([]uint64, n+1)
	flags := make([]uint8, n)
	var tails [][]uint64
	prevLine := ^uint64(0) // sentinel: instruction 0 counts as a head
	for i := 0; i < n; i++ {
		in := &code.Instrs[i]
		prefix[i+1] = prefix[i] + instrCost(in)
		addr := code.AddrOf(i)
		comps := mcode.ComponentSizes(in)
		for ci, sz := range comps {
			line := addr >> iCacheLineBits
			if line != prevLine {
				if ci == 0 {
					flags[i] |= mcode.FlagFetchHead
				} else {
					if tails == nil {
						tails = make([][]uint64, n)
					}
					tails[i] = append(tails[i], addr)
					flags[i] |= mcode.FlagFetchTails
				}
				prevLine = line
			}
			addr += sz
		}
	}
	code.CostPrefix = prefix
	code.DispatchFlags = flags
	code.FetchTails = tails
	code.FastDispatch = true
}

// hotHandler executes one simple (non-branching, non-throwing)
// instruction. Indexed by Op in a 256-slot table so the uint8 index
// needs no bounds check on the hot path.
type hotHandler func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr)

var hotHandlers [256]hotHandler

// useHandlerTable routes the fast path's simple opcodes through the
// handler table instead of the exec switch. Measured on this host the
// compiled jump-table switch beats the indirect handler calls by
// ~10% (see EXPERIMENTS.md), so the table is off by default and kept
// as an A/B lever for hosts where indirect dispatch wins.
var useHandlerTable bool

// SetHandlerTable toggles handler-table dispatch. Toggle only while
// no translations are executing (it is read unsynchronized on the
// dispatch hot path); both settings produce bit-identical guest
// behavior.
func SetHandlerTable(on bool) { useHandlerTable = on }

func init() {
	h := map[vasm.Op]hotHandler{
		vasm.LdImm: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			m.setImm(act, in.D, code.Imms[in.I64])
		},
		vasm.Copy: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, act.get(in.A))
		},
		vasm.LdLoc: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			v := act.fr.Locals[in.I64]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			act.set(in.D, v)
		},
		vasm.StLoc: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.fr.Locals[in.I64] = act.get(in.A)
		},
		vasm.Spill: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.spills[in.I64] = act.get(in.A)
		},
		vasm.Reload: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, act.spills[in.I64])
		},
		vasm.AddI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(act.get(in.A).I+act.get(in.B).I))
		},
		vasm.SubI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(act.get(in.A).I-act.get(in.B).I))
		},
		vasm.MulI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(act.get(in.A).I*act.get(in.B).I))
		},
		vasm.NegI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(-act.get(in.A).I))
		},
		vasm.AddD: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Dbl(act.get(in.A).D+act.get(in.B).D))
		},
		vasm.SubD: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Dbl(act.get(in.A).D-act.get(in.B).D))
		},
		vasm.MulD: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Dbl(act.get(in.A).D*act.get(in.B).D))
		},
		vasm.NegD: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Dbl(-act.get(in.A).D))
		},
		vasm.CmpI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Bool(cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)))
		},
		vasm.CmpD: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Bool(cmpD(in.I64&0xff, act.get(in.A).D, act.get(in.B).D)))
		},
		vasm.ToBool: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Bool(act.get(in.A).Bool()))
		},
		vasm.ToInt: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(act.get(in.A).ToInt()))
		},
		vasm.ToDbl: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Dbl(act.get(in.A).ToDbl()))
		},
		vasm.IncRef: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			m.Env.Heap.IncRef(act.get(in.A))
		},
		vasm.DecRef: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			m.Env.Heap.DecRef(act.get(in.A))
		},
		vasm.ArrCount: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, runtime.Int(int64(act.get(in.A).A.Len())))
		},
		vasm.LdProp: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.set(in.D, act.get(in.A).O.GetPropSlot(int(in.I64)))
		},
		vasm.StProp: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			act.get(in.A).O.SetPropSlot(m.Env.Heap, int(in.I64), act.get(in.B))
		},
		// Non-branching superinstructions.
		vasm.LdImmAddI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			m.setImm(act, vasm.Reg(in.Target2), code.Imms[in.I64>>16])
			act.set(in.D, runtime.Int(act.get(in.A).I+act.get(in.B).I))
		},
		vasm.LdImmCmpI: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			m.setImm(act, vasm.Reg(in.Target2), code.Imms[in.I64>>16])
			act.set(in.D, runtime.Bool(cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)))
		},
		vasm.IncRefN: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			h := m.Env.Heap
			for _, r := range in.Args {
				h.IncRef(act.get(r))
			}
		},
		vasm.DecRefN: func(m *Machine, code *mcode.Code, act *activation, in *vasm.Instr) {
			h := m.Env.Heap
			for _, r := range in.Args {
				h.DecRef(act.get(r))
			}
		},
	}
	for op, fn := range h {
		hotHandlers[op] = fn
	}
}
