package jumpstart

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Property tests for the aggregator's contract: Merge must be
// order-independent (commutative over its input list, with weights
// permuted alongside) and, at unit weights, associative — so a
// central service folding N host snapshots in any grouping or
// arrival order produces bit-identical aggregates.

// randSnapshot builds a pseudo-random but deterministic snapshot:
// a handful of functions drawn from a small identity pool (so
// distinct snapshots overlap, exercising the cross-snapshot summing
// path), each with translations, arcs, call targets, and call-graph
// edges.
func randSnapshot(rng *rand.Rand) *Snapshot {
	s := &Snapshot{}
	nFuncs := 1 + rng.Intn(4)
	for f := 0; f < nFuncs; f++ {
		fp := FuncProfile{
			Name: fmt.Sprintf("fn%d", rng.Intn(5)),
			Hash: uint64(1 + rng.Intn(3)),
		}
		nTrans := 1 + rng.Intn(4)
		for t := 0; t < nTrans; t++ {
			tr := TransProfile{
				PC:         rng.Intn(6),
				EntryDepth: rng.Intn(2),
				Count:      uint64(rng.Intn(10_000)),
			}
			for d := 0; d < tr.EntryDepth; d++ {
				tr.EntryStackTypes = append(tr.EntryStackTypes, TypeRepr{Kind: uint16(rng.Intn(4))})
			}
			if rng.Intn(2) == 0 {
				tr.Guards = append(tr.Guards, GuardRepr{
					Stack: rng.Intn(2) == 0,
					Slot:  rng.Intn(3),
					Type:  TypeRepr{Kind: uint16(rng.Intn(4)), Exact: rng.Intn(2) == 0},
				})
			}
			fp.Trans = append(fp.Trans, tr)
		}
		for a := 0; a < rng.Intn(3); a++ {
			fp.Arcs = append(fp.Arcs, ArcWeight{
				From:   rng.Intn(len(fp.Trans)),
				To:     rng.Intn(len(fp.Trans)),
				Weight: uint64(rng.Intn(500)),
			})
		}
		if rng.Intn(2) == 0 {
			fp.CallTargets = append(fp.CallTargets, CallTarget{
				PC:    rng.Intn(6),
				Class: fmt.Sprintf("C%d", rng.Intn(3)),
				Count: uint64(rng.Intn(300)),
			})
		}
		s.Funcs = append(s.Funcs, fp)
	}
	for e := 0; e < rng.Intn(3); e++ {
		s.CallGraph = append(s.CallGraph, CallEdge{
			Caller: rng.Intn(len(s.Funcs)),
			Callee: rng.Intn(len(s.Funcs)),
			Weight: uint64(rng.Intn(400)),
		})
	}
	return s
}

// TestMergePermutationInvariant merges N snapshots with decay-style
// weights under many random permutations (weights permuted with their
// snapshots) and requires the canonical encoding to be bit-identical
// every time.
func TestMergePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4) // N > 2: the aggregator folds whole rounds
		snaps := make([]*Snapshot, n)
		weights := make([]float64, n)
		for i := range snaps {
			snaps[i] = randSnapshot(rng)
			weights[i] = []float64{1, 0.9, 0.5, 0.25}[rng.Intn(4)]
		}
		want := Encode(Merge(snaps, weights))
		for p := 0; p < 6; p++ {
			perm := rng.Perm(n)
			ps := make([]*Snapshot, n)
			pw := make([]float64, n)
			for i, j := range perm {
				ps[i] = snaps[j]
				pw[i] = weights[j]
			}
			got := Encode(Merge(ps, pw))
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d perm %v: merge not order-independent", trial, perm)
			}
		}
	}
}

// TestMergeAssociativeUnitWeights checks that at unit weights (no
// decay rounding in play) grouping doesn't matter:
// merge(merge(a,b),c) == merge(a,merge(b,c)) == merge(a,b,c).
func TestMergeAssociativeUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a, b, c := randSnapshot(rng), randSnapshot(rng), randSnapshot(rng)
		flat := Encode(Merge([]*Snapshot{a, b, c}, nil))
		left := Encode(Merge([]*Snapshot{Merge([]*Snapshot{a, b}, nil), c}, nil))
		right := Encode(Merge([]*Snapshot{a, Merge([]*Snapshot{b, c}, nil)}, nil))
		if !bytes.Equal(flat, left) || !bytes.Equal(flat, right) {
			t.Fatalf("trial %d: unit-weight merge not associative", trial)
		}
	}
}

// TestMergeManySnapshotsMatchesPairwise replays the aggregator's
// usage on the profdump side: one variadic N-way merge equals folding
// the same snapshots in pairwise (left-associated) order at unit
// weights.
func TestMergeManySnapshotsMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	snaps := make([]*Snapshot, 6)
	for i := range snaps {
		snaps[i] = randSnapshot(rng)
	}
	nway := Encode(Merge(snaps, nil))
	acc := snaps[0]
	for _, s := range snaps[1:] {
		acc = Merge([]*Snapshot{acc, s}, nil)
	}
	if !bytes.Equal(nway, Encode(acc)) {
		t.Fatal("6-way merge differs from pairwise fold")
	}
}
