// Command bench runs the paper's evaluation experiments and prints
// the corresponding figure's rows or series.
//
// Usage:
//
//	bench -exp fig8|fig9|fig10|fig11|jumpstart|scale|host|chain|shapes|faults|verify|fleet|all
//	      [-quick] [-no-shapes] [-workers N] [-json path] [-cpuprofile path] [-memprofile path]
//
// -exp also accepts a comma-separated list (e.g. -exp scale,host).
// With -json, the rows of the machine-readable experiments (fig8,
// scale, host, chain, shapes, faults, and fleet) are also written to the
// given path as a JSON document, so CI can archive guest-cycles/req
// plus wall-clock host timings, smashed-vs-dispatched bind counts,
// fault-containment counters, and the fleet scenarios'
// warmup/capacity/shedding metrics across runs. -cpuprofile and
// -memprofile write pprof profiles of whatever experiments ran —
// the supported way to see where the simulated machine actually
// spends host time (go tool pprof).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/perflab"
	"repro/internal/server"
)

// jsonReport is the -json output document. Only the experiments that
// actually ran appear; the rest stay null.
type jsonReport struct {
	Fig8   []experiments.Fig8Row             `json:"fig8,omitempty"`
	Scale  []experiments.ScalingRow          `json:"scale,omitempty"`
	Host   *experiments.HostThroughputResult `json:"host,omitempty"`
	Chain  []experiments.ChainRow            `json:"chain,omitempty"`
	Shapes *experiments.ShapesResult         `json:"shapes,omitempty"`
	Faults *experiments.FaultsResult         `json:"faults,omitempty"`
	Fleet  *experiments.FleetResult          `json:"fleet,omitempty"`
	Verify *experiments.VerifyResult         `json:"verify,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment (or comma-separated list): fig8, fig9, fig10, fig11, jumpstart, scale, host, chain, shapes, faults, verify, fleet, all")
	quick := flag.Bool("quick", false, "reduced warmup/measurement volume")
	noShapes := flag.Bool("no-shapes", false, "disable typed object shapes in every experiment config")
	workers := flag.Int("workers", 4, "worker count for the scale experiment (compared against 1)")
	jsonPath := flag.String("json", "", "also write machine-readable results (fig8, scale, host, chain, faults, fleet) to this path")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the faults experiment")
	faultRate := flag.Float64("fault-rate", 0.01, "per-draw injection probability for the faults experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file after the experiments")
	flag.Parse()

	pc := experiments.Full
	if *quick {
		pc = experiments.Quick
	}
	experiments.NoShapes = *noShapes

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			os.Exit(1)
		}
	}()

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	var report jsonReport

	run := func(name string, f func(perflab.Config) error) {
		if !selected["all"] && !selected[name] {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := f(pc); err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig8", func(pc perflab.Config) error {
		rows, err := experiments.Fig8(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig8(os.Stdout, rows)
		report.Fig8 = rows
		return nil
	})
	run("fig9", func(perflab.Config) error {
		res, err := experiments.Fig9()
		if err != nil {
			return err
		}
		server.Report(os.Stdout, res)
		return nil
	})
	run("jumpstart", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 20
			cfg.CyclesPerMinute = 1_200_000
		}
		c, err := experiments.Jumpstart(cfg)
		if err != nil {
			return err
		}
		experiments.ReportJumpstart(os.Stdout, c)
		return nil
	})
	run("scale", func(perflab.Config) error {
		cfg := server.DefaultConfig()
		if *quick {
			cfg.Minutes = 12
			cfg.CyclesPerMinute = 1_200_000
		}
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		rows, err := experiments.Scaling(cfg, counts)
		if err != nil {
			return err
		}
		experiments.ReportScaling(os.Stdout, rows)
		report.Scale = rows
		return nil
	})
	run("host", func(pc perflab.Config) error {
		res, err := experiments.HostThroughput(pc)
		if err != nil {
			return err
		}
		experiments.ReportHostThroughput(os.Stdout, res)
		report.Host = res
		// Regression gate: fused dispatch must never cost more than
		// 10% over classic dispatch on the same host (it should be
		// strictly faster; the slack absorbs shared-runner noise).
		if res.FusedNsPerReq > 1.10*res.UnfusedNsPerReq {
			return fmt.Errorf("fused dispatch regressed: %.0f ns/req vs %.0f unfused (>10%% budget)",
				res.FusedNsPerReq, res.UnfusedNsPerReq)
		}
		return nil
	})
	run("chain", func(pc perflab.Config) error {
		rows, err := experiments.Chain(pc)
		if err != nil {
			return err
		}
		experiments.ReportChain(os.Stdout, rows)
		report.Chain = rows
		return nil
	})
	run("shapes", func(pc perflab.Config) error {
		res, err := experiments.Shapes(pc)
		if err != nil {
			return err
		}
		experiments.ReportShapes(os.Stdout, res)
		report.Shapes = res
		return res.GateErr()
	})
	run("faults", func(pc perflab.Config) error {
		res, err := experiments.Faults(pc, *faultSeed, *faultRate)
		if err != nil {
			return err
		}
		experiments.ReportFaults(os.Stdout, res)
		report.Faults = res
		if !res.OutputsMatch {
			return fmt.Errorf("faulty outputs diverged from JIT-disabled reference")
		}
		if res.SlowdownPct > 25 {
			return fmt.Errorf("faulty run %.1f%% slower than baseline (budget 25%%)", res.SlowdownPct)
		}
		return nil
	})
	run("verify", func(pc perflab.Config) error {
		res, err := experiments.Verify(pc, *faultSeed)
		if err != nil {
			return err
		}
		experiments.ReportVerify(os.Stdout, res)
		report.Verify = res
		return res.GateErr()
	})
	run("fleet", func(perflab.Config) error {
		res, err := experiments.Fleet(*quick)
		if err != nil {
			return err
		}
		experiments.ReportFleet(os.Stdout, res)
		report.Fleet = res
		return res.Check()
	})
	run("fig10", func(pc perflab.Config) error {
		rows, err := experiments.Fig10(pc)
		if err != nil {
			return err
		}
		experiments.ReportFig10(os.Stdout, rows)
		return nil
	})
	run("fig11", func(pc perflab.Config) error {
		rows, err := experiments.Fig11(pc, nil)
		if err != nil {
			return err
		}
		experiments.ReportFig11(os.Stdout, rows)
		return nil
	})

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: marshal json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}
