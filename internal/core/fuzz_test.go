package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
)

// progGen generates random (but deterministic per seed) PHP-subset
// programs exercising arithmetic, strings, arrays, branches, loops,
// and calls. The differential fuzz test runs each program in
// interpreter and region-JIT modes and requires identical output —
// through the profiling → optimized transition.
type progGen struct {
	r    *rand.Rand
	vars []string
	sb   strings.Builder
	fns  int
}

func newProgGen(seed int64) *progGen {
	return &progGen{r: rand.New(rand.NewSource(seed))}
}

func (g *progGen) pickVar() string {
	if len(g.vars) == 0 || g.r.Intn(4) == 0 {
		v := fmt.Sprintf("v%d", len(g.vars))
		g.vars = append(g.vars, v)
		return v
	}
	return g.vars[g.r.Intn(len(g.vars))]
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100)-20)
		case 1:
			return fmt.Sprintf("%d.5", g.r.Intn(10))
		case 2:
			return fmt.Sprintf("\"s%d\"", g.r.Intn(10))
		default:
			if len(g.vars) == 0 {
				return "1"
			}
			return "$" + g.vars[g.r.Intn(len(g.vars))]
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s . %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s < %s ? %s : %s)",
			g.expr(depth-1), g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("strlen(strval(%s))", g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(int)(%s)", g.expr(depth-1))
	default:
		return g.expr(depth - 1)
	}
}

func (g *progGen) stmt(depth int) {
	switch g.r.Intn(7) {
	case 0, 1:
		fmt.Fprintf(&g.sb, "$%s = %s;\n", g.pickVar(), g.expr(2))
	case 2:
		v := g.pickVar()
		fmt.Fprintf(&g.sb, "$%s = 0;\nfor ($i%d = 0; $i%d < %d; $i%d++) { $%s = $%s + %s; }\n",
			v, g.fns, g.fns, 2+g.r.Intn(6), g.fns, v, v, g.expr(1))
		g.fns++
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.sb, "if (%s) {\n", g.expr(1))
			g.stmt(depth - 1)
			g.sb.WriteString("} else {\n")
			g.stmt(depth - 1)
			g.sb.WriteString("}\n")
		} else {
			fmt.Fprintf(&g.sb, "echo %s, \";\";\n", g.expr(1))
		}
	case 4:
		// Arrays live in their own namespace so scalar arithmetic
		// never sees them (Arr + Int is a legitimate guest error).
		v := fmt.Sprintf("arr%d", g.fns)
		g.fns++
		fmt.Fprintf(&g.sb, "$%s = [%s, %s, %s];\n", v, g.expr(1), g.expr(1), g.expr(1))
		fmt.Fprintf(&g.sb, "$%s[] = %s;\n", v, g.expr(1))
		fmt.Fprintf(&g.sb, "echo count($%s), \";\";\n", v)
	case 5:
		v := g.pickVar()
		fmt.Fprintf(&g.sb, "$%s = 0;\nforeach ([%s, %s] as $e%d) { $%s = $%s + strlen(strval($e%d)); }\n",
			v, g.expr(1), g.expr(1), g.fns, v, v, g.fns)
		g.fns++
	default:
		fmt.Fprintf(&g.sb, "echo %s, \";\";\n", g.expr(2))
	}
}

func (g *progGen) generate() string {
	// A helper function (polymorphic: int and double call sites).
	g.sb.WriteString(`
function helper($x, $y) {
  if ($x < $y) { return $x + $y; }
  return $x . "-" . $y;
}
`)
	n := 3 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	fmt.Fprintf(&g.sb, "echo helper(%d, %d), \";\";\n", g.r.Intn(10), g.r.Intn(10))
	fmt.Fprintf(&g.sb, "echo helper(%d.5, %d), \";\";\n", g.r.Intn(10), g.r.Intn(10))
	for _, v := range g.vars {
		fmt.Fprintf(&g.sb, "echo strval($%s), \";\";\n", v)
	}
	return g.sb.String()
}

func TestDifferentialFuzz(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := newProgGen(seed).generate()
		unit, err := core.Compile(src, core.CompileOptions{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		run := func(mode jit.Mode) string {
			cfg := jit.DefaultConfig()
			cfg.Mode = mode
			cfg.ProfileTrigger = 25
			var all strings.Builder
			eng, err := core.NewEngine(unit, cfg, &all)
			if err != nil {
				t.Fatalf("seed %d: engine: %v", seed, err)
			}
			for i := 0; i < 10; i++ {
				if _, err := eng.RunRequest(&all); err != nil {
					t.Fatalf("seed %d [%v] iter %d: %v\n%s", seed, mode, i, err, src)
				}
				all.WriteString("|")
			}
			return all.String()
		}

		want := run(jit.ModeInterp)
		for _, mode := range []jit.Mode{jit.ModeTracelet, jit.ModeRegion} {
			if got := run(mode); got != want {
				t.Errorf("seed %d: %v diverges from interpreter\n got: %.200q\nwant: %.200q\nprogram:\n%s",
					seed, mode, got, want, src)
			}
		}
	}
}
