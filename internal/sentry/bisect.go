package sentry

import (
	"sort"

	"repro/internal/jit"
)

// bisect isolates the translation responsible for a divergence.
//
// The replay VM is deterministic by construction (published-only
// dispatch, frozen links, detached fault injector), so replaying the
// same endpoint with different per-translation disable masks is a
// pure function of the mask. Candidates are the currently-published
// translations in a deterministic order; the search finds the
// smallest prefix whose disabling makes the replay match the shadow
// reference, and the last translation of that prefix is the culprit.
// Under the single-corruption model this is a textbook binary search:
// O(log n) replays instead of n.
//
// The culprit is invalidated *with* backoff — unlike auditor repairs,
// a bisected divergence means the translation misbehaved while its
// checksum may still match (e.g. a miscompile), so the quarantine
// ladder should make re-minting progressively more reluctant.
func (m *Monitor) bisect(endpoint, refOut, refRet string) DivergenceReport {
	rep := DivergenceReport{Endpoint: endpoint, CulpritFunc: -1, CulpritPC: -1}

	var cands []*jit.Translation
	m.j.ForEachTranslation(func(tr *jit.Translation) { cands = append(cands, tr) })
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.FuncID != b.FuncID {
			return a.FuncID < b.FuncID
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Kind < b.Kind
	})

	matches := func(denyN int) bool {
		deny := make(map[*jit.Translation]bool, denyN)
		for _, tr := range cands[:denyN] {
			deny[tr] = true
		}
		m.replayDeny = deny
		out, ret, err := m.runReplay(endpoint)
		m.replayDeny = nil
		m.replays.Add(1)
		rep.Replays++
		return err == nil && out == refOut && ret == refRet
	}

	if matches(0) {
		// The full published set already agrees with the reference:
		// the divergence no longer reproduces (the auditor repaired
		// it first, or the faulty translation was already recycled).
		rep.Transient = true
		m.transient.Add(1)
		return rep
	}
	if len(cands) == 0 || !matches(len(cands)) {
		// Even with every translation disabled — an interpreter-
		// equivalent replay — the divergence persists, so the fault
		// is not in the code cache. Report it unisolated; the
		// OnDivergence callback still fires so the host can shed.
		rep.Unisolable = true
		return rep
	}

	lo, hi := 1, len(cands)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if matches(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	culprit := cands[lo-1]
	rep.CulpritFunc = culprit.FuncID
	rep.CulpritPC = culprit.PC
	rep.CulpritKind = culprit.Kind.String()
	removed := m.j.Invalidate(culprit.FuncID, culprit.PC, true)
	rep.Quarantined = removed > 0
	if rep.Quarantined {
		m.quarantined.Add(1)
		m.invalidated.Add(uint64(removed))
	}
	return rep
}
