// Package experiments regenerates every measurement in the paper's
// evaluation section (Figures 8-11 plus the in-text §6.1 numbers) on
// the synthetic endpoint suite. Each experiment returns the same rows
// or series the paper reports; EXPERIMENTS.md records paper-vs-
// measured values.
package experiments

import (
	"fmt"
	"io"
	goruntime "runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/perflab"
	"repro/internal/server"
	"repro/internal/vm"
	"repro/internal/workload"
)

// NoShapes disables typed object shapes in every experiment config —
// the process-wide side of the -no-shapes toggle, so the whole
// evaluation suite can be replayed on the pre-shapes compiler.
var NoShapes bool

// defaultCfg is jit.DefaultConfig with the global ablation toggles
// applied; every experiment builds its configs through it.
func defaultCfg() jit.Config {
	cfg := jit.DefaultConfig()
	if NoShapes {
		cfg.EnableShapes = false
	}
	return cfg
}

// Quick reduces warmup/measure volume for fast runs (tests, benches).
var Quick = perflab.Config{WarmupRequests: 30, MeasureRequests: 6}

// Full matches the defaults.
var Full = perflab.Config{WarmupRequests: 60, MeasureRequests: 15}

// ---------- Figure 8: execution modes ----------

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	Mode string
	// CyclesPerReq is the weighted mean cost in simulated guest
	// cycles; HostNsPerReq the wall-clock host time per measured
	// request alongside it.
	CyclesPerReq float64
	HostNsPerReq float64
	// RelPerf is performance relative to JIT-Region (100 = region).
	RelPerf float64
}

// Fig8 measures all four execution modes.
func Fig8(pc perflab.Config) ([]Fig8Row, error) {
	modes := []jit.Mode{jit.ModeInterp, jit.ModeTracelet, jit.ModeProfiling, jit.ModeRegion}
	rows := make([]Fig8Row, 0, len(modes))
	var regionMean float64
	for _, m := range modes {
		cfg := defaultCfg()
		cfg.Mode = m
		start := time.Now()
		r, err := perflab.Measure(cfg, pc)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", m, err)
		}
		row := Fig8Row{Mode: m.String(), CyclesPerReq: r.WeightedMean}
		if r.MeasuredRequests > 0 {
			row.HostNsPerReq = float64(elapsed.Nanoseconds()) / float64(r.MeasuredRequests)
		}
		rows = append(rows, row)
		if m == jit.ModeRegion {
			regionMean = r.WeightedMean
		}
	}
	for i := range rows {
		if rows[i].CyclesPerReq > 0 {
			rows[i].RelPerf = 100 * regionMean / rows[i].CyclesPerReq
		}
	}
	return rows, nil
}

// ReportFig8 renders the table.
func ReportFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8 — relative performance of execution modes (region = 100%%)\n")
	fmt.Fprintf(w, "%-12s %14s %12s %10s %18s\n", "mode", "cycles/req", "host ns/req", "relative", "paper reports")
	paper := map[string]string{
		"interp": "12.8%", "tracelet": "82.2%", "profiling": "39.8%", "region": "100%",
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14.0f %12.0f %9.1f%% %18s\n", r.Mode, r.CyclesPerReq, r.HostNsPerReq, r.RelPerf, paper[r.Mode])
	}
}

// ---------- Figure 9: startup ----------

// Fig9 runs the server restart timeline.
func Fig9() (*server.Result, error) {
	return server.Simulate(server.DefaultConfig())
}

// ---------- Jumpstart: warm-start restart vs cold restart ----------

// JumpstartComparison holds the cold and warm restart timelines under
// identical seed and configuration.
type JumpstartComparison struct {
	Cold, Warm *server.Result
}

// Jumpstart replays the Figure 9 restart twice with the same seed and
// config: once cold (live profiling, global trigger) and once
// jumpstarted from a profile snapshot taken on a warmed donor server.
// The headline metric is time-to-90%-of-steady-RPS.
func Jumpstart(cfg server.Config) (*JumpstartComparison, error) {
	if cfg.Minutes == 0 {
		cfg = server.DefaultConfig()
	}
	cold, err := server.Simulate(cfg)
	if err != nil {
		return nil, fmt.Errorf("jumpstart cold run: %w", err)
	}
	snap, err := server.WarmSnapshot(cfg)
	if err != nil {
		return nil, fmt.Errorf("jumpstart donor: %w", err)
	}
	warmCfg := cfg
	warmCfg.Jumpstart = snap
	warm, err := server.Simulate(warmCfg)
	if err != nil {
		return nil, fmt.Errorf("jumpstart warm run: %w", err)
	}
	return &JumpstartComparison{Cold: cold, Warm: warm}, nil
}

// ReportJumpstart renders both timelines and the headline numbers.
func ReportJumpstart(w io.Writer, c *JumpstartComparison) {
	fmt.Fprintf(w, "Jumpstart — restart timeline, cold vs warm-started from a profile snapshot\n")
	fmt.Fprintf(w, "\n--- cold restart (live profiling) ---\n")
	server.Report(w, c.Cold)
	fmt.Fprintf(w, "\n--- jumpstarted restart (snapshot warm start) ---\n")
	server.Report(w, c.Warm)
	fmt.Fprintf(w, "\ntime to 90%% steady RPS: cold=%s, jumpstart=%s\n",
		fmtMinutes(c.Cold.MinutesTo90), fmtMinutes(c.Warm.MinutesTo90))
}

func fmtMinutes(m float64) string {
	if m < 0 {
		return "never"
	}
	return fmt.Sprintf("minute %.0f", m)
}

// ---------- Worker scaling: concurrent serving throughput ----------

// ScalingRow reports aggregate throughput for one worker count and
// host-tuning setting.
type ScalingRow struct {
	Workers int
	// Tuned rows run with parallel backend compiles (CompileWorkers =
	// Workers) and dispatch fusion on; baseline rows run the serial
	// backend with fusion off. Guest-side behavior is identical — the
	// difference is raw host throughput.
	Tuned bool
	// RPM is the mean aggregate requests per simulated minute across
	// the timeline (all workers summed).
	RPM float64
	// Speedup is RPM relative to the single-worker baseline row.
	Speedup float64
	// WallMS is the host wall-clock time of the whole simulated run;
	// WallRPS the requests actually executed per host wall-clock
	// second (every simulated request runs real compiled code).
	WallMS  float64
	WallRPS float64
	// WallSpeedup is WallRPS relative to the baseline row at the same
	// worker count — the PR 8 headline (leases + fusion vs neither).
	WallSpeedup float64
}

// Scaling replays the restart timeline with increasing worker counts
// sharing one JIT and measures aggregate request throughput. The
// fleet-wave window is disabled so every run is demand-capped at N×
// the per-core steady-state rate; near-linear speedup means the
// shared translation index and counters are not a serialization
// point. Each worker count runs twice — baseline (serial backend,
// fusion off) and tuned (per-function translation leases fanning the
// backend over N goroutines, fused dispatch) — and the wall-clock
// columns compare the two.
func Scaling(cfg server.Config, workerCounts []int) ([]ScalingRow, error) {
	if cfg.Minutes == 0 {
		cfg = server.DefaultConfig()
	}
	cfg.FleetWaveAt = cfg.Minutes // no overload window
	var rows []ScalingRow
	for _, n := range workerCounts {
		for _, tuned := range []bool{false, true} {
			c := cfg
			c.Workers = n
			if tuned {
				c.CompileWorkers = n
				c.JIT.FuseDispatch = true
			} else {
				c.CompileWorkers = 0
				c.JIT.CompileWorkers = 0
				c.JIT.FuseDispatch = false
			}
			start := time.Now()
			res, err := server.Simulate(c)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("scaling %d workers (tuned=%v): %w", n, tuned, err)
			}
			var rpm, reqs float64
			for _, s := range res.Samples {
				reqs += s.RPSPct / 100 * res.SteadyRPS * float64(n)
			}
			if len(res.Samples) > 0 {
				rpm = reqs / float64(len(res.Samples))
			}
			row := ScalingRow{Workers: n, Tuned: tuned, RPM: rpm,
				WallMS: float64(wall.Nanoseconds()) / 1e6}
			if wall > 0 {
				row.WallRPS = reqs / wall.Seconds()
			}
			rows = append(rows, row)
		}
	}
	for i := range rows {
		if rows[0].RPM > 0 {
			rows[i].Speedup = rows[i].RPM / rows[0].RPM
		}
		if rows[i].Tuned && i > 0 && rows[i-1].WallRPS > 0 {
			rows[i].WallSpeedup = rows[i].WallRPS / rows[i-1].WallRPS
		}
	}
	return rows, nil
}

// ReportScaling renders the table.
func ReportScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "Worker scaling — aggregate throughput, N workers sharing one JIT\n")
	fmt.Fprintf(w, "(tuned = parallel backend compiles under translation leases + fused dispatch)\n")
	fmt.Fprintf(w, "%8s %9s %14s %10s %10s %12s %10s\n",
		"workers", "variant", "req/min", "speedup", "wall ms", "wall req/s", "wall gain")
	for _, r := range rows {
		variant := "baseline"
		if r.Tuned {
			variant = "tuned"
		}
		gain := ""
		if r.WallSpeedup > 0 {
			gain = fmt.Sprintf("%9.2fx", r.WallSpeedup)
		}
		fmt.Fprintf(w, "%8d %9s %14.1f %9.2fx %10.0f %12.0f %10s\n",
			r.Workers, variant, r.RPM, r.Speedup, r.WallMS, r.WallRPS, gain)
	}
}

// ---------- Host throughput: fused dispatch wall-clock (PR 8) ----------

// HostThroughputRow is one dispatch variant's steady-state wall-clock
// cost.
type HostThroughputRow struct {
	Variant string
	// HostNsPerReq is the fastest-of-three-passes wall-clock time per
	// request through the fully warmed region JIT.
	HostNsPerReq float64
	// GuestCycles is the simulated cost of one steady-state round over
	// every endpoint — must be identical across variants (fusion is
	// guest-invisible).
	GuestCycles uint64
	// FusedInstrs counts superinstructions minted (0 when fusion off).
	FusedInstrs uint64
}

// HostThroughputResult compares unfused and fused dispatch.
type HostThroughputResult struct {
	Rows            []HostThroughputRow
	UnfusedNsPerReq float64
	FusedNsPerReq   float64
	// ImprovementPct is the host-time reduction from fusion (positive
	// = fused is faster).
	ImprovementPct float64
}

// HostThroughput measures raw host dispatch throughput with fusion
// off and on: same engine configuration, same endpoints, same guest
// cycles — the delta is the host-side cost of classic per-instruction
// accounting versus superinstructions with per-run cycle settlement.
// Both engines are warmed first, then timed passes alternate between
// them (fastest pass kept per variant) so scheduler and thermal drift
// on a shared host hits both variants equally.
func HostThroughput(pc perflab.Config) (*HostThroughputResult, error) {
	res := &HostThroughputResult{}
	type variant struct {
		eng  *core.Engine
		eps  []workload.Endpoint
		best float64
	}
	vs := make([]*variant, 2)
	for i, fused := range []bool{false, true} {
		cfg := defaultCfg()
		cfg.FuseDispatch = fused
		eng, eps, err := perflab.NewEngine(cfg)
		if err != nil {
			return nil, fmt.Errorf("hostthru: %w", err)
		}
		warm := pc.WarmupRequests
		if warm < 40 {
			warm = 40 // enough to pass the trigger and publish optimized code
		}
		for r := 0; r < warm; r++ {
			for _, ep := range eps {
				if _, _, err := perflab.RunEndpoint(eng, ep.Name); err != nil {
					return nil, fmt.Errorf("hostthru warmup: %w", err)
				}
			}
		}
		vs[i] = &variant{eng: eng, eps: eps}
	}
	rounds := pc.MeasureRequests * 3
	if rounds < 12 {
		rounds = 12
	}
	for pass := 0; pass < 4; pass++ {
		for _, v := range vs {
			// Force a collection boundary so GC cycles triggered by the
			// other variant's allocations don't land inside this pass
			// (measured: a mid-pass GC swings a pass by over 30%).
			goruntime.GC()
			reqs := 0
			start := time.Now()
			for r := 0; r < rounds; r++ {
				for _, ep := range v.eps {
					if _, _, err := perflab.RunEndpoint(v.eng, ep.Name); err != nil {
						return nil, fmt.Errorf("hostthru: %w", err)
					}
					reqs++
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(reqs)
			if v.best == 0 || ns < v.best {
				v.best = ns
			}
		}
	}
	for i, v := range vs {
		c0 := v.eng.Cycles()
		for _, ep := range v.eps {
			if _, _, err := perflab.RunEndpoint(v.eng, ep.Name); err != nil {
				return nil, fmt.Errorf("hostthru: %w", err)
			}
		}
		name := "unfused"
		if i == 1 {
			name = "fused"
		}
		res.Rows = append(res.Rows, HostThroughputRow{
			Variant:      name,
			HostNsPerReq: v.best,
			GuestCycles:  v.eng.Cycles() - c0,
			FusedInstrs:  v.eng.Stats().FusedInstrs,
		})
	}
	res.UnfusedNsPerReq = res.Rows[0].HostNsPerReq
	res.FusedNsPerReq = res.Rows[1].HostNsPerReq
	if res.UnfusedNsPerReq > 0 {
		res.ImprovementPct = 100 * (1 - res.FusedNsPerReq/res.UnfusedNsPerReq)
	}
	if res.Rows[0].GuestCycles != res.Rows[1].GuestCycles {
		return res, fmt.Errorf("hostthru: guest cycles diverged (unfused %d, fused %d) — fusion must be guest-invisible",
			res.Rows[0].GuestCycles, res.Rows[1].GuestCycles)
	}
	if res.Rows[1].FusedInstrs == 0 {
		return res, fmt.Errorf("hostthru: fused run minted no superinstructions")
	}
	return res, nil
}

// ReportHostThroughput renders the comparison.
func ReportHostThroughput(w io.Writer, res *HostThroughputResult) {
	fmt.Fprintf(w, "Host throughput — wall-clock dispatch cost, fused vs classic (guest cycles identical)\n")
	fmt.Fprintf(w, "%-10s %14s %16s %14s\n", "variant", "host ns/req", "guest cycles/rnd", "fused instrs")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %14.0f %16d %14d\n", r.Variant, r.HostNsPerReq, r.GuestCycles, r.FusedInstrs)
	}
	fmt.Fprintf(w, "fusion improvement: %.1f%% host time per request\n", res.ImprovementPct)
}

// ---------- Direct chaining: smashed transfers vs dispatcher ----------

// ChainRow compares chained and unchained dispatch for one execution
// mode.
type ChainRow struct {
	Mode    string
	Chained bool
	// CyclesPerReq is the weighted mean request cost.
	CyclesPerReq float64
	// LookupsPerReq is the steady-state (measurement-phase) dispatcher
	// Lookup rate — chaining's headline metric.
	LookupsPerReq float64
	// Chaining activity over the whole run. BindsDispatched counts
	// bind requests that reached the VM dispatcher (the slow path the
	// smashed sites bypass).
	BindsSmashed    uint64
	BindsDispatched uint64
	ChainedJumps    uint64
	ChainedCalls    uint64
	StaleLinks      uint64
	LinksSwept      uint64
	// HostNsPerReq is wall-clock host time per measured request — the
	// harness's own speed, not the simulated guest cost.
	HostNsPerReq float64
}

// Chain measures chained vs unchained dispatch in tracelet and region
// mode, and verifies the toggle leaves every endpoint's output
// bit-identical.
func Chain(pc perflab.Config) ([]ChainRow, error) {
	modes := []jit.Mode{jit.ModeTracelet, jit.ModeRegion}
	var rows []ChainRow
	for _, m := range modes {
		outputs := map[string][2]string{}
		for i, on := range []bool{false, true} {
			cfg := defaultCfg()
			cfg.Mode = m
			cfg.EnableChaining = on
			start := time.Now()
			r, err := perflab.Measure(cfg, pc)
			if err != nil {
				return nil, fmt.Errorf("chain %s chained=%v: %w", m, on, err)
			}
			elapsed := time.Since(start)
			s := r.JITStats
			row := ChainRow{
				Mode: m.String(), Chained: on,
				CyclesPerReq:    r.WeightedMean,
				LookupsPerReq:   r.SteadyLookupsPerReq(),
				BindsSmashed:    s.BindsSmashed,
				BindsDispatched: s.BindRequests,
				ChainedJumps:    s.ChainedJumps,
				ChainedCalls:    s.ChainedCalls,
				StaleLinks:      s.StaleLinks,
				LinksSwept:      s.LinksSwept,
			}
			if r.MeasuredRequests > 0 {
				// Whole-run wall time over measured requests: an
				// approximation, but measured identically on both sides
				// of the toggle.
				row.HostNsPerReq = float64(elapsed.Nanoseconds()) / float64(r.MeasuredRequests)
			}
			rows = append(rows, row)
			for _, ep := range r.Endpoints {
				pair := outputs[ep.Name]
				pair[i] = ep.Output
				outputs[ep.Name] = pair
			}
		}
		for name, pair := range outputs {
			if pair[0] != pair[1] {
				return nil, fmt.Errorf("chain %s: endpoint %s output differs across chaining toggle",
					m, name)
			}
		}
	}
	return rows, nil
}

// ReportChain renders the comparison.
func ReportChain(w io.Writer, rows []ChainRow) {
	fmt.Fprintf(w, "Direct chaining — smashed bind jumps / bound calls vs dispatcher round-trips\n")
	fmt.Fprintf(w, "%-10s %8s %14s %12s %10s %12s %12s %12s %10s %8s %12s\n",
		"mode", "chained", "cycles/req", "lookups/req", "smashed", "dispatched",
		"chained-jmp", "chained-call", "stale", "swept", "host-ns/req")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8v %14.0f %12.2f %10d %12d %12d %12d %10d %8d %12.0f\n",
			r.Mode, r.Chained, r.CyclesPerReq, r.LookupsPerReq,
			r.BindsSmashed, r.BindsDispatched, r.ChainedJumps, r.ChainedCalls,
			r.StaleLinks, r.LinksSwept, r.HostNsPerReq)
	}
}

// ---------- Figure 10: optimization impact ----------

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	Optimization string
	SlowdownPct  float64
	PaperPct     float64
}

// fig10Variants lists the ablations and the paper's reported numbers.
func fig10Variants() []struct {
	name  string
	paper float64
	mod   func(*jit.Config)
} {
	return []struct {
		name  string
		paper float64
		mod   func(*jit.Config)
	}{
		{"Inlining", 7.3, func(c *jit.Config) { c.EnableInlining = false }},
		{"RCE", 3.4, func(c *jit.Config) { c.EnableRCE = false }},
		{"Guard Relax.", 1.4, func(c *jit.Config) { c.EnableGuardRelax = false }},
		{"Method Disp.", 7.2, func(c *jit.Config) { c.EnableMethodDispatch = false }},
		{"PGO Layout", 2.8, func(c *jit.Config) { c.PGOLayout = false; c.FunctionSort = false }},
		{"All PGO", 9.0, func(c *jit.Config) {
			c.EnableMethodDispatch = false
			c.PGOLayout = false
			c.FunctionSort = false
			c.EnableGuardRelax = false
			c.HugePages = false
		}},
		{"Huge Pages", 1.6, func(c *jit.Config) { c.HugePages = false }},
	}
}

// Fig10 measures the slowdown from disabling each optimization.
func Fig10(pc perflab.Config) ([]Fig10Row, error) {
	base := defaultCfg()
	baseline, err := perflab.Measure(base, pc)
	if err != nil {
		return nil, fmt.Errorf("fig10 baseline: %w", err)
	}
	var rows []Fig10Row
	for _, v := range fig10Variants() {
		cfg := defaultCfg()
		v.mod(&cfg)
		r, err := perflab.Measure(cfg, pc)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", v.name, err)
		}
		slow := 0.0
		if baseline.WeightedMean > 0 {
			slow = (r.WeightedMean/baseline.WeightedMean - 1) * 100
		}
		rows = append(rows, Fig10Row{Optimization: v.name, SlowdownPct: slow, PaperPct: v.paper})
	}
	return rows, nil
}

// ReportFig10 renders the table.
func ReportFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Figure 10 — slowdown from disabling each optimization\n")
	fmt.Fprintf(w, "%-14s %12s %12s\n", "optimization", "slowdown", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.1f%% %11.1f%%\n", r.Optimization, r.SlowdownPct, r.PaperPct)
	}
}

// ---------- Figure 11: JITed code size ----------

// Fig11Row is one point of Figure 11.
type Fig11Row struct {
	// RelCodeSize is the code budget relative to baseline (1.0 =
	// unlimited steady-state footprint).
	RelCodeSize float64
	// RelPerf is performance relative to the unlimited baseline.
	RelPerf float64
}

// Fig11 sweeps the code-cache budget from 10% to 120% of the
// baseline footprint; bytecode that no longer fits is interpreted.
func Fig11(pc perflab.Config, fractions []float64) ([]Fig11Row, error) {
	if fractions == nil {
		fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}
	}
	base := defaultCfg()
	baseline, err := perflab.Measure(base, pc)
	if err != nil {
		return nil, fmt.Errorf("fig11 baseline: %w", err)
	}
	baseBytes := baseline.CodeBytes
	if baseBytes == 0 {
		return nil, fmt.Errorf("fig11: baseline produced no JITed code")
	}
	var rows []Fig11Row
	for _, f := range fractions {
		cfg := defaultCfg()
		cfg.CodeCacheLimit = uint64(f * float64(baseBytes))
		if cfg.CodeCacheLimit == 0 {
			cfg.CodeCacheLimit = 1
		}
		r, err := perflab.Measure(cfg, pc)
		if err != nil {
			return nil, fmt.Errorf("fig11 %.0f%%: %w", f*100, err)
		}
		rel := 0.0
		if r.WeightedMean > 0 {
			rel = 100 * baseline.WeightedMean / r.WeightedMean
		}
		rows = append(rows, Fig11Row{RelCodeSize: f, RelPerf: rel})
	}
	return rows, nil
}

// ReportFig11 renders the series.
func ReportFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintf(w, "Figure 11 — performance vs JITed-code budget (baseline = 100%%)\n")
	fmt.Fprintf(w, "%12s %12s\n", "code budget", "rel. perf")
	for _, r := range rows {
		fmt.Fprintf(w, "%11.0f%% %11.1f%%\n", r.RelCodeSize*100, r.RelPerf)
	}
}

// ---------- Fault injection: self-healing under injected faults ----------

// FaultsResult reports the self-healing experiment (DESIGN.md §11):
// the endpoint suite run with every fault kind firing, checked for
// output fidelity against a JIT-disabled reference and for throughput
// against a fault-free baseline, plus a forced cache-recycling
// episode.
type FaultsResult struct {
	Seed int64
	// Rate is the per-draw injection probability of each fault kind.
	Rate float64

	// BaselineCycles / FaultyCycles are the weighted mean request
	// costs without and with injection; SlowdownPct relates them.
	BaselineCycles float64
	FaultyCycles   float64
	SlowdownPct    float64

	// OutputsMatch reports that every endpoint's output under
	// injection was bit-identical to the JIT-disabled reference.
	OutputsMatch bool

	// SnapshotCorruptRejected reports the snapshot-corruption leg: a
	// donor profile corrupted in flight was rejected whole and the
	// engine cold-started with no partial profile state.
	SnapshotCorruptRejected bool

	// Workers / WorkerRequests describe the concurrent run: N workers
	// sharing one fault-injected JIT, total requests completed with
	// zero process panics and reference-identical outputs.
	Workers        int
	WorkerRequests int

	// Fired counts injections actually fired per fault kind.
	Fired map[string]uint64
	// Stats is the fault-injected engine's final counter snapshot.
	Stats jit.Stats

	// Recycle is the forced cache-pressure episode.
	Recycle RecycleEpisode
}

// RecycleEpisode summarizes a run against a deliberately undersized
// code cache: exhaustion must trigger recycling, recycling must evict
// cold translations, and minting must resume (latch cleared).
type RecycleEpisode struct {
	CacheFullEvents uint64
	RecycleRuns     uint64
	Evictions       uint64
	EvictedBytes    uint64
	// LatchCleared reports the sticky cache-full latch was open at the
	// end of the run — minting had resumed.
	LatchCleared bool
	// Translations is the final resident translation count proxy
	// (live + profiling + optimized minted over the run).
	Translations uint64
	// DegradeLevel is the final degradation-ladder level (0 = the
	// ladder fully recovered).
	DegradeLevel uint64
}

// Faults runs the fault-injection experiment: a fault-free baseline,
// an all-faults-on run (every kind at rate), a 4-worker concurrent
// run under the same injection, and a forced cache-recycling episode.
func Faults(pc perflab.Config, seed int64, rate float64) (*FaultsResult, error) {
	res := &FaultsResult{Seed: seed, Rate: rate, Fired: map[string]uint64{}}

	// JIT-disabled reference outputs: the fidelity oracle.
	interpCfg := defaultCfg()
	interpCfg.Mode = jit.ModeInterp
	ref, err := perflab.Measure(interpCfg, pc)
	if err != nil {
		return nil, fmt.Errorf("faults interp reference: %w", err)
	}
	refOut := map[string]string{}
	for _, ep := range ref.Endpoints {
		refOut[ep.Name] = ep.Output
	}

	// Fault-free baseline.
	base, err := perflab.Measure(defaultCfg(), pc)
	if err != nil {
		return nil, fmt.Errorf("faults baseline: %w", err)
	}
	res.BaselineCycles = base.WeightedMean

	// All faults on. The injected engine must complete the full
	// warmup+measure protocol (Measure itself rejects nondeterministic
	// output) and match the interpreter bit-for-bit.
	cfg := defaultCfg()
	cfg.Faults = faultinject.New(faultinject.EnableAll(seed, rate))
	faulty, err := perflab.Measure(cfg, pc)
	if err != nil {
		return nil, fmt.Errorf("faults injected run: %w", err)
	}
	res.FaultyCycles = faulty.WeightedMean
	if res.BaselineCycles > 0 {
		res.SlowdownPct = (res.FaultyCycles/res.BaselineCycles - 1) * 100
	}
	res.OutputsMatch = true
	for _, ep := range faulty.Endpoints {
		if ep.Output != refOut[ep.Name] {
			res.OutputsMatch = false
		}
	}
	res.Stats = faulty.JITStats

	// Snapshot-corruption leg: persist a donor profile, then load it
	// into a fresh engine with an in-flight corruption guaranteed to
	// fire. The CRC-validated load must reject the snapshot whole and
	// cold-start cleanly (no partial profile state).
	donor, deps, err := perflab.NewEngine(defaultCfg())
	if err != nil {
		return nil, fmt.Errorf("faults snapshot donor: %w", err)
	}
	for r := 0; r < 200 && donor.Stats().OptimizeRuns == 0; r++ {
		for _, ep := range deps {
			if _, _, err := perflab.RunEndpoint(donor, ep.Name); err != nil {
				return nil, fmt.Errorf("faults snapshot donor %s: %w", ep.Name, err)
			}
		}
	}
	jcfg := defaultCfg()
	jcfg.Faults = cfg.Faults // accumulate onto the same injector's counters
	jeng, _, err := perflab.NewEngine(jcfg)
	if err != nil {
		return nil, fmt.Errorf("faults snapshot loader: %w", err)
	}
	cfg.Faults.ForceNext(faultinject.SnapshotCorrupt, 1)
	load := jeng.LoadProfile(donor.ProfileSnapshot())
	res.SnapshotCorruptRejected = load.Corrupt && load.LoadedTrans == 0 &&
		jeng.Stats().ProfilingTranslations == 0

	for _, k := range faultinject.Kinds() {
		res.Fired[k.String()] = cfg.Faults.Fired(k)
	}

	// Concurrent serving under injection: 4 workers share one
	// fault-injected JIT; every request must complete (contained, not
	// crashed) with reference-identical output.
	wcfg := defaultCfg()
	wcfg.BackgroundCompile = true
	wcfg.Faults = faultinject.New(faultinject.EnableAll(seed+1, rate))
	weng, eps, err := perflab.NewEngine(wcfg)
	if err != nil {
		return nil, fmt.Errorf("faults worker engine: %w", err)
	}
	const workers = 4
	res.Workers = workers
	rounds := pc.WarmupRequests + pc.MeasureRequests
	if rounds == 0 {
		rounds = 20
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	counts := make([]int, workers)
	for i := 0; i < workers; i++ {
		v := weng.VM
		if i > 0 {
			v = weng.NewWorker(io.Discard)
		}
		wg.Add(1)
		go func(i int, v *vm.VM) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, ep := range eps {
					_, out, err := perflab.RunEndpointVM(v, ep.Name)
					if err != nil {
						errs[i] = fmt.Errorf("worker %d %s: %w", i, ep.Name, err)
						return
					}
					if out != refOut[ep.Name] {
						errs[i] = fmt.Errorf("worker %d %s: output diverged from interp reference",
							i, ep.Name)
						return
					}
					counts[i]++
				}
			}
		}(i, v)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.WorkerRequests += counts[i]
	}

	// Forced cache-recycling episode: size the budget at a fraction of
	// the measured fault-free footprint so live minting exhausts it,
	// and check that recycling reopened the cache.
	probe := defaultCfg()
	probe.Mode = jit.ModeTracelet
	probeRes, err := perflab.Measure(probe, pc)
	if err != nil {
		return nil, fmt.Errorf("faults recycle probe: %w", err)
	}
	rcfg := defaultCfg()
	rcfg.Mode = jit.ModeTracelet
	rcfg.CodeCacheLimit = probeRes.CodeBytes / 3
	if rcfg.CodeCacheLimit == 0 {
		rcfg.CodeCacheLimit = 1
	}
	reng, reps, err := perflab.NewEngine(rcfg)
	if err != nil {
		return nil, fmt.Errorf("faults recycle engine: %w", err)
	}
	for r := 0; r < rounds; r++ {
		for _, ep := range reps {
			if _, out, err := perflab.RunEndpoint(reng, ep.Name); err != nil {
				return nil, fmt.Errorf("faults recycle run %s: %w", ep.Name, err)
			} else if out != refOut[ep.Name] {
				return nil, fmt.Errorf("faults recycle run %s: output diverged", ep.Name)
			}
		}
	}
	rst := reng.Stats()
	res.Recycle = RecycleEpisode{
		CacheFullEvents: rst.CacheFullEvents,
		RecycleRuns:     rst.RecycleRuns,
		Evictions:       rst.Evictions,
		EvictedBytes:    rst.EvictedBytes,
		LatchCleared:    !reng.VM.JIT.CacheFull(),
		Translations:    rst.LiveTranslations,
		DegradeLevel:    rst.DegradeLevel,
	}
	return res, nil
}

// ReportFaults renders the experiment.
func ReportFaults(w io.Writer, r *FaultsResult) {
	fmt.Fprintf(w, "Fault injection — self-healing under injected faults (seed %d, rate %.1f%%/draw)\n",
		r.Seed, r.Rate*100)
	fmt.Fprintf(w, "baseline %14.0f cycles/req\n", r.BaselineCycles)
	fmt.Fprintf(w, "faulty   %14.0f cycles/req  (%+.1f%%)\n", r.FaultyCycles, r.SlowdownPct)
	fmt.Fprintf(w, "outputs bit-identical to JIT-disabled reference: %v\n", r.OutputsMatch)
	fmt.Fprintf(w, "corrupt snapshot rejected whole (clean cold start): %v\n",
		r.SnapshotCorruptRejected)
	fmt.Fprintf(w, "concurrent run: %d workers, %d requests, zero panics\n",
		r.Workers, r.WorkerRequests)
	fmt.Fprintf(w, "injections fired:")
	for _, k := range faultinject.Kinds() {
		fmt.Fprintf(w, " %s=%d", k, r.Fired[k.String()])
	}
	fmt.Fprintf(w, "\ncontainment: %d faults contained, %d compile failures, %d quarantine retries, %d recoveries, %d demotions, %d unpublished\n",
		r.Stats.TransFaults, r.Stats.CompileFailures, r.Stats.QuarantineRetries,
		r.Stats.QuarantineRecoveries, r.Stats.Demotions, r.Stats.Unpublished)
	rc := r.Recycle
	fmt.Fprintf(w, "recycle episode: %d cache-full events, %d recycle runs, %d evictions (%d bytes), latch cleared=%v, degrade level=%d\n",
		rc.CacheFullEvents, rc.RecycleRuns, rc.Evictions, rc.EvictedBytes,
		rc.LatchCleared, rc.DegradeLevel)
}

// ---------- Shapes ablation (DESIGN.md §14) ----------

// ShapesRow is one endpoint of the shapes ablation: guest cost with
// typed object shapes on vs off.
type ShapesRow struct {
	Endpoint  string
	CyclesOn  float64
	CyclesOff float64
	// Speedup is off/on (>1 means shapes help).
	Speedup float64
}

// ShapesResult is the shapes ablation over the shape-polymorphism
// workload family. All per-request rates are steady-state: counter
// deltas across the measurement phase divided by measured requests.
type ShapesResult struct {
	Rows []ShapesRow
	// WeightedOn/Off are traffic-weighted mean cycles/request.
	WeightedOn, WeightedOff float64
	// Shape-machinery rates with shapes on.
	GuardsPerReq     float64
	GuardFailsPerReq float64
	ICHitsPerReq     float64
	ICMissesPerReq   float64
	ICMegaPerReq     float64
	// Generic by-name property-helper call rates on both sides of the
	// toggle — the number the gate requires to drop >=5x.
	GenericOnPerReq  float64
	GenericOffPerReq float64
	// Mono* are the steady counters of a mono-only run (traffic pinned
	// to shape_mono): the monomorphic site must resolve through shape
	// guards alone, with the IC and the generic helper both idle.
	MonoGuards  uint64
	MonoICOps   uint64
	MonoGeneric uint64
	// OutputsIdentical reports every endpoint produced bit-identical
	// output across the toggle (Shapes also fails hard if not).
	OutputsIdentical bool
}

// shapesFamily returns the shape-polymorphism endpoints from the
// suite (the shape_ name prefix).
func shapesFamily() []workload.Endpoint {
	var eps []workload.Endpoint
	for _, ep := range workload.Suite() {
		if strings.HasPrefix(ep.Name, "shape_") {
			eps = append(eps, ep)
		}
	}
	return eps
}

// steadyRate is a measurement-phase per-request rate from a counter
// delta.
func steadyRate(r *perflab.Result, get func(jit.Stats) uint64) float64 {
	if r.MeasuredRequests == 0 {
		return 0
	}
	return float64(get(r.JITStats)-get(r.WarmStats)) / float64(r.MeasuredRequests)
}

// Shapes runs the typed-object-shapes ablation: the shape workload
// family measured shapes-on and shapes-off, plus a mono-only run
// checking that a shape-monomorphic site needs nothing beyond its
// single guard.
func Shapes(pc perflab.Config) (*ShapesResult, error) {
	family := shapesFamily()
	if len(family) == 0 {
		return nil, fmt.Errorf("shapes: no shape_ endpoints in suite")
	}
	fpc := pc
	fpc.Endpoints = family

	var runs [2]*perflab.Result
	for i, on := range []bool{true, false} {
		cfg := defaultCfg()
		cfg.EnableShapes = on
		r, err := perflab.Measure(cfg, fpc)
		if err != nil {
			return nil, fmt.Errorf("shapes enabled=%v: %w", on, err)
		}
		runs[i] = r
	}
	onRun, offRun := runs[0], runs[1]

	res := &ShapesResult{
		WeightedOn:       onRun.WeightedMean,
		WeightedOff:      offRun.WeightedMean,
		GuardsPerReq:     steadyRate(onRun, func(s jit.Stats) uint64 { return s.ShapeGuards }),
		GuardFailsPerReq: steadyRate(onRun, func(s jit.Stats) uint64 { return s.ShapeGuardFails }),
		ICHitsPerReq:     steadyRate(onRun, func(s jit.Stats) uint64 { return s.PropICHits }),
		ICMissesPerReq:   steadyRate(onRun, func(s jit.Stats) uint64 { return s.PropICMisses }),
		ICMegaPerReq:     steadyRate(onRun, func(s jit.Stats) uint64 { return s.PropICMega }),
		GenericOnPerReq:  steadyRate(onRun, func(s jit.Stats) uint64 { return s.GenericPropCalls }),
		GenericOffPerReq: steadyRate(offRun, func(s jit.Stats) uint64 { return s.GenericPropCalls }),
		OutputsIdentical: true,
	}
	offBy := map[string]perflab.EndpointResult{}
	for _, ep := range offRun.Endpoints {
		offBy[ep.Name] = ep
	}
	for _, ep := range onRun.Endpoints {
		off, ok := offBy[ep.Name]
		if !ok {
			return nil, fmt.Errorf("shapes: endpoint %s missing from shapes-off run", ep.Name)
		}
		if ep.Output != off.Output {
			return nil, fmt.Errorf("shapes: endpoint %s output differs across the toggle", ep.Name)
		}
		row := ShapesRow{Endpoint: ep.Name, CyclesOn: ep.MeanCycles, CyclesOff: off.MeanCycles}
		if row.CyclesOn > 0 {
			row.Speedup = row.CyclesOff / row.CyclesOn
		}
		res.Rows = append(res.Rows, row)
	}

	// Mono-only traffic: the class-polymorphic, shape-monomorphic
	// endpoint must settle on guard-only access.
	var mono []workload.Endpoint
	for _, ep := range family {
		if ep.Name == "shape_mono" {
			mono = append(mono, ep)
		}
	}
	if len(mono) == 1 {
		mpc := pc
		mpc.Endpoints = mono
		mr, err := perflab.Measure(defaultCfgShapesOn(), mpc)
		if err != nil {
			return nil, fmt.Errorf("shapes mono run: %w", err)
		}
		res.MonoGuards = mr.JITStats.ShapeGuards - mr.WarmStats.ShapeGuards
		res.MonoICOps = (mr.JITStats.PropICHits - mr.WarmStats.PropICHits) +
			(mr.JITStats.PropICMisses - mr.WarmStats.PropICMisses) +
			(mr.JITStats.PropICMega - mr.WarmStats.PropICMega)
		res.MonoGeneric = mr.JITStats.GenericPropCalls - mr.WarmStats.GenericPropCalls
	}
	return res, nil
}

// defaultCfgShapesOn forces shapes on regardless of the NoShapes
// toggle — the mono-only structural check is about the shape
// machinery itself, not the ablation baseline.
func defaultCfgShapesOn() jit.Config {
	cfg := jit.DefaultConfig()
	cfg.EnableShapes = true
	return cfg
}

// GateErr checks the acceptance gate: generic property-helper calls
// per request must drop at least 5x with shapes on, guest cycles must
// improve, and the monomorphic endpoint must run on shape guards
// alone (no IC traffic, no generic calls).
func (r *ShapesResult) GateErr() error {
	if r.GenericOnPerReq*5 > r.GenericOffPerReq {
		return fmt.Errorf("shapes gate: generic calls/req %.1f -> %.1f is under a 5x drop",
			r.GenericOffPerReq, r.GenericOnPerReq)
	}
	if r.WeightedOn >= r.WeightedOff {
		return fmt.Errorf("shapes gate: cycles/req did not improve (%.0f on vs %.0f off)",
			r.WeightedOn, r.WeightedOff)
	}
	if r.MonoGuards == 0 {
		return fmt.Errorf("shapes gate: mono-only run executed no shape guards")
	}
	if r.MonoICOps != 0 || r.MonoGeneric != 0 {
		return fmt.Errorf("shapes gate: mono-only run was not guard-only (ic=%d generic=%d)",
			r.MonoICOps, r.MonoGeneric)
	}
	if !r.OutputsIdentical {
		return fmt.Errorf("shapes gate: outputs differ across the toggle")
	}
	return nil
}

// ReportShapes renders the ablation.
func ReportShapes(w io.Writer, r *ShapesResult) {
	fmt.Fprintf(w, "Typed object shapes — shape-guarded access vs class-keyed/generic (DESIGN.md §14)\n")
	fmt.Fprintf(w, "%-16s %14s %14s %9s\n", "endpoint", "cycles on", "cycles off", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %14.0f %14.0f %8.3fx\n", row.Endpoint, row.CyclesOn, row.CyclesOff, row.Speedup)
	}
	fmt.Fprintf(w, "%-16s %14.0f %14.0f %8.3fx\n", "WEIGHTED MEAN", r.WeightedOn, r.WeightedOff,
		r.WeightedOff/r.WeightedOn)
	fmt.Fprintf(w, "steady per-req: guards=%.1f fails=%.1f ic-hit=%.1f ic-miss=%.1f ic-mega=%.1f\n",
		r.GuardsPerReq, r.GuardFailsPerReq, r.ICHitsPerReq, r.ICMissesPerReq, r.ICMegaPerReq)
	fmt.Fprintf(w, "generic prop calls/req: %.1f with shapes vs %.1f without (%.1fx drop)\n",
		r.GenericOnPerReq, r.GenericOffPerReq, genericDrop(r))
	fmt.Fprintf(w, "mono-only run: %d shape guards, %d IC ops, %d generic calls\n",
		r.MonoGuards, r.MonoICOps, r.MonoGeneric)
	if err := r.GateErr(); err != nil {
		fmt.Fprintf(w, "gate: FAIL — %v\n", err)
	} else {
		fmt.Fprintf(w, "gate: ok (>=5x generic drop, cycles improved, mono guard-only, outputs identical)\n")
	}
}

// genericDrop is the off/on generic-call ratio for display.
func genericDrop(r *ShapesResult) float64 {
	if r.GenericOnPerReq == 0 {
		return r.GenericOffPerReq
	}
	return r.GenericOffPerReq / r.GenericOnPerReq
}
