package parser

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Binary operator precedence (higher binds tighter), mirroring PHP.
var binPrec = map[string]int{
	"or": 1, "xor": 2, "and": 3,
	"||": 5, "&&": 6,
	"|": 7, "^": 8, "&": 9,
	"==": 10, "!=": 10, "===": 10, "!==": 10, "<=>": 10,
	"<": 11, "<=": 11, ">": 11, ">=": 11,
	"<<": 12, ">>": 12,
	"+": 13, "-": 13, ".": 13,
	"*": 14, "/": 14, "%": 14,
	"instanceof": 15,
}

// expr parses a full expression including assignment and ternary.
func (p *Parser) expr() (ast.Expr, error) {
	return p.assignExpr()
}

func (p *Parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == lexer.TOp {
		op := p.cur().Text
		var compound string
		switch op {
		case "=":
			compound = ""
		case "+=", "-=", "*=", "/=", ".=", "%=":
			compound = op[:1]
		default:
			return lhs, nil
		}
		if !isLValue(lhs) {
			return nil, p.errf("invalid assignment target")
		}
		p.next()
		rhs, err := p.assignExpr() // right-assoc
		if err != nil {
			return nil, err
		}
		return &ast.Assign{Target: lhs, Op: compound, Value: rhs}, nil
	}
	return lhs, nil
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Var, *ast.Index, *ast.Prop:
		return true
	}
	return false
}

func (p *Parser) ternaryExpr() (ast.Expr, error) {
	cond, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.isOp("?") {
		return cond, nil
	}
	p.next()
	var then ast.Expr
	if !p.isOp(":") {
		then, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	els, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) peekBinOp() (string, int, bool) {
	t := p.cur()
	if t.Kind == lexer.TOp {
		if prec, ok := binPrec[t.Text]; ok {
			return t.Text, prec, true
		}
	}
	if t.Kind == lexer.TIdent {
		lo := strings.ToLower(t.Text)
		if prec, ok := binPrec[lo]; ok {
			return lo, prec, true
		}
	}
	return "", 0, false
}

func (p *Parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		op, prec, ok := p.peekBinOp()
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		if op == "instanceof" {
			cls, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			lhs = &ast.InstanceOf{E: lhs, Class: cls}
			continue
		}
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		switch op {
		case "and":
			op = "&&"
		case "or":
			op = "||"
		}
		lhs = &ast.Binop{Op: op, L: lhs, R: rhs}
	}
}

func (p *Parser) unaryExpr() (ast.Expr, error) {
	switch {
	case p.isOp("-"):
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unop{Op: "-", E: e}, nil
	case p.isOp("!"):
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unop{Op: "!", E: e}, nil
	case p.isOp("+"):
		p.next()
		return p.unaryExpr()
	case p.isOp("++"), p.isOp("--"):
		inc := p.next().Text == "++"
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if !isLValue(e) {
			return nil, p.errf("invalid increment target")
		}
		return &ast.IncDec{Target: e, Inc: inc, Pre: true}, nil
	case p.isOp("("):
		// possible cast
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].Kind == lexer.TIdent &&
			p.toks[p.pos+2].Kind == lexer.TOp && p.toks[p.pos+2].Text == ")" {
			ty := strings.ToLower(p.toks[p.pos+1].Text)
			switch ty {
			case "int", "integer", "float", "double", "string", "bool", "boolean":
				p.next()
				p.next()
				p.next()
				e, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				switch ty {
				case "integer":
					ty = "int"
				case "double":
					ty = "float"
				case "boolean":
					ty = "bool"
				}
				return &ast.Cast{To: ty, E: e}, nil
			}
		}
		return p.postfixExpr()
	default:
		return p.postfixExpr()
	}
}

func (p *Parser) postfixExpr() (ast.Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("["):
			p.next()
			if p.isOp("]") {
				p.next()
				e = &ast.Index{Arr: e, Key: nil} // $a[] append form
				continue
			}
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &ast.Index{Arr: e, Key: key}
		case p.isOp("->"):
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.isOp("(") {
				args, err := p.argList()
				if err != nil {
					return nil, err
				}
				e = &ast.MethodCall{Recv: e, Name: name, Args: args}
			} else {
				e = &ast.Prop{Recv: e, Name: name}
			}
		case p.isOp("++"), p.isOp("--"):
			if !isLValue(e) {
				return e, nil
			}
			inc := p.next().Text == "++"
			e = &ast.IncDec{Target: e, Inc: inc, Pre: false}
		default:
			return e, nil
		}
	}
}

func (p *Parser) argList() ([]ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.isOp(")") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	return args, p.expectOp(")")
}

func (p *Parser) primaryExpr() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.TInt:
		p.next()
		return &ast.IntLit{Value: t.Int}, nil
	case lexer.TFloat:
		p.next()
		return &ast.FloatLit{Value: t.Dbl}, nil
	case lexer.TString:
		p.next()
		if t.Text == "\"" && strings.ContainsRune(t.Str, '$') {
			return interpolate(t.Str), nil
		}
		return &ast.StringLit{Value: t.Str}, nil
	case lexer.TVar:
		p.next()
		if t.Text == "this" {
			return &ast.ThisExpr{}, nil
		}
		return &ast.Var{Name: t.Text}, nil
	case lexer.TIdent:
		lo := strings.ToLower(t.Text)
		switch lo {
		case "true":
			p.next()
			return &ast.BoolLit{Value: true}, nil
		case "false":
			p.next()
			return &ast.BoolLit{Value: false}, nil
		case "null":
			p.next()
			return &ast.NullLit{}, nil
		case "new":
			p.next()
			cls, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var args []ast.Expr
			if p.isOp("(") {
				args, err = p.argList()
				if err != nil {
					return nil, err
				}
			}
			return &ast.New{Class: cls, Args: args}, nil
		case "isset":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ast.Isset{E: e}, nil
		case "array":
			// array( ... ) literal
			p.next()
			if p.isOp("(") {
				return p.arrayLit("(", ")")
			}
			return nil, p.errf("expected ( after array")
		}
		// function call, static call, or bare constant-like ident
		name := p.next().Text
		if p.isOp("::") {
			p.next()
			meth, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &ast.StaticCall{Class: name, Name: meth, Args: args}, nil
		}
		if p.isOp("(") {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &ast.Call{Name: name, Args: args}, nil
		}
		// Bare identifier: treat as string constant (PHP legacy).
		return &ast.StringLit{Value: name}, nil
	case lexer.TOp:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectOp(")")
		case "[":
			return p.arrayLit("[", "]")
		}
	}
	return nil, p.errf("unexpected token %s", t)
}

func (p *Parser) arrayLit(open, close string) (ast.Expr, error) {
	if err := p.expectOp(open); err != nil {
		return nil, err
	}
	lit := &ast.ArrayLit{}
	for !p.isOp(close) {
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.acceptOp("=>") {
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			lit.Keys = append(lit.Keys, first)
			lit.Vals = append(lit.Vals, val)
			lit.IsMap = true
		} else {
			lit.Keys = append(lit.Keys, nil)
			lit.Vals = append(lit.Vals, first)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	return lit, p.expectOp(close)
}

// interpolate splits a double-quoted string containing $vars into an
// Interp node of literal and variable parts. Supports $name and
// {$name} forms.
func interpolate(s string) ast.Expr {
	var parts []ast.Expr
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			parts = append(parts, &ast.StringLit{Value: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(s); {
		c := s[i]
		if c == '$' && i+1 < len(s) && isNameStart(s[i+1]) {
			j := i + 1
			for j < len(s) && isNameChar(s[j]) {
				j++
			}
			flush()
			parts = append(parts, &ast.Var{Name: s[i+1 : j]})
			i = j
			continue
		}
		if c == '{' && i+1 < len(s) && s[i+1] == '$' {
			j := i + 2
			for j < len(s) && isNameChar(s[j]) {
				j++
			}
			if j < len(s) && s[j] == '}' {
				flush()
				parts = append(parts, &ast.Var{Name: s[i+2 : j]})
				i = j + 1
				continue
			}
		}
		lit.WriteByte(c)
		i++
	}
	flush()
	if len(parts) == 1 {
		return parts[0]
	}
	return &ast.Interp{Parts: parts}
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool { return isNameStart(c) || c >= '0' && c <= '9' }
