package vasm

import (
	"fmt"
	"math"

	"repro/internal/hhir"
	"repro/internal/types"
)

// Lower translates an optimized HHIR unit into Vasm with virtual
// registers. Exit descriptors become stub blocks in the frozen area.
func Lower(hu *hhir.Unit) (*Unit, error) {
	lw := &lowerer{
		hu:      hu,
		out:     &Unit{},
		blockOf: map[*hhir.Block]int{},
		regOf:   map[*hhir.SSATmp]Reg{},
		stubOf:  map[*hhir.ExitDesc]int{},
	}
	// Pre-create blocks in HHIR order (entry first).
	ordered := append([]*hhir.Block(nil), hu.Blocks...)
	for i, hb := range ordered {
		vb := &Block{ID: i, Weight: hb.Weight, Hint: Hint(hb.Hint)}
		lw.out.Blocks = append(lw.out.Blocks, vb)
		lw.blockOf[hb] = i
	}
	if len(ordered) == 0 || hu.Entry == nil {
		return nil, fmt.Errorf("vasm: empty HHIR unit")
	}
	if lw.blockOf[hu.Entry] != 0 {
		return nil, fmt.Errorf("vasm: entry is not the first block")
	}
	for i, hb := range ordered {
		if err := lw.lowerBlock(hb, lw.out.Blocks[i]); err != nil {
			return nil, err
		}
	}
	lw.out.NumVRegs = int(lw.nextReg)
	lw.out.ExtFrameSlots = hu.ExtFrameSlots
	return lw.out, nil
}

type lowerer struct {
	hu      *hhir.Unit
	out     *Unit
	blockOf map[*hhir.Block]int
	regOf   map[*hhir.SSATmp]Reg
	stubOf  map[*hhir.ExitDesc]int
	nextReg Reg
	cur     *Block
}

func (lw *lowerer) reg(t *hhir.SSATmp) Reg {
	if t == nil {
		return InvalidReg
	}
	if r, ok := lw.regOf[t]; ok {
		return r
	}
	r := lw.nextReg
	lw.nextReg++
	lw.regOf[t] = r
	return r
}

func (lw *lowerer) fresh() Reg {
	r := lw.nextReg
	lw.nextReg++
	return r
}

func (lw *lowerer) emit(in Instr) {
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

// stub returns (creating if needed) the stub block for an exit.
func (lw *lowerer) stub(ex *hhir.ExitDesc) int {
	if ex == nil {
		return -1
	}
	if id, ok := lw.stubOf[ex]; ok {
		return id
	}
	vb := &Block{ID: len(lw.out.Blocks), Hint: HintStub}
	lw.out.Blocks = append(lw.out.Blocks, vb)
	lw.stubOf[ex] = vb.ID
	info := &ExitInfo{BCOff: ex.BCOff, IsCatch: ex.IsCatch}
	for _, t := range ex.Stack {
		info.StackRegs = append(info.StackRegs, lw.reg(t))
	}
	info.Inline = lw.inlineInfo(ex.Inline)
	vb.Instrs = append(vb.Instrs, Instr{Op: Exit, D: InvalidReg, A: InvalidReg, B: InvalidReg, Ex: info})
	return vb.ID
}

// inlineInfo converts an HHIR inline-context chain.
func (lw *lowerer) inlineInfo(ic *hhir.InlineCtx) *InlineInfo {
	if ic == nil {
		return nil
	}
	ii := &InlineInfo{
		FuncID:     ic.Callee.ID,
		LocalsBase: ic.LocalsBase,
		ThisReg:    InvalidReg,
		RetBCOff:   ic.RetBCOff,
		Parent:     lw.inlineInfo(ic.Parent),
	}
	if ic.This != nil {
		ii.ThisReg = lw.reg(ic.This)
	}
	for _, t := range ic.CallerStack {
		ii.CallerStackRegs = append(ii.CallerStackRegs, lw.reg(t))
	}
	return ii
}

// edgeCopies emits parallel copies feeding a successor's params.
func (lw *lowerer) edgeCopies(target *hhir.Block, args []*hhir.SSATmp) {
	if len(args) == 0 {
		return
	}
	type mv struct{ dst, src Reg }
	var moves []mv
	for i, a := range args {
		if i >= len(target.Params) {
			break
		}
		d := lw.reg(target.Params[i])
		s := lw.reg(a)
		if d != s {
			moves = append(moves, mv{d, s})
		}
	}
	// Topologically order; break cycles through a scratch register.
	for len(moves) > 0 {
		progressed := false
		for i := 0; i < len(moves); i++ {
			dstIsSrc := false
			for j := range moves {
				if j != i && moves[j].src == moves[i].dst {
					dstIsSrc = true
					break
				}
			}
			if !dstIsSrc {
				lw.emit(Instr{Op: Copy, D: moves[i].dst, A: moves[i].src, B: InvalidReg})
				moves = append(moves[:i], moves[i+1:]...)
				progressed = true
				break
			}
		}
		if !progressed {
			// Cycle: rotate through a scratch.
			scratch := lw.fresh()
			lw.emit(Instr{Op: Copy, D: scratch, A: moves[0].src, B: InvalidReg})
			moves[0].src = scratch
		}
	}
}

func nzInstr(op Op) Instr {
	return Instr{Op: op, D: InvalidReg, A: InvalidReg, B: InvalidReg, Target1: -1, Target2: -1}
}

func (lw *lowerer) lowerBlock(hb *hhir.Block, vb *Block) error {
	lw.cur = vb
	// Entry-block params come from the frame's eval stack.
	if lw.blockOf[hb] == 0 {
		for d, p := range hb.Params {
			in := nzInstr(LdStk)
			in.D = lw.reg(p)
			in.I64 = int64(d)
			lw.emit(in)
		}
	}
	for _, hin := range hb.Instrs {
		if err := lw.lowerInstr(hin); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) ldImm(d Reg, iv ImmValue) {
	in := nzInstr(LdImm)
	in.D = d
	in.I64 = int64(len(lw.out.Imms))
	lw.out.Imms = append(lw.out.Imms, iv)
	lw.emit(in)
}

func (lw *lowerer) helper(h HelperID, extra int64, str string, d Reg, catchStub int, args ...Reg) {
	in := nzInstr(Helper)
	in.D = d
	in.I64 = PackHelper(h, extra)
	in.Str = str
	in.Args = args
	in.Target1 = catchStub
	lw.emit(in)
}

func (lw *lowerer) lowerInstr(hin *hhir.Instr) error {
	switch hin.Op {
	case hhir.Nop:

	case hhir.DefConstInt:
		lw.ldImm(lw.reg(hin.Dst), ImmValue{Kind: types.KInt, I: hin.I64})
	case hhir.DefConstDbl:
		lw.ldImm(lw.reg(hin.Dst), ImmValue{Kind: types.KDbl, D: math.Float64frombits(uint64(hin.I64))})
	case hhir.DefConstBool:
		lw.ldImm(lw.reg(hin.Dst), ImmValue{Kind: types.KBool, I: hin.I64})
	case hhir.DefConstNull:
		k := types.KNull
		if hin.I64 == 1 {
			k = types.KUninit
		}
		lw.ldImm(lw.reg(hin.Dst), ImmValue{Kind: k})
	case hhir.DefConstStr:
		lw.ldImm(lw.reg(hin.Dst), ImmValue{Kind: types.KStr, S: hin.Str})

	case hhir.AssertType:
		// Pure copy at this level.
		d, s := lw.reg(hin.Dst), lw.reg(hin.Args[0])
		if d != s {
			in := nzInstr(Copy)
			in.D = d
			in.A = s
			lw.emit(in)
		}

	case hhir.GuardLoc:
		tmp := lw.fresh()
		ld := nzInstr(LdLoc)
		ld.D = tmp
		ld.I64 = hin.I64
		lw.emit(ld)
		g := nzInstr(GuardKind)
		g.A = tmp
		g.TypeParam = hin.TypeParam
		g.Target1 = lw.guardTarget(hin)
		lw.emit(g)
	case hhir.GuardStk:
		g := nzInstr(GuardKind)
		g.A = lw.reg(hin.Args[0])
		g.TypeParam = hin.TypeParam
		g.Target1 = lw.guardTarget(hin)
		lw.emit(g)
	case hhir.CheckType:
		d, s := lw.reg(hin.Dst), lw.reg(hin.Args[0])
		if d != s {
			in := nzInstr(Copy)
			in.D = d
			in.A = s
			lw.emit(in)
		}
		g := nzInstr(GuardKind)
		g.A = d
		g.TypeParam = hin.TypeParam
		g.Target1 = lw.guardTarget(hin)
		lw.emit(g)
	case hhir.CheckCls:
		d, s := lw.reg(hin.Dst), lw.reg(hin.Args[0])
		if d != s {
			in := nzInstr(Copy)
			in.D = d
			in.A = s
			lw.emit(in)
		}
		g := nzInstr(GuardCls)
		g.A = d
		g.I64 = hin.I64
		g.Target1 = lw.guardTarget(hin)
		lw.emit(g)

	case hhir.LdLoc:
		in := nzInstr(LdLoc)
		in.D = lw.reg(hin.Dst)
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.StLoc:
		in := nzInstr(StLoc)
		in.A = lw.reg(hin.Args[0])
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.LdThis:
		in := nzInstr(LdThis)
		in.D = lw.reg(hin.Dst)
		lw.emit(in)

	case hhir.IncRef:
		in := nzInstr(IncRef)
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.DecRef:
		in := nzInstr(DecRef)
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)

	case hhir.AddInt, hhir.SubInt, hhir.MulInt, hhir.AddDbl, hhir.SubDbl,
		hhir.MulDbl, hhir.DivDbl:
		op := map[hhir.Opcode]Op{
			hhir.AddInt: AddI, hhir.SubInt: SubI, hhir.MulInt: MulI,
			hhir.AddDbl: AddD, hhir.SubDbl: SubD, hhir.MulDbl: MulD,
			hhir.DivDbl: DivD,
		}[hin.Op]
		in := nzInstr(op)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		in.B = lw.reg(hin.Args[1])
		lw.emit(in)
	case hhir.NegInt, hhir.NegDbl:
		op := NegI
		if hin.Op == hhir.NegDbl {
			op = NegD
		}
		in := nzInstr(op)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.ModInt:
		lw.helper(HModInt, 0, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.DivNum:
		lw.helper(HDivNum, 0, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))

	case hhir.CmpInt, hhir.CmpDbl:
		op := CmpI
		if hin.Op == hhir.CmpDbl {
			op = CmpD
		}
		in := nzInstr(op)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		in.B = lw.reg(hin.Args[1])
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.CmpStr:
		lw.helper(HCmpStr, hin.I64, "", lw.reg(hin.Dst), -1,
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.EqAny:
		lw.helper(HEqAny, hin.I64, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.SameAny:
		lw.helper(HSameAny, hin.I64, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))

	case hhir.ConvToBool, hhir.ConvToInt, hhir.ConvToDbl:
		arg := hin.Args[0]
		if arg.Type.IsSpecific() {
			op := map[hhir.Opcode]Op{
				hhir.ConvToBool: ToBool, hhir.ConvToInt: ToInt, hhir.ConvToDbl: ToDbl,
			}[hin.Op]
			in := nzInstr(op)
			in.D = lw.reg(hin.Dst)
			in.A = lw.reg(arg)
			lw.emit(in)
		} else {
			h := map[hhir.Opcode]HelperID{
				hhir.ConvToBool: HConvToBoolGeneric, hhir.ConvToInt: HConvToIntGeneric,
				hhir.ConvToDbl: HConvToDblGeneric,
			}[hin.Op]
			lw.helper(h, 0, "", lw.reg(hin.Dst), -1, lw.reg(arg))
		}
	case hhir.ConvToStr:
		lw.helper(HToStr, 0, "", lw.reg(hin.Dst), -1, lw.reg(hin.Args[0]))

	case hhir.BinopGeneric:
		lw.helper(HBinop, hin.I64, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.ConcatStr:
		lw.helper(HConcat, 0, "", lw.reg(hin.Dst), -1,
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))

	case hhir.CountArray:
		in := nzInstr(ArrCount)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.ArrGetPackedI:
		in := nzInstr(ArrGetPkI)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		in.B = lw.reg(hin.Args[1])
		in.Target1 = lw.stub(hin.Exit)
		lw.emit(in)
	case hhir.ArrGetGeneric:
		lw.helper(HArrGetGeneric, 0, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.ArrSetLocal:
		lw.helper(HArrSetLocal, hin.I64, "", InvalidReg, lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.ArrAppendLocal:
		lw.helper(HArrAppendLocal, hin.I64, "", InvalidReg, lw.stub(hin.Exit),
			lw.reg(hin.Args[0]))
	case hhir.ArrUnsetLocal:
		lw.helper(HArrUnsetLocal, hin.I64, "", InvalidReg, -1, lw.reg(hin.Args[0]))
	case hhir.AKExistsLocal:
		lw.helper(HAKExistsLocal, hin.I64, "", lw.reg(hin.Dst), -1, lw.reg(hin.Args[0]))
	case hhir.NewArr:
		lw.helper(HNewArr, 0, "", lw.reg(hin.Dst), -1)
	case hhir.NewPackedArr:
		args := make([]Reg, len(hin.Args))
		for i, a := range hin.Args {
			args[i] = lw.reg(a)
		}
		lw.helper(HNewPacked, 0, "", lw.reg(hin.Dst), -1, args...)
	case hhir.AddElem:
		lw.helper(HAddElem, 0, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]), lw.reg(hin.Args[2]))
	case hhir.AddNewElem:
		lw.helper(HAddNewElem, 0, "", lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))

	case hhir.IterInitLocal:
		iter, slot := hhir.UnpackIter(hin.I64)
		cond := lw.fresh()
		lw.helper(HIterInit, PackIterSlot(iter, slot), "", cond, -1)
		lw.branch(cond, hin)
		return nil
	case hhir.IterNextK:
		cond := lw.fresh()
		lw.helper(HIterNext, hin.I64, "", cond, -1)
		lw.branch(cond, hin)
		return nil
	case hhir.IterKey:
		lw.helper(HIterKey, hin.I64, "", lw.reg(hin.Dst), -1)
	case hhir.IterValue:
		lw.helper(HIterValue, hin.I64, "", lw.reg(hin.Dst), -1)
	case hhir.IterFree:
		lw.helper(HIterFree, hin.I64, "", InvalidReg, -1)

	case hhir.NewObj:
		lw.helper(HNewObj, 0, hin.Str, lw.reg(hin.Dst), lw.stub(hin.Exit))
	case hhir.LdPropSlot:
		in := nzInstr(LdProp)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.StPropSlot:
		in := nzInstr(StProp)
		in.A = lw.reg(hin.Args[0])
		in.B = lw.reg(hin.Args[1])
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.LdPropGeneric:
		lw.helper(HLdPropGeneric, 0, hin.Str, lw.reg(hin.Dst), lw.stub(hin.Exit),
			lw.reg(hin.Args[0]))
	case hhir.StPropGeneric:
		lw.helper(HStPropGeneric, 0, hin.Str, InvalidReg, lw.stub(hin.Exit),
			lw.reg(hin.Args[0]), lw.reg(hin.Args[1]))
	case hhir.GuardShape:
		g := nzInstr(GuardShape)
		g.A = lw.reg(hin.Args[0])
		g.I64 = hin.I64
		g.Target1 = lw.guardTarget(hin)
		lw.emit(g)
	case hhir.LdPropIC:
		in := nzInstr(LdPropIC)
		in.D = lw.reg(hin.Dst)
		in.A = lw.reg(hin.Args[0])
		in.Str = hin.Str
		in.Target1 = lw.stub(hin.Exit)
		lw.emit(in)
	case hhir.StPropIC:
		in := nzInstr(StPropIC)
		in.A = lw.reg(hin.Args[0])
		in.B = lw.reg(hin.Args[1])
		in.Str = hin.Str
		in.Target1 = lw.stub(hin.Exit)
		lw.emit(in)
	case hhir.ProfPropShape:
		in := nzInstr(ProfPropShape)
		in.I64 = hin.I64
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.InstanceOf:
		lw.helper(HInstanceOf, hin.I64, hin.Str, lw.reg(hin.Dst), -1, lw.reg(hin.Args[0]))

	case hhir.CallFunc, hhir.CallBuiltin, hhir.CallMethodD, hhir.CallMethodC:
		op := map[hhir.Opcode]Op{
			hhir.CallFunc: CallFunc, hhir.CallBuiltin: CallBuiltin,
			hhir.CallMethodD: CallMethodD, hhir.CallMethodC: CallMethodC,
		}[hin.Op]
		in := nzInstr(op)
		in.D = lw.reg(hin.Dst)
		in.I64 = hin.I64
		in.Str = hin.Str
		in.Args = make([]Reg, len(hin.Args))
		for i, a := range hin.Args {
			in.Args[i] = lw.reg(a)
		}
		in.Target1 = lw.stub(hin.Exit)
		lw.emit(in)
	case hhir.VerifyParam:
		lw.helper(HVerifyParam, hin.I64, hin.Str, InvalidReg, lw.stub(hin.Exit))
	case hhir.ProfCount:
		in := nzInstr(CountInc)
		in.I64 = hin.I64
		lw.emit(in)
	case hhir.ProfCallSite:
		in := nzInstr(ProfCallSite)
		in.I64 = hin.I64
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.PrintC:
		lw.helper(HPrint, 0, "", InvalidReg, -1, lw.reg(hin.Args[0]))
	case hhir.EndInline:
		// Pure marker.

	case hhir.Jmp:
		lw.edgeCopies(hin.Next, hin.NextArgs)
		in := nzInstr(Jmp)
		in.Target1 = lw.blockOf[hin.Next]
		lw.emit(in)
	case hhir.SwitchInt:
		tbl := JumpTable{Base: hin.I64, Default: lw.blockOf[hin.Taken]}
		for _, t := range hin.Table {
			tbl.Targets = append(tbl.Targets, lw.blockOf[t])
		}
		in := nzInstr(JmpTable)
		in.A = lw.reg(hin.Args[0])
		in.I64 = int64(len(lw.out.Tables))
		lw.out.Tables = append(lw.out.Tables, tbl)
		lw.emit(in)
	case hhir.Branch:
		lw.edgeCopies(hin.Taken, hin.TakenArgs)
		lw.edgeCopies(hin.Next, hin.NextArgs)
		in := nzInstr(Jcc)
		in.A = lw.reg(hin.Args[0])
		in.Target1 = lw.blockOf[hin.Taken]
		in.Target2 = lw.blockOf[hin.Next]
		lw.emit(in)
	case hhir.Ret:
		in := nzInstr(Ret)
		in.A = lw.reg(hin.Args[0])
		lw.emit(in)
	case hhir.ThrowC:
		lw.helper(HThrow, 0, "", InvalidReg, lw.stub(hin.Exit), lw.reg(hin.Args[0]))
	case hhir.SideExit:
		in := nzInstr(Jmp)
		in.Target1 = lw.stub(hin.Exit)
		lw.emit(in)
	case hhir.ReqBind:
		in := nzInstr(BindJmp)
		in.I64 = hin.I64
		st := lw.stub(hin.Exit)
		in.Target1 = st
		// The exit info also lives on the instruction itself so the
		// dispatcher can rebuild state without running the stub.
		in.Ex = lw.out.Blocks[st].Instrs[0].Ex
		lw.emit(in)

	default:
		return fmt.Errorf("vasm: cannot lower %s", hin.Op)
	}
	return nil
}

// guardTarget resolves a guard's fail destination: the next chain
// block (with its edge copies) or a side-exit stub.
func (lw *lowerer) guardTarget(hin *hhir.Instr) int {
	if hin.Taken != nil {
		// Edge copies for the chained retranslation path: emitted
		// before the guard (harmless on fallthrough; the params are
		// dedicated registers).
		lw.edgeCopies(hin.Taken, hin.TakenArgs)
		return lw.blockOf[hin.Taken]
	}
	return lw.stub(hin.Exit)
}

// branch finishes IterInit/IterNext lowering: cond ? Taken : Next.
func (lw *lowerer) branch(cond Reg, hin *hhir.Instr) {
	lw.edgeCopies(hin.Taken, hin.TakenArgs)
	lw.edgeCopies(hin.Next, hin.NextArgs)
	in := nzInstr(Jcc)
	in.A = cond
	in.Target1 = lw.blockOf[hin.Taken]
	in.Target2 = lw.blockOf[hin.Next]
	lw.emit(in)
}
