package interp

import (
	"fmt"

	"repro/internal/hhbc"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Cost model: every interpreted bytecode pays a dispatch overhead (the
// threaded-interpreter fetch/decode/indirect-branch) plus the
// handler's own work. JITed code eliminates the dispatch and shrinks
// the work via specialization, which is where the interp-vs-JIT gap in
// Figure 8 comes from.
const dispatchCost = 58

func opWorkCost(op hhbc.Op) uint64 {
	switch op {
	case hhbc.OpNop, hhbc.OpAssertRATL, hhbc.OpAssertRAStk:
		return 0
	case hhbc.OpInt, hhbc.OpDouble, hhbc.OpTrue, hhbc.OpFalse, hhbc.OpNull, hhbc.OpString:
		return 2
	case hhbc.OpCGetL, hhbc.OpCGetL2, hhbc.OpPopL, hhbc.OpSetL, hhbc.OpPushL, hhbc.OpPopC, hhbc.OpDup:
		return 4
	case hhbc.OpIncDecL, hhbc.OpIsTypeL, hhbc.OpUnsetL:
		return 5
	case hhbc.OpAdd, hhbc.OpSub, hhbc.OpMul, hhbc.OpNeg:
		return 6
	case hhbc.OpDiv, hhbc.OpMod:
		return 10
	case hhbc.OpConcat:
		return 24
	case hhbc.OpGt, hhbc.OpGte, hhbc.OpLt, hhbc.OpLte, hhbc.OpEq, hhbc.OpNeq,
		hhbc.OpSame, hhbc.OpNSame, hhbc.OpNot:
		return 6
	case hhbc.OpCastBool, hhbc.OpCastInt, hhbc.OpCastDouble:
		return 5
	case hhbc.OpCastString:
		return 18
	case hhbc.OpJmp, hhbc.OpJmpZ, hhbc.OpJmpNZ:
		return 2
	case hhbc.OpSwitch:
		return 5
	case hhbc.OpRetC:
		return 8
	case hhbc.OpThrow, hhbc.OpCatch, hhbc.OpFatal:
		return 30
	case hhbc.OpNewArray, hhbc.OpNewPackedArray:
		return 20
	case hhbc.OpAddElemC, hhbc.OpAddNewElemC:
		return 12
	case hhbc.OpArrIdx, hhbc.OpArrGetL:
		return 10
	case hhbc.OpArrSetL, hhbc.OpArrAppendL, hhbc.OpArrUnsetL:
		return 14
	case hhbc.OpAKExistsL:
		return 8
	case hhbc.OpIterInitL:
		return 14
	case hhbc.OpIterNext, hhbc.OpIterKey, hhbc.OpIterValue:
		return 6
	case hhbc.OpIterFree:
		return 4
	case hhbc.OpFCallD, hhbc.OpFCallObjMethodD:
		return 44 // ActRec setup + frame push + dispatch
	case hhbc.OpFCallBuiltin:
		return 12
	case hhbc.OpNewObjD:
		return 25
	case hhbc.OpThis:
		return 3
	case hhbc.OpCGetPropD, hhbc.OpSetPropD:
		return 12
	case hhbc.OpInstanceOfD:
		return 8
	case hhbc.OpVerifyParamType:
		return 5
	case hhbc.OpPrint:
		return 15
	default:
		return 5
	}
}

// interpCall is the default CallHook: interpret f from its entry.
func (e *Env) interpCall(f *hhbc.Func, this *runtime.Object, args []runtime.Value) (runtime.Value, error) {
	if e.OnEnter != nil {
		e.OnEnter(f)
	}
	if e.depth >= e.MaxDepth {
		for _, a := range args {
			e.Heap.DecRef(a)
		}
		return runtime.Null(), runtime.NewError("maximum call depth exceeded")
	}
	fr := NewFrame(e, f, this, args)
	e.depth++
	v, err := e.Run(fr)
	e.depth--
	return v, err
}

// Run executes fr from fr.PC until return or uncaught error. It is
// the OSR entry: JITed side exits resume interpretation here with a
// materialized frame.
func (e *Env) Run(fr *Frame) (runtime.Value, error) {
	for {
		v, err := e.step(fr)
		if err == nil {
			if fr.PC < 0 { // returned
				return v, nil
			}
			continue
		}
		if err == ErrOSR {
			return runtime.Null(), err
		}
		// Unwind to a handler in this frame, or out.
		handler := fr.Fn.HandlerFor(fr.PC)
		if handler < 0 {
			fr.release(e)
			return runtime.Null(), err
		}
		obj := e.toThrownObject(err)
		fr.clearStack(e)
		fr.pendingExc = obj
		fr.PC = handler
	}
}

// step executes instructions until a call returns, the function
// returns (fr.PC = -1), or an error is raised. Splitting the hot loop
// this way keeps error unwinding out of the common path.
func (e *Env) step(fr *Frame) (runtime.Value, error) {
	u := e.Unit
	h := e.Heap
	for {
		in := fr.Fn.Instrs[fr.PC]
		if e.Meter != nil {
			e.Meter.Charge(dispatchCost + opWorkCost(in.Op))
		}
		switch in.Op {
		case hhbc.OpNop, hhbc.OpAssertRATL, hhbc.OpAssertRAStk, hhbc.OpIncProfCounter:
			// no effect

		case hhbc.OpInt:
			fr.push(runtime.Int(u.Ints[in.A]))
		case hhbc.OpDouble:
			fr.push(runtime.Dbl(u.Doubles[in.A]))
		case hhbc.OpString:
			fr.push(runtime.StrV(runtime.InternStr(u.Strings[in.A])))
		case hhbc.OpTrue:
			fr.push(runtime.Bool(true))
		case hhbc.OpFalse:
			fr.push(runtime.Bool(false))
		case hhbc.OpNull:
			fr.push(runtime.Null())

		case hhbc.OpPopC:
			h.DecRef(fr.pop())
		case hhbc.OpDup:
			v := fr.top()
			h.IncRef(v)
			fr.push(v)

		case hhbc.OpCGetL:
			v := fr.Locals[in.A]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			h.IncRef(v)
			fr.push(v)
		case hhbc.OpCGetL2:
			v := fr.Locals[in.A]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			h.IncRef(v)
			top := fr.pop()
			fr.push(v)
			fr.push(top)
		case hhbc.OpPopL:
			old := fr.Locals[in.A]
			fr.Locals[in.A] = fr.pop()
			h.DecRef(old)
		case hhbc.OpSetL:
			v := fr.top()
			h.IncRef(v)
			old := fr.Locals[in.A]
			fr.Locals[in.A] = v
			h.DecRef(old)
		case hhbc.OpPushL:
			fr.push(fr.Locals[in.A])
			fr.Locals[in.A] = runtime.Uninit()
		case hhbc.OpUnsetL:
			h.DecRef(fr.Locals[in.A])
			fr.Locals[in.A] = runtime.Uninit()
		case hhbc.OpIsTypeL:
			fr.push(runtime.Bool(int32(fr.Locals[in.A].Kind)&in.B != 0))
		case hhbc.OpIncDecL:
			v, err := e.incDecL(fr, in)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(v)

		case hhbc.OpAdd:
			b, a := fr.pop(), fr.pop()
			r, err := runtime.Add(h, a, b)
			h.DecRef(a)
			h.DecRef(b)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(r)
		case hhbc.OpSub:
			b, a := fr.pop(), fr.pop()
			r, err := runtime.Sub(a, b)
			h.DecRef(a)
			h.DecRef(b)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(r)
		case hhbc.OpMul:
			b, a := fr.pop(), fr.pop()
			r, err := runtime.Mul(a, b)
			h.DecRef(a)
			h.DecRef(b)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(r)
		case hhbc.OpDiv:
			b, a := fr.pop(), fr.pop()
			r, err := runtime.Div(a, b)
			h.DecRef(a)
			h.DecRef(b)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(r)
		case hhbc.OpMod:
			b, a := fr.pop(), fr.pop()
			r, err := runtime.Mod(a, b)
			h.DecRef(a)
			h.DecRef(b)
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(r)
		case hhbc.OpConcat:
			b, a := fr.pop(), fr.pop()
			r := runtime.Concat(a, b)
			h.DecRef(a)
			h.DecRef(b)
			fr.push(r)
		case hhbc.OpNeg:
			a := fr.pop()
			if a.Kind == types.KDbl {
				fr.push(runtime.Dbl(-a.D))
			} else {
				fr.push(runtime.Int(-a.ToInt()))
			}
			h.DecRef(a)

		case hhbc.OpGt, hhbc.OpGte, hhbc.OpLt, hhbc.OpLte:
			b, a := fr.pop(), fr.pop()
			c := runtime.Cmp(a, b)
			h.DecRef(a)
			h.DecRef(b)
			var r bool
			switch in.Op {
			case hhbc.OpGt:
				r = c > 0
			case hhbc.OpGte:
				r = c >= 0
			case hhbc.OpLt:
				r = c < 0
			case hhbc.OpLte:
				r = c <= 0
			}
			fr.push(runtime.Bool(r))
		case hhbc.OpEq, hhbc.OpNeq:
			b, a := fr.pop(), fr.pop()
			r := runtime.LooseEq(a, b)
			h.DecRef(a)
			h.DecRef(b)
			fr.push(runtime.Bool(r == (in.Op == hhbc.OpEq)))
		case hhbc.OpSame, hhbc.OpNSame:
			b, a := fr.pop(), fr.pop()
			r := runtime.StrictEq(a, b)
			h.DecRef(a)
			h.DecRef(b)
			fr.push(runtime.Bool(r == (in.Op == hhbc.OpSame)))
		case hhbc.OpNot:
			a := fr.pop()
			fr.push(runtime.Bool(!a.Bool()))
			h.DecRef(a)

		case hhbc.OpCastBool:
			a := fr.pop()
			fr.push(runtime.Bool(a.Bool()))
			h.DecRef(a)
		case hhbc.OpCastInt:
			a := fr.pop()
			fr.push(runtime.Int(a.ToInt()))
			h.DecRef(a)
		case hhbc.OpCastDouble:
			a := fr.pop()
			fr.push(runtime.Dbl(a.ToDbl()))
			h.DecRef(a)
		case hhbc.OpCastString:
			a := fr.pop()
			if a.Kind == types.KStr {
				fr.push(a)
			} else {
				fr.push(runtime.NewStr(a.ToString()))
				h.DecRef(a)
			}

		case hhbc.OpJmp:
			if int(in.A) <= fr.PC && e.OSRCheck != nil && len(fr.Stack) == 0 {
				fr.PC = int(in.A)
				if e.OSRCheck(fr) {
					return runtime.Null(), ErrOSR
				}
				continue
			}
			fr.PC = int(in.A)
			continue
		case hhbc.OpJmpZ:
			v := fr.pop()
			b := v.Bool()
			h.DecRef(v)
			if !b {
				fr.PC = int(in.A)
				continue
			}
		case hhbc.OpJmpNZ:
			v := fr.pop()
			b := v.Bool()
			h.DecRef(v)
			if b {
				if int(in.A) <= fr.PC && e.OSRCheck != nil && len(fr.Stack) == 0 {
					fr.PC = int(in.A)
					if e.OSRCheck(fr) {
						return runtime.Null(), ErrOSR
					}
					continue
				}
				fr.PC = int(in.A)
				continue
			}
		case hhbc.OpSwitch:
			v := fr.pop()
			i := v.ToInt()
			h.DecRef(v)
			sw := fr.Fn.Switches[in.A]
			if i >= sw.Base && i < sw.Base+int64(len(sw.Targets)) {
				fr.PC = sw.Targets[i-sw.Base]
			} else {
				fr.PC = sw.Default
			}
			continue

		case hhbc.OpRetC:
			ret := fr.pop()
			fr.release(e)
			fr.PC = -1
			return ret, nil

		case hhbc.OpThrow:
			v := fr.pop()
			if v.Kind != types.KObj {
				h.DecRef(v)
				return runtime.Null(), runtime.NewError("can only throw objects")
			}
			return runtime.Null(), runtime.Thrown(v.O)
		case hhbc.OpCatch:
			if fr.pendingExc == nil {
				return runtime.Null(), runtime.NewError("Catch with no pending exception")
			}
			fr.push(runtime.ObjV(fr.pendingExc))
			fr.pendingExc = nil
		case hhbc.OpFatal:
			return runtime.Null(), runtime.NewError("%s", u.Strings[in.A])

		case hhbc.OpNewArray:
			fr.push(runtime.ArrV(runtime.NewMixed()))
		case hhbc.OpNewPackedArray:
			n := int(in.A)
			elems := make([]runtime.Value, n)
			copy(elems, fr.Stack[len(fr.Stack)-n:])
			fr.Stack = fr.Stack[:len(fr.Stack)-n]
			fr.push(runtime.ArrV(runtime.NewPacked(elems)))
		case hhbc.OpAddElemC:
			val, key, arrv := fr.pop(), fr.pop(), fr.pop()
			if arrv.Kind != types.KArr {
				h.DecRef(val)
				h.DecRef(key)
				h.DecRef(arrv)
				return runtime.Null(), runtime.NewError("AddElemC on non-array")
			}
			na := arrv.A.Set(h, key, val)
			h.DecRef(key)
			fr.push(runtime.ArrV(na))
		case hhbc.OpAddNewElemC:
			val, arrv := fr.pop(), fr.pop()
			if arrv.Kind != types.KArr {
				h.DecRef(val)
				h.DecRef(arrv)
				return runtime.Null(), runtime.NewError("AddNewElemC on non-array")
			}
			fr.push(runtime.ArrV(arrv.A.Append(h, val)))

		case hhbc.OpArrIdx:
			key, arrv := fr.pop(), fr.pop()
			if arrv.Kind != types.KArr {
				h.DecRef(key)
				h.DecRef(arrv)
				return runtime.Null(), runtime.NewError("cannot index non-array")
			}
			el, _ := arrv.A.Get(key)
			if el.Kind == types.KUninit {
				el = runtime.Null()
			}
			h.IncRef(el)
			h.DecRef(key)
			h.DecRef(arrv)
			fr.push(el)
		case hhbc.OpArrGetL:
			key := fr.pop()
			lv := fr.Locals[in.A]
			if lv.Kind != types.KArr {
				h.DecRef(key)
				return runtime.Null(), runtime.NewError("cannot index non-array local $%s",
					localName(fr.Fn, in.A))
			}
			el, _ := lv.A.Get(key)
			if el.Kind == types.KUninit {
				el = runtime.Null()
			}
			h.IncRef(el)
			h.DecRef(key)
			fr.push(el)
		case hhbc.OpArrSetL:
			key, val := fr.pop(), fr.pop()
			lv := fr.Locals[in.A]
			if lv.Kind == types.KUninit || lv.Kind == types.KNull {
				// Auto-vivify: $a[k] = v on an unset local makes an array.
				lv = runtime.ArrV(runtime.NewMixed())
				fr.Locals[in.A] = lv
			}
			if lv.Kind != types.KArr {
				h.DecRef(key)
				h.DecRef(val)
				return runtime.Null(), runtime.NewError("cannot write index of non-array")
			}
			fr.Locals[in.A] = runtime.ArrV(lv.A.Set(h, key, val))
			h.DecRef(key)
		case hhbc.OpArrAppendL:
			val := fr.pop()
			lv := fr.Locals[in.A]
			if lv.Kind == types.KUninit || lv.Kind == types.KNull {
				lv = runtime.ArrV(runtime.NewPacked(nil))
				fr.Locals[in.A] = lv
			}
			if lv.Kind != types.KArr {
				h.DecRef(val)
				return runtime.Null(), runtime.NewError("cannot append to non-array")
			}
			fr.Locals[in.A] = runtime.ArrV(lv.A.Append(h, val))
		case hhbc.OpArrUnsetL:
			key := fr.pop()
			lv := fr.Locals[in.A]
			if lv.Kind == types.KArr {
				fr.Locals[in.A] = runtime.ArrV(lv.A.Remove(h, key))
			}
			h.DecRef(key)
		case hhbc.OpAKExistsL:
			key := fr.pop()
			lv := fr.Locals[in.A]
			ok := false
			if lv.Kind == types.KArr {
				_, ok = lv.A.Get(key)
			}
			h.DecRef(key)
			fr.push(runtime.Bool(ok))

		case hhbc.OpIterInitL:
			lv := fr.Locals[in.C]
			if lv.Kind != types.KArr || lv.A.Len() == 0 {
				fr.PC = int(in.B)
				continue
			}
			h.IncRef(lv)
			fr.setIter(in.A, runtime.NewIter(lv.A))
		case hhbc.OpIterNext:
			it := fr.iter(in.A)
			if it != nil && it.Next() {
				fr.PC = int(in.B)
				continue
			}
			// exhausted: fall through to IterFree
		case hhbc.OpIterKey:
			it := fr.iter(in.A)
			k := it.Key()
			h.IncRef(k)
			fr.push(k)
		case hhbc.OpIterValue:
			it := fr.iter(in.A)
			v := it.Val()
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			h.IncRef(v)
			fr.push(v)
		case hhbc.OpIterFree:
			it := fr.iter(in.A)
			if it != nil {
				h.DecRef(runtime.ArrV(it.Arr()))
				fr.setIter(in.A, nil)
			}

		case hhbc.OpFCallD:
			name := u.Strings[in.B]
			ret, err := e.fcallD(fr, name, int(in.A))
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(ret)
		case hhbc.OpFCallBuiltin:
			ret, err := e.fcallBuiltin(fr, u.Strings[in.B], int(in.A))
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(ret)
		case hhbc.OpFCallObjMethodD:
			ret, err := e.fcallMethod(fr, u.Strings[in.B], int(in.A))
			if err != nil {
				return runtime.Null(), err
			}
			fr.push(ret)

		case hhbc.OpNewObjD:
			cls, ok := e.Classes[u.Strings[in.A]]
			if !ok {
				return runtime.Null(), runtime.NewError("class %s not found", u.Strings[in.A])
			}
			fr.push(runtime.ObjV(e.NewInstance(cls)))
		case hhbc.OpThis:
			if fr.This == nil {
				return runtime.Null(), runtime.NewError("using $this outside object context")
			}
			v := runtime.ObjV(fr.This)
			h.IncRef(v)
			fr.push(v)
		case hhbc.OpCGetPropD:
			ov := fr.pop()
			if ov.Kind != types.KObj {
				h.DecRef(ov)
				return runtime.Null(), runtime.NewError("property access on non-object")
			}
			p := runtime.GetPropNamed(h, ov.O, u.Strings[in.A])
			h.DecRef(ov)
			fr.push(p)
		case hhbc.OpSetPropD:
			val, ov := fr.pop(), fr.pop()
			if ov.Kind != types.KObj {
				h.DecRef(val)
				h.DecRef(ov)
				return runtime.Null(), runtime.NewError("property write on non-object")
			}
			h.IncRef(val) // one ref into the prop, one back on the stack
			if err := runtime.SetPropNamed(h, ov.O, u.Strings[in.A], val); err != nil {
				h.DecRef(val)
				h.DecRef(ov)
				return runtime.Null(), runtime.NewError("%s", err.Error())
			}
			h.DecRef(ov)
			fr.push(val)
		case hhbc.OpInstanceOfD:
			v := fr.pop()
			r := v.Kind == types.KObj && v.O.Class.IsSubclassOf(u.Strings[in.A])
			h.DecRef(v)
			fr.push(runtime.Bool(r))
		case hhbc.OpVerifyParamType:
			if err := e.verifyParam(fr, int(in.A)); err != nil {
				return runtime.Null(), err
			}

		case hhbc.OpPrint:
			v := fr.pop()
			if e.Out != nil {
				fmt.Fprint(e.Out, v.ToString())
			}
			h.DecRef(v)
			fr.push(runtime.Int(1))

		default:
			return runtime.Null(), runtime.NewError("unimplemented opcode %s", in.Op)
		}
		fr.PC++
	}
}

func localName(f *hhbc.Func, slot int32) string {
	if int(slot) < len(f.LocalName) {
		return f.LocalName[slot]
	}
	return fmt.Sprintf("<%d>", slot)
}

func (e *Env) incDecL(fr *Frame, in hhbc.Instr) (runtime.Value, error) {
	lv := fr.Locals[in.A]
	var oldv, newv runtime.Value
	switch lv.Kind {
	case types.KInt:
		oldv = lv
		delta := int64(1)
		if in.B == hhbc.PreDec || in.B == hhbc.PostDec {
			delta = -1
		}
		newv = runtime.Int(lv.I + delta)
	case types.KDbl:
		oldv = lv
		delta := 1.0
		if in.B == hhbc.PreDec || in.B == hhbc.PostDec {
			delta = -1
		}
		newv = runtime.Dbl(lv.D + delta)
	case types.KNull, types.KUninit:
		oldv = runtime.Null()
		if in.B == hhbc.PreInc || in.B == hhbc.PostInc {
			newv = runtime.Int(1) // PHP: null++ is 1, null-- stays null
		} else {
			newv = runtime.Null()
		}
	default:
		return runtime.Null(), runtime.NewError("cannot increment/decrement %s", lv.Type())
	}
	fr.Locals[in.A] = newv
	if in.B == hhbc.PostInc || in.B == hhbc.PostDec {
		return oldv, nil
	}
	return newv, nil
}

func (e *Env) popArgs(fr *Frame, n int) []runtime.Value {
	args := make([]runtime.Value, n)
	copy(args, fr.Stack[len(fr.Stack)-n:])
	fr.Stack = fr.Stack[:len(fr.Stack)-n]
	return args
}

func (e *Env) fcallD(fr *Frame, name string, nargs int) (runtime.Value, error) {
	args := e.popArgs(fr, nargs)
	if f, ok := e.Unit.FuncByName(name); ok {
		return e.Call(f, nil, args)
	}
	// Fall back to a builtin of the same name.
	if b, ok := runtime.LookupBuiltin(lowerName(name)); ok {
		return e.callBuiltin(b, args)
	}
	for _, a := range args {
		e.Heap.DecRef(a)
	}
	return runtime.Null(), runtime.NewError("call to undefined function %s()", name)
}

func (e *Env) fcallBuiltin(fr *Frame, name string, nargs int) (runtime.Value, error) {
	args := e.popArgs(fr, nargs)
	b, ok := runtime.LookupBuiltin(name)
	if !ok {
		// A user function may shadow an unknown builtin reference.
		if f, okf := e.Unit.FuncByName(name); okf {
			return e.Call(f, nil, args)
		}
		for _, a := range args {
			e.Heap.DecRef(a)
		}
		return runtime.Null(), runtime.NewError("call to undefined builtin %s()", name)
	}
	return e.callBuiltin(b, args)
}

func (e *Env) callBuiltin(b *runtime.Builtin, args []runtime.Value) (runtime.Value, error) {
	if b.Arity >= 0 && len(args) != b.Arity {
		for _, a := range args {
			e.Heap.DecRef(a)
		}
		return runtime.Null(), runtime.NewError("%s() expects %d arguments, %d given",
			b.Name, b.Arity, len(args))
	}
	if e.Meter != nil {
		e.Meter.Charge(b.Cost)
	}
	ctx := &runtime.BuiltinCtx{Heap: e.Heap, Out: e.Out}
	ret, err := b.Fn(ctx, args)
	for _, a := range args {
		e.Heap.DecRef(a)
	}
	return ret, err
}

func (e *Env) fcallMethod(fr *Frame, name string, nargs int) (runtime.Value, error) {
	args := e.popArgs(fr, nargs)
	ov := fr.pop()
	if ov.Kind != types.KObj {
		for _, a := range args {
			e.Heap.DecRef(a)
		}
		e.Heap.DecRef(ov)
		return runtime.Null(), runtime.NewError("method call on non-object (%s)", ov.Type())
	}
	obj := ov.O
	id, ok := obj.Class.LookupMethod(lowerName(name))
	if !ok {
		e.Heap.DecRef(ov)
		if lowerName(name) == "__construct" {
			for _, a := range args {
				e.Heap.DecRef(a)
			}
			return runtime.Null(), nil // implicit default constructor
		}
		for _, a := range args {
			e.Heap.DecRef(a)
		}
		return runtime.Null(), runtime.NewError("call to undefined method %s::%s()",
			obj.Class.Name, name)
	}
	ret, err := e.Call(e.Unit.Funcs[id], obj, args)
	e.Heap.DecRef(ov)
	return ret, err
}

// VerifyParamHint re-checks a parameter's shallow type hint (used by
// the JIT's VerifyParam helper).
func (e *Env) VerifyParamHint(fr *Frame, idx int) error { return e.verifyParam(fr, idx) }

func (e *Env) verifyParam(fr *Frame, idx int) error {
	p := fr.Fn.Params[idx]
	v := fr.Locals[idx]
	if p.Nullable && v.IsNull() {
		return nil
	}
	ok := false
	switch p.TypeHint {
	case "int":
		ok = v.Kind == types.KInt
	case "float":
		ok = v.Kind == types.KDbl || v.Kind == types.KInt
		if v.Kind == types.KInt {
			fr.Locals[idx] = runtime.Dbl(float64(v.I)) // PHP widens
		}
	case "string":
		ok = v.Kind == types.KStr
	case "bool":
		ok = v.Kind == types.KBool
	case "array":
		ok = v.Kind == types.KArr
	case "":
		ok = true
	default: // class hint
		ok = v.Kind == types.KObj && v.O.Class.IsSubclassOf(p.TypeHint)
	}
	if !ok {
		return runtime.NewError("argument %d ($%s) of %s() must be of type %s, %s given",
			idx+1, p.Name, fr.Fn.FullName(), p.TypeHint, v.Type())
	}
	return nil
}
