package runtime

import "repro/internal/types"

// Array is the guest array. PHP arrays are ordered maps with value
// semantics implemented by copy-on-write: mutation of an array whose
// refcount exceeds one first clones it. Like HHVM, two layouts exist:
//
//   - packed: keys are exactly 0..n-1, elements in a slice;
//   - mixed: an insertion-ordered hash of int and string keys.
//
// The JIT specializes array access on the layout kind.
type Array struct {
	refs int32

	// packed layout (used iff mixed == nil)
	elems []Value

	// mixed layout
	mixed   map[arrayKey]int // key -> index into entries
	entries []arrayEntry     // insertion order; deleted entries tombstoned
	nextIdx int64            // next automatic integer key
	live    int              // non-tombstoned entry count
}

type arrayKey struct {
	s     string
	i     int64
	isStr bool
}

type arrayEntry struct {
	key  arrayKey
	val  Value
	dead bool
}

// NewPacked returns a fresh packed array taking ownership of elems
// (their refcounts are not changed).
func NewPacked(elems []Value) *Array {
	return &Array{refs: 1, elems: elems}
}

// NewMixed returns a fresh empty mixed array.
func NewMixed() *Array {
	return &Array{refs: 1, mixed: make(map[arrayKey]int)}
}

// IsPacked reports the layout kind.
func (a *Array) IsPacked() bool { return a.mixed == nil }

// Kind returns the types-level array kind.
func (a *Array) Kind() types.ArrayKind {
	if a.IsPacked() {
		return types.ArrayPacked
	}
	return types.ArrayMixed
}

// Len returns the element count.
func (a *Array) Len() int {
	if a.IsPacked() {
		return len(a.elems)
	}
	return a.live
}

// Refs returns the current reference count.
func (a *Array) Refs() int32 { return a.refs }

func keyOf(v Value) arrayKey {
	if v.Kind == types.KStr {
		return arrayKey{s: v.S.Data, isStr: true}
	}
	return arrayKey{i: v.ToInt()}
}

// Get returns the element at key and whether it exists. The returned
// value's refcount is NOT incremented; callers that retain it must
// IncRef.
func (a *Array) Get(key Value) (Value, bool) {
	if a.IsPacked() {
		if key.Kind == types.KInt || key.Kind == types.KBool || key.Kind == types.KDbl {
			i := key.ToInt()
			if i >= 0 && i < int64(len(a.elems)) {
				return a.elems[i], true
			}
		}
		return Uninit(), false
	}
	if idx, ok := a.mixed[keyOf(key)]; ok {
		return a.entries[idx].val, true
	}
	return Uninit(), false
}

// GetIntKey is the packed fast path used by specialized JIT code.
func (a *Array) GetIntKey(i int64) (Value, bool) {
	if a.IsPacked() {
		if i >= 0 && i < int64(len(a.elems)) {
			return a.elems[i], true
		}
		return Uninit(), false
	}
	if idx, ok := a.mixed[arrayKey{i: i}]; ok {
		return a.entries[idx].val, true
	}
	return Uninit(), false
}

// cowed returns the array to mutate: a itself when uniquely
// referenced, otherwise a fresh clone with refcount 1 (the caller owns
// rebinding it). Element refcounts are bumped because the clone shares
// them. The heap records the copy for COW-observability tests.
func (a *Array) cowed(h *Heap) *Array {
	if a.refs <= 1 {
		return a
	}
	h.CowCopies++
	cl := a.clone()
	return cl
}

func (a *Array) clone() *Array {
	cl := &Array{refs: 1, nextIdx: a.nextIdx, live: a.live}
	if a.IsPacked() {
		cl.elems = make([]Value, len(a.elems))
		copy(cl.elems, a.elems)
		for _, v := range cl.elems {
			incRefVal(v)
		}
		return cl
	}
	cl.mixed = make(map[arrayKey]int, len(a.mixed))
	for k, v := range a.mixed {
		cl.mixed[k] = v
	}
	cl.entries = make([]arrayEntry, len(a.entries))
	copy(cl.entries, a.entries)
	for _, e := range cl.entries {
		if !e.dead {
			incRefVal(e.val)
		}
	}
	return cl
}

// escalate converts a packed array to mixed layout in place.
func (a *Array) escalate() {
	if !a.IsPacked() {
		return
	}
	a.mixed = make(map[arrayKey]int, len(a.elems))
	a.entries = make([]arrayEntry, 0, len(a.elems))
	for i, v := range a.elems {
		k := arrayKey{i: int64(i)}
		a.mixed[k] = len(a.entries)
		a.entries = append(a.entries, arrayEntry{key: k, val: v})
	}
	a.live = len(a.elems)
	a.nextIdx = int64(len(a.elems))
	a.elems = nil
}

// Set stores val at key with COW, returning the array to rebind
// (possibly a clone). It consumes the caller's reference to val and
// releases any overwritten element.
func (a *Array) Set(h *Heap, key Value, val Value) *Array {
	out := a.cowed(h)
	if out != a {
		h.decArrayRef(a)
	}
	if out.IsPacked() {
		if key.Kind == types.KInt || key.Kind == types.KBool {
			i := key.ToInt()
			if i >= 0 && i < int64(len(out.elems)) {
				old := out.elems[i]
				out.elems[i] = val
				h.DecRef(old)
				return out
			}
			if i == int64(len(out.elems)) {
				out.elems = append(out.elems, val)
				return out
			}
		}
		out.escalate()
	}
	k := keyOf(key)
	if idx, ok := out.mixed[k]; ok {
		old := out.entries[idx].val
		out.entries[idx].val = val
		h.DecRef(old)
		return out
	}
	out.mixed[k] = len(out.entries)
	out.entries = append(out.entries, arrayEntry{key: k, val: val})
	out.live++
	if !k.isStr && k.i >= out.nextIdx {
		out.nextIdx = k.i + 1
	}
	return out
}

// Append adds val with the next integer key (the PHP `$a[] = $v`
// form), with COW. Consumes the caller's reference to val.
func (a *Array) Append(h *Heap, val Value) *Array {
	out := a.cowed(h)
	if out != a {
		h.decArrayRef(a)
	}
	if out.IsPacked() {
		out.elems = append(out.elems, val)
		return out
	}
	k := arrayKey{i: out.nextIdx}
	out.nextIdx++
	out.mixed[k] = len(out.entries)
	out.entries = append(out.entries, arrayEntry{key: k, val: val})
	out.live++
	return out
}

// Remove deletes key with COW.
func (a *Array) Remove(h *Heap, key Value) *Array {
	out := a.cowed(h)
	if out != a {
		h.decArrayRef(a)
	}
	if out.IsPacked() {
		i := key.ToInt()
		if key.Kind != types.KInt || i < 0 || i >= int64(len(out.elems)) {
			return out
		}
		if i == int64(len(out.elems))-1 {
			h.DecRef(out.elems[i])
			out.elems = out.elems[:i]
			return out
		}
		out.escalate()
	}
	k := keyOf(key)
	if idx, ok := out.mixed[k]; ok {
		h.DecRef(out.entries[idx].val)
		out.entries[idx].dead = true
		out.entries[idx].val = Uninit()
		delete(out.mixed, k)
		out.live--
	}
	return out
}

// Each iterates live entries in insertion order. The callback gets
// borrowed references.
func (a *Array) Each(f func(key Value, val Value) bool) {
	if a.IsPacked() {
		for i, v := range a.elems {
			if !f(Int(int64(i)), v) {
				return
			}
		}
		return
	}
	for _, e := range a.entries {
		if e.dead {
			continue
		}
		if !f(e.key.Value(), e.val) {
			return
		}
	}
}

// Value materializes an arrayKey as a guest value. String keys are
// interned (static) since they originate from guest strings anyway.
func (k arrayKey) Value() Value {
	if k.isStr {
		return StrV(InternStr(k.s))
	}
	return Int(k.i)
}

// Iter is a stable iterator over an array, used by the foreach
// bytecodes. It holds its own reference to the array.
type Iter struct {
	arr *Array
	pos int
}

// NewIter starts an iterator; the caller transfers one reference of
// arr to the iterator.
func NewIter(arr *Array) *Iter { return &Iter{arr: arr} }

// Valid reports whether the iterator points at a live entry,
// advancing past tombstones.
func (it *Iter) Valid() bool {
	if it.arr.IsPacked() {
		return it.pos < len(it.arr.elems)
	}
	for it.pos < len(it.arr.entries) && it.arr.entries[it.pos].dead {
		it.pos++
	}
	return it.pos < len(it.arr.entries)
}

// Next advances; returns whether still valid.
func (it *Iter) Next() bool {
	it.pos++
	return it.Valid()
}

// Key and Val return borrowed references to the current entry.
func (it *Iter) Key() Value {
	if it.arr.IsPacked() {
		return Int(int64(it.pos))
	}
	return it.arr.entries[it.pos].key.Value()
}

func (it *Iter) Val() Value {
	if it.arr.IsPacked() {
		return it.arr.elems[it.pos]
	}
	return it.arr.entries[it.pos].val
}

// Arr returns the underlying array (for releasing at IterFree).
func (it *Iter) Arr() *Array { return it.arr }
