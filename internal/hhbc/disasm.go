package hhbc

import (
	"fmt"
	"strings"
)

// Disassemble renders f against u's pools in a format close to the
// paper's Figure 3 listings.
func Disassemble(u *Unit, f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".function %s(", f.FullName())
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		if p.TypeHint != "" {
			if p.Nullable {
				sb.WriteString("?")
			}
			sb.WriteString(p.TypeHint + " ")
		}
		sb.WriteString("$" + p.Name)
	}
	fmt.Fprintf(&sb, ") numLocals=%d {\n", f.NumLocals)
	for pc, in := range f.Instrs {
		fmt.Fprintf(&sb, "  %4d: %s\n", pc, FormatInstr(u, f, in))
	}
	for _, eh := range f.EHTable {
		fmt.Fprintf(&sb, "  .try [%d,%d) -> %d\n", eh.Start, eh.End, eh.Handler)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FormatInstr renders one instruction with pool immediates resolved.
func FormatInstr(u *Unit, f *Func, in Instr) string {
	local := func(i int32) string {
		if int(i) < len(f.LocalName) && f.LocalName[i] != "" {
			return fmt.Sprintf("L:%d($%s)", i, f.LocalName[i])
		}
		return fmt.Sprintf("L:%d", i)
	}
	str := func(i int32) string {
		if int(i) < len(u.Strings) {
			return fmt.Sprintf("%q", u.Strings[i])
		}
		return fmt.Sprintf("str#%d", i)
	}
	switch in.Op {
	case OpInt:
		return fmt.Sprintf("Int %d", u.Ints[in.A])
	case OpDouble:
		return fmt.Sprintf("Double %g", u.Doubles[in.A])
	case OpString, OpFatal:
		return fmt.Sprintf("%s %s", in.Op, str(in.A))
	case OpCGetL, OpCGetL2, OpPopL, OpSetL, OpPushL, OpUnsetL,
		OpArrGetL, OpArrSetL, OpArrAppendL, OpArrUnsetL, OpAKExistsL:
		return fmt.Sprintf("%s %s", in.Op, local(in.A))
	case OpIncDecL:
		names := [...]string{"PreInc", "PostInc", "PreDec", "PostDec"}
		return fmt.Sprintf("IncDecL %s %s", local(in.A), names[in.B])
	case OpAssertRATL:
		return fmt.Sprintf("AssertRATL %s %s", local(in.A), u.DecodeRAT(in.B, in.C))
	case OpAssertRAStk:
		return fmt.Sprintf("AssertRAStk %d %s", in.A, u.DecodeRAT(in.B, in.C))
	case OpIsTypeL:
		return fmt.Sprintf("IsTypeL %s %s", local(in.A), u.DecodeRAT(in.B, 0))
	case OpJmp, OpJmpZ, OpJmpNZ:
		return fmt.Sprintf("%s -> %d", in.Op, in.A)
	case OpSwitch:
		return fmt.Sprintf("Switch table#%d", in.A)
	case OpIterInitL:
		return fmt.Sprintf("IterInitL it:%d exit->%d %s", in.A, in.B, local(in.C))
	case OpIterNext:
		return fmt.Sprintf("IterNext it:%d body->%d", in.A, in.B)
	case OpIterKey, OpIterValue, OpIterFree:
		return fmt.Sprintf("%s it:%d", in.Op, in.A)
	case OpFCallD, OpFCallBuiltin, OpFCallObjMethodD:
		return fmt.Sprintf("%s <%d args> %s", in.Op, in.A, str(in.B))
	case OpNewObjD, OpInstanceOfD, OpCGetPropD, OpSetPropD:
		return fmt.Sprintf("%s %s", in.Op, str(in.A))
	case OpNewPackedArray:
		return fmt.Sprintf("NewPackedArray %d", in.A)
	case OpVerifyParamType:
		return fmt.Sprintf("VerifyParamType %d", in.A)
	default:
		return in.String()
	}
}
