// Command hhbcdump compiles a PHP-subset source file ahead of time
// and prints the HHBC disassembly (optionally after serializing
// through the binary repo format, exercising the deployment path of
// Figure 1).
//
// Usage:
//
//	hhbcdump [-roundtrip] [-no-hhbbc] file.php
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hhbc"
)

func main() {
	roundtrip := flag.Bool("roundtrip", false, "encode+decode through the binary repo format first")
	noHHBBC := flag.Bool("no-hhbbc", false, "skip the bytecode-to-bytecode optimizer")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hhbcdump [flags] file.php")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	unit, err := core.Compile(string(src), core.CompileOptions{SkipHHBBC: *noHHBBC})
	if err != nil {
		fatal(err)
	}
	if *roundtrip {
		blob := hhbc.EncodeUnit(unit)
		fmt.Fprintf(os.Stderr, "repo blob: %d bytes\n", len(blob))
		unit, err = hhbc.DecodeUnit(blob)
		if err != nil {
			fatal(err)
		}
	}
	for _, f := range unit.Funcs {
		fmt.Print(hhbc.Disassemble(unit, f))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hhbcdump:", err)
	os.Exit(1)
}
