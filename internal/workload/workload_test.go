package workload_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/workload"
)

// TestEndpointsRunStandalone compiles and runs every endpoint alone.
func TestEndpointsRunStandalone(t *testing.T) {
	for _, ep := range workload.Suite() {
		out, err := core.Run(ep.Src, jit.Config{Mode: jit.ModeInterp})
		if err != nil {
			t.Errorf("%s: %v", ep.Name, err)
			continue
		}
		if out == "" {
			t.Errorf("%s: produced no output", ep.Name)
		}
	}
}

// TestCombinedMatchesStandalone checks that the combined unit's
// endpoint wrappers produce the same output as the standalone
// programs.
func TestCombinedMatchesStandalone(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatalf("combined compile: %v", err)
	}
	var sink strings.Builder
	eng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		want, err := core.Run(ep.Src, jit.Config{Mode: jit.ModeInterp})
		if err != nil {
			t.Fatalf("%s standalone: %v", ep.Name, err)
		}
		var out strings.Builder
		eng.VM.SetOut(&out)
		if _, err := eng.Call(workload.EndpointFunc(ep.Name)); err != nil {
			t.Errorf("%s combined: %v", ep.Name, err)
			continue
		}
		if out.String() != want {
			t.Errorf("%s: combined %q != standalone %q", ep.Name, out.String(), want)
		}
	}
}

// TestWeightsSum checks the traffic shares are a distribution.
func TestWeightsSum(t *testing.T) {
	var sum float64
	for _, ep := range workload.Suite() {
		if ep.Weight <= 0 {
			t.Errorf("%s: non-positive weight", ep.Name)
		}
		sum += ep.Weight
	}
	if sum < 0.95 || sum > 1.05 {
		t.Errorf("weights sum to %v, want ~1.0", sum)
	}
}
