// The paper's running example (Figure 2): avgPositive over arrays of
// ints and doubles. This example shows the compilation artifacts the
// paper's figures discuss: the HHBC bytecode (Figure 3), the
// profiling tracelets with their type guards (Figure 4), and the
// final mode comparison.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/hhbc"
	"repro/internal/jit"
)

const src = `
function avgPositive($arr) {
  $sum = 0;
  $n = 0;
  $size = count($arr);
  for ($i = 0; $i < $size; $i++) {
    $elem = $arr[$i];
    if ($elem > 0) {
      $sum = $sum + $elem;
      $n++;
    }
  }
  if ($n == 0) {
    throw new Exception("no positive numbers");
  }
  return $sum / $n;
}
echo avgPositive([1, -2, 3, 4]), "\n";
echo avgPositive([1.5, -0.5, 2.5]), "\n";
echo avgPositive([1, 2.5, 3]), "\n";
`

func main() {
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 3 flavor: the bytecode for avgPositive.
	f, _ := unit.FuncByName("avgPositive")
	fmt.Println("--- HHBC for avgPositive (compare the paper's Figure 3) ---")
	fmt.Print(hhbc.Disassemble(unit, f))

	// Figure 8 flavor: steady-state cost per mode.
	fmt.Println("\n--- execution-mode comparison (compare Figure 8) ---")
	for _, mode := range []jit.Mode{jit.ModeInterp, jit.ModeTracelet, jit.ModeRegion} {
		cfg := jit.DefaultConfig()
		cfg.Mode = mode
		cfg.ProfileTrigger = 30
		eng, err := core.NewEngine(unit, cfg, io.Discard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var last uint64
		for i := 0; i < 25; i++ {
			last, err = eng.RunRequest(io.Discard)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("%-10s %8d cycles/request\n", mode, last)
	}

	fmt.Println("\n--- program output ---")
	eng, _ := core.NewEngine(unit, jit.DefaultConfig(), os.Stdout)
	if _, err := eng.RunRequest(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
