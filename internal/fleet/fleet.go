package fleet

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/perflab"
	"repro/internal/sentry"
	"repro/internal/server"
	"repro/internal/workload"
)

// Config tunes the fleet simulation.
type Config struct {
	// Hosts is the fleet size; Minutes the simulated horizon.
	Hosts   int
	Minutes int
	// CyclesPerMinute is one full-capacity host's compute budget per
	// simulated minute (scaled per host by its capacity factor).
	CyclesPerMinute uint64
	// JIT configures every host's engine.
	JIT jit.Config
	// Seed drives traffic sampling; runs with equal seeds are
	// bit-identical.
	Seed int64
	// Utilization is steady-state fleet demand as a fraction of fleet
	// capacity (the headroom is what absorbs deploy spillover).
	Utilization float64

	// Traffic model: a Users-sized simulated population with Zipfian
	// activity (UserZipfS) hitting endpoints with Zipfian popularity
	// (EndpointZipfS), modulated by a diurnal sinusoid of amplitude
	// DiurnalAmp over DiurnalPeriod minutes (0 period = flat).
	Users         int
	UserZipfS     float64
	EndpointZipfS float64
	DiurnalAmp    float64
	DiurnalPeriod int

	// Load balancer: UniformFraction of traffic is sprayed evenly
	// across healthy hosts (the round-robin tier); the rest routes
	// weighted least-loaded. CapacitySpread staggers per-host capacity
	// factors (hardware generations): host i runs at
	// 1 - CapacitySpread*(i%3)/2 of full speed.
	UniformFraction float64
	CapacitySpread  float64

	// Aggregator: every PublishEvery minutes each live host ships its
	// profile snapshot and the service merges the round at decay
	// AggDecay. PublishEvery <= 0 disables the aggregator entirely.
	PublishEvery int
	AggDecay     float64

	// Rolling restart: starting at minute RestartAt (0 disables),
	// every RestartStagger minutes the next host is taken down for
	// RestartDown minutes. RestartCount limits how many hosts restart
	// (0 = the whole fleet). WarmRestart hands each rejoining host the
	// aggregator's warm aggregate; otherwise hosts rejoin cold.
	RestartAt      int
	RestartStagger int
	RestartDown    int
	RestartCount   int
	WarmRestart    bool

	// Overload: demand is multiplied by OverloadFactor during
	// [OverloadAt, OverloadAt+OverloadMinutes). Shedding (on unless
	// DisableShed) walks a host down the PR 5 degradation ladder one
	// rung per minute while its assigned load exceeds ShedRatio× its
	// capacity, and drops queue beyond one minute of work; with
	// shedding disabled a host whose backlog passes DeathBacklog×
	// capacity dies and leaves the rotation for good.
	OverloadFactor  float64
	OverloadAt      int
	OverloadMinutes int
	DisableShed     bool
	ShedRatio       float64
	DeathBacklog    float64

	// CompileWorkers > 1 fans each host's JIT backend compiles over
	// that many goroutines under per-function translation leases
	// (plumbed into JIT.CompileWorkers). 0 keeps whatever JIT says.
	CompileWorkers int

	// VerifySample, when > 0, attaches a sentry monitor to every
	// host: that fraction of its requests is shadow-executed and
	// compared, its code cache is audited one chunk per minute, and a
	// host that produces a verified divergence is pushed one rung
	// down the degradation ladder so the balancer shifts traffic away
	// while the culprit translation sits in quarantine.
	VerifySample float64
}

// DefaultConfig is an 8-host fleet over the paper's 30-minute-style
// window, aggregator on, no deploy or overload scheduled.
func DefaultConfig() Config {
	c := Config{
		Hosts:           8,
		Minutes:         24,
		CyclesPerMinute: 2_500_000,
		JIT:             jit.DefaultConfig(),
		Seed:            1,
		Utilization:     0.62,
		Users:           2_000_000,
		UserZipfS:       1.4,
		EndpointZipfS:   1.2,
		DiurnalAmp:      0.2,
		DiurnalPeriod:   24,
		UniformFraction: 0.25,
		CapacitySpread:  0.15,
		PublishEvery:    2,
		AggDecay:        0.9,
		RestartStagger:  1,
		RestartDown:     1,
		OverloadFactor:  2,
		ShedRatio:       1.15,
		DeathBacklog:    3,
	}
	// Each host sees roughly 1/Hosts of the traffic internal/server
	// pushes through one engine, so the profiling trigger is scaled
	// down to keep per-host warmup on the same few-minute timescale.
	c.JIT.ProfileTrigger = 9000
	return c
}

// recoverRatio: a host leaves the shed ladder once its assigned load
// falls back below this fraction of capacity.
const recoverRatio = 0.95

// host is one simulated server in the rotation.
type host struct {
	id        int
	capFactor float64
	// capacityRPS is requests/minute at full optimized speed;
	// steadyRPS is the host's share of steady-state demand (the 100%
	// line of its warmup curve).
	capacityRPS float64
	steadyRPS   float64

	eng     *core.Engine
	stream  *workload.Stream
	backlog float64
	downFor int
	died    bool

	// mon is the host's sentry monitor (nil when verification is
	// off); lastDiv tracks divergences already reacted to, so each
	// new one demotes the host exactly once.
	mon     *sentry.Monitor
	lastDiv uint64

	// warmCycles is the jumpstart-load cost charged against the next
	// serving minute's budget.
	warmCycles uint64
	// restartMinute is the minute the host last (re)joined; to90 its
	// warmup metric since then (server.MinutesTo90Never until hit).
	restartMinute int
	to90          float64
	sawOpt        bool
	maxDegrade    int32
	// lastRestart indexes Result.Restarts for backfilling to90.
	lastRestart int

	pendingEvent string
	samples      []HostSample
}

func (h *host) routable() bool { return h.eng != nil && h.downFor == 0 && !h.died }

// HostSample is one minute of one host's timeline.
type HostSample struct {
	Minute float64
	// RPSPct is requests served relative to the host's steady share
	// (100 = steady).
	RPSPct float64
	// AssignedPct is the load the balancer routed here relative to
	// host capacity (over 100 = overloaded).
	AssignedPct float64
	// Backlog is the request queue carried into the next minute.
	Backlog float64
	// Degrade is the degradation-ladder level at minute end.
	Degrade int32
	// CodeBytes is resident JITed code.
	CodeBytes uint64
	// Up reports the host was in rotation this minute.
	Up bool
	// Event concatenates lifecycle letters: "J" warm jumpstart, "C"
	// optimized publish, "R" taken down for restart, "U" rejoined,
	// "S" shed escalation, "V" shed recovery, "X" died, "D" verified
	// divergence (host demoted, culprit quarantined).
	Event string
}

// Sample is one minute of the fleet timeline.
type Sample struct {
	Minute float64
	// OfferedRPS / ServedRPS / ShedRPS / LostRPS are request volumes:
	// offered by the traffic model (plus deploy spillover), served by
	// hosts, dropped by shedding, lost to dead/empty rotations.
	OfferedRPS float64
	ServedRPS  float64
	ShedRPS    float64
	LostRPS    float64
	// CapacityPct is served/offered — the fleet's ability to carry
	// the minute's demand (the rolling-deploy acceptance metric).
	CapacityPct float64
	// FleetRPSPct is served relative to steady-state fleet RPS.
	FleetRPSPct float64
	// HostsUp counts hosts in rotation; MaxDegrade the worst
	// degradation level in the fleet.
	HostsUp    int
	MaxDegrade int32
	// AggStalenessMin is how many minutes the published aggregate
	// lags this minute.
	AggStalenessMin float64
	// Backlog is the fleet-wide queue at minute end.
	Backlog float64
}

// RestartRecord describes one host restart.
type RestartRecord struct {
	Host int
	// DownMinute / UpMinute bracket the out-of-rotation window.
	DownMinute int
	UpMinute   int
	// Warm reports the host rejoined with the aggregator's warm
	// aggregate; LoadedTrans how many profiling translations it
	// re-minted; StalenessMin the aggregate's age at pull time.
	Warm         bool
	LoadedTrans  int
	StalenessMin float64
	// MinutesTo90 is minutes from rejoining to 90% of the host's
	// steady RPS (server.MinutesTo90Never if not reached in-window).
	MinutesTo90 float64
}

// Result is the full fleet timeline plus acceptance metrics.
type Result struct {
	Hosts int
	// FleetSteadyRPS is the calibrated steady-state fleet throughput;
	// HostSteadyRPS each host's share; HostCapacityRPS each host's
	// full-speed capacity.
	FleetSteadyRPS  float64
	HostSteadyRPS   []float64
	HostCapacityRPS []float64

	Samples []Sample
	// HostTimelines[i] is host i's per-minute curve (warmup curves,
	// shed levels).
	HostTimelines [][]HostSample
	Restarts      []RestartRecord

	// MinutesTo90 is the fleet-level warmup metric: first minute
	// fleet throughput reached 90% of steady state
	// (server.MinutesTo90Never if never).
	MinutesTo90 float64

	// Requests / UniqueUsers / Users describe the traffic actually
	// served: total requests, distinct simulated users seen, and the
	// modeled population size.
	Requests    uint64
	UniqueUsers uint64
	Users       int

	// OutputMismatches counts requests whose output differed from the
	// single-host reference (must be 0: fleet serving is bit-identical
	// to single-host serving).
	OutputMismatches uint64

	// ShedRequests / LostRequests / HostsDied summarize overload
	// behavior; MaxDegradePerHost the worst ladder level each host
	// reached.
	ShedRequests      float64
	LostRequests      float64
	HostsDied         int
	MaxDegradePerHost []int32

	Aggregator AggregatorStats
	// Verify sums every host monitor's counters over the run (audit
	// findings, shadow comparisons, divergences, quarantined
	// culprits) when Config.VerifySample was set.
	Verify sentry.Stats
	// WallClock is host-machine time spent simulating (the raw-speed
	// companion to the simulated-cycle numbers).
	WallClock time.Duration
}

// Reached90 reports whether the fleet ever hit 90% of steady RPS.
func (r *Result) Reached90() bool { return r.MinutesTo90 != server.MinutesTo90Never }

// MinCapacityPct returns the minimum CapacityPct over sample minutes
// [from, to) (1-based minutes; to <= 0 means through the end) — the
// rolling-deploy acceptance metric.
func (r *Result) MinCapacityPct(from, to int) float64 {
	min := 100.0
	for _, s := range r.Samples {
		if int(s.Minute) < from || (to > 0 && int(s.Minute) >= to) {
			continue
		}
		if s.CapacityPct < min {
			min = s.CapacityPct
		}
	}
	return min
}

// capFactorFor staggers host capacity (hardware generations).
func capFactorFor(i int, spread float64) float64 {
	return 1 - spread*float64(i%3)/2
}

// Simulate runs the fleet timeline.
func Simulate(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Hosts == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.62
	}
	if cfg.RestartStagger < 1 {
		cfg.RestartStagger = 1
	}
	if cfg.RestartDown < 1 {
		cfg.RestartDown = 1
	}
	if cfg.ShedRatio == 0 {
		cfg.ShedRatio = 1.15
	}
	if cfg.DeathBacklog == 0 {
		cfg.DeathBacklog = 3
	}
	if cfg.CompileWorkers != 0 {
		cfg.JIT.CompileWorkers = cfg.CompileWorkers
	}
	if cfg.OverloadFactor == 0 {
		cfg.OverloadFactor = 2
	}
	if cfg.Users < 1 {
		cfg.Users = 1
	}

	// One compiled unit serves the whole fleet: engines only read it.
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	traffic := workload.NewTraffic(eps, cfg.Users, cfg.UserZipfS, cfg.EndpointZipfS)

	// Calibrate steady state and capture the single-host reference
	// outputs on one fully warmed engine.
	calib, err := core.NewEngine(unit, cfg.JIT, io.Discard)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 60; i++ {
		for _, ep := range eps {
			if _, _, err := perflab.RunEndpoint(calib, ep.Name); err != nil {
				return nil, err
			}
		}
	}
	refOut := map[string]string{}
	for _, ep := range eps {
		_, out, err := perflab.RunEndpoint(calib, ep.Name)
		if err != nil {
			return nil, err
		}
		refOut[ep.Name] = out
	}
	calibStream := traffic.NewStream(cfg.Seed)
	var steadyCycles uint64
	const steadyN = 40
	for i := 0; i < steadyN; i++ {
		_, ep := calibStream.Next()
		c, _, err := perflab.RunEndpoint(calib, ep.Name)
		if err != nil {
			return nil, err
		}
		steadyCycles += c
	}
	steadyPerReq := float64(steadyCycles) / steadyN

	res := &Result{
		Hosts:       cfg.Hosts,
		MinutesTo90: server.MinutesTo90Never,
		Users:       cfg.Users,
	}
	hosts := make([]*host, cfg.Hosts)
	for i := range hosts {
		cf := capFactorFor(i, cfg.CapacitySpread)
		capRPS := cf * float64(cfg.CyclesPerMinute) / steadyPerReq
		h := &host{
			id:            i,
			capFactor:     cf,
			capacityRPS:   capRPS,
			steadyRPS:     cfg.Utilization * capRPS,
			stream:        traffic.NewStream(cfg.Seed + 100 + int64(i)),
			restartMinute: 0,
			to90:          server.MinutesTo90Never,
			lastRestart:   -1,
		}
		if h.eng, err = core.NewEngine(unit, cfg.JIT, io.Discard); err != nil {
			return nil, err
		}
		if err := h.attachMonitor(cfg); err != nil {
			return nil, err
		}
		hosts[i] = h
		res.HostSteadyRPS = append(res.HostSteadyRPS, h.steadyRPS)
		res.HostCapacityRPS = append(res.HostCapacityRPS, capRPS)
		res.FleetSteadyRPS += h.steadyRPS
	}

	agg := NewAggregator(cfg.AggDecay)
	seenUsers := map[uint64]struct{}{}
	restartCount := cfg.RestartCount
	if restartCount <= 0 || restartCount > cfg.Hosts {
		restartCount = cfg.Hosts
	}
	nextRestart := 0
	var spill float64

	for minute := 0; minute < cfg.Minutes; minute++ {
		// --- Rolling-restart orchestration: rejoins first, so a host
		// taken down this minute stays out for its full window -------
		for _, h := range hosts {
			if h.downFor == 0 || h.died {
				continue
			}
			if h.downFor--; h.downFor > 0 {
				continue
			}
			// Rejoin: fresh engine, optionally jumpstarted from the
			// aggregator's warm aggregate. The load's compile cycles
			// are charged against this minute's serving budget.
			if h.eng, err = core.NewEngine(unit, cfg.JIT, io.Discard); err != nil {
				return nil, err
			}
			if err := h.attachMonitor(cfg); err != nil {
				return nil, err
			}
			rec := RestartRecord{
				Host:        h.id,
				DownMinute:  minute - cfg.RestartDown + 1,
				UpMinute:    minute + 1,
				MinutesTo90: server.MinutesTo90Never,
			}
			if cfg.WarmRestart && cfg.PublishEvery > 0 {
				if snap := agg.Warm(); snap != nil {
					before := h.eng.Cycles()
					jr := h.eng.LoadProfile(snap)
					h.warmCycles = h.eng.Cycles() - before
					rec.Warm = true
					rec.LoadedTrans = jr.LoadedTrans
					rec.StalenessMin = agg.StalenessAt(float64(minute))
					h.event("J")
				}
			}
			h.restartMinute = minute
			h.to90 = server.MinutesTo90Never
			h.sawOpt = false
			h.lastRestart = len(res.Restarts)
			res.Restarts = append(res.Restarts, rec)
			h.event("U")
		}
		if cfg.RestartAt > 0 && nextRestart < restartCount &&
			minute == cfg.RestartAt+nextRestart*cfg.RestartStagger {
			h := hosts[nextRestart]
			if !h.died {
				// Queued requests bounce back to the balancer; the old
				// engine (its code cache and profile) is discarded.
				spill += h.backlog
				h.backlog = 0
				h.closeMonitor(res)
				h.eng = nil
				h.downFor = cfg.RestartDown
				h.event("R")
			}
			nextRestart++
		}

		// --- Demand and routing ------------------------------------
		mult := workload.Diurnal(minute, cfg.DiurnalPeriod, cfg.DiurnalAmp)
		if cfg.OverloadMinutes > 0 && minute >= cfg.OverloadAt &&
			minute < cfg.OverloadAt+cfg.OverloadMinutes {
			mult *= cfg.OverloadFactor
		}
		offered := res.FleetSteadyRPS*mult + spill
		spill = 0
		shares := assign(offered, hosts, cfg.UniformFraction)
		var routed float64
		for _, s := range shares {
			routed += s
		}
		lost := offered - routed // nothing routable absorbs it
		if lost < 1e-6 {
			lost = 0
		}

		// --- Serve the minute (hosts are independent; each owns its
		// engine, stream, and meter, so they run concurrently) -------
		type minuteOut struct {
			served     int
			users      []uint64
			mismatches uint64
			err        error
		}
		outs := make([]minuteOut, len(hosts))
		var wg sync.WaitGroup
		for i, h := range hosts {
			if !h.routable() {
				continue
			}
			wg.Add(1)
			go func(i int, h *host) {
				defer wg.Done()
				o := &outs[i]
				want := h.backlog + shares[i]
				budget := uint64(float64(cfg.CyclesPerMinute) * h.capFactor)
				if h.warmCycles > 0 {
					if h.warmCycles >= budget {
						budget = 0
					} else {
						budget -= h.warmCycles
					}
					h.warmCycles = 0
				}
				begin := h.eng.Cycles()
				for float64(o.served) < want && h.eng.Cycles()-begin < budget {
					user, ep := h.stream.Next()
					_, out, err := perflab.RunEndpoint(h.eng, ep.Name)
					if err != nil {
						o.err = fmt.Errorf("host %d %s: %w", h.id, ep.Name, err)
						return
					}
					if out != refOut[ep.Name] {
						o.mismatches++
					}
					h.mon.Observe(ep.Name, out)
					o.users = append(o.users, user)
					o.served++
				}
				h.backlog = want - float64(o.served)
				if h.backlog < 0 {
					h.backlog = 0
				}
			}(i, h)
		}
		wg.Wait()

		var servedTotal, shedNow float64
		for i, h := range hosts {
			o := &outs[i]
			if o.err != nil {
				return nil, o.err
			}
			servedTotal += float64(o.served)
			res.Requests += uint64(o.served)
			res.OutputMismatches += o.mismatches
			for _, u := range o.users {
				seenUsers[u] = struct{}{}
			}
			if !h.routable() {
				h.sample(minute, 0, 0)
				continue
			}

			// --- Verification (deterministic, post-serve): audit one
			// chunk, drain pending shadow comparisons, and demote the
			// host once per new verified divergence so the balancer
			// shifts traffic away while the culprit is quarantined ---
			demotedNow := false
			if h.mon != nil {
				h.mon.AuditStep(0)
				h.mon.Drain()
				if vs := h.mon.Stats(); vs.Divergences > h.lastDiv {
					h.lastDiv = vs.Divergences
					if !cfg.DisableShed {
						j := h.eng.VM.JIT
						j.Shed(j.DegradeLevel() + 1)
						if lvl := j.DegradeLevel(); lvl > h.maxDegrade {
							h.maxDegrade = lvl
						}
						demotedNow = true
					}
					h.event("D")
				}
			}

			// --- Shedding / death (deterministic, post-serve) ------
			assignedRatio := shares[i] / h.capacityRPS
			if !cfg.DisableShed {
				j := h.eng.VM.JIT
				if assignedRatio > cfg.ShedRatio {
					j.Shed(j.DegradeLevel() + 1)
					h.event("S")
				} else if j.DegradeLevel() > jit.DegradeNone && assignedRatio < recoverRatio && !demotedNow {
					// A verification demotion holds for at least its
					// minute so the balancer actually shifts traffic.
					// Demand normalized: un-shed. Recovery keys off
					// assigned load, not the queue — a host degraded to
					// interp-only may never drain its backlog at interp
					// speed, and full-speed serving digs it out in a
					// minute anyway.
					j.RecoverShed()
					h.event("V")
				}
				if h.backlog > h.capacityRPS {
					// Keep at most one minute of queue; the rest is shed
					// (reported reduced capacity, not a dead host).
					shedNow += h.backlog - h.capacityRPS
					h.backlog = h.capacityRPS
				}
				if lvl := j.DegradeLevel(); lvl > h.maxDegrade {
					h.maxDegrade = lvl
				}
			} else if assignedRatio > 1 && h.backlog > cfg.DeathBacklog*h.capacityRPS {
				// Unprotected host: demand above capacity and a queue
				// past the death threshold — resource exhaustion. A
				// deep queue alone (cold start digging out, demand
				// under capacity) is recovery, not death. The host
				// leaves the rotation for good; its backlog is lost.
				h.died = true
				lost += h.backlog
				h.backlog = 0
				h.closeMonitor(res)
				h.eng = nil
				h.event("X")
			}

			// Warmup metrics.
			served := float64(o.served)
			if h.eng != nil {
				if st := h.eng.Stats(); !h.sawOpt && st.OptimizeRuns > 0 {
					h.sawOpt = true
					h.event("C")
				}
			}
			if h.to90 == server.MinutesTo90Never && served >= 0.9*h.steadyRPS {
				h.to90 = float64(minute - h.restartMinute + 1)
				if h.lastRestart >= 0 {
					res.Restarts[h.lastRestart].MinutesTo90 = h.to90
				}
			}
			h.sample(minute, served, assignedRatio)
		}
		res.ShedRequests += shedNow
		res.LostRequests += lost

		// --- Profile shipping --------------------------------------
		if cfg.PublishEvery > 0 && (minute+1)%cfg.PublishEvery == 0 {
			for _, h := range hosts {
				if h.routable() {
					agg.Publish(h.id, h.eng.ProfileSnapshot())
				}
			}
			agg.MergeRound(float64(minute + 1))
		}

		// --- Fleet sample ------------------------------------------
		s := Sample{
			Minute:          float64(minute + 1),
			OfferedRPS:      offered,
			ServedRPS:       servedTotal,
			ShedRPS:         shedNow,
			LostRPS:         lost,
			CapacityPct:     100,
			FleetRPSPct:     100 * servedTotal / res.FleetSteadyRPS,
			AggStalenessMin: agg.StalenessAt(float64(minute + 1)),
		}
		if offered > 0 {
			s.CapacityPct = 100 * servedTotal / offered
		}
		for _, h := range hosts {
			if h.routable() {
				s.HostsUp++
				if lvl := h.eng.VM.JIT.DegradeLevel(); lvl > s.MaxDegrade {
					s.MaxDegrade = lvl
				}
			}
			s.Backlog += h.backlog
		}
		if res.MinutesTo90 == server.MinutesTo90Never && s.FleetRPSPct >= 90 {
			res.MinutesTo90 = s.Minute
		}
		res.Samples = append(res.Samples, s)
	}

	for _, h := range hosts {
		h.closeMonitor(res)
		res.HostTimelines = append(res.HostTimelines, h.samples)
		res.MaxDegradePerHost = append(res.MaxDegradePerHost, h.maxDegrade)
		if h.died {
			res.HostsDied++
		}
	}
	res.UniqueUsers = uint64(len(seenUsers))
	res.Aggregator = agg.Stats()
	res.WallClock = time.Since(start)
	return res, nil
}

// attachMonitor starts a sentry monitor over the host's (fresh)
// engine when verification is configured.
func (h *host) attachMonitor(cfg Config) error {
	if cfg.VerifySample <= 0 || h.eng == nil {
		return nil
	}
	mon, err := sentry.New(sentry.Config{
		SampleRate: cfg.VerifySample,
		Seed:       cfg.Seed + 200 + int64(h.id),
	}, h.eng.VM.JIT)
	if err != nil {
		return err
	}
	h.mon = mon
	h.lastDiv = 0
	return nil
}

// closeMonitor drains the host's monitor, folds its counters into the
// fleet-wide totals, and shuts it down (restart, death, end of run).
func (h *host) closeMonitor(res *Result) {
	if h.mon == nil {
		return
	}
	h.mon.Drain()
	addVerify(&res.Verify, h.mon.Stats())
	h.mon.Close()
	h.mon = nil
}

// addVerify accumulates one monitor's counters into the fleet total.
func addVerify(dst *sentry.Stats, s sentry.Stats) {
	dst.ChecksumsRecorded += s.ChecksumsRecorded
	dst.AuditSweeps += s.AuditSweeps
	dst.Audited += s.Audited
	dst.Corruptions += s.Corruptions
	dst.TornLinks += s.TornLinks
	dst.StaleLinks += s.StaleLinks
	dst.DanglingLinks += s.DanglingLinks
	dst.Invalidated += s.Invalidated
	dst.Sampled += s.Sampled
	dst.ShadowRuns += s.ShadowRuns
	dst.Divergences += s.Divergences
	dst.Replays += s.Replays
	dst.Quarantined += s.Quarantined
	dst.Transient += s.Transient
}

// event appends a lifecycle letter to the host's pending event
// string (flushed into the minute's sample).
func (h *host) event(letter string) { h.pendingEvent += letter }

// sample records the host's minute.
func (h *host) sample(minute int, served, assignedRatio float64) {
	s := HostSample{
		Minute:      float64(minute + 1),
		RPSPct:      100 * served / h.steadyRPS,
		AssignedPct: 100 * assignedRatio,
		Backlog:     h.backlog,
		Up:          h.routable(),
		Event:       h.pendingEvent,
	}
	if h.eng != nil {
		st := h.eng.Stats()
		s.CodeBytes = st.BytesProfiling + st.BytesOptimized + st.BytesLive
		s.Degrade = h.eng.VM.JIT.DegradeLevel()
	}
	h.pendingEvent = ""
	h.samples = append(h.samples, s)
}
