// Package region implements compilation-unit selection: tracelet
// formation for live and profiling translations, the TransCFG, the
// profile-guided region selector with retranslation chaining, and
// guard relaxation over the type-constraint lattice (Table 1 of the
// paper).
package region

import "repro/internal/types"

// TypeConstraint says how much knowledge about an input type the
// generated code needs (Table 1). Values progress from most relaxed
// to most restrictive.
type TypeConstraint uint8

const (
	// ConGeneric: the code does not care about the type at all.
	ConGeneric TypeConstraint = iota
	// ConCountness: only whether the value is reference counted.
	ConCountness
	// ConBoxAndCountness: ref-counted and boxed. The subset has no
	// boxed locals, so this behaves as Countness; it is kept so the
	// lattice matches the paper.
	ConBoxAndCountness
	// ConBoxAndCountnessInit: additionally whether initialized.
	ConBoxAndCountnessInit
	// ConSpecific: the specific primitive kind matters.
	ConSpecific
	// ConSpecialized: the array kind or object class matters too.
	ConSpecialized
)

var conNames = [...]string{
	"Generic", "Countness", "BoxAndCountness", "BoxAndCountnessInit",
	"Specific", "Specialized",
}

func (c TypeConstraint) String() string {
	if int(c) < len(conNames) {
		return conNames[c]
	}
	return "Constraint?"
}

// Stronger returns the more restrictive of two constraints.
func (c TypeConstraint) Stronger(o TypeConstraint) TypeConstraint {
	if o > c {
		return o
	}
	return c
}

// Satisfied reports whether knowing that a value has type t provides
// enough information for constraint c.
func (c TypeConstraint) Satisfied(t types.Type) bool {
	switch c {
	case ConGeneric:
		return true
	case ConCountness, ConBoxAndCountness:
		return t.SubtypeOf(types.TUncounted) || t.SubtypeOf(types.TCounted) || t.IsSpecific()
	case ConBoxAndCountnessInit:
		return (t.SubtypeOf(types.TUncounted) && !t.Maybe(types.TUninit)) ||
			t.SubtypeOf(types.TCounted) || t.IsSpecific()
	case ConSpecific:
		return t.IsSpecific()
	case ConSpecialized:
		return t.IsSpecialized() || t.IsSpecific() && t.Kind()&(types.KArr|types.KObj) == 0
	default:
		return false
	}
}

// RelaxedType widens t as far as constraint c allows; this is the
// type a relaxed guard checks for.
func (c TypeConstraint) RelaxedType(t types.Type) types.Type {
	switch c {
	case ConGeneric:
		return types.TCell
	case ConCountness, ConBoxAndCountness:
		if t.SubtypeOf(types.TUncounted) {
			return types.TUncounted
		}
		return t.Unspecialize()
	case ConBoxAndCountnessInit:
		if t.SubtypeOf(types.TUncounted) && !t.Maybe(types.TUninit) {
			return types.FromKind(types.KUncounted &^ types.KUninit)
		}
		return t.Unspecialize()
	case ConSpecific:
		return t.Unspecialize()
	default:
		return t
	}
}
