package workload

import (
	"fmt"
	"strings"
)

// longTail generates the "long tail of warm functions" the paper
// describes: a large volume of distinct, rarely-executed code (the
// Facebook code base translates to hundreds of megabytes of machine
// code, most of it lukewarm). The tail dominates the code-size
// footprint while contributing little execution time, which is what
// gives Figure 11 its diminishing-returns shape and Figure 9 its
// long code-growth phase.
func longTail(n int) Endpoint {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch i % 6 {
		case 0:
			fmt.Fprintf(&sb, `
function tail_calc_%d($x) {
  $a = $x * %d + 7;
  $b = $a %% 13;
  for ($i = 0; $i < 3; $i++) { $a = $a + $b * $i; }
  return $a - %d;
}
`, i, i+2, i)
		case 1:
			fmt.Fprintf(&sb, `
function tail_str_%d($s) {
  $t = $s . "-%d";
  if (strlen($t) > %d) { $t = substr($t, 0, %d); }
  return strtoupper($t);
}
`, i, i, 4+i%7, 4+i%7)
		case 2:
			fmt.Fprintf(&sb, `
function tail_arr_%d($n) {
  $a = [];
  for ($i = 0; $i < 4; $i++) { $a[] = $i * %d; }
  $a[1] = $a[1] + $n;
  return count($a) + $a[1];
}
`, i, i+1)
		case 3:
			fmt.Fprintf(&sb, `
function tail_cond_%d($x) {
  if ($x %% 2 == 0) { return $x / 2 + %d; }
  elseif ($x %% 3 == 0) { return $x * 3 - %d; }
  return $x + 1;
}
`, i, i, i)
		case 4:
			fmt.Fprintf(&sb, `
function tail_map_%d($k) {
  $m = ["a" => %d, "b" => %d, "c" => %d];
  if (array_key_exists($k, $m)) { return $m[$k]; }
  return -1;
}
`, i, i, i*2, i*3)
		default:
			fmt.Fprintf(&sb, `
function tail_dbl_%d($x) {
  $y = $x * 0.5 + %d.25;
  $z = $y * $y;
  return $z > 100.0 ? sqrt($z) : $z;
}
`, i, i%9)
		}
	}
	// The request touches every tail function once, so the whole tail
	// gets profiled (and JITed when the budget allows) during warmup.
	sb.WriteString("\n$acc = 0;\n")
	for i := 0; i < n; i++ {
		switch i % 6 {
		case 0:
			fmt.Fprintf(&sb, "$acc += tail_calc_%d(%d);\n", i, i)
		case 1:
			fmt.Fprintf(&sb, "$acc += strlen(tail_str_%d(\"t%d\"));\n", i, i)
		case 2:
			fmt.Fprintf(&sb, "$acc += tail_arr_%d(%d);\n", i, i)
		case 3:
			fmt.Fprintf(&sb, "$acc += tail_cond_%d(%d);\n", i, i)
		case 4:
			fmt.Fprintf(&sb, "$acc += tail_map_%d(\"b\");\n", i)
		default:
			fmt.Fprintf(&sb, "$acc += (int)tail_dbl_%d(%d);\n", i, i)
		}
	}
	sb.WriteString("echo (int)$acc, \"\\n\";\n")
	return Endpoint{Name: "long_tail", Weight: 0.02, Src: sb.String()}
}
