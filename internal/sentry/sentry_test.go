package sentry_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mcode"
	"repro/internal/perflab"
	"repro/internal/sentry"
	"repro/internal/workload"
)

// warmEngine builds a combined-site engine and runs enough traffic to
// publish optimized translations.
func warmEngine(t *testing.T) (*core.Engine, []workload.Endpoint, map[string]string) {
	t.Helper()
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 200
	eng, eps, err := perflab.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refOut := map[string]string{}
	for i := 0; i < 25; i++ {
		for _, ep := range eps {
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				t.Fatalf("endpoint %s: %v", ep.Name, err)
			}
			if i == 0 {
				refOut[ep.Name] = out
			} else if out != refOut[ep.Name] {
				t.Fatalf("endpoint %s: nondeterministic output", ep.Name)
			}
		}
	}
	if eng.Stats().OptimizedTranslations == 0 {
		t.Fatal("warmup published no optimized translations")
	}
	return eng, eps, refOut
}

func TestAuditCleanCacheFindsNothing(t *testing.T) {
	eng, _, _ := warmEngine(t)
	m, err := sentry.New(sentry.Config{}, eng.VM.JIT)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Registered() == 0 {
		t.Fatal("monitor registered no translations from a warm JIT")
	}
	if found := m.Audit(); found != 0 {
		t.Fatalf("clean cache: audit found %d corruptions", found)
	}
	st := m.Stats()
	if st.Audited == 0 || st.AuditSweeps == 0 {
		t.Fatalf("audit did no work: %+v", st)
	}
}

func TestAuditDetectsTamperAndRepairs(t *testing.T) {
	eng, eps, refOut := warmEngine(t)
	j := eng.VM.JIT
	m, err := sentry.New(sentry.Config{}, j)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Corrupt the code bytes of every published translation: the
	// checksum audit must flag each one and unpublish it.
	tampered := 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		if tr.Code.InjectTamper(0xA5) {
			tampered++
		}
	})
	if tampered == 0 {
		t.Fatal("nothing to tamper")
	}
	found := m.Audit()
	if found == 0 {
		t.Fatal("audit missed all tampered translations")
	}
	st := m.Stats()
	if st.Corruptions == 0 || st.Invalidated == 0 {
		t.Fatalf("audit stats: %+v", st)
	}
	// Invalidating one translation also unpublishes same-key siblings
	// before their turn in the sweep, so found may be less than
	// tampered — but no tampered translation may remain published.
	j.ForEachTranslation(func(tr *jit.Translation) {
		if tr.Code.Tampered() != 0 {
			t.Fatalf("tampered translation (fn %d pc %d) still published", tr.FuncID, tr.PC)
		}
	})

	// Post-repair: outputs are bit-identical to the warm reference
	// (interp serves while re-mints happen), and a fresh audit over
	// the re-minted cache is clean.
	for i := 0; i < 10; i++ {
		for _, ep := range eps {
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				t.Fatalf("endpoint %s after repair: %v", ep.Name, err)
			}
			if out != refOut[ep.Name] {
				t.Fatalf("endpoint %s: output diverged after repair", ep.Name)
			}
		}
	}
	if found := m.Audit(); found != 0 {
		t.Fatalf("re-minted cache: audit found %d corruptions", found)
	}
}

func TestAuditDetectsTornLink(t *testing.T) {
	eng, _, _ := warmEngine(t)
	j := eng.VM.JIT
	m, err := sentry.New(sentry.Config{}, j)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Plant a future-epoch link — the signature of a torn smash
	// write — on the first translation that has a link slab.
	var victim *jit.Translation
	j.ForEachTranslation(func(tr *jit.Translation) {
		if victim != nil {
			return
		}
		tr.Code.StoreLink(0, &mcode.Link{Epoch: j.Epoch() + 1, Target: tr})
		if tr.Code.LoadLink(0) != nil {
			victim = tr
		}
	})
	if victim == nil {
		t.Skip("no translation with a smashable-link slab")
	}
	if found := m.Audit(); found == 0 {
		t.Fatal("audit missed the torn link")
	}
	if st := m.Stats(); st.TornLinks == 0 {
		t.Fatalf("torn link not counted: %+v", st)
	}
	if victim.Code.LoadLink(0) != nil {
		t.Fatal("torn link not cleared")
	}
}

func TestShadowBisectionQuarantinesCulprit(t *testing.T) {
	eng, eps, refOut := warmEngine(t)
	j := eng.VM.JIT
	m, err := sentry.New(sentry.Config{SampleRate: 1, Seed: 7}, j)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Tamper every published translation. The replay leg of each
	// shadow comparison executes the tampered code, so the divergence
	// must surface even if the primary output happens to survive.
	j.ForEachTranslation(func(tr *jit.Translation) { tr.Code.InjectTamper(0x11) })

	for _, ep := range eps {
		_, out, err := perflab.RunEndpoint(eng, ep.Name)
		if err != nil {
			t.Fatalf("endpoint %s: %v", ep.Name, err)
		}
		m.Observe(ep.Name, out)
	}
	m.Drain()

	st := m.Stats()
	if st.Sampled == 0 || st.ShadowRuns == 0 {
		t.Fatalf("sampling did not run: %+v", st)
	}
	if st.Divergences == 0 {
		t.Fatalf("no divergence detected across tampered cache: %+v", st)
	}
	if st.Quarantined == 0 {
		t.Fatalf("bisection quarantined nothing: %+v", st)
	}
	reps := m.Reports()
	if len(reps) == 0 {
		t.Fatal("no divergence reports")
	}
	foundCulprit := false
	for _, r := range reps {
		if r.Quarantined && r.CulpritFunc >= 0 {
			foundCulprit = true
			if r.Replays == 0 {
				t.Fatalf("culprit without replays: %+v", r)
			}
		}
	}
	if !foundCulprit {
		t.Fatalf("no report isolated a culprit: %+v", reps)
	}

	// Recovery: audit repairs the remaining tampered translations and
	// traffic converges back to the reference outputs.
	m.Audit()
	for i := 0; i < 10; i++ {
		for _, ep := range eps {
			_, out, err := perflab.RunEndpoint(eng, ep.Name)
			if err != nil {
				t.Fatalf("endpoint %s post-recovery: %v", ep.Name, err)
			}
			if out != refOut[ep.Name] {
				t.Fatalf("endpoint %s: output still diverged after repair", ep.Name)
			}
		}
	}
}

func TestSamplingIsDeterministic(t *testing.T) {
	eng, eps, refOut := warmEngine(t)
	j := eng.VM.JIT

	pick := func(seed int64) []bool {
		m, err := sentry.New(sentry.Config{SampleRate: 0.3, Seed: seed}, j)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		var got []bool
		for i := 0; i < 40; i++ {
			ep := eps[i%len(eps)]
			got = append(got, m.Observe(ep.Name, refOut[ep.Name]))
		}
		m.Drain()
		if st := m.Stats(); st.Divergences != 0 {
			t.Fatalf("clean traffic produced divergences: %+v", st)
		}
		return got
	}

	a, b := pick(3), pick(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling decision %d differs across identical runs", i)
		}
	}
	c := pick(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sampling pattern (suspicious)")
	}
}
