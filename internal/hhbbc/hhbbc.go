// Package hhbbc is the HipHop Bytecode-to-Bytecode Compiler: the
// ahead-of-time pass that runs whole-function static type inference
// over HHBC and communicates its results to the runtime by inserting
// AssertRATL instructions (Section 2.3). The JIT consumes the
// assertions to avoid runtime guards for statically-known types.
package hhbbc

import (
	"sort"

	"repro/internal/hhbc"
	"repro/internal/types"
)

// Optimize analyzes and rewrites every function in the unit.
func Optimize(u *hhbc.Unit) error {
	for _, f := range u.Funcs {
		optimizeFunc(u, f)
	}
	return hhbc.VerifyUnit(u)
}

// state is the abstract state at a program point.
type state struct {
	locals []types.Type
	stack  []types.Type
}

func (s *state) clone() *state {
	ns := &state{
		locals: append([]types.Type(nil), s.locals...),
		stack:  append([]types.Type(nil), s.stack...),
	}
	return ns
}

// merge unions o into s; reports change.
func (s *state) merge(o *state) bool {
	changed := false
	for i := range s.locals {
		u := s.locals[i].Union(o.locals[i])
		if u != s.locals[i] {
			s.locals[i] = u
			changed = true
		}
	}
	for i := range s.stack {
		if i < len(o.stack) {
			u := s.stack[i].Union(o.stack[i])
			if u != s.stack[i] {
				s.stack[i] = u
				changed = true
			}
		}
	}
	return changed
}

func optimizeFunc(u *hhbc.Unit, f *hhbc.Func) {
	if len(f.Instrs) == 0 {
		return
	}
	leaders := findLeaders(f)
	blockOf := make([]int, len(f.Instrs))
	var starts []int
	for pc := range f.Instrs {
		if leaders[pc] {
			starts = append(starts, pc)
		}
		blockOf[pc] = len(starts) - 1
	}
	blockEnd := func(b int) int {
		if b+1 < len(starts) {
			return starts[b+1]
		}
		return len(f.Instrs)
	}

	// Entry state.
	entry := &state{locals: make([]types.Type, f.NumLocals)}
	for i := range entry.locals {
		if i < len(f.Params) {
			entry.locals[i] = types.TCell
		} else {
			entry.locals[i] = types.TUninit
		}
	}
	f.ParamTypes = make([]types.Type, len(f.Params))
	for i := range f.Params {
		f.ParamTypes[i] = types.TCell
	}

	in := make([]*state, len(starts))
	in[0] = entry
	// Handlers start with an empty stack (Catch pushes).
	for _, eh := range f.EHTable {
		b := blockOf[eh.Handler]
		if in[b] == nil {
			hs := entry.clone()
			for i := range hs.locals {
				hs.locals[i] = types.TCell // handler may see any state
			}
			hs.stack = nil
			in[b] = hs
		}
	}

	work := []int{0}
	seen := map[int]bool{0: true}
	for _, eh := range f.EHTable {
		b := blockOf[eh.Handler]
		if !seen[b] {
			seen[b] = true
			work = append(work, b)
		}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		seen[b] = false
		if in[b] == nil {
			continue
		}
		st := in[b].clone()
		for pc := starts[b]; pc < blockEnd(b); pc++ {
			succs, fall := transfer(u, f, st, pc)
			for _, spc := range succs {
				sb := blockOf[spc]
				if propagate(in, sb, st) && !seen[sb] {
					seen[sb] = true
					work = append(work, sb)
				}
			}
			if !fall {
				break
			}
			if pc+1 < len(f.Instrs) && leaders[pc+1] {
				sb := blockOf[pc+1]
				if propagate(in, sb, st) && !seen[sb] {
					seen[sb] = true
					work = append(work, sb)
				}
				break
			}
		}
	}

	insertAsserts(u, f, starts, blockEnd, in)
}

func propagate(in []*state, b int, st *state) bool {
	if in[b] == nil {
		in[b] = st.clone()
		return true
	}
	return in[b].merge(st)
}

func findLeaders(f *hhbc.Func) []bool {
	leaders := make([]bool, len(f.Instrs))
	leaders[0] = true
	mark := func(pc int) {
		if pc >= 0 && pc < len(f.Instrs) {
			leaders[pc] = true
		}
	}
	for pc, in := range f.Instrs {
		switch in.Op {
		case hhbc.OpJmp, hhbc.OpJmpZ, hhbc.OpJmpNZ:
			mark(int(in.A))
			mark(pc + 1)
		case hhbc.OpIterInitL, hhbc.OpIterNext:
			mark(int(in.B))
			mark(pc + 1)
		case hhbc.OpSwitch:
			for _, t := range f.Switches[in.A].Targets {
				mark(t)
			}
			mark(f.Switches[in.A].Default)
			mark(pc + 1)
		case hhbc.OpRetC, hhbc.OpThrow, hhbc.OpFatal:
			mark(pc + 1)
		}
	}
	for _, eh := range f.EHTable {
		mark(eh.Handler)
		mark(eh.Start)
		mark(eh.End)
	}
	return leaders
}

// insertAsserts adds AssertRATL at block starts for locals whose
// inferred type is informative and which the block actually reads,
// then remaps all jump targets.
func insertAsserts(u *hhbc.Unit, f *hhbc.Func, starts []int, blockEnd func(int) int, in []*state) {
	type insertion struct {
		slot int32
		b, c int32
	}
	inserts := make(map[int][]insertion) // old pc -> asserts
	total := 0
	for b := range starts {
		if in[b] == nil {
			continue
		}
		reads := localReads(f, starts[b], blockEnd(b))
		// Deterministic emission order: bytecode must be reproducible
		// across compiles (jumpstart keys snapshots by bytecode hash).
		slots := make([]int, 0, len(reads))
		for slot := range reads {
			slots = append(slots, slot)
		}
		sort.Ints(slots)
		for _, slot := range slots {
			t := in[b].locals[slot]
			if !informative(t) {
				continue
			}
			eb, ec := u.EncodeRAT(t)
			inserts[starts[b]] = append(inserts[starts[b]],
				insertion{slot: int32(slot), b: eb, c: ec})
			total++
		}
	}
	if total == 0 {
		return
	}

	// Rebuild with remapping.
	newPC := make([]int, len(f.Instrs)+1)
	var out []hhbc.Instr
	for pc, instr := range f.Instrs {
		newPC[pc] = len(out)
		for _, ins := range inserts[pc] {
			out = append(out, hhbc.Instr{Op: hhbc.OpAssertRATL, A: ins.slot, B: ins.b, C: ins.c})
		}
		out = append(out, instr)
	}
	newPC[len(f.Instrs)] = len(out)

	for i := range out {
		switch out[i].Op {
		case hhbc.OpJmp, hhbc.OpJmpZ, hhbc.OpJmpNZ:
			out[i].A = int32(newPC[out[i].A])
		case hhbc.OpIterInitL, hhbc.OpIterNext:
			out[i].B = int32(newPC[out[i].B])
		}
	}
	for si := range f.Switches {
		sw := &f.Switches[si]
		for ti := range sw.Targets {
			sw.Targets[ti] = newPC[sw.Targets[ti]]
		}
		sw.Default = newPC[sw.Default]
	}
	for ei := range f.EHTable {
		f.EHTable[ei].Start = newPC[f.EHTable[ei].Start]
		f.EHTable[ei].End = newPC[f.EHTable[ei].End]
		f.EHTable[ei].Handler = newPC[f.EHTable[ei].Handler]
	}
	f.Instrs = out
}

// informative reports whether an inferred type is worth asserting.
func informative(t types.Type) bool {
	if t.IsBottom() || types.TCell.SubtypeOf(t) {
		return false
	}
	// Assertions are most valuable when they pin the kind or prove
	// uncountedness.
	return t.IsSpecific() || t.SubtypeOf(types.TUncounted) || t.SubtypeOf(types.TNum)
}

// localReads collects locals read in [start, end).
func localReads(f *hhbc.Func, start, end int) map[int]bool {
	reads := map[int]bool{}
	for pc := start; pc < end; pc++ {
		in := f.Instrs[pc]
		switch in.Op {
		case hhbc.OpCGetL, hhbc.OpCGetL2, hhbc.OpPushL, hhbc.OpIncDecL,
			hhbc.OpArrGetL, hhbc.OpArrSetL, hhbc.OpArrAppendL,
			hhbc.OpArrUnsetL, hhbc.OpAKExistsL:
			reads[int(in.A)] = true
		case hhbc.OpIterInitL:
			reads[int(in.C)] = true
		}
	}
	return reads
}
