package vasm

// HelperID names the out-of-line runtime helpers callable via the
// Helper instruction. The machine model implements them natively
// (HHVM's C++ helpers) and charges each a fixed cycle cost.
type HelperID int

const (
	HNone HelperID = iota
	HConcat
	HBinop // extra = hhbc.Op
	HEqAny // extra = 1 to negate
	HSameAny
	HDivNum
	HModInt
	HToStr
	HCmpStr // extra = cond
	HNewArr
	HNewPacked
	HAddElem
	HAddNewElem
	HArrGetGeneric
	HArrGetPackedMiss
	HArrSetLocal    // extra = local slot
	HArrAppendLocal // extra = local slot
	HArrUnsetLocal  // extra = local slot
	HAKExistsLocal  // extra = local slot
	HIterInit       // extra = iter<<8 | slot; D = bool (has elements)
	HIterNext       // extra = iter; D = bool (still valid)
	HIterKey        // extra = iter
	HIterValue      // extra = iter
	HIterFree       // extra = iter
	HNewObj         // Str = class
	HLdPropGeneric  // Str = prop
	HStPropGeneric  // Str = prop
	HInstanceOf     // Str = class
	HVerifyParam    // extra = slot; Str = hint
	HPrint
	HThrow
	HConvToBoolGeneric
	HConvToIntGeneric
	HConvToDblGeneric

	HelperCount
)

var helperNames = map[HelperID]string{
	HConcat: "concat", HBinop: "binop", HEqAny: "eq_any", HSameAny: "same_any",
	HDivNum: "div_num", HModInt: "mod_int", HToStr: "to_str", HCmpStr: "cmp_str",
	HNewArr: "new_arr", HNewPacked: "new_packed", HAddElem: "add_elem",
	HAddNewElem: "add_new_elem", HArrGetGeneric: "arr_get",
	HArrGetPackedMiss: "arr_get_packed_miss",
	HArrSetLocal:      "arr_set_local", HArrAppendLocal: "arr_append_local",
	HArrUnsetLocal: "arr_unset_local", HAKExistsLocal: "ak_exists_local",
	HIterInit: "iter_init", HIterNext: "iter_next", HIterKey: "iter_key",
	HIterValue: "iter_value", HIterFree: "iter_free",
	HNewObj: "new_obj", HLdPropGeneric: "ld_prop", HStPropGeneric: "st_prop",
	HInstanceOf: "instanceof", HVerifyParam: "verify_param",
	HPrint: "print", HThrow: "throw",
	HConvToBoolGeneric: "to_bool_g", HConvToIntGeneric: "to_int_g",
	HConvToDblGeneric: "to_dbl_g",
}

func (h HelperID) String() string {
	if s, ok := helperNames[h]; ok {
		return s
	}
	return "helper?"
}

// PackHelper encodes a helper id and extra immediate into I64.
func PackHelper(h HelperID, extra int64) int64 { return int64(h) | extra<<16 }

// UnpackHelper decodes I64.
func UnpackHelper(v int64) (HelperID, int64) { return HelperID(v & 0xffff), v >> 16 }

// PackIterSlot encodes HIterInit's (iterator id, local slot) extra.
func PackIterSlot(iter, slot int32) int64 { return int64(iter) | int64(slot)<<20 }

// UnpackIterSlot decodes it.
func UnpackIterSlot(extra int64) (iter, slot int32) {
	return int32(extra & 0xfffff), int32(extra >> 20)
}
