package region

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hhbc"
	"repro/internal/profile"
	"repro/internal/types"
)

// LocKind distinguishes guard locations.
type LocKind uint8

const (
	LocLocal LocKind = iota // a frame local, Slot = local index
	LocStack                // an entry eval-stack slot, Slot = depth from bottom
)

// Loc is a guardable VM input location.
type Loc struct {
	Kind LocKind
	Slot int
}

func (l Loc) String() string {
	if l.Kind == LocLocal {
		return fmt.Sprintf("L:%d", l.Slot)
	}
	return fmt.Sprintf("S:%d", l.Slot)
}

// Guard is one precondition: location, the type the generated code
// assumes, and how much of that knowledge the code actually needs.
type Guard struct {
	Loc        Loc
	Type       types.Type
	Constraint TypeConstraint
}

// Block is one bytecode-level basic-block region: the unit of
// profiling translation and the node of the TransCFG.
type Block struct {
	Func      *hhbc.Func
	Start     int // first bytecode pc
	NumInstrs int
	// EntryStackDepth is the evaluation-stack depth at entry.
	EntryStackDepth int
	// EntryStackTypes are the known types of entry stack slots
	// (len == EntryStackDepth); guarded ones appear in Preconds.
	EntryStackTypes []types.Type

	// Preconds are the type guards at the top of the translation.
	Preconds []Guard
	// PostLocals are local types known at block exit, used by the
	// profile-guided selector to match successor preconditions.
	PostLocals map[int]types.Type
	// Succs are the possible successor pcs (bytecode level).
	Succs []int

	// ProfCounter is this block's unique execution counter in
	// profiling mode (-1 otherwise).
	ProfCounter profile.TransID
}

// End returns the pc one past the last instruction.
func (b *Block) End() int { return b.Start + b.NumInstrs }

// GuardFor returns the precondition for loc, if any.
func (b *Block) GuardFor(loc Loc) (Guard, bool) {
	for _, g := range b.Preconds {
		if g.Loc == loc {
			return g, true
		}
	}
	return Guard{}, false
}

// String renders the block like the paper's Figure 4 entries.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "B[%s @%d..%d]", b.Func.FullName(), b.Start, b.End())
	gs := append([]Guard(nil), b.Preconds...)
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Loc.Kind != gs[j].Loc.Kind {
			return gs[i].Loc.Kind < gs[j].Loc.Kind
		}
		return gs[i].Loc.Slot < gs[j].Loc.Slot
	})
	for _, g := range gs {
		fmt.Fprintf(&sb, " %s:%s(%s)", g.Loc, g.Type, g.Constraint)
	}
	return sb.String()
}

// Desc is a RegionDesc: the compilation unit handed to the JIT
// optimizer. It is a CFG of blocks with weighted arcs.
type Desc struct {
	Blocks []*Block
	// Arcs[i] lists indices of successor blocks of Blocks[i] within
	// the region.
	Arcs map[int][]int
	// Weight[i] is the profiled execution count of Blocks[i].
	Weight map[int]uint64
	// Chain groups region-block indices that retranslate the same
	// bytecode address, in guard-check order.
	Chains [][]int
}

// NewDesc wraps a single block (live and profiling translations).
func NewDesc(b *Block) *Desc {
	return &Desc{
		Blocks: []*Block{b},
		Arcs:   map[int][]int{},
		Weight: map[int]uint64{0: 1},
	}
}

// Entry returns the region's entry block.
func (d *Desc) Entry() *Block { return d.Blocks[0] }

// NumInstrs totals the bytecode instructions covered.
func (d *Desc) NumInstrs() int {
	n := 0
	for _, b := range d.Blocks {
		n += b.NumInstrs
	}
	return n
}

func (d *Desc) String() string {
	var sb strings.Builder
	for i, b := range d.Blocks {
		fmt.Fprintf(&sb, "%d: %s w=%d ->%v\n", i, b, d.Weight[i], d.Arcs[i])
	}
	return sb.String()
}
