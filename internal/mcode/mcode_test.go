package mcode_test

import (
	"testing"

	"repro/internal/mcode"
	"repro/internal/types"
	"repro/internal/vasm"
)

func TestCacheBudget(t *testing.T) {
	c := mcode.NewCache(100)
	if _, err := c.Alloc(mcode.AreaHot, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(mcode.AreaLive, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(mcode.AreaHot, 20); err == nil {
		t.Error("allocation beyond the limit succeeded")
	}
	c.Free(mcode.AreaLive, 30)
	if _, err := c.Alloc(mcode.AreaHot, 20); err != nil {
		t.Errorf("allocation after free failed: %v", err)
	}
	if c.TotalUsed() != 80 {
		t.Errorf("used = %d", c.TotalUsed())
	}
}

func TestAreasDoNotOverlap(t *testing.T) {
	c := mcode.NewCache(0)
	a, _ := c.Alloc(mcode.AreaHot, 1<<20)
	b, _ := c.Alloc(mcode.AreaCold, 1<<20)
	p, _ := c.Alloc(mcode.AreaProfile, 1<<20)
	if a == b || b == p || a == p {
		t.Error("area base addresses collide")
	}
}

func TestHugePageCoverage(t *testing.T) {
	c := mcode.NewCache(0)
	base, _ := c.Alloc(mcode.AreaHot, 4096)
	if c.HugeCovers(base) {
		t.Error("huge coverage before SetHugePages")
	}
	c.SetHugePages(4096)
	if !c.HugeCovers(base) {
		t.Error("hot code not huge-covered after SetHugePages")
	}
	if c.HugeCovers(base + 1<<30) {
		t.Error("unrelated address huge-covered")
	}
}

func TestSequentialAddresses(t *testing.T) {
	c := mcode.NewCache(0)
	a, _ := c.Alloc(mcode.AreaHot, 100)
	b, _ := c.Alloc(mcode.AreaHot, 100)
	if b != a+100 {
		t.Errorf("bump allocation not sequential: %x then %x", a, b)
	}
}

func TestFreeClampsOversizedAndCountsUnderflow(t *testing.T) {
	c := mcode.NewCache(0)
	if _, err := c.Alloc(mcode.AreaProfile, 100); err != nil {
		t.Fatal(err)
	}
	// Freeing more than the area holds must clamp to the allocated
	// bytes, not wrap the unsigned counter around.
	c.Free(mcode.AreaProfile, 150)
	if got := c.AreaUsed(mcode.AreaProfile); got != 0 {
		t.Errorf("AreaUsed after oversized free = %d, want 0", got)
	}
	if got := c.TotalUsed(); got != 0 {
		t.Errorf("TotalUsed after oversized free = %d, want 0", got)
	}
	if got := c.FreeUnderflows(); got != 1 {
		t.Errorf("FreeUnderflows = %d, want 1", got)
	}
	// An exact free is not an underflow.
	if _, err := c.Alloc(mcode.AreaProfile, 40); err != nil {
		t.Fatal(err)
	}
	c.Free(mcode.AreaProfile, 40)
	if got := c.FreeUnderflows(); got != 1 {
		t.Errorf("FreeUnderflows after exact free = %d, want still 1", got)
	}
}

func TestFreeRecyclesBumpPointerWhenAreaRetires(t *testing.T) {
	c := mcode.NewCache(0)
	base1, err := c.Alloc(mcode.AreaProfile, 64)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := c.Alloc(mcode.AreaProfile, 64)
	if err != nil {
		t.Fatal(err)
	}
	if base2 != base1+64 {
		t.Fatalf("second alloc at %#x, want %#x", base2, base1+64)
	}
	// Retire half: the bump pointer must NOT move (live code remains).
	c.Free(mcode.AreaProfile, 64)
	base3, err := c.Alloc(mcode.AreaProfile, 32)
	if err != nil {
		t.Fatal(err)
	}
	if base3 != base2+64 {
		t.Fatalf("alloc after partial free at %#x, want %#x (no recycle)", base3, base2+64)
	}
	// Retire everything: the address space is recycled.
	c.Free(mcode.AreaProfile, 64+32)
	base4, err := c.Alloc(mcode.AreaProfile, 16)
	if err != nil {
		t.Fatal(err)
	}
	if base4 != base1 {
		t.Fatalf("alloc after full retire at %#x, want area base %#x", base4, base1)
	}
	// Recycling the profile area must not disturb other areas.
	if got := c.AreaUsed(mcode.AreaHot); got != 0 {
		t.Errorf("AreaUsed(hot) = %d, want 0", got)
	}
}

// assembleWithSites builds a two-block unit whose first block ends in
// a smashable BindJmp (instruction index 1).
func assembleWithSites(t *testing.T) *mcode.Code {
	t.Helper()
	u := &vasm.Unit{
		Blocks: []*vasm.Block{
			{ID: 0, Instrs: []vasm.Instr{
				{Op: vasm.LdImm, D: 0, A: vasm.InvalidReg, B: vasm.InvalidReg},
				{Op: vasm.BindJmp, D: vasm.InvalidReg, A: vasm.InvalidReg, B: vasm.InvalidReg,
					I64: 0, Ex: &vasm.ExitInfo{BCOff: 7}},
			}},
			{ID: 1, Instrs: []vasm.Instr{
				{Op: vasm.Ret, D: vasm.InvalidReg, A: 0, B: vasm.InvalidReg},
			}},
		},
		Imms: []vasm.ImmValue{{Kind: types.KInt, I: 1}},
	}
	c, err := mcode.Assemble(u)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return c
}

func TestLinkSlabStoreLoadSweep(t *testing.T) {
	c := assembleWithSites(t)
	if c.LoadLink(1) != nil {
		t.Fatal("fresh smash site should be unbound")
	}
	c.StoreLink(1, &mcode.Link{Epoch: 1, Target: "succ"})
	l := c.LoadLink(1)
	if l == nil || l.Epoch != 1 || l.Target != "succ" {
		t.Fatalf("LoadLink after store = %+v", l)
	}
	// Sweeping with the link's own epoch keeps it.
	if swept := c.SweepLinks(1); swept != 0 {
		t.Errorf("SweepLinks(same epoch) cleared %d links, want 0", swept)
	}
	if c.LoadLink(1) == nil {
		t.Fatal("current-epoch link must survive the sweep")
	}
	// A republish bumps the epoch; the stale link must go.
	if swept := c.SweepLinks(2); swept != 1 {
		t.Errorf("SweepLinks(new epoch) cleared %d links, want 1", swept)
	}
	if c.LoadLink(1) != nil {
		t.Fatal("stale link survived the treadmill sweep")
	}
	// Out-of-range loads and stores are harmless no-ops.
	if c.LoadLink(99) != nil {
		t.Error("out-of-range LoadLink should return nil")
	}
	c.StoreLink(99, &mcode.Link{Epoch: 2})

	c.StoreLink(1, &mcode.Link{Epoch: 2})
	count := 0
	c.ForEachLink(func(i int, l *mcode.Link) {
		count++
		if i != 1 || l.Epoch != 2 {
			t.Errorf("ForEachLink visited (%d, epoch %d), want (1, 2)", i, l.Epoch)
		}
	})
	if count != 1 {
		t.Errorf("ForEachLink visited %d links, want 1", count)
	}
}

func TestAssembleSlabOnlyForSmashSites(t *testing.T) {
	// A translation without smash sites carries no slab: stores are
	// no-ops and nothing is ever bound.
	plain, err := mcode.Assemble(&vasm.Unit{
		Blocks: []*vasm.Block{{ID: 0, Instrs: []vasm.Instr{
			{Op: vasm.Ret, D: vasm.InvalidReg, A: 0, B: vasm.InvalidReg},
		}}},
	})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	plain.StoreLink(0, &mcode.Link{Epoch: 1})
	if plain.LoadLink(0) != nil {
		t.Error("slab-less translation accepted a link")
	}
	visited := false
	plain.ForEachLink(func(int, *mcode.Link) { visited = true })
	if visited {
		t.Error("slab-less translation visited a link")
	}
}
