// Package mcode implements the simulated code cache: assembly of
// laid-out Vasm into addressed code, allocation of hot/cold/frozen
// areas, relocation (used when optimized translations are published
// in function-sorted order), and huge-page mapping of the hot area.
package mcode

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vasm"
)

// Code is one assembled translation: the flattened instruction
// stream in layout order with per-instruction addresses.
type Code struct {
	Instrs []vasm.Instr
	// Addr[i] is the simulated address of Instrs[i].
	Addr []uint64
	// BlockIndex maps vasm block id -> index into Instrs of its first
	// instruction.
	BlockIndex map[int]int
	// Imms is the constant pool.
	Imms []vasm.ImmValue
	// Tables holds JmpTable jump tables.
	Tables []vasm.JumpTable
	// NumSpills / ExtSlots size the activation's spill area and
	// extended frame.
	NumSpills int
	ExtSlots  int

	// Base and Size give the translation's placement.
	Base uint64
	Size uint64
}

// instrSize models encoded instruction sizes (bytes) for address
// assignment; the values approximate x86-64 encodings.
func instrSize(in *vasm.Instr) uint64 {
	switch in.Op {
	case vasm.Nop:
		return 0
	case vasm.Jmp:
		if in.I64&1 != 0 {
			return 0 // fallthrough after jump optimization
		}
		return 5
	case vasm.Jcc:
		return 6
	case vasm.JmpTable:
		return 14 // bounds check + indexed load + indirect jump
	case vasm.LdImm:
		return 10
	case vasm.Copy:
		return 3
	case vasm.LdLoc, vasm.StLoc, vasm.LdStk, vasm.Spill, vasm.Reload:
		return 8 // 16-byte cell moves
	case vasm.GuardKind, vasm.GuardCls:
		return 10 // cmp + jcc
	case vasm.IncRef, vasm.DecRef:
		return 12 // check + inc/dec + branch
	case vasm.Helper:
		return 14 // arg moves + call
	case vasm.CallFunc, vasm.CallMethodD, vasm.CallMethodC, vasm.CallBuiltin:
		return 20
	case vasm.Ret:
		return 8
	case vasm.Exit, vasm.BindJmp:
		return 16
	case vasm.CountInc, vasm.ProfCallSite:
		return 7
	case vasm.ArrCount, vasm.LdProp, vasm.StProp, vasm.LdThis:
		return 8
	case vasm.ArrGetPkI:
		return 14
	default:
		return 5 // ALU ops
	}
}

// Assemble flattens a laid-out, register-allocated unit. Addresses
// are relative to 0 until Place assigns a base.
func Assemble(u *vasm.Unit) *Code {
	order := u.Layout
	if order == nil {
		order = make([]int, len(u.Blocks))
		for i := range order {
			order[i] = i
		}
	}
	c := &Code{BlockIndex: map[int]int{}, Imms: u.Imms, Tables: u.Tables,
		NumSpills: u.NumSpills, ExtSlots: u.ExtFrameSlots}
	var off uint64
	for _, bi := range order {
		b := u.Blocks[bi]
		c.BlockIndex[bi] = len(c.Instrs)
		for i := range b.Instrs {
			in := b.Instrs[i]
			c.Instrs = append(c.Instrs, in)
			c.Addr = append(c.Addr, off)
			off += instrSize(&b.Instrs[i])
		}
	}
	// Jump tables live in the translation's rodata: count them into
	// the footprint (8 bytes per entry).
	for _, tbl := range u.Tables {
		off += uint64(8 * (len(tbl.Targets) + 1))
	}
	c.Size = off
	// Empty blocks at the end of the layout need an index too.
	for _, bi := range order {
		if _, ok := c.BlockIndex[bi]; !ok {
			c.BlockIndex[bi] = len(c.Instrs)
		}
	}
	for i := range c.Instrs {
		if c.Instrs[i].Op == vasm.LdImm && int(c.Instrs[i].I64) >= len(c.Imms) {
			panic(fmt.Sprintf("mcode: LdImm #%d out of range (%d imms)\n%s",
				c.Instrs[i].I64, len(c.Imms), u.String()))
		}
	}
	return c
}

// Place rebases the code at base.
func (c *Code) Place(base uint64) {
	c.Base = base
}

// AddrOf returns the absolute address of instruction i.
func (c *Code) AddrOf(i int) uint64 {
	if i < len(c.Addr) {
		return c.Base + c.Addr[i]
	}
	return c.Base + c.Size
}

// Area identifies code-cache regions.
type Area int

const (
	AreaHot Area = iota
	AreaCold
	AreaProfile
	AreaLive
	AreaCount
)

// Cache is the simulated code cache. Each area is a bump allocator;
// the total byte budget models the JITed-code limit swept in the
// paper's Figure 11 experiment.
type Cache struct {
	mu    sync.Mutex
	limit uint64
	used  [AreaCount]uint64
	next  [AreaCount]uint64

	// hugeBytes of the hot area are mapped with 2 MiB pages when
	// huge-page mapping is enabled. Atomic: HugeCovers sits on the
	// instruction-fetch fast path of every worker.
	hugeBytes atomic.Uint64
}

// Area base addresses, spaced far apart so areas never collide.
var areaBase = [AreaCount]uint64{
	AreaHot:     0x0800_0000,
	AreaCold:    0x4000_0000,
	AreaProfile: 0x8000_0000,
	AreaLive:    0xC000_0000,
}

// NewCache creates a cache with a byte limit (0 = unlimited).
func NewCache(limit uint64) *Cache {
	return &Cache{limit: limit}
}

// SetHugePages maps the first bytes of the hot area onto 2 MiB pages.
func (c *Cache) SetHugePages(bytes uint64) {
	c.hugeBytes.Store(bytes)
}

// HugeCovers reports whether addr falls in the huge-page-mapped
// region. Lock-free: concurrent fetch models consult it constantly.
func (c *Cache) HugeCovers(addr uint64) bool {
	hb := c.hugeBytes.Load()
	return hb > 0 && addr >= areaBase[AreaHot] && addr < areaBase[AreaHot]+hb
}

// Alloc reserves size bytes in an area, returning the base address.
// It fails when the total limit would be exceeded (the VM then stops
// JITing, falling back to the interpreter — point D in Figure 9).
func (c *Cache) Alloc(area Area, size uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit > 0 && c.TotalUsedLocked()+size > c.limit {
		return 0, fmt.Errorf("mcode: code cache full (limit %d)", c.limit)
	}
	base := areaBase[area] + c.next[area]
	c.next[area] += size
	c.used[area] += size
	return base, nil
}

// Free returns bytes to the budget (profiling code is discarded after
// the optimized translations are published).
func (c *Cache) Free(area Area, size uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used[area] >= size {
		c.used[area] -= size
	}
}

// ResetArea clears an area's allocation point (relocation pass).
func (c *Cache) ResetArea(area Area) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.used[area] = 0
	c.next[area] = 0
}

// TotalUsed returns bytes allocated across areas.
func (c *Cache) TotalUsed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.TotalUsedLocked()
}

// TotalUsedLocked is TotalUsed without locking (internal).
func (c *Cache) TotalUsedLocked() uint64 {
	var t uint64
	for _, u := range c.used {
		t += u
	}
	return t
}

// AreaUsed returns bytes allocated in one area.
func (c *Cache) AreaUsed(a Area) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used[a]
}

// Limit returns the configured byte budget.
func (c *Cache) Limit() uint64 { return c.limit }
