package experiments

import (
	"fmt"
	"io"

	"repro/internal/fleet"
	"repro/internal/jit"
	"repro/internal/server"
)

// ---------- Fleet: fleet-scale serving with profile aggregation ----------

// FleetResult bundles the fleet experiment's four scenarios plus the
// derived acceptance metrics.
//
// Scenario (a) — warm vs cold restart: one host of a warmed fleet
// restarts, once cold (re-profiles from scratch) and once pulling the
// profile aggregator's warm aggregate; the headline is the ratio of
// their time-to-90%-steady-RPS.
//
// Scenario (b) — rolling deploy: every host of an 8-host fleet
// restarts in a staggered wave with warm aggregates, and the fleet
// must keep carrying at least 80% of offered demand throughout the
// deploy window.
//
// Scenario (c) — overload: demand doubles for nine minutes. With
// shedding wired to the degradation ladder the hottest hosts drop to
// interp-only and everyone survives; with shedding disabled the
// weakest hosts die and their load cascades the fleet to death.
type FleetResult struct {
	// Cold / Warm are scenario (a)'s timelines.
	Cold *fleet.Result `json:"cold"`
	Warm *fleet.Result `json:"warm"`
	// ColdRestartTo90 / WarmRestartTo90 are the restarted host's
	// minutes back to 90% of its steady RPS
	// (server.MinutesTo90Never = never in-window).
	ColdRestartTo90 float64 `json:"coldRestartTo90"`
	WarmRestartTo90 float64 `json:"warmRestartTo90"`
	// WarmSpeedupX is cold/warm restart-to-90 (a lower bound when the
	// cold restart never got there in-window).
	WarmSpeedupX float64 `json:"warmSpeedupX"`

	// Rolling is scenario (b); RollingMinCapPct the worst
	// served/offered percentage over the deploy window.
	Rolling          *fleet.Result `json:"rolling"`
	RollingMinCapPct float64       `json:"rollingMinCapPct"`

	// Shed / NoShed are scenario (c)'s contrasting runs.
	Shed   *fleet.Result `json:"shed"`
	NoShed *fleet.Result `json:"noShed"`
	// InterpOnlyHosts counts hosts the shedding run walked all the way
	// to interp-only; ShedDeaths / NoShedDeaths the hosts lost with
	// and without shedding.
	InterpOnlyHosts int `json:"interpOnlyHosts"`
	ShedDeaths      int `json:"shedDeaths"`
	NoShedDeaths    int `json:"noShedDeaths"`

	// Mismatches totals request outputs that differed from single-host
	// serving across every scenario (must be 0).
	Mismatches uint64 `json:"mismatches"`
	// WallMS is host wall-clock milliseconds per scenario run — the
	// real-time cost alongside the simulated guest-cycle numbers.
	WallMS map[string]float64 `json:"wallMS"`
}

// Fleet runs the four fleet scenarios. quick trims the simulated-user
// population; the fleet shapes and horizons stay at acceptance size
// (the simulation is cheap enough that CI runs the full shapes).
func Fleet(quick bool) (*FleetResult, error) {
	res := &FleetResult{WallMS: map[string]float64{}}

	runScenario := func(name string, cfg fleet.Config) (*fleet.Result, error) {
		r, err := fleet.Simulate(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %w", name, err)
		}
		res.WallMS[name] = float64(r.WallClock.Microseconds()) / 1000
		res.Mismatches += r.OutputMismatches
		return r, nil
	}

	base := fleet.DefaultConfig()
	if quick {
		base.Users = 200_000
	}

	// (a) Warm vs cold restart of one host in a 4-host fleet.
	restartCfg := base
	restartCfg.Hosts = 4
	restartCfg.Minutes = 18
	restartCfg.RestartAt = 8
	restartCfg.RestartCount = 1
	var err error
	if res.Cold, err = runScenario("cold-restart", restartCfg); err != nil {
		return nil, err
	}
	warmCfg := restartCfg
	warmCfg.WarmRestart = true
	if res.Warm, err = runScenario("warm-restart", warmCfg); err != nil {
		return nil, err
	}
	res.ColdRestartTo90 = restartTo90(res.Cold)
	res.WarmRestartTo90 = restartTo90(res.Warm)
	cold, warm := res.ColdRestartTo90, res.WarmRestartTo90
	if cold == server.MinutesTo90Never {
		// Never reached in-window: score the window end as a lower
		// bound so the speedup stays a conservative underestimate.
		cold = float64(restartCfg.Minutes - restartCfg.RestartAt - restartCfg.RestartDown)
	}
	if warm != server.MinutesTo90Never && warm > 0 {
		res.WarmSpeedupX = cold / warm
	}

	// (b) Warm rolling deploy across all 8 hosts.
	rollCfg := base
	rollCfg.Minutes = 22
	rollCfg.RestartAt = 10
	rollCfg.WarmRestart = true
	rollCfg.DiurnalAmp = 0.1
	if res.Rolling, err = runScenario("rolling-deploy", rollCfg); err != nil {
		return nil, err
	}
	// Deploy window: first host down through last host's first minute
	// back in rotation.
	deployEnd := rollCfg.RestartAt + (rollCfg.Hosts-1)*rollCfg.RestartStagger + rollCfg.RestartDown + 1
	res.RollingMinCapPct = res.Rolling.MinCapacityPct(rollCfg.RestartAt+1, deployEnd+1)

	// (c) 2x overload for nine minutes, shedding on vs off. Flat
	// diurnal so the overload window is the only demand perturbation.
	overCfg := base
	overCfg.Minutes = 24
	overCfg.DiurnalAmp = 0
	overCfg.OverloadAt = 9
	overCfg.OverloadMinutes = 9
	overCfg.ShedRatio = 1.25
	if res.Shed, err = runScenario("overload-shed", overCfg); err != nil {
		return nil, err
	}
	noShedCfg := overCfg
	noShedCfg.DisableShed = true
	noShedCfg.DeathBacklog = 1.5
	if res.NoShed, err = runScenario("overload-noshed", noShedCfg); err != nil {
		return nil, err
	}
	for _, d := range res.Shed.MaxDegradePerHost {
		if d >= jit.DegradeInterpOnly {
			res.InterpOnlyHosts++
		}
	}
	res.ShedDeaths = res.Shed.HostsDied
	res.NoShedDeaths = res.NoShed.HostsDied
	return res, nil
}

// restartTo90 pulls the restarted host's warmup metric from scenario
// (a)'s single restart record.
func restartTo90(r *fleet.Result) float64 {
	if len(r.Restarts) == 0 {
		return server.MinutesTo90Never
	}
	return r.Restarts[0].MinutesTo90
}

// Check validates the acceptance criteria; the first failure is
// returned as an error so bench can gate CI on it.
func (r *FleetResult) Check() error {
	if r.Mismatches > 0 {
		return fmt.Errorf("%d request outputs diverged from single-host serving", r.Mismatches)
	}
	if r.WarmRestartTo90 == server.MinutesTo90Never {
		return fmt.Errorf("warm-aggregate restart never reached 90%% steady RPS")
	}
	if r.WarmSpeedupX < 2 {
		return fmt.Errorf("warm restart only %.2fx faster than cold to 90%% steady RPS (need >= 2x)", r.WarmSpeedupX)
	}
	if r.RollingMinCapPct < 80 {
		return fmt.Errorf("rolling deploy dropped fleet capacity to %.1f%% (need >= 80%%)", r.RollingMinCapPct)
	}
	if r.InterpOnlyHosts == 0 {
		return fmt.Errorf("overload with shedding never degraded a host to interp-only")
	}
	if r.ShedDeaths > 0 {
		return fmt.Errorf("%d hosts died under overload despite shedding", r.ShedDeaths)
	}
	return nil
}

// ReportFleet renders the scenario summaries, the full rolling-deploy
// timeline, and the acceptance verdicts.
func ReportFleet(w io.Writer, r *FleetResult) {
	fmt.Fprintf(w, "Fleet — fleet-scale serving with central profile aggregation (DESIGN.md §12)\n\n")

	fmt.Fprintf(w, "(a) restart one of %d hosts, cold vs warm-aggregate jumpstart:\n", r.Cold.Hosts)
	fmt.Fprintf(w, "    cold  restart to 90%% steady RPS: %s\n", fmtMinutesTo90(r.ColdRestartTo90))
	fmt.Fprintf(w, "    warm  restart to 90%% steady RPS: %s", fmtMinutesTo90(r.WarmRestartTo90))
	if len(r.Warm.Restarts) > 0 {
		rec := r.Warm.Restarts[0]
		fmt.Fprintf(w, "  (%d translations, aggregate %.0f min stale)", rec.LoadedTrans, rec.StalenessMin)
	}
	fmt.Fprintf(w, "\n    warm speedup: %.1fx (acceptance: >= 2x)\n\n", r.WarmSpeedupX)

	fmt.Fprintf(w, "(b) warm rolling deploy across all %d hosts:\n", r.Rolling.Hosts)
	fmt.Fprintf(w, "    min fleet capacity during deploy window: %.1f%% (acceptance: >= 80%%)\n", r.RollingMinCapPct)
	fmt.Fprintf(w, "    restarts: %d, hosts died: %d\n\n", len(r.Rolling.Restarts), r.Rolling.HostsDied)

	fmt.Fprintf(w, "(c) 2x overload for 9 minutes, shed (degradation ladder) vs no-shed:\n")
	fmt.Fprintf(w, "    shed:    %d/%d hosts walked to interp-only, %d died, %.0f requests shed\n",
		r.InterpOnlyHosts, r.Shed.Hosts, r.ShedDeaths, r.Shed.ShedRequests)
	fmt.Fprintf(w, "    no-shed: %d/%d hosts died, %.0f requests lost\n\n",
		r.NoShedDeaths, r.NoShed.Hosts, r.NoShed.LostRequests)

	fmt.Fprintf(w, "output mismatches vs single-host serving (all runs): %d\n", r.Mismatches)
	fmt.Fprintf(w, "wall clock per scenario (ms):")
	for _, k := range []string{"cold-restart", "warm-restart", "rolling-deploy", "overload-shed", "overload-noshed"} {
		fmt.Fprintf(w, " %s=%.0f", k, r.WallMS[k])
	}
	fmt.Fprintf(w, "\n\n--- rolling-deploy timeline ---\n")
	fleet.Report(w, r.Rolling)
}

func fmtMinutesTo90(m float64) string {
	if m == server.MinutesTo90Never {
		return "never (in-window)"
	}
	return fmt.Sprintf("%.0f min", m)
}
