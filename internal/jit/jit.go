// Package jit orchestrates the three compilation modes of the HHVM
// JIT (Section 4.1): live tracelet translations, instrumented
// profiling translations, and profile-guided optimized region
// translations published at a global retranslation trigger with
// function sorting and huge-page mapping (Section 5.1).
//
// Concurrency model (DESIGN.md §9): the translation index is
// published RCU-style through an atomic pointer, so the dispatch path
// (Lookup / HasMatch) is lock-free; all mutation — installing a
// translation, the global optimized publish — copies the index under
// a writer mutex and swaps the new map in atomically. Translation
// creation is deduplicated with a per-(func,PC) single-flight table,
// and the global retranslation can run on a background compiler
// goroutine while workers keep executing profiling translations.
package jit

import (
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
)

// Mode selects the execution strategy (the Figure 8 comparison).
type Mode int

const (
	// ModeInterp never JITs.
	ModeInterp Mode = iota
	// ModeTracelet is the first-generation design: live tracelets
	// only.
	ModeTracelet
	// ModeProfiling runs profiling translations forever (the JIT-
	// Profile bar in Figure 8).
	ModeProfiling
	// ModeRegion is the full second-generation design.
	ModeRegion
)

func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "interp"
	case ModeTracelet:
		return "tracelet"
	case ModeProfiling:
		return "profiling"
	default:
		return "region"
	}
}

// Config toggles the optimizations evaluated in Figure 10.
type Config struct {
	Mode Mode

	EnableInlining       bool
	EnableRCE            bool
	EnableGuardRelax     bool
	EnableMethodDispatch bool
	// PGOLayout uses profile counts for block layout / hot-cold
	// splitting; FunctionSort orders translations by the C3
	// heuristic; HugePages maps the hot area onto 2 MiB pages.
	PGOLayout    bool
	FunctionSort bool
	HugePages    bool

	// EnableShapes turns on typed object shapes in the compiler
	// (DESIGN.md §14): profiling translations record receiver shapes
	// per property site, optimized translations compile monomorphic
	// sites to GuardShape + fixed-slot access and polymorphic ones to
	// shape-guarded inline caches. Runtime shape maintenance is
	// unconditional — the toggle changes generated code only, so guest
	// outputs are bit-identical either way.
	EnableShapes bool

	// EnableChaining turns on direct translation chaining: bind jumps
	// and direct call sites are smashed with links to their resolved
	// successor translations, so steady-state transfers stay inside
	// Machine.Exec instead of round-tripping through the dispatcher
	// (Sections 2 and 5 — the smashed service requests of the paper).
	EnableChaining bool

	// BackgroundCompile runs the global retranslation on a dedicated
	// compiler goroutine (HHVM's JIT worker threads): request workers
	// keep executing profiling translations until the optimized index
	// is swapped in. Off by default so single-worker runs stay
	// deterministic (the trigger compiles inline, charged to the
	// triggering worker).
	BackgroundCompile bool

	// CompileWorkers > 1 replaces the global compile mutex with
	// per-function translation leases (lease.go) and fans the global
	// retranslation's backend compiles over that many goroutines.
	// Placement into the code cache stays sequential in function-
	// sorted order, so addresses, huge-page coverage, and guest
	// cycles are identical to the serial path. <= 1 keeps the legacy
	// single-compiler behavior.
	CompileWorkers int

	// FuseDispatch runs the post-regalloc fusion pass (vasm.Fuse) and
	// prepares compiled code for the machine's fast dispatch path
	// (machine.PrepareDispatch): superinstructions, per-run static-
	// cycle settlement, handler-table dispatch. Guest outputs and
	// cycle totals are bit-identical with it on or off; it only
	// changes host-side speed.
	FuseDispatch bool

	// CodeCacheLimit bounds total JITed bytes (0 = default 64 MiB).
	CodeCacheLimit uint64
	// ProfileTrigger fires global retranslation after this many
	// function-entry events (0 = default).
	ProfileTrigger uint64
	// MaxLiveChain bounds live retranslation chains per address.
	MaxLiveChain int
	// LiveThreshold: entries before a live translation is made.
	LiveThreshold uint64

	// Faults, when non-nil, threads deterministic fault injection
	// through the compile pipeline, code cache, translation executor,
	// and snapshot loader (DESIGN.md §11). Nil in production.
	Faults *faultinject.Injector
	// QuarantineBase is the initial retry backoff after a compile
	// failure or contained fault, measured in function-entry events;
	// it doubles per consecutive failure (0 = default 32).
	QuarantineBase uint64
	// QuarantineMaxAttempts caps compile retries at one address before
	// it is demoted to interp-only for good (0 = default 6).
	QuarantineMaxAttempts int
	// FaultDemote is the number of contained execution faults at one
	// address before its translations are unpublished from the index
	// and the address demoted to interp-only (0 = default 3).
	FaultDemote int
}

// Degradation ladder levels (DESIGN.md §11): when code-cache
// recycling cannot free enough space, the JIT sheds work in stages
// instead of wedging — first new live translations, then all minting,
// finally execution of JITed code itself.
const (
	// DegradeNone: normal operation.
	DegradeNone int32 = iota
	// DegradeNoLiveMint: stop minting new live translations.
	DegradeNoLiveMint
	// DegradeNoMint: stop minting translations of any kind.
	DegradeNoMint
	// DegradeInterpOnly: stop dispatching to JITed code entirely.
	DegradeInterpOnly
)

// DefaultConfig is the full region JIT with everything on.
func DefaultConfig() Config {
	return Config{
		Mode:                 ModeRegion,
		EnableInlining:       true,
		EnableRCE:            true,
		EnableGuardRelax:     true,
		EnableMethodDispatch: true,
		EnableShapes:         true,
		EnableChaining:       true,
		PGOLayout:            true,
		FunctionSort:         true,
		HugePages:            true,
		FuseDispatch:         true,
		CodeCacheLimit:       64 << 20,
		ProfileTrigger:       1500,
		MaxLiveChain:         12,
		LiveThreshold:        2,
	}
}

// Translation is one compiled region resident in the code cache.
type Translation struct {
	FuncID int
	PC     int
	Kind   Mode // which pipeline produced it
	// Preconds are the dispatcher-checked entry conditions.
	Preconds []region.Guard
	// EntryDepth is the required eval-stack depth at entry.
	EntryDepth int
	Code       *mcode.Code
	// ProfID is the profiling counter (profiling translations).
	ProfID profile.TransID
	// Desc is kept for region reuse (inlining) and diagnostics.
	Desc *region.Desc

	// uses counts successful guard matches (dispatcher, chaining and
	// OSR paths alike): the hotness signal cache recycling sorts by
	// when evicting cold translations under pressure.
	uses atomic.Uint64
}

// Uses returns the translation's successful-match count.
func (tr *Translation) Uses() uint64 { return tr.uses.Load() }

// Translation implements machine.ChainTarget: a smashed link holds a
// *Translation and the machine tail-transfers into it after recheck.

// ChainCode returns the assembled code (machine.ChainTarget).
func (tr *Translation) ChainCode() *mcode.Code { return tr.Code }

// ChainMatch rechecks entry conditions against the live frame
// (machine.ChainTarget).
func (tr *Translation) ChainMatch(fr *interp.Frame) bool { return tr.Matches(fr) }

// ChainGuards is the precondition count, charged per chained transfer
// (machine.ChainTarget).
func (tr *Translation) ChainGuards() int { return len(tr.Preconds) }

// Matches checks the translation's dispatcher-visible entry
// conditions (stack depth + type preconditions) against live frame
// state. Lock-free; used by the dispatcher and the chaining path.
func (tr *Translation) Matches(fr *interp.Frame) bool {
	if tr.EntryDepth != len(fr.Stack) {
		return false
	}
	src := frameTypeSource{fr}
	for _, g := range tr.Preconds {
		var t types.Type
		if g.Loc.Kind == region.LocLocal {
			t = src.LocalType(g.Loc.Slot)
		} else {
			t = src.StackType(g.Loc.Slot)
		}
		if !t.SubtypeOf(g.Type) {
			return false
		}
	}
	tr.uses.Add(1)
	return true
}

type transKey struct {
	fn int
	pc int
}

// transIndex is the RCU-published translation index: immutable once
// stored, replaced wholesale by writers.
type transIndex map[transKey][]*Translation

// Stats tracks JIT activity for the evaluation harness. All fields
// are updated atomically (workers bump them concurrently); read a
// consistent copy through JIT.Stats().
type Stats struct {
	LiveTranslations      uint64
	ProfilingTranslations uint64
	OptimizedTranslations uint64
	BytesLive             uint64
	BytesProfiling        uint64
	BytesOptimized        uint64
	GuardFails            uint64
	Entries               uint64
	OptimizeRuns          uint64
	CacheFullEvents       uint64
	// PartialPublishFuncs counts profiled functions whose optimized
	// regions could not all be compiled at the global trigger (code
	// cache full); they stay on their profiling translations.
	PartialPublishFuncs uint64

	// Execution breakdown (simulated cycles and event counts).
	MachineCycles uint64
	// MachineCycles split by the kind of translation entered: live
	// tracelets, profiling translations, optimized regions. The
	// live/optimized split is the paper's "time in live translations"
	// steady-state metric.
	MachineCyclesLive      uint64
	MachineCyclesProfiling uint64
	MachineCyclesOptimized uint64
	InterpCycles           uint64
	MachineEnters          uint64
	SideExits              uint64
	BindRequests           uint64
	InterpRuns             uint64

	// Lookups counts dispatcher Lookup calls — the number chaining is
	// meant to drive down (steady state: one per request, not one per
	// block transfer).
	Lookups uint64

	// Direct-chaining activity (mirrors machine.ChainStats).
	BindsSmashed    uint64
	ChainedJumps    uint64
	ChainedCalls    uint64
	StaleLinks      uint64
	ChainMismatches uint64
	LinksSwept      uint64

	// Typed-object-shape activity (mirrors machine.ShapeStats).
	ShapeGuards      uint64
	ShapeGuardFails  uint64
	PropICHits       uint64
	PropICMisses     uint64
	PropICMega       uint64
	PropICStale      uint64
	GenericPropCalls uint64

	// Fault containment and self-healing (DESIGN.md §11).
	// TransFaults counts contained translation faults (panic or
	// internal error converted to an interpreter re-execution).
	TransFaults uint64
	// CompileFailures counts failed compile attempts (injected or
	// genuine); each quarantines its (func, PC) with backoff.
	CompileFailures uint64
	// QuarantineRetries counts mint attempts at a previously
	// quarantined address whose backoff expired.
	QuarantineRetries uint64
	// QuarantineRecoveries counts addresses that compiled successfully
	// after one or more quarantined failures.
	QuarantineRecoveries uint64
	// Demotions counts addresses demoted to interp-only for good
	// (fault threshold or retry budget exhausted).
	Demotions uint64
	// Unpublished counts translations removed from the index by fault
	// demotion or cache recycling.
	Unpublished uint64
	// RecycleRuns / Evictions / EvictedBytes describe code-cache
	// recycling episodes.
	RecycleRuns  uint64
	Evictions    uint64
	EvictedBytes uint64

	// Quarantined is a gauge: addresses currently under quarantine
	// (including permanent demotions).
	Quarantined uint64
	// DegradeLevel is the current degradation-ladder level gauge.
	DegradeLevel uint64

	// Compile-parallelism counters (CompileWorkers > 1).
	// LeaseAcquires counts per-function lease acquisitions,
	// LeaseWaits those that blocked on a held lease, and LeaseSteals
	// optimizer (writer) acquisitions that took priority over queued
	// minting workers.
	LeaseAcquires uint64
	LeaseWaits    uint64
	LeaseSteals   uint64
	// PeakCompileParallelism is the high-water mark of concurrently
	// running backend compiles.
	PeakCompileParallelism uint64
	// FusedInstrs counts instructions eliminated by dispatch fusion.
	FusedInstrs uint64
}

// JIT owns the translation cache and compilation pipelines. One JIT
// is shared by every worker VM executing the unit; per-worker state
// (interpreter env, heap, meter, machine) lives in the workers.
type JIT struct {
	Cfg      Config
	Env      *interp.Env
	Unit     *hhbc.Unit
	Counters *profile.Counters
	Cache    *mcode.Cache
	// Meter is the primary worker's meter; synchronous compiles are
	// charged to the meter of the worker that requested them.
	Meter *machine.Meter
	// CompileMeter absorbs background-compiler cycles (a dedicated
	// core in real HHVM) so they are not charged to any worker.
	CompileMeter *machine.Meter

	// trans is the RCU-published translation index: loads are
	// lock-free, stores happen under mu on a fresh copy.
	trans atomic.Pointer[transIndex]

	// epoch is the translation-index version chain links are stamped
	// with. It advances only when translations are retired (the
	// OptimizeAll republish); links stamped with an older value are
	// stale and machines fall back to the dispatch path.
	epoch atomic.Uint64
	// Chain aggregates direct-chaining statistics across every worker
	// machine (each worker's Machine.Chain points here).
	Chain machine.ChainStats
	// Shapes aggregates shape-guard and property-IC statistics across
	// every worker machine (each worker's Machine.Shapes points here).
	Shapes machine.ShapeStats

	// mu is the writer mutex: index publication and the mutable
	// tables below.
	mu sync.Mutex
	// profBlocks collects profiling region blocks per function.
	profBlocks map[int][]*region.Block
	profIDs    map[int][]profile.TransID
	// translationByProfID resolves arcs.
	byProfID map[profile.TransID]*Translation

	entryCount map[transKey]uint64
	// quarantine tracks addresses whose compiles failed or whose
	// translations faulted: retried with capped exponential backoff,
	// demoted to interp-only when the budget runs out (DESIGN.md §11).
	// Replaces the old permanent blacklist.
	quarantine map[transKey]*quarantineEntry
	// inflight is the single-flight table: one minting compile per
	// (func, PC) at a time; losers wait and re-check the index.
	inflight map[transKey]chan struct{}

	// compileMu serializes backend compiles when CompileWorkers <= 1
	// (one compiler thread, like HHVM's original global write lease).
	compileMu sync.Mutex
	// leases replaces compileMu with per-function translation leases
	// when CompileWorkers > 1.
	leases *leaseTable
	// compilesRunning / peakCompiles gauge concurrent backend
	// compiles (PeakCompileParallelism).
	compilesRunning atomic.Int64
	peakCompiles    atomic.Uint64

	// onPublish / onUnpublish are the sentry's verification hooks
	// (DESIGN.md §15): onPublish fires for every translation installed
	// into the index (checksum registration), onUnpublish for every
	// translation removed (demotion, recycling, the optimized
	// republish's profiling retirement). Both run under j.mu — hook
	// bodies must not call back into the JIT. Set once at engine
	// construction, before any translation exists.
	onPublish   func(*Translation)
	onUnpublish func(*Translation)

	entries    atomic.Uint64
	optStarted atomic.Bool // global retranslation claimed
	optimized  atomic.Bool // optimized index published
	// cacheFull latches on genuine cache exhaustion; cleared again when
	// recycling frees space (it is a pressure valve, not a tombstone).
	cacheFull atomic.Bool
	// degrade is the current degradation-ladder level (Degrade*).
	degrade atomic.Int32

	stats Stats
}

// New wires a JIT to an environment.
func New(cfg Config, env *interp.Env, meter *machine.Meter) *JIT {
	if cfg.CodeCacheLimit == 0 {
		cfg.CodeCacheLimit = 64 << 20
	}
	if cfg.ProfileTrigger == 0 {
		cfg.ProfileTrigger = 400
	}
	if cfg.MaxLiveChain == 0 {
		cfg.MaxLiveChain = 4
	}
	if cfg.LiveThreshold == 0 {
		cfg.LiveThreshold = 2
	}
	if cfg.QuarantineBase == 0 {
		cfg.QuarantineBase = 32
	}
	if cfg.QuarantineMaxAttempts == 0 {
		cfg.QuarantineMaxAttempts = 6
	}
	if cfg.FaultDemote == 0 {
		cfg.FaultDemote = 3
	}
	j := &JIT{
		Cfg:          cfg,
		Env:          env,
		Unit:         env.Unit,
		Counters:     profile.NewCounters(),
		Cache:        mcode.NewCache(cfg.CodeCacheLimit),
		Meter:        meter,
		CompileMeter: &machine.Meter{},
		profBlocks:   map[int][]*region.Block{},
		profIDs:      map[int][]profile.TransID{},
		byProfID:     map[profile.TransID]*Translation{},
		entryCount:   map[transKey]uint64{},
		quarantine:   map[transKey]*quarantineEntry{},
		inflight:     map[transKey]chan struct{}{},
	}
	j.Cache.Faults = cfg.Faults
	if cfg.CompileWorkers > 1 {
		j.leases = newLeaseTable()
	}
	empty := transIndex{}
	j.trans.Store(&empty)
	return j
}

// Stats returns a consistent copy of the counters.
func (j *JIT) Stats() Stats {
	ld := func(p *uint64) uint64 { return atomic.LoadUint64(p) }
	s := &j.stats
	out := Stats{
		LiveTranslations:      ld(&s.LiveTranslations),
		ProfilingTranslations: ld(&s.ProfilingTranslations),
		OptimizedTranslations: ld(&s.OptimizedTranslations),
		BytesLive:             ld(&s.BytesLive),
		BytesProfiling:        ld(&s.BytesProfiling),
		BytesOptimized:        ld(&s.BytesOptimized),
		GuardFails:            ld(&s.GuardFails),
		Entries:               ld(&s.Entries),
		OptimizeRuns:          ld(&s.OptimizeRuns),
		CacheFullEvents:       ld(&s.CacheFullEvents),
		PartialPublishFuncs:   ld(&s.PartialPublishFuncs),

		MachineCycles:          ld(&s.MachineCycles),
		MachineCyclesLive:      ld(&s.MachineCyclesLive),
		MachineCyclesProfiling: ld(&s.MachineCyclesProfiling),
		MachineCyclesOptimized: ld(&s.MachineCyclesOptimized),
		InterpCycles:           ld(&s.InterpCycles),
		MachineEnters:          ld(&s.MachineEnters),
		SideExits:              ld(&s.SideExits),
		BindRequests:           ld(&s.BindRequests),
		InterpRuns:             ld(&s.InterpRuns),
		Lookups:                ld(&s.Lookups),

		BindsSmashed:    j.Chain.BindsSmashed.Load(),
		ChainedJumps:    j.Chain.ChainedJumps.Load(),
		ChainedCalls:    j.Chain.ChainedCalls.Load(),
		StaleLinks:      j.Chain.StaleLinks.Load(),
		ChainMismatches: j.Chain.ChainMismatches.Load(),
		LinksSwept:      j.Chain.LinksSwept.Load(),

		ShapeGuards:      j.Shapes.Guards.Load(),
		ShapeGuardFails:  j.Shapes.GuardFails.Load(),
		PropICHits:       j.Shapes.ICHits.Load(),
		PropICMisses:     j.Shapes.ICMisses.Load(),
		PropICMega:       j.Shapes.ICMega.Load(),
		PropICStale:      j.Shapes.ICStaleDropped.Load(),
		GenericPropCalls: j.Shapes.GenericPropCalls.Load(),

		TransFaults:          ld(&s.TransFaults),
		CompileFailures:      ld(&s.CompileFailures),
		QuarantineRetries:    ld(&s.QuarantineRetries),
		QuarantineRecoveries: ld(&s.QuarantineRecoveries),
		Demotions:            ld(&s.Demotions),
		Unpublished:          ld(&s.Unpublished),
		RecycleRuns:          ld(&s.RecycleRuns),
		Evictions:            ld(&s.Evictions),
		EvictedBytes:         ld(&s.EvictedBytes),
		Quarantined:          j.quarantinedCount(),
		DegradeLevel:         uint64(j.degrade.Load()),

		PeakCompileParallelism: j.peakCompiles.Load(),
		FusedInstrs:            ld(&s.FusedInstrs),
	}
	if j.leases != nil {
		out.LeaseAcquires, out.LeaseWaits, out.LeaseSteals = j.leases.statsSnapshot()
	}
	return out
}

// SetVerifyHooks registers the sentry's publish/unpublish observers.
// Call before the engine serves requests: hooks are not retroactive,
// and unhooked translations would audit as unknown.
func (j *JIT) SetVerifyHooks(onPublish, onUnpublish func(*Translation)) {
	j.mu.Lock()
	j.onPublish = onPublish
	j.onUnpublish = onUnpublish
	j.mu.Unlock()
}

// EpochVar exposes the link-epoch counter for worker machines
// (Machine.Epoch points here).
func (j *JIT) EpochVar() *atomic.Uint64 { return &j.epoch }

// Epoch returns the current link-epoch value.
func (j *JIT) Epoch() uint64 { return j.epoch.Load() }

// Smash binds the smash site (code, instr) — a BindJmp the machine
// just exited through — to tr, so the next transfer chains directly.
// No-ops when chaining is off or either side is unchainable
// (profiling translations bounce through the dispatcher so their
// counters and arcs keep recording).
func (j *JIT) Smash(code *mcode.Code, instr int, tr *Translation) {
	if !j.Cfg.EnableChaining || code == nil || tr == nil {
		return
	}
	if !code.Chainable || tr.Code == nil || !tr.Code.Chainable {
		return
	}
	epoch := j.epoch.Load()
	if l := code.LoadLink(instr); l != nil && l.Epoch == epoch && l.Target == tr {
		return
	}
	if j.Cfg.Faults.Should(faultinject.StaleLink) && epoch > 0 {
		// Inject a link stamped with the previous epoch: followers must
		// detect it as stale and fall back to the dispatch path rather
		// than transfer through it.
		code.StoreLink(instr, &mcode.Link{Epoch: epoch - 1, Target: tr})
		j.Chain.BindsSmashed.Add(1)
		return
	}
	if j.Cfg.Faults.Should(faultinject.TornLink) {
		// Torn write: the target half of the patch landed but the epoch
		// stamp is from a version that has never been published (epoch+1
		// cannot exist yet — epochs only advance under j.mu). Followers
		// treat the mismatched stamp as stale and fall back, and the
		// sentry auditor flags the future epoch as a torn write
		// (DESIGN.md §15) rather than a benign leftover.
		code.StoreLink(instr, &mcode.Link{Epoch: epoch + 1, Target: tr})
		j.Chain.BindsSmashed.Add(1)
		return
	}
	code.StoreLink(instr, &mcode.Link{Epoch: epoch, Target: tr})
	j.Chain.BindsSmashed.Add(1)
}

// NoteInterpRun accounts one interpreter stretch (worker hot path).
func (j *JIT) NoteInterpRun(cycles uint64) {
	atomic.AddUint64(&j.stats.InterpCycles, cycles)
	atomic.AddUint64(&j.stats.InterpRuns, 1)
}

// NoteMachineExec accounts one translation execution.
func (j *JIT) NoteMachineExec(kind Mode, cycles uint64, guardFails int) {
	atomic.AddUint64(&j.stats.MachineCycles, cycles)
	switch kind {
	case ModeTracelet:
		atomic.AddUint64(&j.stats.MachineCyclesLive, cycles)
	case ModeProfiling:
		atomic.AddUint64(&j.stats.MachineCyclesProfiling, cycles)
	case ModeRegion:
		atomic.AddUint64(&j.stats.MachineCyclesOptimized, cycles)
	}
	atomic.AddUint64(&j.stats.MachineEnters, 1)
	atomic.AddUint64(&j.stats.GuardFails, uint64(guardFails))
}

// NoteSideExit / NoteBindRequest account translation exit kinds.
func (j *JIT) NoteSideExit()    { atomic.AddUint64(&j.stats.SideExits, 1) }
func (j *JIT) NoteBindRequest() { atomic.AddUint64(&j.stats.BindRequests, 1) }

// frameTypeSource adapts a live frame to the region selector.
type frameTypeSource struct{ fr *interp.Frame }

func (s frameTypeSource) LocalType(slot int) types.Type {
	if slot < len(s.fr.Locals) {
		return s.fr.Locals[slot].Type()
	}
	return types.TUninit
}

func (s frameTypeSource) StackType(depth int) types.Type {
	if depth < len(s.fr.Stack) {
		return s.fr.Stack[depth].Type()
	}
	return types.TCell
}

// shapeSource extends any TypeSource with typed-object-shape facts
// (region.ShapeFactSource). Its presence switches the selector's
// property-access policy from exact-class specialization to bare
// object-ness — the optimized body carries a shape guard or IC for the
// layout instead — and property reads at shape-monomorphic sites flow
// their recorded slot kind into the selector, so tracelets keep
// tracing through them.
type shapeSource struct {
	region.TypeSource
	j *JIT
}

func (s shapeSource) PropReadType(fnID, pc int, name string) types.Type {
	sp := s.j.Counters.PropShapes(profile.CallSite{FuncID: fnID, PC: pc})
	if sp == nil || sp.Total < profile.ShapeWarmMin || len(sp.Shapes) != 1 {
		return types.TInitCell
	}
	sh := s.j.Env.Shapes.ByID(sp.Shapes[0].Shape)
	if sh == nil {
		return types.TInitCell
	}
	slot, ok := sh.Lookup(name)
	if !ok {
		return types.TInitCell
	}
	return types.FromKind(sh.SlotKind(slot))
}

// guardsMatch checks a translation's preconditions against live frame
// state.
func (j *JIT) guardsMatch(tr *Translation, fr *interp.Frame) bool {
	return tr.Matches(fr)
}

// ChainFallback resolves a transfer whose smashed link's guards
// missed: it scans the published chain at (fnID, pc) for another
// matching chainable translation — the in-cache guard cascade of a
// retranslation cluster — without touching the dispatcher's minting
// path. Lock-free.
func (j *JIT) ChainFallback(fnID, pc int, fr *interp.Frame, m *machine.Meter) *Translation {
	for _, tr := range (*j.trans.Load())[transKey{fnID, pc}] {
		m.Charge(uint64(3 + 2*len(tr.Preconds)))
		if tr.Code.Chainable && tr.Matches(fr) {
			return tr
		}
	}
	return nil
}

// findMatch scans the published chain for a guard-matching
// translation, charging the per-candidate dispatch fee to m.
func (j *JIT) findMatch(key transKey, fr *interp.Frame, m *machine.Meter) *Translation {
	for _, tr := range (*j.trans.Load())[key] {
		m.Charge(uint64(3 + 2*len(tr.Preconds))) // chain guard checks
		if j.guardsMatch(tr, fr) {
			return tr
		}
	}
	return nil
}

// Lookup finds (or creates, subject to thresholds) a translation for
// (fn, fr.PC) matching the live frame types, charging dispatch and
// compile fees to the calling worker's meter m. Returns nil to stay
// in the interpreter. The fast path is a lock-free read of the
// RCU-published index; the minting slow path serializes per key.
func (j *JIT) Lookup(fn *hhbc.Func, fr *interp.Frame, m *machine.Meter) *Translation {
	if j.Cfg.Mode == ModeInterp || j.degrade.Load() >= DegradeInterpOnly {
		return nil
	}
	atomic.AddUint64(&j.stats.Lookups, 1)
	key := transKey{fn.ID, fr.PC}
	if tr := j.findMatch(key, fr, m); tr != nil {
		return tr
	}
	// Nothing matches: consider translating.
	if j.cacheFull.Load() || j.degrade.Load() >= DegradeNoMint {
		return nil
	}
	for {
		j.mu.Lock()
		// A racing worker may have published a match meanwhile.
		if tr := j.findMatch(key, fr, m); tr != nil {
			j.mu.Unlock()
			return tr
		}
		if j.quarantinedLocked(key) || j.cacheFull.Load() {
			j.mu.Unlock()
			return nil
		}
		if done, busy := j.inflight[key]; busy {
			// Single-flight: another worker is minting this key. Wait
			// for its publish, then re-check; if its guard set fits,
			// share it, otherwise loop around and mint our own.
			j.mu.Unlock()
			<-done
			if tr := j.findMatch(key, fr, m); tr != nil {
				return tr
			}
			continue
		}
		j.entryCount[key]++
		var mint func(*hhbc.Func, *interp.Frame, *machine.Meter) *Translation
		liveMint := false
		chain := (*j.trans.Load())[key]
		switch j.Cfg.Mode {
		case ModeTracelet:
			if j.entryCount[key] < j.Cfg.LiveThreshold || len(chain) >= j.Cfg.MaxLiveChain {
				j.mu.Unlock()
				return nil
			}
			mint, liveMint = j.translateLive, true
		case ModeProfiling:
			if len(chain) >= j.Cfg.MaxLiveChain {
				j.mu.Unlock()
				return nil
			}
			mint = j.translateProfiling
		case ModeRegion:
			if !j.optimized.Load() {
				if len(chain) >= j.Cfg.MaxLiveChain {
					j.mu.Unlock()
					return nil
				}
				mint = j.translateProfiling
			} else {
				// Post-optimization: new code gets live translations.
				if j.entryCount[key] < j.Cfg.LiveThreshold || len(chain) >= j.Cfg.MaxLiveChain {
					j.mu.Unlock()
					return nil
				}
				mint, liveMint = j.translateLive, true
			}
		default:
			j.mu.Unlock()
			return nil
		}
		if liveMint && j.degrade.Load() >= DegradeNoLiveMint {
			j.mu.Unlock()
			return nil
		}
		if q := j.quarantine[key]; q != nil {
			// Past its backoff window: this mint is a quarantine retry.
			atomic.AddUint64(&j.stats.QuarantineRetries, 1)
		}
		done := make(chan struct{})
		j.inflight[key] = done
		j.mu.Unlock()

		tr := mint(fn, fr, m)

		j.mu.Lock()
		delete(j.inflight, key)
		j.mu.Unlock()
		close(done)
		return tr
	}
}

// FindPublished returns a guard-matching published translation for
// (fn, fr.PC), or nil — Lookup without the minting slow path. The
// sentry's bisection replays dispatch through it so a replay can never
// mint code or disturb quarantine state (DESIGN.md §15). Lock-free.
func (j *JIT) FindPublished(fn *hhbc.Func, fr *interp.Frame, m *machine.Meter) *Translation {
	if j.Cfg.Mode == ModeInterp || j.degrade.Load() >= DegradeInterpOnly {
		return nil
	}
	return j.findMatch(transKey{fn.ID, fr.PC}, fr, m)
}

// ForEachTranslation visits every translation in the published index
// (diagnostics and the chain-invalidation tests).
func (j *JIT) ForEachTranslation(fn func(tr *Translation)) {
	for _, chain := range *j.trans.Load() {
		for _, tr := range chain {
			fn(tr)
		}
	}
}

// HasMatch reports whether a matching translation exists (OSR check;
// no translation creation, no fee). Lock-free.
func (j *JIT) HasMatch(fn *hhbc.Func, fr *interp.Frame) bool {
	for _, tr := range (*j.trans.Load())[transKey{fn.ID, fr.PC}] {
		if j.guardsMatch(tr, fr) {
			return true
		}
	}
	return false
}

// WantsTranslation reports whether the OSR point should bounce to the
// dispatcher to create a translation. Each query counts as a hotness
// observation so loops that stay in the interpreter eventually cross
// the live-translation threshold.
func (j *JIT) WantsTranslation(fn *hhbc.Func, fr *interp.Frame) bool {
	if j.cacheFull.Load() || j.Cfg.Mode == ModeInterp ||
		j.degrade.Load() >= DegradeNoMint {
		return false
	}
	key := transKey{fn.ID, fr.PC}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.quarantinedLocked(key) || len((*j.trans.Load())[key]) >= j.Cfg.MaxLiveChain {
		return false
	}
	switch j.Cfg.Mode {
	case ModeRegion:
		if !j.optimized.Load() {
			return true // profiling translations are made eagerly
		}
	case ModeProfiling:
		return true
	}
	j.entryCount[key]++
	return j.entryCount[key]+1 >= j.Cfg.LiveThreshold
}

// OnEntry counts function entries and fires the global retranslation
// trigger (Section 5.1). With BackgroundCompile the trigger hands the
// work to a compiler goroutine and returns immediately; the worker
// keeps running profiling translations until the optimized index is
// swapped in.
func (j *JIT) OnEntry() {
	n := j.entries.Add(1)
	atomic.AddUint64(&j.stats.Entries, 1)
	if j.Cfg.Mode == ModeRegion && !j.optStarted.Load() && n >= j.Cfg.ProfileTrigger {
		if j.Cfg.BackgroundCompile {
			go j.OptimizeAll() // OptimizeAll claims the run via CAS
		} else {
			j.OptimizeAll()
		}
	}
}

// Optimized reports whether the optimized index has been published.
func (j *JIT) Optimized() bool { return j.optimized.Load() }

// RecordArc notes a control transfer between two profiling
// translations (TransCFG edges).
func (j *JIT) RecordArc(from, to *Translation) {
	if from != nil && to != nil && from.Kind == ModeProfiling && to.Kind == ModeProfiling {
		j.Counters.RecordArc(from.ProfID, to.ProfID)
	}
}

// DebugVM enables dispatcher tracing.
var DebugVM = os.Getenv("REPRO_VM_DEBUG") != ""
