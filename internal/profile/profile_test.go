package profile_test

import (
	"sync"
	"testing"

	"repro/internal/profile"
)

func TestCountersAndArcs(t *testing.T) {
	c := profile.NewCounters()
	a := c.NewCounter()
	b := c.NewCounter()
	for i := 0; i < 5; i++ {
		c.Inc(a)
	}
	c.Inc(b)
	if c.Count(a) != 5 || c.Count(b) != 1 {
		t.Errorf("counts: %d %d", c.Count(a), c.Count(b))
	}
	c.RecordArc(a, b)
	c.RecordArc(a, b)
	if c.ArcCount(a, b) != 2 {
		t.Errorf("arc count = %d", c.ArcCount(a, b))
	}
	arcs := c.Arcs(map[profile.TransID]bool{a: true})
	if len(arcs) != 1 {
		t.Errorf("arcs = %v", arcs)
	}
}

func TestCallTargetHistogram(t *testing.T) {
	c := profile.NewCounters()
	site := profile.CallSite{FuncID: 3, PC: 17}
	for i := 0; i < 9; i++ {
		c.RecordCallTarget(site, "Hot")
	}
	c.RecordCallTarget(site, "Cold")
	tp := c.CallTargets(site)
	if tp == nil || tp.Total != 10 {
		t.Fatalf("profile = %+v", tp)
	}
	if tp.Classes[0].Class != "Hot" || tp.Classes[0].Count != 9 {
		t.Errorf("dominant class wrong: %+v", tp.Classes)
	}
	if c.CallTargets(profile.CallSite{FuncID: 9, PC: 9}) != nil {
		t.Error("unknown site should have nil profile")
	}
}

func TestCallGraph(t *testing.T) {
	c := profile.NewCounters()
	c.RecordCall(1, 2)
	c.RecordCall(1, 2)
	c.RecordCall(2, 3)
	g := c.CallGraph()
	if g[profile.CallArc{Caller: 1, Callee: 2}] != 2 {
		t.Errorf("call graph: %v", g)
	}
	if len(g) != 2 {
		t.Errorf("graph size = %d", len(g))
	}
}

// TestConcurrentIncAndGrowth hammers Inc from many goroutines while
// the slab keeps growing; run under -race this checks that the
// lock-free increment path never races with slab growth or snapshots.
func TestConcurrentIncAndGrowth(t *testing.T) {
	c := profile.NewCounters()
	const workers = 8
	const perWorker = 5000
	ids := make([]profile.TransID, workers)
	for i := range ids {
		ids[i] = c.NewCounter()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id profile.TransID) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(id)
			}
		}(ids[w])
	}
	// Concurrent growth and snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			c.NewCounter()
			if i%500 == 0 {
				c.Snapshot()
			}
		}
	}()
	wg.Wait()
	for _, id := range ids {
		if got := c.Count(id); got != perWorker {
			t.Errorf("counter %d = %d, want %d", id, got, perWorker)
		}
	}
}

// TestAddGrowsSlab is the regression test for the bulk-restore path:
// Add to a counter id beyond the allocated slab must grow the slab
// and record the value, not silently drop it. (Jumpstart restores
// counters in snapshot order, which can run ahead of NewCounter
// allocation on the restoring side.)
func TestAddGrowsSlab(t *testing.T) {
	c := profile.NewCounters()
	const far = profile.TransID(5000) // well past any allocated chunk
	c.Add(far, 7)
	if got := c.Count(far); got != 7 {
		t.Errorf("Count(%d) = %d, want 7 — Add dropped an out-of-slab counter", far, got)
	}
	if n := c.NumCounters(); n < int(far)+1 {
		t.Errorf("NumCounters = %d, want >= %d after growth", n, far+1)
	}
	d := c.Snapshot()
	if d.Counts[far] != 7 {
		t.Errorf("snapshot missing grown counter: %v", d.Counts[far])
	}
	// Existing counters still work after growth.
	a := c.NewCounter()
	c.Inc(a)
	if c.Count(a) != 1 {
		t.Errorf("post-growth counter = %d, want 1", c.Count(a))
	}
	// Negative and zero adds are ignored, not panics.
	c.Add(-1, 5)
	c.Add(far, 0)
	if got := c.Count(far); got != 7 {
		t.Errorf("zero add changed counter: %d", got)
	}
}

func TestSnapshotMergeWeighted(t *testing.T) {
	a := profile.NewCounters()
	i0 := a.NewCounter()
	i1 := a.NewCounter()
	for i := 0; i < 10; i++ {
		a.Inc(i0)
	}
	a.Inc(i1)
	a.RecordArc(i0, i1)
	a.RecordCallTarget(profile.CallSite{FuncID: 1, PC: 2}, "C")
	a.RecordCall(1, 2)

	d := a.Snapshot()
	// The snapshot is a copy: further increments don't affect it.
	a.Inc(i0)
	if d.Counts[i0] != 10 {
		t.Fatalf("snapshot count = %d, want 10", d.Counts[i0])
	}

	b := profile.NewCounters()
	b.Merge(d, 0.5)
	if got := b.Count(i0); got != 5 {
		t.Errorf("merged count = %d, want 5", got)
	}
	if got := b.ArcCount(i0, i1); got != 1 {
		t.Errorf("merged arc = %d, want 1 (0.5 rounds up)", got)
	}
	tp := b.CallTargets(profile.CallSite{FuncID: 1, PC: 2})
	if tp == nil || tp.Total != 1 {
		t.Errorf("merged call targets = %+v", tp)
	}
	if g := b.CallGraph(); g[profile.CallArc{Caller: 1, Callee: 2}] != 1 {
		t.Errorf("merged call graph = %v", g)
	}

	// Merging twice at weight 1 doubles.
	b.Merge(d, 1)
	if got := b.Count(i0); got != 15 {
		t.Errorf("second merge count = %d, want 15", got)
	}
}
