// Optview: watch the optimizer work — runs a polymorphic function,
// then prints the profile-guided region (with retranslation chains
// and relaxed guards) and the optimized HHIR/vasm the JIT produced,
// the artifacts Sections 4.2-4.4 of the paper describe.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jit"
)

const src = `
function mixer($items) {
  $acc = 0;
  foreach ($items as $x) {
    if (is_int($x)) { $acc = $acc + $x * 2; }
    else { $acc = $acc + $x; }
  }
  return $acc;
}
echo mixer([1, 2.5, 3, 4.5]), "\n";
`

func main() {
	// jit.Debug dumps each compiled region's RegionDesc, HHIR, and
	// Vasm to stderr; flip it on for the optimized compilation.
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 30
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.RunRequest(io.Discard); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	jit.Debug = true // dump IR for the optimized compilation
	for i := 0; i < 10; i++ {
		if _, err := eng.RunRequest(io.Discard); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	jit.Debug = false
	st := eng.Stats()
	fmt.Printf("compiled %d profiling translations into %d optimized regions\n",
		st.ProfilingTranslations, st.OptimizedTranslations)
}
