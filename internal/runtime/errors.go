package runtime

import "fmt"

// Error is a guest-level error. Two flavors exist, mirroring PHP's
// error-handling model the paper discusses:
//
//   - a thrown guest exception object (Obj set), which propagates
//     through guest catch handlers;
//   - a runtime fatal (Obj nil), raised by primitive operations. The
//     VM converts fatals into guest Exception objects at throw sites
//     so user code can catch them, as PHP's error handler can.
type Error struct {
	Msg string
	Obj *Object
}

func (e *Error) Error() string {
	if e.Obj != nil {
		if v, ok := e.Obj.GetProp("message"); ok {
			return fmt.Sprintf("uncaught %s: %s", e.Obj.Class.Name, v.ToString())
		}
		return "uncaught " + e.Obj.Class.Name
	}
	return e.Msg
}

// NewError creates a runtime fatal.
func NewError(format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Thrown wraps a guest exception object into an error. The error owns
// one reference to obj.
func Thrown(obj *Object) *Error { return &Error{Obj: obj} }
