// Package perflab is the A/B performance-comparison harness modeled
// on the tool of the same name (Bakshy & Frachtenberg) the paper uses:
// one server process running the whole site (the combined endpoint
// unit), warmed up through the JIT lifecycle, then measured by
// replaying weighted endpoint requests and reporting the weighted
// average per-request cost with confidence intervals.
package perflab

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Config tunes an experiment run.
type Config struct {
	// WarmupRequests per endpoint before measurement.
	WarmupRequests int
	// MeasureRequests per endpoint in the measurement phase.
	MeasureRequests int
	// Endpoints overrides the default suite (names must exist in the
	// combined unit).
	Endpoints []workload.Endpoint
}

// DefaultConfig mirrors the paper's warmup-then-measure protocol.
var DefaultConfig = Config{WarmupRequests: 40, MeasureRequests: 12}

// EndpointResult is the measured cost of one endpoint.
type EndpointResult struct {
	Name   string
	Weight float64
	// MeanCycles per request across the measurement phase.
	MeanCycles float64
	// CI95 is the 95% confidence half-interval (1.96 SE).
	CI95 float64
	// Samples are the raw per-request cycle counts.
	Samples []float64
	// Output is the endpoint's guest output (consistency checks).
	Output string
}

// Result aggregates a run.
type Result struct {
	Endpoints []EndpointResult
	// WeightedMean is the traffic-weighted average cycles/request —
	// the headline number every figure reports.
	WeightedMean float64
	// JITStats after warmup+measurement.
	JITStats jit.Stats
	// WarmStats is the snapshot taken between warmup and measurement:
	// steady-state per-request rates (dispatcher lookups, chained
	// jumps, ...) are (JITStats - WarmStats) / MeasuredRequests.
	WarmStats jit.Stats
	// MeasuredRequests counts requests in the measurement phase.
	MeasuredRequests int
	// CodeBytes is the steady-state JITed code footprint.
	CodeBytes uint64
}

// SteadyLookupsPerReq is the measurement-phase dispatcher Lookup rate
// — the number direct chaining drives toward one per request.
func (r *Result) SteadyLookupsPerReq() float64 {
	if r.MeasuredRequests == 0 {
		return 0
	}
	return float64(r.JITStats.Lookups-r.WarmStats.Lookups) / float64(r.MeasuredRequests)
}

// NewEngine builds a fresh engine over the combined site unit.
func NewEngine(cfg jit.Config) (*core.Engine, []workload.Endpoint, error) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		return nil, nil, err
	}
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		return nil, nil, err
	}
	return eng, eps, nil
}

// RunEndpoint executes one request against an endpoint, returning its
// cycle cost and output.
func RunEndpoint(eng *core.Engine, name string) (uint64, string, error) {
	var out strings.Builder
	eng.VM.SetOut(&out)
	before := eng.Cycles()
	v, err := eng.Call(workload.EndpointFunc(name))
	eng.Heap().DecRef(v)
	return eng.Cycles() - before, out.String(), err
}

// RunEndpointVM executes one request against an endpoint on a
// specific worker VM (concurrent serving), returning its cycle cost
// and output. Each worker owns its meter, so costs are per-worker.
func RunEndpointVM(v *vm.VM, name string) (uint64, string, error) {
	fn, ok := v.Env.Unit.FuncByName(workload.EndpointFunc(name))
	if !ok {
		return 0, "", fmt.Errorf("undefined endpoint %s", name)
	}
	var out strings.Builder
	v.SetOut(&out)
	before := v.Meter.Cycles
	val, err := v.CallFunc(fn, nil, nil)
	v.Heap.DecRef(val)
	return v.Meter.Cycles - before, out.String(), err
}

// Measure runs the suite under one JIT configuration.
func Measure(cfg jit.Config, pc Config) (*Result, error) {
	if pc.WarmupRequests == 0 {
		pc.WarmupRequests = DefaultConfig.WarmupRequests
	}
	if pc.MeasureRequests == 0 {
		pc.MeasureRequests = DefaultConfig.MeasureRequests
	}
	eng, eps, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if pc.Endpoints != nil {
		eps = pc.Endpoints
	}

	// Warmup: profiling → global trigger → optimized publish, with
	// endpoints interleaved the way production traffic would be.
	firstOut := map[string]string{}
	for i := 0; i < pc.WarmupRequests; i++ {
		for _, ep := range eps {
			_, out, err := RunEndpoint(eng, ep.Name)
			if err != nil {
				return nil, fmt.Errorf("endpoint %s warmup: %w", ep.Name, err)
			}
			if i == 0 {
				firstOut[ep.Name] = out
			} else if out != firstOut[ep.Name] {
				return nil, fmt.Errorf("endpoint %s: nondeterministic output:\n got %q\nwant %q",
					ep.Name, out, firstOut[ep.Name])
			}
		}
	}

	// Measurement: endpoints interleave round-robin, the way mixed
	// production traffic hits a server (this keeps the instruction
	// working set honest for the locality experiments).
	res := &Result{WarmStats: eng.Stats()}
	var wsum float64
	byName := map[string]*EndpointResult{}
	for _, ep := range eps {
		er := &EndpointResult{Name: ep.Name, Weight: ep.Weight, Output: firstOut[ep.Name]}
		byName[ep.Name] = er
	}
	for i := 0; i < pc.MeasureRequests; i++ {
		for _, ep := range eps {
			c, out, err := RunEndpoint(eng, ep.Name)
			if err != nil {
				return nil, fmt.Errorf("endpoint %s measure: %w", ep.Name, err)
			}
			if out != firstOut[ep.Name] {
				return nil, fmt.Errorf("endpoint %s: output changed during measurement", ep.Name)
			}
			byName[ep.Name].Samples = append(byName[ep.Name].Samples, float64(c))
		}
	}
	for _, ep := range eps {
		er := byName[ep.Name]
		er.MeanCycles, er.CI95 = meanCI(er.Samples)
		res.Endpoints = append(res.Endpoints, *er)
		res.WeightedMean += er.MeanCycles * ep.Weight
		wsum += ep.Weight
	}
	if wsum > 0 {
		res.WeightedMean /= wsum
	}
	res.JITStats = eng.Stats()
	res.MeasuredRequests = pc.MeasureRequests * len(eps)
	res.CodeBytes = res.JITStats.BytesOptimized + res.JITStats.BytesLive
	return res, nil
}

// meanCI returns the mean and a 95% confidence half-width (1.96 SE).
func meanCI(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// Comparison reports B's performance relative to A.
type Comparison struct {
	A, B *Result
	// SlowdownPct is how much slower B is than A, in percent.
	SlowdownPct float64
}

// CompareConfigs measures both sides.
func CompareConfigs(a, b jit.Config, pc Config) (*Comparison, error) {
	ra, err := Measure(a, pc)
	if err != nil {
		return nil, err
	}
	rb, err := Measure(b, pc)
	if err != nil {
		return nil, err
	}
	c := &Comparison{A: ra, B: rb}
	if ra.WeightedMean > 0 {
		c.SlowdownPct = (rb.WeightedMean/ra.WeightedMean - 1) * 100
	}
	return c, nil
}

// Report renders a result table.
func Report(w io.Writer, r *Result) {
	eps := append([]EndpointResult(nil), r.Endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].Weight > eps[j].Weight })
	fmt.Fprintf(w, "%-18s %8s %14s %10s\n", "endpoint", "weight", "cycles/req", "±95%")
	for _, ep := range eps {
		fmt.Fprintf(w, "%-18s %8.2f %14.0f %10.0f\n", ep.Name, ep.Weight, ep.MeanCycles, ep.CI95)
	}
	fmt.Fprintf(w, "%-18s %8s %14.0f\n", "WEIGHTED MEAN", "", r.WeightedMean)
}
