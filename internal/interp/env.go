// Package interp implements the HHBC interpreter: the fallback
// execution engine that cooperates with the JIT through OSR at any
// bytecode boundary. Frames are the shared VM state: JITed code
// side-exits by materializing a Frame and resuming here.
package interp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/hhbc"
	"repro/internal/runtime"
	"repro/internal/shapes"
	"repro/internal/types"
)

// Meter receives simulated-cycle charges. The machine simulator and
// the interpreter share one meter so mode comparisons are meaningful.
type Meter interface {
	Charge(cycles uint64)
}

// CallHook dispatches a guest call. The VM installs a hook that
// routes hot functions to JITed code; the default recursively
// interprets.
type CallHook func(f *hhbc.Func, this *runtime.Object, args []runtime.Value) (runtime.Value, error)

// EnterHook observes function entries (used for JIT triggering).
type EnterHook func(f *hhbc.Func)

// Env is the linked execution environment for one unit.
type Env struct {
	Unit    *hhbc.Unit
	Heap    *runtime.Heap
	Out     io.Writer
	Meter   Meter
	Classes map[string]*runtime.Class

	// Shapes is the object-shape universe for this class table,
	// created at link time and shared (like Classes) across every
	// worker environment: compiled shape guards embed shape IDs, so
	// shape identity must be global across the shared code cache.
	Shapes *shapes.Tree

	// Call dispatches guest function calls; OnEnter observes entries
	// into interpreted functions.
	Call    CallHook
	OnEnter EnterHook

	// MaxDepth bounds guest recursion.
	MaxDepth int

	// OSRCheck, when set, is consulted at backward branches; returning
	// true makes Run return ErrOSR so the VM can re-enter JITed code
	// (on-stack replacement out of the interpreter).
	OSRCheck func(fr *Frame) bool

	depth int
}

// ErrOSR signals that interpretation paused at an OSR point; the
// frame is consistent and fr.PC names the resume point.
var ErrOSR = fmt.Errorf("interp: OSR point reached")

// NewEnv links unit and returns an environment. The heap's destructor
// hook is installed to run guest __destruct methods through Call.
func NewEnv(u *hhbc.Unit, heap *runtime.Heap, out io.Writer) (*Env, error) {
	env := &Env{
		Unit: u, Heap: heap, Out: out,
		Classes:  map[string]*runtime.Class{},
		Shapes:   shapes.NewTree(),
		MaxDepth: 512,
	}
	env.Call = env.interpCall
	if err := env.link(); err != nil {
		return nil, err
	}
	heap.OnDestruct = func(obj *runtime.Object) {
		if id, ok := obj.Class.LookupMethod("__destruct"); ok {
			// Destructor failures are swallowed, as in PHP shutdown.
			_, _ = env.Call(u.Funcs[id], obj, nil)
		}
	}
	return env, nil
}

// NewEnvFrom derives a worker environment from an already-linked one.
// The class table is shared, not re-linked: compiled translations
// embed *runtime.Class pointers, so class identity must be global
// across every worker executing the shared code cache. Heap, output,
// call hooks, and recursion depth are per-worker.
func NewEnvFrom(base *Env, heap *runtime.Heap, out io.Writer) *Env {
	env := &Env{
		Unit: base.Unit, Heap: heap, Out: out,
		Classes:  base.Classes,
		Shapes:   base.Shapes,
		MaxDepth: base.MaxDepth,
	}
	env.Call = env.interpCall
	heap.OnDestruct = func(obj *runtime.Object) {
		if id, ok := obj.Class.LookupMethod("__destruct"); ok {
			_, _ = env.Call(env.Unit.Funcs[id], obj, nil)
		}
	}
	return env
}

// link flattens class definitions into runtime classes.
func (e *Env) link() error {
	// Multiple passes to resolve parents declared in any order.
	defs := e.Unit.Classes
	done := map[string]*hhbc.ClassDef{}
	for _, d := range defs {
		done[d.Name] = d
	}
	var build func(name string, seen map[string]bool) (*runtime.Class, error)
	nextID := 1
	build = func(name string, seen map[string]bool) (*runtime.Class, error) {
		if c, ok := e.Classes[name]; ok {
			return c, nil
		}
		if seen[name] {
			return nil, fmt.Errorf("class hierarchy cycle at %s", name)
		}
		seen[name] = true
		def, ok := done[name]
		if !ok {
			return nil, fmt.Errorf("undefined class %s", name)
		}
		cls := &runtime.Class{
			Name:      name,
			Ifaces:    def.Ifaces,
			HasDtor:   def.HasDtor,
			PropNames: map[string]int{},
			Methods:   map[string]int{},
			ClassID:   nextID,
		}
		nextID++
		if def.Parent != "" {
			parent, err := build(def.Parent, seen)
			if err != nil {
				return nil, err
			}
			cls.Parent = parent
			cls.HasDtor = cls.HasDtor || parent.HasDtor
			for pname, slot := range parent.PropNames {
				cls.PropNames[pname] = slot
			}
			cls.PropInit = append(cls.PropInit, parent.PropInit...)
			for m, id := range parent.Methods {
				cls.Methods[m] = id
			}
		}
		for _, p := range def.Props {
			if _, exists := cls.PropNames[p.Name]; !exists {
				cls.PropNames[p.Name] = len(cls.PropInit)
				cls.PropInit = append(cls.PropInit, propDefault(p))
			} else {
				cls.PropInit[cls.PropNames[p.Name]] = propDefault(p)
			}
		}
		for m, id := range def.Methods {
			cls.Methods[m] = id
		}
		// Root shape: the declared layout in slot order with
		// default-value kinds. Interned by layout, so classes with
		// identical flattened properties share a root (one shape
		// guard then covers a class-polymorphic site).
		slots := make([]shapes.Slot, len(cls.PropInit))
		for pname, i := range cls.PropNames {
			slots[i].Name = pname
		}
		for i, v := range cls.PropInit {
			slots[i].Kind = v.Kind
		}
		cls.RootShape = e.Shapes.Root(slots)
		// Ancestor bitset for bitwise instanceof checks.
		cls.SetAncestorID(cls.ClassID)
		if cls.Parent != nil {
			for w, bits := range cls.Parent.AncestorBits {
				for len(cls.AncestorBits) <= w {
					cls.AncestorBits = append(cls.AncestorBits, 0)
				}
				cls.AncestorBits[w] |= bits
			}
		}
		for _, iface := range def.Ifaces {
			ic, err := build(iface, seen)
			if err != nil {
				return nil, err
			}
			for w, bits := range ic.AncestorBits {
				for len(cls.AncestorBits) <= w {
					cls.AncestorBits = append(cls.AncestorBits, 0)
				}
				cls.AncestorBits[w] |= bits
			}
		}
		e.Classes[name] = cls
		types.RegisterClass(name, def.Parent, def.Ifaces)
		return cls, nil
	}
	for _, d := range defs {
		if _, err := build(d.Name, map[string]bool{}); err != nil {
			return err
		}
	}
	return nil
}

func propDefault(p hhbc.PropDef) runtime.Value {
	switch p.DefaultKind {
	case types.KInt:
		return runtime.Int(p.DefaultInt)
	case types.KDbl:
		return runtime.Dbl(p.DefaultDbl)
	case types.KBool:
		return runtime.Bool(p.DefaultInt != 0)
	case types.KStr:
		return runtime.StrV(runtime.InternStr(p.DefaultStr))
	case types.KArr:
		// Marker: fresh empty array per instance (see NewInstance).
		return runtime.Value{Kind: types.KArr}
	default:
		return runtime.Null()
	}
}

// NewInstance allocates an object of cls, materializing fresh arrays
// for array-typed property defaults.
func (e *Env) NewInstance(cls *runtime.Class) *runtime.Object {
	obj := e.Heap.NewObject(cls)
	for i, p := range obj.Props {
		if p.Kind == types.KArr && p.A == nil {
			obj.Props[i] = runtime.ArrV(runtime.NewPacked(nil))
		}
	}
	return obj
}

// ClassByName resolves a linked class.
func (e *Env) ClassByName(name string) (*runtime.Class, bool) {
	c, ok := e.Classes[name]
	return c, ok
}

// FuncByName resolves a function in the unit.
func (e *Env) FuncByName(name string) (*hhbc.Func, bool) {
	return e.Unit.FuncByName(name)
}

// NewException creates a guest exception object of class (or
// Exception when cls is missing) carrying msg.
func (e *Env) NewException(clsName, msg string) *runtime.Object {
	cls, ok := e.Classes[clsName]
	if !ok {
		cls, ok = e.Classes["Exception"]
		if !ok {
			// No Exception class linked: synthesize a minimal one. Not
			// cached — the class table is shared across worker envs and
			// read lock-free, so it is immutable after linking.
			cls = &runtime.Class{
				Name:      "Exception",
				PropNames: map[string]int{"message": 0},
				PropInit:  []runtime.Value{runtime.StrV(runtime.InternStr(""))},
				Methods:   map[string]int{},
				ClassID:   -1,
			}
		}
	}
	obj := e.NewInstance(cls)
	if _, ok := cls.PropNames["message"]; ok {
		_ = obj.SetProp(e.Heap, "message", runtime.NewStr(msg))
	}
	return obj
}

// toThrownObject converts any guest error into a throwable object,
// turning runtime fatals into catchable Exception instances (PHP's
// error handler can likewise intercept runtime errors).
func (e *Env) toThrownObject(err error) *runtime.Object {
	if ge, ok := err.(*runtime.Error); ok && ge.Obj != nil {
		return ge.Obj
	}
	return e.NewException("Exception", err.Error())
}

// lowerName is a tiny helper for case-insensitive method names.
func lowerName(s string) string { return strings.ToLower(s) }
