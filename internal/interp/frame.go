package interp

import (
	"repro/internal/hhbc"
	"repro/internal/runtime"
)

// Frame is the VM activation record shared between the interpreter
// and JITed code: both read and write the same locals, so on-stack
// replacement in either direction only needs a bytecode PC and an
// evaluation-stack prefix.
type Frame struct {
	Fn     *hhbc.Func
	Locals []runtime.Value
	Stack  []runtime.Value
	This   *runtime.Object
	Iters  []*runtime.Iter
	PC     int

	// pendingExc carries the in-flight exception between unwinding
	// and the handler's Catch instruction.
	pendingExc *runtime.Object
}

// SetPendingExc injects an exception for a handler about to run (used
// by the JIT's side-exit-to-handler path).
func (fr *Frame) SetPendingExc(o *runtime.Object) { fr.pendingExc = o }

// NewFrame builds an activation for f, consuming the caller's
// references to args (extra args are released; missing ones get
// defaults or Null).
func NewFrame(e *Env, f *hhbc.Func, this *runtime.Object, args []runtime.Value) *Frame {
	fr := &Frame{Fn: f, Locals: make([]runtime.Value, f.NumLocals), This: this}
	for i := range fr.Locals {
		fr.Locals[i] = runtime.Uninit()
	}
	for i, a := range args {
		if i < len(f.Params) {
			fr.Locals[i] = a
		} else {
			e.Heap.DecRef(a)
		}
	}
	for i := len(args); i < len(f.Params); i++ {
		p := f.Params[i]
		if p.HasDefault {
			fr.Locals[i] = paramDefault(p)
		} else {
			fr.Locals[i] = runtime.Null()
		}
	}
	return fr
}

func paramDefault(p hhbc.Param) runtime.Value {
	return propDefault(hhbc.PropDef{
		DefaultKind: p.DefaultKind, DefaultInt: p.DefaultInt,
		DefaultDbl: p.DefaultDbl, DefaultStr: p.DefaultStr,
	})
}

// push / pop manage the evaluation stack.
func (fr *Frame) push(v runtime.Value) { fr.Stack = append(fr.Stack, v) }

func (fr *Frame) pop() runtime.Value {
	v := fr.Stack[len(fr.Stack)-1]
	fr.Stack = fr.Stack[:len(fr.Stack)-1]
	return v
}

func (fr *Frame) top() runtime.Value { return fr.Stack[len(fr.Stack)-1] }

// release drops all frame-owned references (on return or unwind).
func (fr *Frame) release(e *Env) {
	for _, v := range fr.Stack {
		e.Heap.DecRef(v)
	}
	fr.Stack = fr.Stack[:0]
	for _, v := range fr.Locals {
		e.Heap.DecRef(v)
	}
	for i := range fr.Locals {
		fr.Locals[i] = runtime.Uninit()
	}
	for _, it := range fr.Iters {
		if it != nil {
			e.Heap.DecRef(runtime.ArrV(it.Arr()))
		}
	}
	fr.Iters = nil
}

// clearStack releases just the evaluation stack (entering a catch
// handler).
func (fr *Frame) clearStack(e *Env) {
	for _, v := range fr.Stack {
		e.Heap.DecRef(v)
	}
	fr.Stack = fr.Stack[:0]
}

func (fr *Frame) iter(id int32) *runtime.Iter {
	if int(id) < len(fr.Iters) {
		return fr.Iters[id]
	}
	return nil
}

func (fr *Frame) setIter(id int32, it *runtime.Iter) {
	for int(id) >= len(fr.Iters) {
		fr.Iters = append(fr.Iters, nil)
	}
	fr.Iters[id] = it
}
