// Package faultinject provides deterministic, seed-driven fault
// injection for the JIT's fault-containment layer (DESIGN.md §11).
// An Injector is threaded through the compile pipeline (jit), the
// code cache (mcode), the translation executor (machine), and the
// profile-snapshot loader (jumpstart); each layer asks Should(kind)
// at its injection point and simulates the corresponding failure when
// it fires. Draws are derived from a splitmix64 hash of (seed, kind,
// draw counter), so a given seed produces the same firing pattern on
// every run — the `bench -exp faults` experiment and the containment
// tests depend on that reproducibility.
//
// All methods are safe on a nil *Injector (they report "no fault"),
// so production paths carry a nil pointer at zero cost.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// CompileError fails a translation compile before the backend runs
	// (models an IR builder or lowering defect).
	CompileError Kind = iota
	// AllocFail fails one code-cache allocation (models a transient
	// mmap/protection failure, distinct from genuine cache exhaustion).
	AllocFail
	// TransPanic panics at a translation entry (models a miscompiled
	// region crashing inside JITed code).
	TransPanic
	// SnapshotCorrupt corrupts a jumpstart profile snapshot in flight
	// (models a torn write or bit rot in the persisted profile).
	SnapshotCorrupt
	// StaleLink stamps a freshly smashed chain link with an outdated
	// epoch (models a lost invalidation on a direct-jump patch).
	StaleLink
	// CodeCorrupt flips bytes of a published translation's code (models
	// bit rot or a wild write into the executable mapping). The machine
	// layer perturbs the translation's observable result while the
	// corruption is latched; the sentry auditor must catch the checksum
	// mismatch (DESIGN.md §15).
	CodeCorrupt
	// TornLink publishes a smashable-link slot half-written: the stored
	// link carries a target from the current index but an epoch stamp
	// torn from a different one (models a non-atomic cross-line patch).
	TornLink
	// StaleIC rolls a freshly installed property-inline-cache table
	// back to a previous epoch (models a lost IC invalidation after a
	// shape-table republish).
	StaleIC
	// KindCount bounds the enum.
	KindCount

	// firstSilentKind marks the boundary between loud faults — ones
	// the containment layer (DESIGN.md §11) recovers from on its own,
	// with outputs preserved — and silent-corruption kinds that by
	// design produce wrong results until the sentry layer (DESIGN.md
	// §15) detects and repairs them. EnableAll stops here so that
	// containment tests and `bench -exp faults` keep their
	// outputs-bit-identical guarantee; silent kinds are opted into
	// explicitly (per-kind Rates or ForceNext, as `bench -exp verify`
	// does).
	firstSilentKind = CodeCorrupt
)

func (k Kind) String() string {
	switch k {
	case CompileError:
		return "compile-error"
	case AllocFail:
		return "alloc-fail"
	case TransPanic:
		return "trans-panic"
	case SnapshotCorrupt:
		return "snapshot-corrupt"
	case StaleLink:
		return "stale-link"
	case CodeCorrupt:
		return "code-corrupt"
	case TornLink:
		return "torn-link"
	case StaleIC:
		return "stale-ic"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every injectable kind (reporting loops).
func Kinds() []Kind {
	ks := make([]Kind, KindCount)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Config describes an injection campaign.
type Config struct {
	// Seed drives the deterministic draw sequence.
	Seed int64
	// Rates[k] is the per-draw firing probability of kind k, in [0,1].
	Rates [KindCount]float64
}

// EnableAll returns a config firing every loud fault kind at rate.
// Silent-corruption kinds (CodeCorrupt, TornLink, StaleIC) stay off:
// they deliberately break guest-visible results until a sentry
// monitor repairs them, so blanket-enabling them would void the
// containment layer's outputs-bit-identical contract. Enable them
// per kind via Config.Rates or Injector.ForceNext.
func EnableAll(seed int64, rate float64) Config {
	c := Config{Seed: seed}
	for k := Kind(0); k < firstSilentKind; k++ {
		c.Rates[k] = rate
	}
	return c
}

// Injector is the shared injection-point state. One injector serves
// every worker of an engine; all counters are atomic.
type Injector struct {
	seed       uint64
	thresholds [KindCount]uint64 // fire when hash < threshold
	draws      [KindCount]atomic.Uint64
	fired      [KindCount]atomic.Uint64
	forced     [KindCount]atomic.Int64
	// siteDraws holds the per-(kind, site) draw counters behind
	// ShouldAt: map[uint64]*atomic.Uint64 keyed by kindSalt ^ site.
	siteDraws sync.Map
}

// New builds an injector from cfg. A nil injector (no campaign) is
// the production configuration.
func New(cfg Config) *Injector {
	inj := &Injector{seed: uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x1234567D}
	for k, r := range cfg.Rates {
		switch {
		case r <= 0:
		case r >= 1:
			inj.thresholds[k] = ^uint64(0)
		default:
			inj.thresholds[k] = uint64(r * float64(1<<63) * 2)
		}
	}
	return inj
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed avalanche hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Should draws the next sample for kind k and reports whether the
// fault fires. Deterministic in the per-kind draw index: draw n of
// kind k fires iff splitmix64(seed ^ kindSalt ^ n) < threshold.
func (inj *Injector) Should(k Kind) bool {
	if inj == nil || k < 0 || k >= KindCount {
		return false
	}
	for {
		f := inj.forced[k].Load()
		if f <= 0 {
			break
		}
		if inj.forced[k].CompareAndSwap(f, f-1) {
			inj.draws[k].Add(1)
			inj.fired[k].Add(1)
			return true
		}
	}
	th := inj.thresholds[k]
	if th == 0 {
		return false
	}
	n := inj.draws[k].Add(1)
	if splitmix64(inj.seed^(uint64(k)<<56)^n) < th {
		inj.fired[k].Add(1)
		return true
	}
	return false
}

// ShouldAt draws the next sample for kind k at an injection site
// identified by a caller-chosen stable key (e.g. a hash of function id
// and bytecode pc). Unlike Should, whose single per-kind counter makes
// the firing pattern depend on the global interleaving of draws,
// ShouldAt keys the draw sequence by (kind, site): the n-th attempt at
// a given site fires identically regardless of how many other sites
// drew in between or on which goroutine. Parallel compile workers
// therefore fail the same translations a serial run fails
// (per-site attempt order is itself serialized by the translation
// lease/single-flight machinery). Forced draws (ForceNext) are
// consumed first, exactly as in Should.
func (inj *Injector) ShouldAt(k Kind, site uint64) bool {
	if inj == nil || k < 0 || k >= KindCount {
		return false
	}
	for {
		f := inj.forced[k].Load()
		if f <= 0 {
			break
		}
		if inj.forced[k].CompareAndSwap(f, f-1) {
			inj.draws[k].Add(1)
			inj.fired[k].Add(1)
			return true
		}
	}
	th := inj.thresholds[k]
	if th == 0 {
		return false
	}
	key := uint64(k)<<56 ^ splitmix64(site)
	ctrAny, _ := inj.siteDraws.LoadOrStore(key, new(atomic.Uint64))
	n := ctrAny.(*atomic.Uint64).Add(1)
	inj.draws[k].Add(1)
	if splitmix64(inj.seed^key^(n*0xD6E8FEB86659FD93)) < th {
		inj.fired[k].Add(1)
		return true
	}
	return false
}

// ForceNext arms kind k to fire unconditionally on its next n draws
// (targeted tests and forced fault episodes).
func (inj *Injector) ForceNext(k Kind, n int64) {
	if inj != nil && k >= 0 && k < KindCount {
		inj.forced[k].Add(n)
	}
}

// Draws returns how many times kind k was sampled.
func (inj *Injector) Draws(k Kind) uint64 {
	if inj == nil || k < 0 || k >= KindCount {
		return 0
	}
	return inj.draws[k].Load()
}

// Fired returns how many times kind k fired.
func (inj *Injector) Fired(k Kind) uint64 {
	if inj == nil || k < 0 || k >= KindCount {
		return 0
	}
	return inj.fired[k].Load()
}

// TotalFired sums firings across every kind.
func (inj *Injector) TotalFired() uint64 {
	var n uint64
	for k := Kind(0); k < KindCount; k++ {
		n += inj.Fired(k)
	}
	return n
}

// CorruptBytes deterministically flips one payload byte of data in
// place (the last byte, guaranteed past any header), so a checksummed
// decoder must reject it.
func (inj *Injector) CorruptBytes(data []byte) {
	if len(data) > 0 {
		data[len(data)-1] ^= 0xA5
	}
}

// InjectedError marks a failure produced by the injector; layers use
// IsInjected to tell simulated faults from genuine resource
// exhaustion (an injected alloc failure must not latch cache-full).
type InjectedError struct{ Kind Kind }

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s", e.Kind)
}

// Errf builds the injected-fault error for kind k.
func Errf(k Kind) error { return &InjectedError{Kind: k} }

// IsInjected reports whether err originated from an injector.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}
