package hhir_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hhbc"
	"repro/internal/hhir"
	"repro/internal/interp"
	"repro/internal/region"
	"repro/internal/runtime"
	"repro/internal/types"
)

type fixedSource struct{ locals map[int]types.Type }

func (s fixedSource) LocalType(slot int) types.Type {
	if t, ok := s.locals[slot]; ok {
		return t
	}
	return types.TUninit
}
func (s fixedSource) StackType(int) types.Type { return types.TCell }

// buildFor compiles src and lowers a live region of fn (entry) with
// the given local types.
func buildFor(t *testing.T, src, fn string, locals map[int]types.Type, passes hhir.PassConfig) *hhir.Unit {
	t.Helper()
	unit, err := core.Compile(src, core.CompileOptions{SkipHHBBC: true})
	if err != nil {
		t.Fatal(err)
	}
	env, err := interp.NewEnv(unit, runtime.NewHeap(), nil)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := unit.FuncByName(fn)
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	blk := region.Select(unit, f, 0, 0, fixedSource{locals}, region.ModeLive, 0)
	desc := region.NewDesc(blk)
	hu, err := hhir.Build(unit, env, desc, hhir.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hhir.Optimize(hu, passes)
	return hu
}

func countOps(u *hhir.Unit, op hhir.Opcode) int {
	n := 0
	for _, b := range u.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// TestRCEEliminatesCountPattern reproduces the paper's Figure 6: the
// IncRef/DecRef pair around CountArray must be eliminated by RCE.
func TestRCEEliminatesCountPattern(t *testing.T) {
	src := `function f($arr) { $size = count($arr); return $size; } echo f([1]);`
	locals := map[int]types.Type{0: types.ArrOfKind(types.ArrayPacked)}

	without := buildFor(t, src, "f", locals, hhir.PassConfig{Simplify: true, DCE: true})
	with := buildFor(t, src, "f", locals, hhir.AllPasses)

	if countOps(without, hhir.IncRef) == 0 {
		t.Fatal("expected an IncRef before RCE (the CGetL of $arr)")
	}
	if got, had := countOps(with, hhir.IncRef), countOps(without, hhir.IncRef); got >= had {
		t.Errorf("RCE eliminated nothing: %d -> %d IncRefs", had, got)
	}
	if countOps(with, hhir.CountArray) != 1 {
		t.Error("count() was not specialized to CountArray")
	}
}

// TestRCEKeepsObservedPairs: an IncRef that a call can observe must
// not be eliminated.
func TestRCEKeepsObservedPairs(t *testing.T) {
	src := `function g($arr) { other($arr); return count($arr); }
function other($a) { return 0; }
echo g([1]);`
	locals := map[int]types.Type{0: types.ArrOfKind(types.ArrayPacked)}
	u := buildFor(t, src, "g", locals, hhir.AllPasses)
	// The IncRef feeding the call argument must survive (the callee
	// consumes the reference).
	if countOps(u, hhir.IncRef) == 0 {
		t.Error("RCE removed the call argument's IncRef")
	}
}

func TestConstantFolding(t *testing.T) {
	src := `function h() { return 2 * 3 + 4; } echo h();`
	// Disable the AST folder so the JIT-level folding is what's
	// under test.
	unit, err := core.Compile(src, core.CompileOptions{SkipASTOpt: true, SkipHHBBC: true})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := interp.NewEnv(unit, runtime.NewHeap(), nil)
	f, _ := unit.FuncByName("h")
	blk := region.Select(unit, f, 0, 0, fixedSource{nil}, region.ModeLive, 0)
	hu, err := hhir.Build(unit, env, region.NewDesc(blk), hhir.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hhir.Optimize(hu, hhir.AllPasses)
	if n := countOps(hu, hhir.AddInt) + countOps(hu, hhir.MulInt); n != 0 {
		t.Errorf("constant arithmetic not folded (%d ops left):\n%s", n, hu)
	}
}

func TestLoadElimRemovesRedundantLoads(t *testing.T) {
	src := `function k($x) { $y = $x + 1; $z = $x + 2; return $y + $z; } echo k(1);`
	locals := map[int]types.Type{0: types.TInt}
	u := buildFor(t, src, "k", locals, hhir.AllPasses)
	// $x is loaded once; later reads forward the first load. Locals
	// $y/$z forward their stores entirely.
	loads := countOps(u, hhir.LdLoc)
	if loads > 1 {
		t.Errorf("load elimination left %d LdLocs:\n%s", loads, u)
	}
}

func TestGVNDeduplicates(t *testing.T) {
	src := `function m($x) { return ($x * 3) + ($x * 3); } echo m(2);`
	locals := map[int]types.Type{0: types.TInt}
	without := buildFor(t, src, "m", locals, hhir.PassConfig{Simplify: true, DCE: true, LoadElim: true})
	with := buildFor(t, src, "m", locals, hhir.AllPasses)
	if countOps(with, hhir.MulInt) >= countOps(without, hhir.MulInt) {
		t.Errorf("GVN did not deduplicate: %d vs %d MulInts",
			countOps(with, hhir.MulInt), countOps(without, hhir.MulInt))
	}
}

func TestTypeSpecializedArith(t *testing.T) {
	src := `function a($x, $y) { return $x + $y; } echo a(1, 2);`
	intCase := buildFor(t, src, "a",
		map[int]types.Type{0: types.TInt, 1: types.TInt}, hhir.AllPasses)
	if countOps(intCase, hhir.AddInt) != 1 || countOps(intCase, hhir.BinopGeneric) != 0 {
		t.Errorf("int+int not specialized:\n%s", intCase)
	}
	dblCase := buildFor(t, src, "a",
		map[int]types.Type{0: types.TDbl, 1: types.TInt}, hhir.AllPasses)
	if countOps(dblCase, hhir.AddDbl) != 1 {
		t.Errorf("dbl+int not specialized to AddDbl:\n%s", dblCase)
	}
}

func TestGuardsBecomeAssertsAtEntry(t *testing.T) {
	// Entry preconditions are dispatcher-checked: the translation body
	// must not re-check them.
	src := `function n($x) { return $x + 1; } echo n(1);`
	u := buildFor(t, src, "n", map[int]types.Type{0: types.TInt}, hhir.PassConfig{})
	if countOps(u, hhir.GuardLoc) != 0 {
		t.Errorf("entry guards were emitted as runtime checks:\n%s", u)
	}
}

func TestUnitPrinting(t *testing.T) {
	src := `function p($x) { return $x; } echo p(1);`
	u := buildFor(t, src, "p", map[int]types.Type{0: types.TInt}, hhir.PassConfig{})
	s := u.String()
	if !strings.Contains(s, "HHIR unit for p") || !strings.Contains(s, "Ret") {
		t.Errorf("printer output suspicious:\n%s", s)
	}
}

var _ = hhbc.OpNop

// TestShapeGuardElim exercises the pass directly on a hand-built
// unit: a dominated identical guard dies, a different shape ID on the
// same value does not, and a shape-mutating op in between kills the
// learned fact.
func TestShapeGuardElim(t *testing.T) {
	build := func(mid hhir.Opcode, secondID int64) *hhir.Unit {
		u := hhir.NewUnit(&hhbc.Func{Name: "t"})
		b := u.NewBlock(0)
		u.Entry = b
		obj := u.NewTmp(types.TObj)
		b.Instrs = append(b.Instrs,
			&hhir.Instr{Op: hhir.GuardShape, I64: 7, Args: []*hhir.SSATmp{obj}})
		if mid != hhir.Nop {
			b.Instrs = append(b.Instrs, &hhir.Instr{Op: mid})
		}
		b.Instrs = append(b.Instrs,
			&hhir.Instr{Op: hhir.GuardShape, I64: secondID, Args: []*hhir.SSATmp{obj}},
			&hhir.Instr{Op: hhir.Ret})
		return u
	}

	u := build(hhir.Nop, 7)
	hhir.ShapeGuardElim(u)
	if n := countOps(u, hhir.GuardShape); n != 1 {
		t.Errorf("dominated identical guard survived: %d guards left:\n%s", n, u)
	}

	u = build(hhir.Nop, 9)
	hhir.ShapeGuardElim(u)
	if n := countOps(u, hhir.GuardShape); n != 2 {
		t.Errorf("guard for a different shape was removed: %d guards left:\n%s", n, u)
	}

	// A call may run arbitrary guest code and mutate any shape.
	u = build(hhir.CallFunc, 7)
	hhir.ShapeGuardElim(u)
	if n := countOps(u, hhir.GuardShape); n != 2 {
		t.Errorf("guard after a shape-mutating call was removed: %d guards left:\n%s", n, u)
	}

	// A guarded typed store preserves the shape: the fact survives.
	u = build(hhir.StPropSlot, 7)
	hhir.ShapeGuardElim(u)
	if n := countOps(u, hhir.GuardShape); n != 1 {
		t.Errorf("StPropSlot should not invalidate the shape fact: %d guards left:\n%s", n, u)
	}
}
