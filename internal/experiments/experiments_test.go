package experiments_test

import (
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/perflab"
	"repro/internal/server"
)

// TestFig8Shape checks the headline ordering of Figure 8.
func TestFig8Shape(t *testing.T) {
	rows, err := experiments.Fig8(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportFig8(os.Stderr, rows)
	rel := map[string]float64{}
	for _, r := range rows {
		rel[r.Mode] = r.RelPerf
	}
	if !(rel["interp"] < rel["profiling"] && rel["profiling"] < rel["tracelet"] &&
		rel["tracelet"] < rel["region"]) {
		t.Errorf("mode ordering wrong: %v (want interp < profiling < tracelet < region)", rel)
	}
	if rel["interp"] > 25 {
		t.Errorf("interpreter too fast: %.1f%% (paper: 12.8%%)", rel["interp"])
	}
	if rel["tracelet"] < 65 || rel["tracelet"] > 98 {
		t.Errorf("tracelet out of band: %.1f%% (paper: 82.2%%)", rel["tracelet"])
	}
	if rel["profiling"] < 25 || rel["profiling"] > 65 {
		t.Errorf("profiling out of band: %.1f%% (paper: 39.8%%)", rel["profiling"])
	}
}

// TestFig11Shape checks diminishing returns on code-size budget.
func TestFig11Shape(t *testing.T) {
	rows, err := experiments.Fig11(experiments.Quick, []float64{0.1, 0.4, 1.0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportFig11(os.Stderr, rows)
	byFrac := map[float64]float64{}
	for _, r := range rows {
		byFrac[r.RelCodeSize] = r.RelPerf
	}
	if byFrac[0.1] >= byFrac[0.4] {
		t.Errorf("10%% budget (%.1f%%) should be slower than 40%% (%.1f%%)",
			byFrac[0.1], byFrac[0.4])
	}
	if byFrac[0.4] > byFrac[1.0]+3 {
		t.Errorf("40%% budget (%.1f%%) should not beat full budget (%.1f%%)",
			byFrac[0.4], byFrac[1.0])
	}
	// Diminishing returns: the jump 10->40 dwarfs 100->120.
	if byFrac[1.2]-byFrac[1.0] > byFrac[0.4]-byFrac[0.1] {
		t.Errorf("no diminishing returns: 100->120 gain %.1f vs 10->40 gain %.1f",
			byFrac[1.2]-byFrac[1.0], byFrac[0.4]-byFrac[0.1])
	}
}

// TestScalingSpeedup is the acceptance criterion for concurrent
// serving: four workers sharing one JIT must deliver at least 2× the
// aggregate throughput of one worker. Anything less means the shared
// translation index or counters serialize request execution.
func TestScalingSpeedup(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 12
	cfg.CyclesPerMinute = 1_200_000
	rows, err := experiments.Scaling(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportScaling(os.Stderr, rows)
	// Each worker count yields a baseline and a tuned row (PR 8).
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, r := range rows[2:] {
		if r.Speedup < 2 {
			t.Errorf("4-worker speedup %.2fx (tuned=%v), want >= 2x over 1 worker", r.Speedup, r.Tuned)
		}
	}
}

// TestChainAcceptance is the acceptance criterion for direct
// chaining: with chaining on, the steady-state dispatcher Lookup rate
// must drop by at least 10x in both tracelet and region mode, the
// guest cost must not regress, and every endpoint's output must stay
// bit-identical across the toggle (Chain itself fails on divergence).
func TestChainAcceptance(t *testing.T) {
	rows, err := experiments.Chain(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportChain(os.Stderr, rows)
	byMode := map[string]map[bool]experiments.ChainRow{}
	for _, r := range rows {
		if byMode[r.Mode] == nil {
			byMode[r.Mode] = map[bool]experiments.ChainRow{}
		}
		byMode[r.Mode][r.Chained] = r
	}
	for mode, pair := range byMode {
		off, on := pair[false], pair[true]
		if off.BindsSmashed != 0 || off.ChainedJumps != 0 || off.ChainedCalls != 0 {
			t.Errorf("%s unchained run shows chaining activity: %+v", mode, off)
		}
		if on.BindsSmashed == 0 {
			t.Errorf("%s chained run never smashed a bind site", mode)
		}
		if on.LookupsPerReq <= 0 {
			t.Errorf("%s chained lookups/req = %.2f, want > 0 (at least entry lookups)",
				mode, on.LookupsPerReq)
			continue
		}
		if ratio := off.LookupsPerReq / on.LookupsPerReq; ratio < 10 {
			t.Errorf("%s lookup drop %.1fx (%.2f -> %.2f lookups/req), want >= 10x",
				mode, ratio, off.LookupsPerReq, on.LookupsPerReq)
		}
		if on.CyclesPerReq > off.CyclesPerReq {
			t.Errorf("%s chaining regressed guest cost: %.0f -> %.0f cycles/req",
				mode, off.CyclesPerReq, on.CyclesPerReq)
		}
	}
}

// TestFig10Directions checks every ablation slows the system down.
func TestFig10Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is slow")
	}
	rows, err := experiments.Fig10(perflab.Config{WarmupRequests: 30, MeasureRequests: 5})
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportFig10(os.Stderr, rows)
	for _, r := range rows {
		if r.SlowdownPct < -2.5 {
			t.Errorf("disabling %s sped things up by %.1f%%", r.Optimization, -r.SlowdownPct)
		}
	}
}

// TestShapesAcceptance runs the shapes ablation at quick volume and
// holds it to the acceptance gate: >=5x fewer generic property-helper
// calls per request, improved guest cycles, guard-only monomorphic
// access, and bit-identical outputs across the toggle.
func TestShapesAcceptance(t *testing.T) {
	res, err := experiments.Shapes(experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	experiments.ReportShapes(os.Stderr, res)
	if err := res.GateErr(); err != nil {
		t.Error(err)
	}
	for _, row := range res.Rows {
		if row.Speedup <= 1.0 {
			t.Errorf("endpoint %s regressed with shapes on: %.3fx", row.Endpoint, row.Speedup)
		}
	}
	if res.GuardFailsPerReq != 0 {
		t.Errorf("steady-state shape guards failed (%.1f/req): optimized code is guessing wrong layouts",
			res.GuardFailsPerReq)
	}
}
