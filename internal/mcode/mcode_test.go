package mcode_test

import (
	"testing"

	"repro/internal/mcode"
)

func TestCacheBudget(t *testing.T) {
	c := mcode.NewCache(100)
	if _, err := c.Alloc(mcode.AreaHot, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(mcode.AreaLive, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(mcode.AreaHot, 20); err == nil {
		t.Error("allocation beyond the limit succeeded")
	}
	c.Free(mcode.AreaLive, 30)
	if _, err := c.Alloc(mcode.AreaHot, 20); err != nil {
		t.Errorf("allocation after free failed: %v", err)
	}
	if c.TotalUsed() != 80 {
		t.Errorf("used = %d", c.TotalUsed())
	}
}

func TestAreasDoNotOverlap(t *testing.T) {
	c := mcode.NewCache(0)
	a, _ := c.Alloc(mcode.AreaHot, 1<<20)
	b, _ := c.Alloc(mcode.AreaCold, 1<<20)
	p, _ := c.Alloc(mcode.AreaProfile, 1<<20)
	if a == b || b == p || a == p {
		t.Error("area base addresses collide")
	}
}

func TestHugePageCoverage(t *testing.T) {
	c := mcode.NewCache(0)
	base, _ := c.Alloc(mcode.AreaHot, 4096)
	if c.HugeCovers(base) {
		t.Error("huge coverage before SetHugePages")
	}
	c.SetHugePages(4096)
	if !c.HugeCovers(base) {
		t.Error("hot code not huge-covered after SetHugePages")
	}
	if c.HugeCovers(base + 1<<30) {
		t.Error("unrelated address huge-covered")
	}
}

func TestSequentialAddresses(t *testing.T) {
	c := mcode.NewCache(0)
	a, _ := c.Alloc(mcode.AreaHot, 100)
	b, _ := c.Alloc(mcode.AreaHot, 100)
	if b != a+100 {
		t.Errorf("bump allocation not sequential: %x then %x", a, b)
	}
}
