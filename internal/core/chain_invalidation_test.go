package core_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mcode"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestChainLinksAcrossOptimizePublish drives 4 workers with direct
// chaining enabled across the profiling → global-retranslation swap,
// then checks the link-invalidation protocol end to end:
//
//  1. every output stays bit-identical to the interpreter reference
//     while sites are being smashed concurrently;
//  2. after the index swap no link with a non-current epoch survives
//     (the treadmill sweep plus the profiling-never-chainable rule);
//  3. links forcibly back-dated to a stale epoch are rejected by the
//     epoch guard on the next transfer and repaired back to the
//     current epoch, with outputs again bit-identical.
//
// Run under -race this also exercises concurrent StoreLink/LoadLink
// against the lock-free follower path.
func TestChainLinksAcrossOptimizePublish(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference outputs from a pure interpreter.
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, ep := range eps {
		var sb strings.Builder
		refEng.VM.SetOut(&sb)
		val, err := refEng.Call(workload.EndpointFunc(ep.Name))
		if err != nil {
			t.Fatalf("reference %s: %v", ep.Name, err)
		}
		refEng.Heap().DecRef(val)
		ref[ep.Name] = sb.String()
	}

	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 300 // fire the global trigger mid-run
	cfg.BackgroundCompile = true
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
	}

	serve := func(rounds int) error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(v *vm.VM) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for _, ep := range eps {
						fn, ok := unit.FuncByName(workload.EndpointFunc(ep.Name))
						if !ok {
							errCh <- fmt.Errorf("endpoint %s: missing function", ep.Name)
							return
						}
						var sb strings.Builder
						v.SetOut(&sb)
						val, err := v.CallFunc(fn, nil, nil)
						if err != nil {
							errCh <- fmt.Errorf("endpoint %s: %v", ep.Name, err)
							return
						}
						v.Heap.DecRef(val)
						if sb.String() != ref[ep.Name] {
							errCh <- fmt.Errorf("endpoint %s: output diverged:\n got %q\nwant %q",
								ep.Name, sb.String(), ref[ep.Name])
							return
						}
					}
				}
			}(ws[i])
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		return nil
	}

	// Phase 1: straddle the publish with concurrent smashing traffic.
	if err := serve(30); err != nil {
		t.Fatal(err)
	}
	j := eng.VM.JIT
	deadline := time.Now().Add(10 * time.Second)
	for !j.Optimized() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !j.Optimized() {
		t.Fatal("optimized index never published")
	}
	// A few more rounds so post-publish code binds its sites.
	if err := serve(5); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.BindsSmashed == 0 {
		t.Fatal("no bind sites were smashed; chaining never engaged")
	}
	if st.ChainedJumps == 0 {
		t.Error("no chained jumps followed the smashed sites")
	}

	// Invariant 2: no stale link survives the index swap. Also plant
	// back-dated links on every bound site for phase 2.
	epoch := j.Epoch()
	if epoch == 0 {
		t.Fatal("publish did not advance the link epoch")
	}
	planted := 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		code := tr.Code
		code.ForEachLink(func(i int, l *mcode.Link) {
			if l.Epoch != epoch {
				t.Errorf("stale link survived the swap: func %d pc %d site %d has epoch %d, index epoch %d",
					tr.FuncID, tr.PC, i, l.Epoch, epoch)
			}
			code.StoreLink(i, &mcode.Link{Epoch: l.Epoch - 1, Target: l.Target})
			planted++
		})
	})
	if planted == 0 {
		t.Fatal("no links were bound after the publish")
	}

	// Phase 3: the epoch guard must reject every planted link, fall
	// back, and re-smash — without output divergence.
	staleBefore := eng.Stats().StaleLinks
	if err := serve(10); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.StaleLinks == staleBefore {
		t.Error("planted stale links were never detected by the epoch guard")
	}
	current, repaired := j.Epoch(), 0
	j.ForEachTranslation(func(tr *jit.Translation) {
		tr.Code.ForEachLink(func(i int, l *mcode.Link) {
			if l.Epoch > current {
				t.Errorf("link from the future: func %d pc %d site %d epoch %d > %d",
					tr.FuncID, tr.PC, i, l.Epoch, current)
			}
			if l.Epoch == current {
				repaired++
			}
		})
	})
	if repaired == 0 {
		t.Error("no stale link was repaired back to the current epoch")
	}
}
