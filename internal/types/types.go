// Package types implements the runtime type lattice shared by the
// bytecode optimizer (hhbbc), the region selectors, and the HHIR
// compiler. A Type is a union of primitive kinds optionally refined by
// a specialization (array kind or object class), mirroring the type
// system the HHVM JIT uses for guards, assertions, and HHIR values.
package types

import (
	"sort"
	"strings"
)

// Kind is a bitset of primitive value kinds. A Type with exactly one
// bit set is "specific" in the paper's terminology.
type Kind uint16

const (
	KUninit Kind = 1 << iota // uninitialized local
	KNull
	KBool
	KInt
	KDbl
	KStr
	KArr
	KObj

	kindCount = 8
)

// Handy unions, named after their HHVM counterparts.
const (
	KNone      Kind = 0
	KInitNull       = KNull
	KUncounted      = KUninit | KNull | KBool | KInt | KDbl
	KCounted        = KStr | KArr | KObj
	KCell           = KUninit | KNull | KBool | KInt | KDbl | KStr | KArr | KObj
	KInitCell       = KCell &^ KUninit
	KNum            = KInt | KDbl
)

var kindNames = map[Kind]string{
	KUninit: "Uninit",
	KNull:   "Null",
	KBool:   "Bool",
	KInt:    "Int",
	KDbl:    "Dbl",
	KStr:    "Str",
	KArr:    "Arr",
	KObj:    "Obj",
}

// ArrayKind refines KArr: HHVM distinguishes packed (vector-like) from
// mixed (hash-like) arrays and specializes array access code on the
// kind.
type ArrayKind uint8

const (
	ArrayAny ArrayKind = iota
	ArrayPacked
	ArrayMixed
)

func (k ArrayKind) String() string {
	switch k {
	case ArrayPacked:
		return "Packed"
	case ArrayMixed:
		return "Mixed"
	default:
		return "Any"
	}
}

// Type is a union of kinds plus an optional specialization. The zero
// value is Bottom (no possible values).
type Type struct {
	bits Kind
	// arrKind refines KArr when bits == KArr.
	arrKind ArrayKind
	// cls refines KObj when bits == KObj: the value is an instance of
	// exactly this class (exact=true) or this class or a subclass.
	cls   string
	exact bool
}

// Pre-built types.
var (
	TBottom    = Type{}
	TUninit    = Type{bits: KUninit}
	TNull      = Type{bits: KNull}
	TBool      = Type{bits: KBool}
	TInt       = Type{bits: KInt}
	TDbl       = Type{bits: KDbl}
	TStr       = Type{bits: KStr}
	TArr       = Type{bits: KArr}
	TObj       = Type{bits: KObj}
	TNum       = Type{bits: KNum}
	TUncounted = Type{bits: KUncounted}
	TCounted   = Type{bits: KCounted}
	TCell      = Type{bits: KCell}
	TInitCell  = Type{bits: KInitCell}
	TInitNull  = Type{bits: KInitNull}
)

// FromKind returns the Type for a kind union with no specialization.
func FromKind(k Kind) Type { return Type{bits: k} }

// PackedArr and MixedArr are the specialized array types.
func ArrOfKind(ak ArrayKind) Type { return Type{bits: KArr, arrKind: ak} }

// ObjOfClass returns the type of instances of cls (or a subclass when
// exact is false).
func ObjOfClass(cls string, exact bool) Type {
	return Type{bits: KObj, cls: cls, exact: exact}
}

// Kind returns the kind bitset.
func (t Type) Kind() Kind { return t.bits }

// ArrayKind returns the array specialization, or ArrayAny.
func (t Type) ArrayKind() ArrayKind {
	if t.bits == KArr {
		return t.arrKind
	}
	return ArrayAny
}

// Class returns the object-class specialization ("" if none) and
// whether it is exact.
func (t Type) Class() (string, bool) { return t.cls, t.exact }

// IsBottom reports whether no value can have this type.
func (t Type) IsBottom() bool { return t.bits == 0 }

// IsSpecific reports whether exactly one primitive kind is possible
// ("Specific" in Table 1 of the paper).
func (t Type) IsSpecific() bool { return t.bits != 0 && t.bits&(t.bits-1) == 0 }

// IsSpecialized reports whether the type carries an array-kind or
// class refinement ("Specialized" in Table 1).
func (t Type) IsSpecialized() bool {
	return (t.bits == KArr && t.arrKind != ArrayAny) || (t.bits == KObj && t.cls != "")
}

// Counted reports whether every value of this type is reference
// counted; MaybeCounted whether any could be.
func (t Type) Counted() bool      { return t.bits != 0 && t.bits&KUncounted == 0 }
func (t Type) MaybeCounted() bool { return t.bits&KCounted != 0 }

// SubtypeOf reports whether every value of t is also a value of u.
func (t Type) SubtypeOf(u Type) bool {
	if t.bits == 0 {
		return true // Bottom is a subtype of everything
	}
	if t.bits&^u.bits != 0 {
		return false
	}
	// Specializations only constrain when u is specialized.
	if u.bits == KArr && u.arrKind != ArrayAny {
		if t.bits != KArr || t.arrKind != u.arrKind {
			return false
		}
	}
	if u.bits == KObj && u.cls != "" {
		if t.bits != KObj || t.cls == "" {
			return false
		}
		if u.exact {
			if !t.exact || t.cls != u.cls {
				return false
			}
		} else if t.cls != u.cls && !classTable.isSubclass(t.cls, u.cls) {
			return false
		}
	}
	return true
}

// Maybe reports whether the two types share any value.
func (t Type) Maybe(u Type) bool { return !t.Intersect(u).IsBottom() }

// Union returns the least upper bound.
func (t Type) Union(u Type) Type {
	if t.IsBottom() {
		return u
	}
	if u.IsBottom() {
		return t
	}
	r := Type{bits: t.bits | u.bits}
	if r.bits == KArr {
		if t.arrKind == u.arrKind {
			r.arrKind = t.arrKind
		}
	}
	if r.bits == KObj && t.cls != "" && u.cls != "" {
		if t.cls == u.cls {
			r.cls = t.cls
			r.exact = t.exact && u.exact
		} else if anc := classTable.commonAncestor(t.cls, u.cls); anc != "" {
			r.cls = anc
		}
	}
	return r
}

// Intersect returns the greatest lower bound.
func (t Type) Intersect(u Type) Type {
	r := Type{bits: t.bits & u.bits}
	if r.bits == 0 {
		return TBottom
	}
	if r.bits == KArr {
		ta, ua := t.arrKind, u.arrKind
		if t.bits != KArr {
			ta = ArrayAny
		}
		if u.bits != KArr {
			ua = ArrayAny
		}
		switch {
		case ta == ArrayAny:
			r.arrKind = ua
		case ua == ArrayAny || ta == ua:
			r.arrKind = ta
		default:
			return TBottom
		}
	}
	if r.bits == KObj {
		tc, te := t.cls, t.exact
		uc, ue := u.cls, u.exact
		if t.bits != KObj {
			tc = ""
		}
		if u.bits != KObj {
			uc = ""
		}
		switch {
		case tc == "":
			r.cls, r.exact = uc, ue
		case uc == "" || tc == uc:
			r.cls, r.exact = tc, te || ue
		case te && ue:
			return TBottom // exactly-A and exactly-B with A != B
		case te:
			if !classTable.isSubclass(tc, uc) {
				return TBottom
			}
			r.cls, r.exact = tc, true
		case ue:
			if !classTable.isSubclass(uc, tc) {
				return TBottom
			}
			r.cls, r.exact = uc, true
		case classTable.isSubclass(tc, uc):
			r.cls, r.exact = tc, false
		case classTable.isSubclass(uc, tc):
			r.cls, r.exact = uc, false
		default:
			return TBottom
		}
	}
	return r
}

// Unspecialize drops any array-kind or class refinement.
func (t Type) Unspecialize() Type { return Type{bits: t.bits} }

func (t Type) String() string {
	switch t.bits {
	case 0:
		return "Bottom"
	case KCell:
		return "Cell"
	case KInitCell:
		return "InitCell"
	case KUncounted:
		return "Uncounted"
	case KCounted:
		return "Counted"
	case KNum:
		return "Num"
	}
	var parts []string
	for i := 0; i < kindCount; i++ {
		k := Kind(1 << i)
		if t.bits&k == 0 {
			continue
		}
		name := kindNames[k]
		if k == KArr && t.bits == KArr && t.arrKind != ArrayAny {
			name = "Arr=" + t.arrKind.String()
		}
		if k == KObj && t.bits == KObj && t.cls != "" {
			if t.exact {
				name = "Obj=" + t.cls
			} else {
				name = "Obj<=" + t.cls
			}
		}
		parts = append(parts, name)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}
