package types_test

import "testing"

func TestLatticeBrute(t *testing.T) {
	ts := sampleTypes()
	for _, a := range ts {
		for _, b := range ts {
			u := a.Union(b)
			if !a.SubtypeOf(u) || !b.SubtypeOf(u) {
				t.Errorf("union bad: %v U %v = %v", a, b, u)
			}
			i := a.Intersect(b)
			if !i.SubtypeOf(a) || !i.SubtypeOf(b) {
				t.Errorf("intersect bad: %v ^ %v = %v", a, b, i)
			}
		}
	}
}
