// Package sentry is the JIT's self-verification layer: it assumes the
// compiler, the code cache, or the machine below them will eventually
// be wrong, and builds the detection machinery to notice before users
// do.
//
// Three mechanisms compose:
//
//   - Integrity sentinels: every published translation is checksummed
//     at publish time (code bytes plus a shadow of the smashable-link
//     slab's static layout). A low-priority auditor re-walks the code
//     cache validating checksums, link epochs, and that every live
//     link targets a still-published translation. A mismatch
//     invalidates the translation through the quarantine path and
//     lets the normal mint machinery re-create it.
//
//   - Sampled shadow execution: a configurable fraction of requests
//     is re-executed on a shadow interpreter-only VM and on an
//     isolated replay VM that runs the published code without
//     mutating any shared state. Output bytes, rendered return
//     values, and a shape digest are compared off the hot path.
//
//   - Divergence bisection: when a comparison fails, the request is
//     replayed deterministically with per-translation disable masks,
//     binary-searching for the culprit translation, which is then
//     quarantined, and a divergence report is emitted.
package sentry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/jit"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/vm"
)

// Config tunes a Monitor.
type Config struct {
	// SampleRate is the fraction of observed requests re-executed on
	// the shadow interpreter (0 disables shadow sampling; audit-only
	// monitors are still useful).
	SampleRate float64
	// Seed drives the deterministic sampling decision.
	Seed int64
	// QueueDepth bounds the pending-comparison buffer (default 256).
	QueueDepth int
	// AuditChunk is how many translations AuditStep validates per
	// call (default 8).
	AuditChunk int
}

// Stats is a counter snapshot for reports and JSON output.
type Stats struct {
	ChecksumsRecorded uint64 // publish-time checksum records
	AuditSweeps       uint64 // completed full passes over the registry
	Audited           uint64 // translations validated
	Corruptions       uint64 // checksum mismatches detected
	TornLinks         uint64 // future-epoch links detected (torn writes)
	StaleLinks        uint64 // past-epoch links cleared by the auditor
	DanglingLinks     uint64 // current-epoch links to unpublished code
	Invalidated       uint64 // translations unpublished by the auditor
	Sampled           uint64 // requests selected for shadow execution
	ShadowRuns        uint64 // shadow comparisons completed
	Divergences       uint64 // mismatches (primary/replay vs shadow)
	Replays           uint64 // bisection replay executions
	Quarantined       uint64 // culprits quarantined after bisection
	Transient         uint64 // divergences that no longer reproduced
}

// DivergenceReport records one detected divergence and the outcome of
// its bisection.
type DivergenceReport struct {
	Endpoint      string
	PrimaryOutput string
	ShadowOutput  string
	PrimaryDigest uint64
	ShadowDigest  uint64
	// Replays is the number of deterministic re-executions the
	// bisection needed.
	Replays int
	// CulpritFunc/CulpritPC identify the quarantined translation
	// (-1/-1 when no culprit could be isolated).
	CulpritFunc int
	CulpritPC   int
	CulpritKind string
	Quarantined bool
	// Transient means the divergence did not reproduce on replay
	// (e.g. the auditor already repaired the corruption).
	Transient bool
	// Unisolable means even an interpreter-equivalent replay (every
	// translation disabled) still diverged from the shadow reference,
	// so the fault is outside the code cache.
	Unisolable bool
}

// Monitor attaches the verification layer to one JIT instance.
type Monitor struct {
	cfg Config
	j   *jit.JIT

	// registry of published translations and their publish-time
	// checksums. Guarded by mu. The publish/unpublish hooks run under
	// the JIT's lock, so nothing here may call back into the JIT
	// while holding mu (lock order: jit.mu before Monitor.mu).
	mu      sync.Mutex
	sums    map[*jit.Translation]uint64
	backlog []*jit.Translation // current audit sweep, deterministic order

	// shadow is a private interpreter-only VM over the same unit: the
	// semantic reference. replay executes published translations
	// without mutating shared link state (see newReplayVM). Both are
	// owned by the comparator goroutine after Start.
	shadow     *vm.VM
	shadowBuf  strings.Builder
	replay     *vm.VM
	replayBuf  strings.Builder
	replayDeny map[*jit.Translation]bool
	// shadowMemo caches the interpreter reference per endpoint.
	// Endpoint outputs are deterministic by construction (the perflab
	// measurement protocol rejects nondeterministic ones) and the
	// interpreter never reads JIT state, so the reference needs
	// computing once; without the memo, every sampled request would
	// pay a full interpreter re-execution — which on a small host is
	// the entire verification overhead budget. The replay leg always
	// runs fresh: it is the one exercising the live code cache.
	// Owned by the comparator goroutine; no locking.
	shadowMemo map[string]shadowRef

	obs    chan observation
	wg     sync.WaitGroup
	closed bool

	// OnDivergence, when set before Start, is called from the
	// comparator goroutine for every divergence report (the fleet
	// uses it to mark the host degraded).
	OnDivergence func(DivergenceReport)

	repMu   sync.Mutex
	reports []DivergenceReport

	reqSeq    atomic.Uint64
	threshold uint64

	checksums   atomic.Uint64
	sweeps      atomic.Uint64
	audited     atomic.Uint64
	corruptions atomic.Uint64
	tornLinks   atomic.Uint64
	staleLinks  atomic.Uint64
	dangling    atomic.Uint64
	invalidated atomic.Uint64
	sampled     atomic.Uint64
	shadowRuns  atomic.Uint64
	divergences atomic.Uint64
	replays     atomic.Uint64
	quarantined atomic.Uint64
	transient   atomic.Uint64
}

// New builds a Monitor over j, registers its publish/unpublish hooks,
// seeds the checksum registry from already-published translations,
// and starts the comparator goroutine. Call Close when done.
func New(cfg Config, j *jit.JIT) (*Monitor, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.AuditChunk <= 0 {
		cfg.AuditChunk = 8
	}
	m := &Monitor{
		cfg:  cfg,
		j:    j,
		sums: map[*jit.Translation]uint64{},
		obs:  make(chan observation, cfg.QueueDepth),
	}
	if cfg.SampleRate > 0 {
		r := cfg.SampleRate
		if r >= 1 {
			// float64(MaxUint64) rounds to 2^64, and converting that
			// back to uint64 overflows (implementation-specific; 2^63
			// on amd64 — i.e. rate 1.0 would sample half). Clamp
			// exactly instead.
			m.threshold = math.MaxUint64
		} else {
			m.threshold = uint64(r * float64(math.MaxUint64))
			if m.threshold == 0 {
				m.threshold = 1
			}
		}
	}
	shadow, err := vm.New(j.Unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		return nil, fmt.Errorf("sentry: shadow VM: %w", err)
	}
	m.shadow = shadow
	m.shadow.SetOut(&m.shadowBuf)
	m.shadowMemo = map[string]shadowRef{}
	m.replay = newReplayVM(j, m)
	m.replay.SetOut(&m.replayBuf)

	j.SetVerifyHooks(m.record, m.forget)
	// Seed the registry with whatever was published before we
	// attached (hooks cover everything from here on; re-records are
	// idempotent).
	j.ForEachTranslation(m.record)

	m.wg.Add(1)
	go m.comparatorLoop()
	return m, nil
}

// newReplayVM builds a worker VM that executes published translations
// deterministically without perturbing shared state: a non-nil
// DenyTrans switches the dispatcher to published-only lookups (no
// minting, no smashing, no fault recording, no entry counting or
// profile arcs — the comparator must never trigger or steer a
// compile), a private link epoch of
// ^0 makes every smashed link read as stale so chained transfers and
// inline caches always bounce back through the deny-aware dispatcher,
// FreezeLinks suppresses link repairs and IC installs, the fault
// injector is detached so replays never consume shared draws, and
// chain/shape counters drain into private sinks.
func newReplayVM(j *jit.JIT, m *Monitor) *vm.VM {
	v := vm.NewWorker(j, io.Discard)
	v.DenyTrans = func(tr *jit.Translation) bool { return m.replayDeny[tr] }
	epoch := &atomic.Uint64{}
	epoch.Store(^uint64(0))
	v.Machine.Epoch = epoch
	v.Machine.Fallback = nil
	v.Machine.FI = nil
	v.Machine.FreezeLinks = true
	v.Machine.Chain = &machine.ChainStats{}
	v.Machine.Shapes = &machine.ShapeStats{}
	// Detach the shared profile-counter slab: replaying a profiling
	// translation must not bump the counters/arcs region selection
	// reads, or replays would perturb which optimized code gets built.
	v.Machine.Counters = nil
	return v
}

// record is the publish hook: checksum the new translation's code.
// Runs under the JIT's lock — must not call back into the JIT.
func (m *Monitor) record(tr *jit.Translation) {
	if tr == nil || tr.Code == nil {
		return
	}
	sum := Checksum(tr.Code)
	m.mu.Lock()
	if _, seen := m.sums[tr]; !seen {
		m.checksums.Add(1)
	}
	m.sums[tr] = sum
	m.mu.Unlock()
}

// forget is the unpublish hook.
func (m *Monitor) forget(tr *jit.Translation) {
	m.mu.Lock()
	delete(m.sums, tr)
	m.mu.Unlock()
}

// Checksum hashes the translation-visible content of a code object:
// the instruction stream, constant pool, jump tables, frame sizing,
// placement, the static layout of the link slab, and the tamper
// word. Live link *contents* are deliberately excluded — smashing and
// treadmill sweeps rewrite them legitimately — and are audited
// separately against the current epoch.
func Checksum(c *mcode.Code) uint64 {
	h := fnvOffset
	for i := range c.Instrs {
		in := &c.Instrs[i]
		h = fnvInt(h, int64(in.Op))
		h = fnvInt(h, int64(in.D))
		h = fnvInt(h, int64(in.A))
		h = fnvInt(h, int64(in.B))
		h = fnvInt(h, in.I64)
		h = fnvStr(h, in.Str)
		h = fnvStr(h, in.TypeParam.String())
		h = fnvInt(h, int64(in.Target1))
		h = fnvInt(h, int64(in.Target2))
		h = fnvInt(h, int64(len(in.Args)))
		for _, r := range in.Args {
			h = fnvInt(h, int64(r))
		}
		if in.Ex != nil {
			h = fnvInt(h, 1)
		}
	}
	for _, im := range c.Imms {
		h = fnvInt(h, int64(im.Kind))
		h = fnvInt(h, im.I)
		h = fnvInt(h, int64(math.Float64bits(im.D)))
		h = fnvStr(h, im.S)
	}
	for _, tbl := range c.Tables {
		h = fnvInt(h, tbl.Base)
		h = fnvInt(h, int64(tbl.Default))
		for _, t := range tbl.Targets {
			h = fnvInt(h, int64(t))
		}
	}
	h = fnvInt(h, int64(c.NumSpills))
	h = fnvInt(h, int64(c.ExtSlots))
	h = fnvInt(h, int64(c.Base))
	h = fnvInt(h, int64(c.Size))
	h = fnvInt(h, int64(c.Tampered()))
	return h
}

// Audit runs a full sweep over every registered translation and
// returns the number of corruptions (checksum mismatches plus torn
// links) it found.
func (m *Monitor) Audit() int {
	found := 0
	for {
		n, more := m.auditSome(64)
		found += n
		if !more {
			return found
		}
	}
}

// AuditStep validates up to n translations (the server calls this
// once per simulated minute so auditing stays low-priority). Returns
// the number of corruptions found in this step.
func (m *Monitor) AuditStep(n int) int {
	if n <= 0 {
		n = m.cfg.AuditChunk
	}
	found, _ := m.auditSome(n)
	return found
}

// auditSome pops up to n translations off the current sweep backlog
// (starting a new sweep when it is empty) and validates them. The
// second result reports whether the sweep still has work left.
func (m *Monitor) auditSome(n int) (int, bool) {
	m.mu.Lock()
	if len(m.backlog) == 0 {
		if len(m.sums) == 0 {
			m.mu.Unlock()
			return 0, false
		}
		m.backlog = make([]*jit.Translation, 0, len(m.sums))
		for tr := range m.sums {
			m.backlog = append(m.backlog, tr)
		}
		sort.Slice(m.backlog, func(i, j int) bool {
			a, b := m.backlog[i], m.backlog[j]
			if a.FuncID != b.FuncID {
				return a.FuncID < b.FuncID
			}
			if a.PC != b.PC {
				return a.PC < b.PC
			}
			return a.Kind < b.Kind
		})
		m.sweeps.Add(1)
	}
	if n > len(m.backlog) {
		n = len(m.backlog)
	}
	chunk := m.backlog[:n]
	m.backlog = m.backlog[n:]
	type job struct {
		tr   *jit.Translation
		want uint64
	}
	jobs := make([]job, 0, len(chunk))
	for _, tr := range chunk {
		if want, ok := m.sums[tr]; ok { // skip concurrently-unpublished
			jobs = append(jobs, job{tr, want})
		}
	}
	more := len(m.backlog) > 0
	m.mu.Unlock()

	found := 0
	for _, jb := range jobs {
		found += m.validate(jb.tr, jb.want)
	}
	return found, more
}

// validate checks one translation's checksum and link slab. Called
// without mu held (it may call back into the JIT to invalidate).
func (m *Monitor) validate(tr *jit.Translation, want uint64) int {
	m.audited.Add(1)
	found := 0
	if got := Checksum(tr.Code); got != want {
		// Code bytes rotted under us. The compiler itself is not
		// suspect, so invalidate without backoff: the next entry
		// re-mints a clean translation.
		m.corruptions.Add(1)
		found++
		removed := m.j.Invalidate(tr.FuncID, tr.PC, false)
		m.invalidated.Add(uint64(removed))
		return found
	}
	epoch := m.j.Epoch()
	tr.Code.ForEachLink(func(instr int, l *mcode.Link) {
		switch {
		case l.Epoch > epoch:
			// Epochs only ever advance under the JIT's lock, so a
			// future epoch cannot be a benign leftover: the write
			// was torn. Unbind the site; the dispatcher re-binds.
			m.tornLinks.Add(1)
			found++
			tr.Code.StoreLink(instr, nil)
		case l.Epoch < epoch:
			// Benign stale leftover the treadmill has not reached
			// yet; clear it so the site re-binds in this epoch.
			m.staleLinks.Add(1)
			tr.Code.StoreLink(instr, nil)
		default:
			target, ok := l.Target.(*jit.Translation)
			if !ok {
				return // inline-cache tables are epoch-checked above
			}
			m.mu.Lock()
			_, published := m.sums[target]
			m.mu.Unlock()
			if !published {
				// A current-epoch link must point at a published
				// translation; anything else is a dangling edge.
				m.dangling.Add(1)
				found++
				tr.Code.StoreLink(instr, nil)
			}
		}
	})
	return found
}

// Stats snapshots the monitor's counters.
func (m *Monitor) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		ChecksumsRecorded: m.checksums.Load(),
		AuditSweeps:       m.sweeps.Load(),
		Audited:           m.audited.Load(),
		Corruptions:       m.corruptions.Load(),
		TornLinks:         m.tornLinks.Load(),
		StaleLinks:        m.staleLinks.Load(),
		DanglingLinks:     m.dangling.Load(),
		Invalidated:       m.invalidated.Load(),
		Sampled:           m.sampled.Load(),
		ShadowRuns:        m.shadowRuns.Load(),
		Divergences:       m.divergences.Load(),
		Replays:           m.replays.Load(),
		Quarantined:       m.quarantined.Load(),
		Transient:         m.transient.Load(),
	}
}

// Reports returns a copy of the accumulated divergence reports.
func (m *Monitor) Reports() []DivergenceReport {
	if m == nil {
		return nil
	}
	m.repMu.Lock()
	defer m.repMu.Unlock()
	return append([]DivergenceReport(nil), m.reports...)
}

// Registered returns the number of translations in the checksum
// registry (tests and reports).
func (m *Monitor) Registered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sums)
}

// Close drains pending comparisons, stops the comparator, and
// detaches the monitor's hooks from the JIT.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.j.SetVerifyHooks(nil, nil)
	close(m.obs)
	m.wg.Wait()
}

// fnv64 helpers (FNV-1a, same construction the profile snapshot
// codec uses).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime
		u >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	h = fnvInt(h, int64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
