package jit

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/hhbc"
	"repro/internal/hhir"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mcode"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
	"repro/internal/vasm"
)

// Debug, when set, dumps every compiled region's IR to stderr.
var Debug = os.Getenv("REPRO_JIT_DEBUG") != ""

// compile runs a region through the optimizer and back end, charging
// the compilation cycles to m. With CompileWorkers <= 1 compiles are
// serialized on compileMu — one compiler thread, matching HHVM's
// original global write lease; with CompileWorkers > 1 the compile
// holds the translated function's lease instead (lease.go), so
// compiles of different functions proceed in parallel.
func (j *JIT) compile(desc *region.Desc, bcfg hhir.BuildConfig, passes hhir.PassConfig,
	lay vasm.LayoutConfig, area mcode.Area, m *machine.Meter) (*mcode.Code, error) {

	if j.leases != nil {
		fnID := desc.Entry().Func.ID
		j.leases.acquire(fnID, false)
		defer j.leases.release(fnID, false)
	} else {
		j.compileMu.Lock()
		defer j.compileMu.Unlock()
	}

	code, err := j.compileBackend(desc, bcfg, passes, lay)
	if err != nil {
		return nil, err
	}
	if err := j.placeCode(code, area, m); err != nil {
		return nil, err
	}
	return code, nil
}

// compileBackend runs the compiler pipeline — HHIR build and
// optimization, lowering, layout, register allocation, optional
// dispatch fusion, assembly — without touching the code cache. It
// holds no locks of its own: callers serialize per function (lease)
// or globally (compileMu), and the parallel optimizer runs several
// backends at once.
func (j *JIT) compileBackend(desc *region.Desc, bcfg hhir.BuildConfig,
	passes hhir.PassConfig, lay vasm.LayoutConfig) (*mcode.Code, error) {

	running := j.compilesRunning.Add(1)
	defer j.compilesRunning.Add(-1)
	for {
		peak := j.peakCompiles.Load()
		if uint64(running) <= peak || j.peakCompiles.CompareAndSwap(peak, uint64(running)) {
			break
		}
	}

	// The injection draw is keyed by the region's entry address, not
	// the global draw counter: parallel compile workers interleave
	// their draws nondeterministically, but the n-th compile attempt of
	// a given (func, PC) fires identically however the attempts are
	// scheduled, so CompileWorkers>1 fails the same translations a
	// serial run fails.
	entry := desc.Entry()
	if j.Cfg.Faults.ShouldAt(faultinject.CompileError,
		uint64(entry.Func.ID)<<32^uint64(uint32(entry.Start))) {
		return nil, faultinject.Errf(faultinject.CompileError)
	}
	hu, err := hhir.Build(j.Unit, j.Env, desc, bcfg)
	if err != nil {
		return nil, err
	}
	hhir.Optimize(hu, passes)
	vu, err := vasm.Lower(hu)
	if err != nil {
		return nil, err
	}
	vasm.Layout(vu, lay)
	vasm.Allocate(vu)
	if j.Cfg.FuseDispatch {
		if n := vasm.Fuse(vu); n > 0 {
			atomic.AddUint64(&j.stats.FusedInstrs, uint64(n))
		}
	}
	code, err := mcode.Assemble(vu)
	if err != nil {
		return nil, err
	}
	if Debug && !bcfg.Profiling {
		fmt.Fprintf(os.Stderr, "=== region for %s ===\n%s\n--- HHIR ---\n%s--- vasm ---\n%s\n",
			desc.Entry().Func.FullName(), desc, hu, vu)
	}
	return code, nil
}

// placeCode allocates cache space for assembled code, rebases it, and
// charges the compile fee to m. The cache allocator is internally
// locked; the parallel optimizer calls this sequentially in function-
// sorted order so placement stays deterministic.
func (j *JIT) placeCode(code *mcode.Code, area mcode.Area, m *machine.Meter) error {
	base, err := j.Cache.Alloc(area, code.Size)
	if err != nil && errors.Is(err, mcode.ErrCacheFull) {
		// Genuine exhaustion (injected alloc failures fall through as
		// plain transient errors): latch, and on the minting paths try
		// to recycle cold code and retry the allocation once. The
		// global optimized publish (AreaHot) never recycles — it keeps
		// its partial-publish semantics, where functions that miss the
		// budget simply stay on their profiling translations.
		j.cacheFull.Store(true)
		atomic.AddUint64(&j.stats.CacheFullEvents, 1)
		if area != mcode.AreaHot && j.recycle(code.Size) {
			base, err = j.Cache.Alloc(area, code.Size)
		}
	}
	if err != nil {
		return err
	}
	code.Place(base)
	if j.Cfg.FuseDispatch {
		machine.PrepareDispatch(code)
	}
	// Compilation itself consumes CPU: the warmup dip in Figure 9 is
	// partly JIT time. Charged per emitted byte.
	m.Charge(code.Size * jitCyclesPerByte)
	return nil
}

// jitCyclesPerByte approximates compilation cost per emitted byte.
const jitCyclesPerByte = 45

func (j *JIT) passConfig(profiling bool) hhir.PassConfig {
	if profiling {
		return hhir.ProfilingPasses
	}
	p := hhir.AllPasses
	p.RCE = j.Cfg.EnableRCE
	return p
}

func (j *JIT) layoutConfig() vasm.LayoutConfig {
	return vasm.LayoutConfig{ProfileGuided: j.Cfg.PGOLayout, SplitCold: true}
}

// translateLive builds a gen-1 style tracelet translation from the
// live frame state.
func (j *JIT) translateLive(fn *hhbc.Func, fr *interp.Frame, m *machine.Meter) *Translation {
	var src region.TypeSource = frameTypeSource{fr}
	if j.Cfg.EnableShapes {
		// Shape facts: profiled monomorphic property reads type their
		// results in the selector, extending tracelets through them.
		src = shapeSource{frameTypeSource{fr}, j}
	}
	blk := region.Select(j.Unit, fn, fr.PC, len(fr.Stack), src,
		region.ModeLive, 0)
	desc := region.NewDesc(blk)
	bcfg := hhir.BuildConfig{
		// Live translations have no call-profile-driven optimizations;
		// inline caching handles dispatch (Section 5.3.3). Shape ICs
		// are likewise self-filling, so live code gets them too, and
		// Counters are threaded so shape-monomorphic sites can take the
		// guarded fixed-slot path once a profile exists.
		EnableInlining:       false,
		EnableMethodDispatch: false,
		EnableShapes:         j.Cfg.EnableShapes,
		Counters:             j.Counters,
	}
	code, err := j.compile(desc, bcfg, j.passConfig(false),
		vasm.LayoutConfig{ProfileGuided: false, SplitCold: true}, mcode.AreaLive, m)
	if err != nil {
		debugCompileErr("live", fn.FullName(), err)
		if !errors.Is(err, mcode.ErrCacheFull) {
			// Cache pressure is global, not this address's fault; only
			// per-address failures quarantine the key.
			j.noteCompileFailure(transKey{fn.ID, fr.PC}, err)
		}
		return nil
	}
	// Live tracelets chain: gen-1's defining trick is smashing their
	// bind jumps together (profiling translations never chain — see
	// translateProfiling).
	code.Chainable = j.Cfg.EnableChaining
	tr := &Translation{
		FuncID: fn.ID, PC: fr.PC, Kind: ModeTracelet,
		Preconds: blk.Preconds, EntryDepth: blk.EntryStackDepth,
		Code: code, ProfID: -1, Desc: desc,
	}
	j.mu.Lock()
	j.installLocked(tr)
	j.mu.Unlock()
	j.noteMintSuccess(transKey{fn.ID, fr.PC})
	atomic.AddUint64(&j.stats.LiveTranslations, 1)
	atomic.AddUint64(&j.stats.BytesLive, code.Size)
	return tr
}

// translateProfiling builds an instrumented single-block translation.
func (j *JIT) translateProfiling(fn *hhbc.Func, fr *interp.Frame, m *machine.Meter) *Translation {
	var src region.TypeSource = frameTypeSource{fr}
	if j.Cfg.EnableShapes {
		// Profiling preconditions seed the optimized regions, so the
		// shape property-access policy (no class pinning at access
		// sites) must apply here or optimized translations inherit
		// per-class entry guards that the shape guard was meant to
		// replace.
		src = shapeSource{frameTypeSource{fr}, j}
	}
	blk := region.Select(j.Unit, fn, fr.PC, len(fr.Stack), src,
		region.ModeProfiling, 0)
	blk.ProfCounter = j.Counters.NewCounter()
	desc := region.NewDesc(blk)
	bcfg := hhir.BuildConfig{Profiling: true, Counter: blk.ProfCounter,
		EnableShapes: j.Cfg.EnableShapes}
	code, err := j.compile(desc, bcfg, j.passConfig(true),
		vasm.LayoutConfig{ProfileGuided: false, SplitCold: true}, mcode.AreaProfile, m)
	if err != nil {
		debugCompileErr("profiling", fn.FullName(), err)
		if !errors.Is(err, mcode.ErrCacheFull) {
			j.noteCompileFailure(transKey{fn.ID, fr.PC}, err)
		}
		return nil
	}
	// Profiling translations are deliberately NOT chainable, in either
	// direction: every entry must pass through the dispatcher so
	// RecordArc sees the transfer and the TransCFG stays accurate, and
	// OptimizeAll retires exactly this kind — keeping them out of links
	// means no chainable target is ever semantically stale.
	tr := &Translation{
		FuncID: fn.ID, PC: fr.PC, Kind: ModeProfiling,
		Preconds: blk.Preconds, EntryDepth: blk.EntryStackDepth,
		Code: code, ProfID: blk.ProfCounter, Desc: desc,
	}
	j.mu.Lock()
	j.installLocked(tr)
	j.byProfID[blk.ProfCounter] = tr
	j.profBlocks[fn.ID] = append(j.profBlocks[fn.ID], blk)
	j.profIDs[fn.ID] = append(j.profIDs[fn.ID], blk.ProfCounter)
	j.mu.Unlock()
	j.noteMintSuccess(transKey{fn.ID, fr.PC})
	atomic.AddUint64(&j.stats.ProfilingTranslations, 1)
	atomic.AddUint64(&j.stats.BytesProfiling, code.Size)
	return tr
}

// installLocked publishes tr into the translation index RCU-style:
// the current index is copied, the copy is extended, and the pointer
// is swapped. Callers hold j.mu; concurrent lock-free readers keep
// iterating the old map untouched.
func (j *JIT) installLocked(tr *Translation) {
	key := transKey{tr.FuncID, tr.PC}
	old := *j.trans.Load()
	idx := make(transIndex, len(old)+1)
	for k, v := range old {
		idx[k] = v
	}
	chain := append([]*Translation(nil), old[key]...)
	idx[key] = append(chain, tr)
	j.trans.Store(&idx)
	if j.onPublish != nil {
		j.onPublish(tr)
	}
}

// OptimizeAll is the global retranslation trigger: it forms regions
// for every profiled function, compiles them with the full pipeline,
// sorts functions with the C3 heuristic, publishes the optimized code
// into the hot area (optionally huge-page mapped), and discards the
// profiling translations (points A..C in Figure 9). Exactly one run
// ever happens (CAS-claimed); with BackgroundCompile it executes on a
// compiler goroutine while workers keep serving from profiling
// translations, and the optimized index becomes visible in one
// atomic swap. Functions whose regions cannot all be compiled (code
// cache full) are NOT unpublished: they keep their profiling
// translations and are counted in Stats.PartialPublishFuncs.
func (j *JIT) OptimizeAll() {
	if j.degrade.Load() >= DegradeNoMint {
		// The ladder says stop reoptimizing: leave the run unclaimed so
		// a later trigger can fire it if pressure recedes.
		return
	}
	if !j.optStarted.CompareAndSwap(false, true) {
		return
	}
	atomic.AddUint64(&j.stats.OptimizeRuns, 1)
	meter := j.Meter
	if j.Cfg.BackgroundCompile {
		meter = j.CompileMeter
	}

	// Snapshot the profiling tables; workers may mint more profiling
	// translations while we compile, and those simply miss this
	// (single) optimization round. The blocks are deep-copied: guard
	// relaxation widens Preconds in place, and the originals' Precond
	// slices are shared with live profiling translations that workers
	// are still guard-matching against.
	j.mu.Lock()
	blocksByFn := make(map[int][]*region.Block, len(j.profBlocks))
	idsByFn := make(map[int][]profile.TransID, len(j.profIDs))
	for fnID, blocks := range j.profBlocks {
		blocksByFn[fnID] = cloneBlocks(blocks)
		idsByFn[fnID] = append([]profile.TransID(nil), j.profIDs[fnID]...)
	}
	j.mu.Unlock()

	type funcRegions struct {
		fnID    int
		regions []*region.Desc
	}
	var all []funcRegions
	for fnID, blocks := range blocksByFn {
		g := region.BuildTransCFG(blocks, idsByFn[fnID], j.Counters)
		regions := region.FormRegions(g, region.DefaultFormConfig)
		rcfg := region.DefaultRelaxConfig
		rcfg.Enabled = j.Cfg.EnableGuardRelax
		for _, d := range regions {
			if Debug {
				fmt.Fprintf(os.Stderr, "=== pre-relax region ===\n%s\n", d)
			}
			region.Relax(d, g, j.Counters, rcfg)
		}
		all = append(all, funcRegions{fnID, regions})
	}

	// Function sorting: order the publish sequence by C3 clustering
	// over the dynamic call graph (Section 5.1.1).
	profFns := make([]int, 0, len(blocksByFn))
	for id := range blocksByFn {
		profFns = append(profFns, id)
	}
	order := j.functionOrder(profFns)
	rank := map[int]int{}
	for i, fnID := range order {
		rank[fnID] = i
	}
	sort.SliceStable(all, func(a, b int) bool {
		ra, oka := rank[all[a].fnID]
		rb, okb := rank[all[b].fnID]
		if oka != okb {
			return oka
		}
		if ra != rb {
			return ra < rb
		}
		return all[a].fnID < all[b].fnID
	})

	// Profiling code is discarded up front: its cache space is reused
	// for the optimized translations (freeing `aprof`), so the code
	// budget constrains optimized + live code only. With a small
	// budget the function-sorted order means the hottest code is
	// compiled first — the property behind Figure 11's shape.
	j.Cache.Free(mcode.AreaProfile, atomic.LoadUint64(&j.stats.BytesProfiling))
	j.Cache.ResetArea(mcode.AreaProfile)

	// Compile. The index is not touched yet: workers keep dispatching
	// to profiling translations throughout this (long) phase.
	bcfg := hhir.BuildConfig{
		EnableInlining:       j.Cfg.EnableInlining,
		EnableMethodDispatch: j.Cfg.EnableMethodDispatch,
		DisableInlineCache:   !j.Cfg.EnableMethodDispatch,
		EnableShapes:         j.Cfg.EnableShapes,
		Counters:             j.Counters,
		RegionOf:             j.regionForInline,
	}
	var newTrans []*Translation
	published := map[int]bool{} // fnID -> all regions compiled
	if j.leases != nil && len(all) > 1 {
		// Parallel publish: fan the backend compiles over
		// CompileWorkers goroutines, each claiming whole functions and
		// holding the function's writer lease while its regions
		// compile (minting workers touching the same function queue
		// behind the optimizer). Placement into the hot area then runs
		// sequentially in the function-sorted order below, so
		// addresses, huge-page coverage, and fetch behavior are
		// identical to the serial path.
		type unit struct {
			code *mcode.Code
			err  error
		}
		results := make([][]unit, len(all))
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := j.Cfg.CompileWorkers
		if workers > len(all) {
			workers = len(all)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(all) {
						return
					}
					fr := all[i]
					j.leases.acquire(fr.fnID, true)
					res := make([]unit, len(fr.regions))
					for ri, desc := range fr.regions {
						code, err := j.compileBackend(desc, bcfg, j.passConfig(false), j.layoutConfig())
						if err != nil {
							// Same single-retry insurance as the serial
							// path: the global publish runs once ever.
							code, err = j.compileBackend(desc, bcfg, j.passConfig(false), j.layoutConfig())
						}
						res[ri] = unit{code, err}
					}
					results[i] = res
					j.leases.release(fr.fnID, true)
				}
			}()
		}
		wg.Wait()
		for i, fr := range all {
			ok := len(fr.regions) > 0
			for ri, desc := range fr.regions {
				code, err := results[i][ri].code, results[i][ri].err
				if err == nil {
					err = j.placeCode(code, mcode.AreaHot, meter)
					if err != nil && !errors.Is(err, mcode.ErrCacheFull) {
						err = j.placeCode(code, mcode.AreaHot, meter)
					}
				}
				if err != nil {
					debugCompileErr("optimize", desc.Entry().Func.FullName(), err)
					ok = false // cache full: this function keeps its profiling code
					continue
				}
				code.Chainable = j.Cfg.EnableChaining
				entry := desc.Entry()
				tr := &Translation{
					FuncID: fr.fnID, PC: entry.Start, Kind: ModeRegion,
					Preconds: entry.Preconds, EntryDepth: entry.EntryStackDepth,
					Code: code, ProfID: -1, Desc: desc,
				}
				newTrans = append(newTrans, tr)
				atomic.AddUint64(&j.stats.OptimizedTranslations, 1)
				atomic.AddUint64(&j.stats.BytesOptimized, code.Size)
			}
			published[fr.fnID] = ok
		}
	} else {
		for _, fr := range all {
			ok := len(fr.regions) > 0
			for _, desc := range fr.regions {
				code, err := j.compile(desc, bcfg, j.passConfig(false),
					j.layoutConfig(), mcode.AreaHot, meter)
				if err != nil && !errors.Is(err, mcode.ErrCacheFull) {
					// Transient failure (an injected compile error, a flaky
					// allocation): the global publish runs once ever, so a
					// single retry is cheap insurance against one bad draw
					// permanently costing this region its optimized code.
					code, err = j.compile(desc, bcfg, j.passConfig(false),
						j.layoutConfig(), mcode.AreaHot, meter)
				}
				if err != nil {
					debugCompileErr("optimize", desc.Entry().Func.FullName(), err)
					ok = false // cache full: this function keeps its profiling code
					continue
				}
				code.Chainable = j.Cfg.EnableChaining
				entry := desc.Entry()
				tr := &Translation{
					FuncID: fr.fnID, PC: entry.Start, Kind: ModeRegion,
					Preconds: entry.Preconds, EntryDepth: entry.EntryStackDepth,
					Code: code, ProfID: -1, Desc: desc,
				}
				newTrans = append(newTrans, tr)
				atomic.AddUint64(&j.stats.OptimizedTranslations, 1)
				atomic.AddUint64(&j.stats.BytesOptimized, code.Size)
			}
			published[fr.fnID] = ok
		}
	}

	// Publish: one atomic swap installs every optimized translation
	// and retires the profiling chains of fully-published functions.
	// Partially-published functions (cache filled mid-publish) keep
	// their profiling translations so they stay JITed.
	var partial uint64
	for _, ok := range published {
		if !ok {
			partial++
		}
	}
	j.mu.Lock()
	old := *j.trans.Load()
	idx := make(transIndex, len(old)+len(newTrans))
	for key, chain := range old {
		var keep []*Translation
		for _, tr := range chain {
			if tr.Kind == ModeProfiling && published[tr.FuncID] {
				if j.onUnpublish != nil {
					j.onUnpublish(tr)
				}
				continue
			}
			keep = append(keep, tr)
		}
		if len(keep) > 0 {
			idx[key] = keep
		}
	}
	for _, tr := range newTrans {
		key := transKey{tr.FuncID, tr.PC}
		if q := j.quarantine[key]; q != nil && q.permanent {
			// The address was demoted to interp-only after repeated
			// faults; publishing an optimized region there would
			// resurrect the faulting code path. Return the extent.
			j.retireCode(tr)
			continue
		}
		idx[key] = append(idx[key], tr)
		if j.onPublish != nil {
			j.onPublish(tr)
		}
	}
	j.trans.Store(&idx)
	// Advance the link epoch: the republish retired the profiling
	// chains, so chain links resolved against the old index must stop
	// being followed. Readers that loaded a link before the bump see a
	// stale epoch and fall back to the dispatch path; targets are never
	// semantically invalid (only unchainable profiling translations
	// were retired) — the epoch guard is belt-and-braces on top of that
	// invariant.
	epoch := j.epoch.Add(1)
	j.entryCount = map[transKey]uint64{}
	j.optimized.Store(true)
	j.mu.Unlock()

	// Treadmill sweep: walk the surviving code and physically clear
	// every stale-epoch link so old *Translation targets become
	// collectable and machines stop paying the stale-check fee.
	swept := 0
	for _, chain := range idx {
		for _, tr := range chain {
			swept += tr.Code.SweepLinks(epoch)
		}
	}
	if swept > 0 {
		j.Chain.LinksSwept.Add(uint64(swept))
	}

	if partial > 0 {
		atomic.AddUint64(&j.stats.PartialPublishFuncs, partial)
		if Debug {
			fmt.Fprintf(os.Stderr,
				"JIT optimize: partial publish — %d function(s) kept on profiling translations (code cache full)\n",
				partial)
		}
	}
	if j.Cfg.HugePages {
		j.Cache.SetHugePages(j.Cache.AreaUsed(mcode.AreaHot))
	}
	j.cacheFull.Store(false)
}

// cloneBlocks deep-copies profiling blocks for region formation. Live
// profiling translations alias the originals' Preconds (guardsMatch
// reads them lock-free on every dispatch), so any pass that rewrites
// guards — relaxation in particular — must work on private copies.
func cloneBlocks(blocks []*region.Block) []*region.Block {
	out := make([]*region.Block, len(blocks))
	for i, blk := range blocks {
		cp := *blk
		cp.Preconds = append([]region.Guard(nil), blk.Preconds...)
		cp.EntryStackTypes = append([]types.Type(nil), blk.EntryStackTypes...)
		cp.Succs = append([]int(nil), blk.Succs...)
		if blk.PostLocals != nil {
			cp.PostLocals = make(map[int]types.Type, len(blk.PostLocals))
			for k, v := range blk.PostLocals {
				cp.PostLocals[k] = v
			}
		}
		out[i] = &cp
	}
	return out
}

// regionForInline supplies callee regions to the partial inliner: the
// callee's own profiled region when available, otherwise a region
// synthesized from the argument types.
func (j *JIT) regionForInline(f *hhbc.Func, argTypes []types.Type) *region.Desc {
	j.mu.Lock()
	blocks := cloneBlocks(j.profBlocks[f.ID])
	ids := append([]profile.TransID(nil), j.profIDs[f.ID]...)
	j.mu.Unlock()
	if len(blocks) > 0 {
		g := region.BuildTransCFG(blocks, ids, j.Counters)
		regions := region.FormRegions(g, region.FormRegionsConfig{MaxBCInstrs: 200})
		for _, d := range regions {
			if d.Entry().Start == 0 {
				return d
			}
		}
	}
	// Synthesize from argument types (static region).
	var src region.TypeSource = argTypeSource{argTypes: argTypes, fn: f}
	if j.Cfg.EnableShapes {
		src = shapeSource{src, j}
	}
	blk := region.Select(j.Unit, f, 0, 0, src, region.ModeLive, 0)
	return region.NewDesc(blk)
}

// argTypeSource feeds known argument types to the region selector.
type argTypeSource struct {
	argTypes []types.Type
	fn       *hhbc.Func
}

func (s argTypeSource) LocalType(slot int) types.Type {
	if slot < len(s.argTypes) {
		return s.argTypes[slot]
	}
	if slot < len(s.fn.Params) {
		p := s.fn.Params[slot]
		if p.HasDefault {
			return types.FromKind(p.DefaultKind)
		}
		return types.TNull
	}
	return types.TUninit
}

func (s argTypeSource) StackType(int) types.Type { return types.TCell }

// functionOrder implements the C3 clustering heuristic of Ottoni &
// Maher over the dynamic call graph: clusters merge along the
// heaviest caller->callee arcs (callee appended after caller) until a
// size cap, then clusters are emitted by descending hotness. profFns
// seeds singleton clusters for profiled functions with no arcs.
func (j *JIT) functionOrder(profFns []int) []int {
	graph := j.Counters.CallGraph()
	hotness := map[int]uint64{}
	type arc struct {
		caller, callee int
		w              uint64
	}
	var arcs []arc
	for a, w := range graph {
		arcs = append(arcs, arc{a.Caller, a.Callee, w})
		hotness[a.Callee] += w
		hotness[a.Caller] += 0
	}
	if !j.Cfg.FunctionSort {
		// Unsorted: stable function-ID order.
		ids := append([]int(nil), profFns...)
		sort.Ints(ids)
		return ids
	}
	sort.Slice(arcs, func(a, b int) bool {
		if arcs[a].w != arcs[b].w {
			return arcs[a].w > arcs[b].w
		}
		if arcs[a].caller != arcs[b].caller {
			return arcs[a].caller < arcs[b].caller
		}
		return arcs[a].callee < arcs[b].callee
	})

	const maxClusterFuncs = 16
	clusterOf := map[int]int{}
	clusters := map[int][]int{}
	ensure := func(f int) int {
		if c, ok := clusterOf[f]; ok {
			return c
		}
		clusterOf[f] = f
		clusters[f] = []int{f}
		return f
	}
	for _, a := range arcs {
		cc := ensure(a.caller)
		ce := ensure(a.callee)
		if cc == ce {
			continue
		}
		if len(clusters[cc])+len(clusters[ce]) > maxClusterFuncs {
			continue
		}
		clusters[cc] = append(clusters[cc], clusters[ce]...)
		for _, f := range clusters[ce] {
			clusterOf[f] = cc
		}
		delete(clusters, ce)
	}
	for _, id := range profFns {
		ensure(id)
	}
	// Order clusters by their hottest member.
	type cl struct {
		id   int
		heat uint64
	}
	var cls []cl
	for id, members := range clusters {
		var h uint64
		for _, f := range members {
			if hotness[f] > h {
				h = hotness[f]
			}
		}
		cls = append(cls, cl{id, h})
	}
	sort.Slice(cls, func(a, b int) bool {
		if cls[a].heat != cls[b].heat {
			return cls[a].heat > cls[b].heat
		}
		return cls[a].id < cls[b].id
	})
	var out []int
	for _, c := range cls {
		out = append(out, clusters[c.id]...)
	}
	return out
}

// debugCompileErr reports compile failures when REPRO_JIT_DEBUG is on.
func debugCompileErr(where string, fn string, err error) {
	if Debug && err != nil {
		fmt.Fprintf(os.Stderr, "JIT compile failure (%s, %s): %v\n", where, fn, err)
	}
}
