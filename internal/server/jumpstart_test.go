package server_test

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// TestJumpstartBeatsColdStart is the acceptance criterion for the
// jumpstart subsystem: under the same seed and configuration, a server
// warm-started from a profile snapshot must reach 90% of steady-state
// RPS in strictly fewer simulated minutes than a cold start.
func TestJumpstartBeatsColdStart(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 20
	cfg.CyclesPerMinute = 1_200_000

	cold, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := server.WarmSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Jumpstart = snap
	warm, err := server.Simulate(warmCfg)
	if err != nil {
		t.Fatal(err)
	}

	if cold.MinutesTo90 < 0 {
		t.Fatalf("cold start never reached 90%% steady RPS in %d minutes", cfg.Minutes)
	}
	if warm.MinutesTo90 < 0 {
		t.Fatalf("jumpstarted start never reached 90%% steady RPS in %d minutes", cfg.Minutes)
	}
	if warm.MinutesTo90 >= cold.MinutesTo90 {
		t.Errorf("jumpstart must reach 90%% steady RPS strictly sooner: warm=minute %.0f, cold=minute %.0f",
			warm.MinutesTo90, cold.MinutesTo90)
	}

	jl := warm.JumpstartLoad
	if jl.LoadedTrans == 0 || jl.LoadedFuncs == 0 {
		t.Errorf("jumpstart loaded nothing: %+v", jl)
	}
	if !jl.Optimized {
		t.Error("jumpstart did not fire the global retranslation trigger")
	}
	if len(jl.StaleFuncs) != 0 || len(jl.UnknownFuncs) != 0 {
		t.Errorf("identical source must produce no stale/unknown functions: stale=%v unknown=%v",
			jl.StaleFuncs, jl.UnknownFuncs)
	}

	// The warm timeline must carry the J event instead of A/C.
	sawJ := false
	for _, s := range warm.Samples {
		if strings.Contains(s.Event, "J") {
			sawJ = true
		}
		if strings.Contains(s.Event, "C") {
			t.Error("jumpstarted run should not hit the live-profiling optimize event")
		}
	}
	if !sawJ {
		t.Error("no J event in the jumpstarted timeline")
	}
}
