package perflab_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/jit"
	"repro/internal/perflab"
	"repro/internal/workload"
)

func TestMeasureProducesWeightedMean(t *testing.T) {
	cfg := jit.DefaultConfig()
	r, err := perflab.Measure(cfg, perflab.Config{WarmupRequests: 20, MeasureRequests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Endpoints) != len(workload.Suite()) {
		t.Fatalf("endpoints = %d", len(r.Endpoints))
	}
	if r.WeightedMean <= 0 {
		t.Fatal("weighted mean not computed")
	}
	// The mean must lie within the endpoint range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ep := range r.Endpoints {
		lo = math.Min(lo, ep.MeanCycles)
		hi = math.Max(hi, ep.MeanCycles)
		if ep.Output == "" {
			t.Errorf("%s produced no output", ep.Name)
		}
		if len(ep.Samples) != 4 {
			t.Errorf("%s: %d samples", ep.Name, len(ep.Samples))
		}
	}
	if r.WeightedMean < lo || r.WeightedMean > hi {
		t.Errorf("weighted mean %v outside [%v, %v]", r.WeightedMean, lo, hi)
	}
	if r.CodeBytes == 0 {
		t.Error("no JITed code measured")
	}
}

func TestCompareConfigs(t *testing.T) {
	a := jit.DefaultConfig()
	b := jit.DefaultConfig()
	b.Mode = jit.ModeInterp
	c, err := perflab.CompareConfigs(a, b, perflab.Config{WarmupRequests: 12, MeasureRequests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.SlowdownPct < 100 {
		t.Errorf("interpreter only %.1f%% slower than region JIT", c.SlowdownPct)
	}
}

func TestReportRenders(t *testing.T) {
	cfg := jit.DefaultConfig()
	r, err := perflab.Measure(cfg, perflab.Config{WarmupRequests: 10, MeasureRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	perflab.Report(&sb, r)
	if !strings.Contains(sb.String(), "WEIGHTED MEAN") {
		t.Error("report missing summary row")
	}
}
