package jit

// Warm-start ("jumpstart") support: SnapshotProfile captures what the
// profiling phase learned, keyed by stable function identity;
// Jumpstart replays a snapshot into a fresh JIT — re-minting
// profiling blocks from the recorded guard sets, remapping the saved
// TransIDs onto freshly allocated counters, and firing the global
// retranslation trigger immediately, so a restarted server publishes
// optimized code without serving a single profiling request. The live
// profiling phase of Figure 9 (minutes of depressed RPS) collapses to
// the optimized-compile time alone.

import (
	"sort"

	"repro/internal/faultinject"
	"repro/internal/hhbc"
	"repro/internal/jumpstart"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/types"
)

// SnapshotProfile captures the current profile state as an
// identity-keyed snapshot. It works both mid-profiling and after the
// global trigger fired (profiling blocks and counters are retained
// across OptimizeAll), so a warmed steady-state server can be dumped
// at any time.
func (j *JIT) SnapshotProfile() *jumpstart.Snapshot {
	data := j.Counters.Snapshot()
	snap := &jumpstart.Snapshot{}

	funcIdx := map[int]int{} // unit func ID -> snapshot func index
	ensureFunc := func(fnID int) int {
		if i, ok := funcIdx[fnID]; ok {
			return i
		}
		fn := j.Unit.Funcs[fnID]
		funcIdx[fnID] = len(snap.Funcs)
		snap.Funcs = append(snap.Funcs, jumpstart.FuncProfile{
			Name: fn.FullName(),
			Hash: fn.BytecodeHash(j.Unit),
		})
		return funcIdx[fnID]
	}

	// Translations, in deterministic function order. transLoc maps a
	// live TransID to its (snapshot func, local trans) coordinates.
	// The profiling tables are mutated by concurrent workers minting
	// translations, so they are copied under the writer mutex first.
	j.mu.Lock()
	profBlocks := make(map[int][]*region.Block, len(j.profBlocks))
	profIDs := make(map[int][]profile.TransID, len(j.profIDs))
	for id, blocks := range j.profBlocks {
		profBlocks[id] = append([]*region.Block(nil), blocks...)
		profIDs[id] = append([]profile.TransID(nil), j.profIDs[id]...)
	}
	j.mu.Unlock()
	var fnIDs []int
	for id := range profIDs {
		fnIDs = append(fnIDs, id)
	}
	sort.Ints(fnIDs)
	type loc struct{ fn, tr int }
	transLoc := map[profile.TransID]loc{}
	for _, fnID := range fnIDs {
		fi := ensureFunc(fnID)
		for k, blk := range profBlocks[fnID] {
			pid := profIDs[fnID][k]
			rec := jumpstart.TransProfile{
				PC:         blk.Start,
				EntryDepth: blk.EntryStackDepth,
			}
			if int(pid) < len(data.Counts) {
				rec.Count = data.Counts[pid]
			}
			for _, t := range blk.EntryStackTypes {
				rec.EntryStackTypes = append(rec.EntryStackTypes, jumpstart.ReprOf(t))
			}
			for _, g := range blk.Preconds {
				rec.Guards = append(rec.Guards, jumpstart.GuardRepr{
					Stack: g.Loc.Kind == region.LocStack,
					Slot:  g.Loc.Slot,
					Type:  jumpstart.ReprOf(g.Type),
				})
			}
			transLoc[pid] = loc{fi, len(snap.Funcs[fi].Trans)}
			snap.Funcs[fi].Trans = append(snap.Funcs[fi].Trans, rec)
		}
	}

	// Arcs connect translations reached within one activation, which
	// is always within one function; cross-function arcs (none are
	// recorded today) would not be representable and are dropped.
	for a, w := range data.Arcs {
		from, okf := transLoc[a.From]
		to, okt := transLoc[a.To]
		if okf && okt && from.fn == to.fn {
			fp := &snap.Funcs[from.fn]
			fp.Arcs = append(fp.Arcs, jumpstart.ArcWeight{From: from.tr, To: to.tr, Weight: w})
		}
	}

	for site, m := range data.CallTargets {
		if site.FuncID < 0 || site.FuncID >= len(j.Unit.Funcs) {
			continue
		}
		fi := ensureFunc(site.FuncID)
		for cls, n := range m {
			snap.Funcs[fi].CallTargets = append(snap.Funcs[fi].CallTargets,
				jumpstart.CallTarget{PC: site.PC, Class: cls, Count: n})
		}
	}

	for e, w := range data.FuncCalls {
		if e.Caller < 0 || e.Caller >= len(j.Unit.Funcs) ||
			e.Callee < 0 || e.Callee >= len(j.Unit.Funcs) {
			continue
		}
		snap.CallGraph = append(snap.CallGraph, jumpstart.CallEdge{
			Caller: ensureFunc(e.Caller), Callee: ensureFunc(e.Callee), Weight: w,
		})
	}

	// Map iteration above is unordered; canonicalize so equal profiles
	// serialize identically.
	return jumpstart.Canonicalize(snap)
}

// JumpstartResult reports what a snapshot load accepted and rejected.
type JumpstartResult struct {
	// LoadedFuncs / LoadedTrans count accepted functions and re-minted
	// profiling translations.
	LoadedFuncs int
	LoadedTrans int
	// StaleFuncs were rejected because their current bytecode hash
	// differs from the snapshot's (changed source); they fall back to
	// normal live profiling.
	StaleFuncs []string
	// UnknownFuncs exist in the snapshot but not in the loaded unit.
	UnknownFuncs []string
	// Optimized reports whether the load fired global retranslation.
	Optimized bool
	// Corrupt reports that the snapshot failed integrity validation
	// (or an injected in-flight corruption) and was discarded whole:
	// the engine cold-starts with no partial profile state.
	Corrupt bool
}

// snapTypeSource replays a snapshot translation's recorded entry
// types into the region selector, standing in for the live frame the
// original profiling translation was minted from.
type snapTypeSource struct {
	locals map[int]types.Type
	stack  []types.Type
}

func (s snapTypeSource) LocalType(slot int) types.Type {
	if t, ok := s.locals[slot]; ok {
		return t
	}
	return types.TCell
}

func (s snapTypeSource) StackType(d int) types.Type {
	if d < len(s.stack) {
		return s.stack[d]
	}
	return types.TCell
}

// Jumpstart loads a profile snapshot into a fresh JIT. For every
// function whose bytecode hash matches, it re-runs profiling block
// selection from the recorded entry types (no machine code is
// compiled — the blocks exist only to rebuild the TransCFG), remaps
// the snapshot's counts, arcs, call-target histograms, and call-graph
// edges onto the newly minted TransIDs, and — in region mode, if
// anything loaded — fires OptimizeAll immediately. Stale or unknown
// functions are skipped; they profile normally, exactly as if the
// snapshot had never mentioned them.
func (j *JIT) Jumpstart(snap *jumpstart.Snapshot) JumpstartResult {
	res := JumpstartResult{}
	if snap == nil {
		return res
	}
	if j.Cfg.Faults.Should(faultinject.SnapshotCorrupt) {
		// Model corruption in flight (torn write, bad disk): round-trip
		// the snapshot through the wire codec with a flipped byte. The
		// CRC-validated decode must reject it, and the load degrades to
		// a clean cold start — no partial profile state is applied.
		data := jumpstart.Encode(snap)
		j.Cfg.Faults.CorruptBytes(data)
		damaged, err := jumpstart.Decode(data)
		if err != nil {
			res.Corrupt = true
			return res
		}
		// The flip landed somewhere the codec provably tolerates;
		// proceed with the decoded copy.
		snap = damaged
	}

	accepted := make([]*hhbc.Func, len(snap.Funcs))
	for i := range snap.Funcs {
		fp := &snap.Funcs[i]
		fn, ok := j.Unit.FuncByName(fp.Name)
		if !ok {
			res.UnknownFuncs = append(res.UnknownFuncs, fp.Name)
			continue
		}
		if fn.BytecodeHash(j.Unit) != fp.Hash {
			res.StaleFuncs = append(res.StaleFuncs, fp.Name)
			continue
		}
		accepted[i] = fn
		res.LoadedFuncs++
	}

	for i := range snap.Funcs {
		fn := accepted[i]
		if fn == nil {
			continue
		}
		fp := &snap.Funcs[i]
		ids := make([]profile.TransID, len(fp.Trans))
		for k := range ids {
			ids[k] = -1
		}
		for k := range fp.Trans {
			rec := &fp.Trans[k]
			// The hash matched, so recorded PCs are valid; guard anyway
			// against hand-edited snapshots.
			if rec.PC < 0 || rec.PC >= len(fn.Instrs) || rec.EntryDepth < 0 {
				continue
			}
			src := snapTypeSource{locals: map[int]types.Type{}}
			for _, g := range rec.Guards {
				if !g.Stack {
					src.locals[g.Slot] = g.Type.Type()
				}
			}
			for _, t := range rec.EntryStackTypes {
				src.stack = append(src.stack, t.Type())
			}
			blk := region.Select(j.Unit, fn, rec.PC, rec.EntryDepth, src,
				region.ModeProfiling, 0)
			blk.ProfCounter = j.Counters.NewCounter()
			j.Counters.Add(blk.ProfCounter, rec.Count)
			j.mu.Lock()
			j.profBlocks[fn.ID] = append(j.profBlocks[fn.ID], blk)
			j.profIDs[fn.ID] = append(j.profIDs[fn.ID], blk.ProfCounter)
			j.mu.Unlock()
			ids[k] = blk.ProfCounter
			res.LoadedTrans++
		}
		for _, a := range fp.Arcs {
			if a.From >= 0 && a.From < len(ids) && a.To >= 0 && a.To < len(ids) &&
				ids[a.From] >= 0 && ids[a.To] >= 0 {
				j.Counters.AddArc(ids[a.From], ids[a.To], a.Weight)
			}
		}
		for _, ct := range fp.CallTargets {
			if ct.PC >= 0 && ct.PC < len(fn.Instrs) {
				j.Counters.AddCallTarget(profile.CallSite{FuncID: fn.ID, PC: ct.PC},
					ct.Class, ct.Count)
			}
		}
	}

	for _, e := range snap.CallGraph {
		if e.Caller < 0 || e.Caller >= len(accepted) || e.Callee < 0 || e.Callee >= len(accepted) {
			continue
		}
		caller, callee := accepted[e.Caller], accepted[e.Callee]
		if caller != nil && callee != nil {
			j.Counters.AddCall(caller.ID, callee.ID, e.Weight)
		}
	}

	if j.Cfg.Mode == ModeRegion && !j.optimized.Load() && res.LoadedTrans > 0 {
		j.OptimizeAll()
		res.Optimized = j.optimized.Load()
	}
	return res
}
