// Package hphpc implements the AST-level ahead-of-time optimizations
// inherited from the HipHop compiler: constant folding and
// propagation of literal expressions, algebraic simplification, and
// dead-branch elimination on constant conditions (Section 2.3).
package hphpc

import (
	"math"

	"repro/internal/ast"
)

// Optimize rewrites prog in place.
func Optimize(prog *ast.Program) {
	for _, f := range prog.Funcs {
		f.Body = optStmts(f.Body)
	}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			m.Body = optStmts(m.Body)
		}
	}
	prog.Main = optStmts(prog.Main)
}

func optStmts(list []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range list {
		out = append(out, optStmt(s)...)
	}
	return out
}

// optStmt returns the replacement statements (possibly eliminating or
// flattening s).
func optStmt(s ast.Stmt) []ast.Stmt {
	switch st := s.(type) {
	case *ast.ExprStmt:
		st.E = Fold(st.E)
		return []ast.Stmt{st}
	case *ast.Echo:
		for i := range st.Args {
			st.Args[i] = Fold(st.Args[i])
		}
		return []ast.Stmt{st}
	case *ast.Return:
		if st.E != nil {
			st.E = Fold(st.E)
		}
		return []ast.Stmt{st}
	case *ast.If:
		st.Cond = Fold(st.Cond)
		st.Then = optStmts(st.Then)
		st.Else = optStmts(st.Else)
		// Dead-branch elimination on constant conditions.
		if b, ok := constBool(st.Cond); ok {
			if b {
				return st.Then
			}
			return st.Else
		}
		return []ast.Stmt{st}
	case *ast.While:
		st.Cond = Fold(st.Cond)
		if b, ok := constBool(st.Cond); ok && !b {
			return nil
		}
		st.Body = optStmts(st.Body)
		return []ast.Stmt{st}
	case *ast.For:
		for i := range st.Init {
			st.Init[i] = Fold(st.Init[i])
		}
		if st.Cond != nil {
			st.Cond = Fold(st.Cond)
		}
		for i := range st.Step {
			st.Step[i] = Fold(st.Step[i])
		}
		st.Body = optStmts(st.Body)
		return []ast.Stmt{st}
	case *ast.Foreach:
		st.Arr = Fold(st.Arr)
		st.Body = optStmts(st.Body)
		return []ast.Stmt{st}
	case *ast.Throw:
		st.E = Fold(st.E)
		return []ast.Stmt{st}
	case *ast.Try:
		st.Body = optStmts(st.Body)
		for i := range st.Catches {
			st.Catches[i].Body = optStmts(st.Catches[i].Body)
		}
		return []ast.Stmt{st}
	case *ast.Switch:
		st.Subject = Fold(st.Subject)
		for i := range st.Cases {
			st.Cases[i].Value = Fold(st.Cases[i].Value)
			st.Cases[i].Body = optStmts(st.Cases[i].Body)
		}
		st.Default = optStmts(st.Default)
		return []ast.Stmt{st}
	default:
		return []ast.Stmt{s}
	}
}

func constBool(e ast.Expr) (bool, bool) {
	switch v := e.(type) {
	case *ast.BoolLit:
		return v.Value, true
	case *ast.IntLit:
		return v.Value != 0, true
	case *ast.FloatLit:
		return v.Value != 0, true
	case *ast.StringLit:
		return v.Value != "" && v.Value != "0", true
	case *ast.NullLit:
		return false, true
	}
	return false, false
}

// Fold recursively constant-folds an expression.
func Fold(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.Binop:
		v.L = Fold(v.L)
		v.R = Fold(v.R)
		return foldBinop(v)
	case *ast.Unop:
		v.E = Fold(v.E)
		return foldUnop(v)
	case *ast.Ternary:
		v.Cond = Fold(v.Cond)
		if v.Then != nil {
			v.Then = Fold(v.Then)
		}
		v.Else = Fold(v.Else)
		if b, ok := constBool(v.Cond); ok {
			if b {
				if v.Then != nil {
					return v.Then
				}
				return v.Cond
			}
			return v.Else
		}
		return v
	case *ast.Assign:
		v.Value = Fold(v.Value)
		return v
	case *ast.Index:
		v.Arr = Fold(v.Arr)
		if v.Key != nil {
			v.Key = Fold(v.Key)
		}
		return v
	case *ast.Call:
		for i := range v.Args {
			v.Args[i] = Fold(v.Args[i])
		}
		return v
	case *ast.MethodCall:
		v.Recv = Fold(v.Recv)
		for i := range v.Args {
			v.Args[i] = Fold(v.Args[i])
		}
		return v
	case *ast.StaticCall:
		for i := range v.Args {
			v.Args[i] = Fold(v.Args[i])
		}
		return v
	case *ast.New:
		for i := range v.Args {
			v.Args[i] = Fold(v.Args[i])
		}
		return v
	case *ast.ArrayLit:
		for i := range v.Vals {
			if v.Keys[i] != nil {
				v.Keys[i] = Fold(v.Keys[i])
			}
			v.Vals[i] = Fold(v.Vals[i])
		}
		return v
	case *ast.Cast:
		v.E = Fold(v.E)
		return foldCast(v)
	case *ast.Interp:
		allLit := true
		out := ""
		for i := range v.Parts {
			v.Parts[i] = Fold(v.Parts[i])
			if s, ok := v.Parts[i].(*ast.StringLit); ok {
				out += s.Value
			} else {
				allLit = false
			}
		}
		if allLit {
			return &ast.StringLit{Value: out}
		}
		return v
	default:
		return e
	}
}

func numOf(e ast.Expr) (isInt bool, i int64, d float64, ok bool) {
	switch v := e.(type) {
	case *ast.IntLit:
		return true, v.Value, float64(v.Value), true
	case *ast.FloatLit:
		return false, int64(v.Value), v.Value, true
	case *ast.BoolLit:
		n := int64(0)
		if v.Value {
			n = 1
		}
		return true, n, float64(n), true
	}
	return false, 0, 0, false
}

func foldBinop(v *ast.Binop) ast.Expr {
	// String concatenation of literals.
	if v.Op == "." {
		if l, ok := v.L.(*ast.StringLit); ok {
			if r, ok := v.R.(*ast.StringLit); ok {
				return &ast.StringLit{Value: l.Value + r.Value}
			}
		}
		return v
	}
	li, ln, ld, lok := numOf(v.L)
	ri, rn, rd, rok := numOf(v.R)
	if !lok || !rok {
		return foldAlgebraic(v)
	}
	bothInt := li && ri
	switch v.Op {
	case "+":
		if bothInt {
			return &ast.IntLit{Value: ln + rn}
		}
		return &ast.FloatLit{Value: ld + rd}
	case "-":
		if bothInt {
			return &ast.IntLit{Value: ln - rn}
		}
		return &ast.FloatLit{Value: ld - rd}
	case "*":
		if bothInt {
			return &ast.IntLit{Value: ln * rn}
		}
		return &ast.FloatLit{Value: ld * rd}
	case "/":
		if rd == 0 {
			return v // preserve the runtime error
		}
		if bothInt && ln%rn == 0 {
			return &ast.IntLit{Value: ln / rn}
		}
		return &ast.FloatLit{Value: ld / rd}
	case "%":
		if rn == 0 {
			return v
		}
		return &ast.IntLit{Value: ln % rn}
	case "<":
		return &ast.BoolLit{Value: ld < rd}
	case "<=":
		return &ast.BoolLit{Value: ld <= rd}
	case ">":
		return &ast.BoolLit{Value: ld > rd}
	case ">=":
		return &ast.BoolLit{Value: ld >= rd}
	case "==":
		return &ast.BoolLit{Value: ld == rd}
	case "!=":
		return &ast.BoolLit{Value: ld != rd}
	case "===":
		if li != ri {
			return &ast.BoolLit{Value: false}
		}
		if li {
			return &ast.BoolLit{Value: ln == rn}
		}
		return &ast.BoolLit{Value: ld == rd}
	}
	return v
}

// foldAlgebraic applies identities with one constant operand.
func foldAlgebraic(v *ast.Binop) ast.Expr {
	if ri, ok := v.R.(*ast.IntLit); ok {
		switch {
		case (v.Op == "+" || v.Op == "-") && ri.Value == 0:
			return v.L
		case v.Op == "*" && ri.Value == 1:
			return v.L
		}
	}
	if li, ok := v.L.(*ast.IntLit); ok {
		switch {
		case v.Op == "+" && li.Value == 0:
			return v.R
		case v.Op == "*" && li.Value == 1:
			return v.R
		}
	}
	return v
}

func foldUnop(v *ast.Unop) ast.Expr {
	switch v.Op {
	case "-":
		if i, ok := v.E.(*ast.IntLit); ok {
			return &ast.IntLit{Value: -i.Value}
		}
		if f, ok := v.E.(*ast.FloatLit); ok {
			return &ast.FloatLit{Value: -f.Value}
		}
	case "!":
		if b, ok := constBool(v.E); ok {
			return &ast.BoolLit{Value: !b}
		}
	}
	return v
}

func foldCast(v *ast.Cast) ast.Expr {
	isInt, i, d, ok := numOf(v.E)
	if !ok {
		return v
	}
	switch v.To {
	case "int":
		if isInt {
			return &ast.IntLit{Value: i}
		}
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return &ast.IntLit{Value: 0}
		}
		return &ast.IntLit{Value: int64(d)}
	case "float":
		return &ast.FloatLit{Value: d}
	case "bool":
		b, _ := constBool(v.E)
		return &ast.BoolLit{Value: b}
	}
	return v
}
