package workload

import (
	"math"
	"testing"
)

func testTraffic() *Traffic {
	eps := []Endpoint{
		{Name: "light", Weight: 5},
		{Name: "heavy", Weight: 60},
		{Name: "mid", Weight: 35},
	}
	return NewTraffic(eps, 100_000, 1.4, 1.2)
}

// TestTrafficDeterministicStreams: equal seeds replay the identical
// arrival sequence; different seeds diverge.
func TestTrafficDeterministicStreams(t *testing.T) {
	tr := testTraffic()
	a, b := tr.NewStream(42), tr.NewStream(42)
	diff := tr.NewStream(43)
	sawDiff := false
	for i := 0; i < 500; i++ {
		ua, ea := a.Next()
		ub, eb := b.Next()
		if ua != ub || ea.Name != eb.Name {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
		ud, ed := diff.Next()
		if ud != ua || ed.Name != ea.Name {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestTrafficZipfShape: user IDs stay inside the population, and the
// Zipf skew makes the most popular endpoint dominate the least
// popular one.
func TestTrafficZipfShape(t *testing.T) {
	tr := testTraffic()
	s := tr.NewStream(7)
	counts := map[string]int{}
	users := map[uint64]struct{}{}
	const n = 5000
	for i := 0; i < n; i++ {
		u, ep := s.Next()
		if u >= uint64(tr.Users) {
			t.Fatalf("user id %d outside population %d", u, tr.Users)
		}
		users[u] = struct{}{}
		counts[ep.Name]++
	}
	if counts["heavy"] <= counts["light"] {
		t.Fatalf("Zipf skew missing: heavy=%d light=%d", counts["heavy"], counts["light"])
	}
	if counts["heavy"] < counts["mid"] {
		t.Fatalf("endpoint rank not by weight: heavy=%d mid=%d", counts["heavy"], counts["mid"])
	}
	// Zipfian activity: far fewer distinct users than requests (a
	// heavy head), but more than a handful.
	if len(users) >= n/2 || len(users) < 100 {
		t.Fatalf("user activity skew off: %d distinct users over %d requests", len(users), n)
	}
}

// TestDiurnal: flat when amp or period is zero, peaks a quarter into
// the period, symmetric trough, never negative for amp <= 1.
func TestDiurnal(t *testing.T) {
	if m := Diurnal(5, 0, 0.3); m != 1 {
		t.Fatalf("period 0: %v, want 1", m)
	}
	if m := Diurnal(5, 24, 0); m != 1 {
		t.Fatalf("amp 0: %v, want 1", m)
	}
	if peak := Diurnal(6, 24, 0.2); math.Abs(peak-1.2) > 1e-9 {
		t.Fatalf("peak = %v, want 1.2", peak)
	}
	if trough := Diurnal(18, 24, 0.2); math.Abs(trough-0.8) > 1e-9 {
		t.Fatalf("trough = %v, want 0.8", trough)
	}
}
