package shapes

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/types"
)

func TestLayoutInterningAcrossClasses(t *testing.T) {
	tr := NewTree()
	// Two "classes" with identical flattened layouts must share one
	// root node — that is the whole point of layout interning.
	layout := []Slot{{Name: "x", Kind: types.KInt}, {Name: "y", Kind: types.KInt}}
	a := tr.Root(layout)
	b := tr.Root(layout)
	if a != b {
		t.Fatalf("identical layouts interned to distinct shapes %d and %d", a.ID, b.ID)
	}
	// A different slot ORDER is a different layout.
	c := tr.Root([]Slot{{Name: "y", Kind: types.KInt}, {Name: "x", Kind: types.KInt}})
	if c == a {
		t.Fatalf("permuted layout shared shape %d", a.ID)
	}
	// A different slot kind is a different layout too.
	d := tr.Root([]Slot{{Name: "x", Kind: types.KDbl}, {Name: "y", Kind: types.KInt}})
	if d == a || d == c {
		t.Fatalf("retyped layout interned to an existing shape")
	}
}

func TestTransitionAppendAndLookup(t *testing.T) {
	tr := NewTree()
	root := tr.Root([]Slot{{Name: "id", Kind: types.KInt}})
	s := root.Transition("count", types.KInt)
	if s == root {
		t.Fatalf("append transition returned the source shape")
	}
	if s.NumSlots() != 2 {
		t.Fatalf("appended shape has %d slots, want 2", s.NumSlots())
	}
	i, ok := s.Lookup("count")
	if !ok || i != 1 {
		t.Fatalf("Lookup(count) = %d,%v, want 1,true", i, ok)
	}
	if s.SlotKind(1) != types.KInt {
		t.Fatalf("appended slot kind = %v, want int", s.SlotKind(1))
	}
	// Same-name same-kind write is shape-stable.
	if s.Transition("count", types.KInt) != s {
		t.Fatalf("same-kind write changed the shape")
	}
	// Two objects taking the same transition path share the node.
	if root.Transition("count", types.KInt) != s {
		t.Fatalf("repeated transition minted a fresh shape")
	}
}

func TestRetypePingPongIsCanonical(t *testing.T) {
	tr := NewTree()
	root := tr.Root([]Slot{{Name: "size", Kind: types.KInt}})
	dbl := root.Transition("size", types.KDbl)
	if dbl == root {
		t.Fatalf("retype returned the source shape")
	}
	if dbl.NumSlots() != 1 {
		t.Fatalf("retype changed the layout width")
	}
	// Alternating int/double must bounce between exactly two interned
	// nodes, not grow the tree.
	cur, n0 := root, tr.Count()
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			cur = cur.Transition("size", types.KDbl)
			if cur != dbl {
				t.Fatalf("iteration %d: retype to double left canonical node", i)
			}
		} else {
			cur = cur.Transition("size", types.KInt)
			if cur != root {
				t.Fatalf("iteration %d: retype to int left canonical node", i)
			}
		}
	}
	if tr.Count() != n0 {
		t.Fatalf("ping-pong grew the tree from %d to %d shapes", n0, tr.Count())
	}
}

func TestDumpDeterminism(t *testing.T) {
	// Two trees driven through the same transition sequence must be
	// bit-identical in IDs and layouts: shape IDs are allocation-order
	// deterministic, which the profile-to-compiler handoff relies on.
	build := func() *Tree {
		tr := NewTree()
		p := tr.Root([]Slot{{Name: "x", Kind: types.KInt}, {Name: "y", Kind: types.KInt}})
		b := tr.Root([]Slot{{Name: "id", Kind: types.KInt}})
		s := b.Transition("count", types.KInt)
		s = s.Transition("note", types.KStr)
		s.Transition("size", types.KInt).Transition("size", types.KDbl)
		p.Transition("tag", types.KStr)
		return tr
	}
	d1, d2 := build().Dump(), build().Dump()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("identically-driven trees dumped differently:\n%v\n%v", d1, d2)
	}
}

func TestByID(t *testing.T) {
	tr := NewTree()
	root := tr.Root([]Slot{{Name: "x", Kind: types.KInt}})
	child := root.Transition("y", types.KInt)
	if tr.ByID(root.ID) != root || tr.ByID(child.ID) != child {
		t.Fatalf("ByID did not round-trip")
	}
	if tr.ByID(0) != nil {
		t.Fatalf("ByID(0) must be nil (no-shape sentinel)")
	}
	if tr.ByID(child.ID+100) != nil {
		t.Fatalf("ByID out of range must be nil")
	}
}

func TestConcurrentTransitions(t *testing.T) {
	// Many goroutines racing the same transitions must converge on the
	// same interned nodes (run under -race in CI).
	tr := NewTree()
	root := tr.Root([]Slot{{Name: "id", Kind: types.KInt}})
	const workers = 8
	results := make([][]*Shape, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("p%d", i%10)
				s := root.Transition(name, types.KInt)
				s = s.Transition(name, types.KDbl)
				s = s.Transition("tail", types.KStr)
				if i == 199 {
					results[w] = []*Shape{s}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w][0] != results[0][0] {
			t.Fatalf("worker %d converged on shape %d, worker 0 on %d",
				w, results[w][0].ID, results[0][0].ID)
		}
	}
}
