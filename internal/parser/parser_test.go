package parser_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `$x = 1 + 2 * 3;`)
	st := p.Main[0].(*ast.ExprStmt)
	asg := st.E.(*ast.Assign)
	add := asg.Value.(*ast.Binop)
	if add.Op != "+" {
		t.Fatalf("top op = %q", add.Op)
	}
	mul := add.R.(*ast.Binop)
	if mul.Op != "*" {
		t.Fatalf("* should bind tighter, got %q", mul.Op)
	}
}

func TestRightAssocAssign(t *testing.T) {
	p := parse(t, `$a = $b = 1;`)
	outer := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign)
	if _, ok := outer.Value.(*ast.Assign); !ok {
		t.Fatal("assignment should be right-associative")
	}
}

func TestStringInterpolation(t *testing.T) {
	p := parse(t, `echo "a $x b {$y} c";`)
	echo := p.Main[0].(*ast.Echo)
	interp, ok := echo.Args[0].(*ast.Interp)
	if !ok {
		t.Fatalf("expected interpolation, got %T", echo.Args[0])
	}
	if len(interp.Parts) != 5 {
		t.Fatalf("parts = %d, want 5", len(interp.Parts))
	}
	if v, ok := interp.Parts[1].(*ast.Var); !ok || v.Name != "x" {
		t.Errorf("part 1 = %#v", interp.Parts[1])
	}
	if v, ok := interp.Parts[3].(*ast.Var); !ok || v.Name != "y" {
		t.Errorf("part 3 = %#v", interp.Parts[3])
	}
}

func TestSingleQuotesDoNotInterpolate(t *testing.T) {
	p := parse(t, `echo '$x';`)
	if _, ok := p.Main[0].(*ast.Echo).Args[0].(*ast.StringLit); !ok {
		t.Error("single-quoted string interpolated")
	}
}

func TestClassDecl(t *testing.T) {
	p := parse(t, `
class Foo extends Bar implements A, B {
  public $x = 1;
  private $y;
  static function s() { return 1; }
  function m(int $a, ?string $b = null) { return $a; }
}`)
	c := p.Classes[0]
	if c.Name != "Foo" || c.Parent != "Bar" || len(c.Ifaces) != 2 {
		t.Fatalf("class header wrong: %+v", c)
	}
	if len(c.Props) != 2 || len(c.Methods) != 2 {
		t.Fatalf("members wrong: %d props, %d methods", len(c.Props), len(c.Methods))
	}
	if !c.Methods[0].Static {
		t.Error("static not recorded")
	}
	m := c.Methods[1]
	if m.Params[0].TypeHint != "int" || !m.Params[1].Nullable || m.Params[1].TypeHint != "string" {
		t.Errorf("param hints wrong: %+v", m.Params)
	}
}

func TestControlStructures(t *testing.T) {
	p := parse(t, `
for ($i = 0; $i < 3; $i++) { break; }
foreach ($a as $k => $v) { continue; }
while (true) { break; }
switch ($n) { case 1: break; default: break; }
try { f(); } catch (E $e) { g(); } catch (F $e) {}
if ($x) {} elseif ($y) {} else {}
`)
	if len(p.Main) != 6 {
		t.Fatalf("got %d statements", len(p.Main))
	}
	if tr, ok := p.Main[4].(*ast.Try); !ok || len(tr.Catches) != 2 {
		t.Errorf("try/catch parse wrong: %#v", p.Main[4])
	}
	iff := p.Main[5].(*ast.If)
	if iff.Else == nil {
		t.Error("elseif chain lost")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`$x = ;`,
		`function { }`,
		`if ($x { }`,
		`class X extends { }`,
		`echo "unterminated;`,
		`try { }`,
		`1 +`,
	}
	for _, src := range bad {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCastsAndTernary(t *testing.T) {
	p := parse(t, `$x = (int)($a ? 1.5 : "2");`)
	asg := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign)
	cast, ok := asg.Value.(*ast.Cast)
	if !ok || cast.To != "int" {
		t.Fatalf("cast parse wrong: %#v", asg.Value)
	}
	if _, ok := cast.E.(*ast.Ternary); !ok {
		t.Fatalf("ternary parse wrong: %#v", cast.E)
	}
}

func TestMethodChainsAndIndexing(t *testing.T) {
	p := parse(t, `$v = $a->b()->c[0]->d;`)
	asg := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign)
	prop, ok := asg.Value.(*ast.Prop)
	if !ok || prop.Name != "d" {
		t.Fatalf("outer should be prop d: %#v", asg.Value)
	}
	idx, ok := prop.Recv.(*ast.Index)
	if !ok {
		t.Fatalf("expected index below prop: %#v", prop.Recv)
	}
	if _, ok := idx.Arr.(*ast.Prop); !ok {
		t.Fatalf("expected prop c below index: %#v", idx.Arr)
	}
}

func TestAppendForm(t *testing.T) {
	p := parse(t, `$a[] = 1;`)
	asg := p.Main[0].(*ast.ExprStmt).E.(*ast.Assign)
	idx := asg.Target.(*ast.Index)
	if idx.Key != nil {
		t.Error("append form should have nil key")
	}
}
