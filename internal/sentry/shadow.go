package sentry

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vm"
	"repro/internal/workload"
)

// observation is one primary-side request handed to the comparator.
// A non-nil flush channel marks a Drain barrier instead.
type observation struct {
	endpoint   string
	primaryOut string
	flush      chan struct{}
}

// Observe offers one served request for shadow verification. endpoint
// is the workload endpoint name; primaryOut is the output the primary
// VM produced. The sampling decision is a deterministic hash of the
// observation sequence number, so a given (seed, rate, traffic order)
// always samples the same requests — the property the divergence
// bisection and the server-determinism tests rely on. Returns whether
// the request was sampled.
//
// A sampled request costs the caller one hash and one buffered
// channel send; the shadow execution and comparison happen on the
// comparator goroutine. The send blocks only when the queue is full
// (comparisons deliberately never get dropped: dropping under load
// would make verification counters timing-dependent).
func (m *Monitor) Observe(endpoint, primaryOut string) bool {
	if m == nil || m.threshold == 0 {
		return false
	}
	n := m.reqSeq.Add(1)
	if splitmix64(uint64(m.cfg.Seed)^n*0x9E3779B97F4A7C15) >= m.threshold {
		return false
	}
	m.sampled.Add(1)
	m.obs <- observation{endpoint: endpoint, primaryOut: primaryOut}
	return true
}

// Drain blocks until every observation enqueued before the call has
// been compared. Callers must Drain before reading Stats or Reports
// for deterministic results.
func (m *Monitor) Drain() {
	if m == nil || m.threshold == 0 {
		return
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return
	}
	ch := make(chan struct{})
	m.obs <- observation{flush: ch}
	<-ch
}

// comparatorLoop owns the shadow and replay VMs: one goroutine, so
// shadow heap state and the replay deny set need no locking.
func (m *Monitor) comparatorLoop() {
	defer m.wg.Done()
	for o := range m.obs {
		if o.flush != nil {
			close(o.flush)
			continue
		}
		m.compare(o)
	}
}

// compare re-executes one sampled request on the shadow interpreter
// (the semantic reference) and on the isolated replay VM (the
// published code), then cross-checks output bytes, rendered return
// values, and the shape digest. The primary only hands us its output
// bytes — its return value was already consumed — so return-value and
// shape comparisons run between replay and shadow, which exercise the
// same published translations the primary ran.
func (m *Monitor) compare(o observation) {
	sOut, sRet, sErr := m.runShadow(o.endpoint)
	if sErr != nil {
		// The reference itself failed; nothing sound to compare
		// against. (Endpoints are deterministic, so this indicates a
		// harness bug, not a code-cache fault.)
		return
	}
	m.shadowRuns.Add(1)
	rOut, rRet, rErr := m.runReplay(o.endpoint)

	primaryDiverged := o.primaryOut != sOut
	replayDiverged := rErr != nil || rOut != sOut || rRet != sRet
	if !primaryDiverged && !replayDiverged {
		return
	}
	m.divergences.Add(1)
	rep := m.bisect(o.endpoint, sOut, sRet)
	rep.PrimaryOutput = clip(o.primaryOut, 160)
	rep.ShadowOutput = clip(sOut, 160)
	rep.PrimaryDigest = outputDigest(o.primaryOut, rRet)
	rep.ShadowDigest = outputDigest(sOut, sRet)
	m.repMu.Lock()
	m.reports = append(m.reports, rep)
	m.repMu.Unlock()
	if m.OnDivergence != nil {
		m.OnDivergence(rep)
	}
}

// shadowRef is one memoized interpreter reference result.
type shadowRef struct {
	out, ret string
}

// runShadow returns the interpreter reference for one endpoint,
// executing the shadow VM on first use and serving the memo after
// (see the shadowMemo field for why memoizing is sound).
func (m *Monitor) runShadow(endpoint string) (out, ret string, err error) {
	if ref, ok := m.shadowMemo[endpoint]; ok {
		return ref.out, ref.ret, nil
	}
	out, ret, err = runOn(m.shadow, &m.shadowBuf, endpoint)
	if err == nil {
		m.shadowMemo[endpoint] = shadowRef{out: out, ret: ret}
	}
	return out, ret, err
}

// runReplay executes one endpoint request on the replay VM under the
// current deny set.
func (m *Monitor) runReplay(endpoint string) (out, ret string, err error) {
	return runOn(m.replay, &m.replayBuf, endpoint)
}

// MainEndpoint is the observation name for a request that executes
// the unit's pseudo-main (the hhvm CLI's request shape) rather than a
// workload endpoint wrapper.
const MainEndpoint = "(main)"

// runOn executes one endpoint request on v, capturing output into
// buf and rendering the return value. Only the comparator goroutine
// calls this, so the buffer swap needs no locking.
func runOn(v *vm.VM, buf *strings.Builder, endpoint string) (string, string, error) {
	buf.Reset()
	if endpoint == MainEndpoint {
		val, err := v.RunMain()
		ret := renderValue(val, 0)
		v.Heap.DecRef(val)
		return buf.String(), ret, err
	}
	fn, ok := v.Env.Unit.FuncByName(workload.EndpointFunc(endpoint))
	if !ok {
		return "", "", fmt.Errorf("sentry: undefined endpoint %s", endpoint)
	}
	val, err := v.CallFunc(fn, nil, nil)
	ret := renderValue(val, 0)
	v.Heap.DecRef(val)
	return buf.String(), ret, err
}

// outputDigest folds output bytes and the rendered return value into
// one FNV-1a word (the number divergence reports carry).
func outputDigest(out, ret string) uint64 {
	return fnvStr(fnvStr(fnvOffset, out), ret)
}

// renderValue renders a return value for comparison: scalars
// verbatim, arrays element-wise in iteration order, objects as class
// name plus shape slot names plus property values. This is the "shape
// digest" — it pins down the structural identity of the result graph
// across tiers. Reference-count operation counts are deliberately
// not part of the digest: refcount elision legitimately differs
// between the interpreter and optimized code.
func renderValue(v runtime.Value, depth int) string {
	const maxDepth, maxElems = 4, 24
	switch v.Kind {
	case types.KUninit:
		return "uninit"
	case types.KNull:
		return "null"
	case types.KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case types.KInt:
		return strconv.FormatInt(v.I, 10)
	case types.KDbl:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case types.KStr:
		return strconv.Quote(v.S.Data)
	case types.KArr:
		if v.A == nil {
			return "array(nil)"
		}
		if depth >= maxDepth {
			return "array(depth)"
		}
		var sb strings.Builder
		sb.WriteString("array[")
		n := 0
		v.A.Each(func(k, e runtime.Value) bool {
			if n >= maxElems {
				sb.WriteString("...")
				return false
			}
			if n > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(renderValue(k, depth+1))
			sb.WriteString("=>")
			sb.WriteString(renderValue(e, depth+1))
			n++
			return true
		})
		sb.WriteByte(']')
		return sb.String()
	case types.KObj:
		if v.O == nil {
			return "obj(nil)"
		}
		if depth >= maxDepth {
			return v.O.Class.Name + "{depth}"
		}
		var sb strings.Builder
		sb.WriteString(v.O.Class.Name)
		sb.WriteByte('{')
		for i, p := range v.O.Props {
			if i > 0 {
				sb.WriteByte(',')
			}
			if v.O.Shape != nil && i < len(v.O.Shape.Slots) {
				sb.WriteString(v.O.Shape.Slots[i].Name)
				sb.WriteByte(':')
			}
			sb.WriteString(renderValue(p, depth+1))
		}
		sb.WriteByte('}')
		return sb.String()
	default:
		return "?"
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// splitmix64 is the same mixer the fault injector uses for its
// deterministic draw streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
