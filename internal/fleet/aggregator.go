// Package fleet scales the single-host restart simulation of
// internal/server to a fleet: N hosts behind a load-balancer model,
// driven by diurnal Zipfian traffic from a simulated user population,
// orchestrated through rolling restarts, with a central
// profile-aggregation service that continuously merges the hosts'
// jumpstart snapshots and hands the warm aggregate to every
// restarting host (DESIGN.md §12). Overload is wired to the PR 5
// degradation ladder: a drowning host sheds JIT work down to
// interp-only and keeps serving at reduced capacity instead of dying.
package fleet

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/jumpstart"
)

// Aggregator is the central profile-aggregation service. Hosts
// periodically ship their jumpstart snapshots (Publish); the service
// merges them into a single decay-weighted aggregate (MergeRound,
// PR 1's commutative merge) and publishes it through an atomic
// pointer, so a restarting host pulls the warm aggregate (Warm)
// lock-free even while a merge is in flight — the same RCU publish
// discipline the translation index uses.
type Aggregator struct {
	// Decay is the per-merge-round weight applied to the previous
	// aggregate: history fades at this rate while each round's fresh
	// snapshots come in at weight 1.
	Decay float64

	mu sync.Mutex
	// pending holds the latest unmerged snapshot per host; a host
	// publishing twice between rounds replaces its earlier snapshot
	// (the aggregator wants current profiles, not a backlog).
	pending map[int]*jumpstart.Snapshot

	// agg is the published aggregate. Snapshots are immutable once
	// published, so readers need no lock.
	agg atomic.Pointer[jumpstart.Snapshot]

	publishes   atomic.Uint64
	mergeRounds atomic.Uint64
	pulls       atomic.Uint64
	merged      atomic.Uint64 // snapshots folded in across all rounds
	// lastMerge is the simulated minute of the last completed round,
	// stored as math.Float64bits; NaN until the first round.
	lastMerge atomic.Uint64
}

// NewAggregator builds the service. decay outside (0, 1] falls back
// to 0.9 — yesterday's profile fades but never vanishes.
func NewAggregator(decay float64) *Aggregator {
	if decay <= 0 || decay > 1 {
		decay = 0.9
	}
	a := &Aggregator{Decay: decay, pending: map[int]*jumpstart.Snapshot{}}
	a.lastMerge.Store(math.Float64bits(math.NaN()))
	return a
}

// Publish ships one host's current profile snapshot to the service.
// The snapshot must not be mutated after publishing (SnapshotProfile
// returns a fresh copy each call, so hosts naturally comply).
func (a *Aggregator) Publish(host int, s *jumpstart.Snapshot) {
	if s == nil {
		return
	}
	a.mu.Lock()
	a.pending[host] = s
	a.mu.Unlock()
	a.publishes.Add(1)
}

// MergeRound folds every pending snapshot into the aggregate in one
// commutative merge — the previous aggregate at weight Decay, each
// fresh snapshot at weight 1 — and publishes the result. minute
// stamps the round for staleness accounting. Returns the number of
// snapshots folded in.
func (a *Aggregator) MergeRound(minute float64) int {
	a.mu.Lock()
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return 0
	}
	hosts := make([]int, 0, len(a.pending))
	for h := range a.pending {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	snaps := make([]*jumpstart.Snapshot, 0, len(hosts)+1)
	weights := make([]float64, 0, len(hosts)+1)
	if prev := a.agg.Load(); prev != nil {
		snaps = append(snaps, prev)
		weights = append(weights, a.Decay)
	}
	for _, h := range hosts {
		snaps = append(snaps, a.pending[h])
		weights = append(weights, 1)
	}
	a.pending = map[int]*jumpstart.Snapshot{}
	merged := jumpstart.Merge(snaps, weights)
	a.agg.Store(merged)
	a.mu.Unlock()

	a.mergeRounds.Add(1)
	a.merged.Add(uint64(len(hosts)))
	a.lastMerge.Store(math.Float64bits(minute))
	return len(hosts)
}

// Warm returns the current warm aggregate (nil before the first
// round). Lock-free: safe to call while publishes and merges are in
// flight — the caller gets the last published aggregate, never a
// partially merged one.
func (a *Aggregator) Warm() *jumpstart.Snapshot {
	a.pulls.Add(1)
	return a.agg.Load()
}

// StalenessAt reports how many minutes the published aggregate lags
// behind the given minute — the fleet-level staleness metric. Before
// the first merge round it reports the full elapsed time (everything
// is stale when nothing has been aggregated).
func (a *Aggregator) StalenessAt(minute float64) float64 {
	last := math.Float64frombits(a.lastMerge.Load())
	if math.IsNaN(last) {
		return minute
	}
	return minute - last
}

// AggregatorStats is the service's activity summary.
type AggregatorStats struct {
	// Publishes / MergeRounds / Pulls count API calls; MergedSnapshots
	// counts snapshots folded into the aggregate across all rounds.
	Publishes       uint64
	MergeRounds     uint64
	Pulls           uint64
	MergedSnapshots uint64
	// Funcs / Trans describe the current aggregate's size.
	Funcs int
	Trans int
	// LastMergeMinute is the stamp of the latest round (-1 before the
	// first).
	LastMergeMinute float64
}

// Stats snapshots the service counters.
func (a *Aggregator) Stats() AggregatorStats {
	st := AggregatorStats{
		Publishes:       a.publishes.Load(),
		MergeRounds:     a.mergeRounds.Load(),
		Pulls:           a.pulls.Load(),
		MergedSnapshots: a.merged.Load(),
		LastMergeMinute: -1,
	}
	if last := math.Float64frombits(a.lastMerge.Load()); !math.IsNaN(last) {
		st.LastMergeMinute = last
	}
	if agg := a.agg.Load(); agg != nil {
		st.Funcs = len(agg.Funcs)
		st.Trans = agg.NumTrans()
	}
	return st
}
