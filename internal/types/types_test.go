package types_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func sampleTypes() []types.Type {
	return []types.Type{
		types.TBottom, types.TUninit, types.TNull, types.TBool, types.TInt,
		types.TDbl, types.TStr, types.TArr, types.TObj, types.TNum,
		types.TUncounted, types.TCounted, types.TCell, types.TInitCell,
		types.ArrOfKind(types.ArrayPacked), types.ArrOfKind(types.ArrayMixed),
		types.ObjOfClass("A", true), types.ObjOfClass("A", false),
		types.ObjOfClass("B", true),
	}
}

func init() {
	types.ResetClasses()
	types.RegisterClass("A", "", nil)
	types.RegisterClass("B", "A", nil)
	types.RegisterClass("C", "", []string{"I"})
}

func TestSubtypeBasics(t *testing.T) {
	cases := []struct {
		sub, super types.Type
		want       bool
	}{
		{types.TInt, types.TNum, true},
		{types.TNum, types.TInt, false},
		{types.TInt, types.TUncounted, true},
		{types.TStr, types.TUncounted, false},
		{types.TStr, types.TCounted, true},
		{types.ArrOfKind(types.ArrayPacked), types.TArr, true},
		{types.TArr, types.ArrOfKind(types.ArrayPacked), false},
		{types.ObjOfClass("B", true), types.ObjOfClass("A", false), true},
		{types.ObjOfClass("A", true), types.ObjOfClass("B", false), false},
		{types.ObjOfClass("B", true), types.TObj, true},
		{types.TBottom, types.TInt, true},
	}
	for _, c := range cases {
		if got := c.sub.SubtypeOf(c.super); got != c.want {
			t.Errorf("%v <= %v: got %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestLatticeProperties(t *testing.T) {
	ts := sampleTypes()
	rng := rand.New(rand.NewSource(7))
	pick := func() types.Type { return ts[rng.Intn(len(ts))] }

	// Union is an upper bound; Intersect is a lower bound.
	f := func() bool {
		a, b := pick(), pick()
		u := a.Union(b)
		if !a.SubtypeOf(u) || !b.SubtypeOf(u) {
			return false
		}
		i := a.Intersect(b)
		if !i.SubtypeOf(a) || !i.SubtypeOf(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutative(t *testing.T) {
	ts := sampleTypes()
	for _, a := range ts {
		for _, b := range ts {
			ab, ba := a.Union(b), b.Union(a)
			if !(ab.SubtypeOf(ba) && ba.SubtypeOf(ab)) {
				t.Errorf("union not commutative: %v vs %v -> %v / %v", a, b, ab, ba)
			}
		}
	}
}

func TestIntersectIdempotent(t *testing.T) {
	for _, a := range sampleTypes() {
		if got := a.Intersect(a); got != a {
			// Equal up to mutual subtyping is acceptable.
			if !(got.SubtypeOf(a) && a.SubtypeOf(got)) {
				t.Errorf("intersect not idempotent for %v: got %v", a, got)
			}
		}
	}
}

func TestSubtypeTransitivity(t *testing.T) {
	ts := sampleTypes()
	for _, a := range ts {
		for _, b := range ts {
			for _, c := range ts {
				if a.SubtypeOf(b) && b.SubtypeOf(c) && !a.SubtypeOf(c) {
					t.Errorf("transitivity violated: %v <= %v <= %v but not %v <= %v",
						a, b, c, a, c)
				}
			}
		}
	}
}

func TestCounted(t *testing.T) {
	if types.TInt.MaybeCounted() {
		t.Error("Int should not be counted")
	}
	if !types.TStr.Counted() {
		t.Error("Str should be counted")
	}
	if !types.TCell.MaybeCounted() || types.TCell.Counted() {
		t.Error("Cell should be maybe-counted but not definitely counted")
	}
}

func TestSpecializationFlags(t *testing.T) {
	if !types.ArrOfKind(types.ArrayPacked).IsSpecialized() {
		t.Error("packed array should be specialized")
	}
	if !types.ObjOfClass("A", true).IsSpecialized() {
		t.Error("exact class should be specialized")
	}
	if types.TArr.IsSpecialized() {
		t.Error("plain Arr should not be specialized")
	}
	if !types.TInt.IsSpecific() || types.TNum.IsSpecific() {
		t.Error("IsSpecific misclassifies Int/Num")
	}
}

func TestInterfaceSubtyping(t *testing.T) {
	if !types.IsSubclassOf("C", "I") {
		t.Error("C implements I")
	}
	if types.IsSubclassOf("A", "I") {
		t.Error("A does not implement I")
	}
}
