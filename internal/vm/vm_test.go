package vm_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/vm"
)

func engine(t *testing.T, src string, cfg jit.Config, out *strings.Builder) *vm.VM {
	t.Helper()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(unit, cfg, out)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestOSRIntoJITedLoop: a long-running loop entered in the
// interpreter must transfer into JITed code at a back edge (the
// tracelet count climbs while the frame is still live).
func TestOSRIntoJITedLoop(t *testing.T) {
	src := `
$sum = 0;
for ($i = 0; $i < 2000; $i++) { $sum += $i; }
echo $sum;
`
	var out strings.Builder
	cfg := jit.DefaultConfig()
	cfg.Mode = jit.ModeTracelet
	v := engine(t, src, cfg, &out)
	if _, err := v.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1999000" {
		t.Fatalf("output %q", out.String())
	}
	// The single invocation must have produced live translations (OSR
	// happened mid-loop; no second call ever warmed the entry).
	if v.JIT.Stats().LiveTranslations == 0 {
		t.Error("OSR never entered JITed code inside the loop")
	}
	if v.JIT.Stats().MachineEnters == 0 {
		t.Error("machine never executed")
	}
}

// TestUnwindingFromJITedCode: exceptions thrown inside JITed code are
// caught by guest handlers in the same frame.
func TestUnwindingFromJITedCode(t *testing.T) {
	src := `
function risky($i) {
  if ($i % 5 == 0) { throw new Exception("e" . $i); }
  return $i;
}
$log = "";
for ($i = 1; $i <= 20; $i++) {
  try { $log .= risky($i); } catch (Exception $e) { $log .= "[" . $e->getMessage() . "]"; }
}
echo $log;
`
	var expected strings.Builder
	cfgI := jit.DefaultConfig()
	cfgI.Mode = jit.ModeInterp
	vi := engine(t, src, cfgI, &expected)
	if _, err := vi.RunMain(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 10
	v := engine(t, src, cfg, &out)
	for i := 0; i < 15; i++ {
		out.Reset()
		if _, err := v.RunMain(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if out.String() != expected.String() {
			t.Fatalf("iter %d: %q != %q", i, out.String(), expected.String())
		}
	}
}

// TestInlineFrameMaterialization: a side exit inside inlined code must
// materialize the callee frame and produce the interpreter's answer.
// rare() is small enough to inline, and its cold branch (taken only
// for one input) is absent from the profiled region, forcing the exit.
func TestInlineFrameMaterialization(t *testing.T) {
	src := `
function rare($x) {
  if ($x == 999999) { return strtoupper("cold-" . $x); }
  return $x * 2;
}
function driver($n) {
  $acc = 0;
  for ($i = 0; $i < $n; $i++) { $acc += rare($i); }
  return $acc . ":" . rare(999999);
}
echo driver(20);
`
	var expected strings.Builder
	cfgI := jit.DefaultConfig()
	cfgI.Mode = jit.ModeInterp
	vi := engine(t, src, cfgI, &expected)
	if _, err := vi.RunMain(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 30
	v := engine(t, src, cfg, &out)
	for i := 0; i < 20; i++ {
		out.Reset()
		if _, err := v.RunMain(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if out.String() != expected.String() {
			t.Fatalf("iter %d: %q != %q", i, out.String(), expected.String())
		}
	}
	if !v.JIT.Optimized() {
		t.Fatal("optimizer never ran; the test exercised nothing")
	}
}

// TestRecursionDepthLimit: runaway recursion is a guest error in all
// modes, not a host stack overflow.
func TestRecursionDepthLimit(t *testing.T) {
	src := `function down($n) { return down($n + 1); } echo down(0);`
	for _, mode := range []jit.Mode{jit.ModeInterp, jit.ModeRegion} {
		var out strings.Builder
		cfg := jit.DefaultConfig()
		cfg.Mode = mode
		cfg.ProfileTrigger = 50
		v := engine(t, src, cfg, &out)
		_, err := v.RunMain()
		if err == nil || !strings.Contains(err.Error(), "depth") {
			t.Errorf("[%v] expected depth error, got %v", mode, err)
		}
	}
}
