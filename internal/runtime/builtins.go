package runtime

import (
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/types"
)

// BuiltinCtx is what builtin functions may touch: the guest heap and
// the request's output stream.
type BuiltinCtx struct {
	Heap *Heap
	Out  io.Writer
}

// Builtin is a native function callable via FCallBuiltin. Arguments
// are borrowed; the result is owned by the caller (counted results
// come with one reference).
type Builtin struct {
	Name string
	// Arity is the required argument count; -1 means variadic.
	Arity int
	Fn    func(ctx *BuiltinCtx, args []Value) (Value, error)
	// Cost is the simulated-cycle cost charged when JITed code calls
	// the builtin out of line.
	Cost uint64
}

var builtinTable = map[string]*Builtin{}

// RegisterBuiltin adds b to the global builtin table.
func RegisterBuiltin(b *Builtin) { builtinTable[b.Name] = b }

// LookupBuiltin finds a builtin by name.
func LookupBuiltin(name string) (*Builtin, bool) {
	b, ok := builtinTable[name]
	return b, ok
}

// BuiltinNames returns the sorted names (for diagnostics).
func BuiltinNames() []string {
	names := make([]string, 0, len(builtinTable))
	for n := range builtinTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	reg := RegisterBuiltin
	reg(&Builtin{Name: "count", Arity: 1, Cost: 6, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[0].Kind != types.KArr {
			return Int(1), nil
		}
		return Int(int64(a[0].A.Len())), nil
	}})
	reg(&Builtin{Name: "strlen", Arity: 1, Cost: 6, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Int(int64(len(a[0].ToString()))), nil
	}})
	reg(&Builtin{Name: "substr", Arity: -1, Cost: 20, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if len(a) < 2 {
			return Null(), NewError("substr expects at least 2 arguments")
		}
		s := a[0].ToString()
		start := int(a[1].ToInt())
		if start < 0 {
			start = len(s) + start
			if start < 0 {
				start = 0
			}
		}
		if start > len(s) {
			return NewStr(""), nil
		}
		end := len(s)
		if len(a) >= 3 {
			n := int(a[2].ToInt())
			if n < 0 {
				end = len(s) + n
			} else {
				end = start + n
			}
		}
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			end = start
		}
		return NewStr(s[start:end]), nil
	}})
	reg(&Builtin{Name: "strtoupper", Arity: 1, Cost: 15, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return NewStr(strings.ToUpper(a[0].ToString())), nil
	}})
	reg(&Builtin{Name: "strtolower", Arity: 1, Cost: 15, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return NewStr(strings.ToLower(a[0].ToString())), nil
	}})
	reg(&Builtin{Name: "strrev", Arity: 1, Cost: 15, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		s := []byte(a[0].ToString())
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		return NewStr(string(s)), nil
	}})
	reg(&Builtin{Name: "str_repeat", Arity: 2, Cost: 25, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		n := a[1].ToInt()
		if n < 0 || n > 1<<20 {
			return Null(), NewError("str_repeat: bad count")
		}
		return NewStr(strings.Repeat(a[0].ToString(), int(n))), nil
	}})
	reg(&Builtin{Name: "implode", Arity: 2, Cost: 30, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[1].Kind != types.KArr {
			return Null(), NewError("implode expects array")
		}
		sep := a[0].ToString()
		var parts []string
		a[1].A.Each(func(_, v Value) bool { parts = append(parts, v.ToString()); return true })
		return NewStr(strings.Join(parts, sep)), nil
	}})
	reg(&Builtin{Name: "abs", Arity: 1, Cost: 4, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[0].Kind == types.KDbl {
			return Dbl(math.Abs(a[0].D)), nil
		}
		n := a[0].ToInt()
		if n < 0 {
			n = -n
		}
		return Int(n), nil
	}})
	reg(&Builtin{Name: "intval", Arity: 1, Cost: 5, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Int(a[0].ToInt()), nil
	}})
	reg(&Builtin{Name: "floatval", Arity: 1, Cost: 5, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Dbl(a[0].ToDbl()), nil
	}})
	reg(&Builtin{Name: "strval", Arity: 1, Cost: 10, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return NewStr(a[0].ToString()), nil
	}})
	reg(&Builtin{Name: "is_int", Arity: 1, Cost: 3, Fn: isKind(types.KInt)})
	reg(&Builtin{Name: "is_float", Arity: 1, Cost: 3, Fn: isKind(types.KDbl)})
	reg(&Builtin{Name: "is_string", Arity: 1, Cost: 3, Fn: isKind(types.KStr)})
	reg(&Builtin{Name: "is_array", Arity: 1, Cost: 3, Fn: isKind(types.KArr)})
	reg(&Builtin{Name: "is_bool", Arity: 1, Cost: 3, Fn: isKind(types.KBool)})
	reg(&Builtin{Name: "is_null", Arity: 1, Cost: 3, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Bool(a[0].IsNull()), nil
	}})
	reg(&Builtin{Name: "is_numeric", Arity: 1, Cost: 5, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Bool(a[0].Kind&types.KNum != 0), nil
	}})
	reg(&Builtin{Name: "array_keys", Arity: 1, Cost: 30, Fn: func(ctx *BuiltinCtx, a []Value) (Value, error) {
		if a[0].Kind != types.KArr {
			return Null(), NewError("array_keys expects array")
		}
		var keys []Value
		a[0].A.Each(func(k, _ Value) bool {
			ctx.Heap.IncRef(k)
			keys = append(keys, k)
			return true
		})
		return ArrV(NewPacked(keys)), nil
	}})
	reg(&Builtin{Name: "array_values", Arity: 1, Cost: 30, Fn: func(ctx *BuiltinCtx, a []Value) (Value, error) {
		if a[0].Kind != types.KArr {
			return Null(), NewError("array_values expects array")
		}
		var vals []Value
		a[0].A.Each(func(_, v Value) bool {
			ctx.Heap.IncRef(v)
			vals = append(vals, v)
			return true
		})
		return ArrV(NewPacked(vals)), nil
	}})
	reg(&Builtin{Name: "array_sum", Arity: 1, Cost: 20, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[0].Kind != types.KArr {
			return Int(0), nil
		}
		var si int64
		var sd float64
		isDbl := false
		a[0].A.Each(func(_, v Value) bool {
			if v.Kind == types.KDbl {
				isDbl = true
			}
			si += v.ToInt()
			sd += v.ToDbl()
			return true
		})
		if isDbl {
			return Dbl(sd), nil
		}
		return Int(si), nil
	}})
	reg(&Builtin{Name: "in_array", Arity: 2, Cost: 25, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[1].Kind != types.KArr {
			return Bool(false), nil
		}
		found := false
		a[1].A.Each(func(_, v Value) bool {
			if LooseEq(v, a[0]) {
				found = true
				return false
			}
			return true
		})
		return Bool(found), nil
	}})
	reg(&Builtin{Name: "array_key_exists", Arity: 2, Cost: 10, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		if a[1].Kind != types.KArr {
			return Bool(false), nil
		}
		_, ok := a[1].A.Get(a[0])
		return Bool(ok), nil
	}})
	reg(&Builtin{Name: "max", Arity: -1, Cost: 10, Fn: minmax(1)})
	reg(&Builtin{Name: "min", Arity: -1, Cost: 10, Fn: minmax(-1)})
	reg(&Builtin{Name: "sqrt", Arity: 1, Cost: 8, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Dbl(math.Sqrt(a[0].ToDbl())), nil
	}})
	reg(&Builtin{Name: "floor", Arity: 1, Cost: 4, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Dbl(math.Floor(a[0].ToDbl())), nil
	}})
	reg(&Builtin{Name: "ceil", Arity: 1, Cost: 4, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Dbl(math.Ceil(a[0].ToDbl())), nil
	}})
	reg(&Builtin{Name: "round", Arity: 1, Cost: 4, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Dbl(math.Round(a[0].ToDbl())), nil
	}})
	reg(&Builtin{Name: "ord", Arity: 1, Cost: 4, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		s := a[0].ToString()
		if s == "" {
			return Int(0), nil
		}
		return Int(int64(s[0])), nil
	}})
	reg(&Builtin{Name: "chr", Arity: 1, Cost: 6, Fn: func(_ *BuiltinCtx, a []Value) (Value, error) {
		return NewStr(string(rune(a[0].ToInt() & 0xff))), nil
	}})
}

func isKind(k types.Kind) func(*BuiltinCtx, []Value) (Value, error) {
	return func(_ *BuiltinCtx, a []Value) (Value, error) {
		return Bool(a[0].Kind == k), nil
	}
}

func minmax(dir int) func(*BuiltinCtx, []Value) (Value, error) {
	return func(ctx *BuiltinCtx, a []Value) (Value, error) {
		if len(a) == 0 {
			return Null(), NewError("max/min expects arguments")
		}
		vals := a
		if len(a) == 1 && a[0].Kind == types.KArr {
			vals = nil
			a[0].A.Each(func(_, v Value) bool { vals = append(vals, v); return true })
			if len(vals) == 0 {
				return Bool(false), nil
			}
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if Cmp(v, best) == dir {
				best = v
			}
		}
		ctx.Heap.IncRef(best)
		return best, nil
	}
}
