package core_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestConcurrentWorkersAcrossOptimize hammers one shared JIT with
// several worker VMs straddling the profiling → global-retranslation
// transition: workers race to mint profiling translations, the
// background compiler publishes the optimized index mid-traffic, and
// every request's output must stay identical to the interpreter's.
// Run under -race this exercises the RCU index publication, the
// single-flight dedup, and the atomic stats counters.
func TestConcurrentWorkersAcrossOptimize(t *testing.T) {
	src, eps := workload.Combined()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference outputs from a pure interpreter.
	refEng, err := core.NewEngine(unit, jit.Config{Mode: jit.ModeInterp}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, ep := range eps {
		var sb strings.Builder
		refEng.VM.SetOut(&sb)
		val, err := refEng.Call(workload.EndpointFunc(ep.Name))
		if err != nil {
			t.Fatalf("reference %s: %v", ep.Name, err)
		}
		refEng.Heap().DecRef(val)
		ref[ep.Name] = sb.String()
	}

	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 300 // fire the global trigger mid-run
	cfg.BackgroundCompile = true
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const rounds = 30
	ws := make([]*vm.VM, workers)
	ws[0] = eng.VM
	for i := 1; i < workers; i++ {
		ws[i] = eng.NewWorker(io.Discard)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(v *vm.VM) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, ep := range eps {
					fn, ok := unit.FuncByName(workload.EndpointFunc(ep.Name))
					if !ok {
						errCh <- fmt.Errorf("endpoint %s: missing function", ep.Name)
						return
					}
					var sb strings.Builder
					v.SetOut(&sb)
					val, err := v.CallFunc(fn, nil, nil)
					if err != nil {
						errCh <- fmt.Errorf("endpoint %s: %v", ep.Name, err)
						return
					}
					v.Heap.DecRef(val)
					if sb.String() != ref[ep.Name] {
						errCh <- fmt.Errorf("endpoint %s: output diverged under concurrency:\n got %q\nwant %q",
							ep.Name, sb.String(), ref[ep.Name])
						return
					}
				}
			}
		}(ws[i])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The trigger fired during traffic; the background compiler may
	// still be publishing — wait for it, then check the publish.
	deadline := time.Now().Add(10 * time.Second)
	for !eng.VM.JIT.Optimized() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !eng.VM.JIT.Optimized() {
		t.Fatal("optimized index never published")
	}
	st := eng.Stats()
	if st.OptimizeRuns != 1 {
		t.Errorf("global retranslation ran %d times, want exactly 1", st.OptimizeRuns)
	}
	if st.OptimizedTranslations == 0 {
		t.Error("no optimized translations published")
	}
	if st.ProfilingTranslations == 0 {
		t.Error("no profiling translations were minted before the trigger")
	}
}
