// Package vasm implements the Virtual Assembly representation: a
// register-based, near-machine IR with an unbounded virtual register
// file. Register allocation (SSA linear scan), jump optimization,
// basic-block layout, and hot/cold splitting happen here (Section
// 5.4), after which the code is placed into the simulated code cache
// and executed by the machine model.
package vasm

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Reg is a register: virtual before allocation, physical (0 ..
// NumPhysRegs-1) after. Each register holds one guest cell
// (TypedValue), mirroring HHVM's use of a data+type register pair.
type Reg int32

// InvalidReg marks absent operands.
const InvalidReg Reg = -1

// NumPhysRegs is the physical cell-register file size.
const NumPhysRegs = 12

// Op enumerates Vasm instructions.
type Op uint8

const (
	Nop Op = iota

	// Data movement.
	LdImm  // D <- constant cell (Imm* fields)
	Copy   // D <- A
	LdLoc  // D <- frame local I64
	StLoc  // frame local I64 <- A
	LdStk  // D <- entry eval-stack slot I64
	Spill  // spill slot I64 <- A
	Reload // D <- spill slot I64

	// Guards: kind/class tests that jump to Target1 (a stub or chain
	// block) on failure.
	GuardKind // fail unless kind(A) within TypeParam
	GuardCls  // fail unless A is an object of class id I64

	// Arithmetic on cells.
	AddI
	SubI
	MulI
	NegI
	AddD
	SubD
	MulD
	DivD
	NegD
	CmpI // D <- bool(A <cond I64> B)
	CmpD

	// Conversions (inline, type-dispatched on the cell's kind).
	ToBool
	ToInt
	ToDbl

	// Reference counting (inline fast path; DecRef reaching zero
	// calls out to the destructor machinery).
	IncRef
	DecRef

	// Array fast paths.
	ArrCount  // D <- count(A)
	ArrGetPkI // D <- A[B] for packed arrays; Target1 = catch stub on error

	// Object fast paths.
	LdProp // D <- A.props[I64] (+IncRef is separate)
	StProp // A.props[I64] <- B (releases old value)
	LdThis // D <- frame $this

	// Typed object shapes (DESIGN.md §14).
	GuardShape // fail unless shape(A) has id I64; Target1 = fail stub
	LdPropIC   // D <- A.props[Str] via shape IC (link slot); Target1 = catch stub
	StPropIC   // A.props[Str] <- B via shape IC (link slot); Target1 = catch stub
	ProfPropShape // record receiver shape of A at site I64

	// Out-of-line helper call: I64 = HelperID; Args in order;
	// Target1 = catch stub (0 = none).
	Helper

	// Guest calls (through the VM dispatcher).
	CallFunc    // I64 = callee func id; Args = args; Str = name
	CallMethodD // I64 = callee func id; Args[0] = receiver
	CallMethodC // Str = method name; I64 = inline-cache site id; Args[0] = receiver
	CallBuiltin // Str = builtin name

	// Profiling.
	CountInc     // profile counter I64
	ProfCallSite // record receiver class of Args[0] at site I64

	// Control flow.
	Jmp      // Target1
	Jcc      // if bool(A): Target1 else Target2
	JmpTable // indexed jump: I64 = table index into Unit.Tables; A = int cell
	Ret      // return A (epilogue releases the frame)
	Exit     // side exit / service request; Ex describes resumption
	BindJmp  // region exit to bytecode pc I64; Ex materializes state

	// Superinstructions minted by the post-regalloc fusion pass
	// (Fuse). Each performs the effects of its components in order —
	// including every component's destination write — so fused code
	// is bit-identical to unfused code. Encoded size and static cost
	// are the sums of the components', so code-cache addresses and
	// the guest cycle ledger are unchanged. None are smashable, and
	// only the *Jcc forms and LdLocGK transfer control.
	LdLocGK   // LdLoc(D <- local I64) + GuardKind(D within TypeParam, fail ->Target1)
	LdImmAddI // LdImm(reg Target2 <- Imms[I64>>16]) + AddI(D <- A+B)
	LdImmCmpI // LdImm(reg Target2 <- Imms[I64>>16]) + CmpI(D <- A <cond I64&0xff> B)
	CmpIJcc   // CmpI(D <- A <cond I64&0xff> B) + Jcc(D: Target1/Target2; I64&0x100 = inverted)
	CmpDJcc   // CmpD form of CmpIJcc
	IncRefN   // IncRef over each reg in Args (run of >= 2)
	DecRefN   // DecRef over each reg in Args (run of >= 2)

	opCount
)

// OpCount is the number of vasm opcodes, exported for dispatch and
// attribution tables indexed by Op.
const OpCount = int(opCount)

var opNames = [...]string{
	Nop: "nop", LdImm: "ldimm", Copy: "copy", LdLoc: "ldloc", StLoc: "stloc",
	LdStk: "ldstk", Spill: "spill", Reload: "reload",
	GuardKind: "guardkind", GuardCls: "guardcls",
	AddI: "addi", SubI: "subi", MulI: "muli", NegI: "negi",
	AddD: "addd", SubD: "subd", MulD: "muld", DivD: "divd", NegD: "negd",
	CmpI: "cmpi", CmpD: "cmpd",
	ToBool: "tobool", ToInt: "toint", ToDbl: "todbl",
	IncRef: "incref", DecRef: "decref",
	ArrCount: "arrcount", ArrGetPkI: "arrgetpki",
	LdProp: "ldprop", StProp: "stprop", LdThis: "ldthis",
	GuardShape: "guardshape", LdPropIC: "ldpropic", StPropIC: "stpropic",
	ProfPropShape: "profpropshape",
	Helper: "helper", CallFunc: "callfunc", CallMethodD: "callmethodd",
	CallMethodC: "callmethodc", CallBuiltin: "callbuiltin",
	CountInc: "countinc", ProfCallSite: "profcallsite",
	Jmp: "jmp", Jcc: "jcc", JmpTable: "jmptable", Ret: "ret", Exit: "exit", BindJmp: "bindjmp",
	LdLocGK: "ldloc+guardkind", LdImmAddI: "ldimm+addi", LdImmCmpI: "ldimm+cmpi",
	CmpIJcc: "cmpi+jcc", CmpDJcc: "cmpd+jcc", IncRefN: "incref*n", DecRefN: "decref*n",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Smashable reports whether the instruction is a smash site: a
// cross-translation transfer whose machine code holds a patchable
// jump or call that the runtime can rebind to a direct successor
// (bind jumps, side-exit stubs, and direct guest calls bound to
// callee prologues). Dynamic method calls (CallMethodC) resolve the
// callee per receiver and keep their inline cache instead. Shape ICs
// (LdPropIC/StPropIC) claim a smashable slot too: the machine burns
// the epoch-stamped cache table into the site's link slot, and the
// OptimizeAll republish sweep invalidates it wholesale.
func (o Op) Smashable() bool {
	return o == BindJmp || o == Exit || o == CallFunc || o == CallMethodD ||
		o == LdPropIC || o == StPropIC
}

// ExitInfo describes how to materialize VM state when leaving JITed
// code at this point.
type ExitInfo struct {
	BCOff   int
	IsCatch bool
	// StackRegs hold the eval-stack values bottom-up.
	StackRegs []Reg
	// Inline is set for exits inside partially-inlined code.
	Inline *InlineInfo
}

// InlineInfo mirrors hhir.InlineCtx at the register level. Parent
// chains nested inline frames (innermost first at the exit).
type InlineInfo struct {
	FuncID          int
	LocalsBase      int
	ThisReg         Reg // InvalidReg if none
	RetBCOff        int
	CallerStackRegs []Reg
	Parent          *InlineInfo
}

// Instr is one Vasm instruction.
type Instr struct {
	Op        Op
	D, A, B   Reg
	Args      []Reg
	I64       int64
	Str       string
	TypeParam types.Type
	// Target1/Target2 are block indices within the unit.
	Target1, Target2 int
	Ex               *ExitInfo
}

func (in *Instr) String() string {
	var sb strings.Builder
	if in.D != InvalidReg {
		fmt.Fprintf(&sb, "r%d = ", in.D)
	}
	sb.WriteString(in.Op.String())
	if in.A != InvalidReg {
		fmt.Fprintf(&sb, " r%d", in.A)
	}
	if in.B != InvalidReg {
		fmt.Fprintf(&sb, " r%d", in.B)
	}
	for _, r := range in.Args {
		fmt.Fprintf(&sb, " r%d", r)
	}
	if in.I64 != 0 {
		fmt.Fprintf(&sb, " #%d", in.I64)
	}
	if in.Str != "" {
		fmt.Fprintf(&sb, " %q", in.Str)
	}
	switch in.Op {
	case Jmp, GuardKind, GuardCls, GuardShape, LdLocGK:
		fmt.Fprintf(&sb, " ->B%d", in.Target1)
	case Jcc, CmpIJcc, CmpDJcc:
		fmt.Fprintf(&sb, " ->B%d,B%d", in.Target1, in.Target2)
	}
	return sb.String()
}

// ImmValue carries LdImm constants; stored per-instruction in a side
// table to keep Instr compact.
type ImmValue struct {
	Kind types.Kind
	I    int64
	D    float64
	S    string
}

// Block is a Vasm basic block.
type Block struct {
	ID     int
	Instrs []Instr
	// Imms holds LdImm payloads: Instrs[i].I64 indexes it.
	Hint   Hint
	Weight uint64
}

// Hint mirrors hhir block hints for hot/cold splitting.
type Hint uint8

const (
	HintNeutral Hint = iota
	HintHot
	HintCold
	// HintStub marks exit stubs (frozen area).
	HintStub
)

// JumpTable is a dense indexed-branch table.
type JumpTable struct {
	Base    int64
	Targets []int // block ids
	Default int
}

// Unit is a Vasm compilation unit.
type Unit struct {
	Blocks []*Block
	// Imms is the constant pool for LdImm (I64 indexes it).
	Imms []ImmValue
	// Tables holds JmpTable targets.
	Tables []JumpTable
	// NumVRegs counts virtual registers before allocation.
	NumVRegs int
	// NumSpills counts spill slots after allocation.
	NumSpills int
	// ExtFrameSlots is the extended-frame size (inline frames).
	ExtFrameSlots int
	// Layout is the final block order after layout optimization
	// (indices into Blocks).
	Layout []int
}

func (u *Unit) String() string {
	var sb strings.Builder
	order := u.Layout
	if order == nil {
		order = make([]int, len(u.Blocks))
		for i := range order {
			order[i] = i
		}
	}
	for _, bi := range order {
		b := u.Blocks[bi]
		fmt.Fprintf(&sb, "B%d: w=%d hint=%d\n", b.ID, b.Weight, b.Hint)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}
