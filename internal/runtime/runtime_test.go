package runtime_test

import (
	"testing"
	"testing/quick"

	rt "repro/internal/runtime"
	"repro/internal/shapes"
	"repro/internal/types"
)

func TestRefcountBasics(t *testing.T) {
	h := rt.NewHeap()
	v := rt.NewStr("hello")
	if v.S.Refs() != 1 {
		t.Fatalf("fresh string refs = %d", v.S.Refs())
	}
	h.IncRef(v)
	if v.S.Refs() != 2 {
		t.Fatalf("after incref refs = %d", v.S.Refs())
	}
	h.DecRef(v)
	h.DecRef(v)
	if v.S.Refs() != 0 {
		t.Fatalf("after release refs = %d", v.S.Refs())
	}
	if h.Frees != 1 {
		t.Fatalf("frees = %d", h.Frees)
	}
}

func TestStaticStringsSkipRefcounting(t *testing.T) {
	h := rt.NewHeap()
	v := rt.StrV(rt.InternStr("static"))
	before := h.IncRefs
	h.IncRef(v)
	h.DecRef(v)
	if h.IncRefs != before {
		t.Error("static strings must not be refcounted")
	}
}

func TestCopyOnWrite(t *testing.T) {
	h := rt.NewHeap()
	a := rt.NewPacked([]rt.Value{rt.Int(1), rt.Int(2)})
	av := rt.ArrV(a)
	h.IncRef(av) // second reference (simulating $b = $a)
	b := a.Set(h, rt.Int(0), rt.Int(99))
	if b == a {
		t.Fatal("mutation of shared array did not copy")
	}
	if h.CowCopies != 1 {
		t.Fatalf("CowCopies = %d", h.CowCopies)
	}
	orig, _ := a.GetIntKey(0)
	mod, _ := b.GetIntKey(0)
	if orig.I != 1 || mod.I != 99 {
		t.Fatalf("COW values wrong: %d / %d", orig.I, mod.I)
	}
	// Unshared mutation must NOT copy.
	before := h.CowCopies
	c := b.Set(h, rt.Int(1), rt.Int(5))
	if c != b || h.CowCopies != before {
		t.Error("unshared array copied needlessly")
	}
}

func TestPackedEscalatesToMixed(t *testing.T) {
	h := rt.NewHeap()
	a := rt.NewPacked([]rt.Value{rt.Int(1)})
	if !a.IsPacked() {
		t.Fatal("fresh packed array is not packed")
	}
	a = a.Set(h, rt.NewStr("k"), rt.Int(2))
	if a.IsPacked() {
		t.Fatal("string key should escalate to mixed")
	}
	v, ok := a.Get(rt.NewStr("k"))
	if !ok || v.I != 2 {
		t.Fatal("escalated array lost the element")
	}
	v, ok = a.GetIntKey(0)
	if !ok || v.I != 1 {
		t.Fatal("escalated array lost the packed element")
	}
}

func TestArrayAppendKeepsPacked(t *testing.T) {
	h := rt.NewHeap()
	a := rt.NewPacked(nil)
	for i := 0; i < 10; i++ {
		a = a.Append(h, rt.Int(int64(i)))
	}
	if !a.IsPacked() || a.Len() != 10 {
		t.Fatalf("append broke packed layout: packed=%v len=%d", a.IsPacked(), a.Len())
	}
}

func TestMixedInsertionOrder(t *testing.T) {
	h := rt.NewHeap()
	a := rt.NewMixed()
	keys := []string{"z", "a", "m"}
	for i, k := range keys {
		a = a.Set(h, rt.NewStr(k), rt.Int(int64(i)))
	}
	var got []string
	a.Each(func(k, _ rt.Value) bool { got = append(got, k.ToString()); return true })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("iteration order %v != insertion order %v", got, keys)
		}
	}
}

func TestArrayRemoveAndTombstones(t *testing.T) {
	h := rt.NewHeap()
	a := rt.NewMixed()
	a = a.Set(h, rt.NewStr("a"), rt.Int(1))
	a = a.Set(h, rt.NewStr("b"), rt.Int(2))
	a = a.Remove(h, rt.NewStr("a"))
	if a.Len() != 1 {
		t.Fatalf("len after remove = %d", a.Len())
	}
	if _, ok := a.Get(rt.NewStr("a")); ok {
		t.Fatal("removed key still present")
	}
	var seen int
	a.Each(func(_, _ rt.Value) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("iteration visited %d entries", seen)
	}
}

func TestPHPSemanticsOps(t *testing.T) {
	h := rt.NewHeap()
	// Int+Int stays int; Int+Dbl promotes.
	v, err := rt.Add(h, rt.Int(2), rt.Int(3))
	if err != nil || v.Kind != types.KInt || v.I != 5 {
		t.Errorf("2+3 = %v (%v)", v.DebugString(), err)
	}
	v, _ = rt.Add(h, rt.Int(2), rt.Dbl(0.5))
	if v.Kind != types.KDbl || v.D != 2.5 {
		t.Errorf("2+0.5 = %v", v.DebugString())
	}
	// Int/Int exact stays int; inexact goes double.
	v, _ = rt.Div(rt.Int(6), rt.Int(3))
	if v.Kind != types.KInt || v.I != 2 {
		t.Errorf("6/3 = %v", v.DebugString())
	}
	v, _ = rt.Div(rt.Int(7), rt.Int(2))
	if v.Kind != types.KDbl || v.D != 3.5 {
		t.Errorf("7/2 = %v", v.DebugString())
	}
	if _, err := rt.Div(rt.Int(1), rt.Int(0)); err == nil {
		t.Error("1/0 should error")
	}
	// Loose vs strict equality.
	if !rt.LooseEq(rt.Int(1), rt.Dbl(1)) {
		t.Error("1 == 1.0 should be loosely true")
	}
	if rt.StrictEq(rt.Int(1), rt.Dbl(1)) {
		t.Error("1 === 1.0 should be strictly false")
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		v    rt.Value
		want bool
	}{
		{rt.Int(0), false}, {rt.Int(1), true},
		{rt.NewStr(""), false}, {rt.NewStr("0"), false}, {rt.NewStr("x"), true},
		{rt.Null(), false}, {rt.Bool(true), true},
		{rt.ArrV(rt.NewPacked(nil)), false},
		{rt.ArrV(rt.NewPacked([]rt.Value{rt.Int(0)})), true},
	}
	for _, c := range cases {
		if c.v.Bool() != c.want {
			t.Errorf("truthiness of %s = %v, want %v", c.v.DebugString(), c.v.Bool(), c.want)
		}
	}
}

// Property: for any sequence of Set operations on an unshared array,
// Get returns the last value written per key and Len matches the
// distinct-key count.
func TestArraySetGetProperty(t *testing.T) {
	f := func(keys []uint8, vals []int64) bool {
		h := rt.NewHeap()
		a := rt.NewMixed()
		model := map[int64]int64{}
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			kk := int64(k % 16)
			a = a.Set(h, rt.Int(kk), rt.Int(vals[i]))
			model[kk] = vals[i]
		}
		if a.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := a.Get(rt.Int(k))
			if !ok || got.I != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: COW preserves the original array exactly.
func TestCOWPreservesOriginalProperty(t *testing.T) {
	f := func(vals []int64, idx uint8, nv int64) bool {
		if len(vals) == 0 {
			return true
		}
		h := rt.NewHeap()
		elems := make([]rt.Value, len(vals))
		for i, v := range vals {
			elems[i] = rt.Int(v)
		}
		a := rt.NewPacked(elems)
		av := rt.ArrV(a)
		h.IncRef(av)
		i := int64(idx) % int64(len(vals))
		b := a.Set(h, rt.Int(i), rt.Int(nv))
		// Original unchanged at every index.
		for j, v := range vals {
			got, _ := a.GetIntKey(int64(j))
			if got.I != v {
				return false
			}
		}
		got, _ := b.GetIntKey(i)
		return got.I == nv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestObjectProps(t *testing.T) {
	h := rt.NewHeap()
	cls := &rt.Class{
		Name:      "P",
		PropNames: map[string]int{"x": 0, "y": 1},
		PropInit:  []rt.Value{rt.Int(0), rt.Int(0)},
		Methods:   map[string]int{},
	}
	o := h.NewObject(cls)
	if err := o.SetProp(h, "x", rt.Int(42)); err != nil {
		t.Fatal(err)
	}
	v, ok := o.GetProp("x")
	if !ok || v.I != 42 {
		t.Fatalf("prop x = %v", v.DebugString())
	}
	if err := o.SetProp(h, "nope", rt.Int(1)); err == nil {
		t.Error("unknown property write should error")
	}
}

func TestBuiltinTable(t *testing.T) {
	b, ok := rt.LookupBuiltin("count")
	if !ok {
		t.Fatal("count missing")
	}
	ctx := &rt.BuiltinCtx{Heap: rt.NewHeap()}
	arr := rt.ArrV(rt.NewPacked([]rt.Value{rt.Int(1), rt.Int(2)}))
	v, err := b.Fn(ctx, []rt.Value{arr})
	if err != nil || v.I != 2 {
		t.Fatalf("count = %v (%v)", v.DebugString(), err)
	}
	if len(rt.BuiltinNames()) < 20 {
		t.Errorf("builtin table suspiciously small: %d", len(rt.BuiltinNames()))
	}
}

func TestPropNamedRefcounts(t *testing.T) {
	h := rt.NewHeap()
	tree := shapes.NewTree()
	cls := &rt.Class{
		Name:      "Box",
		PropNames: map[string]int{"v": 0},
		PropInit:  []rt.Value{rt.Null()},
		Methods:   map[string]int{},
		RootShape: tree.Root([]shapes.Slot{{Name: "v", Kind: types.KNull}}),
	}
	o := h.NewObject(cls)

	s := rt.NewStr("payload")
	if s.S.Refs() != 1 {
		t.Fatalf("fresh string refs = %d", s.S.Refs())
	}
	// SetPropNamed consumes the caller's reference: the slot now holds
	// the only one.
	if err := rt.SetPropNamed(h, o, "v", s); err != nil {
		t.Fatal(err)
	}
	if s.S.Refs() != 1 {
		t.Fatalf("after store refs = %d, want 1 (slot-owned)", s.S.Refs())
	}
	// GetPropNamed returns an owned reference.
	got := rt.GetPropNamed(h, o, "v")
	if got.S != s.S || s.S.Refs() != 2 {
		t.Fatalf("after read refs = %d, want 2", s.S.Refs())
	}
	h.DecRef(got)
	// Overwriting releases the old value.
	if err := rt.SetPropNamed(h, o, "v", rt.Int(3)); err != nil {
		t.Fatal(err)
	}
	if s.S.Refs() != 0 {
		t.Fatalf("overwritten value refs = %d, want 0", s.S.Refs())
	}
	// A missing property reads as null, not an error.
	if v := rt.GetPropNamed(h, o, "absent"); v.Kind != types.KNull {
		t.Fatalf("missing prop read %v, want null", v.DebugString())
	}
}

func TestPropNamedDynamicTransitions(t *testing.T) {
	h := rt.NewHeap()
	tree := shapes.NewTree()
	cls := &rt.Class{
		Name:      "Bag",
		PropNames: map[string]int{"id": 0},
		PropInit:  []rt.Value{rt.Int(0)},
		Methods:   map[string]int{},
		RootShape: tree.Root([]shapes.Slot{{Name: "id", Kind: types.KInt}}),
	}
	a, b := h.NewObject(cls), h.NewObject(cls)
	if a.ShapeID() != b.ShapeID() || a.ShapeID() == 0 {
		t.Fatalf("fresh instances should share the root shape")
	}
	root := a.ShapeID()

	// Writing an undeclared property transitions the shape and makes
	// the value readable by name.
	if err := rt.SetPropNamed(h, a, "count", rt.Int(7)); err != nil {
		t.Fatal(err)
	}
	if a.ShapeID() == root {
		t.Fatal("dynamic append did not transition the shape")
	}
	if v := rt.GetPropNamed(h, a, "count"); v.Kind != types.KInt || v.I != 7 {
		t.Fatalf("dynamic prop read %v", v.DebugString())
	}
	// The sibling object is untouched.
	if b.ShapeID() != root {
		t.Fatal("transition leaked to another instance")
	}
	// The same write sequence on b converges on a's shape (interning).
	if err := rt.SetPropNamed(h, b, "count", rt.Int(1)); err != nil {
		t.Fatal(err)
	}
	if b.ShapeID() != a.ShapeID() {
		t.Fatalf("identical write sequences diverged: %d vs %d", b.ShapeID(), a.ShapeID())
	}
	// Retyping a slot (int -> string) transitions again; retyping back
	// returns to the interned original.
	withCount := a.ShapeID()
	if err := rt.SetPropNamed(h, a, "count", rt.NewStr("many")); err != nil {
		t.Fatal(err)
	}
	if a.ShapeID() == withCount {
		t.Fatal("retype did not transition the shape")
	}
	if err := rt.SetPropNamed(h, a, "count", rt.Int(2)); err != nil {
		t.Fatal(err)
	}
	if a.ShapeID() != withCount {
		t.Fatal("retype round-trip did not return to the interned shape")
	}
	// A shapeless object (no linked root) keeps the historical
	// undefined-property error.
	bare := h.NewObject(&rt.Class{Name: "Bare", PropNames: map[string]int{}, Methods: map[string]int{}})
	if err := rt.SetPropNamed(h, bare, "count", rt.Int(1)); err == nil {
		t.Fatal("shapeless dynamic write should error")
	}
}
