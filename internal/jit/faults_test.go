// White-box tests for the quarantine state machine and degradation
// ladder (DESIGN.md §11). Engine-level fault containment, recycling,
// and jumpstart corruption are exercised in internal/core.
package jit

import (
	"errors"
	"testing"

	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/machine"
)

func newQuarantineJIT(t *testing.T) *JIT {
	t.Helper()
	env := &interp.Env{Unit: &hhbc.Unit{}}
	return New(Config{Mode: ModeTracelet}, env, &machine.Meter{})
}

// advance moves the function-entries clock (the quarantine backoff
// timebase) forward by n events.
func advance(j *JIT, n uint64) { j.entries.Add(n) }

func TestCompileFailureBackoffDoubles(t *testing.T) {
	j := newQuarantineJIT(t)
	key := transKey{fn: 1, pc: 0}
	base := j.Cfg.QuarantineBase
	errBoom := errors.New("boom")

	for i := 1; i <= 3; i++ {
		j.noteCompileFailure(key, errBoom)
		attempts, _, permanent := j.QuarantineState(1, 0)
		if attempts != i || permanent {
			t.Fatalf("after failure %d: attempts=%d permanent=%v", i, attempts, permanent)
		}
		j.mu.Lock()
		quarantined := j.quarantinedLocked(key)
		until := j.quarantine[key].until
		now := j.entries.Load()
		j.mu.Unlock()
		if !quarantined {
			t.Fatalf("after failure %d: not quarantined", i)
		}
		wantWindow := base << uint(i-1)
		if got := until - now; got != wantWindow {
			t.Fatalf("failure %d backoff window = %d entries, want %d", i, got, wantWindow)
		}
		// Sitting out the backoff reopens minting.
		advance(j, wantWindow)
		j.mu.Lock()
		quarantined = j.quarantinedLocked(key)
		j.mu.Unlock()
		if quarantined {
			t.Fatalf("failure %d: still quarantined after backoff expired", i)
		}
	}
	if got := j.Stats().CompileFailures; got != 3 {
		t.Errorf("CompileFailures = %d, want 3", got)
	}
}

func TestCompileFailureExhaustionDemotesPermanently(t *testing.T) {
	j := newQuarantineJIT(t)
	key := transKey{fn: 2, pc: 4}
	errBoom := errors.New("boom")

	for i := 0; i < j.Cfg.QuarantineMaxAttempts; i++ {
		j.noteCompileFailure(key, errBoom)
	}
	_, _, permanent := j.QuarantineState(2, 4)
	if !permanent {
		t.Fatal("address not permanently demoted after exhausting the retry budget")
	}
	// Permanent means permanent: no backoff window ever reopens it.
	advance(j, 1<<30)
	j.mu.Lock()
	quarantined := j.quarantinedLocked(key)
	j.mu.Unlock()
	if !quarantined {
		t.Fatal("permanently demoted address came back after entries advanced")
	}
	if got := j.Stats().Demotions; got != 1 {
		t.Errorf("Demotions = %d, want 1", got)
	}
	// Further failures at a permanent address are a no-op.
	j.noteCompileFailure(key, errBoom)
	if attempts, _, _ := j.QuarantineState(2, 4); attempts != j.Cfg.QuarantineMaxAttempts {
		t.Errorf("attempts moved after permanent demotion: %d", attempts)
	}
}

func TestMintSuccessClearsCompileQuarantine(t *testing.T) {
	j := newQuarantineJIT(t)
	key := transKey{fn: 3, pc: 0}
	j.noteCompileFailure(key, errors.New("boom"))
	j.noteMintSuccess(key)
	if attempts, faults, permanent := j.QuarantineState(3, 0); attempts != 0 || faults != 0 || permanent {
		t.Fatalf("quarantine survived a successful mint: attempts=%d faults=%d permanent=%v",
			attempts, faults, permanent)
	}
	if got := j.Stats().QuarantineRecoveries; got != 1 {
		t.Errorf("QuarantineRecoveries = %d, want 1", got)
	}
	if got := j.quarantinedCount(); got != 0 {
		t.Errorf("quarantine table still holds %d entries", got)
	}
}

func TestSparseFaultsDecayInsteadOfDemoting(t *testing.T) {
	j := newQuarantineJIT(t)
	// Faults far apart on the entries clock (transient noise on a hot
	// translation) must never accumulate into a demotion.
	for i := 0; i < 10*j.Cfg.FaultDemote; i++ {
		j.RecordFault(9, 0)
		advance(j, j.Cfg.QuarantineBase+1)
	}
	if _, faults, permanent := j.QuarantineState(9, 0); faults > 1 || permanent {
		t.Fatalf("sparse faults accumulated: faults=%d permanent=%v", faults, permanent)
	}
	st := j.Stats()
	if st.Demotions != 0 {
		t.Errorf("sparse faults caused %d demotions", st.Demotions)
	}
	if st.TransFaults != uint64(10*j.Cfg.FaultDemote) {
		t.Errorf("TransFaults = %d, want %d", st.TransFaults, 10*j.Cfg.FaultDemote)
	}
}

func TestFaultBurstsEscalateToPermanent(t *testing.T) {
	j := newQuarantineJIT(t)
	key := transKey{fn: 5, pc: 8}

	// Each burst of FaultDemote back-to-back faults is one demotion
	// episode: the address backs off, then (after a remint) may fault
	// again. QuarantineMaxAttempts episodes make the demotion permanent.
	for ep := 1; ep <= j.Cfg.QuarantineMaxAttempts; ep++ {
		for i := 0; i < j.Cfg.FaultDemote; i++ {
			j.RecordFault(5, 8)
		}
		_, _, permanent := j.QuarantineState(5, 8)
		if ep < j.Cfg.QuarantineMaxAttempts {
			if permanent {
				t.Fatalf("episode %d: demoted permanently too early", ep)
			}
			j.mu.Lock()
			quarantined := j.quarantinedLocked(key)
			j.mu.Unlock()
			if !quarantined {
				t.Fatalf("episode %d: no backoff after a fault burst", ep)
			}
			// A successful remint clears the backoff but must keep the
			// episode history so escalation still converges.
			j.noteMintSuccess(key)
			if _, _, perm := j.QuarantineState(5, 8); perm {
				t.Fatalf("episode %d: remint flipped address to permanent", ep)
			}
		} else if !permanent {
			t.Fatalf("episode %d: still not permanent", ep)
		}
	}
	if got := j.Stats().Demotions; got != uint64(j.Cfg.QuarantineMaxAttempts) {
		t.Errorf("Demotions = %d, want %d", got, j.Cfg.QuarantineMaxAttempts)
	}
}

func TestSparseEpisodesResetEscalation(t *testing.T) {
	j := newQuarantineJIT(t)
	// Fault bursts spaced far beyond their own backoff window (rare
	// random bursts over a long-running server) must not creep toward
	// a permanent demotion, no matter how many accumulate.
	for n := 0; n < 3*j.Cfg.QuarantineMaxAttempts; n++ {
		for i := 0; i < j.Cfg.FaultDemote; i++ {
			j.RecordFault(7, 0)
		}
		if _, _, permanent := j.QuarantineState(7, 0); permanent {
			t.Fatalf("sparse burst %d escalated to permanent demotion", n)
		}
		j.noteMintSuccess(transKey{fn: 7, pc: 0})
		advance(j, 64*j.Cfg.QuarantineBase)
	}
	j.mu.Lock()
	episodes := j.quarantine[transKey{fn: 7, pc: 0}].episodes
	j.mu.Unlock()
	if episodes > 1 {
		t.Errorf("episode ladder = %d after widely spaced bursts, want reset to 1", episodes)
	}
}

func TestDegradeLadderClampsAtInterpOnly(t *testing.T) {
	j := newQuarantineJIT(t)
	if j.DegradeLevel() != DegradeNone {
		t.Fatalf("fresh JIT degrade level = %d", j.DegradeLevel())
	}
	for i := 0; i < 10; i++ {
		j.escalateDegrade()
	}
	if j.DegradeLevel() != DegradeInterpOnly {
		t.Fatalf("degrade level = %d, want clamp at %d", j.DegradeLevel(), DegradeInterpOnly)
	}
}

func TestBackoffShiftIsCapped(t *testing.T) {
	j := newQuarantineJIT(t)
	base := j.Cfg.QuarantineBase
	if got, want := j.backoffLocked(100), base<<16; got != want {
		t.Errorf("backoffLocked(100) = %d, want capped %d", got, want)
	}
	if got := j.backoffLocked(0); got != base {
		t.Errorf("backoffLocked(0) = %d, want %d", got, base)
	}
}
