// Package profile holds the data gathered by profiling translations:
// per-block execution counters, observed control-flow arcs, and
// call-target histograms. The profile-guided region selector and the
// optimizing JIT consume it.
package profile

import (
	"sort"
	"sync"
)

// TransID identifies one profiling translation (a type-specialized
// basic block).
type TransID int

// Counters is the instrumentation store. The profiling JIT increments
// a unique counter after each translation's type guards, so counter
// values double as both basic-block frequencies and input-type
// distributions (Section 4.1 of the paper).
type Counters struct {
	mu     sync.Mutex
	counts []uint64
	// arcs records observed transfers between profiling translations.
	arcs map[Arc]uint64
	// callTargets histograms callee classes at method-call sites:
	// (funcID, bcPC) -> class name -> count.
	callTargets map[CallSite]map[string]uint64
	// funcCalls counts direct calls per callee funcID (for the
	// whole-program call graph used by function sorting).
	funcCalls map[CallArc]uint64
}

// Arc is an observed control transfer between translations.
type Arc struct{ From, To TransID }

// CallSite locates a method-call bytecode.
type CallSite struct {
	FuncID int
	PC     int
}

// CallArc is a caller->callee edge in the dynamic call graph.
type CallArc struct{ Caller, Callee int }

// NewCounters returns an empty store.
func NewCounters() *Counters {
	return &Counters{
		arcs:        map[Arc]uint64{},
		callTargets: map[CallSite]map[string]uint64{},
		funcCalls:   map[CallArc]uint64{},
	}
}

// NewCounter allocates a fresh counter and returns its ID.
func (c *Counters) NewCounter() TransID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = append(c.counts, 0)
	return TransID(len(c.counts) - 1)
}

// Inc bumps a counter (called from JITed profiling code; single
// request thread per VM, so a plain add under the lock-free path
// would do, but the store is shared across warmup threads).
func (c *Counters) Inc(id TransID) {
	c.mu.Lock()
	c.counts[id]++
	c.mu.Unlock()
}

// Count reads a counter.
func (c *Counters) Count(id TransID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(id) < len(c.counts) {
		return c.counts[id]
	}
	return 0
}

// RecordArc notes a from->to transfer between profiling translations.
func (c *Counters) RecordArc(from, to TransID) {
	c.mu.Lock()
	c.arcs[Arc{from, to}]++
	c.mu.Unlock()
}

// ArcCount reads an arc weight.
func (c *Counters) ArcCount(from, to TransID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arcs[Arc{from, to}]
}

// Arcs returns all arcs involving the given translations.
func (c *Counters) Arcs(in map[TransID]bool) map[Arc]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Arc]uint64)
	for a, n := range c.arcs {
		if in[a.From] || in[a.To] {
			out[a] = n
		}
	}
	return out
}

// RecordCallTarget histograms the receiver class at a method call.
func (c *Counters) RecordCallTarget(site CallSite, class string) {
	c.mu.Lock()
	m := c.callTargets[site]
	if m == nil {
		m = map[string]uint64{}
		c.callTargets[site] = m
	}
	m[class]++
	c.mu.Unlock()
}

// TargetProfile summarizes a call site's receiver distribution.
type TargetProfile struct {
	Total uint64
	// Classes sorted by descending count.
	Classes []ClassCount
}

// ClassCount is one histogram entry.
type ClassCount struct {
	Class string
	Count uint64
}

// CallTargets returns the profile for a site (nil if never observed).
func (c *Counters) CallTargets(site CallSite) *TargetProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.callTargets[site]
	if len(m) == 0 {
		return nil
	}
	tp := &TargetProfile{}
	for cls, n := range m {
		tp.Total += n
		tp.Classes = append(tp.Classes, ClassCount{cls, n})
	}
	sort.Slice(tp.Classes, func(i, j int) bool {
		if tp.Classes[i].Count != tp.Classes[j].Count {
			return tp.Classes[i].Count > tp.Classes[j].Count
		}
		return tp.Classes[i].Class < tp.Classes[j].Class
	})
	return tp
}

// RecordCall notes a dynamic caller->callee call.
func (c *Counters) RecordCall(caller, callee int) {
	c.mu.Lock()
	c.funcCalls[CallArc{caller, callee}]++
	c.mu.Unlock()
}

// CallGraph returns the weighted dynamic call graph.
func (c *Counters) CallGraph() map[CallArc]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[CallArc]uint64, len(c.funcCalls))
	for k, v := range c.funcCalls {
		out[k] = v
	}
	return out
}
