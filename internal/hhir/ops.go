package hhir

// Opcode enumerates HHIR instructions.
type Opcode int

const (
	Nop Opcode = iota

	// Constants. I64 / Str hold the payload; Dst typed accordingly.
	DefConstInt
	DefConstDbl // I64 holds math.Float64bits
	DefConstBool
	DefConstNull
	DefConstStr // Str holds the (static) string

	// Guards: side-exit via Exit when the check fails.
	GuardLoc // I64 = local slot; TypeParam = required type
	GuardStk // I64 = entry stack depth; Args[0] = the slot's value
	// CheckType refines Args[0]; on kind mismatch branches to Taken
	// (next retranslation in the chain) passing TakenArgs.
	CheckType
	// CheckCls: Args[0] obj; I64 = class id; Exit on mismatch.
	CheckCls
	// AssertType: Dst = Args[0] with refined type (no code).
	AssertType

	// Frame memory.
	LdLoc  // I64 = slot
	StLoc  // I64 = slot; Args[0] = value
	LdThis // Dst = $this

	// Reference counting (explicit, so RCE can optimize).
	IncRef // Args[0]
	DecRef // Args[0]

	// Integer / double arithmetic (specialized fast paths).
	AddInt
	SubInt
	MulInt
	AddDbl
	SubDbl
	MulDbl
	DivDbl
	ModInt // Exit: modulo by zero throws
	NegInt
	NegDbl
	// DivNum: Int/Int division, result Int or Dbl; helper. Exit: /0.
	DivNum

	// Comparisons: I64 = CmpCond; Dst Bool.
	CmpInt
	CmpDbl
	CmpStr  // out-of-line string compare
	EqAny   // generic loose ==  (I64: 1 = negate)
	SameAny // generic ===        (I64: 1 = negate)

	// Conversions.
	ConvToBool // specialized on arg type
	ConvToInt
	ConvToDbl
	ConvToStr // allocates unless already Str

	// Generic binary op fallback: I64 = hhbc.Op; helper; may throw.
	BinopGeneric

	// Strings.
	ConcatStr // helper; Dst Str

	// Arrays.
	CountArray     // Args[0] packed/mixed array -> Int (inline load)
	ArrGetPackedI  // Args: arr, intIdx; miss -> Null + notice (helper on slow path)
	ArrGetGeneric  // helper
	ArrSetLocal    // I64 = local slot; Args: key, val; COW helper
	ArrAppendLocal // I64 = local slot; Args: val
	ArrUnsetLocal  // I64 = local slot; Args: key
	AKExistsLocal  // I64 = local slot; Args: key -> Bool
	NewArr         // Dst mixed array
	NewPackedArr   // Args = elems
	AddElem        // Args: arr, key, val -> Dst arr
	AddNewElem     // Args: arr, val -> Dst arr

	// Iterators (helpers). I64 = iter id; iterator ops are control
	// flow: Taken = loop entry/exit per builder wiring.
	IterInitLocal // I64 = iter id, Str unused, Args none; second imm via I64b? see builder: I64 packs iter<<32|slot
	IterNextK     // I64 = iter id; Taken = loop body
	IterKey
	IterValue
	IterFree

	// Objects.
	NewObj        // Str = class name; helper
	LdPropSlot    // I64 = slot; Args[0] = obj (class-checked)
	StPropSlot    // I64 = slot; Args: obj, val
	LdPropGeneric // Str = prop name; helper
	StPropGeneric // Str = prop name; Args: obj, val; helper
	InstanceOf    // Str = class; Args[0]; Dst Bool

	// Typed object shapes (DESIGN.md §14).
	GuardShape    // Args[0] = obj; I64 = shape id; Exit on mismatch
	LdPropIC      // Str = prop name; Args[0] = obj; shape-guarded inline cache
	StPropIC      // Str = prop name; Args: obj, val; shape-guarded inline cache
	ProfPropShape // I64 = bc pc; Args[0] = obj: record receiver shape (profiling mode)

	// Calls. Str = name; I64 = callee func id (-1 unknown).
	CallFunc     // direct guest call; Args = args
	CallBuiltin  // Str = builtin name
	CallMethodD  // devirtualized: I64 = func id; Args[0] = obj, rest args
	CallMethodC  // common-base/interface dispatch: Str = method, I64 = cache id; Args[0] = obj
	VerifyParam  // I64 = param index; may throw
	ProfCount    // I64 = profile counter id
	ProfCallSite // I64 = bc pc; Args[0] = obj: record receiver class (profiling mode)

	// Output.
	PrintC // Args[0]

	// Control flow.
	Jmp       // Next (+NextArgs)
	Branch    // Args[0] Bool; Taken/Next (+args)
	SwitchInt // Args[0] Int; I64 = table base; Table = targets, Taken = default
	Ret       // Args[0]; frame teardown in epilogue
	ThrowC    // Args[0] obj; unwinds
	SideExit  // unconditional exit to interpreter at Exit.BCOff
	ReqBind   // region exit: continue at bytecode pc I64 (bind/translate)
	EndInline // marker: inlined callee finished; Args[0] = return value

	opcodeCount
)

var opNames2 = map[Opcode]string{
	Nop: "Nop", DefConstInt: "DefConstInt", DefConstDbl: "DefConstDbl",
	DefConstBool: "DefConstBool", DefConstNull: "DefConstNull", DefConstStr: "DefConstStr",
	GuardLoc: "GuardLoc", GuardStk: "GuardStk", CheckType: "CheckType",
	CheckCls: "CheckCls", AssertType: "AssertType",
	LdLoc: "LdLoc", StLoc: "StLoc", LdThis: "LdThis",
	IncRef: "IncRef", DecRef: "DecRef",
	AddInt: "AddInt", SubInt: "SubInt", MulInt: "MulInt",
	AddDbl: "AddDbl", SubDbl: "SubDbl", MulDbl: "MulDbl", DivDbl: "DivDbl",
	ModInt: "ModInt", NegInt: "NegInt", NegDbl: "NegDbl", DivNum: "DivNum",
	CmpInt: "CmpInt", CmpDbl: "CmpDbl", CmpStr: "CmpStr", EqAny: "EqAny", SameAny: "SameAny",
	ConvToBool: "ConvToBool", ConvToInt: "ConvToInt", ConvToDbl: "ConvToDbl", ConvToStr: "ConvToStr",
	BinopGeneric: "BinopGeneric", ConcatStr: "ConcatStr",
	CountArray: "CountArray", ArrGetPackedI: "ArrGetPackedI", ArrGetGeneric: "ArrGetGeneric",
	ArrSetLocal: "ArrSetLocal", ArrAppendLocal: "ArrAppendLocal",
	ArrUnsetLocal: "ArrUnsetLocal", AKExistsLocal: "AKExistsLocal",
	NewArr: "NewArr", NewPackedArr: "NewPackedArr", AddElem: "AddElem", AddNewElem: "AddNewElem",
	IterInitLocal: "IterInitLocal", IterNextK: "IterNextK", IterKey: "IterKey",
	IterValue: "IterValue", IterFree: "IterFree",
	NewObj: "NewObj", LdPropSlot: "LdPropSlot", StPropSlot: "StPropSlot",
	LdPropGeneric: "LdPropGeneric", StPropGeneric: "StPropGeneric", InstanceOf: "InstanceOf",
	GuardShape: "GuardShape", LdPropIC: "LdPropIC", StPropIC: "StPropIC",
	ProfPropShape: "ProfPropShape",
	CallFunc: "CallFunc", CallBuiltin: "CallBuiltin", CallMethodD: "CallMethodD",
	CallMethodC: "CallMethodC", VerifyParam: "VerifyParam",
	ProfCount: "ProfCount", ProfCallSite: "ProfCallSite",
	PrintC: "PrintC",
	Jmp:    "Jmp", Branch: "Branch", SwitchInt: "SwitchInt", Ret: "Ret", ThrowC: "ThrowC",
	SideExit: "SideExit", ReqBind: "ReqBind", EndInline: "EndInline",
}

func (o Opcode) String() string {
	if s, ok := opNames2[o]; ok {
		return s
	}
	return "Opcode?"
}

// CmpCond values for CmpInt/CmpDbl/CmpStr's I64.
const (
	CondLT = iota
	CondLE
	CondGT
	CondGE
	CondEQ
	CondNE
)

// opUsesI64 reports whether the I64 immediate is meaningful even when
// zero (printing aid).
func opUsesI64(o Opcode) bool {
	switch o {
	case GuardLoc, GuardStk, LdLoc, StLoc, CmpInt, CmpDbl, CmpStr,
		ArrSetLocal, ArrAppendLocal, ArrUnsetLocal, AKExistsLocal,
		LdPropSlot, StPropSlot, CallMethodD, VerifyParam, ProfCount,
		IterInitLocal, IterNextK, IterKey, IterValue, IterFree, ReqBind,
		CheckCls, GuardShape, ProfPropShape:
		return true
	}
	return false
}

// IsPure reports whether the instruction has no side effects and can
// be eliminated when its result is unused, or value-numbered.
func (o Opcode) IsPure() bool {
	switch o {
	case DefConstInt, DefConstDbl, DefConstBool, DefConstNull, DefConstStr,
		AssertType, AddInt, SubInt, MulInt, AddDbl, SubDbl, MulDbl, DivDbl,
		NegInt, NegDbl, CmpInt, CmpDbl, CmpStr, ConvToBool, ConvToInt,
		ConvToDbl, CountArray, InstanceOf, LdThis:
		return true
	}
	return false
}

// IsLoad reports frame loads (eliminable by the load-elimination
// pass, not by DCE alone since they observe memory).
func (o Opcode) IsLoad() bool { return o == LdLoc }

// CanThrow reports ops with a catch exit.
func (o Opcode) CanThrow() bool {
	switch o {
	case ModInt, DivNum, BinopGeneric, ArrGetGeneric, ArrSetLocal,
		ArrAppendLocal, CallFunc, CallBuiltin, CallMethodD, CallMethodC,
		VerifyParam, NewObj, LdPropGeneric, StPropGeneric, ThrowC,
		ArrGetPackedI, EqAny, SameAny, LdPropIC, StPropIC:
		return true
	}
	return false
}

// IsTerminator reports control-flow enders.
func (o Opcode) IsTerminator() bool {
	switch o {
	case Jmp, Branch, SwitchInt, Ret, ThrowC, SideExit, ReqBind, IterInitLocal, IterNextK:
		return true
	}
	return false
}

// ObservesRC reports whether the op can observe a value's reference
// count (the RCE pass must not sink an IncRef past an observer of the
// same value; Section 5.3.2): DecRefs may run destructors, array
// mutations may trigger COW.
func (o Opcode) ObservesRC() bool {
	switch o {
	case DecRef, ArrSetLocal, ArrAppendLocal, ArrUnsetLocal,
		CallFunc, CallBuiltin, CallMethodD, CallMethodC, ThrowC, Ret,
		SideExit, ReqBind, PrintC, AddElem, AddNewElem, StPropSlot, StPropGeneric,
		StPropIC, IterInitLocal, EndInline:
		return true
	}
	return false
}
