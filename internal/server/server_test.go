package server_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestSingleWorkerDeterminism pins the legacy single-threaded
// behavior: Workers=0 and Workers=1 must produce bit-identical
// timelines (the concurrency machinery must not perturb the
// single-worker path), and repeated runs under the same seed must be
// reproducible.
func TestSingleWorkerDeterminism(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 12
	cfg.CyclesPerMinute = 1_200_000

	base, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := cfg
	one.Workers = 1
	res1, err := server.Simulate(one)
	if err != nil {
		t.Fatal(err)
	}
	again, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got *server.Result) {
		t.Helper()
		if got.SteadyRPS != base.SteadyRPS {
			t.Errorf("%s: SteadyRPS %v != %v", name, got.SteadyRPS, base.SteadyRPS)
		}
		if len(got.Samples) != len(base.Samples) {
			t.Fatalf("%s: %d samples != %d", name, len(got.Samples), len(base.Samples))
		}
		for i := range base.Samples {
			if got.Samples[i] != base.Samples[i] {
				t.Errorf("%s: minute %d diverged: got %+v, want %+v",
					name, i+1, got.Samples[i], base.Samples[i])
			}
		}
		if got.MinutesTo90 != base.MinutesTo90 {
			t.Errorf("%s: MinutesTo90 %v != %v", name, got.MinutesTo90, base.MinutesTo90)
		}
	}
	check("Workers=1 vs Workers=0", res1)
	check("repeat run", again)
}

// TestStartupTimeline reproduces Figure 9's qualitative shape: code
// grows during profiling, the optimize event fires, and RPS climbs
// from a depressed warmup level to (and past) steady state.
func TestStartupTimeline(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Minutes = 20
	cfg.CyclesPerMinute = 1_200_000
	res, err := server.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server.Report(os.Stderr, res)
	if len(res.Samples) != cfg.Minutes {
		t.Fatalf("expected %d samples, got %d", cfg.Minutes, len(res.Samples))
	}
	// Code grows monotonically-ish and an optimize event appears.
	sawOpt := false
	for _, s := range res.Samples {
		if strings.Contains(s.Event, "C") {
			sawOpt = true
		}
	}
	if !sawOpt {
		t.Error("the global retranslation trigger never fired")
	}
	// RPS at the start is below steady; by the end it reaches ~steady.
	first := res.Samples[0].RPSPct
	last := res.Samples[len(res.Samples)-1].RPSPct
	if first >= 95 {
		t.Errorf("first-minute RPS %.1f%% should be well below steady state", first)
	}
	if last < 90 {
		t.Errorf("final RPS %.1f%% should have recovered to steady state", last)
	}
	// The fleet-wave window pushes RPS above steady state.
	over := false
	for _, s := range res.Samples {
		if s.RPSPct > 110 {
			over = true
		}
	}
	if !over {
		t.Error("no above-steady-state stretch (fleet redirect) observed")
	}
}
